// The public-API contract test: this file includes ONLY <agora/agora.h>
// (plus gtest) and drives every supported decision backend -- the flat LP
// Allocator, the HierarchicalAllocator and the sharded EnforcementEngine --
// through the alloc::AllocatorBase interface alone. If a facade re-export
// goes missing or a backend drifts off the interface, this translation
// unit stops compiling.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "agora/agora.h"

namespace agora {
namespace {

agree::AgreementSystem demo_system() {
  agree::AgreementSystem sys(4);
  sys.capacity = {10.0, 10.0, 10.0, 10.0};
  sys.relative = agree::complete_graph(4, 0.3);
  return sys;
}

/// Exercise one backend purely through the interface: allocate, apply,
/// release, set_capacities, availability and solver telemetry.
void drive(alloc::AllocatorBase& backend) {
  ASSERT_EQ(backend.size(), 4u);
  const double before = backend.available_to(1);
  EXPECT_GT(before, 0.0);

  const alloc::AllocationPlan plan = backend.allocate(1, 2.0);
  ASSERT_TRUE(plan.satisfied());
  EXPECT_EQ(to_status(plan.status).code(), StatusCode::Ok);

  backend.apply(plan);
  EXPECT_LT(backend.available_to(1), before);
  backend.release(plan.draw);
  EXPECT_NEAR(backend.available_to(1), before, 1e-6);

  const std::vector<double> caps(backend.size(), 8.0);
  backend.set_capacities(std::span<const double>(caps));
  for (std::size_t i = 0; i < backend.size(); ++i)
    EXPECT_NEAR(backend.system().capacity[i], 8.0, 1e-12);

  // Telemetry is reachable through the interface. (The count may be zero:
  // the hierarchical backend's intra-group fast path decides small
  // requests without running the certified LP pipeline.)
  const lp::PipelineStats* stats = backend.solver_stats();
  if (stats != nullptr) {
    EXPECT_GE(stats->solves + 1, 1u);
  }
}

TEST(Facade, EveryBackendRunsThroughAllocatorBase) {
  std::vector<std::unique_ptr<alloc::AllocatorBase>> backends;
  backends.push_back(std::make_unique<alloc::Allocator>(demo_system()));
  backends.push_back(
      std::make_unique<alloc::HierarchicalAllocator>(demo_system(),
                                                     std::vector<std::size_t>{0, 0, 1, 1}));
  engine::EngineOptions eopts;
  eopts.threads = 2;
  eopts.sink = obs::Sink::none();
  eopts.alloc.sink = obs::Sink::none();
  backends.push_back(std::make_unique<engine::EnforcementEngine>(demo_system(), eopts));
  for (auto& backend : backends) drive(*backend);
}

TEST(Facade, ExpressionToAllocationRoundTrip) {
  // The quickstart flow, through the facade: economy -> valuation ->
  // matrices -> transitive availability -> one LP allocation.
  core::Economy economy;
  const auto disk = economy.add_resource_type("disk", "TB");
  const auto a = economy.add_principal("A", 1000.0);
  const auto b = economy.add_principal("B", 100.0);
  economy.fund_with_resource(economy.default_currency(a), disk, 10.0);
  economy.issue_relative(economy.default_currency(a), economy.default_currency(b), 500.0, disk,
                         core::SharingMode::Sharing);

  const core::Valuation val = core::value_economy(economy);
  EXPECT_GT(val.currency_value(economy.default_currency(b), disk), 0.0);

  const agree::AgreementSystem sys = agree::from_economy(economy, disk);
  const agree::CapacityReport rep = agree::compute_capacities(sys);
  EXPECT_GT(rep.capacity[1], 0.0);  // B reaches A's disk transitively

  const std::unique_ptr<alloc::AllocatorBase> backend =
      std::make_unique<alloc::Allocator>(sys);
  const alloc::AllocationPlan plan = backend->allocate(1, 3.0);
  EXPECT_TRUE(plan.satisfied());
}

}  // namespace
}  // namespace agora
