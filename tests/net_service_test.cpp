// Loopback integration tests for the wire boundary (DESIGN.md §14): the
// framed service fronting a real EnforcementEngine, driven by net::Client
// and by raw sockets for the adversarial cases. Covers decision parity with
// the direct allocator, explicit load shedding with retry-after hints,
// deadline propagation (shed on arrival, dropped in queue, late answers
// replaced), malformed-input handling (Error frame + close), graceful
// drain (GoAway, every in-flight request resolved), and the obs counters.
#include <gtest/gtest.h>

#include <poll.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "agree/matrices.h"
#include "alloc/allocator.h"
#include "engine/engine.h"
#include "net/client.h"
#include "net/service.h"
#include "net/socket.h"
#include "net/wire.h"

namespace agora::net {
namespace {

using Clock = std::chrono::steady_clock;

agree::AgreementSystem small_economy(std::size_t n = 6, double share = 0.15) {
  agree::AgreementSystem sys(n);
  for (std::size_t i = 0; i < n; ++i) sys.capacity[i] = 10.0 + static_cast<double>(i);
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t b = 0; b < n; ++b)
      if (a != b) sys.relative(a, b) = share;
  return sys;
}

struct Harness {
  agree::AgreementSystem sys;
  engine::EnforcementEngine engine;
  AgoraService service;

  explicit Harness(ServiceOptions sopts = {}, std::size_t threads = 2,
                   agree::AgreementSystem economy = small_economy())
      : sys(std::move(economy)),
        engine(sys, [&] {
          engine::EngineOptions e;
          e.threads = threads;
          return e;
        }()),
        service(engine, sopts) {
    const Status st = service.start();
    if (!st.ok()) throw std::runtime_error("service start failed: " + st.to_string());
  }

  ClientOptions client_options() const {
    ClientOptions c;
    c.endpoints = {Endpoint{"", service.port()}};
    return c;
  }
};

/// Blocking read of exactly one frame from a raw socket, with timeout.
bool read_one_frame(int fd, Frame& out, int timeout_ms = 2000) {
  FrameDecoder dec(kDefaultMaxPayload);
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  std::uint8_t buf[4096];
  while (Clock::now() < deadline) {
    if (dec.next(out) == FrameDecoder::Result::Frame) return true;
    pollfd p{fd, POLLIN, 0};
    if (::poll(&p, 1, 50) <= 0) continue;
    bool eof = false;
    const std::ptrdiff_t n = read_some(fd, buf, sizeof(buf), eof);
    if (n > 0) dec.feed(std::span<const std::uint8_t>(buf, static_cast<std::size_t>(n)));
    if (n < 0 || (eof && n == 0)) return dec.next(out) == FrameDecoder::Result::Frame;
  }
  return dec.next(out) == FrameDecoder::Result::Frame;
}

/// True when the peer has closed (EOF within timeout).
bool peer_closed(int fd, int timeout_ms = 2000) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  std::uint8_t buf[256];
  while (Clock::now() < deadline) {
    pollfd p{fd, POLLIN, 0};
    if (::poll(&p, 1, 50) <= 0) continue;
    bool eof = false;
    const std::ptrdiff_t n = read_some(fd, buf, sizeof(buf), eof);
    if (n < 0 || eof) return true;
  }
  return false;
}

// ----------------------------------------------------------------- parity ---

TEST(NetService, ConsultsMatchTheDirectAllocatorDecisionForDecision) {
  Harness h;
  alloc::Allocator direct(h.sys, alloc::AllocatorOptions{});
  Client client(h.client_options());
  for (std::uint32_t a = 0; a < h.sys.size(); ++a) {
    for (const double amount : {0.5, 2.0, 7.5, 1.0e5}) {
      const ConsultOutcome out = client.consult(a, amount);
      const alloc::AllocationPlan want = direct.allocate(a, amount);
      switch (want.status) {
        case alloc::PlanStatus::Satisfied: {
          ASSERT_EQ(out.status.code(), StatusCode::Ok)
              << "a=" << a << " amount=" << amount << ": " << out.status.to_string();
          EXPECT_TRUE(out.reply.certified) << "uncertified grant crossed the wire";
          EXPECT_NEAR(out.reply.total_drawn, amount, 1e-7);
          EXPECT_NEAR(out.reply.theta, want.theta, 1e-9);
          double sum = 0.0;
          for (const WireDraw& d : out.reply.draws) {
            ASSERT_LT(d.participant, h.sys.size());
            EXPECT_NEAR(want.draw[d.participant], d.amount, 1e-9);
            sum += d.amount;
          }
          EXPECT_NEAR(sum, amount, 1e-7);
          break;
        }
        case alloc::PlanStatus::Insufficient:
          EXPECT_EQ(out.status.code(), StatusCode::Insufficient);
          break;
        case alloc::PlanStatus::Denied:
          EXPECT_EQ(out.status.code(), StatusCode::Denied);
          break;
        case alloc::PlanStatus::SolverFailed:
          EXPECT_EQ(out.status.code(), StatusCode::SolverFailed);
          break;
      }
    }
  }
  const ServiceStats s = h.service.stats();
  EXPECT_EQ(s.consults, h.sys.size() * 4);
  EXPECT_EQ(s.answered, h.sys.size() * 4);
  EXPECT_EQ(s.malformed, 0u);
}

TEST(NetService, PingAndInfoWork) {
  Harness h;
  Client client(h.client_options());
  EXPECT_TRUE(client.ping().ok());
  InfoReply info;
  ASSERT_TRUE(client.info(info).ok());
  EXPECT_EQ(info.participants, h.sys.size());
  EXPECT_EQ(info.draining, 0u);
}

// --------------------------------------------------------------- shedding ---

TEST(NetService, OverloadShedsExplicitlyWithRetryAfter) {
  // A tiny queue and in-flight window in front of a single-threaded engine:
  // a burst from several clients MUST shed some requests with unavailable +
  // a retry hint, and every request still gets a definite answer.
  ServiceOptions sopts;
  sopts.max_queue = 2;
  sopts.max_inflight = 1;
  Harness h(sopts, /*threads=*/1);

  constexpr int kClients = 4, kPerClient = 50;
  std::atomic<std::uint64_t> definite{0}, shed{0}, hinted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      ClientOptions copt = h.client_options();
      copt.max_attempts = 1;  // observe the shed itself, not the retry
      copt.seed = static_cast<std::uint64_t>(t) + 1;
      Client client(copt);
      for (int i = 0; i < kPerClient; ++i) {
        const ConsultOutcome out =
            client.consult(static_cast<std::uint32_t>(i % 6), 0.25 + 0.001 * i, 2000);
        switch (out.status.code()) {
          case StatusCode::Ok:
          case StatusCode::Insufficient:
          case StatusCode::Denied:
            definite++;
            break;
          case StatusCode::Unavailable:
            shed++;
            definite++;
            if (out.reply.retry_after_ms > 0) hinted++;
            break;
          default:
            definite++;
            break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(definite.load(), kClients * kPerClient) << "a request was lost";
  const ServiceStats s = h.service.stats();
  // Under 4 clients hammering a queue of 2 with one in-flight slot the
  // service MUST shed, and shed replies carry a retry hint. (shed counted
  // client-side may also include client-local verdicts, so only the
  // service's own counter is compared exactly against zero.)
  EXPECT_GT(s.shed_queue, 0u) << "overload was not shed explicitly";
  EXPECT_GT(shed.load(), 0u);
  EXPECT_GT(hinted.load(), 0u) << "shed replies carried no hint";
  EXPECT_LE(s.peak_queue, 2u);
  EXPECT_LE(s.peak_inflight, 1u);
  // Every consult got a definite reply (sheds are answered too).
  EXPECT_EQ(s.consults, s.answered);
  EXPECT_LE(s.shed_queue + s.shed_drain + s.shed_deadline, s.answered);
}

TEST(NetService, ClientHonorsRetryAfterAndEventuallySucceeds) {
  ServiceOptions sopts;
  sopts.max_queue = 1;
  sopts.max_inflight = 1;
  Harness h(sopts, /*threads=*/1);
  std::atomic<std::uint64_t> ok{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      ClientOptions copt = h.client_options();
      copt.max_attempts = 16;
      copt.seed = static_cast<std::uint64_t>(t) + 7;
      Client client(copt);
      for (int i = 0; i < 20; ++i)
        if (client.consult(0, 0.5, 5000).status.code() == StatusCode::Ok) ok++;
    });
  }
  for (auto& t : threads) t.join();
  // With retries the transient sheds are absorbed; all calls land.
  EXPECT_EQ(ok.load(), 60u);
}

// --------------------------------------------------------------- deadlines ---

TEST(NetService, ArrivalBelowMinimumDeadlineIsShedAsDeadlineExceeded) {
  ServiceOptions sopts;
  sopts.min_deadline_us = 60'000'000;  // one minute: nothing qualifies
  Harness h(sopts);
  ClientOptions copt = h.client_options();
  copt.max_attempts = 1;
  Client client(copt);
  const ConsultOutcome out = client.consult(0, 0.5, 500);
  EXPECT_EQ(out.status.code(), StatusCode::DeadlineExceeded);
  const ServiceStats s = h.service.stats();
  EXPECT_EQ(s.shed_deadline, 1u);
  EXPECT_EQ(s.answered, 1u);  // the shed reply IS the definite answer
}

TEST(NetService, ZeroDeadlineMeansNoDeadline) {
  Harness h;
  // A raw frame with deadline_us = 0 must be admitted and answered.
  std::string err;
  Fd fd = connect_tcp("", h.service.port(), 1000, err);
  ASSERT_TRUE(fd.valid()) << err;
  Frame f;
  f.type = FrameType::Consult;
  f.request_id = 42;
  f.deadline_us = 0;
  encode(ConsultRequest{1, 0.5}, f.payload);
  std::vector<std::uint8_t> buf;
  encode_frame(f, buf);
  std::size_t off = 0;
  while (off < buf.size()) {
    const std::ptrdiff_t n = write_some(fd.get(), buf.data() + off, buf.size() - off);
    ASSERT_GE(n, 0);
    off += static_cast<std::size_t>(n);
  }
  Frame reply;
  ASSERT_TRUE(read_one_frame(fd.get(), reply));
  EXPECT_EQ(reply.type, FrameType::ConsultReply);
  EXPECT_EQ(reply.request_id, 42u);
  ConsultReply m;
  ASSERT_TRUE(decode(std::span<const std::uint8_t>(reply.payload.data(),
                                                   reply.payload.size()),
                     m));
  EXPECT_EQ(m.code, StatusCode::Ok);
}

// --------------------------------------------------------------- malformed ---

TEST(NetService, GarbageBytesGetAnErrorFrameAndAClose) {
  Harness h;
  std::string err;
  Fd fd = connect_tcp("", h.service.port(), 1000, err);
  ASSERT_TRUE(fd.valid()) << err;
  // At least kHeaderSize bytes, so the decoder has a full (bogus) header
  // to reject rather than waiting for more.
  std::string garbage = "GET / HTTP/1.1\r\nHost: nope\r\n\r\n";
  garbage.resize(2 * kHeaderSize, '#');
  ASSERT_GT(write_some(fd.get(), reinterpret_cast<const std::uint8_t*>(garbage.data()),
                       garbage.size()),
            0);
  Frame reply;
  ASSERT_TRUE(read_one_frame(fd.get(), reply)) << "no Error frame before close";
  EXPECT_EQ(reply.type, FrameType::Error);
  WireError we;
  ASSERT_TRUE(
      decode(std::span<const std::uint8_t>(reply.payload.data(), reply.payload.size()), we));
  EXPECT_EQ(we.code, static_cast<std::uint8_t>(DecodeError::BadMagic));
  EXPECT_TRUE(peer_closed(fd.get()));
  // The service survives and still answers a well-behaved client.
  Client client(h.client_options());
  EXPECT_TRUE(client.ping().ok());
  EXPECT_GE(h.service.stats().malformed, 1u);
}

TEST(NetService, ServerTypeFrameFromClientIsAProtocolError) {
  Harness h;
  std::string err;
  Fd fd = connect_tcp("", h.service.port(), 1000, err);
  ASSERT_TRUE(fd.valid()) << err;
  Frame f;
  f.type = FrameType::ConsultReply;  // clients must not send replies
  f.request_id = 1;
  std::vector<std::uint8_t> buf;
  encode_frame(f, buf);
  ASSERT_GT(write_some(fd.get(), buf.data(), buf.size()), 0);
  Frame reply;
  ASSERT_TRUE(read_one_frame(fd.get(), reply));
  EXPECT_EQ(reply.type, FrameType::Error);
  EXPECT_TRUE(peer_closed(fd.get()));
}

// ------------------------------------------------------------------- drain ---

TEST(NetService, DrainSendsGoAwayResolvesEverythingAndStops) {
  Harness h;
  Client client(h.client_options());
  ASSERT_EQ(client.consult(0, 0.5).status.code(), StatusCode::Ok);

  // A raw idle connection observes the GoAway when drain begins. Exchange
  // a Ping first: connect_tcp returns on the kernel handshake, and a drain
  // racing ahead of the loop's accept would close the listener before this
  // connection ever existed service-side.
  std::string err;
  Fd idle = connect_tcp("", h.service.port(), 1000, err);
  ASSERT_TRUE(idle.valid()) << err;
  {
    Frame ping;
    ping.type = FrameType::Ping;
    ping.request_id = 7;
    std::vector<std::uint8_t> buf;
    encode_frame(ping, buf);
    ASSERT_GT(write_some(idle.get(), buf.data(), buf.size()), 0);
    Frame pong;
    ASSERT_TRUE(read_one_frame(idle.get(), pong));
    ASSERT_EQ(pong.type, FrameType::Pong);
  }

  h.service.request_drain();
  Frame goaway;
  ASSERT_TRUE(read_one_frame(idle.get(), goaway));
  EXPECT_EQ(goaway.type, FrameType::GoAway);

  // The loop exits on its own once drained; stop() just joins.
  const auto deadline = Clock::now() + std::chrono::seconds(10);
  while (h.service.running() && Clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(h.service.running());
  h.service.stop();

  // Post-drain requests get a definite client-side failure, not a hang.
  ClientOptions copt = h.client_options();
  copt.max_attempts = 1;
  copt.connect_timeout_ms = 200;
  Client late(copt);
  const ConsultOutcome out = late.consult(0, 0.5, 300);
  EXPECT_FALSE(out.status.ok());
  EXPECT_GE(h.service.stats().goaway_sent, 1u);
}

TEST(NetService, DrainUnderLoadResolvesEveryInFlightRequest) {
  ServiceOptions sopts;
  sopts.max_queue = 256;
  sopts.drain_grace_ms = 3000;
  Harness h(sopts, /*threads=*/2);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> sent{0}, resolved{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      ClientOptions copt = h.client_options();
      copt.max_attempts = 1;
      copt.connect_timeout_ms = 200;
      copt.seed = static_cast<std::uint64_t>(t) + 11;
      Client client(copt);
      while (!stop.load(std::memory_order_relaxed)) {
        sent++;
        const ConsultOutcome out =
            client.consult(static_cast<std::uint32_t>(sent % 6), 0.25, 1000);
        // Every call must resolve with SOME definite status (including
        // client-side unavailable after the listener closes) -- never hang.
        (void)out;
        resolved++;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  h.service.request_drain();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  for (auto& t : threads) t.join();
  h.service.stop();
  EXPECT_EQ(sent.load(), resolved.load());
  const ServiceStats s = h.service.stats();
  // Conservation at the service: every admitted consult got a definite
  // reply (sheds included), none was silently dropped.
  EXPECT_EQ(s.consults, s.answered);
}

// ---------------------------------------------------------------- failover ---

TEST(NetClient, FailsOverToASecondReplica) {
  Harness a;
  Harness b;
  ClientOptions copt;
  copt.endpoints = {Endpoint{"", a.service.port()}, Endpoint{"", b.service.port()}};
  copt.max_attempts = 6;
  Client client(copt);
  ASSERT_EQ(client.consult(0, 0.5).status.code(), StatusCode::Ok);

  // Kill the replica the client is pinned to; the next consult must land on
  // the survivor via failover instead of failing.
  const std::size_t cur = client.endpoint_index();
  (cur == 0 ? a : b).service.stop();
  const ConsultOutcome out = client.consult(1, 0.5, 3000);
  EXPECT_EQ(out.status.code(), StatusCode::Ok) << out.status.to_string();
  EXPECT_GE(client.stats().failovers, 1u);
}

// ---------------------------------------------------------------- counters ---

TEST(NetService, StatsAndGaugesStayConsistent) {
  Harness h;
  {
    Client client(h.client_options());
    for (int i = 0; i < 20; ++i)
      ASSERT_TRUE(client.consult(static_cast<std::uint32_t>(i % 6), 0.5).status.ok());
  }
  h.service.stop();
  const ServiceStats s = h.service.stats();
  EXPECT_EQ(s.consults, 20u);
  EXPECT_EQ(s.answered, 20u);
  EXPECT_GE(s.frames_rx, 20u);
  EXPECT_GE(s.frames_tx, 20u);
  EXPECT_GT(s.bytes_rx, 0u);
  EXPECT_GT(s.bytes_tx, 0u);
  EXPECT_GE(s.accepted, 1u);
  EXPECT_EQ(s.accepted, s.closed) << "connection leak";
}

}  // namespace
}  // namespace agora::net
