// tier2-chaos: federated credit settlement driven over the PR 1 fault-
// injected message bus (rms/bus.h + rms/fault.h).
//
// The engine settles synchronously under its mutation lock; a distributed
// deployment settles over an unreliable network. This harness runs the
// ledger's two-phase settlement discipline as a bus protocol -- coordinator
// plans a round, distributes absolute credit tables (rms::CreditGrant) to
// borrower shards with at-least-once retries, commits only after every
// borrower acked (rms::CreditAck), shards dedup by settle id -- and proves
// under drops, duplicates, jitter reorders, a partition, and a crash window
// that:
//
//   * loans are never lost or duplicated: every round is applied exactly
//     once per shard, and the shard tables converge bit-exactly to the
//     ledger;
//   * degradation is local-only admission, never an uncertified grant: a
//     shard cut off mid-round keeps admitting against its last *applied*
//     credit table (stale but certified), never against in-flight state;
//   * same-seed runs replay byte-identically, and different fault seeds
//     still converge to the identical final state.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "engine/credit.h"
#include "rms/bus.h"
#include "rms/fault.h"
#include "rms/messages.h"

namespace agora::engine {
namespace {

constexpr std::size_t kShards = 3;
constexpr std::uint64_t kRounds = 6;

/// Deterministic per-round loan target for credit `id`: cycles through
/// grants, growth, shrinkage and full revocation so every lifecycle edge
/// (including revoke-to-zero) crosses the faulty bus.
double round_target(std::uint64_t settle_id, std::uint64_t id) {
  return 1.25 * static_cast<double>((settle_id + id) % 4);
}

struct Harness {
  rms::MessageBus bus;
  CreditLedger ledger;

  rms::EndpointId coord = 0;
  std::vector<rms::EndpointId> shard_ep;

  // Coordinator: the in-flight round (settle id == round number).
  std::uint64_t inflight = 0;  ///< 0 = no round in flight
  CreditLedger::SettlementPlan plan;
  std::set<std::size_t> awaiting;  ///< borrower shards yet to ack

  // Borrower shards: last applied round + the applied credit table.
  struct ShardState {
    std::uint64_t last_applied = 0;
    std::map<std::uint64_t, double> table;  ///< credit id -> remaining
    std::vector<std::uint64_t> applied;     ///< settle ids, in apply order

    double pool() const {
      double s = 0.0;
      for (const auto& [id, rem] : table) s += rem;
      return s;
    }
    /// Local-only admission: grant against the last applied table, nothing
    /// else. A stale table degrades the grant; it never inflates it.
    double admit(double demand) const { return std::min(demand, pool()); }
  };
  std::vector<ShardState> shard{kShards};

  std::vector<std::string> log;  ///< deterministic event log (replay check)

  void note(const char* fmt, std::uint64_t a, std::uint64_t b) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), fmt, a, b);
    log.emplace_back(buf);
  }

  std::vector<std::size_t> borrower_shards() const {
    std::set<std::size_t> s;
    for (const Credit& c : ledger.credits()) s.insert(c.borrower_shard);
    return {s.begin(), s.end()};
  }

  void send_grant(std::size_t s) {
    rms::CreditGrant g;
    g.settle_id = inflight;
    g.shard = s;
    for (const Credit& c : ledger.credits()) {
      if (c.borrower_shard != s) continue;
      g.credit_ids.push_back(c.id);
      // Absolute planned balance: commit lands each credit exactly on its
      // clamped target, so the table can be shipped before the commit --
      // borrowers shrink first (revoke-safe), grow only after the round.
      g.remaining.push_back(std::max(0.0, round_target(inflight, c.id)));
    }
    bus.post(coord, shard_ep[s], std::move(g), /*latency=*/0.2);
  }

  void begin_round(std::uint64_t settle_id) {
    inflight = settle_id;
    std::vector<double> targets(ledger.size(), 0.0);
    for (const Credit& c : ledger.credits())
      targets[c.id] = round_target(settle_id, c.id);
    plan = ledger.plan_settlement(targets);
    EXPECT_EQ(plan.settle_id, settle_id);
    awaiting.clear();
    for (std::size_t s : borrower_shards()) {
      awaiting.insert(s);
      send_grant(s);
    }
    note("begin sid=%llu n=%llu", settle_id, awaiting.size());
    bus.post(coord, coord, rms::Timer{settle_id}, /*latency=*/1.5);
  }

  void on_coord(const rms::Envelope& env) {
    if (const auto* ack = std::get_if<rms::CreditAck>(&env.payload)) {
      if (ack->settle_id != inflight) return;  // stale ack from an old round
      if (awaiting.erase(ack->shard) == 0) return;
      note("ack sid=%llu s=%llu", ack->settle_id, ack->shard);
      if (!awaiting.empty()) return;
      // Every borrower holds the round's tables: commit and move on.
      EXPECT_TRUE(ledger.commit(plan));
      note("commit sid=%llu last=%llu", inflight, ledger.last_settle_id());
      if (inflight < kRounds) begin_round(inflight + 1);
      return;
    }
    if (const auto* t = std::get_if<rms::Timer>(&env.payload)) {
      // Retry tick for round `token`: re-send to whoever has not acked.
      if (t->token != inflight || awaiting.empty()) return;
      for (std::size_t s : awaiting) send_grant(s);
      bus.post(coord, coord, rms::Timer{t->token}, /*latency=*/1.5);
    }
  }

  void on_shard(std::size_t s, const rms::Envelope& env) {
    const auto* g = std::get_if<rms::CreditGrant>(&env.payload);
    if (g == nullptr) return;
    ShardState& st = shard[s];
    if (g->settle_id > st.last_applied) {
      st.table.clear();
      for (std::size_t i = 0; i < g->credit_ids.size(); ++i)
        st.table[g->credit_ids[i]] = g->remaining[i];
      st.last_applied = g->settle_id;
      st.applied.push_back(g->settle_id);
      note("apply sid=%llu s=%llu", g->settle_id, s);
    }
    // Ack unconditionally: duplicates and replays re-ack (idempotence).
    bus.post(shard_ep[s], coord, rms::CreditAck{g->settle_id, s}, /*latency=*/0.2);
  }
};

struct RunResult {
  std::vector<std::string> log;
  std::string final_state;  ///< ledger digest + per-shard tables
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
};

RunResult run_scenario(std::uint64_t fault_seed) {
  Harness h;
  // Fixed economy (independent of the fault seed): 8 cross-shard credits
  // over 3 shards, lender/borrower spread chosen to give every shard both
  // inbound and outbound credits.
  const std::size_t edges[8][4] = {
      // lender, borrower, lender_shard, borrower_shard
      {0, 4, 0, 1}, {1, 8, 0, 2}, {4, 0, 1, 0}, {5, 9, 1, 2},
      {8, 1, 2, 0}, {9, 5, 2, 1}, {2, 6, 0, 1}, {6, 10, 1, 2},
  };
  for (const auto& e : edges) h.ledger.add_credit(e[0], e[1], e[2], e[3]);

  h.coord = h.bus.add_endpoint([&h](const rms::Envelope& env) { h.on_coord(env); });
  for (std::size_t s = 0; s < kShards; ++s)
    h.shard_ep.push_back(
        h.bus.add_endpoint([&h, s](const rms::Envelope& env) { h.on_shard(s, env); }));
  // A restarting shard re-announces its last applied round, like an LRM
  // resync: the ack it may have lost in the crash is regenerated.
  for (std::size_t s = 0; s < kShards; ++s)
    h.bus.set_restart_handler(h.shard_ep[s], [&h, s] {
      h.bus.post(h.shard_ep[s], h.coord,
                 rms::CreditAck{h.shard[s].last_applied, s}, /*latency=*/0.2);
    });

  rms::FaultPlan fp;
  fp.seed = fault_seed;
  fp.default_link = {/*drop=*/0.25, /*duplicate=*/0.25, /*jitter=*/0.5};
  fp.partitions.push_back({/*start=*/2.0, /*end=*/6.0, {h.shard_ep[1]}});
  fp.crashes.push_back({h.shard_ep[2], /*start=*/4.0, /*end=*/9.0});
  h.bus.set_fault_plan(fp);

  h.begin_round(1);

  // Mid-chaos probes: a partitioned/crashed shard falls behind the
  // coordinator but keeps admitting against its last APPLIED table --
  // degraded (stale, possibly smaller pool), never uncertified (the grant
  // can never exceed the applied pool, and in-flight rounds are invisible).
  bool stale_admission = false;
  for (double t = 0.5; t <= 11.5; t += 0.5) {
    h.bus.run_until(t);
    for (std::size_t s = 0; s < kShards; ++s) {
      const double pool = h.shard[s].pool();
      EXPECT_LE(h.shard[s].admit(1e9), pool + 1e-12);
      EXPECT_GE(h.shard[s].admit(1e9), 0.0);
      const bool dark = (s == 1 && t >= 2.0 && t < 6.0) ||  // partitioned
                        (s == 2 && t >= 4.0 && t < 9.0);    // crashed
      if (dark && h.shard[s].last_applied < h.inflight) stale_admission = true;
    }
  }
  EXPECT_TRUE(stale_admission) << "chaos windows produced no staleness to test";

  // Heal and drain: retries push every round through.
  h.bus.run_until_idle();

  EXPECT_EQ(h.ledger.last_settle_id(), kRounds);
  EXPECT_EQ(h.inflight, kRounds);
  EXPECT_TRUE(h.awaiting.empty());
  EXPECT_GT(h.bus.dropped(), 0u) << "fault layer never engaged";
  EXPECT_GT(h.bus.duplicated(), 0u) << "fault layer never duplicated";

  // Exactly-once application per shard: strictly increasing settle ids,
  // duplicates and replays all filtered.
  for (std::size_t s = 0; s < kShards; ++s) {
    const auto& a = h.shard[s].applied;
    for (std::size_t i = 1; i < a.size(); ++i) EXPECT_LT(a[i - 1], a[i]);
    EXPECT_EQ(h.shard[s].last_applied, kRounds);
  }

  // Loans never lost or duplicated: every shard table matches the ledger
  // credit-for-credit, and the pools sum to the ledger's outstanding total.
  double pools = 0.0;
  for (const Credit& c : h.ledger.credits()) {
    const auto& table = h.shard[c.borrower_shard].table;
    const auto it = table.find(c.id);
    EXPECT_NE(it, table.end());
    if (it != table.end()) {
      EXPECT_EQ(it->second, c.remaining());  // bit-exact, not just close
    }
  }
  for (std::size_t s = 0; s < kShards; ++s) pools += h.shard[s].pool();
  EXPECT_NEAR(pools, h.ledger.totals().outstanding, 1e-12);

  RunResult r;
  r.log = h.log;
  r.final_state = h.ledger.digest();
  for (std::size_t s = 0; s < kShards; ++s) {
    for (const auto& [id, rem] : h.shard[s].table) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "s%zu c%llu=%.17g\n", s,
                    static_cast<unsigned long long>(id), rem);
      r.final_state += buf;
    }
  }
  r.dropped = h.bus.dropped();
  r.duplicated = h.bus.duplicated();
  return r;
}

TEST(FederationChaos, SettlementSurvivesDropsDuplicatesPartitionAndCrash) {
  run_scenario(11);  // all assertions live inside the scenario
}

TEST(FederationChaos, SameSeedReplaysByteIdentically) {
  const RunResult a = run_scenario(11);
  const RunResult b = run_scenario(11);
  EXPECT_EQ(a.log, b.log);
  EXPECT_EQ(a.final_state, b.final_state);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.duplicated, b.duplicated);
}

TEST(FederationChaos, DifferentFaultSeedsConvergeToTheSameState) {
  const RunResult a = run_scenario(11);
  const RunResult b = run_scenario(12);
  // The chaos differs, the outcome must not: settlement is deterministic in
  // the rounds, not in the weather.
  EXPECT_EQ(a.final_state, b.final_state);
}

}  // namespace
}  // namespace agora::engine
