// Unit tests for the GRM/LRM resource management substrate: bus semantics,
// the reserve/release lifecycle, agreement-aware decisions, staleness
// handling, and multi-level GRM escalation.
#include <gtest/gtest.h>

#include "agree/matrices.h"
#include "rms/bus.h"
#include "rms/grm.h"
#include "rms/lrm.h"
#include "util/error.h"

namespace agora::rms {
namespace {

// -------------------------------------------------------------------- bus ---

TEST(Bus, DeliversInTimestampOrder) {
  MessageBus bus;
  std::vector<int> order;
  const EndpointId a = bus.add_endpoint([&](const Envelope& env) {
    order.push_back(static_cast<int>(std::get<ReleaseNotice>(env.payload).request_id));
  });
  bus.post(a, a, ReleaseNotice{2}, 2.0);
  bus.post(a, a, ReleaseNotice{1}, 1.0);
  bus.post(a, a, ReleaseNotice{3}, 3.0);
  bus.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(bus.now(), 3.0);
}

TEST(Bus, FifoAmongSimultaneous) {
  MessageBus bus;
  std::vector<int> order;
  const EndpointId a = bus.add_endpoint([&](const Envelope& env) {
    order.push_back(static_cast<int>(std::get<ReleaseNotice>(env.payload).request_id));
  });
  for (int i = 0; i < 5; ++i) bus.post(a, a, ReleaseNotice{static_cast<std::uint64_t>(i)}, 1.0);
  bus.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Bus, RunawayLoopDetected) {
  MessageBus bus;
  EndpointId a = 0;
  a = bus.add_endpoint([&](const Envelope&) { bus.post(a, a, ReleaseNotice{0}, 1.0); });
  bus.post(a, a, ReleaseNotice{0}, 0.0);
  EXPECT_THROW(bus.run_until_idle(1000), InternalError);
}

TEST(Bus, RejectsUnknownEndpoints) {
  MessageBus bus;
  EXPECT_THROW(bus.post(0, 1, ReleaseNotice{0}), PreconditionError);
}

// ----------------------------------------------------------------- fixture ---

/// Two sites, one "cpu" resource: site 1 owns 10 units and shares 50% with
/// site 0, which owns 2.
struct TwoSiteRig {
  MessageBus bus;
  std::vector<agree::AgreementSystem> systems;
  Grm grm;
  Lrm lrm0, lrm1;
  EndpointId client;
  std::vector<AllocationReply> replies;

  static std::vector<agree::AgreementSystem> make_systems() {
    agree::AgreementSystem cpu(2);
    cpu.capacity = {2.0, 10.0};
    cpu.relative(1, 0) = 0.5;
    return {cpu};
  }

  TwoSiteRig(double report_latency = 0.0, double decision_latency = 0.0)
      : systems(make_systems()), grm(bus, systems, {}, decision_latency),
        lrm0(bus, {2.0}, report_latency), lrm1(bus, {10.0}, report_latency) {
    grm.register_lrm(0, lrm0.endpoint());
    grm.register_lrm(1, lrm1.endpoint());
    lrm0.attach(grm.endpoint(), 0);
    lrm1.attach(grm.endpoint(), 1);
    client = bus.add_endpoint([this](const Envelope& env) {
      if (const auto* r = std::get_if<AllocationReply>(&env.payload)) replies.push_back(*r);
    });
    bus.run_until_idle();
  }

  AllocationReply request(std::uint64_t id, std::size_t principal, double amount,
                          double duration = 0.0) {
    AllocationRequest req;
    req.request_id = id;
    req.principal = principal;
    req.amounts = {amount};
    req.duration = duration;
    bus.post(client, grm.endpoint(), req);
    bus.run_until_idle();
    AGORA_REQUIRE(!replies.empty(), "no reply received");
    AllocationReply r = replies.back();
    AGORA_REQUIRE(r.request_id == id, "reply id mismatch");
    return r;
  }
};

// -------------------------------------------------------------------- LRM ---

TEST(Lrm, ReportsOnAttach) {
  TwoSiteRig rig;
  EXPECT_DOUBLE_EQ(rig.grm.known_available(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(rig.grm.known_available(1, 0), 10.0);
}

TEST(Lrm, AdjustCapacityPropagates) {
  TwoSiteRig rig;
  rig.lrm1.adjust_capacity(0, 5.0);
  rig.bus.run_until_idle();
  EXPECT_DOUBLE_EQ(rig.grm.known_available(1, 0), 15.0);
}

// -------------------------------------------------------------------- GRM ---

TEST(Grm, GrantsWithinOwnCapacity) {
  TwoSiteRig rig;
  const AllocationReply r = rig.request(1, 1, 8.0);
  ASSERT_TRUE(r.granted);
  EXPECT_NEAR(r.draws[0][1], 8.0, 1e-9);
  EXPECT_NEAR(rig.lrm1.available()[0], 2.0, 1e-9);
  EXPECT_EQ(rig.grm.grants(), 1u);
}

TEST(Grm, GrantsTransitivelySharedCapacity) {
  TwoSiteRig rig;
  // Site 0 owns 2 but can reach 2 + 10*0.5 = 7.
  const AllocationReply r = rig.request(2, 0, 6.0);
  ASSERT_TRUE(r.granted);
  EXPECT_GT(r.draws[0][1], 0.0);  // borrowed from site 1
  EXPECT_NEAR(r.draws[0][0] + r.draws[0][1], 6.0, 1e-9);
}

TEST(Grm, DeniesBeyondAgreements) {
  TwoSiteRig rig;
  // 8 > C_0 = 7 even though 12 units exist physically.
  const AllocationReply r = rig.request(3, 0, 8.0);
  EXPECT_FALSE(r.granted);
  EXPECT_FALSE(r.reason.empty());
  // Nothing was reserved.
  EXPECT_NEAR(rig.lrm0.available()[0], 2.0, 1e-9);
  EXPECT_NEAR(rig.lrm1.available()[0], 10.0, 1e-9);
}

TEST(Grm, ReleaseRestoresAvailability) {
  TwoSiteRig rig;
  AllocationRequest req;
  req.request_id = 4;
  req.principal = 1;
  req.amounts = {8.0};
  req.duration = 10.0;
  rig.bus.post(rig.client, rig.grm.endpoint(), req);
  // Run up to (but not past) the scheduled release at t = 10: the
  // reservation must be visible.
  rig.bus.run_until(5.0);
  ASSERT_EQ(rig.replies.size(), 1u);
  ASSERT_TRUE(rig.replies[0].granted);
  EXPECT_NEAR(rig.lrm1.available()[0], 2.0, 1e-9);
  EXPECT_EQ(rig.lrm1.active_reservations(), 1u);
  // The LRM schedules its own release after `duration`; draining the bus
  // runs it and the follow-up availability report.
  rig.bus.run_until_idle();
  EXPECT_NEAR(rig.lrm1.available()[0], 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(rig.grm.known_available(1, 0), 10.0);
  EXPECT_EQ(rig.lrm1.active_reservations(), 0u);
}

TEST(Grm, SequentialRequestsSeeUpdatedAvailability) {
  TwoSiteRig rig;
  ASSERT_TRUE(rig.request(5, 0, 6.0).granted);
  // The GRM's book-keeping reflects the draw; what principal 0 can still
  // reach is its own remainder plus half of site 1's.
  const double reachable =
      rig.grm.known_available(0, 0) + 0.5 * rig.grm.known_available(1, 0);
  EXPECT_LT(reachable, 7.0 - 6.0 + 3.01);  // draw consumed capacity
  EXPECT_FALSE(rig.request(6, 0, reachable + 0.1).granted);
  EXPECT_TRUE(rig.request(7, 0, reachable * 0.9).granted);
}

TEST(Grm, AgreementUpdateChangesDecisions) {
  TwoSiteRig rig;
  EXPECT_FALSE(rig.request(7, 0, 8.0).granted);
  // Raise the 1->0 share to 80%: C_0 = 2 + 8 = 10.
  AgreementUpdate upd;
  upd.resource = 0;
  upd.from = 1;
  upd.to = 0;
  upd.share = 0.8;
  rig.bus.post(rig.client, rig.grm.endpoint(), upd);
  rig.bus.run_until_idle();
  EXPECT_TRUE(rig.request(8, 0, 8.0).granted);
}

TEST(Grm, LatencyDelaysButPreservesCorrectness) {
  TwoSiteRig rig(/*report_latency=*/0.5, /*decision_latency=*/0.25);
  const AllocationReply r = rig.request(9, 0, 5.0);
  EXPECT_TRUE(r.granted);
  EXPECT_GT(rig.bus.now(), 0.0);
}

// ------------------------------------------------------------- multi-level ---

struct HierarchyRig {
  MessageBus bus;
  Grm root;
  Grm child;
  Lrm lrm0, lrm1, lrm2;
  EndpointId client;
  std::vector<AllocationReply> replies;

  static std::vector<agree::AgreementSystem> systems() {
    // Three sites; 2 shares 60% with 0 but lives outside the child's scope.
    agree::AgreementSystem cpu(3);
    cpu.capacity = {1.0, 2.0, 20.0};
    cpu.relative(1, 0) = 0.5;
    cpu.relative(2, 0) = 0.6;
    return {cpu};
  }

  HierarchyRig()
      : root(bus, systems()), child(bus, systems()),
        lrm0(bus, {1.0}), lrm1(bus, {2.0}), lrm2(bus, {20.0}) {
    // Child manages sites {0, 1} and escalates to the root.
    child.set_scope({0, 1}, root.endpoint());
    for (Grm* g : {&root, &child}) {
      g->register_lrm(0, lrm0.endpoint());
      g->register_lrm(1, lrm1.endpoint());
      g->register_lrm(2, lrm2.endpoint());
    }
    // LRMs report to both levels via the root; for the child's view attach
    // to the child (reports flow there), and mirror to the root manually.
    lrm0.attach(child.endpoint(), 0);
    lrm1.attach(child.endpoint(), 1);
    lrm2.attach(root.endpoint(), 2);
    client = bus.add_endpoint([this](const Envelope& env) {
      if (const auto* r = std::get_if<AllocationReply>(&env.payload)) replies.push_back(*r);
    });
    bus.run_until_idle();
  }
};

TEST(MultiLevel, ChildSatisfiesLocalRequests) {
  HierarchyRig rig;
  AllocationRequest req;
  req.request_id = 1;
  req.principal = 0;
  req.amounts = {1.5};  // within child scope: 1 + 2*0.5 = 2 reachable
  rig.bus.post(rig.client, rig.child.endpoint(), req);
  rig.bus.run_until_idle();
  ASSERT_EQ(rig.replies.size(), 1u);
  EXPECT_TRUE(rig.replies[0].granted);
  EXPECT_EQ(rig.child.forwards(), 0u);
}

TEST(MultiLevel, ChildEscalatesToParent) {
  HierarchyRig rig;
  AllocationRequest req;
  req.request_id = 2;
  req.principal = 0;
  req.amounts = {5.0};  // needs site 2's capacity, outside the child scope
  rig.bus.post(rig.client, rig.child.endpoint(), req);
  rig.bus.run_until_idle();
  ASSERT_EQ(rig.replies.size(), 1u);
  EXPECT_TRUE(rig.replies[0].granted);
  EXPECT_EQ(rig.child.forwards(), 1u);
  EXPECT_EQ(rig.root.grants(), 1u);
  EXPECT_GT(rig.replies[0].draws[0][2], 0.0);
}

TEST(MultiLevel, RootDeniesImpossibleEscalation) {
  HierarchyRig rig;
  AllocationRequest req;
  req.request_id = 3;
  req.principal = 0;
  req.amounts = {100.0};
  rig.bus.post(rig.client, rig.child.endpoint(), req);
  rig.bus.run_until_idle();
  ASSERT_EQ(rig.replies.size(), 1u);
  EXPECT_FALSE(rig.replies[0].granted);
}

// A GRM whose sites never registered or reported must not expose the
// declared capacities as if they had been observed: known_available
// answers zero (and counts the blind query), and a request is denied
// cleanly instead of allocating phantom resources.
TEST(Grm, NeverReportedSitesReadAsZero) {
  MessageBus bus;
  agree::AgreementSystem cpu(2);
  cpu.capacity = {2.0, 10.0};
  cpu.relative(1, 0) = 0.5;
  Grm grm(bus, {cpu});
  EXPECT_DOUBLE_EQ(grm.known_available(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(grm.known_available(1, 0), 0.0);
  EXPECT_EQ(grm.unknown_queries(), 2u);

  std::vector<AllocationReply> replies;
  const EndpointId client = bus.add_endpoint([&](const Envelope& env) {
    if (const auto* r = std::get_if<AllocationReply>(&env.payload)) replies.push_back(*r);
  });
  AllocationRequest req;
  req.request_id = 1;
  req.principal = 0;
  req.amounts = {1.0};
  bus.post(client, grm.endpoint(), req);
  bus.run_until_idle();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_FALSE(replies[0].granted);
  EXPECT_FALSE(replies[0].reason.empty());
}

}  // namespace
}  // namespace agora::rms
