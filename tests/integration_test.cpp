// Integration tests spanning the full stack: economy -> valuation ->
// matrices -> transitive capacities -> LP allocation -> GRM/LRM, plus
// reduced-scale versions of the paper's case-study claims.
#include <gtest/gtest.h>

#include "agree/capacity.h"
#include "agree/from_economy.h"
#include "agree/topology.h"
#include "alloc/allocator.h"
#include "core/economy.h"
#include "core/valuation.h"
#include "proxysim/simulator.h"
#include "rms/bus.h"
#include "rms/grm.h"
#include "rms/lrm.h"
#include "trace/generator.h"

namespace agora {
namespace {

// ----------------------------------------------- economy -> LP end to end ---

TEST(Integration, Example1EconomyDrivesAllocation) {
  // Build Figure 1's economy, lower it to matrices, and let D allocate more
  // than any single agreement could provide.
  core::Economy e;
  const auto disk = e.add_resource_type("disk", "TB");
  const auto a = e.add_principal("A", 1000.0);
  const auto b = e.add_principal("B", 100.0);
  e.add_principal("C", 100.0);
  const auto d = e.add_principal("D", 100.0);
  e.fund_with_resource(e.default_currency(a), disk, 10.0);
  e.fund_with_resource(e.default_currency(b), disk, 15.0);
  e.issue_relative(e.default_currency(a), e.default_currency(b), 500.0, disk);
  e.issue_relative(e.default_currency(b), e.default_currency(d), 60.0, disk);

  const agree::AgreementSystem sys = agree::from_economy(e, disk);
  alloc::Allocator allocator(sys);
  // D can reach 12 (9 from B's own 15 plus 3 transitively from A).
  EXPECT_NEAR(allocator.available_to(3), 12.0, 1e-9);

  const alloc::AllocationPlan plan = allocator.allocate(3, 10.0);
  ASSERT_TRUE(plan.satisfied());
  EXPECT_NEAR(plan.total_drawn(), 10.0, 1e-9);
  EXPECT_GT(plan.draw[0], 0.0);  // some capacity came transitively from A
  EXPECT_GT(plan.draw[1], 0.0);

  // Valuation agrees with the availability the allocator computed.
  const core::Valuation v = core::value_economy(e);
  EXPECT_NEAR(v.currency_value(e.default_currency(d), disk), allocator.available_to(3) + 0.0,
              1e-9);
}

TEST(Integration, EconomyRevocationShrinksAllocatorReach) {
  core::Economy e;
  const auto cpu = e.add_resource_type("cpu");
  const auto a = e.add_principal("A", 100.0);
  const auto b = e.add_principal("B", 100.0);
  e.fund_with_resource(e.default_currency(a), cpu, 10.0);
  const auto tick = e.issue_relative(e.default_currency(a), e.default_currency(b), 50.0, cpu);

  EXPECT_NEAR(alloc::Allocator(agree::from_economy(e, cpu)).available_to(1), 5.0, 1e-12);
  e.revoke(tick);
  EXPECT_NEAR(alloc::Allocator(agree::from_economy(e, cpu)).available_to(1), 0.0, 1e-12);
}

// ---------------------------------------------- economy -> GRM end to end ---

TEST(Integration, EconomyDrivenGrm) {
  // The GRM consumes the same bridge output; a virtual-currency-routed
  // agreement must be enforceable through the full message flow.
  core::Economy e;
  const auto cpu = e.add_resource_type("cpu");
  const auto a = e.add_principal("A", 100.0);
  const auto b = e.add_principal("B", 100.0);
  e.fund_with_resource(e.default_currency(a), cpu, 16.0);
  e.fund_with_resource(e.default_currency(b), cpu, 4.0);
  const auto vc = e.create_virtual_currency(a, "A-partners", 100.0);
  e.issue_relative(e.default_currency(a), vc, 50.0, cpu);
  e.issue_relative(vc, e.default_currency(b), 100.0, cpu);  // B gets all of it

  rms::MessageBus bus;
  rms::Grm grm(bus, {agree::from_economy(e, cpu)});
  rms::Lrm lrm_a(bus, {16.0});
  rms::Lrm lrm_b(bus, {4.0});
  grm.register_lrm(0, lrm_a.endpoint());
  grm.register_lrm(1, lrm_b.endpoint());
  lrm_a.attach(grm.endpoint(), 0);
  lrm_b.attach(grm.endpoint(), 1);

  std::vector<rms::AllocationReply> replies;
  const rms::EndpointId client = bus.add_endpoint([&](const rms::Envelope& env) {
    if (const auto* r = std::get_if<rms::AllocationReply>(&env.payload)) replies.push_back(*r);
  });
  bus.run_until_idle();

  rms::AllocationRequest req;
  req.request_id = 1;
  req.principal = 1;            // B
  req.amounts = {10.0};         // needs A's shared 8 on top of its own 4
  bus.post(client, grm.endpoint(), req);
  bus.run_until_idle();
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_TRUE(replies[0].granted);
  EXPECT_GT(replies[0].draws[0][0], 0.0);
  EXPECT_NEAR(replies[0].draws[0][0] + replies[0].draws[0][1], 10.0, 1e-9);
}

// ------------------------------------------ case-study claims, small scale ---

/// Two-hour, three-proxy flavor of the paper's scenario (fast enough for a
/// unit test): phase-shifted sinusoid-ish load via the berkeley profile.
std::vector<std::vector<trace::TraceRequest>> small_skewed_traces() {
  trace::GeneratorConfig gc;
  gc.peak_rate = 9.5;
  const trace::Generator gen(gc, trace::DiurnalProfile::berkeley_like(7200.0, 12));
  std::vector<std::vector<trace::TraceRequest>> traces;
  for (std::size_t p = 0; p < 3; ++p)
    traces.push_back(gen.generate(50 + p, 2400.0 * static_cast<double>(p)));
  return traces;
}

proxysim::SimConfig small_cfg(proxysim::SchedulerKind kind) {
  proxysim::SimConfig cfg;
  cfg.num_proxies = 3;
  cfg.horizon = 7200.0;
  cfg.slot_width = 600.0;
  cfg.scheduler = kind;
  if (kind != proxysim::SchedulerKind::None)
    cfg.agreements = agree::complete_graph(3, 0.25);
  return cfg;
}

TEST(Integration, SharingReducesWaitsWithSkewedLoad) {
  const auto traces = small_skewed_traces();
  const auto none = proxysim::Simulator(small_cfg(proxysim::SchedulerKind::None)).run(traces);
  const auto lp = proxysim::Simulator(small_cfg(proxysim::SchedulerKind::Lp)).run(traces);
  EXPECT_LT(lp.mean_wait(), none.mean_wait());
  EXPECT_LT(lp.peak_slot_wait(), none.peak_slot_wait());
  EXPECT_GT(lp.redirected_requests, 0u);
}

TEST(Integration, RedirectCostDoesNotDestabilize) {
  // The Figure 12 claim at small scale: overhead as large as 2x the mean
  // service time must not blow the system up (the wait-benefit cap damps
  // the churn feedback).
  const auto traces = small_skewed_traces();
  proxysim::SimConfig cfg = small_cfg(proxysim::SchedulerKind::Lp);
  const auto free_cost = proxysim::Simulator(cfg).run(traces);
  cfg.redirect_cost = 0.2;
  const auto costly = proxysim::Simulator(cfg).run(traces);
  EXPECT_LT(costly.mean_wait(), free_cost.mean_wait() * 4.0 + 1.0);
  EXPECT_LT(costly.redirected_fraction(), 0.15);
}

TEST(Integration, TransitivityLevelMonotonicOnRing) {
  // On a loop structure, more transitivity can only widen reach; waits at
  // level 3 must not exceed level 1 materially.
  const auto traces = small_skewed_traces();
  proxysim::SimConfig cfg = small_cfg(proxysim::SchedulerKind::Lp);
  cfg.agreements = agree::ring(3, 0.8, 1);
  cfg.alloc_opts.transitive.max_level = 1;
  const auto level1 = proxysim::Simulator(cfg).run(traces);
  cfg.alloc_opts.transitive.max_level = 2;
  const auto level2 = proxysim::Simulator(cfg).run(traces);
  EXPECT_LE(level2.mean_wait(), level1.mean_wait() * 1.25 + 0.5);
}

TEST(Integration, WorkConservedUnderRedirection) {
  const auto traces = small_skewed_traces();
  std::uint64_t generated = 0;
  for (const auto& t : traces) generated += t.size();
  const auto m = proxysim::Simulator(small_cfg(proxysim::SchedulerKind::Lp)).run(traces);
  EXPECT_EQ(m.total_requests, generated);
  EXPECT_EQ(m.wait_overall.count(), generated);  // each served exactly once
}

}  // namespace
}  // namespace agora
