// Unit tests for the lp::Verifier: correct answers from every solver must
// certify, and hand-built WRONG answers -- infeasible points labeled
// optimal, forged duals, bogus Farkas/ray certificates -- must be rejected.
// The Verifier is the trust anchor of the certified enforcement chain, so
// these tests check both directions: no false accepts, no false rejects.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lp/brute_force.h"
#include "lp/certify.h"
#include "lp/model_builder.h"
#include "lp/problem.h"
#include "lp/solve.h"
#include "lp/solve_pipeline.h"
#include "lp/standard_form.h"

namespace agora::lp {
namespace {


// The certification tests target raw solver answers, so presolve is off; the
// presolve+postsolve path gets its own certification coverage elsewhere.
SolveOptions backend_opts(Backend b) {
  SolveOptions o;
  o.backend = b;
  o.presolve = false;
  return o;
}
SolveResult tableau_solve(const Problem& p) { return solve(p, backend_opts(Backend::Tableau)); }
SolveResult revised_solve(const Problem& p) { return solve(p, backend_opts(Backend::Revised)); }

// max 3x + 2y  s.t.  x + y <= 4,  x + 3y <= 6,  x, y >= 0.
// Optimum (4, 0), objective 12, duals (3, 0).
Problem classic_max() {
  Problem p(Sense::Maximize);
  p.add_variable("x", 0.0, kInfinity, 3.0);
  p.add_variable("y", 0.0, kInfinity, 2.0);
  p.add_constraint({1.0, 1.0}, Relation::LessEqual, 4.0);
  p.add_constraint({1.0, 3.0}, Relation::LessEqual, 6.0);
  return p;
}

// min 2x + 3y  s.t.  x + y >= 2,  x - y = 0,  0 <= x, y <= 5.
Problem classic_min() {
  Problem p(Sense::Minimize);
  p.add_variable("x", 0.0, 5.0, 2.0);
  p.add_variable("y", 0.0, 5.0, 3.0);
  p.add_constraint({1.0, 1.0}, Relation::GreaterEqual, 2.0);
  p.add_constraint({1.0, -1.0}, Relation::Equal, 0.0);
  return p;
}

// x + y <= 1 together with x + y >= 3: infeasible.
Problem infeasible_box() {
  Problem p(Sense::Minimize);
  p.add_variable("x", 0.0, kInfinity, 1.0);
  p.add_variable("y", 0.0, kInfinity, 1.0);
  p.add_constraint({1.0, 1.0}, Relation::LessEqual, 1.0);
  p.add_constraint({1.0, 1.0}, Relation::GreaterEqual, 3.0);
  return p;
}

// min -x  s.t.  x - y <= 1,  x, y >= 0: ride y upward forever.
Problem unbounded_ramp() {
  Problem p(Sense::Minimize);
  p.add_variable("x", 0.0, kInfinity, -1.0);
  p.add_variable("y", 0.0, kInfinity, 0.0);
  p.add_constraint({1.0, -1.0}, Relation::LessEqual, 1.0);
  return p;
}

// ------------------------------------------------- correct answers certify --

TEST(Certify, AcceptsTableauOptimalWithDuals) {
  const Problem p = classic_max();
  const SolveResult r = tableau_solve(p);
  ASSERT_EQ(r.status, Status::Optimal);
  Verifier v;
  const Certificate cert = v.certify(p, r);
  EXPECT_TRUE(cert.certified) << (cert.reject ? cert.reject : "");
  EXPECT_EQ(cert.claim, Certificate::Claim::Optimal);
  EXPECT_FALSE(cert.primal_only);
  EXPECT_LT(cert.primal_residual, 1e-9);
  EXPECT_LT(cert.dual_residual, 1e-9);
  EXPECT_LT(cert.objective_gap, 1e-9);
}

TEST(Certify, AcceptsRevisedOptimalWithDuals) {
  const Problem p = classic_min();
  const SolveResult r = revised_solve(p);
  ASSERT_EQ(r.status, Status::Optimal);
  Verifier v;
  const Certificate cert = v.certify(p, r);
  EXPECT_TRUE(cert.certified) << (cert.reject ? cert.reject : "");
  EXPECT_EQ(cert.claim, Certificate::Claim::Optimal);
}

TEST(Certify, AcceptsBruteForcePrimalOnly) {
  const Problem p = classic_min();
  const SolveResult r = brute_force_solve(p);
  ASSERT_EQ(r.status, Status::Optimal);
  ASSERT_TRUE(r.duals.empty());
  Verifier v;
  const Certificate cert = v.certify(p, r);
  EXPECT_TRUE(cert.certified) << (cert.reject ? cert.reject : "");
  EXPECT_TRUE(cert.primal_only);
}

TEST(Certify, AcceptsRealFarkasCertificateFromBothSolvers) {
  const Problem p = infeasible_box();
  for (int engine = 0; engine < 2; ++engine) {
    const SolveResult r =
        engine == 0 ? tableau_solve(p) : revised_solve(p);
    ASSERT_EQ(r.status, Status::Infeasible);
    ASSERT_FALSE(r.farkas.empty()) << "solver " << engine << " attached no certificate";
    Verifier v;
    const Certificate cert = v.certify(p, r);
    EXPECT_TRUE(cert.certified)
        << "engine " << engine << ": " << (cert.reject ? cert.reject : "");
    EXPECT_EQ(cert.claim, Certificate::Claim::Infeasible);
  }
}

TEST(Certify, AcceptsRealUnboundednessRayFromBothSolvers) {
  const Problem p = unbounded_ramp();
  for (int engine = 0; engine < 2; ++engine) {
    const SolveResult r =
        engine == 0 ? tableau_solve(p) : revised_solve(p);
    ASSERT_EQ(r.status, Status::Unbounded);
    ASSERT_FALSE(r.ray.empty()) << "solver " << engine << " attached no ray";
    Verifier v;
    const Certificate cert = v.certify(p, r);
    EXPECT_TRUE(cert.certified)
        << "engine " << engine << ": " << (cert.reject ? cert.reject : "");
    EXPECT_EQ(cert.claim, Certificate::Claim::Unbounded);
  }
}

TEST(Certify, AcceptsMaximizationDualConvention) {
  // Duals are reported in the problem's own sense; the verifier must
  // normalize before sign checks. classic_max duals: (3, 0).
  const Problem p = classic_max();
  Verifier v;
  const Certificate cert = v.certify_optimal(p, {4.0, 0.0}, {3.0, 0.0}, 12.0);
  EXPECT_TRUE(cert.certified) << (cert.reject ? cert.reject : "");
}

TEST(Certify, AcceptsZeroVariableProblems) {
  Problem feasible(Sense::Minimize);
  feasible.add_constraint({}, Relation::LessEqual, 1.0);
  Verifier v;
  EXPECT_TRUE(v.certify_optimal(feasible, {}, {}, 0.0).certified);

  Problem contradictory(Sense::Minimize);
  contradictory.add_constraint({}, Relation::GreaterEqual, 2.0);
  EXPECT_TRUE(v.certify_infeasible(contradictory, {}).certified);
  // Claiming the feasible constant problem infeasible must fail.
  EXPECT_FALSE(v.certify_infeasible(feasible, {}).certified);
}

// ------------------------------------------------- wrong answers rejected ---

TEST(Certify, RejectsInfeasiblePointLabeledOptimal) {
  const Problem p = classic_max();
  Verifier v;
  // (3, 3) violates x + y <= 4 and x + 3y <= 6.
  const Certificate cert = v.certify_optimal(p, {3.0, 3.0}, {3.0, 0.0}, 15.0);
  EXPECT_FALSE(cert.certified);
  EXPECT_GT(cert.primal_residual, 1e-3);
  ASSERT_NE(cert.reject, nullptr);
}

TEST(Certify, RejectsBoundViolationLabeledOptimal) {
  const Problem p = classic_min();
  Verifier v;
  // y = -1 violates its lower bound (and the equality row).
  const Certificate cert = v.certify_optimal(p, {1.0, -1.0}, {2.5, -0.5}, -1.0);
  EXPECT_FALSE(cert.certified);
  EXPECT_GT(cert.primal_residual, 1e-3);
}

TEST(Certify, RejectsWrongDualSigns) {
  const Problem p = classic_max();
  Verifier v;
  // Right point, but a <= constraint in a max problem must not have a
  // negative shadow price.
  const Certificate cert = v.certify_optimal(p, {4.0, 0.0}, {-3.0, 0.0}, 12.0);
  EXPECT_FALSE(cert.certified);
  EXPECT_GT(cert.dual_residual, 1e-3);
}

TEST(Certify, RejectsWrongDualMagnitudes) {
  const Problem p = classic_max();
  Verifier v;
  // Right signs, wrong prices: stationarity / objective gap must flag it.
  const Certificate cert = v.certify_optimal(p, {4.0, 0.0}, {1.0, 1.0}, 12.0);
  EXPECT_FALSE(cert.certified);
}

TEST(Certify, RejectsComplementaritySlackViolation) {
  const Problem p = classic_max();
  Verifier v;
  // Optimal point (4, 0): row 2 has slack (4 + 0 < 6), so pricing it at 2
  // violates complementary slackness even though the sign is legal.
  const Certificate cert = v.certify_optimal(p, {4.0, 0.0}, {3.0, 2.0}, 12.0);
  EXPECT_FALSE(cert.certified);
}

TEST(Certify, RejectsMisreportedObjective) {
  const Problem p = classic_max();
  Verifier v;
  const Certificate cert = v.certify_optimal(p, {4.0, 0.0}, {3.0, 0.0}, 13.0);
  EXPECT_FALSE(cert.certified);
  EXPECT_GT(cert.objective_gap, 1e-3);
}

TEST(Certify, RejectsSuboptimalFeasiblePoint) {
  const Problem p = classic_max();
  Verifier v;
  // (0, 2) is feasible (objective 4) but far from optimal; duals for the
  // true optimum cannot make the KKT system close.
  const Certificate cert = v.certify_optimal(p, {0.0, 2.0}, {3.0, 0.0}, 4.0);
  EXPECT_FALSE(cert.certified);
}

TEST(Certify, RejectsNonFiniteEntries) {
  const Problem p = classic_max();
  Verifier v;
  const double nan = std::nan("");
  EXPECT_FALSE(v.certify_optimal(p, {nan, 0.0}, {3.0, 0.0}, 12.0).certified);
  EXPECT_FALSE(v.certify_optimal(p, {4.0, 0.0}, {nan, 0.0}, 12.0).certified);
  EXPECT_FALSE(v.certify_optimal(p, {4.0, 0.0}, {3.0, 0.0}, nan).certified);
}

TEST(Certify, RejectsWrongDimensions) {
  const Problem p = classic_max();
  Verifier v;
  EXPECT_FALSE(v.certify_optimal(p, {4.0}, {3.0, 0.0}, 12.0).certified);
  EXPECT_FALSE(v.certify_optimal(p, {4.0, 0.0}, {3.0}, 12.0).certified);
}

TEST(Certify, RejectsBogusFarkasCertificates) {
  const Problem p = infeasible_box();
  StandardForm sf = build_standard_form(p);
  Verifier v;
  // Missing, zero, wrong-dimension and sign-flipped certificates all fail.
  EXPECT_FALSE(v.certify_infeasible(p, {}).certified);
  EXPECT_FALSE(v.certify_infeasible(p, std::vector<double>(sf.rows(), 0.0)).certified);
  EXPECT_FALSE(v.certify_infeasible(p, {1.0}).certified);
  const SolveResult r = tableau_solve(p);
  ASSERT_EQ(r.status, Status::Infeasible);
  std::vector<double> flipped = r.farkas;
  for (double& y : flipped) y = -y;  // proves y'b < 0: nothing
  EXPECT_FALSE(v.certify_infeasible(p, flipped).certified);
}

TEST(Certify, RejectsFarkasForFeasibleProblem) {
  // A certificate cannot exist for a feasible system; any vector offered
  // must fail one of the two Farkas conditions.
  const Problem p = classic_min();
  StandardForm sf = build_standard_form(p);
  Verifier v;
  std::vector<double> y(sf.rows());
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = i % 2 ? 1.0 : -0.5;
  EXPECT_FALSE(v.certify_infeasible(p, y).certified);
}

TEST(Certify, RejectsBogusUnboundednessRays) {
  const Problem p = unbounded_ramp();
  const SolveResult r = tableau_solve(p);
  ASSERT_EQ(r.status, Status::Unbounded);
  Verifier v;
  // Missing ray / missing point.
  EXPECT_FALSE(v.certify_unbounded(p, r.x, {}).certified);
  EXPECT_FALSE(v.certify_unbounded(p, {}, r.ray).certified);
  // Zero ray.
  EXPECT_FALSE(
      v.certify_unbounded(p, r.x, std::vector<double>(r.ray.size(), 0.0)).certified);
  // A ray that worsens the objective (negated real ray breaks d >= 0).
  std::vector<double> neg = r.ray;
  for (double& d : neg) d = -d;
  EXPECT_FALSE(v.certify_unbounded(p, r.x, neg).certified);
  // An infeasible anchor point.
  EXPECT_FALSE(v.certify_unbounded(p, {-5.0, 0.0}, r.ray).certified);
}

TEST(Certify, RejectsUnboundedClaimOnBoundedProblem) {
  // Forge a "ray" for a bounded problem: any direction either leaves the
  // feasible cone or fails to improve the objective.
  const Problem p = classic_max();
  StandardForm sf = build_standard_form(p);
  Verifier v;
  std::vector<double> ray(sf.cols(), 0.0);
  ray[0] = 1.0;  // grow x: slack rows would go negative unless compensated
  EXPECT_FALSE(v.certify_unbounded(p, {0.0, 0.0}, ray).certified);
}

TEST(Certify, IterationLimitIsNeverCertified) {
  const Problem p = classic_min();
  SolveResult r;
  r.status = Status::IterationLimit;
  Verifier v;
  const Certificate cert = v.certify(p, r);
  EXPECT_FALSE(cert.certified);
  EXPECT_EQ(cert.claim, Certificate::Claim::None);
}

// ------------------------------------------------------------- pipeline -----

TEST(Pipeline, HappyPathCertifiesOnFirstStage) {
  SolvePipeline pl;
  const Problem p = classic_min();
  const PipelineResult pr = pl.solve(p);
  EXPECT_TRUE(pr.certified());
  EXPECT_EQ(pr.fallbacks, 0u);
  EXPECT_EQ(pr.stage, PipelineStage::ColdRevised);
  EXPECT_EQ(pl.stats().solves, 1u);
  EXPECT_EQ(pl.stats().certified, 1u);
}

TEST(Pipeline, TableauFirstWhenPreferred) {
  PipelineOptions po;
  po.solve.backend = Backend::Tableau;
  SolvePipeline pl(po);
  const PipelineResult pr = pl.solve(classic_max());
  EXPECT_TRUE(pr.certified());
  EXPECT_EQ(pr.stage, PipelineStage::Tableau);
}

TEST(Pipeline, CertifiesInfeasibleAndUnboundedClaims) {
  SolvePipeline pl;
  const PipelineResult inf = pl.solve(infeasible_box());
  EXPECT_TRUE(inf.certified());
  EXPECT_EQ(inf.certificate.claim, Certificate::Claim::Infeasible);
  const PipelineResult unb = pl.solve(unbounded_ramp());
  EXPECT_TRUE(unb.certified());
  EXPECT_EQ(unb.certificate.claim, Certificate::Claim::Unbounded);
}

TEST(Pipeline, WarmSolveReusesWorkspaceAndCertifies) {
  SolvePipeline pl;
  Problem p = classic_min();
  SolveWorkspace ws;
  const PipelineResult first = pl.solve(p, &ws);
  ASSERT_TRUE(first.certified());
  EXPECT_TRUE(ws.warm);
  p.set_rhs(0, 2.5);
  const PipelineResult second = pl.solve(p, &ws);
  EXPECT_TRUE(second.certified());
  EXPECT_EQ(second.stage, PipelineStage::WarmRevised);
  EXPECT_NEAR(second.result.objective, pl.solve(p).result.objective, 1e-9);
}

}  // namespace
}  // namespace agora::lp
