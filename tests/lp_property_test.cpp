// Property-based tests for the LP solvers: random small instances are solved
// by tableau simplex, revised simplex, and the brute-force basis enumerator;
// all three must agree on status and optimal objective, and optimal points
// must be feasible.
#include <gtest/gtest.h>

#include <cmath>

#include "lp/brute_force.h"
#include "lp/problem.h"
#include "lp/solve.h"
#include "util/rng.h"

namespace agora::lp {
namespace {

SolveResult tableau_solve(const Problem& p) {
  SolveOptions o;
  o.backend = Backend::Tableau;
  o.presolve = false;
  return solve(p, o);
}

SolveResult revised_solve(const Problem& p) {
  SolveOptions o;
  o.backend = Backend::Revised;
  o.presolve = false;
  return solve(p, o);
}

/// The full default pipeline entry point: revised backend, sparse LU basis,
/// presolve on -- must agree with the raw solvers on every random instance.
SolveResult presolved_solve(const Problem& p) { return solve(p); }

struct RandomLpSpec {
  std::uint64_t seed;
  std::size_t vars;
  std::size_t cons;
  bool with_equalities;
};

/// Random LP over box-bounded variables. Box bounds guarantee boundedness,
/// so brute force is a valid oracle; feasibility is random.
Problem make_random_lp(const RandomLpSpec& spec) {
  Pcg32 rng(spec.seed);
  Problem p(rng.next_double() < 0.5 ? Sense::Minimize : Sense::Maximize);
  for (std::size_t j = 0; j < spec.vars; ++j) {
    const double lo = rng.uniform(-3.0, 1.0);
    const double hi = lo + rng.uniform(0.0, 5.0);
    p.add_variable("x" + std::to_string(j), lo, hi, rng.uniform(-4.0, 4.0));
  }
  for (std::size_t i = 0; i < spec.cons; ++i) {
    std::vector<double> coeffs(spec.vars);
    for (auto& c : coeffs) c = rng.uniform(-2.0, 2.0);
    Relation rel = Relation::LessEqual;
    const double pick = rng.next_double();
    if (spec.with_equalities && pick < 0.25) rel = Relation::Equal;
    else if (pick < 0.5) rel = Relation::GreaterEqual;
    p.add_constraint(std::move(coeffs), rel, rng.uniform(-4.0, 4.0));
  }
  return p;
}

class RandomLpAgreement : public ::testing::TestWithParam<RandomLpSpec> {};

TEST_P(RandomLpAgreement, AllSolversAgree) {
  const Problem p = make_random_lp(GetParam());
  const SolveResult tab = tableau_solve(p);
  const SolveResult rev = revised_solve(p);
  const SolveResult pre = presolved_solve(p);
  const SolveResult bf = brute_force_solve(p);

  // Box bounds make the LP bounded, so only Optimal/Infeasible can occur.
  ASSERT_NE(tab.status, Status::Unbounded);
  ASSERT_NE(tab.status, Status::IterationLimit);
  EXPECT_EQ(tab.status, bf.status) << "tableau vs brute force";
  EXPECT_EQ(rev.status, bf.status) << "revised vs brute force";
  EXPECT_EQ(pre.status, bf.status) << "presolved vs brute force";

  if (bf.status == Status::Optimal) {
    EXPECT_NEAR(tab.objective, bf.objective, 1e-5);
    EXPECT_NEAR(rev.objective, bf.objective, 1e-5);
    EXPECT_NEAR(pre.objective, bf.objective, 1e-5);
    EXPECT_LE(p.max_violation(tab.x), 1e-6);
    EXPECT_LE(p.max_violation(rev.x), 1e-6);
    EXPECT_LE(p.max_violation(pre.x), 1e-6);
    EXPECT_LE(p.max_violation(bf.x), 1e-6);
    // The reported objective must match the reported point.
    EXPECT_NEAR(p.objective_value(tab.x), tab.objective, 1e-6);
    EXPECT_NEAR(p.objective_value(rev.x), rev.objective, 1e-6);
    EXPECT_NEAR(p.objective_value(pre.x), pre.objective, 1e-6);
  }
}

std::vector<RandomLpSpec> make_specs() {
  std::vector<RandomLpSpec> specs;
  std::uint64_t seed = 1000;
  for (std::size_t vars : {1u, 2u, 3u, 4u}) {
    for (std::size_t cons : {1u, 2u, 3u, 4u}) {
      for (bool eq : {false, true}) {
        for (int rep = 0; rep < 4; ++rep) {
          specs.push_back({seed++, vars, cons, eq});
        }
      }
    }
  }
  return specs;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomLpAgreement, ::testing::ValuesIn(make_specs()),
                         [](const ::testing::TestParamInfo<RandomLpSpec>& info) {
                           const auto& s = info.param;
                           return "seed" + std::to_string(s.seed) + "_v" +
                                  std::to_string(s.vars) + "_c" + std::to_string(s.cons) +
                                  (s.with_equalities ? "_eq" : "_ineq");
                         });

/// Larger random feasible LPs: tableau and revised must agree with each
/// other (brute force would be too slow here). Feasibility is forced by
/// constraining around a known interior point.
class LargerLpAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LargerLpAgreement, TableauMatchesRevised) {
  Pcg32 rng(GetParam());
  const std::size_t n = 10 + rng.uniform_u32(15);
  const std::size_t m = 5 + rng.uniform_u32(15);
  Problem p;
  std::vector<double> interior(n);
  for (std::size_t j = 0; j < n; ++j) {
    interior[j] = rng.uniform(0.0, 2.0);
    p.add_variable("x" + std::to_string(j), 0.0, 5.0, rng.uniform(-3.0, 3.0));
  }
  for (std::size_t i = 0; i < m; ++i) {
    std::vector<double> coeffs(n);
    double lhs_at_interior = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      coeffs[j] = rng.uniform(-1.0, 1.0);
      lhs_at_interior += coeffs[j] * interior[j];
    }
    // rhs set so the interior point satisfies the row with slack.
    p.add_constraint(std::move(coeffs), Relation::LessEqual, lhs_at_interior + 0.5);
  }
  const SolveResult tab = tableau_solve(p);
  const SolveResult rev = revised_solve(p);
  ASSERT_EQ(tab.status, Status::Optimal);
  ASSERT_EQ(rev.status, Status::Optimal);
  EXPECT_NEAR(tab.objective, rev.objective, 1e-5);
  EXPECT_LE(p.max_violation(tab.x), 1e-6);
  EXPECT_LE(p.max_violation(rev.x), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LargerLpAgreement,
                         ::testing::Range<std::uint64_t>(2000, 2024));

}  // namespace
}  // namespace agora::lp
