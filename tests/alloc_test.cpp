// Unit and property tests for the allocation engine: compact vs full-paper
// LP formulations, the exact/relaxed handling of the paper's constraint (3),
// the endpoint baseline, multi-resource requests, bundles, and the
// hierarchical multi-grid allocator.
#include <gtest/gtest.h>

#include <cmath>

#include "agree/topology.h"
#include "alloc/allocator.h"
#include "alloc/endpoint.h"
#include "alloc/hierarchical.h"
#include "alloc/multi_resource.h"
#include "util/rng.h"

namespace agora::alloc {
namespace {

using agree::AgreementSystem;

AgreementSystem two_node_donor() {
  // Node 1 owns 10 and shares 50% with node 0, which owns nothing.
  AgreementSystem sys(2);
  sys.capacity = {0.0, 10.0};
  sys.relative(1, 0) = 0.5;
  return sys;
}

TEST(Allocator, SimpleBorrow) {
  Allocator alloc(two_node_donor());
  EXPECT_NEAR(alloc.available_to(0), 5.0, 1e-12);
  const AllocationPlan plan = alloc.allocate(0, 4.0);
  ASSERT_TRUE(plan.satisfied());
  EXPECT_NEAR(plan.draw[1], 4.0, 1e-9);
  EXPECT_NEAR(plan.draw[0], 0.0, 1e-9);
  // Node 1 loses 4 of capacity; node 0 loses 4*0.5 = 2 of availability.
  EXPECT_NEAR(plan.theta, 4.0, 1e-9);
  EXPECT_NEAR(plan.capacity_after[0], 3.0, 1e-9);
  EXPECT_NEAR(plan.capacity_after[1], 6.0, 1e-9);
}

TEST(Allocator, InsufficientCapacityReported) {
  Allocator alloc(two_node_donor());
  const AllocationPlan plan = alloc.allocate(0, 6.0);  // C_0 is only 5
  EXPECT_EQ(plan.status, PlanStatus::Insufficient);
}

TEST(Allocator, ZeroRequestIsTriviallySatisfied) {
  Allocator alloc(two_node_donor());
  const AllocationPlan plan = alloc.allocate(0, 0.0);
  ASSERT_TRUE(plan.satisfied());
  EXPECT_NEAR(plan.total_drawn(), 0.0, 1e-12);
  EXPECT_NEAR(plan.theta, 0.0, 1e-12);
}

TEST(Allocator, BalancesAcrossEquivalentDonors) {
  // Two donors with identical agreements: minimizing the max perturbation
  // splits the draw evenly.
  AgreementSystem sys(3);
  sys.capacity = {0.0, 10.0, 10.0};
  sys.relative(1, 0) = 0.5;
  sys.relative(2, 0) = 0.5;
  Allocator alloc(sys);
  const AllocationPlan plan = alloc.allocate(0, 5.0);
  ASSERT_TRUE(plan.satisfied());
  EXPECT_NEAR(plan.draw[1], 2.5, 1e-7);
  EXPECT_NEAR(plan.draw[2], 2.5, 1e-7);
  EXPECT_NEAR(plan.theta, 2.5, 1e-7);
}

TEST(Allocator, PrefersLessSharedOutDonor) {
  // Donor 1's capacity also backs node 3's availability; donor 2's does
  // not. Minimizing global perturbation shifts the draw toward donor 2.
  AgreementSystem sys(4);
  sys.capacity = {0.0, 10.0, 10.0, 0.0};
  sys.relative(1, 0) = 0.8;
  sys.relative(2, 0) = 0.8;
  sys.relative(1, 3) = 0.2;  // node 3 depends on donor 1
  Allocator alloc(sys);
  const AllocationPlan plan = alloc.allocate(0, 6.0);
  ASSERT_TRUE(plan.satisfied());
  EXPECT_GT(plan.draw[2], plan.draw[1]);
}

TEST(Allocator, UsesOwnCapacityFirstWhenCheapest) {
  // The requester owns plenty; drawing locally perturbs only itself.
  AgreementSystem sys(2);
  sys.capacity = {10.0, 10.0};
  sys.relative(1, 0) = 0.5;
  Allocator alloc(sys);
  const AllocationPlan plan = alloc.allocate(0, 3.0);
  ASSERT_TRUE(plan.satisfied());
  // Optimal theta: drawing own capacity costs 3 at node 0 only; any remote
  // draw costs node 1 more. theta = 3 with all-local is optimal but the LP
  // may split; verify theta <= 3 and feasibility invariants instead.
  EXPECT_LE(plan.theta, 3.0 + 1e-9);
  EXPECT_NEAR(plan.total_drawn(), 3.0, 1e-9);
}

TEST(Allocator, RespectsTransitivityLevel) {
  // Chain 2 -> 1 -> 0 (each shares 50% forward). With level 1, node 0 can
  // only reach node 1's capacity; with level 2, also node 2's.
  AgreementSystem sys(3);
  sys.capacity = {0.0, 4.0, 100.0};
  sys.relative(1, 0) = 0.5;
  sys.relative(2, 1) = 0.5;
  sys.relative(2, 0) = 0.0;

  AllocatorOptions level1;
  level1.transitive.max_level = 1;
  Allocator a1(sys, level1);
  EXPECT_NEAR(a1.available_to(0), 2.0, 1e-12);
  EXPECT_EQ(a1.allocate(0, 10.0).status, PlanStatus::Insufficient);

  AllocatorOptions level2;
  level2.transitive.max_level = 2;
  Allocator a2(sys, level2);
  // T_20 = 0.5 * 0.5 = 0.25 -> 25 more units reachable.
  EXPECT_NEAR(a2.available_to(0), 2.0 + 25.0, 1e-12);
  const AllocationPlan plan = a2.allocate(0, 10.0);
  ASSERT_TRUE(plan.satisfied());
  EXPECT_GT(plan.draw[2], 0.0);
}

TEST(Allocator, DrawNeverExceedsEntitlement) {
  AgreementSystem sys(3);
  sys.capacity = {1.0, 8.0, 8.0};
  sys.relative(1, 0) = 0.25;
  sys.relative(2, 0) = 0.5;
  Allocator alloc(sys);
  const AllocationPlan plan = alloc.allocate(0, 6.0);
  ASSERT_TRUE(plan.satisfied());
  EXPECT_LE(plan.draw[0], 1.0 + 1e-9);
  EXPECT_LE(plan.draw[1], 8.0 * 0.25 + 1e-9);
  EXPECT_LE(plan.draw[2], 8.0 * 0.5 + 1e-9);
}

TEST(Allocator, ApplyAndReleaseRoundTrip) {
  Allocator alloc(two_node_donor());
  const AllocationPlan plan = alloc.allocate(0, 4.0);
  ASSERT_TRUE(plan.satisfied());
  alloc.apply(plan);
  EXPECT_NEAR(alloc.system().capacity[1], 6.0, 1e-9);
  EXPECT_NEAR(alloc.available_to(0), 3.0, 1e-9);
  alloc.release(plan.draw);
  EXPECT_NEAR(alloc.available_to(0), 5.0, 1e-9);
}

TEST(Allocator, SetCapacitiesRefreshesReport) {
  Allocator alloc(two_node_donor());
  alloc.set_capacities({0.0, 20.0});
  EXPECT_NEAR(alloc.available_to(0), 10.0, 1e-12);
}

TEST(Allocator, ExactModeFeasibleWithFullShares) {
  // With 100% shares the paper's constraint (3) is satisfiable exactly.
  AgreementSystem sys(2);
  sys.capacity = {0.0, 10.0};
  sys.relative(1, 0) = 1.0;
  AllocatorOptions opts;
  opts.equality = EqualityMode::Exact;
  Allocator alloc(sys, opts);
  const AllocationPlan plan = alloc.allocate(0, 4.0);
  ASSERT_TRUE(plan.satisfied());
  EXPECT_FALSE(plan.exact_mode_fell_back);
  EXPECT_NEAR(plan.capacity_after[0], alloc.capacities().capacity[0] - 4.0, 1e-7);
}

TEST(Allocator, ExactModeFallsBackWithPartialShares) {
  // Drawing over a 50% agreement cannot drop C_A by the full request, so
  // the verbatim constraint set is infeasible; the allocator must fall
  // back to the relaxed model and flag it.
  AllocatorOptions opts;
  opts.equality = EqualityMode::Exact;
  Allocator alloc(two_node_donor(), opts);
  const AllocationPlan plan = alloc.allocate(0, 4.0);
  ASSERT_TRUE(plan.satisfied());
  EXPECT_TRUE(plan.exact_mode_fell_back);
}

TEST(Allocator, PresolveProducesSameAnswer) {
  AgreementSystem sys(3);
  sys.capacity = {0.0, 10.0, 10.0};
  sys.relative(1, 0) = 0.5;
  sys.relative(2, 0) = 0.5;
  AllocatorOptions plain, pre;
  pre.solve.presolve = true;
  pre.formulation = Formulation::FullPaper;  // the formulation presolve helps
  plain.formulation = Formulation::FullPaper;
  Allocator a(sys, plain), b(sys, pre);
  const AllocationPlan pa = a.allocate(0, 5.0);
  const AllocationPlan pb = b.allocate(0, 5.0);
  ASSERT_TRUE(pa.satisfied());
  ASSERT_TRUE(pb.satisfied());
  EXPECT_NEAR(pa.theta, pb.theta, 1e-6);
  EXPECT_NEAR(pb.total_drawn(), 5.0, 1e-6);
}

// ------------------------------------------- compact vs full formulation ---

struct FormulationCase {
  std::uint64_t seed;
  std::size_t n;
};

class FormulationAgreement : public ::testing::TestWithParam<FormulationCase> {};

TEST_P(FormulationAgreement, CompactMatchesFullPaper) {
  Pcg32 rng(GetParam().seed);
  const std::size_t n = GetParam().n;
  AgreementSystem sys(n);
  for (std::size_t i = 0; i < n; ++i) {
    sys.capacity[i] = rng.uniform(0.0, 20.0);
    double budget = 1.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double s = rng.next_double() < 0.5 ? 0.0 : rng.uniform(0.0, budget * 0.5);
      sys.relative(i, j) = s;
      budget -= s;
    }
  }
  const std::size_t requester = rng.uniform_u32(static_cast<std::uint32_t>(n));

  AllocatorOptions compact;
  compact.formulation = Formulation::Compact;
  AllocatorOptions full;
  full.formulation = Formulation::FullPaper;
  Allocator ac(sys, compact);
  Allocator af(sys, full);

  const double avail = ac.available_to(requester);
  const double x = avail * 0.6;
  const AllocationPlan pc = ac.allocate(requester, x);
  const AllocationPlan pf = af.allocate(requester, x);
  ASSERT_TRUE(pc.satisfied());
  ASSERT_TRUE(pf.satisfied());
  // Optimal draws may differ (degenerate optima) but theta must agree and
  // both plans must move the full amount within entitlements.
  EXPECT_NEAR(pc.theta, pf.theta, 1e-6);
  EXPECT_NEAR(pc.total_drawn(), x, 1e-6);
  EXPECT_NEAR(pf.total_drawn(), x, 1e-6);
  for (std::size_t k = 0; k < n; ++k) {
    const double cap =
        k == requester ? sys.capacity[k] : ac.capacities().entitlement(k, requester);
    EXPECT_LE(pc.draw[k], cap + 1e-6);
    EXPECT_LE(pf.draw[k], cap + 1e-6);
  }
}

std::vector<FormulationCase> formulation_cases() {
  std::vector<FormulationCase> cases;
  std::uint64_t seed = 400;
  for (std::size_t n : {2u, 3u, 5u, 8u})
    for (int rep = 0; rep < 5; ++rep) cases.push_back({seed++, n});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, FormulationAgreement, ::testing::ValuesIn(formulation_cases()),
                         [](const ::testing::TestParamInfo<FormulationCase>& info) {
                           return "seed" + std::to_string(info.param.seed) + "_n" +
                                  std::to_string(info.param.n);
                         });

// ---------------------------------------------------------------- endpoint ---

TEST(Endpoint, ProportionalSplit) {
  AgreementSystem sys(3);
  sys.capacity = {0.0, 100.0, 100.0};
  sys.relative(1, 0) = 0.2;
  sys.relative(2, 0) = 0.1;
  const AllocationPlan plan = endpoint_allocate(sys, 0, 3.0);
  ASSERT_TRUE(plan.satisfied());
  // Split 2:1 by share weights.
  EXPECT_NEAR(plan.draw[1], 2.0, 1e-9);
  EXPECT_NEAR(plan.draw[2], 1.0, 1e-9);
}

TEST(Endpoint, CapsAtDirectEntitlementAndRefills) {
  AgreementSystem sys(3);
  sys.capacity = {0.0, 5.0, 100.0};
  sys.relative(1, 0) = 0.2;  // cap 1.0
  sys.relative(2, 0) = 0.1;  // cap 10.0
  const AllocationPlan plan = endpoint_allocate(sys, 0, 6.0);
  ASSERT_TRUE(plan.satisfied());
  EXPECT_NEAR(plan.draw[1], 1.0, 1e-9);   // hits its cap
  EXPECT_NEAR(plan.draw[2], 5.0, 1e-9);   // refilled with the remainder
  EXPECT_NEAR(plan.total_drawn(), 6.0, 1e-9);
}

TEST(Endpoint, OverflowStaysLocal) {
  AgreementSystem sys(2);
  sys.capacity = {0.0, 5.0};
  sys.relative(1, 0) = 0.2;  // cap 1.0
  const AllocationPlan plan = endpoint_allocate(sys, 0, 4.0);
  EXPECT_NEAR(plan.draw[1], 1.0, 1e-9);
  EXPECT_NEAR(plan.draw[0], 3.0, 1e-9);  // stays in the local queue
}

TEST(Endpoint, IgnoresTransitiveAgreements) {
  // 2 -> 1 -> 0 chain: endpoint enforcement sees no direct 2->0 agreement,
  // so node 2 contributes nothing (the LP scheme would use it).
  AgreementSystem sys(3);
  sys.capacity = {0.0, 2.0, 100.0};
  sys.relative(1, 0) = 0.5;
  sys.relative(2, 1) = 0.9;
  const AllocationPlan ep = endpoint_allocate(sys, 0, 5.0);
  EXPECT_NEAR(ep.draw[2], 0.0, 1e-12);
  Allocator lp_alloc(sys);
  const AllocationPlan lp = lp_alloc.allocate(0, 5.0);
  ASSERT_TRUE(lp.satisfied());
  EXPECT_GT(lp.draw[2], 0.0);
}

// ----------------------------------------------------------- multi-resource ---

TEST(MultiResource, IndependentLpsPerResource) {
  AgreementSystem cpu(2), disk(2);
  cpu.capacity = {0.0, 10.0};
  cpu.relative(1, 0) = 0.5;
  disk.capacity = {0.0, 100.0};
  disk.relative(1, 0) = 0.1;
  MultiResourceAllocator mra({cpu, disk}, {"cpu", "disk"});
  MultiRequest req;
  req.principal = 0;
  req.amounts = {4.0, 8.0};
  for (bool parallel : {false, true}) {
    const MultiPlan plan = mra.allocate(req, parallel);
    ASSERT_TRUE(plan.satisfied());
    EXPECT_NEAR(plan.per_resource[0].draw[1], 4.0, 1e-9);
    EXPECT_NEAR(plan.per_resource[1].draw[1], 8.0, 1e-9);
  }
}

TEST(MultiResource, AllOrNothing) {
  AgreementSystem cpu(2), disk(2);
  cpu.capacity = {0.0, 10.0};
  cpu.relative(1, 0) = 0.5;
  disk.capacity = {0.0, 1.0};
  disk.relative(1, 0) = 0.5;
  MultiResourceAllocator mra({cpu, disk}, {"cpu", "disk"});
  MultiRequest req;
  req.principal = 0;
  req.amounts = {4.0, 4.0};  // disk cannot cover this
  const MultiPlan plan = mra.allocate(req);
  EXPECT_FALSE(plan.satisfied());
  EXPECT_TRUE(plan.per_resource[0].satisfied());
  EXPECT_EQ(plan.per_resource[1].status, PlanStatus::Insufficient);
  EXPECT_THROW(mra.apply(plan), PreconditionError);
}

TEST(MultiResource, ApplyCommitsAllComponents) {
  AgreementSystem cpu(2), disk(2);
  cpu.capacity = {0.0, 10.0};
  cpu.relative(1, 0) = 0.5;
  disk.capacity = {0.0, 20.0};
  disk.relative(1, 0) = 0.5;
  MultiResourceAllocator mra({cpu, disk}, {"cpu", "disk"});
  MultiRequest req;
  req.principal = 0;
  req.amounts = {2.0, 6.0};
  const MultiPlan plan = mra.allocate(req);
  ASSERT_TRUE(plan.satisfied());
  mra.apply(plan);
  EXPECT_NEAR(mra.allocator(0).system().capacity[1], 8.0, 1e-9);
  EXPECT_NEAR(mra.allocator(1).system().capacity[1], 14.0, 1e-9);
}

TEST(MultiResource, BundleBindsScarcestComponent) {
  // One bundle unit = 1 cpu + 2 disk. Node 1 owns 10 cpu, 8 disk -> 4
  // bundle units; shares 50% cpu and 25% disk -> bundle share 25%.
  AgreementSystem cpu(2), disk(2);
  cpu.capacity = {0.0, 10.0};
  cpu.relative(1, 0) = 0.5;
  disk.capacity = {0.0, 8.0};
  disk.relative(1, 0) = 0.25;
  const AgreementSystem bundle = make_bundle({cpu, disk}, {1.0, 2.0});
  EXPECT_NEAR(bundle.capacity[1], 4.0, 1e-12);
  EXPECT_NEAR(bundle.relative(1, 0), 0.25, 1e-12);
  Allocator alloc(bundle);
  EXPECT_NEAR(alloc.available_to(0), 1.0, 1e-12);
}

TEST(MultiResource, BundleRejectsBadInput) {
  AgreementSystem cpu(2), disk(3);
  EXPECT_THROW(make_bundle({cpu, disk}, {1.0, 1.0}), PreconditionError);
  EXPECT_THROW(make_bundle({cpu}, {0.0}), PreconditionError);
}

// ------------------------------------------------------------ hierarchical ---

TEST(Hierarchical, IntraGroupFastPath) {
  // Two groups of two; requester's own group suffices.
  AgreementSystem sys(4);
  sys.capacity = {0.0, 10.0, 10.0, 10.0};
  sys.relative(1, 0) = 0.5;                      // same group as 0
  sys.relative(2, 0) = 0.5;
  sys.relative(3, 0) = 0.5;
  HierarchicalAllocator h(sys, {0, 0, 1, 1});
  const AllocationPlan plan = h.allocate(0, 3.0);
  ASSERT_TRUE(plan.satisfied());
  EXPECT_NEAR(plan.draw[1], 3.0, 1e-9);
  EXPECT_NEAR(plan.draw[2] + plan.draw[3], 0.0, 1e-9);
}

TEST(Hierarchical, EscalatesToCoarseLevel) {
  AgreementSystem sys(4);
  sys.capacity = {0.0, 2.0, 10.0, 10.0};
  sys.relative(1, 0) = 0.5;
  sys.relative(2, 0) = 0.5;
  sys.relative(3, 0) = 0.5;
  HierarchicalAllocator h(sys, {0, 0, 1, 1});
  const AllocationPlan plan = h.allocate(0, 6.0);  // own group offers only 1
  ASSERT_TRUE(plan.satisfied());
  EXPECT_NEAR(plan.total_drawn(), 6.0, 1e-7);
  EXPECT_GT(plan.draw[2] + plan.draw[3], 0.0);
  // Entitlement bounds hold.
  for (std::size_t k = 1; k < 4; ++k) EXPECT_LE(plan.draw[k], sys.capacity[k] * 0.5 + 1e-7);
}

TEST(Hierarchical, MatchesFlatTotals) {
  Pcg32 rng(777);
  AgreementSystem sys(6);
  for (std::size_t i = 0; i < 6; ++i) {
    sys.capacity[i] = rng.uniform(5.0, 15.0);
    for (std::size_t j = 0; j < 6; ++j)
      if (i != j) sys.relative(i, j) = 0.12;
  }
  HierarchicalAllocator h(sys, {0, 0, 0, 1, 1, 1});
  Allocator flat(sys);
  const double x = 10.0;
  const AllocationPlan hp = h.allocate(0, x);
  const AllocationPlan fp = flat.allocate(0, x);
  ASSERT_TRUE(hp.satisfied());
  ASSERT_TRUE(fp.satisfied());
  EXPECT_NEAR(hp.total_drawn(), fp.total_drawn(), 1e-6);
  // Hierarchical theta can only be >= the flat optimum.
  EXPECT_GE(hp.theta + 1e-7, fp.theta);
}

TEST(Hierarchical, ApplySubtractsCapacity) {
  AgreementSystem sys(4);
  sys.capacity = {0.0, 10.0, 10.0, 10.0};
  sys.relative(1, 0) = 0.5;
  sys.relative(2, 0) = 0.5;
  sys.relative(3, 0) = 0.5;
  HierarchicalAllocator h(sys, {0, 0, 1, 1});
  const AllocationPlan plan = h.allocate(0, 3.0);
  ASSERT_TRUE(plan.satisfied());
  h.apply(plan);
  EXPECT_NEAR(h.system().capacity[1], 7.0, 1e-9);
}

TEST(Hierarchical, RejectsBadGroupAssignment) {
  AgreementSystem sys(3);
  EXPECT_THROW(HierarchicalAllocator(sys, {0, 0}), PreconditionError);
  EXPECT_THROW(HierarchicalAllocator(sys, {0, 0, 2}), PreconditionError);  // empty group 1
}

}  // namespace
}  // namespace agora::alloc
