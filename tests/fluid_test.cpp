// Tests for the fluid planner: exact backlog recursion without sharing,
// conservation with sharing, overhead accounting, and agreement between the
// fluid approximation and the discrete-event simulator on the case-study
// scenario.
#include <gtest/gtest.h>

#include <cmath>

#include "agree/topology.h"
#include "fluid/planner.h"
#include "proxysim/simulator.h"
#include "trace/generator.h"

namespace agora::fluid {
namespace {

TEST(Fluid, NoShardingBacklogRecursionIsExact) {
  FluidConfig cfg;
  cfg.horizon = 3000.0;
  cfg.slot_width = 1000.0;
  // One proxy, capacity 1000 s of work per slot; demand 1500, 800, 200.
  const std::vector<std::vector<double>> demand{{1500.0, 800.0, 200.0}};
  const FluidResult r = plan(cfg, demand);
  EXPECT_NEAR(r.backlog(0, 0), 500.0, 1e-9);   // 1500 - 1000
  EXPECT_NEAR(r.backlog(1, 0), 300.0, 1e-9);   // 500 + 800 - 1000
  EXPECT_NEAR(r.backlog(2, 0), 0.0, 1e-9);     // 300 + 200 - 1000 < 0
  // Wait estimate: mean of slot-start/end backlog.
  EXPECT_NEAR(r.wait_estimate(0, 0), 250.0, 1e-9);
  EXPECT_NEAR(r.wait_estimate(1, 0), 400.0, 1e-9);
}

TEST(Fluid, PowerScalesCapacity) {
  FluidConfig cfg;
  cfg.horizon = 1000.0;
  cfg.slot_width = 1000.0;
  cfg.power = {2.0};
  const FluidResult r = plan(cfg, {{1500.0}});
  EXPECT_NEAR(r.backlog(0, 0), 0.0, 1e-9);  // capacity 2000 >= 1500
}

TEST(Fluid, SharingMovesOverflowToIdleProxy) {
  FluidConfig cfg;
  cfg.horizon = 1000.0;
  cfg.slot_width = 1000.0;
  cfg.agreements = agree::complete_graph(2, 0.5);
  cfg.backlog_threshold = 0.0;
  cfg.relay_passes = 1;
  const FluidResult r = plan(cfg, {{1400.0}, {200.0}});
  // Proxy 0 overflows by 400; proxy 1 has 800 spare, entitled 50%: all 400
  // fits. Both end the slot without backlog.
  EXPECT_NEAR(r.moved(0, 0), 400.0, 1e-6);
  EXPECT_NEAR(r.received(0, 1), 400.0, 1e-6);
  EXPECT_NEAR(r.backlog(0, 0), 0.0, 1e-6);
  EXPECT_NEAR(r.backlog(0, 1), 0.0, 1e-6);
}

TEST(Fluid, EntitlementLimitsMovedWorkPerPass) {
  FluidConfig cfg;
  cfg.horizon = 1000.0;
  cfg.slot_width = 1000.0;
  cfg.agreements = agree::complete_graph(2, 0.1);  // only 10% entitled
  cfg.backlog_threshold = 0.0;
  cfg.relay_passes = 1;
  const FluidResult r = plan(cfg, {{1400.0}, {200.0}});
  // Spare at proxy 1 is 800; one pass may draw at most 10% of it. (Like the
  // discrete simulator's repeated consults, additional passes re-grant 10%
  // of the *remaining* spare -- agreements cap rates, not slot totals.)
  EXPECT_NEAR(r.moved(0, 0), 80.0, 1e-6);
  EXPECT_NEAR(r.backlog(0, 0), 320.0, 1e-6);

  cfg.relay_passes = 3;
  const FluidResult r3 = plan(cfg, {{1400.0}, {200.0}});
  EXPECT_NEAR(r3.moved(0, 0), 80.0 + 72.0 + 64.8, 1e-6);
}

TEST(Fluid, OverheadInflatesLandedWork) {
  FluidConfig cfg;
  cfg.horizon = 1000.0;
  cfg.slot_width = 1000.0;
  cfg.agreements = agree::complete_graph(2, 0.5);
  cfg.backlog_threshold = 0.0;
  cfg.relay_passes = 1;
  cfg.overhead_fraction = 0.5;
  const FluidResult r = plan(cfg, {{1400.0}, {200.0}});
  // Moved x lands as 1.5x at the donor.
  EXPECT_NEAR(r.received(0, 1), r.moved(0, 0) * 1.5, 1e-6);
}

TEST(Fluid, ConservationWithSharing) {
  FluidConfig cfg;
  cfg.horizon = 6000.0;
  cfg.slot_width = 1000.0;
  cfg.agreements = agree::complete_graph(3, 0.3);
  const std::vector<std::vector<double>> demand{
      {2000, 0, 0, 500, 1500, 0}, {0, 1800, 0, 0, 0, 900}, {100, 100, 100, 100, 100, 100}};
  const FluidResult r = plan(cfg, demand);
  // served + final backlog == total demand (overhead 0).
  double total_demand = 0.0;
  for (const auto& d : demand)
    for (double v : d) total_demand += v;
  double final_backlog = 0.0;
  for (std::size_t i = 0; i < 3; ++i) final_backlog += r.backlog(5, i);
  // Served work = sum over slots of min(inflow, capacity); infer it from
  // the backlog recursion instead: demand - final backlog must equal served.
  EXPECT_GE(total_demand + 1e-6, final_backlog);
  // Moved and received must match (overhead 0).
  double moved = 0.0, received = 0.0;
  for (double v : r.moved.flat()) moved += v;
  for (double v : r.received.flat()) received += v;
  EXPECT_NEAR(moved, received, 1e-6);
}

TEST(Fluid, ExpectedDemandHelper) {
  const std::vector<double> weights{1.0, 0.5};
  const auto d0 = expected_demand_per_slot(10.0, 0.1, weights, 600.0, 0);
  EXPECT_NEAR(d0[0], 10.0 * 1.0 * 600.0 * 0.1, 1e-9);
  EXPECT_NEAR(d0[1], 10.0 * 0.5 * 600.0 * 0.1, 1e-9);
  // Shift by one slot rotates the profile.
  const auto d1 = expected_demand_per_slot(10.0, 0.1, weights, 600.0, 1);
  EXPECT_NEAR(d1[1], d0[0], 1e-9);
  EXPECT_NEAR(d1[0], d0[1], 1e-9);
}

TEST(Fluid, TracksDiscreteSimulatorOnCaseStudy) {
  // Same scenario both ways: 4 proxies, complete graph 25%, 6h skew,
  // diurnal profile. The fluid estimate should land within a factor ~2 of
  // the discrete simulator for both the no-sharing and sharing cases.
  const trace::DiurnalProfile profile = trace::DiurnalProfile::berkeley_like();
  trace::GeneratorConfig gc;
  gc.peak_rate = 9.5;
  const trace::Generator gen(gc, profile);
  const double mean_demand =
      std::min(30.0, 0.1 + 1e-6 * trace::expected_response_bytes(gc));

  std::vector<std::vector<trace::TraceRequest>> traces;
  std::vector<std::vector<double>> demand;
  std::vector<double> weights(profile.slots());
  for (std::size_t s = 0; s < profile.slots(); ++s) weights[s] = profile.slot_weight(s);
  for (std::size_t p = 0; p < 4; ++p) {
    traces.push_back(gen.generate(100 + p, 21600.0 * static_cast<double>(p)));
    demand.push_back(expected_demand_per_slot(gc.peak_rate, mean_demand, weights, 600.0,
                                              p * 36));  // 6h = 36 slots
  }

  for (bool sharing : {false, true}) {
    proxysim::SimConfig scfg;
    scfg.num_proxies = 4;
    scfg.scheduler = sharing ? proxysim::SchedulerKind::Lp : proxysim::SchedulerKind::None;
    if (sharing) scfg.agreements = agree::complete_graph(4, 0.25);
    const proxysim::SimMetrics sim = proxysim::Simulator(scfg).run(traces);

    FluidConfig fcfg;
    fcfg.power.assign(4, 1.0);
    if (sharing) fcfg.agreements = agree::complete_graph(4, 0.25);
    const FluidResult fluid = plan(fcfg, demand);

    // fluid.peak_wait() is the worst per-proxy slot estimate; compare with
    // the simulator's worst per-proxy slot mean (not the fleet average,
    // which mixes peaking and idle proxies).
    double sim_peak = 0.0;
    for (const auto& s : sim.wait_by_slot_per_proxy)
      sim_peak = std::max(sim_peak, s.peak_slot_mean());
    const double fluid_peak = fluid.peak_wait();
    if (sim_peak > 5.0) {
      EXPECT_GT(fluid_peak, sim_peak * 0.4) << "sharing=" << sharing;
      EXPECT_LT(fluid_peak, sim_peak * 2.5) << "sharing=" << sharing;
    } else {
      // Both should agree that the system is essentially uncongested.
      EXPECT_LT(fluid_peak, 30.0) << "sharing=" << sharing;
    }
  }
}

}  // namespace
}  // namespace agora::fluid
