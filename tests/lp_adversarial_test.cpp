// Adversarial corpus for the certified solve chain: cycling-prone and
// degenerate problems, near-singular bases, wild coefficient ranges, random
// ill-conditioned systems, long warm-started perturbation sequences, and
// deliberately corrupted warm-start state. The contract under attack is
// always the same: every solve either returns a *certified* answer or an
// explicitly typed degraded status -- never a silent wrong answer.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <random>
#include <vector>

#include "lp/brute_force.h"
#include "lp/certify.h"
#include "lp/problem.h"
#include "lp/solve.h"
#include "lp/solve_pipeline.h"
#include "lp/workspace.h"

namespace agora::lp {
namespace {

// Beale's classic cycling example: Dantzig pricing with a naive tie-break
// cycles forever on this LP. Optimum is -0.05 at (0.04, 0, 1, 0).
Problem beale() {
  Problem p(Sense::Minimize);
  p.add_variable("x1", 0.0, kInfinity, -0.75);
  p.add_variable("x2", 0.0, kInfinity, 150.0);
  p.add_variable("x3", 0.0, kInfinity, -0.02);
  p.add_variable("x4", 0.0, kInfinity, 6.0);
  p.add_constraint({0.25, -60.0, -0.04, 9.0}, Relation::LessEqual, 0.0);
  p.add_constraint({0.5, -90.0, -0.02, 3.0}, Relation::LessEqual, 0.0);
  p.add_constraint({0.0, 0.0, 1.0, 0.0}, Relation::LessEqual, 1.0);
  return p;
}

// Nondegenerate at the optimum (x = 3, y = 1, all basics positive), which
// the warm-corruption tests below rely on: uniformly scaling the cached
// basis inverse keeps x_B positive, so the poisoned warm start is accepted
// instead of bouncing to phase 1.
Problem warm_corpus() {
  Problem p(Sense::Minimize);
  p.add_variable("x", 0.0, kInfinity, 2.0);
  p.add_variable("y", 0.0, kInfinity, 3.0);
  p.add_constraint({1.0, 1.0}, Relation::GreaterEqual, 4.0);
  p.add_constraint({1.0, 0.0}, Relation::LessEqual, 3.0);
  p.add_constraint({0.0, 1.0}, Relation::LessEqual, 3.0);
  return p;
}

void corrupt_inverse(SolveWorkspace& ws, double factor) {
  ASSERT_TRUE(ws.warm) << "corruption target must hold a warm basis";
  for (std::size_t r = 0; r < ws.binv.rows(); ++r)
    for (std::size_t k = 0; k < ws.binv.cols(); ++k)
      ws.binv.at_unchecked(r, k) *= factor;
  // Pretend the inverse is freshly factorized so only the residual check --
  // not the periodic refactorization cadence -- can notice the damage.
  ws.pivots_since_factor = 0;
}

TEST(Adversarial, BealeCyclingExampleCertifiesOnBothEngines) {
  const Problem p = beale();
  for (const Backend backend : {Backend::Revised, Backend::Tableau}) {
    PipelineOptions po;
    po.solve.backend = backend;
    SolvePipeline pl(po);
    const PipelineResult pr = pl.solve(p);
    ASSERT_TRUE(pr.certified())
        << "backend " << to_string(backend) << ": "
        << (pr.certificate.reject ? pr.certificate.reject : "uncertified");
    EXPECT_EQ(pr.certificate.claim, Certificate::Claim::Optimal);
    EXPECT_NEAR(pr.result.objective, -0.05, 1e-6);
  }
}

TEST(Adversarial, DegenerateTiesCertify) {
  // The optimum (1, 1) is degenerate: three constraints meet where only two
  // are needed, so ratio tests tie and pivots can stall at zero step length.
  Problem p(Sense::Maximize);
  p.add_variable("x", 0.0, kInfinity, 1.0);
  p.add_variable("y", 0.0, kInfinity, 1.0);
  p.add_constraint({1.0, 0.0}, Relation::LessEqual, 1.0);
  p.add_constraint({0.0, 1.0}, Relation::LessEqual, 1.0);
  p.add_constraint({1.0, 1.0}, Relation::LessEqual, 2.0);
  SolvePipeline pl;
  const PipelineResult pr = pl.solve(p);
  ASSERT_TRUE(pr.certified());
  EXPECT_NEAR(pr.result.objective, 2.0, 1e-9);
}

TEST(Adversarial, NearSingularBasisCertifiesOrDegradesTyped) {
  // Two almost-parallel rows: the optimal basis is within 1e-10 of
  // singular, so the basis inverse is enormous and every elementary update
  // amplifies error. Whatever happens must be certified or typed.
  Problem p(Sense::Minimize);
  p.add_variable("x", 0.0, 10.0, -1.0);
  p.add_variable("y", 0.0, 10.0, -1.0);
  p.add_constraint({1.0, 1.0}, Relation::LessEqual, 2.0);
  p.add_constraint({1.0, 1.0 + 1e-10}, Relation::LessEqual, 2.0);
  SolvePipeline pl;
  const PipelineResult pr = pl.solve(p);
  EXPECT_TRUE(pr.certified() || pr.stage == PipelineStage::Exhausted);
  if (pr.certified() && pr.certificate.claim == Certificate::Claim::Optimal) {
    const SolveResult exact = brute_force_solve(p);
    ASSERT_EQ(exact.status, Status::Optimal);
    EXPECT_NEAR(pr.result.objective, exact.objective, 1e-6 * (1.0 + std::fabs(exact.objective)));
  }
}

TEST(Adversarial, CoefficientsSpanningEightOrdersOfMagnitude) {
  // Columns at 1e-8 and 1e8 in the same rows: absolute-epsilon tests either
  // drown the small column in noise or treat the large one as violated.
  // The relative (norm-scaled) tolerance policy must certify this anyway.
  Problem p(Sense::Minimize);
  p.add_variable("tiny", 0.0, kInfinity, 1e-8);
  p.add_variable("huge", 0.0, kInfinity, 1e8);
  p.add_variable("unit", 0.0, kInfinity, 1.0);
  p.add_constraint({1e8, 1.0, 0.0}, Relation::GreaterEqual, 1e8);
  p.add_constraint({0.0, 1e-8, 1.0}, Relation::GreaterEqual, 1.0);
  SolvePipeline pl;
  const PipelineResult pr = pl.solve(p);
  ASSERT_TRUE(pr.certified())
      << (pr.certificate.reject ? pr.certificate.reject : "uncertified");
  EXPECT_EQ(pr.certificate.claim, Certificate::Claim::Optimal);
  // Optimum: tiny = 1, unit = 1, huge = 0 -> objective 1e-8 + 1.
  EXPECT_NEAR(pr.result.objective, 1.0 + 1e-8, 1e-6);
}

TEST(Adversarial, RandomIllConditionedSystemsNeverAnswerSilentlyWrong) {
  std::mt19937 rng(20260806u);
  std::uniform_real_distribution<double> mag(-2.0, 2.0);   // 10^mag coefficient scales
  std::uniform_real_distribution<double> rhs_draw(0.5, 2.0);
  std::uniform_int_distribution<int> sign(0, 1);
  std::uniform_int_distribution<int> rel3(0, 2);

  std::size_t certified = 0;
  for (int trial = 0; trial < 40; ++trial) {
    Problem p(Sense::Minimize);
    for (int j = 0; j < 4; ++j)
      p.add_variable(0.0, 10.0, (sign(rng) ? 1.0 : -1.0) * std::pow(10.0, mag(rng)));
    for (int i = 0; i < 3; ++i) {
      std::vector<double> row(4);
      for (double& a : row) a = (sign(rng) ? 1.0 : -1.0) * std::pow(10.0, mag(rng));
      const Relation rel = rel3(rng) == 0   ? Relation::LessEqual
                           : rel3(rng) == 1 ? Relation::GreaterEqual
                                            : Relation::Equal;
      p.add_constraint(row, rel, (sign(rng) ? 1.0 : -1.0) * rhs_draw(rng));
    }

    SolvePipeline pl;
    const PipelineResult pr = pl.solve(p);
    // The load-bearing invariant: certified, or explicitly exhausted.
    ASSERT_TRUE(pr.certified() || pr.stage == PipelineStage::Exhausted)
        << "trial " << trial << " returned an untyped answer";
    if (!pr.certified()) continue;
    ++certified;
    // Cross-check certified claims against exact enumeration (all variables
    // boxed, so Unbounded is impossible).
    const SolveResult exact = brute_force_solve(p);
    if (pr.certificate.claim == Certificate::Claim::Optimal) {
      ASSERT_EQ(exact.status, Status::Optimal) << "trial " << trial;
      EXPECT_NEAR(pr.result.objective, exact.objective,
                  1e-5 * (1.0 + std::fabs(exact.objective)))
          << "trial " << trial;
    } else if (pr.certificate.claim == Certificate::Claim::Infeasible) {
      EXPECT_EQ(exact.status, Status::Infeasible) << "trial " << trial;
    }
  }
  // The chain should survive the vast majority of the corpus, not just the
  // odd lucky instance.
  EXPECT_GE(certified, 35u);
}

TEST(Adversarial, WarmSequenceRecertifiesAcrossThousandPerturbations) {
  Problem p = warm_corpus();
  SolvePipeline pl;
  SolveWorkspace ws;
  std::size_t warm_solves = 0;
  for (int i = 0; i <= 1000; ++i) {
    // Deterministic rhs wobble keeps the fingerprint (A, c) fixed so the
    // warm path engages, while the optimum keeps moving.
    p.set_rhs(0, 4.0 + 0.002 * (i % 37));
    p.set_rhs(1, 3.0 + 0.01 * (i % 11));
    const PipelineResult pr = pl.solve(p, &ws);
    ASSERT_TRUE(pr.certified())
        << "solve " << i << ": "
        << (pr.certificate.reject ? pr.certificate.reject : "uncertified");
    if (pr.stage == PipelineStage::WarmRevised) ++warm_solves;
  }
  EXPECT_EQ(pl.stats().solves, 1001u);
  EXPECT_EQ(pl.stats().certified, 1001u);
  EXPECT_EQ(pl.stats().exhausted, 0u);
  // The whole point of the warm stage is that it carries the sequence.
  EXPECT_GT(warm_solves, 900u);
}

TEST(Adversarial, CorruptedInverseSelfHealsViaResidualTrigger) {
  // Poison the cached basis inverse between warm solves. The residual check
  // in the warm-start path must notice that B x_B != b and refactorize
  // before pricing a single column -- same answer, one extra rebuild, no
  // fallback needed.
  const Problem p = warm_corpus();
  SolveOptions opts;  // corrupt_inverse targets the dense explicit inverse
  opts.basis = BasisRep::DenseInverse;
  SolveWorkspace ws;
  const SolveResult clean = lp::solve(p, opts, &ws);
  ASSERT_EQ(clean.status, Status::Optimal);
  corrupt_inverse(ws, 1.5);
  const SolveResult healed = lp::solve(p, opts, &ws);
  ASSERT_EQ(healed.status, Status::Optimal);
  EXPECT_GE(healed.stats.residual_refactorizations, 1u);
  EXPECT_NEAR(healed.objective, clean.objective, 1e-9);
  Verifier v;
  const Certificate cert = v.certify(p, healed);
  EXPECT_TRUE(cert.certified) << (cert.reject ? cert.reject : "");
}

TEST(Adversarial, CorruptedInverseFallsBackWhenHealingDisabled) {
  // Same poisoning, but with the residual trigger disabled the warm stage
  // has no way to notice and returns a wrong answer. The Verifier must
  // reject it and the pipeline must recover a certified answer from the
  // cold stage -- the corpus case where the warm path alone fails.
  PipelineOptions po;
  po.solve.basis = BasisRep::DenseInverse;      // corrupt_inverse targets binv
  po.solve.tols.refactor_residual = 1e30;  // turn off in-solver self-healing
  SolvePipeline pl(po);
  const Problem p = warm_corpus();
  SolveWorkspace ws;
  const PipelineResult clean = pl.solve(p, &ws);
  ASSERT_TRUE(clean.certified());
  ASSERT_TRUE(ws.warm);
  corrupt_inverse(ws, 1.5);
  const PipelineResult recovered = pl.solve(p, &ws);
  ASSERT_TRUE(recovered.certified())
      << (recovered.certificate.reject ? recovered.certificate.reject : "uncertified");
  EXPECT_GE(recovered.fallbacks, 1u);
  EXPECT_NE(recovered.stage, PipelineStage::WarmRevised);
  EXPECT_NEAR(recovered.result.objective, clean.result.objective, 1e-9);
  // Telemetry: the warm stage was attempted and failed certification.
  EXPECT_GE(pl.stats().failures[static_cast<int>(PipelineStage::WarmRevised)], 1u);
  EXPECT_GE(pl.stats().max_fallback_depth, 1u);
  // The poisoned basis must not survive into later solves.
  const PipelineResult after = pl.solve(p, &ws);
  EXPECT_TRUE(after.certified());
}

TEST(Adversarial, StallDetectionReportsBlandPivots) {
  // Force Bland's rule on by making every pivot degenerate: a cascade of
  // zero-rhs rows. The solve must terminate, certify, and account for the
  // anti-cycling pivots it took (possibly zero if Dantzig escapes early --
  // the hard requirement is termination + certification).
  Problem p(Sense::Minimize);
  p.add_variable("a", 0.0, kInfinity, -1.0);
  p.add_variable("b", 0.0, kInfinity, -1.0);
  p.add_variable("c", 0.0, kInfinity, 2.0);
  p.add_constraint({1.0, -1.0, 1.0}, Relation::LessEqual, 0.0);
  p.add_constraint({-1.0, 1.0, 1.0}, Relation::LessEqual, 0.0);
  p.add_constraint({1.0, 1.0, -1.0}, Relation::LessEqual, 1.0);
  SolvePipeline pl;
  const PipelineResult pr = pl.solve(p);
  EXPECT_TRUE(pr.certified() || pr.stage == PipelineStage::Exhausted);
  if (pr.certified() && pr.certificate.claim == Certificate::Claim::Optimal) {
    const SolveResult exact = brute_force_solve(p);
    if (exact.status == Status::Optimal) {
      EXPECT_NEAR(pr.result.objective, exact.objective, 1e-6);
    }
  }
}

}  // namespace
}  // namespace agora::lp
