// Unit tests for the replicated GRM: the factored-out deterministic state
// machine (snapshot/restore/digest, bounded decided cache), Raft-lite
// leader election and log replication over the simulated bus, NotLeader
// client redirects and no-response failover, snapshot catch-up for lagging
// replicas, conflicting-suffix truncation, and bit-identical replay.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "agree/matrices.h"
#include "rms/bus.h"
#include "rms/client.h"
#include "rms/grm.h"
#include "rms/lrm.h"
#include "rms/replica/group.h"
#include "util/error.h"

namespace agora::rms {
namespace {

using replica::RaftNode;
using replica::ReplicatedGrm;

std::vector<agree::AgreementSystem> two_site_systems(double cap0 = 2.0, double cap1 = 10.0,
                                                     double share10 = 0.5) {
  agree::AgreementSystem cpu(2);
  cpu.capacity = {cap0, cap1};
  cpu.relative(1, 0) = share10;
  return {cpu};
}

AllocationRequest make_request(std::uint64_t id, std::size_t principal, double amount,
                               double duration = 0.0) {
  AllocationRequest req;
  req.request_id = id;
  req.principal = principal;
  req.amounts = {amount};
  req.duration = duration;
  return req;
}

// ---------------------------------------------------------- state machine ---

TEST(GrmStateMachineTest, SnapshotRestoreRoundTripsDigest) {
  GrmStateMachine a(two_site_systems(), {}, {});
  GrmStateMachine b(two_site_systems(), {}, {});
  a.register_site(0);
  a.register_site(1);
  AvailabilityReport rep;
  rep.lrm = 1;
  rep.available = {7.5};
  rep.report_seq = 3;
  a.apply_report(rep, 1.0);
  (void)a.decide(make_request(1, 0, 1.5), 2.0, true);
  (void)a.decide(make_request(2, 0, 100.0), 2.5, true);  // denied
  EXPECT_NE(a.digest(), b.digest());

  b.restore(a.snapshot());
  EXPECT_EQ(a.digest(), b.digest());
  // The restored machine decides future requests identically.
  const auto da = a.decide(make_request(3, 1, 2.0), 3.0, true);
  const auto db = b.decide(make_request(3, 1, 2.0), 3.0, true);
  EXPECT_EQ(da.reply.granted, db.reply.granted);
  EXPECT_EQ(da.reply.draws, db.reply.draws);
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(GrmStateMachineTest, DecidedCacheEvictsFifoAndCounts) {
  StateMachineOptions opts;
  opts.decided_cache_capacity = 3;
  GrmStateMachine sm(two_site_systems(), {}, opts);
  sm.register_site(0);
  sm.register_site(1);
  for (std::uint64_t id = 1; id <= 5; ++id) (void)sm.decide(make_request(id, 0, 0.1), 1.0, true);
  EXPECT_EQ(sm.decided_size(), 3u);
  EXPECT_EQ(sm.decided_evictions(), 2u);
  // FIFO: the two oldest decisions are gone, the three newest remain.
  EXPECT_EQ(sm.cached(1), nullptr);
  EXPECT_EQ(sm.cached(2), nullptr);
  EXPECT_NE(sm.cached(3), nullptr);
  EXPECT_NE(sm.cached(5), nullptr);
  // Eviction state survives snapshot/restore bit-for-bit.
  GrmStateMachine other(two_site_systems(), {}, opts);
  other.restore(sm.snapshot());
  EXPECT_EQ(other.digest(), sm.digest());
  EXPECT_EQ(other.decided_evictions(), 2u);
}

TEST(GrmTest, BoundedDecidedCacheIsWiredThroughOptions) {
  MessageBus bus;
  GrmOptions gopts;
  gopts.decided_cache_capacity = 2;
  Grm grm(bus, two_site_systems(), {}, 0.0, gopts);
  Lrm lrm0(bus, {2.0}), lrm1(bus, {10.0});
  grm.register_lrm(0, lrm0.endpoint());
  grm.register_lrm(1, lrm1.endpoint());
  lrm0.attach(grm.endpoint(), 0);
  lrm1.attach(grm.endpoint(), 1);
  const EndpointId client = bus.add_endpoint([](const Envelope&) {});
  bus.run_until_idle();
  for (std::uint64_t id = 1; id <= 5; ++id) {
    bus.post(client, grm.endpoint(), make_request(id, 0, 0.05));
    bus.run_until_idle();
  }
  EXPECT_EQ(grm.decided_cached(), 2u);
  EXPECT_EQ(grm.decided_evictions(), 3u);
}

// -------------------------------------------------------------- elections ---

/// Replicated rig: R replicas over two LRM sites plus a failover client.
struct ReplicaRig {
  MessageBus bus;
  ReplicatedGrm grp;
  Lrm lrm0, lrm1;
  RequestClient client;

  static GrmOptions grm_options(std::size_t replicas, GrmOptions base = {}) {
    base.replication.replicas = replicas;
    return base;
  }
  static ClientOptions client_options(ClientOptions base = {}) {
    base.max_attempts = 8;
    base.retry_backoff = 0.5;
    base.backoff_cap = 2.0;
    base.deadline = 60.0;
    return base;
  }

  explicit ReplicaRig(std::size_t replicas, GrmOptions gopts = {}, ClientOptions copts = {})
      : grp(bus, two_site_systems(), {}, /*decision_latency=*/0.01,
            grm_options(replicas, gopts)),
        lrm0(bus, {2.0}, /*report_latency=*/0.01),
        lrm1(bus, {10.0}, /*report_latency=*/0.01),
        client(bus, grp.endpoints(), client_options(copts)) {
    grp.register_lrm(0, lrm0.endpoint());
    grp.register_lrm(1, lrm1.endpoint());
    lrm0.attach(grp.ingress(0), 0);
    lrm1.attach(grp.ingress(1), 1);
    grp.start();
  }

  /// Stop the protocol and drain the bus (tests call this before digest
  /// comparisons; heartbeats would otherwise keep the bus busy forever).
  void quiesce() {
    grp.stop();
    bus.run_until_idle();
  }
};

TEST(ReplicaTest, ElectsExactlyOneLeader) {
  ReplicaRig rig(3);
  rig.bus.run_until(10.0);
  const auto leader = rig.grp.leader();
  ASSERT_TRUE(leader.has_value());
  std::size_t leaders = 0;
  for (std::size_t i = 0; i < rig.grp.size(); ++i) {
    if (rig.grp.node(i).role() == RaftNode::Role::Leader) ++leaders;
    EXPECT_EQ(rig.grp.node(i).term(), rig.grp.node(*leader).term());
    EXPECT_EQ(rig.grp.node(i).leader_hint(), leader);
  }
  EXPECT_EQ(leaders, 1u);
  EXPECT_EQ(rig.grp.stats().elections_won, 1u);
  rig.quiesce();
}

TEST(ReplicaTest, SingleReplicaGroupServesLikeAGrm) {
  ReplicaRig rig(1);
  rig.bus.run_until(3.0);
  ASSERT_TRUE(rig.grp.leader().has_value());
  rig.client.submit(make_request(1, 0, 1.0));
  rig.bus.run_until(10.0);
  ASSERT_TRUE(rig.client.resolved(1));
  EXPECT_TRUE(rig.client.outcome(1).reply.granted);
  // A physical hold exists and exactly the granted amount left the pool (a
  // grant may split its draw across both sites).
  EXPECT_GE(rig.lrm0.active_reservations() + rig.lrm1.active_reservations(), 1u);
  EXPECT_DOUBLE_EQ(rig.lrm0.available()[0] + rig.lrm1.available()[0], 12.0 - 1.0);
  rig.quiesce();
}

TEST(ReplicaTest, CommitsOnMajorityAndReplicasConverge) {
  ReplicaRig rig(3);
  rig.bus.run_until(5.0);
  ASSERT_TRUE(rig.grp.leader().has_value());
  for (std::uint64_t id = 1; id <= 6; ++id) {
    rig.client.submit(make_request(id, id % 2, 0.5));
    rig.bus.run_until(5.0 + static_cast<double>(id));
  }
  rig.bus.run_until(15.0);
  rig.quiesce();
  for (std::uint64_t id = 1; id <= 6; ++id) {
    ASSERT_TRUE(rig.client.resolved(id)) << "request " << id;
    EXPECT_TRUE(rig.client.outcome(id).reply.granted) << "request " << id;
  }
  // Every replica applied the same committed log: bit-identical machines.
  EXPECT_TRUE(rig.grp.converged());
  const auto& sm = rig.grp.node(0).machine();
  EXPECT_EQ(sm.decisions(), 6u);
  EXPECT_EQ(sm.grants(), 6u);
  // Physical holds exist at the LRMs and the pool shrank by exactly the
  // granted total (a grant may split its draw across both sites).
  EXPECT_GE(rig.lrm0.active_reservations() + rig.lrm1.active_reservations(), 6u);
  EXPECT_DOUBLE_EQ(rig.lrm0.available()[0] + rig.lrm1.available()[0], 12.0 - 6 * 0.5);
  // The log replicated beyond the leader.
  for (std::size_t i = 0; i < rig.grp.size(); ++i)
    EXPECT_EQ(rig.grp.node(i).applied_index(), rig.grp.node(0).applied_index());
}

TEST(ReplicaTest, FollowerRedirectsClientToLeader) {
  MessageBus bus;
  GrmOptions gopts;
  gopts.replication.replicas = 3;
  ReplicatedGrm grp(bus, two_site_systems(), {}, 0.01, gopts);
  Lrm lrm0(bus, {2.0}, 0.01), lrm1(bus, {10.0}, 0.01);
  grp.register_lrm(0, lrm0.endpoint());
  grp.register_lrm(1, lrm1.endpoint());
  lrm0.attach(grp.ingress(0), 0);
  lrm1.attach(grp.ingress(1), 1);
  grp.start();
  bus.run_until(5.0);
  const auto leader = grp.leader();
  ASSERT_TRUE(leader.has_value());

  // Point the client at a follower first: the redirect must re-target it.
  std::vector<EndpointId> targets = grp.endpoints();
  std::rotate(targets.begin(), targets.begin() + static_cast<std::ptrdiff_t>((*leader + 1) % 3),
              targets.end());
  ASSERT_NE(targets[0], grp.node(*leader).endpoint());
  ClientOptions copts = ReplicaRig::client_options();
  RequestClient client(bus, targets, copts);
  client.submit(make_request(1, 0, 1.0));
  bus.run_until(15.0);
  ASSERT_TRUE(client.resolved(1));
  EXPECT_TRUE(client.outcome(1).reply.granted);
  EXPECT_GE(client.redirects(), 1u);
  EXPECT_EQ(client.target(), grp.node(*leader).endpoint());
  EXPECT_GE(grp.stats().redirects, 1u);
  grp.stop();
  bus.run_until_idle();
}

TEST(ReplicaTest, DuplicateRequestAnsweredFromReplicatedCache) {
  ReplicaRig rig(3);
  rig.bus.run_until(5.0);
  const auto leader = rig.grp.leader();
  ASSERT_TRUE(leader.has_value());
  const EndpointId lead = rig.grp.node(*leader).endpoint();

  std::vector<AllocationReply> replies;
  const EndpointId probe = rig.bus.add_endpoint([&](const Envelope& env) {
    if (const auto* r = std::get_if<AllocationReply>(&env.payload)) replies.push_back(*r);
  });
  rig.bus.post(probe, lead, make_request(42, 1, 2.0));
  rig.bus.run_until(8.0);
  ASSERT_EQ(replies.size(), 1u);
  // The retry lands after commit: answered from the replicated decided
  // cache, not re-decided.
  rig.bus.post(probe, lead, make_request(42, 1, 2.0));
  rig.bus.run_until(10.0);
  rig.quiesce();
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[0].granted, replies[1].granted);
  EXPECT_EQ(replies[0].draws, replies[1].draws);
  EXPECT_EQ(rig.grp.node(*leader).machine().decisions(), 1u);
  EXPECT_GE(rig.grp.node(*leader).machine().duplicate_requests(), 1u);
  EXPECT_TRUE(rig.grp.converged());
}

TEST(ReplicaTest, LaggingReplicaCatchesUpViaSnapshot) {
  GrmOptions gopts;
  gopts.replication.snapshot_threshold = 8;
  ReplicaRig rig(3, gopts);
  rig.bus.run_until(5.0);
  const auto leader = rig.grp.leader();
  ASSERT_TRUE(leader.has_value());
  // Crash a follower for a long window while traffic flows.
  const std::size_t lagger = (*leader + 1) % 3;
  FaultPlan plan;
  plan.crashes.push_back(CrashWindow{rig.grp.node(lagger).endpoint(), 5.5, 40.0});
  rig.bus.set_fault_plan(plan);
  for (std::uint64_t id = 1; id <= 20; ++id) {
    rig.client.submit(make_request(id, id % 2, 0.05));
    rig.bus.run_until(5.5 + static_cast<double>(id));
  }
  rig.bus.run_until(60.0);  // restart at 40, catch up, settle
  rig.quiesce();
  for (std::uint64_t id = 1; id <= 20; ++id) ASSERT_TRUE(rig.client.resolved(id));
  EXPECT_GE(rig.grp.node(lagger).stats().snapshots_installed, 1u);
  EXPECT_GE(rig.grp.stats().compactions, 1u);
  EXPECT_GE(rig.grp.node(lagger).snapshot_index(), 8u);
  EXPECT_TRUE(rig.grp.converged());
  EXPECT_EQ(rig.grp.node(lagger).applied_index(), rig.grp.node(*leader).applied_index());
}

TEST(ReplicaTest, DeposedLeaderTruncatesConflictingSuffix) {
  ReplicaRig rig(3);
  rig.bus.run_until(5.0);
  const auto old_leader = rig.grp.leader();
  ASSERT_TRUE(old_leader.has_value());
  const EndpointId old_ep = rig.grp.node(*old_leader).endpoint();

  // A probe isolated WITH the old leader keeps feeding it requests it can
  // append but never commit (its AppendEntries die at the partition cut).
  std::vector<AllocationReply> probe_replies;
  const EndpointId probe = rig.bus.add_endpoint([&](const Envelope& env) {
    if (const auto* r = std::get_if<AllocationReply>(&env.payload))
      probe_replies.push_back(*r);
  });
  FaultPlan plan;
  plan.partitions.push_back(Partition{5.0, 20.0, {old_ep, probe}});
  rig.bus.set_fault_plan(plan);

  rig.bus.run_until(6.0);
  rig.bus.post(probe, old_ep, make_request(100, 0, 0.5));
  rig.bus.post(probe, old_ep, make_request(101, 1, 0.5));
  // Majority side elects a new leader and serves clients meanwhile.
  rig.bus.run_until(12.0);
  const auto new_leader = rig.grp.leader();
  ASSERT_TRUE(new_leader.has_value());
  ASSERT_NE(*new_leader, *old_leader);
  rig.client.submit(make_request(1, 0, 0.5));
  rig.bus.run_until(18.0);
  ASSERT_TRUE(rig.client.resolved(1));
  EXPECT_TRUE(rig.client.outcome(1).reply.granted);
  // The minority leader never committed, so it never replied: no client
  // ever saw a grant the majority did not agree to.
  EXPECT_TRUE(probe_replies.empty());
  EXPECT_GT(rig.grp.node(*old_leader).last_index(),
            rig.grp.node(*old_leader).commit_index());

  // Heal: the old leader steps down, drops its uncommitted suffix, and
  // converges on the majority's history.
  rig.bus.run_until(30.0);
  rig.quiesce();
  EXPECT_EQ(rig.grp.node(*old_leader).role(), RaftNode::Role::Follower);
  EXPECT_GE(rig.grp.node(*old_leader).stats().suffix_truncations, 1u);
  EXPECT_TRUE(rig.grp.converged());
}

TEST(ReplicaTest, IngressForwardingReachesTheLeader) {
  ReplicaRig rig(3);
  rig.bus.run_until(5.0);
  ASSERT_TRUE(rig.grp.leader().has_value());
  // Capacity growth at a site reports to its (possibly follower) ingress
  // replica; the report must still land in the replicated log.
  rig.lrm1.adjust_capacity(0, 5.0);
  rig.bus.run_until(8.0);
  rig.quiesce();
  EXPECT_DOUBLE_EQ(rig.grp.node(0).machine().known_available(1, 0), 15.0);
  EXPECT_TRUE(rig.grp.converged());
}

TEST(ReplicaTest, AgreementUpdateFlowsThroughTheLog) {
  ReplicaRig rig(3);
  rig.bus.run_until(5.0);
  const auto leader = rig.grp.leader();
  ASSERT_TRUE(leader.has_value());
  const EndpointId probe = rig.bus.add_endpoint([](const Envelope&) {});
  AgreementUpdate upd;
  upd.resource = 0;
  upd.from = 1;
  upd.to = 0;
  upd.share = 0.9;
  rig.bus.post(probe, rig.grp.node(*leader).endpoint(), upd);
  rig.bus.run_until(8.0);
  rig.quiesce();
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_DOUBLE_EQ(rig.grp.node(i).machine().digest(), rig.grp.node(0).machine().digest());
  EXPECT_TRUE(rig.grp.converged());
}

TEST(ReplicaTest, MalformedRequestIsDeniedAtTheEdge) {
  ReplicaRig rig(3);
  rig.bus.run_until(5.0);
  const auto leader = rig.grp.leader();
  ASSERT_TRUE(leader.has_value());
  std::vector<AllocationReply> replies;
  const EndpointId probe = rig.bus.add_endpoint([&](const Envelope& env) {
    if (const auto* r = std::get_if<AllocationReply>(&env.payload)) replies.push_back(*r);
  });
  AllocationRequest bad;
  bad.request_id = 7;
  bad.principal = 99;  // unknown principal: must never enter the log
  bad.amounts = {1.0};
  rig.bus.post(probe, rig.grp.node(*leader).endpoint(), bad);
  rig.bus.run_until(8.0);
  rig.quiesce();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_FALSE(replies[0].granted);
  EXPECT_NE(replies[0].reason.find("invalid"), std::string::npos);
  EXPECT_EQ(rig.grp.node(*leader).machine().decisions(), 0u);
  EXPECT_TRUE(rig.grp.converged());
}

TEST(ReplicaTest, SameSeedReplaysBitIdentically) {
  auto run = [](std::uint64_t seed) {
    GrmOptions gopts;
    gopts.replication.seed = seed;
    ReplicaRig rig(3, gopts);
    rig.bus.run_until(5.0);
    for (std::uint64_t id = 1; id <= 4; ++id) {
      rig.client.submit(make_request(id, id % 2, 0.5));
      rig.bus.run_until(5.0 + 2.0 * static_cast<double>(id));
    }
    rig.bus.run_until(20.0);
    rig.quiesce();
    struct Fingerprint {
      std::vector<std::uint64_t> digests;
      std::uint64_t term;
      std::uint64_t delivered;
      std::optional<std::size_t> leader;
    } fp;
    fp.digests = rig.grp.digests();
    fp.term = rig.grp.node(0).term();
    fp.delivered = rig.bus.delivered();
    fp.leader = rig.grp.leader();
    return std::make_tuple(fp.digests, fp.term, fp.delivered, fp.leader);
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(std::get<0>(run(7)), std::vector<std::uint64_t>{});  // sanity
  // A different seed elects (in general) a different leader at a different
  // time; the digests can differ because edge-driven timing differs, but
  // the run still quiesces converged.
  const auto other = run(8);
  EXPECT_EQ(std::get<0>(other).size(), 3u);
}

// ---------------------------------------------------------------- client ---

TEST(ClientFailover, RotatesOffADeadTargetAndResolves) {
  MessageBus bus;
  // Target 0 swallows every request (a crashed coordinator from the
  // client's point of view); target 1 is a live single GRM.
  const EndpointId dead = bus.add_endpoint([](const Envelope&) {});
  Grm grm(bus, two_site_systems());
  Lrm lrm0(bus, {2.0}), lrm1(bus, {10.0});
  grm.register_lrm(0, lrm0.endpoint());
  grm.register_lrm(1, lrm1.endpoint());
  lrm0.attach(grm.endpoint(), 0);
  lrm1.attach(grm.endpoint(), 1);
  ClientOptions copts;
  copts.max_attempts = 4;
  copts.retry_backoff = 0.5;
  copts.deadline = 30.0;
  RequestClient client(bus, {dead, grm.endpoint()}, copts);
  client.submit(make_request(1, 0, 1.0));
  bus.run_until_idle();
  ASSERT_TRUE(client.resolved(1));
  EXPECT_TRUE(client.outcome(1).reply.granted);
  EXPECT_GE(client.failovers(), 1u);
  EXPECT_EQ(client.target(), grm.endpoint());
}

TEST(ClientFailover, BackoffJitterDecorrelatesSchedulesWithoutChangingOutcomes) {
  auto retry_times = [](double jitter, std::uint64_t seed) {
    MessageBus bus;
    const EndpointId dead = bus.add_endpoint([](const Envelope&) {});
    std::vector<double> times;
    const EndpointId sink = bus.add_endpoint([&](const Envelope& env) {
      if (std::get_if<AllocationRequest>(&env.payload)) times.push_back(bus.now());
    });
    ClientOptions copts;
    copts.max_attempts = 5;
    copts.retry_backoff = 0.5;
    copts.backoff_cap = 8.0;
    copts.retry_jitter = jitter;
    copts.retry_jitter_seed = seed;
    copts.deadline = 64.0;
    RequestClient client(bus, {dead, sink, dead, sink}, copts);
    client.submit(make_request(1, 0, 1.0));
    bus.run_until_idle();
    return times;
  };
  // Jitter off: bit-identical schedules regardless of the seed (the RNG is
  // never consulted -- the seed protocol is unchanged).
  EXPECT_EQ(retry_times(0.0, 1), retry_times(0.0, 99));
  // Jitter on: same seed replays identically; different seeds decorrelate.
  EXPECT_EQ(retry_times(0.5, 1), retry_times(0.5, 1));
  EXPECT_NE(retry_times(0.5, 1), retry_times(0.5, 2));
  EXPECT_NE(retry_times(0.5, 1), retry_times(0.0, 1));
}

TEST(ReserveJitter, GrmReserveRetriesJitterDeterministically) {
  auto retry_times = [](double jitter, std::uint64_t seed) {
    MessageBus bus;
    GrmOptions gopts;
    gopts.reserve_attempts = 4;
    gopts.reserve_backoff = 0.25;
    gopts.reserve_jitter = jitter;
    gopts.reserve_jitter_seed = seed;
    Grm grm(bus, two_site_systems(), {}, 0.0, gopts);
    Lrm lrm0(bus, {2.0}), lrm1(bus, {10.0});
    grm.register_lrm(0, lrm0.endpoint());
    grm.register_lrm(1, lrm1.endpoint());
    lrm0.attach(grm.endpoint(), 0);
    lrm1.attach(grm.endpoint(), 1);
    // Sever the GRM -> LRM1 reserve path so every attempt retries.
    FaultPlan plan;
    plan.per_link[{grm.endpoint(), lrm1.endpoint()}] = LinkFaults{1.0, 0.0, 0.0};
    bus.set_fault_plan(plan);
    const EndpointId client = bus.add_endpoint([](const Envelope&) {});
    bus.run_until_idle();
    bus.post(client, grm.endpoint(), make_request(1, 1, 5.0));
    bus.run_until_idle();
    return std::make_pair(grm.reserve_retries(), bus.now());
  };
  EXPECT_EQ(retry_times(0.0, 1), retry_times(0.0, 42));
  EXPECT_EQ(retry_times(0.5, 1), retry_times(0.5, 1));
  // Jittered retries stretch the schedule (strictly later quiesce).
  EXPECT_GT(retry_times(0.5, 1).second, retry_times(0.0, 1).second);
}

}  // namespace
}  // namespace agora::rms
