// Unit tests for the ticket/currency economy and its valuation, including
// the paper's worked Examples 1 and 2 (Figures 1 and 2).
#include <gtest/gtest.h>

#include "core/economy.h"
#include "core/valuation.h"
#include "util/error.h"

namespace agora::core {
namespace {

/// The economy of Figure 1: A owns 10 TB, B owns 15 TB; A shares 3 TB with
/// C absolutely and 50% with B relatively; B shares 60% with D relatively.
struct Example1 {
  Economy e;
  ResourceTypeId disk;
  PrincipalId a, b, c, d;
  TicketId t_base_a, t_base_b, t3, t4, t5;

  Example1() {
    disk = e.add_resource_type("disk", "TB");
    a = e.add_principal("A", 1000.0);  // currency A: face value 1000
    b = e.add_principal("B", 100.0);   // currency B: face value 100
    c = e.add_principal("C", 100.0);
    d = e.add_principal("D", 100.0);
    t_base_a = e.fund_with_resource(e.default_currency(a), disk, 10.0, "A-Ticket1");
    t_base_b = e.fund_with_resource(e.default_currency(b), disk, 15.0, "A-Ticket2");
    t3 = e.issue_absolute(e.default_currency(a), e.default_currency(c), disk, 3.0,
                          SharingMode::Sharing, "R-Ticket3");
    t4 = e.issue_relative(e.default_currency(a), e.default_currency(b), 500.0, disk,
                          SharingMode::Sharing, "R-Ticket4");
    t5 = e.issue_relative(e.default_currency(b), e.default_currency(d), 60.0, disk,
                          SharingMode::Sharing, "R-Ticket5");
  }
};

TEST(Economy, RegistrationBasics) {
  Economy e;
  const auto disk = e.add_resource_type("disk", "TB");
  const auto p = e.add_principal("A", 50.0);
  EXPECT_EQ(e.num_principals(), 1u);
  EXPECT_EQ(e.num_currencies(), 1u);
  EXPECT_EQ(e.resource_type(disk).unit, "TB");
  EXPECT_EQ(e.currency(e.default_currency(p)).kind, CurrencyKind::Default);
  EXPECT_DOUBLE_EQ(e.currency(e.default_currency(p)).face_value, 50.0);
}

TEST(Economy, DuplicateNamesRejected) {
  Economy e;
  e.add_resource_type("disk");
  EXPECT_THROW(e.add_resource_type("disk"), PreconditionError);
  e.add_principal("A");
  EXPECT_THROW(e.add_principal("A"), PreconditionError);
}

TEST(Economy, FindByName) {
  Economy e;
  e.add_resource_type("cpu");
  const auto p = e.add_principal("org");
  EXPECT_EQ(e.find_principal("org"), p);
  EXPECT_FALSE(e.find_principal("nope").valid());
  EXPECT_TRUE(e.find_currency("org").valid());
  EXPECT_TRUE(e.find_resource_type("cpu").valid());
}

TEST(Economy, SelfBackingRejected) {
  Economy e;
  const auto disk = e.add_resource_type("disk");
  const auto p = e.add_principal("A");
  const auto cur = e.default_currency(p);
  EXPECT_THROW(e.issue_relative(cur, cur, 10.0, disk), PreconditionError);
  EXPECT_THROW(e.issue_absolute(cur, cur, disk, 1.0), PreconditionError);
}

TEST(Economy, OverdraftDetection) {
  Economy e;
  e.add_resource_type("disk");
  const auto a = e.add_principal("A", 100.0);
  const auto b = e.add_principal("B");
  const auto c = e.add_principal("C");
  e.issue_relative(e.default_currency(a), e.default_currency(b), 60.0);
  EXPECT_FALSE(e.overdrafted(e.default_currency(a)));
  e.issue_relative(e.default_currency(a), e.default_currency(c), 60.0);
  EXPECT_TRUE(e.overdrafted(e.default_currency(a)));
  EXPECT_DOUBLE_EQ(e.issued_relative_face(e.default_currency(a)), 120.0);
}

TEST(Economy, ConsistencyCheckPasses) {
  Example1 ex;
  EXPECT_NO_THROW(ex.e.check_consistency());
}

// ------------------------------------------------------------- Valuation ---

TEST(Valuation, Example1MatchesPaper) {
  Example1 ex;
  const Valuation v = value_economy(ex.e);
  // Paper: value(A)=10, R-Ticket4 real value = 10*500/1000 = 5,
  // value(B) = 15+5 = 20, R-Ticket5 real value = 20*60/100 = 12.
  EXPECT_NEAR(v.currency_value(ex.e.default_currency(ex.a), ex.disk), 10.0, 1e-12);
  EXPECT_NEAR(v.currency_value(ex.e.default_currency(ex.b), ex.disk), 20.0, 1e-12);
  EXPECT_NEAR(v.currency_value(ex.e.default_currency(ex.c), ex.disk), 3.0, 1e-12);
  EXPECT_NEAR(v.currency_value(ex.e.default_currency(ex.d), ex.disk), 12.0, 1e-12);
  EXPECT_NEAR(v.ticket_value(ex.t4, ex.disk), 5.0, 1e-12);
  EXPECT_NEAR(v.ticket_value(ex.t5, ex.disk), 12.0, 1e-12);
  EXPECT_NEAR(v.ticket_value(ex.t3, ex.disk), 3.0, 1e-12);
}

TEST(Valuation, Example2VirtualCurrencies) {
  // Figure 2: virtual currencies A1 (value 3) and A2 (value 5) partition
  // A's agreements; A1 backs C, A2 backs D and B.
  Economy e;
  const auto disk = e.add_resource_type("disk", "TB");
  const auto a = e.add_principal("A", 1000.0);
  const auto b = e.add_principal("B", 100.0);
  const auto c = e.add_principal("C", 100.0);
  const auto d = e.add_principal("D", 100.0);
  e.fund_with_resource(e.default_currency(a), disk, 10.0);
  e.fund_with_resource(e.default_currency(b), disk, 15.0);
  const auto a1 = e.create_virtual_currency(a, "A1", 100.0);
  const auto a2 = e.create_virtual_currency(a, "A2", 100.0);
  e.issue_relative(e.default_currency(a), a1, 300.0, disk, SharingMode::Sharing, "R-Ticket3");
  e.issue_relative(e.default_currency(a), a2, 500.0, disk, SharingMode::Sharing, "R-Ticket4");
  // A1 conveys everything to C; A2 splits 40/60 between D and B.
  const auto t6 = e.issue_relative(a1, e.default_currency(c), 100.0, disk,
                                   SharingMode::Sharing, "R-Ticket6");
  const auto t7 = e.issue_relative(a2, e.default_currency(d), 40.0, disk,
                                   SharingMode::Sharing, "R-Ticket7");
  const auto t8 = e.issue_relative(a2, e.default_currency(b), 60.0, disk,
                                   SharingMode::Sharing, "R-Ticket8");

  const Valuation v = value_economy(e);
  EXPECT_NEAR(v.currency_value(a1, disk), 3.0, 1e-12);  // paper: value(A1)=3
  EXPECT_NEAR(v.currency_value(a2, disk), 5.0, 1e-12);  // paper: value(A2)=5
  EXPECT_NEAR(v.currency_value(e.default_currency(c), disk), 3.0, 1e-12);
  EXPECT_NEAR(v.currency_value(e.default_currency(d), disk), 2.0, 1e-12);
  EXPECT_NEAR(v.currency_value(e.default_currency(b), disk), 18.0, 1e-12);
  EXPECT_NEAR(v.ticket_value(t6, disk), 3.0, 1e-12);
  EXPECT_NEAR(v.ticket_value(t7, disk), 2.0, 1e-12);
  EXPECT_NEAR(v.ticket_value(t8, disk), 3.0, 1e-12);

  // Decoupling: inflating A1 (changing the C agreement subset) must not
  // move anything funded through A2.
  e.set_face_value(a1, 200.0);  // R-Ticket6 now conveys only half of A1
  const Valuation v2 = value_economy(e);
  EXPECT_NEAR(v2.currency_value(e.default_currency(c), disk), 1.5, 1e-12);
  EXPECT_NEAR(v2.currency_value(e.default_currency(d), disk), 2.0, 1e-12);
  EXPECT_NEAR(v2.currency_value(e.default_currency(b), disk), 18.0, 1e-12);
}

TEST(Valuation, RevocationRemovesValue) {
  Example1 ex;
  ex.e.revoke(ex.t4);
  const Valuation v = value_economy(ex.e);
  EXPECT_NEAR(v.currency_value(ex.e.default_currency(ex.b), ex.disk), 15.0, 1e-12);
  // D's transitive benefit shrinks accordingly: 15 * 0.6 = 9.
  EXPECT_NEAR(v.currency_value(ex.e.default_currency(ex.d), ex.disk), 9.0, 1e-12);
  EXPECT_DOUBLE_EQ(v.ticket_value(ex.t4, ex.disk), 0.0);
}

TEST(Valuation, TicketRenegotiationReprices) {
  // Renegotiate R-Ticket4 from 50% (face 500/1000) to 20% without tearing
  // the agreement down; B's and (transitively) D's values follow.
  Example1 ex;
  ex.e.set_ticket_face(ex.t4, 200.0);
  const Valuation v = value_economy(ex.e);
  EXPECT_NEAR(v.ticket_value(ex.t4, ex.disk), 2.0, 1e-12);
  EXPECT_NEAR(v.currency_value(ex.e.default_currency(ex.b), ex.disk), 17.0, 1e-12);
  EXPECT_NEAR(v.currency_value(ex.e.default_currency(ex.d), ex.disk), 10.2, 1e-12);
  // Guard rails.
  EXPECT_THROW(ex.e.set_ticket_face(ex.t4, -1.0), PreconditionError);
  ex.e.revoke(ex.t4);
  EXPECT_THROW(ex.e.set_ticket_face(ex.t4, 100.0), PreconditionError);
}

TEST(Valuation, InflationDilutesOutstandingTickets) {
  Example1 ex;
  // Doubling currency A's face value halves R-Ticket4's conveyed share.
  ex.e.set_face_value(ex.e.default_currency(ex.a), 2000.0);
  const Valuation v = value_economy(ex.e);
  EXPECT_NEAR(v.ticket_value(ex.t4, ex.disk), 2.5, 1e-12);
  EXPECT_NEAR(v.currency_value(ex.e.default_currency(ex.b), ex.disk), 17.5, 1e-12);
}

TEST(Valuation, DynamicGrowthPropagates) {
  // "the real value of relative tickets can change dynamically as more
  // supporting tickets join the issuing currency".
  Example1 ex;
  ex.e.fund_with_resource(ex.e.default_currency(ex.a), ex.disk, 10.0, "new-capacity");
  const Valuation v = value_economy(ex.e);
  EXPECT_NEAR(v.currency_value(ex.e.default_currency(ex.a), ex.disk), 20.0, 1e-12);
  EXPECT_NEAR(v.ticket_value(ex.t4, ex.disk), 10.0, 1e-12);
  EXPECT_NEAR(v.currency_value(ex.e.default_currency(ex.b), ex.disk), 25.0, 1e-12);
  EXPECT_NEAR(v.currency_value(ex.e.default_currency(ex.d), ex.disk), 15.0, 1e-12);
}

TEST(Valuation, FixPointMatchesDirect) {
  Example1 ex;
  const Valuation direct = value_economy(ex.e, {ValuationMethod::Direct});
  ValuationOptions fp;
  fp.method = ValuationMethod::FixPoint;
  const Valuation iter = value_economy(ex.e, fp);
  for (std::size_t c = 0; c < ex.e.num_currencies(); ++c)
    EXPECT_NEAR(direct.currency_value(CurrencyId(c), ex.disk),
                iter.currency_value(CurrencyId(c), ex.disk), 1e-9);
}

TEST(Valuation, CyclicAgreementsConverge) {
  // A and B back each other with 50%: values solve v_a = 10 + .5 v_b,
  // v_b = 20 + .5 v_a  =>  v_a = 80/3, v_b = 100/3.
  Economy e;
  const auto r = e.add_resource_type("cpu");
  const auto a = e.add_principal("A", 100.0);
  const auto b = e.add_principal("B", 100.0);
  e.fund_with_resource(e.default_currency(a), r, 10.0);
  e.fund_with_resource(e.default_currency(b), r, 20.0);
  e.issue_relative(e.default_currency(a), e.default_currency(b), 50.0);
  e.issue_relative(e.default_currency(b), e.default_currency(a), 50.0);
  for (ValuationMethod m : {ValuationMethod::Direct, ValuationMethod::FixPoint}) {
    ValuationOptions o;
    o.method = m;
    const Valuation v = value_economy(e, o);
    EXPECT_NEAR(v.currency_value(e.default_currency(a), r), 80.0 / 3.0, 1e-9);
    EXPECT_NEAR(v.currency_value(e.default_currency(b), r), 100.0 / 3.0, 1e-9);
  }
}

TEST(Valuation, DivergentCycleReported) {
  // 100% shares around a cycle: no finite fix point.
  Economy e;
  const auto r = e.add_resource_type("cpu");
  const auto a = e.add_principal("A", 100.0);
  const auto b = e.add_principal("B", 100.0);
  e.fund_with_resource(e.default_currency(a), r, 10.0);
  e.issue_relative(e.default_currency(a), e.default_currency(b), 100.0);
  e.issue_relative(e.default_currency(b), e.default_currency(a), 100.0);
  EXPECT_THROW(value_economy(e), InternalError);
}

TEST(Valuation, ResourceTypedRelativeTicketsSelectResources) {
  Economy e;
  const auto cpu = e.add_resource_type("cpu");
  const auto disk = e.add_resource_type("disk");
  const auto a = e.add_principal("A", 100.0);
  const auto b = e.add_principal("B", 100.0);
  e.fund_with_resource(e.default_currency(a), cpu, 8.0);
  e.fund_with_resource(e.default_currency(a), disk, 6.0);
  // Share 50% of the CPU only.
  e.issue_relative(e.default_currency(a), e.default_currency(b), 50.0, cpu);
  const Valuation v = value_economy(e);
  EXPECT_NEAR(v.currency_value(e.default_currency(b), cpu), 4.0, 1e-12);
  EXPECT_NEAR(v.currency_value(e.default_currency(b), disk), 0.0, 1e-12);
}

TEST(Valuation, UntypedRelativeTicketConveysAllResources) {
  Economy e;
  const auto cpu = e.add_resource_type("cpu");
  const auto disk = e.add_resource_type("disk");
  const auto a = e.add_principal("A", 100.0);
  const auto b = e.add_principal("B", 100.0);
  e.fund_with_resource(e.default_currency(a), cpu, 8.0);
  e.fund_with_resource(e.default_currency(a), disk, 6.0);
  e.issue_relative(e.default_currency(a), e.default_currency(b), 25.0);
  const Valuation v = value_economy(e);
  EXPECT_NEAR(v.currency_value(e.default_currency(b), cpu), 2.0, 1e-12);
  EXPECT_NEAR(v.currency_value(e.default_currency(b), disk), 1.5, 1e-12);
}

TEST(Valuation, EmptyEconomy) {
  Economy e;
  const Valuation v = value_economy(e);
  EXPECT_EQ(v.num_currencies(), 0u);
}

}  // namespace
}  // namespace agora::core
