// Property tests for the border-credit ledger (engine/credit.h): across
// random loan / revoke / settle / consume / crash interleavings,
//
//   * conservation -- sum(lender-local capacity) + sum(borrower banks) is
//     exactly the global capacity total: no interleaving mints or loses a
//     unit (loaned capacity moves, it never duplicates);
//   * no double-spend -- consuming past a credit's live balance throws
//     instead of spending the same loaned unit twice;
//   * reconciliation -- every committed settlement lands each credit on its
//     clamped target, replaying a committed round (coordinator crash,
//     duplicated message) is a no-op, and a crashed-and-replanned round is
//     bit-deterministic.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "engine/credit.h"
#include "util/error.h"

namespace agora::engine {
namespace {

/// A model economy around a ledger: global capacities, shard assignment,
/// and the derived local views the conservation invariant is stated over.
struct Model {
  std::vector<double> capacity;       ///< global V_k
  std::vector<std::size_t> shard_of;  ///< participant -> shard
  std::size_t shards = 0;
  CreditLedger ledger;

  double global_total() const {
    double s = 0.0;
    for (double v : capacity) s += v;
    return s;
  }

  /// sum over lenders of (V_k - outstanding loans) + sum over banks of
  /// inbound balances. Conservation says this equals global_total().
  double local_total() const {
    double s = 0.0;
    for (std::size_t k = 0; k < capacity.size(); ++k)
      s += capacity[k] - ledger.outstanding_from(k);
    for (const Credit& c : ledger.credits()) s += c.remaining();
    return s;
  }
};

Model random_model(std::mt19937_64& rng, std::size_t n, std::size_t shards,
                   std::size_t credits) {
  Model m;
  m.shards = shards;
  m.capacity.resize(n);
  m.shard_of.resize(n);
  std::uniform_real_distribution<double> cap(10.0, 50.0);
  for (std::size_t i = 0; i < n; ++i) {
    m.capacity[i] = cap(rng);
    m.shard_of[i] = i % shards;
  }
  std::uniform_int_distribution<std::size_t> who(0, n - 1);
  std::size_t made = 0;
  while (made < credits) {
    const std::size_t l = who(rng), b = who(rng);
    if (l == b || m.shard_of[l] == m.shard_of[b]) continue;
    m.ledger.add_credit(l, b, m.shard_of[l], m.shard_of[b]);
    ++made;
  }
  return m;
}

/// Random settlement targets, each bounded so no lender can be asked to
/// loan more than it owns in total (matching Federation's lend_cap role).
std::vector<double> random_targets(std::mt19937_64& rng, const Model& m) {
  std::vector<double> t(m.ledger.size(), 0.0);
  std::vector<double> headroom = m.capacity;
  std::uniform_real_distribution<double> frac(0.0, 0.4);
  for (const Credit& c : m.ledger.credits()) {
    t[c.id] = std::min(frac(rng) * m.capacity[c.lender], headroom[c.lender]);
    headroom[c.lender] -= t[c.id];
  }
  return t;
}

TEST(CreditConservation, RandomInterleavingsConserveCapacity) {
  std::mt19937_64 rng(31337);
  for (int econ = 0; econ < 8; ++econ) {
    Model m = random_model(rng, 12 + 4 * econ, 2 + econ % 3, 6 + 2 * econ);
    ASSERT_NEAR(m.local_total(), m.global_total(), 1e-9);  // nothing loaned yet

    double consumed_total = 0.0;
    std::uniform_real_distribution<double> frac(0.0, 1.0);
    std::uniform_int_distribution<int> op(0, 3);
    for (int step = 0; step < 200; ++step) {
      switch (op(rng)) {
        case 0: {  // settle toward fresh random targets
          const auto targets = random_targets(rng, m);
          const auto plan = m.ledger.plan_settlement(targets);
          ASSERT_TRUE(m.ledger.commit(plan));
          // Reconciliation: every credit lands exactly on its clamped target.
          for (const Credit& c : m.ledger.credits())
            EXPECT_NEAR(c.remaining(), std::max(0.0, targets[c.id]), 1e-9);
          break;
        }
        case 1: {  // consume part of a live loan (a federated apply)
          for (const Credit& c : m.ledger.credits()) {
            if (c.remaining() <= 0.0) continue;
            const double amount = frac(rng) * c.remaining();
            m.ledger.consume(c.id, amount);
            // The spend leaves the economy entirely (the requester used it):
            // the lender's global capacity drops with it.
            m.capacity[c.lender] -= amount;
            consumed_total += amount;
            break;
          }
          break;
        }
        case 2: {  // coordinator crash: a committed round is replayed
          const auto targets = random_targets(rng, m);
          const auto plan = m.ledger.plan_settlement(targets);
          ASSERT_TRUE(m.ledger.commit(plan));
          const std::string before = m.ledger.digest();
          EXPECT_FALSE(m.ledger.commit(plan));  // duplicate delivery: no-op
          EXPECT_EQ(m.ledger.digest(), before);
          break;
        }
        case 3: {  // crash between plan and commit: replanning is identical
          const auto targets = random_targets(rng, m);
          const auto lost = m.ledger.plan_settlement(targets);
          const auto replanned = m.ledger.plan_settlement(targets);
          ASSERT_EQ(lost.settle_id, replanned.settle_id);
          ASSERT_EQ(lost.adjust.size(), replanned.adjust.size());
          for (std::size_t i = 0; i < lost.adjust.size(); ++i) {
            EXPECT_EQ(lost.adjust[i].credit, replanned.adjust[i].credit);
            EXPECT_EQ(lost.adjust[i].delta, replanned.adjust[i].delta);
          }
          ASSERT_TRUE(m.ledger.commit(replanned));
          break;
        }
      }
      // THE invariant: local views partition the global capacity exactly,
      // after every single step.
      ASSERT_NEAR(m.local_total(), m.global_total(), 1e-7 * (1.0 + m.global_total()))
          << "econ=" << econ << " step=" << step;
    }
    // Lifecycle audit closes: granted = consumed + revoked + outstanding,
    // and what was consumed here is exactly what left the economy.
    const CreditLedger::Totals t = m.ledger.totals();
    EXPECT_NEAR(t.granted, t.consumed + t.revoked + t.outstanding,
                1e-7 * (1.0 + t.granted));
    EXPECT_NEAR(t.consumed, consumed_total, 1e-7 * (1.0 + consumed_total));
  }
}

TEST(CreditConservation, OverdrawThrowsInsteadOfDoubleSpending) {
  CreditLedger ledger;
  const std::uint64_t id = ledger.add_credit(0, 1, 0, 1);
  std::vector<double> targets{5.0};
  ASSERT_TRUE(ledger.commit(ledger.plan_settlement(targets)));
  ledger.consume(id, 3.0);
  EXPECT_NEAR(ledger.credits()[id].remaining(), 2.0, 1e-12);
  // Within tolerance of the balance: clamped, not thrown.
  ledger.consume(id, 2.0 + 1e-12);
  EXPECT_NEAR(ledger.credits()[id].remaining(), 0.0, 1e-9);
  // Beyond it: a stale plan trying to double-spend the loan.
  EXPECT_THROW(ledger.consume(id, 0.5), PreconditionError);
  // Revocation can only take back what is still live, never the spent part.
  std::vector<double> zero{0.0};
  ASSERT_TRUE(ledger.commit(ledger.plan_settlement(zero)));
  const CreditLedger::Totals t = ledger.totals();
  EXPECT_NEAR(t.consumed, 5.0, 1e-9);
  EXPECT_NEAR(t.outstanding, 0.0, 1e-9);
}

TEST(CreditConservation, CreditsMustCrossShards) {
  CreditLedger ledger;
  EXPECT_THROW(ledger.add_credit(0, 0, 0, 1), PreconditionError);
  EXPECT_THROW(ledger.add_credit(0, 1, 2, 2), PreconditionError);
}

TEST(CreditConservation, SameSeedReplayDigestsIdentically) {
  const auto run = [](std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    Model m = random_model(rng, 16, 3, 10);
    std::uniform_real_distribution<double> frac(0.0, 1.0);
    for (int step = 0; step < 60; ++step) {
      const auto targets = random_targets(rng, m);
      EXPECT_TRUE(m.ledger.commit(m.ledger.plan_settlement(targets)));
      for (const Credit& c : m.ledger.credits()) {
        if (c.remaining() <= 0.0) continue;
        m.ledger.consume(c.id, frac(rng) * c.remaining());
        break;
      }
    }
    return m.ledger.digest();
  };
  const std::string a = run(777);
  const std::string b = run(777);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
  EXPECT_NE(a, run(778));  // the digest actually discriminates states
}

}  // namespace
}  // namespace agora::engine
