// Differential tests for federated cross-shard enforcement (DESIGN.md §15).
//
// A federated engine is *approximate by design* -- each shard admits from
// local state plus border credits -- so the only trustworthy way to ship it
// is to fuzz it against the exact global allocator: random single-component
// economies, federated decisions checked for certified feasibility against
// the GLOBAL entitlements (never just the shard-local ones), grants
// cross-checked to be grantable by the exact LP, and the optimality gap
// bounded. Plus the engine's standing guarantee: threads=1 stays
// bit-identical to the direct Allocator path whether federation is
// requested or not (a single shard has no cut edges, so federation must be
// perfectly inert).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <random>
#include <vector>

#include "agree/capacity.h"
#include "alloc/allocator.h"
#include "engine/engine.h"
#include "engine/federation.h"
#include "engine/partition.h"

namespace agora::engine {
namespace {

constexpr double kTol = 1e-6;
/// Configured optimality-gap bound for the fuzzed economies: the federated
/// theta never exceeds the exact global optimum by more than this, relative
/// to max(theta_exact, 1). Deliberately generous -- the bench records the
/// typical gap, this asserts it can never run away. Observed maximum over
/// the seeded cases is ~3.6 (densest 48/64-participant economies, where
/// pinning a draw to one shard forgoes the most off-shard routing).
constexpr double kGapRelBound = 4.5;

/// Random connected single-component economy: a random spanning tree plus
/// `extra` density edges, shares U[0.05, 0.3], capacities U[5, 20]. Row
/// sums may exceed 1 (overdraft economies are in scope; K clamps them).
agree::AgreementSystem random_economy(std::mt19937_64& rng, std::size_t n,
                                      std::size_t extra) {
  agree::AgreementSystem sys(n);
  std::uniform_real_distribution<double> cap(5.0, 20.0);
  std::uniform_real_distribution<double> share(0.05, 0.3);
  for (std::size_t i = 0; i < n; ++i) sys.capacity[i] = cap(rng);
  for (std::size_t i = 1; i < n; ++i) {
    std::uniform_int_distribution<std::size_t> pick(0, i - 1);
    const std::size_t j = pick(rng);
    sys.relative(i, j) = share(rng);
    sys.relative(j, i) = share(rng);
  }
  std::uniform_int_distribution<std::size_t> node(0, n - 1);
  for (std::size_t e = 0; e < extra; ++e) {
    const std::size_t i = node(rng), j = node(rng);
    if (i == j || sys.relative(i, j) > 0.0) continue;
    sys.relative(i, j) = share(rng);
    sys.relative(j, i) = share(rng);
  }
  return sys;
}

/// The plan's global perturbation: max_i sum_k draw_k * coeff(k, i), with
/// the same coefficients the compact LP's theta rows use (retained on the
/// diagonal, clamped transitive share off it). This is the federated plan
/// priced in GLOBAL terms, comparable to the exact allocator's theta.
double global_theta(const agree::AgreementSystem& sys, const Matrix& shares,
                    const std::vector<double>& draw) {
  const std::size_t n = sys.size();
  double theta = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double drop = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      if (draw[k] == 0.0) continue;
      drop += draw[k] * (k == i ? sys.retained[k] : shares(k, i));
    }
    theta = std::max(theta, drop);
  }
  return theta;
}

bool bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

// ------------------------------------------------- federated partitioning ---

TEST(PartitionFederated, CutsSingleComponentUnderSizeCap) {
  std::mt19937_64 rng(7);
  const auto sys = random_economy(rng, 12, 12);
  PartitionOptions popts;
  popts.shards = 4;
  popts.federated = true;
  const Partition p = partition_participants(sys, popts);
  EXPECT_TRUE(p.federated);
  EXPECT_FALSE(p.replicated);
  EXPECT_EQ(p.components, 1u);
  EXPECT_EQ(p.shards, 4u);
  std::size_t total = 0;
  for (const auto& m : p.members) {
    EXPECT_TRUE(std::is_sorted(m.begin(), m.end()));
    EXPECT_LE(m.size(), 4u);  // ceil(12 * 1.25 / 4)
    total += m.size();
  }
  EXPECT_EQ(total, sys.size());
  // Every participant is owned by exactly the shard that lists it.
  for (std::size_t i = 0; i < sys.size(); ++i) {
    const auto& m = p.members[p.shard_of[i]];
    EXPECT_TRUE(std::binary_search(m.begin(), m.end(), i));
  }
  // The cut carries entitlements -> border edges exist for federation.
  EXPECT_FALSE(find_border_edges(sys, p).empty());
}

TEST(PartitionFederated, MultiComponentStillConnectivityExact) {
  // 4 components, 4 shards: connectivity is exact, federation must not cut.
  agree::AgreementSystem sys(8);
  for (std::size_t i = 0; i < 8; ++i) sys.capacity[i] = 10.0;
  for (std::size_t g = 0; g < 4; ++g) {
    sys.relative(2 * g, 2 * g + 1) = 0.2;
    sys.relative(2 * g + 1, 2 * g) = 0.2;
  }
  PartitionOptions popts;
  popts.shards = 4;
  popts.federated = true;
  const Partition p = partition_participants(sys, popts);
  EXPECT_FALSE(p.federated);
  EXPECT_FALSE(p.replicated);
  EXPECT_EQ(p.shards, 4u);
  EXPECT_TRUE(find_border_edges(sys, p).empty());
}

// ------------------------------------------------------- differential fuzz ---

TEST(EngineFederation, DifferentialFuzzAgainstExactGlobal) {
  std::mt19937_64 rng(20260808);
  const struct {
    std::size_t n, extra;
  } cases[] = {{8, 4}, {16, 8}, {24, 30}, {32, 16}, {48, 60}, {64, 32}};

  for (const auto& c : cases) {
    const agree::AgreementSystem sys = random_economy(rng, c.n, c.extra);

    alloc::AllocatorOptions aopts;
    aopts.transitive.max_level = 3;  // keep the dense-graph DFS bounded

    EngineOptions eopts;
    eopts.threads = 4;
    eopts.alloc = aopts;
    eopts.federation.enabled = true;
    eopts.federation.gap_probes = 8;
    EnforcementEngine eng(sys, eopts);
    ASSERT_TRUE(eng.federated()) << "n=" << c.n;
    EXPECT_FALSE(eng.replicated());

    alloc::Allocator exact(sys, aopts);
    const agree::CapacityReport rep = agree::compute_capacities(sys, aopts.transitive);

    std::uniform_int_distribution<std::size_t> who(0, c.n - 1);
    std::uniform_real_distribution<double> frac(0.02, 0.3);
    std::size_t grants = 0;
    for (int r = 0; r < 12; ++r) {
      const std::size_t a = who(rng);
      const double amount = frac(rng) * rep.capacity[a];
      const alloc::AllocationPlan fed = eng.consult(a, amount);
      const alloc::AllocationPlan ref = exact.allocate(a, amount);
      if (!fed.satisfied()) continue;
      ++grants;

      // Every grant is certified -- the shard-local Verifier ran.
      EXPECT_TRUE(fed.certified);

      // Globally feasible: draws sum to the request and each stays within
      // the drawer's GLOBAL entitlement to `a` (credit attribution never
      // exceeds the cut edge's entitlement, local draws never exceed the
      // induced subsystem's, which the global one dominates).
      double total = 0.0;
      for (std::size_t k = 0; k < c.n; ++k) {
        total += fed.draw[k];
        EXPECT_LE(fed.draw[k], rep.entitlement(k, a) + kTol * (1.0 + rep.entitlement(k, a)))
            << "n=" << c.n << " r=" << r << " k=" << k;
      }
      EXPECT_NEAR(total, amount, kTol * (1.0 + amount));

      // A federated grant implies an exact-global grant (the converse can
      // fail: federation is conservative).
      EXPECT_TRUE(ref.satisfied()) << "n=" << c.n << " r=" << r;

      // Optimality gap, priced globally: never better than the exact
      // optimum (sanity), never worse than the configured bound.
      const double theta_fed = global_theta(sys, rep.shares, fed.draw);
      EXPECT_GE(theta_fed, ref.theta - kTol * (1.0 + ref.theta));
      const double gap_rel =
          std::max(0.0, theta_fed - ref.theta) / std::max(ref.theta, 1.0);
      EXPECT_LE(gap_rel, kGapRelBound) << "n=" << c.n << " r=" << r;
    }
    EXPECT_GT(grants, 0u) << "fuzz case produced no grants, nothing was tested";

    // A settlement round measures the epoch's gap probes.
    eng.settle();
    const EngineStats st = eng.stats();
    EXPECT_TRUE(st.federated);
    EXPECT_FALSE(st.replicated);
    EXPECT_GT(st.federation.credits, 0u);
    EXPECT_GT(st.federation.settlements, 0u);
    EXPECT_GT(st.federation.gap_probes, 0u);
    EXPECT_TRUE(std::isfinite(st.federation.last_gap_rel));
    EXPECT_GE(st.federation.last_gap_rel, 0.0);
    EXPECT_LE(st.federation.max_gap_rel, kGapRelBound);
  }
}

TEST(EngineFederation, ApplyConservesTotalCapacityAndSpendsCredits) {
  std::mt19937_64 rng(99);
  const agree::AgreementSystem sys = random_economy(rng, 24, 20);
  EngineOptions eopts;
  eopts.threads = 4;
  eopts.alloc.transitive.max_level = 3;
  eopts.federation.enabled = true;
  EnforcementEngine eng(sys, eopts);
  ASSERT_TRUE(eng.federated());

  double granted_total = 0.0;
  for (std::size_t a = 0; a < sys.size(); ++a) {
    const double amount = 0.1 * eng.available_to(a);
    const double before = [&] {
      const auto snap = eng.snapshot();
      double s = 0.0;
      for (double v : snap->capacity) s += v;
      return s;
    }();
    const alloc::AllocationPlan plan = eng.consult(a, amount);
    if (!plan.satisfied()) continue;
    eng.apply(plan);
    granted_total += amount;
    const auto snap = eng.snapshot();
    double after = 0.0;
    for (double v : snap->capacity) after += v;
    // Conservation: applying a plan removes exactly the granted amount from
    // the global economy, no matter how much of it rode border credits.
    EXPECT_NEAR(before - after, amount, 1e-6 * (1.0 + amount));
  }
  ASSERT_GT(granted_total, 0.0);
  const EngineStats st = eng.stats();
  // Ledger lifecycle stays accounted: granted = consumed + revoked + live.
  EXPECT_NEAR(st.federation.granted,
              st.federation.consumed + st.federation.revoked + st.federation.outstanding,
              1e-6 * (1.0 + st.federation.granted));
}

// ------------------------------------------------ threads=1 bit-identity ---

TEST(EngineFederation, SingleThreadBitIdenticalToDirectPathFederationOnOrOff) {
  std::mt19937_64 rng(4242);
  const agree::AgreementSystem sys = random_economy(rng, 16, 10);
  alloc::AllocatorOptions aopts;
  aopts.transitive.max_level = 3;

  for (const bool fed_on : {false, true}) {
    alloc::Allocator direct(sys, aopts);
    EngineOptions eopts;
    eopts.threads = 1;
    eopts.alloc = aopts;
    eopts.federation.enabled = fed_on;
    EnforcementEngine eng(sys, eopts);
    // One shard: no cut edges, federation must be perfectly inert.
    EXPECT_FALSE(eng.federated());
    EXPECT_EQ(eng.num_shards(), 1u);

    std::mt19937_64 seq(fed_on ? 1u : 1u);  // same sequence for both modes
    std::uniform_int_distribution<std::size_t> who(0, sys.size() - 1);
    std::uniform_real_distribution<double> frac(0.05, 0.4);
    for (int r = 0; r < 10; ++r) {
      const std::size_t a = who(seq);
      const double amount = frac(seq) * direct.available_to(a);
      const alloc::AllocationPlan ep = eng.consult(a, amount);
      const alloc::AllocationPlan dp = direct.allocate(a, amount);
      EXPECT_EQ(ep.status, dp.status);
      EXPECT_TRUE(bitwise_equal(ep.draw, dp.draw));
      EXPECT_EQ(ep.theta, dp.theta);
      EXPECT_TRUE(bitwise_equal(ep.capacity_before, dp.capacity_before));
      EXPECT_TRUE(bitwise_equal(ep.capacity_after, dp.capacity_after));
      EXPECT_EQ(ep.lp_iterations, dp.lp_iterations);
      EXPECT_EQ(ep.certified, dp.certified);
      EXPECT_TRUE(ep.borrowed.empty());
      if (ep.satisfied()) {
        eng.apply(ep);
        direct.apply(dp);
      }
    }
  }
}

}  // namespace
}  // namespace agora::engine
