// Figure-regression tests: the paper's qualitative claims, checked through
// the fluid planner (which runs the full-day scenario in ~100 ms, unlike
// the discrete simulator). These guard the reproduction itself: if a change
// to the allocator or the agreement algebra broke a figure, one of these
// fails long before anyone re-runs the bench harness.
#include <gtest/gtest.h>

#include "agree/topology.h"
#include "fluid/planner.h"
#include "trace/generator.h"

namespace agora::fluid {
namespace {

constexpr std::size_t kProxies = 10;
constexpr std::size_t kSlotsPerHour = 6;

std::vector<std::vector<double>> diurnal_demand(double gap_hours) {
  const trace::DiurnalProfile profile = trace::DiurnalProfile::berkeley_like();
  trace::GeneratorConfig gc;
  gc.peak_rate = 9.5;
  const double mean_demand = 0.1 + 1e-6 * trace::expected_response_bytes(gc);
  std::vector<double> weights(profile.slots());
  for (std::size_t s = 0; s < profile.slots(); ++s) weights[s] = profile.slot_weight(s);
  std::vector<std::vector<double>> demand;
  for (std::size_t p = 0; p < kProxies; ++p)
    demand.push_back(expected_demand_per_slot(
        gc.peak_rate, mean_demand, weights, 600.0,
        static_cast<std::size_t>(gap_hours * kSlotsPerHour * static_cast<double>(p) + 0.5)));
  return demand;
}

double peak_with(const Matrix& agreements, double gap_hours, std::size_t level = 0) {
  FluidConfig cfg;
  cfg.power.assign(kProxies, 1.0);
  cfg.agreements = agreements;
  if (level > 0) cfg.alloc_opts.transitive.max_level = level;
  return plan(cfg, diurnal_demand(gap_hours)).peak_wait();
}

TEST(FluidFigures, Fig5NoSharingPeaksInHundredsOfSeconds) {
  const double peak = peak_with(Matrix(), 1.0);
  EXPECT_GT(peak, 100.0);
  EXPECT_LT(peak, 1500.0);
}

TEST(FluidFigures, Fig6SharingCollapsesWaitsWithSkew) {
  const Matrix s = agree::complete_graph(kProxies, 0.10);
  const double none = peak_with(Matrix(), 1.0);
  const double gap0 = peak_with(s, 0.0);
  const double gap1h = peak_with(s, 1.0);
  // With zero skew everyone peaks together: sharing cannot help much.
  EXPECT_GT(gap0, none * 0.5);
  // With one-hour skew the peak wait collapses by >10x.
  EXPECT_LT(gap1h, none / 10.0);
}

TEST(FluidFigures, Fig8TransitivityAddsLittleOnCompleteGraph) {
  const Matrix s = agree::complete_graph(kProxies, 0.10);
  const double level1 = peak_with(s, 1.0, 1);
  const double full = peak_with(s, 1.0, 0);
  // Direct agreements already reach everyone; additional levels must not
  // change the picture by more than ~2x.
  EXPECT_LT(full, level1 * 1.0 + 1e-9);  // more reach can only help
  EXPECT_GT(full, level1 * 0.3);
}

TEST(FluidFigures, Fig9to11LoopOrderingAtLevelOne) {
  const double skip1 = peak_with(agree::ring(kProxies, 0.8, 1), 1.0, 1);
  const double skip3 = peak_with(agree::ring(kProxies, 0.8, 3), 1.0, 1);
  const double skip7 = peak_with(agree::ring(kProxies, 0.8, 7), 1.0, 1);
  // A donor in an adjacent time zone is nearly as busy as the origin:
  // skip=1 must be far worse than the offset loops. (The fluid model is
  // conservative about skip=7, where 7 of the 10 proxies have a donor at
  // effective offset -3h and relief flows via the relay effect the fluid
  // recursion only partially captures -- the discrete simulator, and the
  // paper, have skip7 slightly better than skip3; see EXPERIMENTS.md.)
  EXPECT_GT(skip1, skip3 * 5.0);
  EXPECT_GT(skip1, skip7 * 2.0);
}

TEST(FluidFigures, Fig9TransitivityRescuesTheTightLoop) {
  const Matrix ring1 = agree::ring(kProxies, 0.8, 1);
  const double level1 = peak_with(ring1, 1.0, 1);
  const double level3 = peak_with(ring1, 1.0, 3);
  EXPECT_LT(level3, level1 / 3.0);
}

TEST(FluidFigures, Fig12OverheadHasModestImpact) {
  FluidConfig cfg;
  cfg.power.assign(kProxies, 1.0);
  cfg.agreements = agree::complete_graph(kProxies, 0.10);
  const auto demand = diurnal_demand(1.0);
  const double base = plan(cfg, demand).peak_wait();
  cfg.overhead_fraction = 2.0;  // ~cost 0.2s / mean demand 0.11s
  const double costly = plan(cfg, demand).peak_wait();
  EXPECT_GE(costly + 1e-9, base);
  const double none = peak_with(Matrix(), 1.0);
  EXPECT_LT(costly, none / 4.0);  // still far better than no sharing
}

TEST(FluidFigures, Fig7SharingWorthACapacityIncrement) {
  // Sharing at 1.0x capacity must beat no-sharing at 1.05x capacity.
  const double shared = peak_with(agree::complete_graph(kProxies, 0.10), 1.0);
  FluidConfig cfg;
  cfg.power.assign(kProxies, 1.05);
  const double bigger = plan(cfg, diurnal_demand(1.0)).peak_wait();
  EXPECT_LT(shared, bigger);
}

}  // namespace
}  // namespace agora::fluid
