// Unit tests for the LP substrate: standard-form conversion, both simplex
// implementations on known problems, presolve, and the model builder.
#include <gtest/gtest.h>

#include <cmath>

#include "lp/brute_force.h"
#include "lp/certify.h"
#include "lp/model_builder.h"
#include "lp/presolve.h"
#include "lp/problem.h"
#include "lp/solve.h"
#include "lp/standard_form.h"

namespace agora::lp {
namespace {

// ---------------------------------------------------------------- Problem ---

TEST(Problem, VariableAndConstraintBookkeeping) {
  Problem p;
  const auto x = p.add_variable("x", 0, 10, 1.0);
  const auto y = p.add_variable("y", -5, kInfinity, 2.0);
  EXPECT_EQ(p.num_variables(), 2u);
  EXPECT_DOUBLE_EQ(p.objective_coeff(x), 1.0);
  EXPECT_DOUBLE_EQ(p.lower_bound(y), -5.0);
  p.add_constraint({1.0, 1.0}, Relation::LessEqual, 4.0, "cap");
  EXPECT_EQ(p.num_constraints(), 1u);
  EXPECT_EQ(p.constraint(0).name, "cap");
}

TEST(Problem, ConstraintsPadWhenVariablesAdded) {
  Problem p;
  p.add_variable("x");
  p.add_constraint({1.0}, Relation::LessEqual, 1.0);
  p.add_variable("y");
  EXPECT_EQ(p.constraint(0).coeffs.size(), 2u);
  EXPECT_DOUBLE_EQ(p.constraint(0).coeffs[1], 0.0);
}

TEST(Problem, InvertedBoundsThrow) {
  Problem p;
  EXPECT_THROW(p.add_variable("x", 2.0, 1.0), PreconditionError);
}

TEST(Problem, SparseConstraintAccumulatesDuplicates) {
  Problem p;
  const auto x = p.add_variable("x");
  p.add_constraint_sparse({{x, 1.0}, {x, 2.0}}, Relation::Equal, 3.0);
  EXPECT_DOUBLE_EQ(p.constraint(0).coeffs[x], 3.0);
}

TEST(Problem, MaxViolation) {
  Problem p;
  p.add_variable("x", 0, 1);
  p.add_constraint({1.0}, Relation::LessEqual, 0.5);
  EXPECT_DOUBLE_EQ(p.max_violation({0.75}), 0.25);
  EXPECT_DOUBLE_EQ(p.max_violation({0.25}), 0.0);
}

// ---------------------------------------------------------- StandardForm ---

TEST(StandardForm, ShiftedVariableRoundTrip) {
  Problem p;
  p.add_variable("x", 2.0, 5.0, 1.0);
  StandardForm sf = build_standard_form(p);
  // One bound row (x <= 5 becomes y <= 3), one structural column + slack.
  EXPECT_EQ(sf.rows(), 1u);
  const auto x = recover_solution(sf, {1.5, 0.0}, 1);
  EXPECT_DOUBLE_EQ(x[0], 3.5);
}

TEST(StandardForm, MirroredVariable) {
  Problem p;
  p.add_variable("x", -kInfinity, 4.0, 1.0);
  StandardForm sf = build_standard_form(p);
  const auto x = recover_solution(sf, {1.0}, 1);
  EXPECT_DOUBLE_EQ(x[0], 3.0);
}

TEST(StandardForm, FreeVariableSplit) {
  Problem p;
  p.add_variable("x", -kInfinity, kInfinity, 1.0);
  StandardForm sf = build_standard_form(p);
  EXPECT_EQ(sf.num_structural, 2u);
  const auto x = recover_solution(sf, {1.0, 4.0}, 1);
  EXPECT_DOUBLE_EQ(x[0], -3.0);
}

TEST(StandardForm, NegativeRhsNormalized) {
  Problem p;
  p.add_variable("x", 0.0, kInfinity, 1.0);
  p.add_constraint({-1.0}, Relation::LessEqual, -2.0);  // -x <= -2  <=>  x >= 2
  StandardForm sf = build_standard_form(p);
  for (double b : sf.b) EXPECT_GE(b, 0.0);
  EXPECT_TRUE(sf.has_artificials());  // the >= row needs one
}

TEST(StandardForm, MaximizeFlipsSign) {
  Problem p(Sense::Maximize);
  p.add_variable("x", 0.0, kInfinity, 3.0);
  StandardForm sf = build_standard_form(p);
  EXPECT_DOUBLE_EQ(sf.obj_scale, -1.0);
  EXPECT_DOUBLE_EQ(sf.c[0], -3.0);
}

// ----------------------------------------- repatch_standard_form_rhs ------

// The allocator's per-consult patch is set_rhs plus value-only set_bounds;
// these pin that the O(rows) repatch produces exactly the standard form a
// full rebuild would, and that anything structural refuses the fast path.

/// Two vars with finite ranges (bound rows) + one constraint; the shape the
/// AllocationModelCache patch loop exercises.
Problem repatchable_lp() {
  Problem p;
  p.add_variable("x", 0.0, 4.0, -1.0);
  p.add_variable("y", 1.0, 6.0, -2.0);
  p.add_constraint({1.0, 1.0}, Relation::LessEqual, 5.0);
  p.add_constraint({1.0, -1.0}, Relation::Equal, 2.0);
  return p;
}

TEST(StandardFormRepatch, RhsOnlyMatchesRebuild) {
  Problem p = repatchable_lp();
  StandardForm sf = build_standard_form(p);
  const double fp = sf.fingerprint;
  p.set_rhs(0, 7.5);
  p.set_rhs(1, 3.25);
  ASSERT_TRUE(repatch_standard_form_rhs(p, sf));
  EXPECT_DOUBLE_EQ(sf.fingerprint, fp);
  const StandardForm fresh = build_standard_form(p);
  ASSERT_EQ(sf.b.size(), fresh.b.size());
  for (std::size_t i = 0; i < sf.b.size(); ++i) EXPECT_DOUBLE_EQ(sf.b[i], fresh.b[i]);
}

TEST(StandardFormRepatch, ValueOnlyBoundMoveMatchesRebuild) {
  Problem p = repatchable_lp();
  StandardForm sf = build_standard_form(p);
  const std::uint64_t rev = p.structural_revision();
  // Finite upper bounds move, lower bounds stay: rhs-only by contract.
  p.set_bounds(0, 0.0, 3.5);
  p.set_bounds(1, 1.0, 9.0);
  EXPECT_EQ(p.structural_revision(), rev);
  ASSERT_TRUE(repatch_standard_form_rhs(p, sf));
  const StandardForm fresh = build_standard_form(p);
  ASSERT_EQ(sf.b.size(), fresh.b.size());
  for (std::size_t i = 0; i < sf.b.size(); ++i) EXPECT_DOUBLE_EQ(sf.b[i], fresh.b[i]);
  // And the patched form still solves to the rebuilt problem's optimum.
  const SolveResult a = solve(p, SolveOptions{});
  EXPECT_EQ(a.status, Status::Optimal);
}

TEST(StandardFormRepatch, RefusesWhenTransformedRhsFlipsSign) {
  Problem p = repatchable_lp();
  StandardForm sf = build_standard_form(p);
  // Equality row rhs 2 -> -3 flips the transformed rhs negative: the row
  // would need renegating (A changes), so the fast path must refuse.
  p.set_rhs(1, -3.0);
  EXPECT_FALSE(repatch_standard_form_rhs(p, sf));
  rebuild_standard_form(p, sf);  // caller contract: rebuild after refusal
  const StandardForm fresh = build_standard_form(p);
  for (std::size_t i = 0; i < sf.b.size(); ++i) EXPECT_DOUBLE_EQ(sf.b[i], fresh.b[i]);
}

TEST(StandardFormRepatch, RefusesStructuralMutations) {
  // Lower-bound move: shift offset feeds c0 and the transformed rhs.
  {
    Problem p = repatchable_lp();
    StandardForm sf = build_standard_form(p);
    const std::uint64_t rev = p.structural_revision();
    p.set_bounds(0, 0.5, 4.0);
    EXPECT_GT(p.structural_revision(), rev);
    EXPECT_FALSE(repatch_standard_form_rhs(p, sf));
  }
  // Finiteness change: dropping the upper bound deletes the bound row.
  {
    Problem p = repatchable_lp();
    StandardForm sf = build_standard_form(p);
    const std::uint64_t rev = p.structural_revision();
    p.set_bounds(0, 0.0, kInfinity);
    EXPECT_GT(p.structural_revision(), rev);
    EXPECT_FALSE(repatch_standard_form_rhs(p, sf));
  }
  // A copy has a fresh instance id; its cached form never patches.
  {
    Problem p = repatchable_lp();
    StandardForm sf = build_standard_form(p);
    const Problem q = p;
    EXPECT_FALSE(repatch_standard_form_rhs(q, sf));
  }
}

// ------------------------------------------------- solvers on known LPs ---

/// Classic production-planning LP with a known optimum.
Problem classic_lp() {
  // max 3x + 5y  s.t. x <= 4; 2y <= 12; 3x + 2y <= 18; x,y >= 0.
  // Optimum: x=2, y=6, obj=36 (Dantzig's textbook example).
  Problem p(Sense::Maximize);
  p.add_variable("x", 0, kInfinity, 3.0);
  p.add_variable("y", 0, kInfinity, 5.0);
  p.add_constraint({1, 0}, Relation::LessEqual, 4);
  p.add_constraint({0, 2}, Relation::LessEqual, 12);
  p.add_constraint({3, 2}, Relation::LessEqual, 18);
  return p;
}

// Backend/basis configurations exercised by the typed suite below. Every
// known-LP test runs against the tableau solver, the revised solver with the
// dense explicit inverse, and the revised solver with the sparse LU basis.
struct TableauConfig {
  static SolveOptions options() {
    SolveOptions o;
    o.backend = Backend::Tableau;
    return o;
  }
};
struct RevisedDenseConfig {
  static SolveOptions options() {
    SolveOptions o;
    o.backend = Backend::Revised;
    o.basis = BasisRep::DenseInverse;
    return o;
  }
};
struct RevisedSparseConfig {
  static SolveOptions options() {
    SolveOptions o;
    o.backend = Backend::Revised;
    o.basis = BasisRep::SparseLu;
    return o;
  }
};

template <typename Config>
class SolverTest : public ::testing::Test {
 public:
  struct {
    SolveResult solve(const Problem& p) const { return lp::solve(p, Config::options()); }
  } solver;
};

using SolverTypes =
    ::testing::Types<TableauConfig, RevisedDenseConfig, RevisedSparseConfig>;
TYPED_TEST_SUITE(SolverTest, SolverTypes);

TYPED_TEST(SolverTest, ClassicMaximization) {
  const SolveResult r = this->solver.solve(classic_lp());
  ASSERT_EQ(r.status, Status::Optimal);
  EXPECT_NEAR(r.objective, 36.0, 1e-7);
  EXPECT_NEAR(r.x[0], 2.0, 1e-7);
  EXPECT_NEAR(r.x[1], 6.0, 1e-7);
}

TYPED_TEST(SolverTest, EqualityConstraints) {
  // min x + y  s.t. x + y = 5, x - y = 1  ->  x=3, y=2, obj=5.
  Problem p;
  p.add_variable("x", 0, kInfinity, 1.0);
  p.add_variable("y", 0, kInfinity, 1.0);
  p.add_constraint({1, 1}, Relation::Equal, 5);
  p.add_constraint({1, -1}, Relation::Equal, 1);
  const SolveResult r = this->solver.solve(p);
  ASSERT_EQ(r.status, Status::Optimal);
  EXPECT_NEAR(r.objective, 5.0, 1e-7);
  EXPECT_NEAR(r.x[0], 3.0, 1e-7);
  EXPECT_NEAR(r.x[1], 2.0, 1e-7);
}

TYPED_TEST(SolverTest, DetectsInfeasible) {
  Problem p;
  p.add_variable("x", 0, 1, 1.0);
  p.add_constraint({1}, Relation::GreaterEqual, 2.0);
  EXPECT_EQ(this->solver.solve(p).status, Status::Infeasible);
}

TYPED_TEST(SolverTest, DetectsUnbounded) {
  Problem p(Sense::Maximize);
  p.add_variable("x", 0, kInfinity, 1.0);
  p.add_constraint({-1}, Relation::LessEqual, 0.0);  // vacuous
  EXPECT_EQ(this->solver.solve(p).status, Status::Unbounded);
}

TYPED_TEST(SolverTest, RespectsVariableBounds) {
  Problem p(Sense::Maximize);
  p.add_variable("x", 1.0, 3.0, 1.0);
  const SolveResult r = this->solver.solve(p);
  ASSERT_EQ(r.status, Status::Optimal);
  EXPECT_NEAR(r.x[0], 3.0, 1e-8);
}

TYPED_TEST(SolverTest, NegativeLowerBounds) {
  // min x s.t. x >= -4 -> x = -4.
  Problem p;
  p.add_variable("x", -4.0, kInfinity, 1.0);
  const SolveResult r = this->solver.solve(p);
  ASSERT_EQ(r.status, Status::Optimal);
  EXPECT_NEAR(r.x[0], -4.0, 1e-8);
}

TYPED_TEST(SolverTest, FreeVariable) {
  // min |free var shape|: min y s.t. y >= x - 2, y >= -x + 2, x free, y >= 0.
  // Optimum y = 0 at x = 2.
  Problem p;
  const auto x = p.add_variable("x", -kInfinity, kInfinity, 0.0);
  const auto y = p.add_variable("y", 0.0, kInfinity, 1.0);
  p.add_constraint_sparse({{y, 1.0}, {x, -1.0}}, Relation::GreaterEqual, -2.0);
  p.add_constraint_sparse({{y, 1.0}, {x, 1.0}}, Relation::GreaterEqual, 2.0);
  const SolveResult r = this->solver.solve(p);
  ASSERT_EQ(r.status, Status::Optimal);
  EXPECT_NEAR(r.objective, 0.0, 1e-7);
  EXPECT_NEAR(r.x[0], 2.0, 1e-6);
}

TYPED_TEST(SolverTest, DegenerateLpTerminates) {
  // Beale's cycling example (classic): cycles under naive Dantzig rule
  // without anti-cycling. min -0.75x4 + 150x5 - 0.02x6 + 6x7 ...
  Problem p;
  p.add_variable("x4", 0, kInfinity, -0.75);
  p.add_variable("x5", 0, kInfinity, 150.0);
  p.add_variable("x6", 0, kInfinity, -0.02);
  p.add_variable("x7", 0, kInfinity, 6.0);
  p.add_constraint({0.25, -60.0, -0.04, 9.0}, Relation::LessEqual, 0.0);
  p.add_constraint({0.5, -90.0, -0.02, 3.0}, Relation::LessEqual, 0.0);
  p.add_constraint({0.0, 0.0, 1.0, 0.0}, Relation::LessEqual, 1.0);
  const SolveResult r = this->solver.solve(p);
  ASSERT_EQ(r.status, Status::Optimal);
  EXPECT_NEAR(r.objective, -0.05, 1e-7);
}

TYPED_TEST(SolverTest, EmptyProblem) {
  Problem p;
  const SolveResult r = this->solver.solve(p);
  EXPECT_EQ(r.status, Status::Optimal);
  EXPECT_DOUBLE_EQ(r.objective, 0.0);
}

TYPED_TEST(SolverTest, RedundantEqualities) {
  // x + y = 2 stated twice: redundant rows must not break phase 1 cleanup.
  Problem p;
  p.add_variable("x", 0, kInfinity, 1.0);
  p.add_variable("y", 0, kInfinity, 2.0);
  p.add_constraint({1, 1}, Relation::Equal, 2);
  p.add_constraint({1, 1}, Relation::Equal, 2);
  const SolveResult r = this->solver.solve(p);
  ASSERT_EQ(r.status, Status::Optimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-7);  // all weight on x
  EXPECT_NEAR(r.x[0], 2.0, 1e-7);
}

TYPED_TEST(SolverTest, SolutionSatisfiesConstraints) {
  const Problem p = classic_lp();
  const SolveResult r = this->solver.solve(p);
  ASSERT_EQ(r.status, Status::Optimal);
  EXPECT_LE(p.max_violation(r.x), 1e-7);
}

// ------------------------------------------------------------ BruteForce ---

TEST(BruteForce, MatchesSimplexOnClassic) {
  const Problem p = classic_lp();
  const SolveResult bf = brute_force_solve(p);
  const SolveResult sx = lp::solve(p, TableauConfig::options());
  ASSERT_EQ(bf.status, Status::Optimal);
  EXPECT_NEAR(bf.objective, sx.objective, 1e-7);
}

TEST(BruteForce, DetectsInfeasible) {
  Problem p;
  p.add_variable("x", 0, 1, 1.0);
  p.add_constraint({1}, Relation::GreaterEqual, 2.0);
  EXPECT_EQ(brute_force_solve(p).status, Status::Infeasible);
}

TEST(BruteForce, RefusesHugeProblems) {
  Problem p;
  for (int i = 0; i < 40; ++i) p.add_variable("x" + std::to_string(i), 0, 1, 1.0);
  for (int i = 0; i < 20; ++i) {
    std::vector<double> c(40, 1.0);
    p.add_constraint(std::move(c), Relation::LessEqual, 10.0);
  }
  EXPECT_THROW(brute_force_solve(p), PreconditionError);
}

// -------------------------------------------------------------- Presolve ---

TEST(Presolve, SubstitutesFixedVariables) {
  // The Equal row keeps dual fixing out of the picture, so substitution is
  // the only reduction that fires: x = 3 folds into the rhs and the row
  // survives with the remaining two variables.
  Problem p;
  p.add_variable("x", 3.0, 3.0, 1.0);  // fixed
  p.add_variable("y", 0.0, kInfinity, 1.0);
  p.add_variable("z", 0.0, kInfinity, 1.0);
  p.add_constraint({1.0, 1.0, 1.0}, Relation::Equal, 10.0);
  const PresolveOutcome out = presolve(p);
  ASSERT_FALSE(out.decided.has_value());
  EXPECT_EQ(out.reduced.num_variables(), 2u);
  EXPECT_EQ(out.reduced.num_constraints(), 1u);
  EXPECT_DOUBLE_EQ(out.reduced.constraint(0).rhs, 7.0);
  const auto x = out.postsolve({5.0, 2.0});
  EXPECT_DOUBLE_EQ(x[0], 3.0);
  EXPECT_DOUBLE_EQ(x[1], 5.0);
  EXPECT_DOUBLE_EQ(x[2], 2.0);
}

TEST(Presolve, FoldsSingletonRows) {
  Problem p;
  p.add_variable("x", 0.0, kInfinity, 1.0);
  p.add_variable("y", 0.0, kInfinity, 1.0);
  p.add_constraint({2.0, 0.0}, Relation::LessEqual, 6.0);  // x <= 3
  p.add_constraint({1.0, 1.0}, Relation::Equal, 2.0);      // blocks dual fixing
  const PresolveOutcome out = presolve(p);
  ASSERT_FALSE(out.decided.has_value());
  EXPECT_EQ(out.reduced.num_constraints(), 1u);
  EXPECT_DOUBLE_EQ(out.reduced.upper_bound(0), 3.0);
}

TEST(Presolve, DualFixingDecidesCostDominatedProblems) {
  // min x + y over x + y <= 10: both columns are down-safe with positive
  // reduced cost, so dual fixing pins them at their lower bounds and the
  // whole problem is decided without a simplex iteration.
  Problem p;
  p.add_variable("x", 0.0, kInfinity, 1.0);
  p.add_variable("y", 0.0, kInfinity, 1.0);
  p.add_constraint({1.0, 1.0}, Relation::LessEqual, 10.0);
  const PresolveOutcome out = presolve(p);
  ASSERT_TRUE(out.decided.has_value());
  EXPECT_EQ(out.decided->status, Status::Optimal);
  EXPECT_DOUBLE_EQ(out.decided->objective, 0.0);
  Verifier v;
  EXPECT_TRUE(v.certify(p, *out.decided).certified);
}

TEST(Presolve, DetectsTrivialInfeasibility) {
  Problem p;
  p.add_variable("x", 0.0, 1.0, 1.0);
  p.add_constraint({1.0}, Relation::GreaterEqual, 5.0);  // x >= 5 vs x <= 1
  const PresolveOutcome out = presolve(p);
  ASSERT_TRUE(out.decided.has_value());
  EXPECT_EQ(out.decided->status, Status::Infeasible);
}

TEST(Presolve, DecidesFullyFixedProblems) {
  Problem p;
  p.add_variable("x", 2.0, 2.0, 3.0);
  const PresolveOutcome out = presolve(p);
  ASSERT_TRUE(out.decided.has_value());
  EXPECT_EQ(out.decided->status, Status::Optimal);
  EXPECT_DOUBLE_EQ(out.decided->objective, 6.0);
}

TEST(Presolve, SolveWithPresolveMatchesDirect) {
  const Problem p = classic_lp();
  SolveOptions direct_opts;
  direct_opts.backend = Backend::Tableau;
  direct_opts.presolve = false;
  const SolveResult direct = lp::solve(p, direct_opts);
  SolveOptions via_opts = direct_opts;
  via_opts.presolve = true;
  const SolveResult via = lp::solve(p, via_opts);
  ASSERT_EQ(via.status, Status::Optimal);
  EXPECT_NEAR(via.objective, direct.objective, 1e-7);
}

TEST(Presolve, PostsolveReconstructsDuals) {
  // x <= 3 singleton row is folded away; postsolve must reconstruct its dual
  // so the reduced answer still certifies against the original problem.
  Problem p(Sense::Maximize);
  p.add_variable("x", 0, kInfinity, 2.0);
  p.add_variable("y", 0, kInfinity, 1.0);
  p.add_constraint({1.0, 0.0}, Relation::LessEqual, 3.0);  // singleton
  p.add_constraint({1.0, 1.0}, Relation::LessEqual, 5.0);
  SolveOptions opts;
  opts.presolve = true;
  const SolveResult r = lp::solve(p, opts);
  ASSERT_EQ(r.status, Status::Optimal);
  EXPECT_NEAR(r.objective, 8.0, 1e-7);  // x=3, y=2
  ASSERT_EQ(r.duals.size(), 2u);
  Verifier v;
  const Certificate cert = v.certify(p, r);
  EXPECT_TRUE(cert.certified) << cert.reject;
  EXPECT_FALSE(cert.primal_only);
}

// ---------------------------------------------------------- ModelBuilder ---

TEST(ModelBuilder, BuildsClassicLp) {
  ModelBuilder mb(Sense::Maximize);
  const Var x = mb.add_var("x");
  const Var y = mb.add_var("y");
  mb.add(LinExpr(x) <= 4.0);
  mb.add(2.0 * y <= 12.0);
  mb.add(3.0 * x + 2.0 * y <= 18.0);
  mb.maximize(3.0 * x + 5.0 * y);
  const SolveResult r = lp::solve(mb.problem());
  ASSERT_EQ(r.status, Status::Optimal);
  EXPECT_NEAR(r.objective, 36.0, 1e-7);
}

TEST(ModelBuilder, SumAndEquality) {
  ModelBuilder mb;
  const auto xs = mb.add_vars("x", 3);
  mb.add(sum(xs) == 6.0);
  mb.minimize(1.0 * xs[0] + 2.0 * xs[1] + 3.0 * xs[2]);
  const SolveResult r = lp::solve(mb.problem());
  ASSERT_EQ(r.status, Status::Optimal);
  EXPECT_NEAR(r.objective, 6.0, 1e-7);  // all weight on x0
  EXPECT_NEAR(r.x[0], 6.0, 1e-7);
}

TEST(ModelBuilder, ExpressionAlgebra) {
  ModelBuilder mb;
  const Var x = mb.add_var("x");
  LinExpr e = 2.0 * x + 3.0;
  e += 1.0 * x;
  e *= 2.0;
  // e = 6x + 6; constraint e >= 12 means x >= 1.
  mb.add(e >= 12.0);
  mb.minimize(LinExpr(x));
  const SolveResult r = lp::solve(mb.problem());
  ASSERT_EQ(r.status, Status::Optimal);
  EXPECT_NEAR(r.x[0], 1.0, 1e-7);
}

TEST(ModelBuilder, GreaterEqualFoldsConstants) {
  ModelBuilder mb;
  const Var x = mb.add_var("x");
  mb.add(1.0 * x - 5.0 >= 0.0);  // x >= 5
  mb.minimize(LinExpr(x));
  const SolveResult r = lp::solve(mb.problem());
  ASSERT_EQ(r.status, Status::Optimal);
  EXPECT_NEAR(r.x[0], 5.0, 1e-7);
}

}  // namespace
}  // namespace agora::lp
