// Chaos tests for the hardened GRM/LRM protocol on an unreliable bus:
// deterministic fault injection (drops, duplicates, jitter, partitions,
// crash/restart windows), exactly-once request resolution under retries,
// staleness-TTL degradation, crash-recovery resync, local-only admission,
// and byte-identical replay for a fixed fault seed.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "agree/matrices.h"
#include "rms/bus.h"
#include "rms/client.h"
#include "rms/grm.h"
#include "rms/lrm.h"
#include "util/error.h"
#include "util/rng.h"

namespace agora::rms {
namespace {

std::vector<agree::AgreementSystem> two_site_systems(double cap0 = 2.0, double cap1 = 10.0,
                                                     double share10 = 0.5) {
  agree::AgreementSystem cpu(2);
  cpu.capacity = {cap0, cap1};
  cpu.relative(1, 0) = share10;
  return {cpu};
}

// ------------------------------------------------------------- fault plan ---

TEST(FaultPlan, DefaultPlanIsInert) {
  FaultPlan plan;
  EXPECT_FALSE(plan.active());
  plan.validate();  // must not throw
}

TEST(FaultPlan, ValidatesProbabilities) {
  FaultPlan plan;
  plan.default_link.drop = 1.5;
  EXPECT_THROW(plan.validate(), PreconditionError);
  MessageBus bus;
  EXPECT_THROW(bus.set_fault_plan(plan), PreconditionError);
}

TEST(FaultPlan, PartitionSeversOnlyAcrossTheCut) {
  FaultPlan plan;
  plan.partitions.push_back(Partition{1.0, 2.0, {0, 1}});
  EXPECT_TRUE(plan.severed(0, 2, 1.5));
  EXPECT_FALSE(plan.severed(0, 1, 1.5));  // same side
  EXPECT_FALSE(plan.severed(0, 2, 2.5));  // window over
  EXPECT_TRUE(plan.active());
}

// -------------------------------------------------------------------- bus ---

TEST(FaultBus, QuiesceStatsCountDropsAndDuplicates) {
  MessageBus bus;
  int received = 0;
  const EndpointId a = bus.add_endpoint([&](const Envelope&) { ++received; });
  const EndpointId b = bus.add_endpoint([&](const Envelope&) { ++received; });
  FaultPlan plan;
  plan.per_link[{a, b}] = LinkFaults{/*drop=*/1.0, 0.0, 0.0};
  bus.set_fault_plan(plan);
  for (int i = 0; i < 3; ++i) bus.post(a, b, ReleaseNotice{1});
  bus.post(a, a, ReleaseNotice{2});  // self-message: bypasses link faults
  const QuiesceStats q = bus.run_until_idle();
  EXPECT_EQ(q.delivered, 1u);
  EXPECT_EQ(q.dropped, 3u);
  EXPECT_EQ(q.duplicated, 0u);
  EXPECT_EQ(received, 1);
  EXPECT_EQ(bus.dropped(), 3u);

  FaultPlan dup;
  dup.per_link[{a, b}] = LinkFaults{0.0, /*duplicate=*/1.0, 0.0};
  bus.set_fault_plan(dup);
  bus.post(a, b, ReleaseNotice{3});
  const QuiesceStats q2 = bus.run_until_idle();
  EXPECT_EQ(q2.delivered, 2u);  // original + duplicate
  EXPECT_EQ(q2.dropped, 0u);
  EXPECT_EQ(q2.duplicated, 1u);
}

TEST(FaultBus, NonQuiesceErrorIncludesDepthAndTime) {
  MessageBus bus;
  EndpointId a = 0;
  a = bus.add_endpoint([&](const Envelope&) { bus.post(a, a, ReleaseNotice{0}, 1.0); });
  bus.post(a, a, ReleaseNotice{0}, 0.0);
  try {
    bus.run_until_idle(50);
    FAIL() << "expected InternalError";
  } catch (const InternalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("queue depth"), std::string::npos) << what;
    EXPECT_NE(what.find("sim time"), std::string::npos) << what;
    EXPECT_NE(what.find("dropped"), std::string::npos) << what;
  }
}

TEST(FaultBus, CrashWindowLosesTrafficThenFiresRestartHandler) {
  MessageBus bus;
  int received = 0;
  int restarts = 0;
  const EndpointId a = bus.add_endpoint([&](const Envelope&) {});
  const EndpointId b = bus.add_endpoint([&](const Envelope&) { ++received; });
  bus.set_restart_handler(b, [&] { ++restarts; });
  FaultPlan plan;
  plan.crashes.push_back(CrashWindow{b, 1.0, 5.0});
  bus.set_fault_plan(plan);
  bus.post(a, b, ReleaseNotice{1}, 0.5);  // delivered before the crash
  bus.post(a, b, ReleaseNotice{2}, 2.0);  // lost inside the window
  bus.post(a, b, ReleaseNotice{3}, 6.0);  // delivered after restart
  bus.run_until_idle();
  EXPECT_EQ(received, 2);
  EXPECT_EQ(restarts, 1);
  EXPECT_EQ(bus.lost_to_crash(), 1u);
  EXPECT_GE(bus.now(), 6.0);
}

// ------------------------------------------------- zero-cost default path ---

struct Transcript {
  std::string text;
  std::uint64_t delivered = 0;
  double now = 0.0;
};

/// Run a fixed two-site scenario and serialize everything observable.
Transcript run_two_site_scenario(bool attach_inert_plan) {
  MessageBus bus;
  if (attach_inert_plan) bus.set_fault_plan(FaultPlan{});
  Grm grm(bus, two_site_systems());
  Lrm lrm0(bus, {2.0}), lrm1(bus, {10.0});
  grm.register_lrm(0, lrm0.endpoint());
  grm.register_lrm(1, lrm1.endpoint());
  lrm0.attach(grm.endpoint(), 0);
  lrm1.attach(grm.endpoint(), 1);
  std::vector<AllocationReply> replies;
  const EndpointId client = bus.add_endpoint([&](const Envelope& env) {
    if (const auto* r = std::get_if<AllocationReply>(&env.payload)) replies.push_back(*r);
  });
  bus.run_until_idle();
  for (std::uint64_t id = 1; id <= 3; ++id) {
    AllocationRequest req;
    req.request_id = id;
    req.principal = id % 2;
    req.amounts = {2.0 + static_cast<double>(id)};
    req.duration = 4.0;
    bus.post(client, grm.endpoint(), req);
    bus.run_until_idle();
  }
  Transcript t;
  for (const AllocationReply& r : replies) {
    char buf[128];
    double total = 0.0;
    for (const auto& per_res : r.draws)
      for (double d : per_res) total += d;
    std::snprintf(buf, sizeof buf, "%llu:%d:%.12g:%s;",
                  static_cast<unsigned long long>(r.request_id), r.granted ? 1 : 0, total,
                  r.reason.c_str());
    t.text += buf;
  }
  t.delivered = bus.delivered();
  t.now = bus.now();
  EXPECT_EQ(bus.dropped(), 0u);
  EXPECT_EQ(bus.duplicated(), 0u);
  return t;
}

TEST(ZeroCost, InertPlanLeavesTraceIdentical) {
  const Transcript without = run_two_site_scenario(false);
  const Transcript with = run_two_site_scenario(true);
  EXPECT_EQ(without.text, with.text);
  EXPECT_EQ(without.delivered, with.delivered);
  EXPECT_DOUBLE_EQ(without.now, with.now);
}

// --------------------------------------------- chaos: drops with retries ---

struct ChaosResult {
  std::string transcript;
  std::size_t granted = 0;
  std::size_t denied = 0;
  std::uint64_t grm_grants = 0;
  std::uint64_t grm_decisions = 0;
  std::uint64_t bus_dropped = 0;
};

/// 100 requests through a 20%-drop network with retries + deadline.
ChaosResult run_drop_chaos(std::uint64_t fault_seed) {
  MessageBus bus;
  GrmOptions gopts;
  gopts.reserve_attempts = 6;
  gopts.reserve_backoff = 0.1;
  gopts.reserve_backoff_cap = 1.0;
  Grm grm(bus, two_site_systems(5.0, 10.0, 0.5), {}, /*decision_latency=*/0.01, gopts);
  Lrm lrm0(bus, {5.0}, 0.01), lrm1(bus, {10.0}, 0.01);
  grm.register_lrm(0, lrm0.endpoint());
  grm.register_lrm(1, lrm1.endpoint());
  lrm0.attach(grm.endpoint(), 0);
  lrm1.attach(grm.endpoint(), 1);
  bus.run_until_idle();

  FaultPlan plan;
  plan.seed = fault_seed;
  plan.default_link.drop = 0.20;
  bus.set_fault_plan(plan);

  ClientOptions copts;
  copts.max_attempts = 8;
  copts.retry_backoff = 0.2;
  copts.backoff_cap = 2.0;
  copts.deadline = 30.0;
  copts.send_latency = 0.01;
  RequestClient client(bus, grm.endpoint(), copts);

  Pcg32 rng(42);
  const std::size_t kRequests = 100;
  for (std::uint64_t id = 1; id <= kRequests; ++id) {
    AllocationRequest req;
    req.request_id = id;
    req.principal = rng.uniform_u32(2);
    req.amounts = {rng.uniform(0.5, 3.0)};
    req.duration = rng.uniform(0.5, 3.0);
    client.submit(req);
    bus.run_until(bus.now() + 0.5);
    // Conservation at every step: the LRMs never go negative and granted
    // holds never exceed physical capacity.
    for (const Lrm* l : {&lrm0, &lrm1})
      for (double a : l->available()) EXPECT_GE(a, -1e-9);
  }
  bus.run_until_idle();

  // Every request resolved exactly once, before its deadline, with a
  // reason on denial.
  EXPECT_EQ(client.outstanding(), 0u);
  EXPECT_EQ(client.outcomes().size(), kRequests);
  ChaosResult res;
  for (const RequestClient::Outcome& out : client.outcomes()) {
    EXPECT_LE(out.latency(), copts.deadline + 1e-9);
    if (out.reply.granted) {
      ++res.granted;
      EXPECT_EQ(out.reply.draws.size(), 1u);
      if (out.reply.draws.size() == 1) {
        EXPECT_LE(out.reply.draws[0][0], 5.0 + 1e-9);
        EXPECT_LE(out.reply.draws[0][1], 10.0 + 1e-9);
      }
    } else {
      ++res.denied;
      EXPECT_FALSE(out.reply.reason.empty());
    }
    char buf[96];
    std::snprintf(buf, sizeof buf, "%llu:%d;",
                  static_cast<unsigned long long>(out.reply.request_id),
                  out.reply.granted ? 1 : 0);
    res.transcript += buf;
  }
  // No double decisions / double grants: the GRM decided each id at most
  // once (duplicates answered from the idempotency cache).
  EXPECT_LE(grm.grants(), kRequests);
  EXPECT_LE(grm.decisions(), kRequests);
  // Everything released at the end: full capacity restored.
  EXPECT_EQ(lrm0.active_reservations(), 0u);
  EXPECT_EQ(lrm1.active_reservations(), 0u);
  EXPECT_NEAR(lrm0.available()[0], 5.0, 1e-9);
  EXPECT_NEAR(lrm1.available()[0], 10.0, 1e-9);
  res.grm_grants = grm.grants();
  res.grm_decisions = grm.decisions();
  res.bus_dropped = bus.dropped();
  return res;
}

TEST(Chaos, TwentyPercentDropEveryRequestResolves) {
  const ChaosResult res = run_drop_chaos(777);
  // The network really was lossy, yet work still flowed.
  EXPECT_GT(res.bus_dropped, 0u);
  EXPECT_GT(res.granted, 0u);
  EXPECT_EQ(res.granted + res.denied, 100u);
}

TEST(Chaos, SameFaultSeedReplaysByteIdentically) {
  const ChaosResult a = run_drop_chaos(2024);
  const ChaosResult b = run_drop_chaos(2024);
  EXPECT_EQ(a.transcript, b.transcript);
  EXPECT_EQ(a.granted, b.granted);
  EXPECT_EQ(a.grm_grants, b.grm_grants);
  EXPECT_EQ(a.grm_decisions, b.grm_decisions);
  EXPECT_EQ(a.bus_dropped, b.bus_dropped);
}

TEST(Chaos, DifferentFaultSeedsDiverge) {
  // Not a hard guarantee for every seed pair, but these two differ; the
  // test documents that the seed actually drives the fault stream.
  const ChaosResult a = run_drop_chaos(1);
  const ChaosResult b = run_drop_chaos(99991);
  EXPECT_NE(a.bus_dropped, b.bus_dropped);
}

// ------------------------------------------------ staleness + partitions ---

struct DegradeRig {
  MessageBus bus;
  Grm grm;
  Lrm lrm0, lrm1;
  EndpointId client;
  std::vector<AllocationReply> replies;

  explicit DegradeRig(GrmOptions gopts)
      : grm(bus, two_site_systems(), {}, 0.01, gopts), lrm0(bus, {2.0}, 0.01),
        lrm1(bus, {10.0}, 0.01) {
    grm.register_lrm(0, lrm0.endpoint());
    grm.register_lrm(1, lrm1.endpoint());
    lrm0.attach(grm.endpoint(), 0);
    lrm1.attach(grm.endpoint(), 1);
    client = bus.add_endpoint([this](const Envelope& env) {
      if (const auto* r = std::get_if<AllocationReply>(&env.payload)) replies.push_back(*r);
    });
    bus.run_until_idle();
  }

  void post_request(std::uint64_t id, std::size_t principal, double amount,
                    double duration = 0.0) {
    AllocationRequest req;
    req.request_id = id;
    req.principal = principal;
    req.amounts = {amount};
    req.duration = duration;
    bus.post(client, grm.endpoint(), req);
  }
};

TEST(Degradation, PartitionedSiteContributesZeroAfterTtl) {
  GrmOptions gopts;
  gopts.staleness_ttl = 2.0;
  DegradeRig rig(gopts);
  FaultPlan plan;
  plan.partitions.push_back(Partition{1.0, 6.0, {rig.lrm1.endpoint()}});
  rig.bus.set_fault_plan(plan);

  // A report sent into the partition is lost.
  rig.bus.run_until(2.99);
  rig.lrm1.adjust_capacity(0, 0.0);
  rig.bus.run_until(3.1);
  EXPECT_EQ(rig.bus.lost_to_partition(), 1u);

  // Keep site 0 fresh, then ask: transitive capacity through the stale
  // site 1 must be gone, local capacity must still work.
  rig.lrm0.adjust_capacity(0, 0.0);
  rig.bus.run_until(3.5);
  rig.post_request(1, 0, 4.0);  // needs site 1's share: degraded away
  rig.post_request(2, 0, 1.5);  // site 0 alone can carry this
  rig.bus.run_until(4.5);
  ASSERT_EQ(rig.replies.size(), 2u);
  EXPECT_FALSE(rig.replies[0].granted);
  ASSERT_TRUE(rig.replies[1].granted);
  EXPECT_NEAR(rig.replies[1].draws[0][1], 0.0, 1e-12);  // nothing from site 1
  EXPECT_GT(rig.grm.stale_masked(), 0u);

  // Partition heals; a fresh report restores full reach.
  rig.bus.run_until(7.0);
  rig.lrm1.adjust_capacity(0, 0.0);
  rig.lrm0.adjust_capacity(0, 0.0);
  rig.bus.run_until(7.5);
  rig.post_request(3, 0, 4.0);
  rig.bus.run_until_idle();
  ASSERT_EQ(rig.replies.size(), 3u);
  EXPECT_TRUE(rig.replies[2].granted);
  EXPECT_GT(rig.replies[2].draws[0][1], 0.0);
}

// --------------------------------------------------- crash + resync ------

TEST(CrashRecovery, RestartedLrmResyncsAndReleasesOverdueHolds) {
  GrmOptions gopts;
  gopts.staleness_ttl = 5.0;
  gopts.reserve_attempts = 4;
  gopts.reserve_backoff = 0.1;
  DegradeRig rig(gopts);

  // Reserve 8 on site 1 for 5 seconds; the release will fall inside the
  // crash window and be lost with the site.
  rig.post_request(1, 1, 8.0, /*duration=*/5.0);
  rig.bus.run_until(0.5);
  ASSERT_EQ(rig.replies.size(), 1u);
  ASSERT_TRUE(rig.replies[0].granted);
  EXPECT_NEAR(rig.lrm1.available()[0], 2.0, 1e-9);
  EXPECT_EQ(rig.lrm1.active_reservations(), 1u);

  FaultPlan plan;
  plan.crashes.push_back(CrashWindow{rig.lrm1.endpoint(), 1.0, 10.0});
  rig.bus.set_fault_plan(plan);

  // While the site is down and stale, decisions degrade to what the rest
  // of the system can carry.
  rig.bus.run_until(7.0);
  rig.lrm0.adjust_capacity(0, 0.0);  // keep site 0 fresh
  rig.bus.run_until(7.5);
  rig.post_request(2, 0, 4.0);  // would need site 1
  rig.post_request(3, 0, 1.5);  // local
  rig.bus.run_until(9.0);
  ASSERT_EQ(rig.replies.size(), 3u);
  EXPECT_FALSE(rig.replies[1].granted);
  EXPECT_TRUE(rig.replies[2].granted);
  // The scheduled release at t=5 was lost with the crash: the hold is
  // still pinned.
  EXPECT_EQ(rig.lrm1.active_reservations(), 1u);
  EXPECT_GT(rig.bus.lost_to_crash(), 0u);

  // Restart at t=10: the LRM releases the overdue hold and resyncs the
  // GRM, restoring the site's full capacity to the decision process.
  rig.bus.run_until(10.5);
  EXPECT_EQ(rig.lrm1.active_reservations(), 0u);
  EXPECT_NEAR(rig.lrm1.available()[0], 10.0, 1e-9);
  EXPECT_EQ(rig.grm.resyncs(), 1u);
  EXPECT_DOUBLE_EQ(rig.grm.known_available(1, 0), 10.0);

  rig.post_request(4, 0, 4.0);
  rig.bus.run_until_idle();
  ASSERT_EQ(rig.replies.size(), 4u);
  EXPECT_TRUE(rig.replies[3].granted);
  EXPECT_GT(rig.replies[3].draws[0][1], 0.0);
}

// ------------------------------------------------- local-only admission ---

TEST(LocalAdmission, LrmServesRequestsWithoutItsGrm) {
  MessageBus bus;
  Lrm lrm(bus, {4.0});
  std::vector<AllocationReply> replies;
  const EndpointId client = bus.add_endpoint([&](const Envelope& env) {
    if (const auto* r = std::get_if<AllocationReply>(&env.payload)) replies.push_back(*r);
  });

  AllocationRequest req;
  req.request_id = 1;
  req.principal = 0;
  req.amounts = {3.0};
  req.duration = 2.0;
  bus.post(client, lrm.endpoint(), req);
  bus.run_until(1.0);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_TRUE(replies[0].granted);
  EXPECT_NEAR(lrm.available()[0], 1.0, 1e-9);
  EXPECT_EQ(lrm.local_admissions(), 1u);

  // Beyond local capacity: denied with a reason (no borrowing without the
  // GRM's agreement view).
  req.request_id = 2;
  req.amounts = {2.0};
  bus.post(client, lrm.endpoint(), req);
  bus.run_until(1.5);
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_FALSE(replies[1].granted);
  EXPECT_NE(replies[1].reason.find("local-only"), std::string::npos);
  EXPECT_EQ(lrm.local_denials(), 1u);

  // The admitted job still expires.
  bus.run_until_idle();
  EXPECT_NEAR(lrm.available()[0], 4.0, 1e-9);
  EXPECT_EQ(lrm.active_reservations(), 0u);
}

// -------------------------------------------- duplicate/reorder handling ---

TEST(Idempotency, DuplicatedRequestsAndCommandsDoNotDoubleGrant) {
  GrmOptions gopts;
  gopts.reserve_attempts = 4;
  gopts.reserve_backoff = 0.1;
  DegradeRig rig(gopts);
  FaultPlan plan;
  plan.seed = 5;
  plan.default_link.duplicate = 1.0;  // every network message arrives twice
  rig.bus.set_fault_plan(plan);

  rig.post_request(1, 1, 8.0, /*duration=*/1.0);
  rig.bus.run_until(0.8);
  // Exactly one reservation despite duplicated request, duplicated
  // reserve command and duplicated acks.
  EXPECT_EQ(rig.lrm1.active_reservations(), 1u);
  EXPECT_NEAR(rig.lrm1.available()[0], 2.0, 1e-9);
  EXPECT_EQ(rig.grm.decisions(), 1u);
  EXPECT_GE(rig.grm.duplicate_requests(), 1u);
  EXPECT_GE(rig.lrm1.duplicate_commands(), 1u);
  rig.bus.run_until_idle();
  EXPECT_NEAR(rig.lrm1.available()[0], 10.0, 1e-9);
  EXPECT_GT(rig.bus.duplicated(), 0u);
}

TEST(Idempotency, ReorderedStaleReportIsRejected) {
  GrmOptions gopts;
  DegradeRig rig(gopts);
  // Simulate reordering directly: an old report (low seq) arriving after a
  // newer one must not roll availability back.
  AvailabilityReport fresh;
  fresh.lrm = 1;
  fresh.available = {3.0};
  fresh.report_seq = 10;
  AvailabilityReport stale;
  stale.lrm = 1;
  stale.available = {9.0};
  stale.report_seq = 9;
  rig.bus.post(rig.client, rig.grm.endpoint(), fresh);
  rig.bus.post(rig.client, rig.grm.endpoint(), stale);
  rig.bus.run_until_idle();
  EXPECT_DOUBLE_EQ(rig.grm.known_available(1, 0), 3.0);
  EXPECT_EQ(rig.grm.stale_reports(), 1u);
}

TEST(CrashRecovery, LrmCrashRacingInFlightAllocationStaysIdempotent) {
  // The race: the GRM grants a request and posts its ReserveCommand just
  // as the target LRM crashes. The command (and the first retries) die
  // with the site; the LRM restarts and resyncs the GRM; only then does a
  // retry land -- duplicated by the link for good measure. The reservation
  // must be applied exactly once, the duplicate re-acked, and the
  // accounting identical to a run where nothing was lost.
  auto run = [] {
    GrmOptions gopts;
    gopts.reserve_attempts = 6;
    gopts.reserve_backoff = 0.5;
    gopts.reserve_backoff_cap = 2.0;
    DegradeRig rig(gopts);
    FaultPlan plan;
    plan.crashes.push_back(CrashWindow{rig.lrm1.endpoint(), 0.15, 2.0});
    // Every surviving GRM -> LRM1 delivery arrives twice.
    plan.per_link[{rig.grm.endpoint(), rig.lrm1.endpoint()}] =
        LinkFaults{0.0, /*duplicate=*/1.0, 0.0};
    rig.bus.set_fault_plan(plan);

    rig.bus.run_until(0.2);
    rig.post_request(1, 1, 8.0, /*duration=*/3.0);
    rig.bus.run_until(1.0);
    // The grant was decided (and the client answered) while the site was
    // down: the hold exists only in the GRM's intent so far.
    EXPECT_EQ(rig.replies.size(), 1u);
    EXPECT_TRUE(rig.replies.at(0).granted);
    EXPECT_EQ(rig.lrm1.active_reservations(), 0u);
    EXPECT_GT(rig.bus.lost_to_crash(), 0u);

    // Restart at t=2: the LRM resyncs (full capacity, no holds); the
    // pending reserve retry then lands twice and applies once.
    rig.bus.run_until(4.5);
    EXPECT_EQ(rig.grm.resyncs(), 1u);
    EXPECT_EQ(rig.lrm1.active_reservations(), 1u);
    EXPECT_NEAR(rig.lrm1.available()[0], 2.0, 1e-9);
    EXPECT_GE(rig.lrm1.duplicate_commands(), 1u);
    EXPECT_GE(rig.grm.reserve_retries(), 2u);
    EXPECT_EQ(rig.grm.reserve_failures(), 0u);

    // The hold still expires; a post-release duplicate cannot resurrect it.
    rig.bus.run_until_idle();
    EXPECT_EQ(rig.lrm1.active_reservations(), 0u);
    EXPECT_NEAR(rig.lrm1.available()[0], 10.0, 1e-9);
    return std::make_tuple(rig.grm.reserve_retries(), rig.lrm1.duplicate_commands(),
                           rig.bus.delivered(), rig.bus.now());
  };
  // The whole race replays byte-identically.
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace agora::rms
