// lp_warmstart_test.cpp -- property tests for the warm-started, workspace-
// reusing revised simplex path (and the allocator model cache built on it).
//
// Invariant under test: passing a SolveWorkspace to the revised backend --
// and, one layer up, AllocatorOptions::reuse_context -- must never change
// WHAT is computed, only how fast. Over fuzzed sequences of bound/rhs
// perturbations of a fixed-structure LP, the warm-started solve must agree
// with the cold revised solve, the tableau solve, and (on tiny instances)
// brute-force vertex enumeration: same status, same objective, same duals
// within 1e-7.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "agree/topology.h"
#include "alloc/allocator.h"
#include "lp/brute_force.h"
#include "lp/model_builder.h"
#include "lp/solve.h"
#include "util/rng.h"

namespace agora::lp {
namespace {

constexpr double kTol = 1e-7;

/// Thin shims over lp::solve so the fuzz loops below read like the solver
/// calls they compare. Presolve is off: these tests pin down the raw warm
/// path against the raw cold path, not the reductions.
struct RevisedRunner {
  SolveResult solve(const Problem& p, SolveWorkspace* ws = nullptr) const {
    SolveOptions o;
    o.backend = Backend::Revised;
    o.presolve = false;
    return lp::solve(p, o, ws);
  }
};
struct TableauRunner {
  SolveResult solve(const Problem& p) const {
    SolveOptions o;
    o.backend = Backend::Tableau;
    o.presolve = false;
    return lp::solve(p, o);
  }
};

/// The allocation-LP shape used by the amortized path: n draws in
/// [0, u_k], theta; sum d == amount; per-row drop - theta <= 0.
struct CompactFixture {
  Problem problem;
  std::size_t n = 0;

  static CompactFixture make(std::size_t n, Pcg32& rng) {
    CompactFixture f;
    f.n = n;
    ModelBuilder mb(Sense::Minimize);
    std::vector<Var> d = mb.add_vars(n, 0.0, 1.0);
    const Var theta = mb.add_var(0.0);
    mb.add(sum(d) == 1.0, "demand");
    for (std::size_t i = 0; i < n; ++i) {
      LinExpr drop;
      for (std::size_t k = 0; k < n; ++k) {
        const double c = k == i ? rng.uniform(0.5, 1.0) : rng.uniform(0.0, 0.4);
        if (c > 0.02) drop += c * d[k];
      }
      mb.add(drop - 1.0 * theta <= 0.0, "perturb");
    }
    mb.minimize(LinExpr(theta));
    f.problem = std::move(mb.problem());
    return f;
  }

  /// Random bound/rhs perturbation -- the only mutation the warm-start
  /// contract allows between shared-workspace solves.
  void perturb(Pcg32& rng) {
    for (std::size_t k = 0; k < n; ++k) problem.set_bounds(k, 0.0, rng.uniform(0.0, 2.0));
    problem.set_rhs(0, rng.uniform(0.0, 1.5));
  }
};

void expect_same_result(const SolveResult& want, const SolveResult& got, const char* tag) {
  ASSERT_EQ(want.status, got.status) << tag;
  if (want.status != Status::Optimal) return;
  EXPECT_NEAR(want.objective, got.objective, kTol) << tag;
  ASSERT_EQ(want.duals.size(), got.duals.size()) << tag;
  for (std::size_t i = 0; i < want.duals.size(); ++i)
    EXPECT_NEAR(want.duals[i], got.duals[i], kTol) << tag << " dual " << i;
}

TEST(LpWarmstart, NullWorkspaceIsTheColdSolve) {
  Pcg32 rng(11);
  CompactFixture f = CompactFixture::make(6, rng);
  RevisedRunner solver;
  const SolveResult a = solver.solve(f.problem);
  const SolveResult b = solver.solve(f.problem, nullptr);
  ASSERT_EQ(a.status, b.status);
  ASSERT_EQ(a.status, Status::Optimal);
  EXPECT_EQ(a.objective, b.objective);  // bit-identical, not just close
  EXPECT_EQ(a.x, b.x);
  EXPECT_EQ(a.duals, b.duals);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(LpWarmstart, FuzzedPerturbationsMatchColdTableauAndBruteForce) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Pcg32 rng(seed * 977);
    const std::size_t n = 2 + seed % 3;  // tiny: brute force stays cheap
    CompactFixture f = CompactFixture::make(n, rng);
    RevisedRunner revised;
    TableauRunner tableau;
    SolveWorkspace ws;
    for (int step = 0; step < 40; ++step) {
      f.perturb(rng);
      const SolveResult cold = revised.solve(f.problem);
      const SolveResult warm = revised.solve(f.problem, &ws);
      const SolveResult tab = tableau.solve(f.problem);
      const SolveResult brute = brute_force_solve(f.problem);
      expect_same_result(cold, warm, "warm vs cold");
      expect_same_result(cold, tab, "tableau vs cold");
      ASSERT_EQ(cold.status, brute.status) << "brute vs cold";
      if (cold.status == Status::Optimal) {
        EXPECT_NEAR(cold.objective, brute.objective, kTol) << "brute objective";
      }
    }
  }
}

TEST(LpWarmstart, LargerFuzzedSequencesStayWarmAndCorrect) {
  Pcg32 rng(31337);
  CompactFixture f = CompactFixture::make(12, rng);
  RevisedRunner revised;
  SolveWorkspace ws;
  std::uint64_t cold_iters = 0, warm_iters = 0;
  for (int step = 0; step < 120; ++step) {
    f.perturb(rng);
    const SolveResult cold = revised.solve(f.problem);
    const SolveResult warm = revised.solve(f.problem, &ws);
    expect_same_result(cold, warm, "warm vs cold");
    cold_iters += cold.iterations;
    warm_iters += warm.iterations;
  }
  // Not merely correct: the workspace must actually be warm. Perturbed
  // re-solves of the same structure should pivot far less than from-scratch
  // two-phase solves.
  EXPECT_LT(warm_iters * 2, cold_iters);
}

TEST(LpWarmstart, StructureChangeFallsBackToColdStart) {
  Pcg32 rng(7);
  CompactFixture small = CompactFixture::make(4, rng);
  CompactFixture big = CompactFixture::make(9, rng);
  RevisedRunner revised;
  SolveWorkspace ws;
  // Alternate between two different matrices through ONE workspace: the
  // fingerprint check must demote every switch to a cold start and still
  // produce the cold answers.
  for (int step = 0; step < 10; ++step) {
    CompactFixture& f = step % 2 ? big : small;
    f.perturb(rng);
    const SolveResult cold = revised.solve(f.problem);
    const SolveResult warm = revised.solve(f.problem, &ws);
    expect_same_result(cold, warm, "warm vs cold after structure change");
  }
}

TEST(LpWarmstart, InfeasibleAndUnboundedPerturbationsAreDetected) {
  Pcg32 rng(99);
  CompactFixture f = CompactFixture::make(5, rng);
  RevisedRunner revised;
  SolveWorkspace ws;
  f.perturb(rng);
  ASSERT_EQ(revised.solve(f.problem, &ws).status, Status::Optimal);
  // Demand beyond the sum of the bounds: infeasible under a warm basis.
  f.problem.set_rhs(0, 1e6);
  EXPECT_EQ(revised.solve(f.problem, &ws).status, Status::Infeasible);
  EXPECT_EQ(revised.solve(f.problem).status, Status::Infeasible);
  // And recovery back to a feasible rhs keeps working.
  f.problem.set_rhs(0, 0.25);
  const SolveResult back = revised.solve(f.problem, &ws);
  expect_same_result(revised.solve(f.problem), back, "recovery after infeasible");
}

}  // namespace
}  // namespace agora::lp

namespace agora::alloc {
namespace {

AllocatorOptions engine_opts(lp::Backend backend, bool reuse) {
  AllocatorOptions opts;
  opts.solve.backend = backend;
  opts.reuse_context = reuse;
  return opts;
}

/// Lockstep fuzz at the allocator level: three allocators over the same
/// system -- Tableau, Revised cold (reuse off), Revised warm (reuse on) --
/// driven through random allocate/apply/release/set_capacities sequences
/// must produce the same plan statuses and thetas.
TEST(AllocatorWarmstart, LockstepEnginesAgreeOverRequestReleaseSequences) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Pcg32 rng(seed * 12345);
    const std::size_t n = 4 + seed;
    agree::AgreementSystem sys(n);
    sys.relative = agree::complete_graph(n, 0.6 / static_cast<double>(n));
    for (std::size_t i = 0; i < n; ++i) sys.capacity[i] = rng.uniform(5.0, 15.0);

    Allocator tableau(sys, engine_opts(lp::Backend::Tableau, true));
    Allocator cold(sys, engine_opts(lp::Backend::Revised, false));
    Allocator warm(sys, engine_opts(lp::Backend::Revised, true));

    for (int step = 0; step < 60; ++step) {
      const std::size_t a = rng.uniform_u32(static_cast<std::uint32_t>(n));
      const int action = static_cast<int>(rng.uniform_u32(4));
      if (action == 0) {
        std::vector<double> caps(n);
        for (double& c : caps) c = rng.uniform(2.0, 15.0);
        tableau.set_capacities(caps);
        cold.set_capacities(caps);
        warm.set_capacities(caps);
        continue;
      }
      if (action == 1) {
        std::vector<double> back(n, 0.0);
        for (double& b : back) b = rng.uniform(0.0, 0.5);
        tableau.release(back);
        cold.release(back);
        warm.release(back);
        continue;
      }
      const double amount =
          std::min(warm.available_to(a) * rng.uniform(0.0, 0.9), rng.uniform(0.0, 8.0));
      const AllocationPlan pt = tableau.allocate(a, amount);
      const AllocationPlan pc = cold.allocate(a, amount);
      const AllocationPlan pw = warm.allocate(a, amount);
      ASSERT_EQ(pt.status, pw.status) << "seed " << seed << " step " << step;
      ASSERT_EQ(pc.status, pw.status) << "seed " << seed << " step " << step;
      if (!pw.satisfied()) continue;
      EXPECT_NEAR(pt.theta, pw.theta, 1e-7) << "seed " << seed << " step " << step;
      EXPECT_NEAR(pc.theta, pw.theta, 1e-7) << "seed " << seed << " step " << step;
      if (action == 3) {  // sometimes commit, sometimes just consult
        tableau.apply(pt);
        // Apply the SAME plan everywhere so capacities stay in lockstep even
        // when alternative optima differ in their draw vectors.
        cold.apply(pt);
        warm.apply(pt);
      }
    }
  }
}

/// reuse_context must not change results when capacities never move either
/// (repeated identical requests -- the pure warm-start steady state).
TEST(AllocatorWarmstart, RepeatedIdenticalRequestsStaySatisfiedAndStable) {
  agree::AgreementSystem sys(6);
  sys.relative = agree::distance_decay(6, {0.25, 0.10});
  for (std::size_t i = 0; i < 6; ++i) sys.capacity[i] = 10.0;
  Allocator warm(sys, engine_opts(lp::Backend::Revised, true));
  const AllocationPlan first = warm.allocate(2, 4.0);  // cold: builds the cache
  ASSERT_TRUE(first.satisfied());
  const AllocationPlan steady = warm.allocate(2, 4.0);  // first warm solve
  ASSERT_TRUE(steady.satisfied());
  // Cold and warm may differ by ULPs (x_B is recomputed as B^-1 b at warm
  // entry instead of carried through incremental pivots)...
  EXPECT_NEAR(steady.theta, first.theta, 1e-9);
  for (std::size_t k = 0; k < first.draw.size(); ++k)
    EXPECT_NEAR(steady.draw[k], first.draw[k], 1e-9);
  // ...but warm steady state must be exactly reproducible.
  for (int i = 0; i < 20; ++i) {
    const AllocationPlan p = warm.allocate(2, 4.0);
    ASSERT_TRUE(p.satisfied());
    EXPECT_EQ(p.theta, steady.theta);
    EXPECT_EQ(p.draw, steady.draw);
  }
}

}  // namespace
}  // namespace agora::alloc
