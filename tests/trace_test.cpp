// Unit tests for the trace substrate: diurnal profiles, the synthetic
// generator, and trace (de)serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "trace/generator.h"
#include "trace/profile.h"
#include "trace/trace_io.h"
#include "trace/zipf.h"
#include "util/error.h"
#include "util/stats.h"

namespace agora::trace {
namespace {

// ---------------------------------------------------------------- profile ---

TEST(Profile, BerkeleyShapePeaksAtMidnightTroughsEarlyMorning) {
  const DiurnalProfile p = DiurnalProfile::berkeley_like();
  EXPECT_EQ(p.slots(), 144u);
  EXPECT_DOUBLE_EQ(p.horizon(), 86400.0);
  // Peak within an hour of midnight.
  double peak = 0.0;
  std::size_t peak_slot = 0;
  for (std::size_t s = 0; s < p.slots(); ++s)
    if (p.slot_weight(s) > peak) {
      peak = p.slot_weight(s);
      peak_slot = s;
    }
  const double peak_hour = p.slot_mid_hour(peak_slot);
  EXPECT_TRUE(peak_hour < 1.0 || peak_hour > 23.0) << "peak at hour " << peak_hour;
  // Trough in the early morning (4-7am), well below half the peak.
  double trough = 1e9;
  std::size_t trough_slot = 0;
  for (std::size_t s = 0; s < p.slots(); ++s)
    if (p.slot_weight(s) < trough) {
      trough = p.slot_weight(s);
      trough_slot = s;
    }
  const double trough_hour = p.slot_mid_hour(trough_slot);
  EXPECT_GE(trough_hour, 4.0);
  EXPECT_LE(trough_hour, 7.0);
  EXPECT_LT(trough, 0.5 * peak);
}

TEST(Profile, WeightAtInterpolatesAndWraps) {
  const DiurnalProfile p({1.0, 3.0}, 100.0);
  // Slot mids at t=25 (w=1) and t=75 (w=3); halfway between: 2.
  EXPECT_NEAR(p.weight_at(25.0), 1.0, 1e-12);
  EXPECT_NEAR(p.weight_at(75.0), 3.0, 1e-12);
  EXPECT_NEAR(p.weight_at(50.0), 2.0, 1e-12);
  // Wrap: t=0 is halfway between slot 1 (t=75, w=3) and slot 0 (t=125->25, w=1).
  EXPECT_NEAR(p.weight_at(0.0), 2.0, 1e-12);
  EXPECT_NEAR(p.weight_at(100.0), p.weight_at(0.0), 1e-12);
  EXPECT_NEAR(p.weight_at(-25.0), 3.0, 1e-12);
}

TEST(Profile, FlatProfile) {
  const DiurnalProfile p = DiurnalProfile::flat(2.0, 1000.0, 10);
  EXPECT_NEAR(p.mean_weight(), 2.0, 1e-12);
  EXPECT_NEAR(p.peak_weight(), 2.0, 1e-12);
  EXPECT_NEAR(p.weight_at(123.0), 2.0, 1e-12);
}

TEST(Profile, RejectsBadInput) {
  EXPECT_THROW(DiurnalProfile({}, 100.0), PreconditionError);
  EXPECT_THROW(DiurnalProfile({1.0}, -1.0), PreconditionError);
  EXPECT_THROW(DiurnalProfile({-1.0}, 100.0), PreconditionError);
}

// -------------------------------------------------------------- generator ---

TEST(Generator, DeterministicInSeed) {
  GeneratorConfig cfg;
  cfg.peak_rate = 2.0;
  Generator gen(cfg, DiurnalProfile::flat(1.0, 3600.0, 6));
  const auto a = gen.generate(7);
  const auto b = gen.generate(7);
  const auto c = gen.generate(8);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].response_bytes, b[i].response_bytes);
  }
  EXPECT_NE(a.size(), c.size());
}

TEST(Generator, RateMatchesProfile) {
  GeneratorConfig cfg;
  cfg.peak_rate = 5.0;
  Generator gen(cfg, DiurnalProfile::flat(1.0, 36000.0, 10));
  const auto reqs = gen.generate(1);
  // Expect ~ rate * horizon = 180000 arrivals, Poisson noise ~ +-0.5%.
  EXPECT_NEAR(static_cast<double>(reqs.size()), 180000.0, 3000.0);
}

TEST(Generator, ArrivalsSortedAndInHorizon) {
  GeneratorConfig cfg;
  cfg.peak_rate = 3.0;
  Generator gen(cfg, DiurnalProfile::berkeley_like(7200.0, 12));
  const auto reqs = gen.generate(3);
  double prev = 0.0;
  for (const auto& r : reqs) {
    EXPECT_GE(r.arrival, prev);
    EXPECT_LT(r.arrival, 7200.0);
    prev = r.arrival;
  }
}

TEST(Generator, TimeShiftWrapsCyclically) {
  GeneratorConfig cfg;
  cfg.peak_rate = 2.0;
  // Strongly asymmetric profile: all load in the first half.
  Generator gen(cfg, DiurnalProfile({1.0, 0.0}, 1000.0));
  const auto base = gen.generate(5, 0.0);
  const auto shifted = gen.generate(5, 500.0);
  ASSERT_EQ(base.size(), shifted.size());
  for (const auto& r : base) EXPECT_LT(r.arrival, 500.0);
  for (const auto& r : shifted) EXPECT_GE(r.arrival, 500.0);
}

TEST(Generator, ResponseSizeDistributionSane) {
  GeneratorConfig cfg;
  cfg.peak_rate = 20.0;
  Generator gen(cfg, DiurnalProfile::flat(1.0, 10000.0, 10));
  const auto reqs = gen.generate(11);
  StreamingStats bytes;
  for (const auto& r : reqs) bytes.add(static_cast<double>(r.response_bytes));
  // Empirical mean should be near the analytic expectation (heavy tail:
  // generous tolerance).
  const double expected = expected_response_bytes(cfg);
  EXPECT_GT(bytes.mean(), expected * 0.6);
  EXPECT_LT(bytes.mean(), expected * 1.7);
  EXPECT_GT(bytes.max(), 10.0 * bytes.mean());  // tail present
}

TEST(Generator, ExpectedBytesFormula) {
  GeneratorConfig cfg;
  cfg.tail_probability = 0.0;
  cfg.body_log_median_bytes = std::log(1000.0);
  cfg.body_sigma = 0.0;
  EXPECT_NEAR(expected_response_bytes(cfg), 1000.0, 1e-9);
}

TEST(Generator, SameSeedYieldsByteIdenticalSerializedStream) {
  // Stronger than value equality: the serialized trace (what golden-figure
  // runs and --metrics-out snapshots are built on) must be byte-identical
  // across same-seed runs, on the realistic diurnal profile.
  GeneratorConfig cfg;
  cfg.peak_rate = 3.0;
  Generator gen(cfg, DiurnalProfile::berkeley_like(7200.0, 24));
  std::ostringstream a, b, other;
  write_trace(a, gen.generate(42, 300.0));
  write_trace(b, gen.generate(42, 300.0));
  write_trace(other, gen.generate(43, 300.0));
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str(), other.str());
  // A fresh, identically configured generator replays the same stream too
  // (no hidden state carried between generate() calls).
  Generator gen2(cfg, DiurnalProfile::berkeley_like(7200.0, 24));
  std::ostringstream c;
  write_trace(c, gen2.generate(42, 300.0));
  EXPECT_EQ(a.str(), c.str());
}

// ---------------------------------------------------------------- trace_io ---

TEST(TraceIo, RoundTrip) {
  std::vector<TraceRequest> reqs{{1.5, 2048, 7}, {3.25, 100, 8}};
  std::ostringstream os;
  write_trace(os, reqs);
  std::istringstream is(os.str());
  const auto back = read_trace(is);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_DOUBLE_EQ(back[0].arrival, 1.5);
  EXPECT_EQ(back[0].response_bytes, 2048u);
  EXPECT_EQ(back[1].client, 8u);
}

TEST(TraceIo, SkipsCommentsAndBlankLines) {
  std::istringstream is("# header\n\n1.0 10 2\n");
  const auto reqs = read_trace(is);
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_DOUBLE_EQ(reqs[0].arrival, 1.0);
}

TEST(TraceIo, RejectsMalformedLines) {
  std::istringstream is("not a trace line\n");
  EXPECT_THROW(read_trace(is), IoError);
  std::istringstream neg("-1.0 10 2\n");
  EXPECT_THROW(read_trace(neg), IoError);
}

TEST(TraceIo, MissingFileReported) {
  EXPECT_THROW(load_trace("/nonexistent/path/trace.txt"), IoError);
}

TEST(TraceIo, FileRoundTrip) {
  GeneratorConfig cfg;
  cfg.peak_rate = 1.0;
  Generator gen(cfg, DiurnalProfile::flat(1.0, 600.0, 2));
  const auto reqs = gen.generate(21);
  const std::string path = ::testing::TempDir() + "/agora_trace_test.txt";
  save_trace(path, reqs);
  const auto back = load_trace(path);
  ASSERT_EQ(back.size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i)
    EXPECT_EQ(back[i].response_bytes, reqs[i].response_bytes);
}

// ------------------------------------------------------------------- zipf ---

TEST(Zipf, ProbabilitiesFollowThePowerLaw) {
  ZipfSampler z(100, 1.1, 7);
  double total = 0.0;
  for (std::size_t k = 0; k < z.size(); ++k) total += z.probability(k);
  EXPECT_NEAR(total, 1.0, 1e-12);
  // P(k) / P(2k) == 2^s for a pure power law.
  EXPECT_NEAR(z.probability(1) / z.probability(3), std::pow(2.0, 1.1), 1e-9);
  EXPECT_NEAR(z.mass_of_top(z.size()), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(z.mass_of_top(0), 0.0);
}

TEST(Zipf, SamplingIsDeterministicInTheSeed) {
  ZipfSampler a(64, 1.1, 42), b(64, 1.1, 42), c(64, 1.1, 43);
  bool any_diff = false;
  for (int i = 0; i < 256; ++i) {
    const std::size_t ra = a.next();
    EXPECT_EQ(ra, b.next());
    if (ra != c.next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);  // different seed, different stream
}

TEST(Zipf, EmpiricalSkewMatchesTheory) {
  ZipfSampler z(64, 1.1, 11);
  std::vector<std::size_t> count(64, 0);
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) ++count[z.next()];
  // Rank 0 should dominate and land near its theoretical mass.
  const double p0 = static_cast<double>(count[0]) / draws;
  EXPECT_NEAR(p0, z.probability(0), 0.02);
  EXPECT_GT(count[0], count[32]);
  std::size_t top8 = 0;
  for (std::size_t k = 0; k < 8; ++k) top8 += count[k];
  EXPECT_NEAR(static_cast<double>(top8) / draws, z.mass_of_top(8), 0.03);
}

TEST(Zipf, ShapeGeneratorIsDeterministicAndBounded) {
  ZipfShapeGenerator::Config cfg;
  cfg.participants = 16;
  cfg.shapes = 64;
  cfg.seed = 5;
  ZipfShapeGenerator g1(cfg), g2(cfg);
  ASSERT_EQ(g1.catalog().size(), 64u);
  for (const RequestShape& s : g1.catalog()) {
    EXPECT_LT(s.participant, 16u);
    EXPECT_GE(s.amount, cfg.amount_min);
    EXPECT_LE(s.amount,
              cfg.amount_min + cfg.amount_step * static_cast<double>(cfg.amount_levels - 1));
  }
  for (int i = 0; i < 128; ++i) {
    const RequestShape a = g1.next(), b = g2.next();
    EXPECT_EQ(a.participant, b.participant);
    EXPECT_EQ(a.amount, b.amount);
  }
  // hottest_share is a proper cache-hit-rate bound: monotone, <= 1.
  EXPECT_LE(g1.hottest_share(8), g1.hottest_share(64));
  EXPECT_NEAR(g1.hottest_share(64), 1.0, 1e-12);
}

}  // namespace
}  // namespace agora::trace
