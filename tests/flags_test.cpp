// Tests for the hardened CLI layer: typed flag validation at parse time,
// and — through real subprocess runs of agora_sim / agora_serve — the tool
// contract that unknown flags, malformed values, and stray arguments print
// usage and exit non-zero while --help exits zero.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <string>

#include "util/flags.h"

namespace agora {
namespace {

// ------------------------------------------------------------ parse layer ---

Flags typed_flags() {
  Flags f;
  f.define("name", "anon", "a string");
  f.define_int("count", "3", "an integer");
  f.define_double("rate", "1.5", "a number");
  f.define_bool("fast", "0", "a boolean");
  return f;
}

std::vector<std::string> parse(Flags& f, std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return f.parse(static_cast<int>(args.size()), args.data());
}

TEST(Flags, TypedValuesParseAndReadBack) {
  Flags f = typed_flags();
  parse(f, {"--count=42", "--rate", "2.25", "--fast=true", "--name=zed"});
  EXPECT_EQ(f.get_int("count"), 42);
  EXPECT_DOUBLE_EQ(f.get_double("rate"), 2.25);
  EXPECT_TRUE(f.get_bool("fast"));
  EXPECT_EQ(f.get("name"), "zed");
}

TEST(Flags, MalformedTypedValuesFailAtParseTime) {
  {
    Flags f = typed_flags();
    EXPECT_THROW(parse(f, {"--count=abc"}), PreconditionError);
  }
  {
    Flags f = typed_flags();
    EXPECT_THROW(parse(f, {"--count=12x"}), PreconditionError);  // trailing junk
  }
  {
    Flags f = typed_flags();
    EXPECT_THROW(parse(f, {"--rate=1.2.3"}), PreconditionError);
  }
  {
    Flags f = typed_flags();
    EXPECT_THROW(parse(f, {"--fast=maybe"}), PreconditionError);
  }
  {
    Flags f = typed_flags();
    EXPECT_THROW(parse(f, {"--count=99999999999999999999"}), PreconditionError);  // overflow
  }
}

TEST(Flags, UnknownFlagAndMissingValueStillThrow) {
  {
    Flags f = typed_flags();
    EXPECT_THROW(parse(f, {"--nope=1"}), PreconditionError);
  }
  {
    Flags f = typed_flags();
    EXPECT_THROW(parse(f, {"--count"}), PreconditionError);  // value expected
  }
}

TEST(Flags, BadDefaultIsAProgrammerError) {
  Flags f;
  EXPECT_THROW(f.define_int("broken", "not-a-number", "doc"), PreconditionError);
}

TEST(Flags, UntypedFlagsAcceptAnythingAtParse) {
  Flags f = typed_flags();
  parse(f, {"--name=--weird=value with spaces"});
  EXPECT_EQ(f.get("name"), "--weird=value with spaces");
}

// --------------------------------------------------------- tool subprocess ---

struct RunResult {
  int exit_code = -1;
  std::string output;  ///< stdout + stderr interleaved
};

RunResult run_tool(const std::string& cmd) {
  RunResult r;
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return r;
  std::array<char, 512> buf;
  while (fgets(buf.data(), buf.size(), pipe) != nullptr) r.output += buf.data();
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

class ToolCli : public ::testing::TestWithParam<const char*> {};

TEST_P(ToolCli, UnknownFlagPrintsUsageAndExits2) {
  const RunResult r = run_tool(std::string(GetParam()) + " --definitely-not-a-flag=1");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("unknown flag"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("flags:"), std::string::npos) << "usage text missing: " << r.output;
}

TEST_P(ToolCli, InvalidValuePrintsUsageAndExits2) {
  const RunResult r = run_tool(std::string(GetParam()) + " --seed=banana");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("not an integer"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("flags:"), std::string::npos) << r.output;
}

TEST_P(ToolCli, StrayPositionalArgumentExits2) {
  const RunResult r = run_tool(std::string(GetParam()) + " stray-argument");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("unexpected argument"), std::string::npos) << r.output;
}

TEST_P(ToolCli, HelpExitsZero) {
  const RunResult r = run_tool(std::string(GetParam()) + " --help");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("flags:"), std::string::npos) << r.output;
}

INSTANTIATE_TEST_SUITE_P(Tools, ToolCli,
                         ::testing::Values(AGORA_SIM_BIN, AGORA_SERVE_BIN));

TEST(ToolCli, ServeRejectsOutOfRangeValues) {
  const RunResult r = run_tool(std::string(AGORA_SERVE_BIN) + " --max-queue=0");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  const RunResult r2 =
      run_tool(std::string(AGORA_SERVE_BIN) + " --connect=localhost:not-a-port");
  EXPECT_EQ(r2.exit_code, 2) << r2.output;
}

TEST(ToolCli, SimRejectsBadEnumAndRangeValues) {
  const RunResult r = run_tool(std::string(AGORA_SIM_BIN) + " --scheduler=bogus");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("unknown --scheduler"), std::string::npos) << r.output;
  const RunResult r2 = run_tool(std::string(AGORA_SIM_BIN) +
                                " --grm-replicas=1 --rms-drop=1.5 --rms-requests=1");
  EXPECT_EQ(r2.exit_code, 2) << r2.output;
}

}  // namespace
}  // namespace agora
