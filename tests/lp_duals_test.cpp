// Tests for LP dual values (shadow prices) from both simplex solvers:
// pinned values on textbook problems, and a convention-free numerical check
// (perturb a constraint's rhs, re-solve, compare the objective slope).
#include <gtest/gtest.h>

#include <cmath>

#include "lp/problem.h"
#include "lp/solve.h"
#include "util/matrix.h"
#include "util/rng.h"

namespace agora::lp {
namespace {

// Backend/basis configurations under test: tableau, revised with the dense
// inverse, revised with the sparse LU basis. Presolve stays off so the duals
// come from the solver itself, not the postsolve reconstruction.
struct TableauConfig {
  static SolveOptions options() {
    SolveOptions o;
    o.backend = Backend::Tableau;
    o.presolve = false;
    return o;
  }
};
struct RevisedDenseConfig {
  static SolveOptions options() {
    SolveOptions o;
    o.backend = Backend::Revised;
    o.basis = BasisRep::DenseInverse;
    o.presolve = false;
    return o;
  }
};
struct RevisedSparseConfig {
  static SolveOptions options() {
    SolveOptions o;
    o.backend = Backend::Revised;
    o.basis = BasisRep::SparseLu;
    o.presolve = false;
    return o;
  }
};

template <typename Config>
class DualsTest : public ::testing::Test {
 public:
  struct {
    SolveResult solve(const Problem& p) const { return lp::solve(p, Config::options()); }
  } solver;
};

using SolverTypes =
    ::testing::Types<TableauConfig, RevisedDenseConfig, RevisedSparseConfig>;
TYPED_TEST_SUITE(DualsTest, SolverTypes);

TYPED_TEST(DualsTest, ClassicShadowPrices) {
  // max 3x + 5y s.t. x <= 4; 2y <= 12; 3x + 2y <= 18.
  // Known duals: (0, 3/2, 1) -- constraint 1 is slack at the optimum.
  Problem p(Sense::Maximize);
  p.add_variable("x", 0, kInfinity, 3.0);
  p.add_variable("y", 0, kInfinity, 5.0);
  p.add_constraint({1, 0}, Relation::LessEqual, 4);
  p.add_constraint({0, 2}, Relation::LessEqual, 12);
  p.add_constraint({3, 2}, Relation::LessEqual, 18);
  const SolveResult r = this->solver.solve(p);
  ASSERT_EQ(r.status, Status::Optimal);
  ASSERT_EQ(r.duals.size(), 3u);
  EXPECT_NEAR(r.duals[0], 0.0, 1e-7);
  EXPECT_NEAR(r.duals[1], 1.5, 1e-7);
  EXPECT_NEAR(r.duals[2], 1.0, 1e-7);
}

TYPED_TEST(DualsTest, EqualityDuals) {
  // min x + 2y s.t. x + y = 5, x <= 3. Optimum x=3, y=2, obj=7.
  // Raising the equality rhs by 1 forces y up: d obj = +2.
  Problem p;
  p.add_variable("x", 0, kInfinity, 1.0);
  p.add_variable("y", 0, kInfinity, 2.0);
  p.add_constraint({1, 1}, Relation::Equal, 5);
  p.add_constraint({1, 0}, Relation::LessEqual, 3);
  const SolveResult r = this->solver.solve(p);
  ASSERT_EQ(r.status, Status::Optimal);
  EXPECT_NEAR(r.objective, 7.0, 1e-7);
  EXPECT_NEAR(r.duals[0], 2.0, 1e-7);
  // Loosening x <= 3 lets cheap x replace expensive y: d obj = 1 - 2 = -1.
  EXPECT_NEAR(r.duals[1], -1.0, 1e-7);
}

TYPED_TEST(DualsTest, GreaterEqualDuals) {
  // min 2x s.t. x >= 4: dual of the covering constraint is 2.
  Problem p;
  p.add_variable("x", 0, kInfinity, 2.0);
  p.add_constraint({1}, Relation::GreaterEqual, 4);
  const SolveResult r = this->solver.solve(p);
  ASSERT_EQ(r.status, Status::Optimal);
  EXPECT_NEAR(r.duals[0], 2.0, 1e-7);
}

TYPED_TEST(DualsTest, NegativeRhsNormalizationKeepsSign) {
  // min 2x s.t. -x <= -4 (same feasible set as x >= 4). The shadow price
  // is w.r.t. *this* constraint's written rhs: raising -4 toward -3 relaxes
  // the set to x >= 3 and the objective falls by 2 per unit => dual = -2
  // (contrast with the x >= 4 form, whose dual is +2).
  Problem p;
  p.add_variable("x", 0, kInfinity, 2.0);
  p.add_constraint({-1}, Relation::LessEqual, -4);
  const SolveResult r = this->solver.solve(p);
  ASSERT_EQ(r.status, Status::Optimal);
  EXPECT_NEAR(r.x[0], 4.0, 1e-7);
  EXPECT_NEAR(r.duals[0], -2.0, 1e-7);
}

/// Convention-free check on random LPs: duals[i] must equal the numerical
/// derivative of the optimal objective w.r.t. constraint i's rhs (where the
/// optimum is non-degenerate enough for the one-sided slope to be stable).
class DualSlope : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DualSlope, MatchesNumericalDerivative) {
  Pcg32 rng(GetParam());
  const std::size_t n = 3 + rng.uniform_u32(3);
  const std::size_t m = 2 + rng.uniform_u32(3);
  Problem p(rng.next_double() < 0.5 ? Sense::Minimize : Sense::Maximize);
  std::vector<double> interior(n);
  for (std::size_t j = 0; j < n; ++j) {
    interior[j] = rng.uniform(0.2, 1.8);
    p.add_variable("x" + std::to_string(j), 0.0, 2.0, rng.uniform(-3.0, 3.0));
  }
  for (std::size_t i = 0; i < m; ++i) {
    std::vector<double> coeffs(n);
    double at = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      coeffs[j] = rng.uniform(-1.0, 1.0);
      at += coeffs[j] * interior[j];
    }
    p.add_constraint(std::move(coeffs), Relation::LessEqual, at + rng.uniform(0.1, 1.0));
  }

  struct {
    SolveResult solve(const Problem& q) const { return lp::solve(q, TableauConfig::options()); }
  } solver;
  const SolveResult base = solver.solve(p);
  ASSERT_EQ(base.status, Status::Optimal);
  ASSERT_EQ(base.duals.size(), m);

  const double eps = 1e-5;
  for (std::size_t i = 0; i < m; ++i) {
    // Two-sided slope to dodge degenerate kinks; skip constraints whose
    // one-sided slopes disagree (a vertex change within eps). Problems are
    // rebuilt with the perturbed rhs (Problem has no rhs setter by design).
    Problem perturbed_up(p.sense()), perturbed_down(p.sense());
    for (std::size_t j = 0; j < n; ++j) {
      perturbed_up.add_variable(p.variable_name(j), p.lower_bound(j), p.upper_bound(j),
                                p.objective_coeff(j));
      perturbed_down.add_variable(p.variable_name(j), p.lower_bound(j), p.upper_bound(j),
                                  p.objective_coeff(j));
    }
    for (std::size_t k = 0; k < m; ++k) {
      const Constraint& c = p.constraint(k);
      const double delta = k == i ? eps : 0.0;
      perturbed_up.add_constraint(c.coeffs, c.rel, c.rhs + delta);
      perturbed_down.add_constraint(c.coeffs, c.rel, c.rhs - delta);
    }
    const SolveResult ru = solver.solve(perturbed_up);
    const SolveResult rd = solver.solve(perturbed_down);
    if (ru.status != Status::Optimal || rd.status != Status::Optimal) continue;
    const double slope_up = (ru.objective - base.objective) / eps;
    const double slope_down = (base.objective - rd.objective) / eps;
    if (std::fabs(slope_up - slope_down) > 1e-4) continue;  // degenerate kink
    EXPECT_NEAR(base.duals[i], slope_up, 1e-4) << "constraint " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DualSlope, ::testing::Range<std::uint64_t>(7000, 7020));

TEST(Duals, BothSolversAgree) {
  Pcg32 rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    Problem p;
    const std::size_t n = 4;
    for (std::size_t j = 0; j < n; ++j)
      p.add_variable("x" + std::to_string(j), 0.0, 3.0, rng.uniform(-2.0, 2.0));
    for (std::size_t i = 0; i < 3; ++i) {
      std::vector<double> coeffs(n);
      for (auto& c : coeffs) c = rng.uniform(0.0, 1.0);
      p.add_constraint(std::move(coeffs), Relation::LessEqual, rng.uniform(1.0, 4.0));
    }
    const SolveResult a = lp::solve(p, TableauConfig::options());
    const SolveResult b = lp::solve(p, RevisedSparseConfig::options());
    ASSERT_EQ(a.status, Status::Optimal);
    ASSERT_EQ(b.status, Status::Optimal);
    // Duals can differ between alternative optimal bases; compare only when
    // the primal solutions coincide (non-degenerate unique optimum).
    if (linf_distance(a.x, b.x) < 1e-9) {
      for (std::size_t i = 0; i < a.duals.size(); ++i)
        EXPECT_NEAR(a.duals[i], b.duals[i], 1e-6);
    }
  }
}

}  // namespace
}  // namespace agora::lp
