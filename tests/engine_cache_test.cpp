// Tests for the admission hot path (DESIGN.md §13): the epoch-keyed plan
// cache, the theta<=1 allocator fast path, and their safety invariants --
// every grant certified, no stale-epoch plan ever served, and the threads=1
// cache-miss path bit-identical to the direct Allocator.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "alloc/allocator.h"
#include "engine/engine.h"
#include "engine/plan_cache.h"
#include "trace/zipf.h"

namespace agora::engine {
namespace {

/// `islands` complete-graph economies of `per` participants each (zero
/// cross-island agreements) -- same fixture as engine_test / bench.
agree::AgreementSystem island_economy(std::size_t islands, std::size_t per, double share,
                                      double cap = 10.0) {
  const std::size_t n = islands * per;
  agree::AgreementSystem sys(n);
  for (std::size_t i = 0; i < n; ++i) sys.capacity[i] = cap + static_cast<double>(i % per);
  for (std::size_t g = 0; g < islands; ++g)
    for (std::size_t i = 0; i < per; ++i)
      for (std::size_t j = 0; j < per; ++j)
        if (i != j) sys.relative(g * per + i, g * per + j) = share;
  return sys;
}

bool bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

/// Field-by-field, bit-exact plan comparison. decision_epoch is deliberately
/// not compared: the engine stamps it, the bare Allocator leaves it 0.
void expect_identical(const alloc::AllocationPlan& e, const alloc::AllocationPlan& d) {
  EXPECT_EQ(e.status, d.status);
  EXPECT_TRUE(bitwise_equal(e.draw, d.draw));
  EXPECT_EQ(e.theta, d.theta);
  EXPECT_TRUE(bitwise_equal(e.capacity_before, d.capacity_before));
  EXPECT_TRUE(bitwise_equal(e.capacity_after, d.capacity_after));
  EXPECT_EQ(e.lp_iterations, d.lp_iterations);
  EXPECT_EQ(e.exact_mode_fell_back, d.exact_mode_fell_back);
  EXPECT_EQ(e.certified, d.certified);
  EXPECT_EQ(e.solver_fallbacks, d.solver_fallbacks);
}

alloc::AllocationPlan sample_plan(std::size_t n, std::size_t a, double amount) {
  alloc::AllocationPlan p;
  p.status = alloc::PlanStatus::Satisfied;
  p.certified = true;
  p.draw.assign(n, 0.0);
  p.draw[a] = amount;
  p.theta = amount;
  return p;
}

// -------------------------------------------------------------- PlanCache ---

TEST(PlanCache, MissThenInsertThenHit) {
  PlanCache cache({/*slots=*/256, /*probe_window=*/8});
  EXPECT_EQ(cache.lookup(0, 3, 1.5).outcome, PlanCache::Outcome::Miss);
  cache.insert(0, 3, 1.5, sample_plan(8, 3, 1.5));
  const auto r = cache.lookup(0, 3, 1.5);
  ASSERT_EQ(r.outcome, PlanCache::Outcome::Hit);
  ASSERT_TRUE(r.entry);
  EXPECT_EQ(r.entry->epoch, 0u);
  EXPECT_EQ(r.entry->participant, 3u);
  EXPECT_DOUBLE_EQ(r.entry->plan.draw[3], 1.5);
  ASSERT_EQ(r.entry->nz.size(), 1u);
  EXPECT_EQ(r.entry->nz[0], 3u);
  // Different amount or participant: miss, not a false hit.
  EXPECT_EQ(cache.lookup(0, 3, 1.25).outcome, PlanCache::Outcome::Miss);
  EXPECT_EQ(cache.lookup(0, 4, 1.5).outcome, PlanCache::Outcome::Miss);
  const PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 3u);
  EXPECT_EQ(s.inserts, 1u);
}

TEST(PlanCache, EpochMismatchIsStaleAndOverwriteRevives) {
  PlanCache cache({256, 8});
  cache.insert(4, 1, 2.0, sample_plan(8, 1, 2.0));
  EXPECT_EQ(cache.lookup(5, 1, 2.0).outcome, PlanCache::Outcome::Stale);
  // The refreshed decision replaces the stale entry in place.
  cache.insert(5, 1, 2.0, sample_plan(8, 1, 2.0));
  EXPECT_EQ(cache.lookup(5, 1, 2.0).outcome, PlanCache::Outcome::Hit);
  // And the old epoch is gone -- one slot per shape.
  EXPECT_EQ(cache.lookup(4, 1, 2.0).outcome, PlanCache::Outcome::Stale);
  EXPECT_EQ(cache.stats().stale, 2u);
}

TEST(PlanCache, NegativeZeroAndPositiveZeroShareAKey) {
  PlanCache cache({64, 8});
  cache.insert(0, 0, 0.0, sample_plan(4, 0, 0.0));
  EXPECT_EQ(cache.lookup(0, 0, -0.0).outcome, PlanCache::Outcome::Hit);
}

TEST(PlanCache, EvictsWithinTheProbeWindowWhenFull) {
  // A tiny table forces collisions: after many more inserts than slots,
  // lookups must still function and evictions must be counted.
  PlanCache cache({64, 4});
  for (std::size_t i = 0; i < 512; ++i)
    cache.insert(0, i, 1.0, sample_plan(600, i, 1.0));
  const PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.inserts, 512u);
  EXPECT_GT(s.evictions, 0u);
  // Some recent keys must be resident (the table is not thrashing to empty).
  std::size_t resident = 0;
  for (std::size_t i = 0; i < 512; ++i)
    if (cache.lookup(0, i, 1.0).outcome == PlanCache::Outcome::Hit) ++resident;
  EXPECT_GT(resident, 32u);
}

TEST(PlanCache, LookupKeepsHotEntriesUnderEvictionPressure) {
  PlanCache cache({64, 4});
  cache.insert(0, 9999, 7.0, sample_plan(4, 0, 7.0));
  for (std::size_t round = 0; round < 64; ++round) {
    // Keep the hot entry's clock armed while cold inserts stream past.
    cache.lookup(0, 9999, 7.0);
    cache.insert(0, round, 1.0, sample_plan(4, 0, 1.0));
  }
  EXPECT_EQ(cache.lookup(0, 9999, 7.0).outcome, PlanCache::Outcome::Hit);
}

// --------------------------------------------------------- negative entries ---

alloc::AllocationPlan sample_denial(std::size_t n) {
  alloc::AllocationPlan p;
  p.status = alloc::PlanStatus::Insufficient;
  p.certified = true;  // Farkas-certified infeasibility
  p.draw.assign(n, 0.0);
  return p;
}

TEST(PlanCache, NegativeEntriesKeyAndCountSeparately) {
  PlanCache cache({256, 8});
  cache.insert(0, 5, 100.0, sample_denial(8));
  const auto r = cache.lookup(0, 5, 100.0);
  ASSERT_EQ(r.outcome, PlanCache::Outcome::Hit);
  ASSERT_TRUE(r.entry);
  EXPECT_TRUE(r.entry->negative());
  EXPECT_EQ(r.entry->plan.status, alloc::PlanStatus::Insufficient);
  const PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.neg_inserts, 1u);
  EXPECT_EQ(s.neg_hits, 1u);
  EXPECT_EQ(s.inserts, 0u);
  EXPECT_EQ(s.hits, 0u);
  // Same shape solved to a grant later (capacity mutation): the denial is
  // overwritten in place and the entry flips polarity.
  cache.insert(1, 5, 100.0, sample_plan(8, 5, 100.0));
  const auto r2 = cache.lookup(1, 5, 100.0);
  ASSERT_EQ(r2.outcome, PlanCache::Outcome::Hit);
  EXPECT_FALSE(r2.entry->negative());
  EXPECT_EQ(cache.stats().inserts, 1u);
}

TEST(PlanCache, DenialsEvictBeforeGrantsUnderPressure) {
  // One grant and a stream of denials contending for the same 4-slot probe
  // windows of a tiny table. The grant starts hot (kHotRef) and denials
  // start cold, so surviving entries should skew heavily toward grants even
  // though denials outnumber them 4:1 in the insert stream.
  PlanCache cache({64, 4});
  for (std::size_t i = 0; i < 128; ++i) {
    if (i % 5 == 0)
      cache.insert(0, i, 1.0, sample_plan(4, 0, 1.0));
    else
      cache.insert(0, i, 1.0, sample_denial(4));
  }
  const PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.inserts + s.neg_inserts, 128u);
  EXPECT_GT(s.neg_evictions, 0u);
  std::size_t grants_resident = 0, grants_inserted = 0;
  std::size_t denials_resident = 0, denials_inserted = 0;
  for (std::size_t i = 0; i < 128; ++i) {
    const bool grant = i % 5 == 0;
    (grant ? grants_inserted : denials_inserted)++;
    if (cache.lookup(0, i, 1.0).outcome == PlanCache::Outcome::Hit)
      (grant ? grants_resident : denials_resident)++;
  }
  // Fractional survival: grants must out-survive denials.
  EXPECT_GT(static_cast<double>(grants_resident) / static_cast<double>(grants_inserted),
            static_cast<double>(denials_resident) / static_cast<double>(denials_inserted));
}

// ------------------------------------------------- engine + cache semantics ---

TEST(EngineCache, Threads1AllMissBitIdenticalToDirectAllocator) {
  const auto sys = island_economy(2, 4, 0.25);
  EngineOptions opts;
  opts.threads = 1;
  opts.plan_cache = true;
  EnforcementEngine engine(sys, opts);
  alloc::Allocator direct(sys, opts.alloc);
  // Every amount unique => every lookup misses => the full queue + worker +
  // warm-started allocator path runs, and must match the direct path bit
  // for bit.
  for (int i = 0; i < 40; ++i) {
    const std::size_t a = static_cast<std::size_t>(i) % sys.size();
    const double amount = 0.375 + 0.0625 * i;
    expect_identical(engine.consult(a, amount), direct.allocate(a, amount));
  }
  const EngineStats s = engine.stats();
  EXPECT_EQ(s.plan_cache.hits, 0u);
  EXPECT_EQ(s.plan_cache.misses, 40u);
}

TEST(EngineCache, HitsReturnTheSamePlanAsTheSolvedPath) {
  const auto sys = island_economy(2, 4, 0.25);
  EngineOptions opts;
  opts.threads = 1;
  opts.plan_cache = true;
  EnforcementEngine engine(sys, opts);
  alloc::Allocator direct(sys, opts.alloc);
  for (int round = 0; round < 3; ++round) {
    for (std::size_t a = 0; a < sys.size(); ++a) {
      const double amount = 1.0 + 0.5 * static_cast<double>(a % 3);
      const alloc::AllocationPlan got = engine.consult(a, amount);
      expect_identical(got, direct.allocate(a, amount));
      EXPECT_TRUE(got.certified);
      EXPECT_EQ(got.decision_epoch, 0u);
    }
  }
  const EngineStats s = engine.stats();
  EXPECT_EQ(s.plan_cache.misses, sys.size());
  EXPECT_EQ(s.plan_cache.hits, 2 * sys.size());
  EXPECT_EQ(s.plan_cache.certify_rejects, 0u);
}

TEST(EngineCache, MutationInvalidatesByEpoch) {
  const auto sys = island_economy(2, 4, 0.25);
  EngineOptions opts;
  opts.threads = 2;
  opts.plan_cache = true;
  EnforcementEngine engine(sys, opts);
  const alloc::AllocationPlan first = engine.consult(1, 2.0);
  EXPECT_EQ(first.decision_epoch, 0u);
  EXPECT_EQ(engine.consult(1, 2.0).decision_epoch, 0u);  // served from cache
  EXPECT_EQ(engine.stats().plan_cache.hits, 1u);

  std::vector<double> caps = sys.capacity;
  for (double& c : caps) c += 1.0;
  engine.set_capacities(caps);

  // Same shape after the mutation: the cached decision is stale; the engine
  // re-solves against the new snapshot and re-populates.
  const alloc::AllocationPlan fresh = engine.consult(1, 2.0);
  EXPECT_EQ(fresh.decision_epoch, 1u);
  EXPECT_TRUE(fresh.certified);
  const EngineStats s = engine.stats();
  EXPECT_GE(s.plan_cache.stale, 1u);
  EXPECT_EQ(engine.consult(1, 2.0).decision_epoch, 1u);
  EXPECT_EQ(engine.stats().plan_cache.hits, 2u);
}

TEST(EngineCache, SubmitServesHitsWithReadyFutures) {
  const auto sys = island_economy(1, 6, 0.2);
  EngineOptions opts;
  opts.plan_cache = true;
  EnforcementEngine engine(sys, opts);
  const EngineResult miss = engine.submit(2, 1.5).get();
  ASSERT_TRUE(miss.status.ok());
  const EngineResult hit = engine.submit(2, 1.5).get();
  ASSERT_TRUE(hit.status.ok());
  expect_identical(hit.plan, miss.plan);
  EXPECT_EQ(engine.stats().plan_cache.hits, 1u);
}

TEST(EngineCache, RepeatedImpossibleRequestServesCachedDenial) {
  const auto sys = island_economy(1, 4, 0.25);
  EngineOptions opts;
  opts.threads = 1;
  opts.plan_cache = true;
  EnforcementEngine engine(sys, opts);
  // Far beyond the island's total capacity: certified Insufficient.
  const double impossible = 1.0e6;
  const alloc::AllocationPlan first = engine.consult(2, impossible);
  EXPECT_EQ(first.status, alloc::PlanStatus::Insufficient);
  ASSERT_TRUE(first.certified) << "infeasibility must be Farkas-certified to cache";
  for (int i = 0; i < 5; ++i) {
    const alloc::AllocationPlan again = engine.consult(2, impossible);
    EXPECT_EQ(again.status, alloc::PlanStatus::Insufficient);
    EXPECT_TRUE(again.certified);
  }
  const EngineStats s = engine.stats();
  EXPECT_GE(s.plan_cache.neg_inserts, 1u);
  EXPECT_EQ(s.plan_cache.neg_hits, 5u);
  EXPECT_EQ(s.plan_cache.hits, 0u);
  // The denial replays without a worker solve: exactly one consult reached
  // the shard.
  std::uint64_t worker_consults = 0;
  for (const ShardStats& sh : s.shard) worker_consults += sh.consults;
  EXPECT_EQ(worker_consults, 1u);
}

TEST(EngineCache, MutationInvalidatesCachedDenialAndRequestCanGrant) {
  const auto sys = island_economy(1, 4, 0.25);
  EngineOptions opts;
  opts.threads = 1;
  opts.plan_cache = true;
  EnforcementEngine engine(sys, opts);
  // More than participant 1 can reach under the seed capacities, less than
  // it can reach once everyone's capacity quadruples.
  double reachable = 0.0;
  {
    alloc::Allocator probe(sys, opts.alloc);
    reachable = probe.available_to(1);
  }
  const double amount = reachable * 2.0;
  const alloc::AllocationPlan denied = engine.consult(1, amount);
  ASSERT_EQ(denied.status, alloc::PlanStatus::Insufficient);
  EXPECT_EQ(engine.consult(1, amount).status, alloc::PlanStatus::Insufficient);
  EXPECT_GE(engine.stats().plan_cache.neg_hits, 1u);

  std::vector<double> caps = sys.capacity;
  for (double& c : caps) c *= 4.0;
  engine.set_capacities(caps);

  // The cached denial is epoch-stale; the fresh solve against the larger
  // capacities grants, and the grant overwrites the denial's slot.
  const alloc::AllocationPlan granted = engine.consult(1, amount);
  EXPECT_TRUE(granted.satisfied());
  EXPECT_TRUE(granted.certified);
  EXPECT_EQ(granted.decision_epoch, 1u);
  const alloc::AllocationPlan replay = engine.consult(1, amount);
  EXPECT_TRUE(replay.satisfied());
  const EngineStats s = engine.stats();
  EXPECT_GE(s.plan_cache.hits, 1u);
  EXPECT_GE(s.plan_cache.stale, 1u);
}

// ------------------------------------------------------- theta<=1 fast path ---

TEST(FastPath, GrantsSelfDrawCertifiedWithoutLpIterations) {
  const auto sys = island_economy(1, 6, 0.2);
  alloc::AllocatorOptions opts;
  opts.fast_path = true;
  alloc::Allocator alloc(sys, opts);
  // Small request: fits the requester's retained entitlement.
  const alloc::AllocationPlan plan = alloc.allocate(2, 1.0);
  ASSERT_TRUE(plan.satisfied());
  EXPECT_TRUE(plan.certified);
  EXPECT_EQ(plan.lp_iterations, 0u);
  EXPECT_DOUBLE_EQ(plan.draw[2], 1.0);
  EXPECT_DOUBLE_EQ(plan.total_drawn(), 1.0);
  // theta = amount * max drop coefficient <= amount ("theta <= 1 per unit").
  EXPECT_LE(plan.theta, 1.0 + 1e-12);
  EXPECT_GT(plan.theta, 0.0);
  EXPECT_EQ(alloc.fastpath_granted(), 1u);
  EXPECT_EQ(alloc.fastpath_fallthrough(), 0u);
}

TEST(FastPath, ThetaIsNeverBelowTheLpOptimum) {
  const auto sys = island_economy(1, 6, 0.2);
  alloc::AllocatorOptions fast_opts;
  fast_opts.fast_path = true;
  alloc::Allocator fast(sys, fast_opts);
  alloc::Allocator exact(sys, alloc::AllocatorOptions{});
  for (std::size_t a = 0; a < sys.size(); ++a) {
    const alloc::AllocationPlan f = fast.allocate(a, 2.0);
    const alloc::AllocationPlan o = exact.allocate(a, 2.0);
    ASSERT_TRUE(f.satisfied());
    ASSERT_TRUE(o.satisfied());
    // The fast path trades optimality for latency, never feasibility: its
    // theta is an upper bound on the LP's minimal perturbation.
    EXPECT_GE(f.theta, o.theta - 1e-9);
    EXPECT_NEAR(f.total_drawn(), 2.0, 1e-9);
  }
}

TEST(FastPath, OversizedRequestFallsThroughToTheLp) {
  const auto sys = island_economy(1, 6, 0.2);
  alloc::AllocatorOptions opts;
  opts.fast_path = true;
  alloc::Allocator fast(sys, opts);
  alloc::Allocator direct(sys, alloc::AllocatorOptions{});
  // Larger than the requester's own retained capacity, still within its
  // total availability: must take the LP path and spread the draw.
  const double amount = sys.capacity[0] + 1.0;
  const alloc::AllocationPlan f = fast.allocate(0, amount);
  const alloc::AllocationPlan d = direct.allocate(0, amount);
  expect_identical(f, d);
  EXPECT_GE(fast.fastpath_fallthrough(), 1u);
}

TEST(FastPath, EngineAggregatesFastPathStats) {
  const auto sys = island_economy(2, 4, 0.25);
  EngineOptions opts;
  opts.threads = 2;
  opts.alloc.fast_path = true;
  EnforcementEngine engine(sys, opts);
  for (std::size_t a = 0; a < sys.size(); ++a) {
    const alloc::AllocationPlan p = engine.consult(a, 0.5);
    ASSERT_TRUE(p.satisfied());
    EXPECT_TRUE(p.certified);
  }
  const EngineStats s = engine.stats();
  EXPECT_EQ(s.fastpath_granted, sys.size());
}

// ---------------------------------------------------------- stale hammering ---

TEST(EngineCache, HammerConsultsInterleavedWithMutationsNeverServeStale) {
  const std::size_t kIslands = 4, kPer = 4;
  const auto sys = island_economy(kIslands, kPer, 0.2);
  const std::size_t n = sys.size();
  EngineOptions opts;
  opts.threads = 4;
  opts.plan_cache = true;
  EnforcementEngine engine(sys, opts);

  // Deterministic capacity schedule: epoch j (j >= 1) runs on caps(j).
  const std::size_t kMutations = 24;
  const auto caps_at = [&](std::size_t j) {
    std::vector<double> v(n);
    for (std::size_t i = 0; i < n; ++i)
      v[i] = 10.0 + static_cast<double>(i % kPer) + 0.5 * static_cast<double>((i + j) % 4);
    return v;
  };
  std::vector<std::vector<double>> schedule;
  schedule.push_back(sys.capacity);  // epoch 0
  for (std::size_t j = 1; j <= kMutations; ++j) schedule.push_back(caps_at(j));

  std::atomic<bool> failed{false};
  std::atomic<std::uint64_t> grants{0};
  const auto producer = [&](std::uint64_t seed) {
    trace::ZipfShapeGenerator::Config cfg;
    cfg.participants = n;
    cfg.shapes = 96;
    cfg.s = 1.1;
    cfg.seed = seed;
    trace::ZipfShapeGenerator gen(cfg);
    for (int i = 0; i < 1200 && !failed.load(std::memory_order_relaxed); ++i) {
      const trace::RequestShape shape = gen.next();
      const std::uint64_t epoch_before = engine.epoch();
      const alloc::AllocationPlan plan = engine.consult(shape.participant, shape.amount);
      if (!plan.satisfied()) continue;  // capacity races can legitimately deny
      grants.fetch_add(1, std::memory_order_relaxed);
      // Invariant 1: no uncertified grant, cached or not.
      if (!plan.certified) failed.store(true);
      // Invariant 2: the decision is at least as fresh as the snapshot the
      // caller could observe before submitting.
      if (plan.decision_epoch < epoch_before) failed.store(true);
      if (plan.decision_epoch >= schedule.size()) failed.store(true);
      // Invariant 3: the plan was feasible AT ITS EPOCH -- draws never
      // exceed what the drawn-on participants owned in that epoch's
      // capacity vector.
      const std::vector<double>& caps = schedule[plan.decision_epoch];
      double total = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        if (plan.draw[k] > caps[k] + 1e-7) failed.store(true);
        total += plan.draw[k];
      }
      if (std::fabs(total - shape.amount) > 1e-7) failed.store(true);
    }
  };

  std::thread mutator([&] {
    for (std::size_t j = 1; j <= kMutations; ++j) {
      engine.set_capacities(schedule[j]);
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });
  std::thread p1(producer, 101);
  std::thread p2(producer, 202);
  p1.join();
  p2.join();
  mutator.join();

  EXPECT_FALSE(failed.load());
  EXPECT_GT(grants.load(), 0u);
  EXPECT_EQ(engine.epoch(), kMutations);

  // Accounting closes: every consult was served by exactly one of the cache
  // front end (grant + denial hits minus re-check rejects of either
  // polarity) or a shard worker.
  const EngineStats s = engine.stats();
  std::uint64_t worker_consults = 0;
  for (const ShardStats& sh : s.shard) worker_consults += sh.consults;
  EXPECT_EQ((s.plan_cache.hits + s.plan_cache.neg_hits - s.plan_cache.certify_rejects) +
                worker_consults,
            2u * 1200u);
  EXPECT_GT(s.plan_cache.hits, 0u);
}

}  // namespace
}  // namespace agora::engine
