// Tests for the flag parser and the economy text format.
#include <gtest/gtest.h>

#include <sstream>

#include "core/economy_io.h"
#include "core/valuation.h"
#include "util/error.h"
#include "util/flags.h"

namespace agora {
namespace {

// ------------------------------------------------------------------ Flags ---

TEST(Flags, ParsesBothForms) {
  Flags f;
  f.define("alpha", "1", "");
  f.define("beta", "x", "");
  const char* argv[] = {"prog", "--alpha=2.5", "--beta", "hello", "positional"};
  const auto rest = f.parse(5, argv);
  EXPECT_DOUBLE_EQ(f.get_double("alpha"), 2.5);
  EXPECT_EQ(f.get("beta"), "hello");
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0], "positional");
}

TEST(Flags, DefaultsApply) {
  Flags f;
  f.define("n", "42", "");
  const char* argv[] = {"prog"};
  f.parse(1, argv);
  EXPECT_EQ(f.get_int("n"), 42);
}

TEST(Flags, UnknownFlagRejected) {
  Flags f;
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_THROW(f.parse(2, argv), PreconditionError);
}

TEST(Flags, MissingValueRejected) {
  Flags f;
  f.define("x", "", "");
  const char* argv[] = {"prog", "--x"};
  EXPECT_THROW(f.parse(2, argv), PreconditionError);
}

TEST(Flags, HelpDetected) {
  Flags f;
  f.define("x", "1", "doc text");
  const char* argv[] = {"prog", "--help"};
  f.parse(2, argv);
  EXPECT_TRUE(f.help_requested());
  EXPECT_NE(f.help_text("prog").find("doc text"), std::string::npos);
}

TEST(Flags, TypedAccessorsValidate) {
  Flags f;
  f.define("num", "abc", "");
  f.define("flag", "true", "");
  f.define("bad", "maybe", "");
  const char* argv[] = {"prog"};
  f.parse(1, argv);
  EXPECT_THROW(f.get_double("num"), PreconditionError);
  EXPECT_THROW(f.get_int("num"), PreconditionError);
  EXPECT_TRUE(f.get_bool("flag"));
  EXPECT_THROW(f.get_bool("bad"), PreconditionError);
  EXPECT_THROW(f.get("undeclared"), PreconditionError);
}

// -------------------------------------------------------------- EconomyIo ---

constexpr const char* kExample1 = R"(
# Example 1
resource disk TB
principal A 1000
principal B 100
principal C
principal D
fund A disk 10
fund B disk 15
abs A C disk 3
rel A B 500 disk
rel B D 60 disk
)";

TEST(EconomyIo, ParsesExample1) {
  std::istringstream is(kExample1);
  const core::Economy e = core::read_economy(is);
  EXPECT_EQ(e.num_principals(), 4u);
  EXPECT_EQ(e.num_tickets(), 5u);
  const core::Valuation v = core::value_economy(e);
  const auto disk = e.find_resource_type("disk");
  EXPECT_NEAR(v.currency_value(e.default_currency(e.find_principal("D")), disk), 12.0, 1e-12);
}

TEST(EconomyIo, RoundTrips) {
  std::istringstream is(kExample1);
  const core::Economy e = core::read_economy(is);
  std::ostringstream os;
  core::write_economy(os, e);
  std::istringstream back(os.str());
  const core::Economy e2 = core::read_economy(back);
  EXPECT_EQ(e2.num_principals(), e.num_principals());
  EXPECT_EQ(e2.num_tickets(), e.num_tickets());
  const auto disk = e2.find_resource_type("disk");
  const core::Valuation v = core::value_economy(e2);
  EXPECT_NEAR(v.currency_value(e2.default_currency(e2.find_principal("B")), disk), 20.0, 1e-12);
}

TEST(EconomyIo, VirtualCurrenciesAndGrantsRoundTrip) {
  const char* spec = R"(
resource cpu
principal A 100
principal B 100
virtual A A1 50
fund A cpu 10
rel A A1 30 cpu
rel A1 B 50 cpu grant
abs A B cpu 2 grant
rel A B 10 *
)";
  std::istringstream is(spec);
  const core::Economy e = core::read_economy(is);
  std::ostringstream os;
  core::write_economy(os, e);
  std::istringstream back(os.str());
  const core::Economy e2 = core::read_economy(back);
  EXPECT_EQ(e2.num_currencies(), 3u);
  // Grant flags survive.
  bool found_grant_rel = false, found_grant_abs = false, found_untyped = false;
  for (std::size_t t = 0; t < e2.num_tickets(); ++t) {
    const core::Ticket& tk = e2.ticket(core::TicketId(t));
    if (tk.kind == core::TicketKind::Relative && tk.mode == core::SharingMode::Granting)
      found_grant_rel = true;
    if (tk.kind == core::TicketKind::Absolute && tk.mode == core::SharingMode::Granting)
      found_grant_abs = true;
    if (tk.kind == core::TicketKind::Relative && !tk.resource.valid()) found_untyped = true;
  }
  EXPECT_TRUE(found_grant_rel);
  EXPECT_TRUE(found_grant_abs);
  EXPECT_TRUE(found_untyped);
}

TEST(EconomyIo, RevokedTicketsOmitted) {
  std::istringstream is(kExample1);
  core::Economy e = core::read_economy(is);
  e.revoke(core::TicketId(2));  // the absolute A->C agreement
  std::ostringstream os;
  core::write_economy(os, e);
  std::istringstream back(os.str());
  const core::Economy e2 = core::read_economy(back);
  EXPECT_EQ(e2.num_tickets(), 4u);
}

TEST(EconomyIo, ReportsLineNumbers) {
  std::istringstream bad("resource disk\nprincipal A\nfund A nope 3\n");
  try {
    core::read_economy(bad);
    FAIL() << "expected IoError";
  } catch (const IoError& err) {
    EXPECT_NE(std::string(err.what()).find("line 3"), std::string::npos);
  }
}

TEST(EconomyIo, RejectsUnknownDirective) {
  std::istringstream bad("frobnicate x y\n");
  EXPECT_THROW(core::read_economy(bad), IoError);
}

TEST(EconomyIo, MissingFileReported) {
  EXPECT_THROW(core::load_economy("/nonexistent/economy.txt"), IoError);
}

}  // namespace
}  // namespace agora
