// Unit tests for the util substrate: matrix/LU kernels, RNG distributions,
// streaming statistics, tables, and the thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <span>
#include <sstream>
#include <thread>
#include <vector>

#include "util/csv.h"
#include "util/error.h"
#include "util/matrix.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/task_queue.h"
#include "util/threadpool.h"

namespace agora {
namespace {

// ---------------------------------------------------------------- Matrix ---

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 0.0);
  m(1, 2) = 4.5;
  EXPECT_DOUBLE_EQ(m(1, 2), 4.5);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1, 2}, {3, 4}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), PreconditionError);
}

TEST(Matrix, OutOfRangeThrows) {
  Matrix m(2, 2);
  EXPECT_THROW(m(2, 0), PreconditionError);
  EXPECT_THROW(m(0, 2), PreconditionError);
}

TEST(Matrix, Identity) {
  const Matrix id = Matrix::identity(3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(id(i, j), i == j ? 1.0 : 0.0);
}

TEST(Matrix, Arithmetic) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  const Matrix s = a + b;
  EXPECT_DOUBLE_EQ(s(0, 0), 6.0);
  const Matrix d = b - a;
  EXPECT_DOUBLE_EQ(d(1, 1), 4.0);
  const Matrix sc = a * 2.0;
  EXPECT_DOUBLE_EQ(sc(1, 0), 6.0);
}

TEST(Matrix, Product) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  const Matrix p = a * b;
  EXPECT_DOUBLE_EQ(p(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(p(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(p(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(p(1, 1), 50.0);
}

TEST(Matrix, ProductShapeMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW(a * b, PreconditionError);
}

TEST(Matrix, MatVec) {
  Matrix a{{1, 2}, {3, 4}};
  const std::vector<double> v{1.0, 1.0};
  const auto r = a * std::span<const double>(v);
  EXPECT_DOUBLE_EQ(r[0], 3.0);
  EXPECT_DOUBLE_EQ(r[1], 7.0);
}

TEST(Matrix, Transposed) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, ApproxEqual) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b = a;
  b(0, 0) += 1e-12;
  EXPECT_TRUE(a.approx_equal(b));
  b(0, 0) += 1.0;
  EXPECT_FALSE(a.approx_equal(b));
}

// ------------------------------------------------------------------- LU ---

TEST(Lu, SolvesWellConditionedSystem) {
  Matrix a{{4, 1, 0}, {1, 3, 1}, {0, 1, 2}};
  const std::vector<double> b{5, 5, 3};
  const auto x = solve_linear_system(a, b);
  const auto back = a * std::span<const double>(x);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(back[i], b[i], 1e-10);
}

TEST(Lu, DetectsSingular) {
  Matrix a{{1, 2}, {2, 4}};
  LuFactorization lu(a);
  EXPECT_TRUE(lu.singular());
  EXPECT_DOUBLE_EQ(lu.determinant(), 0.0);
}

TEST(Lu, PivotingHandlesZeroDiagonal) {
  Matrix a{{0, 1}, {1, 0}};
  const std::vector<double> b{2, 3};
  const auto x = solve_linear_system(a, b);
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, Determinant) {
  Matrix a{{2, 0}, {0, 3}};
  LuFactorization lu(a);
  EXPECT_NEAR(lu.determinant(), 6.0, 1e-12);
}

TEST(Lu, RandomRoundTrip) {
  Pcg32 rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.uniform_u32(8);
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-5, 5);
    // Diagonal dominance keeps it nonsingular.
    for (std::size_t i = 0; i < n; ++i) a(i, i) += 10.0;
    std::vector<double> b(n);
    for (auto& v : b) v = rng.uniform(-10, 10);
    const auto x = solve_linear_system(a, b);
    const auto back = a * std::span<const double>(x);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(back[i], b[i], 1e-8);
  }
}

// --------------------------------------------------------------- vectors ---

TEST(VecOps, DotSumMax) {
  const std::vector<double> a{1, 2, 3};
  const std::vector<double> b{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(sum(a), 6.0);
  EXPECT_DOUBLE_EQ(max_element(a), 3.0);
}

TEST(VecOps, Axpy) {
  const std::vector<double> x{1, 2};
  std::vector<double> y{10, 20};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
}

TEST(VecOps, LinfDistance) {
  const std::vector<double> a{1, 5};
  const std::vector<double> b{2, 3};
  EXPECT_DOUBLE_EQ(linf_distance(a, b), 2.0);
}

// ------------------------------------------------------------------ RNG ---

TEST(Rng, Deterministic) {
  Pcg32 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Rng, DifferentSeedsDiffer) {
  Pcg32 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u32() == b.next_u32()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformRange) {
  Pcg32 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformU32Unbiased) {
  Pcg32 rng(11);
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_u32(3)];
  for (int c : counts) EXPECT_NEAR(c, n / 3, n / 30);
}

TEST(Rng, ExponentialMean) {
  Pcg32 rng(13);
  StreamingStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.exponential(2.0));
  EXPECT_NEAR(s.mean(), 0.5, 0.02);
}

TEST(Rng, PoissonMean) {
  Pcg32 rng(17);
  StreamingStats small, large;
  for (int i = 0; i < 20000; ++i) small.add(static_cast<double>(rng.poisson(3.0)));
  for (int i = 0; i < 20000; ++i) large.add(static_cast<double>(rng.poisson(120.0)));
  EXPECT_NEAR(small.mean(), 3.0, 0.1);
  EXPECT_NEAR(large.mean(), 120.0, 1.0);
}

TEST(Rng, LognormalMedian) {
  Pcg32 rng(19);
  Percentiles p;
  for (int i = 0; i < 20000; ++i) p.add(rng.lognormal(1.0, 0.5));
  EXPECT_NEAR(p.quantile(0.5), std::exp(1.0), 0.1);
}

TEST(Rng, ParetoSupport) {
  Pcg32 rng(23);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, SplitIndependence) {
  Pcg32 rng(29);
  Pcg32 a = rng.split(1);
  Pcg32 b = rng.split(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u32() == b.next_u32()) ++same;
  EXPECT_LT(same, 3);
}

// ---------------------------------------------------------------- stats ---

TEST(StreamingStats, Basics) {
  StreamingStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.total(), 40.0);
}

TEST(StreamingStats, MergeMatchesPooled) {
  Pcg32 rng(31);
  StreamingStats a, b, pooled;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform(0, 10);
    (i % 2 ? a : b).add(v);
    pooled.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), pooled.count());
  EXPECT_NEAR(a.mean(), pooled.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), pooled.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), pooled.min());
  EXPECT_DOUBLE_EQ(a.max(), pooled.max());
}

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Histogram, QuantilesOfUniform) {
  Histogram h(0.0, 1.0, 100);
  Pcg32 rng(37);
  for (int i = 0; i < 100000; ++i) h.add(rng.next_double());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
}

TEST(Histogram, OverUnderflow) {
  Histogram h(0.0, 1.0, 10);
  h.add(-1.0);
  h.add(2.0);
  h.add(0.5);
  EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 1.0);
  EXPECT_EQ(h.count(), 3u);
}

TEST(SlottedSeries, RoutesToSlots) {
  SlottedSeries s(100.0, 10.0);
  EXPECT_EQ(s.slots(), 10u);
  s.add(5.0, 1.0);
  s.add(5.0, 3.0);
  s.add(95.0, 10.0);
  EXPECT_DOUBLE_EQ(s.slot(0).mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.slot(9).mean(), 10.0);
  EXPECT_DOUBLE_EQ(s.peak_slot_mean(), 10.0);
  EXPECT_EQ(s.peak_slot(), 9u);
  EXPECT_EQ(s.total_count(), 3u);
}

TEST(SlottedSeries, ClampsOutOfRange) {
  SlottedSeries s(10.0, 1.0);
  s.add(-5.0, 1.0);
  s.add(100.0, 2.0);
  EXPECT_EQ(s.slot(0).count(), 1u);
  EXPECT_EQ(s.slot(9).count(), 1u);
}

TEST(Percentiles, InterpolatedQuantiles) {
  Percentiles p;
  for (int i = 1; i <= 5; ++i) p.add(i);
  EXPECT_DOUBLE_EQ(p.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(p.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(p.quantile(0.25), 2.0);
}

TEST(Percentiles, AddAfterQuantile) {
  Percentiles p;
  p.add(1.0);
  p.add(3.0);
  EXPECT_DOUBLE_EQ(p.quantile(1.0), 3.0);
  p.add(10.0);
  EXPECT_DOUBLE_EQ(p.quantile(1.0), 10.0);
}

// ----------------------------------------------------------------- Table ---

TEST(Table, CsvRoundTrip) {
  Table t({"a", "b"});
  t.add_row({1.0, 2.0});
  t.add_row({3.5, -1.0});
  std::ostringstream ss;
  t.write_csv(ss);
  EXPECT_EQ(ss.str(), "a,b\n1,2\n3.5,-1\n");
  EXPECT_DOUBLE_EQ(t.at(1, 0), 3.5);
}

TEST(Table, RowWidthEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({1.0}), PreconditionError);
}

TEST(Table, CsvEscape) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("q\"q"), "\"q\"\"q\"");
}

TEST(Table, PrettyHasHeaderAndRows) {
  Table t({"col"});
  t.add_row({1.25});
  std::ostringstream ss;
  t.write_pretty(ss, 2);
  EXPECT_NE(ss.str().find("col"), std::string::npos);
  EXPECT_NE(ss.str().find("1.25"), std::string::npos);
}

// ------------------------------------------------------------ ThreadPool ---

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(10, [](std::size_t i) {
        if (i == 5) throw std::runtime_error("boom");
      }),
      std::runtime_error);
}

TEST(ThreadPool, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

// --------------------------------------------------- vectorized kernels ---

namespace {
std::vector<double> ramp(std::size_t n, double base, double step) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = base + step * static_cast<double>(i);
  return v;
}
}  // namespace

TEST(VectorKernels, VdotMatchesDotWithinTolerance) {
  // vdot uses 4-lane accumulation, so it is not bit-equal to the serial dot;
  // on well-scaled data the two agree to relative machine epsilon * n.
  for (std::size_t n : {0u, 1u, 3u, 4u, 7u, 64u, 129u}) {
    const auto a = ramp(n, 0.25, 0.375);
    const auto b = ramp(n, -1.5, 0.125);
    const double serial = dot(a, b);
    const double lanes = vdot(a, b);
    EXPECT_NEAR(lanes, serial, 1e-12 * (1.0 + std::fabs(serial))) << "n=" << n;
  }
}

TEST(VectorKernels, VaxpyBitIdenticalToAxpy) {
  for (std::size_t n : {0u, 1u, 5u, 64u, 131u}) {
    const auto x = ramp(n, 0.1, 0.7);
    auto y1 = ramp(n, 3.0, -0.2);
    auto y2 = y1;
    axpy(-1.75, x, y1);
    vaxpy(-1.75, x, y2);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(y1[i], y2[i]) << "n=" << n << " i=" << i;
  }
}

TEST(VectorKernels, VdotAbsValueAndMagnitude) {
  const std::vector<double> a = {1.0, -2.0, 3.0, -4.0, 5.0};
  const std::vector<double> x = {2.0, 2.0, 2.0, 2.0, 2.0};
  const DotAbs r = vdot_abs(a, x);
  EXPECT_NEAR(r.value, 6.0, 1e-12);
  EXPECT_NEAR(r.magnitude, 30.0, 1e-12);
}

TEST(VectorKernels, GemvMatchesOperator) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  const std::vector<double> x = {0.5, -1.0, 2.0};
  const std::vector<double> ref = m * std::span<const double>(x);
  std::vector<double> y(2, 0.0);
  gemv(m, x, y);
  for (std::size_t i = 0; i < 2; ++i) EXPECT_NEAR(y[i], ref[i], 1e-12);
}

TEST(VectorKernels, GemvShapeMismatchThrows) {
  Matrix m(2, 3);
  std::vector<double> x(2, 0.0), y(2, 0.0);
  EXPECT_THROW(gemv(m, x, y), PreconditionError);
}

TEST(VectorKernels, GatherDotMatchesDense) {
  const auto row = ramp(10, 1.0, 1.0);  // 1..10
  const std::size_t idx[] = {0, 3, 7};
  const double val[] = {2.0, -1.0, 0.5};
  // 1*2 - 4 + 8*0.5 = 2
  EXPECT_NEAR(gather_dot(row.data(), idx, val, 3), 2.0, 1e-12);
  EXPECT_EQ(gather_dot(row.data(), idx, val, 0), 0.0);
}

// ---------------------------------------------------------- BlockingQueue ---

TEST(BlockingQueue, SizeApproxTracksDepth) {
  BlockingQueue<int> q;
  EXPECT_EQ(q.size_approx(), 0u);
  q.push(1);
  q.push(2);
  EXPECT_EQ(q.size_approx(), 2u);
  std::vector<int> out;
  EXPECT_EQ(q.try_drain(out), 2u);
  EXPECT_EQ(q.size_approx(), 0u);
}

TEST(BlockingQueue, WaiterIsWokenByPush) {
  BlockingQueue<int> q;
  std::atomic<int> got{0};
  std::thread consumer([&] {
    int v = 0;
    if (q.wait_pop(v)) got.store(v);
  });
  // Give the consumer a chance to park before the (waiter-counted) notify.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.push(42);
  consumer.join();
  EXPECT_EQ(got.load(), 42);
}

}  // namespace
}  // namespace agora
