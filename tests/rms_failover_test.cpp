// Chaos/failover suite for the replicated GRM (tier2-chaos label): leader
// crash under live traffic with a bounded unavailability window, minority
// and majority partitions, lossy/duplicating/jittery replication links
// under a fault-seed sweep -- always asserting the two acceptance
// invariants: SAFETY (every request resolves exactly once, physical
// capacity never goes negative, and all replicas hold bit-identical state
// after the network heals and the bus quiesces) and LIVENESS (service
// resumes within a few election timeouts of losing the leader).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "agree/matrices.h"
#include "rms/bus.h"
#include "rms/client.h"
#include "rms/grm.h"
#include "rms/lrm.h"
#include "rms/replica/group.h"
#include "util/rng.h"

namespace agora::rms {
namespace {

using replica::RaftNode;
using replica::ReplicatedGrm;

std::vector<agree::AgreementSystem> two_site_systems() {
  agree::AgreementSystem cpu(2);
  cpu.capacity = {5.0, 10.0};
  cpu.relative(1, 0) = 0.5;
  return {cpu};
}

/// Raft timings fast enough for a sub-minute virtual-time scenario. The
/// liveness bound below is expressed in units of election_timeout_max.
constexpr double kElectionMax = 1.0;

GrmOptions chaos_grm_options(std::size_t replicas) {
  GrmOptions g;
  g.reserve_attempts = 4;  // effects survive a lossy GRM -> LRM path
  g.reserve_backoff = 0.1;
  g.reserve_jitter = 0.25;
  g.replication.replicas = replicas;
  g.replication.election_timeout_min = 0.5;
  g.replication.election_timeout_max = kElectionMax;
  g.replication.heartbeat_interval = 0.1;
  g.replication.latency = 0.01;
  g.replication.snapshot_threshold = 64;
  return g;
}

ClientOptions chaos_client_options() {
  ClientOptions c;
  c.max_attempts = 10;
  c.retry_backoff = 0.2;
  c.backoff_cap = 1.0;
  c.retry_jitter = 0.25;
  c.deadline = 30.0;
  c.send_latency = 0.01;
  return c;
}

/// Replicated rig plus a deterministic open-loop workload driver.
struct FailoverRig {
  MessageBus bus;
  ReplicatedGrm grp;
  Lrm lrm0, lrm1;
  RequestClient client;
  Pcg32 workload;
  std::uint64_t next_id = 1;

  explicit FailoverRig(std::size_t replicas, std::uint64_t raft_seed = 1,
                       std::uint64_t workload_seed = 42)
      : grp(bus, two_site_systems(), {}, 0.01,
            [&] {
              GrmOptions g = chaos_grm_options(replicas);
              g.replication.seed = raft_seed;
              return g;
            }()),
        lrm0(bus, {5.0}, 0.01),
        lrm1(bus, {10.0}, 0.01),
        client(bus, grp.endpoints(), chaos_client_options()),
        workload(workload_seed) {
    grp.register_lrm(0, lrm0.endpoint());
    grp.register_lrm(1, lrm1.endpoint());
    lrm0.attach(grp.ingress(0), 0);
    lrm1.attach(grp.ingress(1), 1);
    grp.start();
  }

  /// Submit one random request and advance virtual time by `gap`, checking
  /// physical conservation (the safety half of the acceptance criteria) at
  /// every step.
  void pump_one(double gap = 0.25) {
    AllocationRequest req;
    req.request_id = next_id++;
    req.principal = workload.uniform_u32(2);
    req.amounts = {workload.uniform(0.3, 1.5)};
    req.duration = workload.uniform(0.5, 2.0);
    client.submit(req);
    bus.run_until(bus.now() + gap);
    for (const Lrm* l : {&lrm0, &lrm1})
      for (double a : l->available()) ASSERT_GE(a, -1e-9);
  }

  /// Heal the network, let the protocol settle (heartbeats push the final
  /// commit index), then stop the timers and drain the bus.
  void heal_and_quiesce(double settle = 5.0) {
    bus.set_fault_plan(FaultPlan{});
    bus.run_until(bus.now() + settle);
    grp.stop();
    bus.run_until_idle();
  }

  /// Exactly-once + convergence + full capacity recovery: the invariant
  /// block every chaos scenario ends with. `healed` names replicas whose
  /// digests must match (all of them by default).
  void check_invariants(std::uint64_t submitted) {
    EXPECT_EQ(client.outstanding(), 0u);
    EXPECT_EQ(client.outcomes().size(), submitted);
    for (const RequestClient::Outcome& out : client.outcomes()) {
      if (!out.reply.granted) EXPECT_FALSE(out.reply.reason.empty());
    }
    EXPECT_TRUE(grp.converged()) << "replica state diverged after quiesce";
    // The converged machine decided each id at most once: no dual-leader
    // double decisions anywhere in the group's history.
    EXPECT_LE(grp.node(0).machine().decisions(), submitted);
    // All holds expired and every release landed: the pool is whole again.
    EXPECT_EQ(lrm0.active_reservations(), 0u);
    EXPECT_EQ(lrm1.active_reservations(), 0u);
    EXPECT_NEAR(lrm0.available()[0], 5.0, 1e-9);
    EXPECT_NEAR(lrm1.available()[0], 10.0, 1e-9);
  }

  std::uint64_t granted_count() const {
    std::uint64_t n = 0;
    for (const auto& out : client.outcomes()) n += out.reply.granted ? 1 : 0;
    return n;
  }

  /// Virtual seconds from `start` until the first grant resolved after it
  /// (infinity if none): the unavailability window a crash/partition cost.
  double grant_gap_after(double start) const {
    double first = std::numeric_limits<double>::infinity();
    for (const auto& out : client.outcomes())
      if (out.reply.granted && out.resolved_at >= start)
        first = std::min(first, out.resolved_at);
    return first - start;
  }
};

// ------------------------------------------------------------ leader crash ---

TEST(Failover, LeaderCrashMidTrafficRecoversWithinElectionBound) {
  FailoverRig rig(3);
  rig.bus.run_until(5.0);
  const auto leader = rig.grp.leader();
  ASSERT_TRUE(leader.has_value());

  for (int i = 0; i < 8; ++i) rig.pump_one();
  const double crash_at = rig.bus.now();
  FaultPlan plan;
  plan.crashes.push_back(CrashWindow{rig.grp.node(*leader).endpoint(), crash_at, crash_at + 12.0});
  rig.bus.set_fault_plan(plan);

  for (int i = 0; i < 60; ++i) rig.pump_one();
  ASSERT_GT(rig.bus.now(), crash_at + 12.0);  // the old leader restarted
  rig.bus.run_until(rig.bus.now() + 5.0);     // catch-up + hold expiry
  rig.heal_and_quiesce();

  rig.check_invariants(68);
  EXPECT_EQ(rig.client.deadline_denials(), 0u);  // liveness: nobody starved
  // A new leader took over and the client followed it.
  const auto new_leader = rig.grp.leader();
  ASSERT_TRUE(new_leader.has_value());
  EXPECT_NE(*new_leader, *leader);
  EXPECT_GE(rig.client.failovers() + rig.client.redirects(), 1u);
  // Liveness bound (the ISSUE acceptance criterion): service resumed
  // within a few election timeouts -- election + client backoff + retry.
  EXPECT_LE(rig.grant_gap_after(crash_at), 4.0 * kElectionMax);
  // The restarted ex-leader rejoined as a follower and caught up fully.
  EXPECT_EQ(rig.grp.node(*leader).role(), RaftNode::Role::Follower);
  EXPECT_GE(rig.grp.node(*leader).stats().restarts, 1u);
  EXPECT_EQ(rig.grp.node(*leader).applied_index(), rig.grp.node(*new_leader).applied_index());
}

TEST(Failover, BackToBackLeaderCrashes) {
  FailoverRig rig(3);
  rig.bus.run_until(5.0);
  const auto first = rig.grp.leader();
  ASSERT_TRUE(first.has_value());
  // Crash whoever leads now; once the next leader emerges, crash it too.
  // Both windows end before the run does, so all three replicas are up for
  // the convergence check.
  FaultPlan plan;
  plan.crashes.push_back(CrashWindow{rig.grp.node(*first).endpoint(), 6.0, 14.0});
  rig.bus.set_fault_plan(plan);
  for (int i = 0; i < 16; ++i) rig.pump_one();  // t in [5, 9): first crash lands
  const auto second = rig.grp.leader();
  ASSERT_TRUE(second.has_value());
  ASSERT_NE(*second, *first);
  plan.crashes.push_back(
      CrashWindow{rig.grp.node(*second).endpoint(), rig.bus.now() + 0.01, rig.bus.now() + 8.0});
  rig.bus.set_fault_plan(plan);
  for (int i = 0; i < 60; ++i) rig.pump_one();
  rig.bus.run_until(rig.bus.now() + 5.0);
  rig.heal_and_quiesce();

  rig.check_invariants(76);
  EXPECT_EQ(rig.client.deadline_denials(), 0u);
  EXPECT_GE(rig.grp.stats().restarts, 2u);
  EXPECT_GE(rig.grp.stats().elections_won, 3u);  // initial + two takeovers
}

// -------------------------------------------------------------- partitions ---

TEST(Failover, MinorityPartitionDoesNotInterruptService) {
  FailoverRig rig(3);
  rig.bus.run_until(5.0);
  const auto leader = rig.grp.leader();
  ASSERT_TRUE(leader.has_value());
  // Cut one follower off for a long window; the leader keeps its quorum.
  const std::size_t follower = (*leader + 1) % 3;
  FaultPlan plan;
  plan.partitions.push_back(Partition{6.0, 18.0, {rig.grp.node(follower).endpoint()}});
  rig.bus.set_fault_plan(plan);

  for (int i = 0; i < 60; ++i) rig.pump_one();
  rig.bus.run_until(rig.bus.now() + 5.0);
  rig.heal_and_quiesce();

  rig.check_invariants(60);
  EXPECT_EQ(rig.client.deadline_denials(), 0u);
  // The leader never lost its quorum: no grant gap longer than the
  // isolated follower's election attempts could cause.
  EXPECT_LE(rig.grant_gap_after(6.0), 2.0 * kElectionMax);
  EXPECT_GT(rig.granted_count(), 0u);
}

TEST(Failover, IsolatedLeaderCannotGrantAndMajorityTakesOver) {
  FailoverRig rig(3);
  rig.bus.run_until(5.0);
  const auto old_leader = rig.grp.leader();
  ASSERT_TRUE(old_leader.has_value());
  // The leader alone on the wrong side of the cut: the majority (with the
  // client and both LRMs) elects a replacement and keeps serving; the
  // minority leader can append but never commit, so it never emits one
  // uncertified grant.
  FaultPlan plan;
  plan.partitions.push_back(Partition{6.0, 20.0, {rig.grp.node(*old_leader).endpoint()}});
  rig.bus.set_fault_plan(plan);
  rig.bus.run_until(6.0);
  const std::uint64_t commit_before = rig.grp.node(*old_leader).commit_index();

  for (int i = 0; i < 60; ++i) rig.pump_one();
  ASSERT_GT(rig.bus.now(), 20.0);
  const auto new_leader = rig.grp.leader();
  ASSERT_TRUE(new_leader.has_value());
  EXPECT_NE(*new_leader, *old_leader);
  rig.bus.run_until(rig.bus.now() + 5.0);
  rig.heal_and_quiesce();

  rig.check_invariants(60);
  EXPECT_EQ(rig.client.deadline_denials(), 0u);
  EXPECT_LE(rig.grant_gap_after(6.0), 4.0 * kElectionMax);
  // Nothing committed on the minority side while it was cut off.
  EXPECT_GE(rig.grp.node(*old_leader).commit_index(), commit_before);
  EXPECT_EQ(rig.grp.node(*old_leader).role(), RaftNode::Role::Follower);
}

TEST(Failover, MajorityPartitionedAwayFromClientsStallsButStaysSafe) {
  // Put TWO replicas (a quorum) on the far side of the cut from the client
  // and the LRMs: the group keeps a leader but its replies cannot reach
  // anyone. Service stalls -- the safety-over-liveness tradeoff -- and
  // every stranded request resolves locally at its deadline instead of
  // hanging. After the heal, service resumes and the replicas converge.
  FailoverRig rig(3);
  rig.bus.run_until(5.0);
  const auto leader = rig.grp.leader();
  ASSERT_TRUE(leader.has_value());
  FaultPlan plan;
  plan.partitions.push_back(Partition{
      6.0, 26.0,
      {rig.grp.node(*leader).endpoint(), rig.grp.node((*leader + 1) % 3).endpoint()}});
  rig.bus.set_fault_plan(plan);

  for (int i = 0; i < 30; ++i) rig.pump_one(1.0);  // t: 5 -> 35
  rig.bus.run_until(rig.bus.now() + 10.0);
  rig.heal_and_quiesce();

  rig.check_invariants(30);
  // Requests stranded inside the window hit their deadline (resolved, not
  // hung); requests after the heal were served again.
  EXPECT_GT(rig.client.deadline_denials(), 0u);
  const double heal = 26.0;
  EXPECT_TRUE(std::isfinite(rig.grant_gap_after(heal)));
  EXPECT_GT(rig.granted_count(), 0u);
}

// ------------------------------------------------- lossy replication links ---

struct SweepResult {
  std::uint64_t granted = 0;
  std::uint64_t denied = 0;
  std::uint64_t dropped = 0;
  std::vector<std::uint64_t> digests;
  std::string transcript;
};

SweepResult run_lossy_sweep(std::uint64_t fault_seed) {
  FailoverRig rig(3, /*raft_seed=*/3, /*workload_seed=*/fault_seed ^ 0xabcd);
  rig.bus.run_until(5.0);
  // Drop, duplicate and jitter EVERY link (replication traffic included;
  // self-message timers are exempt by design, they model local clocks).
  FaultPlan plan;
  plan.seed = fault_seed;
  plan.default_link.drop = 0.10;
  plan.default_link.duplicate = 0.10;
  plan.default_link.jitter = 0.05;
  rig.bus.set_fault_plan(plan);
  for (int i = 0; i < 80; ++i) rig.pump_one();
  rig.bus.run_until(rig.bus.now() + 5.0);
  rig.heal_and_quiesce();

  rig.check_invariants(80);
  SweepResult res;
  for (const auto& out : rig.client.outcomes()) {
    res.granted += out.reply.granted ? 1 : 0;
    res.denied += out.reply.granted ? 0 : 1;
    res.transcript += std::to_string(out.reply.request_id) +
                      (out.reply.granted ? ":1;" : ":0;");
  }
  res.dropped = rig.bus.dropped();
  res.digests = rig.grp.digests();
  return res;
}

TEST(Failover, LossyReplicationLinksSeedSweepStaysSafeAndLive) {
  for (const std::uint64_t seed : {11ull, 23ull, 47ull}) {
    SCOPED_TRACE("fault seed " + std::to_string(seed));
    const SweepResult res = run_lossy_sweep(seed);
    EXPECT_GT(res.dropped, 0u) << "the network was not actually lossy";
    EXPECT_GT(res.granted, 0u);
    EXPECT_EQ(res.granted + res.denied, 80u);
    ASSERT_EQ(res.digests.size(), 3u);
    EXPECT_EQ(res.digests[0], res.digests[1]);
    EXPECT_EQ(res.digests[0], res.digests[2]);
  }
}

TEST(Failover, SameFaultSeedReplaysByteIdentically) {
  const SweepResult a = run_lossy_sweep(99);
  const SweepResult b = run_lossy_sweep(99);
  EXPECT_EQ(a.transcript, b.transcript);
  EXPECT_EQ(a.digests, b.digests);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.granted, b.granted);
}

TEST(Failover, CrashPlusLossyLinksCombined) {
  // The full gauntlet: a leader crash in the middle of a lossy-link run.
  FailoverRig rig(3, /*raft_seed=*/5);
  rig.bus.run_until(5.0);
  const auto leader = rig.grp.leader();
  ASSERT_TRUE(leader.has_value());
  FaultPlan plan;
  plan.seed = 7;
  plan.default_link.drop = 0.05;
  plan.default_link.duplicate = 0.05;
  plan.default_link.jitter = 0.03;
  plan.crashes.push_back(CrashWindow{rig.grp.node(*leader).endpoint(), 8.0, 16.0});
  rig.bus.set_fault_plan(plan);
  for (int i = 0; i < 80; ++i) rig.pump_one();
  rig.bus.run_until(rig.bus.now() + 5.0);
  rig.heal_and_quiesce();

  rig.check_invariants(80);
  EXPECT_EQ(rig.client.deadline_denials(), 0u);
  EXPECT_LE(rig.grant_gap_after(8.0), 6.0 * kElectionMax);  // lossy links slow the election
  EXPECT_GE(rig.grp.stats().restarts, 1u);
}

}  // namespace
}  // namespace agora::rms
