// Unit tests for the SchedulerBridge: the glue between the simulator's
// overflow events and the allocation engine.
#include <gtest/gtest.h>

#include "agree/topology.h"
#include "proxysim/scheduler_bridge.h"
#include "util/error.h"

namespace agora::proxysim {
namespace {

SimConfig lp_config(std::size_t n, double share) {
  SimConfig cfg;
  cfg.num_proxies = n;
  cfg.scheduler = SchedulerKind::Lp;
  cfg.agreements = agree::complete_graph(n, share);
  return cfg;
}

TEST(SchedulerBridge, NoneKeepsEverythingLocal) {
  SimConfig cfg;
  cfg.num_proxies = 3;
  cfg.scheduler = SchedulerKind::None;
  SchedulerBridge bridge(cfg);
  const RedirectDecision dec = bridge.plan(1, 7.0, {10.0, 0.0, 10.0});
  EXPECT_DOUBLE_EQ(dec.absorb[1], 7.0);
  EXPECT_DOUBLE_EQ(dec.absorb[0] + dec.absorb[2], 0.0);
}

TEST(SchedulerBridge, LpSplitsAcrossIdleDonors) {
  SchedulerBridge bridge(lp_config(3, 0.4));
  const RedirectDecision dec = bridge.plan(0, 6.0, {0.0, 100.0, 100.0});
  EXPECT_NEAR(dec.absorb[0] + dec.absorb[1] + dec.absorb[2], 6.0, 1e-6);
  EXPECT_GT(dec.absorb[1], 0.0);
  EXPECT_GT(dec.absorb[2], 0.0);
}

TEST(SchedulerBridge, LpRespectsAgreementEntitlements) {
  // 10% direct shares plus one transitive hop (0.1 * 0.1): each donor may
  // absorb at most T = 0.11 of its spare under the full closure.
  SchedulerBridge bridge(lp_config(3, 0.1));
  const RedirectDecision dec = bridge.plan(0, 50.0, {0.0, 100.0, 100.0});
  EXPECT_LE(dec.absorb[1], 11.0 + 1e-9);
  EXPECT_LE(dec.absorb[2], 11.0 + 1e-9);
  // The rest stays local.
  EXPECT_NEAR(dec.absorb[0], 50.0 - dec.absorb[1] - dec.absorb[2], 1e-6);
}

TEST(SchedulerBridge, LpWithNoSpareKeepsLocal) {
  SchedulerBridge bridge(lp_config(3, 0.4));
  const RedirectDecision dec = bridge.plan(0, 6.0, {0.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(dec.absorb[0], 6.0);
}

TEST(SchedulerBridge, ZeroOverflowIsNoop) {
  SchedulerBridge bridge(lp_config(2, 0.5));
  const RedirectDecision dec = bridge.plan(0, 0.0, {10.0, 10.0});
  EXPECT_DOUBLE_EQ(dec.absorb[0], 0.0);
  EXPECT_DOUBLE_EQ(dec.absorb[1], 0.0);
}

TEST(SchedulerBridge, EndpointUsesDirectSharesOnlyAndIgnoresLoad) {
  SimConfig cfg;
  cfg.num_proxies = 3;
  cfg.scheduler = SchedulerKind::Endpoint;
  cfg.agreements = Matrix{{0, 0, 0}, {0.5, 0, 0}, {0, 0.9, 0}};  // chain 2->1->0
  SchedulerBridge bridge(cfg);
  // Donor 1 is reported as fully loaded (zero spare); the endpoint scheme
  // is deliberately blind to that and pushes the overflow there anyway
  // (the paper's non-LP baseline "redistributes ... no matter whether they
  // are busy or not"), bounded only by the static epoch budget.
  const RedirectDecision dec = bridge.plan(0, 4.0, {0.0, 0.0, 100.0});
  EXPECT_DOUBLE_EQ(dec.absorb[2], 0.0);   // no direct 2->0 agreement
  EXPECT_NEAR(dec.absorb[1], 4.0, 1e-9);  // blindly dumped on the busy donor
  EXPECT_NEAR(dec.absorb[0], 0.0, 1e-9);
}

TEST(SchedulerBridge, RejectsBadInputs) {
  SchedulerBridge bridge(lp_config(2, 0.5));
  EXPECT_THROW(bridge.plan(5, 1.0, {1.0, 1.0}), PreconditionError);
  EXPECT_THROW(bridge.plan(0, 1.0, {1.0}), PreconditionError);
  SimConfig bad;
  bad.num_proxies = 3;
  bad.scheduler = SchedulerKind::Lp;
  bad.agreements = Matrix(2, 2);
  EXPECT_THROW(SchedulerBridge{bad}, PreconditionError);
}

TEST(SchedulerBridge, TransitivityLevelLimitsReach) {
  SimConfig cfg;
  cfg.num_proxies = 3;
  cfg.scheduler = SchedulerKind::Lp;
  cfg.agreements = Matrix{{0, 0, 0}, {0.5, 0, 0}, {0, 0.9, 0}};  // chain 2->1->0
  cfg.alloc_opts.transitive.max_level = 1;
  SchedulerBridge direct(cfg);
  const RedirectDecision d1 = direct.plan(0, 20.0, {0.0, 10.0, 100.0});
  EXPECT_DOUBLE_EQ(d1.absorb[2], 0.0);  // two hops away, not reachable

  cfg.alloc_opts.transitive.max_level = 2;
  SchedulerBridge transitive(cfg);
  const RedirectDecision d2 = transitive.plan(0, 20.0, {0.0, 10.0, 100.0});
  EXPECT_GT(d2.absorb[2], 0.0);  // now reachable via 2->1->0
}

TEST(SchedulerBridge, ReachabilityMaskExcludesStaleDonors) {
  SchedulerBridge bridge(lp_config(3, 0.4));
  // All reachable: both donors absorb.
  const RedirectDecision all = bridge.plan(0, 6.0, {0.0, 100.0, 100.0},
                                           {true, true, true});
  EXPECT_GT(all.absorb[1], 0.0);
  EXPECT_GT(all.absorb[2], 0.0);
  EXPECT_EQ(all.masked_donors, 0u);

  // Donor 2's availability is stale: it must not be planned as a donor
  // even though its reported spare is huge (graceful degradation -- no
  // phantom capacity). The overflow shifts to donor 1 / stays local.
  const RedirectDecision masked = bridge.plan(0, 6.0, {0.0, 100.0, 100.0},
                                              {true, true, false});
  EXPECT_DOUBLE_EQ(masked.absorb[2], 0.0);
  EXPECT_EQ(masked.masked_donors, 1u);
  EXPECT_NEAR(masked.absorb[0] + masked.absorb[1], 6.0, 1e-6);

  // A masked *origin* is still planned (it can always keep its own work).
  const RedirectDecision self = bridge.plan(0, 6.0, {0.0, 0.0, 0.0},
                                            {false, false, false});
  EXPECT_DOUBLE_EQ(self.absorb[0], 6.0);
  EXPECT_EQ(self.masked_donors, 2u);

  EXPECT_THROW(bridge.plan(0, 1.0, {1.0, 1.0, 1.0}, {true, true}),
               PreconditionError);
}

}  // namespace
}  // namespace agora::proxysim
