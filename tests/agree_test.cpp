// Unit tests for the agreement algebra: matrices, transitive flows,
// capacities, topology builders and the economy bridge.
#include <gtest/gtest.h>

#include <cmath>

#include "agree/capacity.h"
#include "agree/from_economy.h"
#include "agree/matrices.h"
#include "agree/topology.h"
#include "agree/transitive.h"
#include "core/economy.h"
#include "util/error.h"

namespace agora::agree {
namespace {

// -------------------------------------------------------- AgreementSystem ---

TEST(AgreementSystem, ValidateAcceptsWellFormed) {
  AgreementSystem s(3);
  s.capacity = {1, 2, 3};
  s.relative(0, 1) = 0.3;
  s.relative(0, 2) = 0.2;
  EXPECT_NO_THROW(s.validate());
  EXPECT_NEAR(s.share_out(0), 0.5, 1e-12);
}

TEST(AgreementSystem, ValidateRejectsDiagonal) {
  AgreementSystem s(2);
  s.relative(0, 0) = 0.1;
  EXPECT_THROW(s.validate(), PreconditionError);
}

TEST(AgreementSystem, ValidateRejectsOverdraftUnlessAllowed) {
  AgreementSystem s(3);
  s.relative(0, 1) = 0.6;
  s.relative(0, 2) = 0.6;
  EXPECT_THROW(s.validate(false), PreconditionError);
  EXPECT_NO_THROW(s.validate(true));
}

TEST(AgreementSystem, ValidateRejectsNegativeCapacity) {
  AgreementSystem s(1);
  s.capacity[0] = -1.0;
  EXPECT_THROW(s.validate(), PreconditionError);
}

// ------------------------------------------------------------- transitive ---

TEST(Transitive, DirectLevelEqualsS) {
  Matrix s{{0, 0.5, 0.1}, {0, 0, 0.4}, {0, 0, 0}};
  TransitiveOptions o;
  o.max_level = 1;
  const Matrix t = transitive_shares(s, o);
  EXPECT_TRUE(t.approx_equal(s, 1e-12));
}

TEST(Transitive, ChainOfTwo) {
  Matrix s{{0, 0.5, 0.1}, {0, 0, 0.4}, {0, 0, 0}};
  const Matrix t = transitive_shares(s);  // full closure
  EXPECT_NEAR(t(0, 1), 0.5, 1e-12);
  EXPECT_NEAR(t(0, 2), 0.1 + 0.5 * 0.4, 1e-12);  // direct + via node 1
  EXPECT_NEAR(t(1, 2), 0.4, 1e-12);
  EXPECT_NEAR(t(2, 0), 0.0, 1e-12);
}

TEST(Transitive, LevelZeroMeansNoSharing) {
  Matrix s{{0, 1}, {1, 0}};
  TransitiveOptions o;
  o.max_level = 0;
  EXPECT_DOUBLE_EQ(transitive_shares(s, o).max_abs(), 0.0);
}

TEST(Transitive, MonotoneInLevel) {
  const Matrix s = complete_graph(6, 0.15);
  double prev = -1.0;
  for (std::size_t level = 1; level <= 5; ++level) {
    TransitiveOptions o;
    o.max_level = level;
    const Matrix t = transitive_shares(s, o);
    double total = 0.0;
    for (double v : t.flat()) total += v;
    EXPECT_GE(total, prev - 1e-12) << "level " << level;
    prev = total;
  }
}

TEST(Transitive, CyclesAreExcluded) {
  // Two nodes backing each other: simple paths are only the single edges;
  // no geometric blow-up (contrast with walks below).
  Matrix s{{0, 0.5}, {0.5, 0}};
  const Matrix t = transitive_shares(s);
  EXPECT_NEAR(t(0, 1), 0.5, 1e-12);
  EXPECT_NEAR(t(1, 0), 0.5, 1e-12);
}

TEST(Transitive, WalksUpperBoundExact) {
  const Matrix s = complete_graph(5, 0.2);
  const Matrix exact = transitive_shares(s);
  const Matrix walks = transitive_shares_walks(s, 4);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 5; ++j) EXPECT_GE(walks(i, j) + 1e-12, exact(i, j));
}

TEST(Transitive, WalksEqualExactOnDags) {
  // On a DAG (no revisits possible) walks and simple paths coincide.
  Matrix s(4, 4);
  s(0, 1) = 0.5;
  s(0, 2) = 0.25;
  s(1, 2) = 0.3;
  s(2, 3) = 0.6;
  EXPECT_TRUE(transitive_shares_walks(s, 3).approx_equal(transitive_shares(s), 1e-12));
}

TEST(Transitive, PruningUnderestimatesSlightly) {
  const Matrix s = complete_graph(8, 0.12);
  const Matrix exact = transitive_shares(s);
  TransitiveOptions pruned;
  pruned.prune_below = 1e-4;
  const Matrix approx = transitive_shares(s, pruned);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      EXPECT_LE(approx(i, j), exact(i, j) + 1e-12);
      // Pruned mass: all simple paths of length >= 5 (product < 1e-4 at
      // share 0.12), roughly 360*0.12^5 + 720*0.12^6 + 720*0.12^7 ~ 0.011.
      EXPECT_NEAR(approx(i, j), exact(i, j), 0.02);
    }
  }
}

TEST(Transitive, PathBudgetGuardsDenseGraphs) {
  // A complete graph on 16 nodes has ~10^12 simple paths: without the
  // budget the exact DFS would run for hours. The guard throws with
  // actionable advice; pruning makes the same call tractable.
  const Matrix s = complete_graph(16, 0.05);
  TransitiveOptions tight;
  tight.max_paths = 1000000;
  EXPECT_THROW(transitive_shares(s, tight), PreconditionError);
  TransitiveOptions pruned = tight;
  pruned.prune_below = 1e-6;
  EXPECT_NO_THROW(transitive_shares(s, pruned));
  // Level caps also bound the enumeration.
  TransitiveOptions shallow = tight;
  shallow.max_level = 2;
  EXPECT_NO_THROW(transitive_shares(s, shallow));
}

TEST(Transitive, OverdraftClampCapsAtOne) {
  Matrix t{{0, 1.7}, {0.3, 0}};
  const Matrix k = overdraft_clamp(t);
  EXPECT_DOUBLE_EQ(k(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(k(1, 0), 0.3);
}

// -------------------------------------------------------------- capacity ---

TEST(Capacity, HandComputedThreeNodes) {
  AgreementSystem sys(3);
  sys.capacity = {10, 20, 30};
  sys.relative(0, 1) = 0.5;
  sys.relative(1, 2) = 0.4;
  sys.relative(0, 2) = 0.1;
  const CapacityReport rep = compute_capacities(sys);
  EXPECT_NEAR(rep.capacity[0], 10.0, 1e-12);
  EXPECT_NEAR(rep.capacity[1], 20.0 + 10.0 * 0.5, 1e-12);
  // T_02 = 0.1 + 0.5*0.4 = 0.3; C_2 = 30 + 10*0.3 + 20*0.4 = 41.
  EXPECT_NEAR(rep.capacity[2], 41.0, 1e-12);
  EXPECT_NEAR(rep.entitlement(0, 2), 3.0, 1e-12);
  EXPECT_NEAR(rep.entitlement(1, 2), 8.0, 1e-12);
}

TEST(Capacity, PaperOverdraftExample) {
  // Section 3.2: A has 10 units, shares 60% with B and 60% with C; B shares
  // 100% with C. Without the clamp C would see 6 + 6 = 12 units from A;
  // with K the flow from A is capped at 10.
  AgreementSystem sys(3);
  sys.capacity = {10, 0, 0};
  sys.relative(0, 1) = 0.6;  // A -> B
  sys.relative(0, 2) = 0.6;  // A -> C
  sys.relative(1, 2) = 1.0;  // B -> C
  const CapacityReport rep = compute_capacities(sys);
  // T_ac = 0.6 + 0.6*1.0 = 1.2 -> K = 1.0 -> U = 10 (not 12).
  EXPECT_NEAR(rep.capacity[2], 10.0, 1e-12);
}

TEST(Capacity, AbsoluteAgreementsClampedByOwnership) {
  // U_ki = min(I + A, V_k): an absolute promise larger than the owner's
  // capacity cannot materialize more than V_k.
  AgreementSystem sys(2);
  sys.capacity = {5, 0};
  sys.absolute(0, 1) = 8.0;
  const CapacityReport rep = compute_capacities(sys);
  EXPECT_NEAR(rep.capacity[1], 5.0, 1e-12);
}

TEST(Capacity, AbsolutePlusRelativeCombine) {
  AgreementSystem sys(2);
  sys.capacity = {10, 0};
  sys.relative(0, 1) = 0.3;
  sys.absolute(0, 1) = 2.0;
  const CapacityReport rep = compute_capacities(sys);
  EXPECT_NEAR(rep.capacity[1], 5.0, 1e-12);  // 10*0.3 + 2
}

TEST(Capacity, GrantingReducesOwnUse) {
  AgreementSystem sys(2);
  sys.capacity = {10, 0};
  sys.relative(0, 1) = 0.4;
  sys.retained[0] = 0.6;  // the 40% was *granted*, not shared
  const CapacityReport rep = compute_capacities(sys);
  EXPECT_NEAR(rep.capacity[0], 6.0, 1e-12);
  EXPECT_NEAR(rep.capacity[1], 4.0, 1e-12);
}

TEST(Capacity, LevelSweepMatchesPaperIntuition) {
  // Loop of 4, share 0.8: level 1 gives only the neighbor's 80%; the full
  // closure adds 0.64, 0.512 from further nodes.
  AgreementSystem sys(4);
  sys.capacity = {0, 10, 10, 10};
  sys.relative = ring(4, 0.8);
  TransitiveOptions level1;
  level1.max_level = 1;
  // Node 3 -> node 0 via the ring edge 3->0.
  const CapacityReport l1 = compute_capacities(sys, level1);
  EXPECT_NEAR(l1.capacity[0], 8.0, 1e-12);
  const CapacityReport full = compute_capacities(sys);
  EXPECT_NEAR(full.capacity[0], 10 * 0.8 + 10 * 0.64 + 10 * 0.512, 1e-12);
}

// -------------------------------------------------------------- topology ---

TEST(Topology, CompleteGraphShape) {
  const Matrix s = complete_graph(10, 0.1);
  for (std::size_t i = 0; i < 10; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < 10; ++j) {
      if (i == j) EXPECT_DOUBLE_EQ(s(i, j), 0.0);
      else EXPECT_DOUBLE_EQ(s(i, j), 0.1);
      row += s(i, j);
    }
    EXPECT_NEAR(row, 0.9, 1e-12);
  }
}

TEST(Topology, CompleteGraphRejectsOversharing) {
  EXPECT_THROW(complete_graph(10, 0.2), PreconditionError);
}

TEST(Topology, RingSkip) {
  const Matrix s = ring(10, 0.8, 3);
  for (std::size_t i = 0; i < 10; ++i)
    for (std::size_t j = 0; j < 10; ++j)
      EXPECT_DOUBLE_EQ(s(i, j), j == (i + 3) % 10 ? 0.8 : 0.0);
}

TEST(Topology, DistanceDecayMatchesFigure13Shape) {
  // 20%/10%/5%/3% at ring distances 1/2/3/>=4 over 10 nodes.
  const Matrix s = distance_decay(10, {0.20, 0.10, 0.05, 0.03});
  EXPECT_DOUBLE_EQ(s(0, 1), 0.20);
  EXPECT_DOUBLE_EQ(s(0, 9), 0.20);  // ring distance 1 the other way
  EXPECT_DOUBLE_EQ(s(0, 2), 0.10);
  EXPECT_DOUBLE_EQ(s(0, 3), 0.05);
  EXPECT_DOUBLE_EQ(s(0, 4), 0.03);
  EXPECT_DOUBLE_EQ(s(0, 5), 0.03);
  double row = 0.0;
  for (std::size_t j = 0; j < 10; ++j) row += s(0, j);
  EXPECT_NEAR(row, 2 * (0.20 + 0.10 + 0.05 + 0.03) + 0.03, 1e-12);  // 0.79
}

TEST(Topology, SparseRandomDegree) {
  const Matrix s = sparse_random(20, 3, 0.2, 99);
  for (std::size_t i = 0; i < 20; ++i) {
    std::size_t deg = 0;
    for (std::size_t j = 0; j < 20; ++j) {
      EXPECT_DOUBLE_EQ(s(i, i), 0.0);
      if (s(i, j) > 0) ++deg;
    }
    EXPECT_EQ(deg, 3u);
  }
  // Deterministic in the seed.
  EXPECT_TRUE(s.approx_equal(sparse_random(20, 3, 0.2, 99)));
  EXPECT_FALSE(s.approx_equal(sparse_random(20, 3, 0.2, 100)));
}

TEST(Topology, HierarchicalStructure) {
  const Matrix s = hierarchical(9, 3, 0.2, 0.1);
  const auto g = hierarchical_groups(9, 3);
  // Intra-group complete.
  EXPECT_DOUBLE_EQ(s(0, 1), 0.2);
  EXPECT_DOUBLE_EQ(s(1, 2), 0.2);
  // No direct edges between non-gateway members of different groups.
  EXPECT_DOUBLE_EQ(s(1, 4), 0.0);
  // Gateways (0, 3, 6) are ring-connected.
  EXPECT_DOUBLE_EQ(s(0, 3), 0.1);
  EXPECT_DOUBLE_EQ(s(3, 6), 0.1);
  EXPECT_DOUBLE_EQ(s(6, 0), 0.1);
  EXPECT_EQ(g[0], 0u);
  EXPECT_EQ(g[4], 1u);
  EXPECT_EQ(g[8], 2u);
}

// ------------------------------------------------------------ from_economy ---

TEST(FromEconomy, Example1Matrices) {
  core::Economy e;
  const auto disk = e.add_resource_type("disk", "TB");
  const auto a = e.add_principal("A", 1000.0);
  const auto b = e.add_principal("B", 100.0);
  e.add_principal("C");
  const auto d = e.add_principal("D");
  e.fund_with_resource(e.default_currency(a), disk, 10.0);
  e.fund_with_resource(e.default_currency(b), disk, 15.0);
  e.issue_absolute(e.default_currency(a), e.default_currency(e.find_principal("C")), disk, 3.0);
  e.issue_relative(e.default_currency(a), e.default_currency(b), 500.0, disk);
  e.issue_relative(e.default_currency(b), e.default_currency(d), 60.0, disk);

  const AgreementSystem sys = from_economy(e, disk);
  EXPECT_EQ(sys.size(), 4u);
  EXPECT_DOUBLE_EQ(sys.capacity[0], 10.0);
  EXPECT_DOUBLE_EQ(sys.capacity[1], 15.0);
  EXPECT_DOUBLE_EQ(sys.relative(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(sys.relative(1, 3), 0.6);
  EXPECT_DOUBLE_EQ(sys.absolute(0, 2), 3.0);
  // The enforcement layer then reproduces the paper's D value of 12 as
  // D's transitive availability.
  const CapacityReport rep = compute_capacities(sys);
  EXPECT_NEAR(rep.capacity[3], 12.0, 1e-12);
}

TEST(FromEconomy, Example2VirtualCurrenciesCollapse) {
  core::Economy e;
  const auto disk = e.add_resource_type("disk", "TB");
  const auto a = e.add_principal("A", 1000.0);
  const auto b = e.add_principal("B", 100.0);
  const auto c = e.add_principal("C", 100.0);
  const auto d = e.add_principal("D", 100.0);
  e.fund_with_resource(e.default_currency(a), disk, 10.0);
  e.fund_with_resource(e.default_currency(b), disk, 15.0);
  const auto a1 = e.create_virtual_currency(a, "A1", 100.0);
  const auto a2 = e.create_virtual_currency(a, "A2", 100.0);
  e.issue_relative(e.default_currency(a), a1, 300.0, disk);
  e.issue_relative(e.default_currency(a), a2, 500.0, disk);
  e.issue_relative(a1, e.default_currency(c), 100.0, disk);
  e.issue_relative(a2, e.default_currency(d), 40.0, disk);
  e.issue_relative(a2, e.default_currency(b), 60.0, disk);

  const AgreementSystem sys = from_economy(e, disk);
  // Chains through A's own virtual currencies fold into principal shares:
  // A->A1->C = 0.3, A->A2->D = 0.5*0.4 = 0.2, A->A2->B = 0.5*0.6 = 0.3.
  EXPECT_NEAR(sys.relative(0, 2), 0.3, 1e-12);
  EXPECT_NEAR(sys.relative(0, 3), 0.2, 1e-12);
  EXPECT_NEAR(sys.relative(0, 1), 0.3, 1e-12);
  EXPECT_DOUBLE_EQ(sys.relative(1, 0), 0.0);
}

TEST(FromEconomy, GrantingSetsRetained) {
  core::Economy e;
  const auto cpu = e.add_resource_type("cpu");
  const auto a = e.add_principal("A", 100.0);
  const auto b = e.add_principal("B");
  e.fund_with_resource(e.default_currency(a), cpu, 10.0);
  e.issue_relative(e.default_currency(a), e.default_currency(b), 40.0, cpu,
                   core::SharingMode::Granting);
  const AgreementSystem sys = from_economy(e, cpu);
  EXPECT_NEAR(sys.retained[0], 0.6, 1e-12);
  EXPECT_NEAR(sys.relative(0, 1), 0.4, 1e-12);
  const CapacityReport rep = compute_capacities(sys);
  EXPECT_NEAR(rep.capacity[0], 6.0, 1e-12);
  EXPECT_NEAR(rep.capacity[1], 4.0, 1e-12);
}

TEST(FromEconomy, ResourceFilteringByType) {
  core::Economy e;
  const auto cpu = e.add_resource_type("cpu");
  const auto disk = e.add_resource_type("disk");
  const auto a = e.add_principal("A", 100.0);
  const auto b = e.add_principal("B");
  e.fund_with_resource(e.default_currency(a), cpu, 10.0);
  e.fund_with_resource(e.default_currency(a), disk, 20.0);
  e.issue_relative(e.default_currency(a), e.default_currency(b), 50.0, cpu);

  const AgreementSystem cpu_sys = from_economy(e, cpu);
  const AgreementSystem disk_sys = from_economy(e, disk);
  EXPECT_DOUBLE_EQ(cpu_sys.capacity[0], 10.0);
  EXPECT_DOUBLE_EQ(cpu_sys.relative(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(disk_sys.capacity[0], 20.0);
  EXPECT_DOUBLE_EQ(disk_sys.relative(0, 1), 0.0);  // cpu-typed ticket filtered
}

}  // namespace
}  // namespace agora::agree
