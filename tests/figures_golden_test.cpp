// Golden-figure regression suite (ctest label: tier2-figures).
//
// Runs small-scale, in-process versions of the paper's Figure 5, 9 and 13
// experiments (same scenario structure as bench/fig*, compressed to a 2h
// "day" over 5 proxies so each run takes ~a second) and compares the
// emitted series against checked-in golden CSVs under tests/golden/, with
// explicit per-figure tolerance bands. A refactor that changes scheduler
// semantics -- admission thresholds, LP formulation, redirection split --
// shifts these series far beyond the bands and fails here instead of
// silently drifting.
//
// Regenerating the goldens (after an INTENTIONAL semantic change, with the
// diff reviewed like any other): AGORA_REGEN_GOLDEN=1 ./figures_golden_test
// rewrites the CSVs in the source tree and reports each test as skipped.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "agree/topology.h"
#include "fig_common.h"
#include "proxysim/simulator.h"
#include "trace/generator.h"

#ifndef AGORA_GOLDEN_DIR
#error "AGORA_GOLDEN_DIR must point at tests/golden"
#endif

namespace agora {
namespace {

// Small-scale scenario shared by all three figures: 5 proxies, a 2h
// compressed diurnal day in 5-minute slots, the paper's peak rate. The
// absolute numbers differ from the full figures; the *shapes* (overload at
// the peak, sharing collapsing the waits, LP beating endpoint) survive.
constexpr std::size_t kN = 5;
constexpr double kDay = 7200.0;
constexpr double kSlot = 300.0;
/// Higher than the paper's 9.5 req/s: the compressed day gives queues less
/// time to build, so the rate is raised until the peak actually overloads
/// (otherwise the figures would not discriminate between schedulers).
constexpr double kSmallPeakRate = 11.5;

std::vector<std::vector<trace::TraceRequest>> small_traces(double gap_seconds) {
  trace::GeneratorConfig gc;
  gc.peak_rate = kSmallPeakRate;
  const trace::Generator gen(gc, trace::DiurnalProfile::berkeley_like(kDay, 24));
  std::vector<std::vector<trace::TraceRequest>> ts;
  ts.reserve(kN);
  for (std::size_t p = 0; p < kN; ++p)
    ts.push_back(gen.generate(figbench::kSeedBase + p, gap_seconds * static_cast<double>(p)));
  return ts;
}

proxysim::SimConfig small_config() {
  proxysim::SimConfig cfg = figbench::base_config(kN);
  cfg.horizon = kDay;
  cfg.slot_width = kSlot;
  return cfg;
}

// ------------------------------------------------------- golden CSV plumbing

struct Series {
  std::vector<std::string> columns;
  std::vector<std::vector<double>> rows;
};

std::string golden_path(const std::string& name) {
  return std::string(AGORA_GOLDEN_DIR) + "/" + name + ".csv";
}

void write_series(const std::string& path, const Series& s) {
  std::ofstream f(path);
  ASSERT_TRUE(f) << "cannot write " << path;
  for (std::size_t c = 0; c < s.columns.size(); ++c)
    f << (c ? "," : "") << s.columns[c];
  f << '\n';
  f.precision(17);
  for (const auto& row : s.rows) {
    for (std::size_t c = 0; c < row.size(); ++c) f << (c ? "," : "") << row[c];
    f << '\n';
  }
}

Series read_series(const std::string& path) {
  Series s;
  std::ifstream f(path);
  if (!f) {
    ADD_FAILURE() << "missing golden file " << path
                  << " (regenerate with AGORA_REGEN_GOLDEN=1)";
    return s;
  }
  std::string line;
  if (!std::getline(f, line)) return s;
  std::stringstream header(line);
  std::string cell;
  while (std::getline(header, cell, ',')) s.columns.push_back(cell);
  while (std::getline(f, line)) {
    if (line.empty()) continue;
    std::stringstream row(line);
    std::vector<double> vals;
    while (std::getline(row, cell, ',')) vals.push_back(std::stod(cell));
    s.rows.push_back(std::move(vals));
  }
  return s;
}

/// Per-figure tolerance band: a value passes when it is within rel*|golden|
/// OR within abs of the golden value (whichever is looser), so near-zero
/// entries are judged absolutely and large ones relatively.
struct Tolerance {
  double rel;
  double abs;
};

void compare_series(const std::string& name, const Series& got, const Series& want,
                    Tolerance tol) {
  ASSERT_EQ(got.columns, want.columns) << name << ": column set changed";
  ASSERT_EQ(got.rows.size(), want.rows.size()) << name << ": row count changed";
  for (std::size_t r = 0; r < got.rows.size(); ++r) {
    ASSERT_EQ(got.rows[r].size(), want.rows[r].size()) << name << " row " << r;
    for (std::size_t c = 0; c < got.rows[r].size(); ++c) {
      const double g = got.rows[r][c], w = want.rows[r][c];
      const double band = std::max(tol.abs, tol.rel * std::abs(w));
      EXPECT_NEAR(g, w, band) << name << " row " << r << " col '" << got.columns[c]
                              << "' drifted outside the tolerance band";
    }
  }
}

/// Regenerate-or-compare. Returns true when the caller should skip (golden
/// regenerated instead of compared).
bool check_golden(const std::string& name, const Series& got, Tolerance tol) {
  const std::string path = golden_path(name);
  if (std::getenv("AGORA_REGEN_GOLDEN") != nullptr) {
    write_series(path, got);
    return true;
  }
  const Series want = read_series(path);
  if (!want.columns.empty()) compare_series(name, got, want, tol);
  return false;
}

// ----------------------------------------------------------------- figures

// Figure 5 (small): requests and average waiting time per slot, no sharing.
// Pure queueing -- no scheduler in the loop -- so the band is tight; the
// request counts are trace-generator output and must match almost exactly.
TEST(GoldenFigures, Fig05NoSharingShape) {
  const auto traces = small_traces(0.0);
  const proxysim::SimMetrics m = figbench::run_sim(small_config(), traces);

  Series s;
  s.columns = {"slot", "requests", "avg_wait_s"};
  for (std::size_t i = 0; i < m.wait_by_slot.slots(); ++i)
    s.rows.push_back({static_cast<double>(i), static_cast<double>(m.requests_by_slot[i]),
                      m.wait_by_slot.slot(i).mean()});
  if (check_golden("fig05_small", s, Tolerance{0.02, 0.05}))
    GTEST_SKIP() << "golden regenerated";
}

// Figure 9 (small): ring agreement structure (share 80% with the next proxy
// over), swept over the transitivity level the scheduler enforces. The
// level-1 -> level-4 wait collapse is the figure's whole point; the band is
// wider because the LP scheduler's discrete consult decisions amplify tiny
// timing shifts.
TEST(GoldenFigures, Fig09RingTransitivityShape) {
  const auto traces = small_traces(kDay / static_cast<double>(kN));

  Series s;
  s.columns = {"level", "mean_wait_s", "peak_wait_s", "redirected_pct"};
  for (std::size_t level : {1u, 2u, 4u}) {
    proxysim::SimConfig cfg = small_config();
    cfg.scheduler = proxysim::SchedulerKind::Lp;
    cfg.agreements = agree::ring(kN, 0.80, 1);
    cfg.alloc_opts.transitive.max_level = level;
    const proxysim::SimMetrics m = figbench::run_sim(cfg, traces);
    s.rows.push_back({static_cast<double>(level), m.mean_wait(), m.peak_slot_wait(),
                      100.0 * m.redirected_fraction()});
  }
  if (check_golden("fig09_small", s, Tolerance{0.10, 0.10}))
    GTEST_SKIP() << "golden regenerated";

  // Shape assertion independent of the golden numbers: deeper transitivity
  // must not make the mean wait worse.
  EXPECT_LE(s.rows[2][1], s.rows[0][1] + 0.05);
}

// Figure 13 (small): the centralized LP scheme vs proportional endpoint
// enforcement under the distance-decay agreement structure.
TEST(GoldenFigures, Fig13LpVsEndpointShape) {
  const auto traces = small_traces(kDay / static_cast<double>(kN));
  const Matrix agreements = agree::distance_decay(kN, {0.20, 0.10, 0.05, 0.03});

  Series s;
  s.columns = {"scheduler", "mean_wait_s", "peak_wait_s", "redirected_pct"};
  for (proxysim::SchedulerKind kind :
       {proxysim::SchedulerKind::Lp, proxysim::SchedulerKind::Endpoint}) {
    proxysim::SimConfig cfg = small_config();
    cfg.scheduler = kind;
    cfg.agreements = agreements;
    const proxysim::SimMetrics m = figbench::run_sim(cfg, traces);
    s.rows.push_back({kind == proxysim::SchedulerKind::Lp ? 0.0 : 1.0, m.mean_wait(),
                      m.peak_slot_wait(), 100.0 * m.redirected_fraction()});
  }
  if (check_golden("fig13_small", s, Tolerance{0.10, 0.10}))
    GTEST_SKIP() << "golden regenerated";

  // Shape assertion: LP must not lose to the endpoint baseline on mean wait.
  EXPECT_LE(s.rows[0][1], s.rows[1][1] + 0.05);
}

}  // namespace
}  // namespace agora
