// Stress tests for the sharded EnforcementEngine (DESIGN.md §11): many
// producer threads hammering submit()/consult() while mutators apply,
// release and rewrite capacities concurrently; random shard counts with
// construction/destruction churn; and the GRM running its decision path on
// an engine backend while the rms fault injector drops, duplicates and
// crashes traffic. Run under the tsan preset by tools/tier1.sh -- the point
// of these tests is the interleavings, not the arithmetic.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "agree/matrices.h"
#include "agree/topology.h"
#include "engine/engine.h"
#include "rms/bus.h"
#include "rms/client.h"
#include "rms/fault.h"
#include "rms/grm.h"
#include "rms/lrm.h"
#include "util/error.h"
#include "util/rng.h"

namespace agora::engine {
namespace {

/// `islands` disjoint complete-graph sharing groups of `per` participants:
/// connectivity partitioning splits these into one component per island.
agree::AgreementSystem island_economy(std::size_t islands, std::size_t per, double share,
                                      double cap = 10.0) {
  const std::size_t n = islands * per;
  agree::AgreementSystem sys(n);
  for (std::size_t i = 0; i < n; ++i) sys.capacity[i] = cap + static_cast<double>(i % per);
  for (std::size_t g = 0; g < islands; ++g)
    for (std::size_t i = g * per; i < (g + 1) * per; ++i)
      for (std::size_t j = g * per; j < (g + 1) * per; ++j)
        if (i != j) sys.relative(i, j) = share;
  return sys;
}

agree::AgreementSystem connected_economy(std::size_t n, double share) {
  agree::AgreementSystem sys(n);
  for (std::size_t i = 0; i < n; ++i) sys.capacity[i] = 5.0 + static_cast<double>(i);
  sys.relative = agree::complete_graph(n, share);
  return sys;
}

bool decision_status(const Status& s) {
  switch (s.code()) {
    case StatusCode::Ok:
    case StatusCode::Insufficient:
    case StatusCode::Denied:
    case StatusCode::SolverFailed:
      return true;
    default:
      return false;
  }
}

/// The multi-producer hammer: `producers` threads flood submit() (some with
/// deliberately bad arguments), while `mutators` threads run
/// consult->apply->release cycles and capacity rewrites through the same
/// engine. Everything must resolve with a sane status and the final
/// published snapshot must return to the starting capacities.
void hammer(const agree::AgreementSystem& sys, std::size_t threads, std::size_t producers,
            std::size_t mutators, std::size_t ops_per_producer) {
  const std::vector<double> original = sys.capacity;
  EngineOptions opts;
  opts.threads = threads;
  opts.sink = obs::Sink::none();
  opts.alloc.sink = obs::Sink::none();
  EnforcementEngine eng(sys, opts);

  std::atomic<std::uint64_t> decided{0};
  std::atomic<std::uint64_t> invalid{0};
  std::atomic<std::uint64_t> bad_status{0};
  std::atomic<std::uint64_t> mutator_consults{0};

  std::vector<std::thread> crew;
  for (std::size_t p = 0; p < producers; ++p) {
    crew.emplace_back([&, p] {
      Pcg32 rng(1000 + 7 * static_cast<std::uint64_t>(p));
      std::vector<std::future<EngineResult>> pending;
      for (std::size_t i = 0; i < ops_per_producer; ++i) {
        // 1-in-8 submissions are invalid on purpose (unknown principal or a
        // negative amount): they must resolve InvalidArgument, never throw.
        const bool poison = rng.uniform_u32(8) == 0;
        const std::size_t who =
            poison && rng.uniform_u32(2) == 0 ? sys.size() + rng.uniform_u32(4)
                                              : rng.uniform_u32(static_cast<std::uint32_t>(sys.size()));
        const double amount = poison && who < sys.size() ? -1.0 : rng.uniform(0.1, 6.0);
        pending.push_back(eng.submit(who, amount));
        if (pending.size() >= 8) {
          for (auto& f : pending) {
            const EngineResult r = f.get();
            if (r.status.code() == StatusCode::InvalidArgument)
              invalid.fetch_add(1, std::memory_order_relaxed);
            else if (decision_status(r.status))
              decided.fetch_add(1, std::memory_order_relaxed);
            else
              bad_status.fetch_add(1, std::memory_order_relaxed);
          }
          pending.clear();
        }
      }
      for (auto& f : pending) {
        const EngineResult r = f.get();
        if (r.status.code() == StatusCode::InvalidArgument)
          invalid.fetch_add(1, std::memory_order_relaxed);
        else if (decision_status(r.status))
          decided.fetch_add(1, std::memory_order_relaxed);
        else
          bad_status.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::size_t m = 0; m < mutators; ++m) {
    crew.emplace_back([&, m] {
      Pcg32 rng(9000 + 13 * static_cast<std::uint64_t>(m));
      for (std::size_t i = 0; i < ops_per_producer / 4 + 2; ++i) {
        const std::size_t who = rng.uniform_u32(static_cast<std::uint32_t>(sys.size()));
        try {
          const alloc::AllocationPlan plan = eng.consult(who, rng.uniform(0.1, 2.0));
          mutator_consults.fetch_add(1, std::memory_order_relaxed);
          if (plan.satisfied()) {
            eng.apply(plan);
            eng.release(plan.draw);
          }
          if (i % 3 == 0) eng.set_capacities(std::span<const double>(original));
        } catch (const PreconditionError&) {
          // Two mutators can race consult->apply: the loser's plan may draw
          // capacity the winner already took. A rejection is the correct
          // outcome; silent over-draw would be the bug.
        }
      }
      // Leave the economy exactly where it started.
      eng.set_capacities(std::span<const double>(original));
    });
  }
  for (std::thread& t : crew) t.join();
  eng.drain();

  EXPECT_EQ(bad_status.load(), 0u);
  EXPECT_GT(decided.load(), 0u);
  EXPECT_GT(invalid.load(), 0u);  // the poison submissions really happened

  // Every valid submission became exactly one shard-processed consult.
  const EngineStats st = eng.stats();
  std::uint64_t processed = 0;
  for (const ShardStats& s : st.shard) processed += s.consults;
  EXPECT_EQ(processed, decided.load() + mutator_consults.load());
  EXPECT_EQ(st.epoch, eng.epoch());

  // Mutations all balanced out: the published snapshot is back to the
  // starting capacities and availability is non-negative everywhere.
  const auto snap = eng.snapshot();
  ASSERT_EQ(snap->capacity.size(), sys.size());
  for (std::size_t i = 0; i < sys.size(); ++i) {
    EXPECT_NEAR(snap->capacity[i], original[i], 1e-6) << "participant " << i;
    EXPECT_GE(snap->available[i], -1e-9);
  }
  for (std::size_t i = 0; i < sys.size(); ++i) EXPECT_GE(eng.available_to(i), -1e-9);
}

TEST(EngineStress, ManyProducersOnComponentShards) {
  const agree::AgreementSystem sys = island_economy(8, 4, 0.25);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}})
    hammer(sys, threads, /*producers=*/4, /*mutators=*/2, /*ops_per_producer=*/40);
}

TEST(EngineStress, ManyProducersOnReplicatedShards) {
  // A connected economy forces the hash-fallback replicas; mutations must
  // keep every replica identical while producers read through them.
  const agree::AgreementSystem sys = connected_economy(6, 0.2);
  hammer(sys, /*threads=*/3, /*producers=*/3, /*mutators=*/2, /*ops_per_producer=*/24);
}

TEST(EngineStress, RandomShardCountChurn) {
  // Construction/teardown churn at rng-chosen shard counts: in-flight
  // futures submitted right before destruction must still resolve (the
  // queue drains before the workers join).
  const agree::AgreementSystem sys = island_economy(4, 3, 0.3);
  Pcg32 rng(424242);
  for (std::size_t round = 0; round < 10; ++round) {
    EngineOptions opts;
    opts.threads = 1 + rng.uniform_u32(8);
    opts.sink = obs::Sink::none();
    opts.alloc.sink = obs::Sink::none();
    std::vector<std::future<EngineResult>> pending;
    {
      EnforcementEngine eng(sys, opts);
      EXPECT_LE(eng.num_shards(), opts.threads);
      std::vector<std::thread> producers;
      std::mutex mu;
      for (std::size_t p = 0; p < 2; ++p) {
        producers.emplace_back([&, p] {
          Pcg32 local(round * 100 + p);
          for (std::size_t i = 0; i < 10; ++i) {
            auto f = eng.submit(local.uniform_u32(static_cast<std::uint32_t>(sys.size())),
                                local.uniform(0.1, 3.0));
            std::lock_guard<std::mutex> lock(mu);
            pending.push_back(std::move(f));
          }
        });
      }
      for (std::thread& t : producers) t.join();
      // Engine destructs here with some futures possibly still queued.
    }
    for (auto& f : pending) {
      const EngineResult r = f.get();
      EXPECT_TRUE(decision_status(r.status) || r.status.code() == StatusCode::Unavailable)
          << r.status.to_string();
    }
  }
}

// --------------------------------------------------- GRM on the engine ---

std::vector<agree::AgreementSystem> two_site_systems(double cap0, double cap1, double share10) {
  agree::AgreementSystem cpu(2);
  cpu.capacity = {cap0, cap1};
  cpu.relative(1, 0) = share10;
  return {cpu};
}

struct ChaosResult {
  std::string transcript;
  std::size_t granted = 0;
  std::size_t denied = 0;
  std::uint64_t bus_dropped = 0;
};

/// run_drop_chaos from rms_chaos_test.cpp, but with the GRM's decision
/// backend fronted by a 2-shard EnforcementEngine (GrmOptions::engine_threads)
/// and a crash window layered on top of the lossy links.
ChaosResult run_engine_chaos(std::uint64_t fault_seed) {
  rms::MessageBus bus;
  rms::GrmOptions gopts;
  gopts.engine_threads = 2;
  gopts.reserve_attempts = 6;
  gopts.reserve_backoff = 0.1;
  gopts.reserve_backoff_cap = 1.0;
  gopts.sink = obs::Sink::none();
  alloc::AllocatorOptions aopts;
  aopts.sink = obs::Sink::none();
  rms::Grm grm(bus, two_site_systems(5.0, 10.0, 0.5), aopts, /*decision_latency=*/0.01, gopts);
  rms::Lrm lrm0(bus, {5.0}, 0.01), lrm1(bus, {10.0}, 0.01);
  grm.register_lrm(0, lrm0.endpoint());
  grm.register_lrm(1, lrm1.endpoint());
  lrm0.attach(grm.endpoint(), 0);
  lrm1.attach(grm.endpoint(), 1);
  bus.run_until_idle();

  rms::FaultPlan plan;
  plan.seed = fault_seed;
  plan.default_link.drop = 0.15;
  plan.default_link.duplicate = 0.05;
  plan.crashes.push_back(rms::CrashWindow{lrm0.endpoint(), 8.0, 10.0});
  bus.set_fault_plan(plan);

  rms::ClientOptions copts;
  copts.max_attempts = 8;
  copts.retry_backoff = 0.2;
  copts.backoff_cap = 2.0;
  copts.deadline = 30.0;
  copts.send_latency = 0.01;
  rms::RequestClient client(bus, grm.endpoint(), copts);

  Pcg32 rng(42);
  const std::size_t kRequests = 40;
  for (std::uint64_t id = 1; id <= kRequests; ++id) {
    rms::AllocationRequest req;
    req.request_id = id;
    req.principal = rng.uniform_u32(2);
    req.amounts = {rng.uniform(0.5, 3.0)};
    req.duration = rng.uniform(0.5, 3.0);
    client.submit(req);
    bus.run_until(bus.now() + 0.5);
    for (const rms::Lrm* l : {&lrm0, &lrm1})
      for (double a : l->available()) EXPECT_GE(a, -1e-9);
  }
  bus.run_until_idle();

  EXPECT_EQ(client.outstanding(), 0u);
  EXPECT_EQ(client.outcomes().size(), kRequests);
  ChaosResult res;
  for (const rms::RequestClient::Outcome& out : client.outcomes()) {
    if (out.reply.granted) {
      ++res.granted;
    } else {
      ++res.denied;
      EXPECT_FALSE(out.reply.reason.empty());
    }
    char buf[96];
    std::snprintf(buf, sizeof buf, "%llu:%d;",
                  static_cast<unsigned long long>(out.reply.request_id),
                  out.reply.granted ? 1 : 0);
    res.transcript += buf;
  }
  EXPECT_LE(grm.grants(), kRequests);
  res.bus_dropped = bus.dropped();
  return res;
}

TEST(EngineStress, GrmOnEngineSurvivesChaos) {
  const ChaosResult res = run_engine_chaos(777);
  EXPECT_GT(res.bus_dropped, 0u);
  EXPECT_GT(res.granted, 0u);
  EXPECT_EQ(res.granted + res.denied, 40u);
}

TEST(EngineStress, GrmOnEngineReplaysDeterministically) {
  // The bus serializes the GRM, so even a 2-shard engine backend must make
  // the whole fault-injected run a deterministic function of the seed.
  const ChaosResult a = run_engine_chaos(2024);
  const ChaosResult b = run_engine_chaos(2024);
  EXPECT_EQ(a.transcript, b.transcript);
  EXPECT_EQ(a.granted, b.granted);
  EXPECT_EQ(a.bus_dropped, b.bus_dropped);
}

}  // namespace
}  // namespace agora::engine
