// Randomized stress tests ("fuzz-lite"): long random operation sequences
// against the economy, larger LPs that force the revised simplex through
// its refactorization path, and randomized simulator configurations. These
// assert *invariants*, not specific values.
#include <gtest/gtest.h>

#include <cmath>

#include "agree/capacity.h"
#include "agree/from_economy.h"
#include "core/economy.h"
#include "core/valuation.h"
#include "lp/solve.h"
#include "proxysim/simulator.h"
#include "rms/bus.h"
#include "rms/client.h"
#include "rms/grm.h"
#include "rms/lrm.h"
#include "trace/generator.h"
#include "util/rng.h"

namespace agora {
namespace {

// ------------------------------------------------------------ economy fuzz ---

class EconomyFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EconomyFuzz, RandomOperationSequencesKeepInvariants) {
  Pcg32 rng(GetParam());
  core::Economy e;
  std::vector<core::ResourceTypeId> resources;
  std::vector<core::PrincipalId> principals;
  std::vector<core::CurrencyId> currencies;
  std::vector<core::TicketId> live_tickets;

  resources.push_back(e.add_resource_type("r0"));
  principals.push_back(e.add_principal("p0", 100.0));
  currencies.push_back(e.default_currency(principals[0]));

  for (int step = 0; step < 200; ++step) {
    const double dice = rng.next_double();
    try {
      if (dice < 0.08 && resources.size() < 4) {
        resources.push_back(e.add_resource_type("r" + std::to_string(resources.size())));
      } else if (dice < 0.20) {
        const auto p =
            e.add_principal("p" + std::to_string(principals.size()), rng.uniform(10.0, 1000.0));
        principals.push_back(p);
        currencies.push_back(e.default_currency(p));
      } else if (dice < 0.28) {
        const auto owner = principals[rng.uniform_u32(principals.size())];
        currencies.push_back(e.create_virtual_currency(
            owner, "v" + std::to_string(currencies.size()), rng.uniform(10.0, 500.0)));
      } else if (dice < 0.45) {
        live_tickets.push_back(
            e.fund_with_resource(currencies[rng.uniform_u32(currencies.size())],
                                 resources[rng.uniform_u32(resources.size())],
                                 rng.uniform(0.0, 50.0)));
      } else if (dice < 0.70) {
        const auto from = currencies[rng.uniform_u32(currencies.size())];
        const auto to = currencies[rng.uniform_u32(currencies.size())];
        if (from == to) continue;
        // Keep issued shares small so valuation cycles stay contractive.
        const double face = e.currency(from).face_value * rng.uniform(0.0, 0.15);
        live_tickets.push_back(e.issue_relative(from, to, face,
                                                rng.next_double() < 0.5
                                                    ? resources[rng.uniform_u32(resources.size())]
                                                    : core::ResourceTypeId{}));
      } else if (dice < 0.85) {
        const auto from = currencies[rng.uniform_u32(currencies.size())];
        const auto to = currencies[rng.uniform_u32(currencies.size())];
        if (from == to) continue;
        live_tickets.push_back(e.issue_absolute(from, to,
                                                resources[rng.uniform_u32(resources.size())],
                                                rng.uniform(0.0, 10.0)));
      } else if (dice < 0.93 && !live_tickets.empty()) {
        const std::size_t idx = rng.uniform_u32(static_cast<std::uint32_t>(live_tickets.size()));
        e.revoke(live_tickets[idx]);
        live_tickets.erase(live_tickets.begin() + static_cast<std::ptrdiff_t>(idx));
      } else {
        const auto c = currencies[rng.uniform_u32(currencies.size())];
        e.set_face_value(c, rng.uniform(10.0, 1000.0));
      }
    } catch (const PreconditionError&) {
      // Randomly generated preconditions can fail (duplicate names etc.);
      // the economy must stay consistent regardless.
    }

    if (step % 40 == 39) {
      e.check_consistency();
      const core::Valuation v = core::value_economy(e);
      for (std::size_t c = 0; c < e.num_currencies(); ++c)
        for (std::size_t r = 0; r < e.num_resource_types(); ++r) {
          const double val = v.currency_value(core::CurrencyId(c), core::ResourceTypeId(r));
          EXPECT_TRUE(std::isfinite(val));
          EXPECT_GE(val, 0.0);
        }
      // The bridge must accept whatever the fuzzer built.
      for (std::size_t r = 0; r < e.num_resource_types(); ++r) {
        const agree::AgreementSystem sys = agree::from_economy(e, core::ResourceTypeId(r));
        const agree::CapacityReport rep = agree::compute_capacities(sys);
        for (double cap : rep.capacity) {
          EXPECT_TRUE(std::isfinite(cap));
          EXPECT_GE(cap, -1e-9);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EconomyFuzz, ::testing::Range<std::uint64_t>(100, 108));

// ------------------------------------------------- revised simplex, larger ---

TEST(RevisedSimplexStress, RefactorizationPathExercised) {
  // An LP big enough to exceed kRefactorInterval pivots: dense random
  // feasible system with ~80 variables and ~60 rows.
  Pcg32 rng(4242);
  lp::Problem p;
  const std::size_t n = 80, m = 60;
  std::vector<double> interior(n);
  for (std::size_t j = 0; j < n; ++j) {
    interior[j] = rng.uniform(0.0, 1.0);
    p.add_variable("x" + std::to_string(j), 0.0, 3.0, rng.uniform(-2.0, 2.0));
  }
  for (std::size_t i = 0; i < m; ++i) {
    std::vector<double> coeffs(n);
    double at_interior = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      coeffs[j] = rng.uniform(-1.0, 1.0);
      at_interior += coeffs[j] * interior[j];
    }
    p.add_constraint(std::move(coeffs), lp::Relation::LessEqual, at_interior + 0.25);
  }
  lp::SolveOptions rev_opts;
  rev_opts.backend = lp::Backend::Revised;
  rev_opts.presolve = false;  // the iteration-count assertion targets the raw solver
  lp::SolveOptions tab_opts;
  tab_opts.backend = lp::Backend::Tableau;
  tab_opts.presolve = false;
  const lp::SolveResult rev = lp::solve(p, rev_opts);
  const lp::SolveResult tab = lp::solve(p, tab_opts);
  ASSERT_EQ(rev.status, lp::Status::Optimal);
  ASSERT_EQ(tab.status, lp::Status::Optimal);
  EXPECT_GT(rev.iterations, lp::kRefactorInterval);
  EXPECT_NEAR(rev.objective, tab.objective, 1e-4);
  EXPECT_LE(p.max_violation(rev.x), 1e-5);
}

// ------------------------------------------------------- simulator configs ---

class SimulatorFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimulatorFuzz, RandomConfigsConserveWork) {
  Pcg32 rng(GetParam());
  const std::size_t n = 2 + rng.uniform_u32(4);
  proxysim::SimConfig cfg;
  cfg.num_proxies = n;
  cfg.horizon = 1800.0;
  cfg.slot_width = 300.0;
  cfg.scheduler = static_cast<proxysim::SchedulerKind>(rng.uniform_u32(3));
  if (cfg.scheduler != proxysim::SchedulerKind::None) {
    Matrix s(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      double budget = 1.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j || rng.next_double() < 0.4) continue;
        const double v = rng.uniform(0.0, budget * 0.5);
        s(i, j) = v;
        budget -= v;
      }
    }
    cfg.agreements = s;
  }
  cfg.redirect_cost = rng.next_double() < 0.5 ? 0.0 : rng.uniform(0.0, 0.3);
  cfg.queue_threshold = rng.uniform(1.0, 20.0);
  cfg.consult_cooldown = rng.uniform(1.0, 60.0);
  cfg.planning_window = rng.uniform(30.0, 900.0);
  cfg.power.assign(n, 0.0);
  for (auto& pw : cfg.power) pw = rng.uniform(0.5, 2.0);

  trace::GeneratorConfig gc;
  gc.peak_rate = rng.uniform(1.0, 12.0);
  const trace::Generator gen(gc, trace::DiurnalProfile::flat(1.0, cfg.horizon, 6));
  std::vector<std::vector<trace::TraceRequest>> traces;
  std::uint64_t total = 0;
  for (std::size_t p = 0; p < n; ++p) {
    traces.push_back(gen.generate(GetParam() * 31 + p));
    total += traces.back().size();
  }

  const proxysim::SimMetrics m = proxysim::Simulator(cfg).run(traces);
  EXPECT_EQ(m.total_requests, total);
  EXPECT_EQ(m.wait_overall.count(), total);
  EXPECT_GE(m.mean_wait(), 0.0);
  EXPECT_TRUE(std::isfinite(m.mean_wait()));
  EXPECT_LE(m.redirected_requests, total);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorFuzz, ::testing::Range<std::uint64_t>(500, 512));

// ------------------------------------------------------------- rms chaos ---

class RmsChaosFuzz : public ::testing::TestWithParam<std::uint64_t> {};

// Random envelope loss/duplication/reordering against a hardened
// Grm + 2 LRM rig: whatever the network does, every request resolves,
// granted draws never exceed physical capacity, and all capacity comes
// back once the holds expire (conservation).
TEST_P(RmsChaosFuzz, RandomFaultsPreserveConservation) {
  Pcg32 rng(GetParam());
  rms::MessageBus bus;
  agree::AgreementSystem cpu(2);
  cpu.capacity = {4.0, 12.0};
  cpu.relative(1, 0) = 0.5;
  rms::GrmOptions gopts;
  gopts.reserve_attempts = 5;
  gopts.reserve_backoff = 0.1;
  gopts.reserve_backoff_cap = 1.0;
  rms::Grm grm(bus, {cpu}, {}, /*decision_latency=*/0.01, gopts);
  rms::Lrm lrm0(bus, {4.0}, 0.01), lrm1(bus, {12.0}, 0.01);
  grm.register_lrm(0, lrm0.endpoint());
  grm.register_lrm(1, lrm1.endpoint());
  lrm0.attach(grm.endpoint(), 0);
  lrm1.attach(grm.endpoint(), 1);
  bus.run_until_idle();

  rms::FaultPlan plan;
  plan.seed = GetParam() * 977 + 13;
  plan.default_link.drop = rng.uniform(0.0, 0.35);
  plan.default_link.duplicate = rng.uniform(0.0, 0.35);
  plan.default_link.jitter = rng.uniform(0.0, 0.5);
  bus.set_fault_plan(plan);

  rms::ClientOptions copts;
  copts.max_attempts = 8;
  copts.retry_backoff = 0.2;
  copts.backoff_cap = 1.0;
  copts.deadline = 30.0;
  copts.send_latency = 0.01;
  rms::RequestClient client(bus, grm.endpoint(), copts);

  const std::size_t kRequests = 40;
  for (std::uint64_t id = 1; id <= kRequests; ++id) {
    rms::AllocationRequest req;
    req.request_id = id;
    req.principal = rng.uniform_u32(2);
    req.amounts = {rng.uniform(0.5, 4.0)};
    req.duration = rng.uniform(0.2, 2.0);
    client.submit(req);
    bus.run_until(bus.now() + rng.uniform(0.05, 0.6));
  }
  bus.run_until_idle();

  EXPECT_EQ(client.outstanding(), 0u);
  EXPECT_EQ(client.outcomes().size(), kRequests);
  for (const rms::RequestClient::Outcome& out : client.outcomes()) {
    EXPECT_LE(out.latency(), copts.deadline + 1e-9);
    if (out.reply.granted) {
      EXPECT_EQ(out.reply.draws.size(), 1u);
      if (out.reply.draws.size() == 1) {
        EXPECT_LE(out.reply.draws[0][0], 4.0 + 1e-9);
        EXPECT_LE(out.reply.draws[0][1], 12.0 + 1e-9);
      }
    } else {
      EXPECT_FALSE(out.reply.reason.empty());
    }
  }
  // Conservation: everything granted was eventually released.
  EXPECT_EQ(lrm0.active_reservations(), 0u);
  EXPECT_EQ(lrm1.active_reservations(), 0u);
  EXPECT_NEAR(lrm0.available()[0], 4.0, 1e-9);
  EXPECT_NEAR(lrm1.available()[0], 12.0, 1e-9);
  EXPECT_LE(grm.decisions(), kRequests);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RmsChaosFuzz, ::testing::Range<std::uint64_t>(900, 907));

}  // namespace
}  // namespace agora
