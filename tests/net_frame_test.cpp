// Tests for the wire framing layer (DESIGN.md §14.1-14.2): header codec
// round-trips, incremental decoding under arbitrary chunking, CRC and
// bounds enforcement, and a deterministic seeded fuzz corpus -- truncated,
// oversized, bit-flipped, version-skewed, and garbage frames must produce a
// clean DecodeError or NeedMore, never a crash or over-read (tier1.sh runs
// this binary under ASan/UBSan).
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "net/frame.h"
#include "net/wire.h"
#include "util/rng.h"

namespace agora::net {
namespace {

Frame make_frame(FrameType type, std::uint64_t rid, std::vector<std::uint8_t> payload,
                 std::uint64_t deadline_us = 0) {
  Frame f;
  f.type = type;
  f.request_id = rid;
  f.deadline_us = deadline_us;
  f.payload = std::move(payload);
  return f;
}

std::vector<std::uint8_t> encode(const Frame& f) {
  std::vector<std::uint8_t> buf;
  encode_frame(f, buf);
  return buf;
}

/// Feed `bytes` in chunks of `chunk` and expect exactly the given frames.
void expect_decodes(const std::vector<std::uint8_t>& bytes, std::size_t chunk,
                    const std::vector<Frame>& expect) {
  FrameDecoder dec(kDefaultMaxPayload);
  std::vector<Frame> got;
  for (std::size_t off = 0; off < bytes.size(); off += chunk) {
    const std::size_t n = std::min(chunk, bytes.size() - off);
    dec.feed(std::span<const std::uint8_t>(bytes.data() + off, n));
    Frame f;
    while (dec.next(f) == FrameDecoder::Result::Frame) got.push_back(f);
  }
  Frame leftover;
  ASSERT_EQ(dec.next(leftover), FrameDecoder::Result::NeedMore) << "undecoded bytes left";
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(got[i].type, expect[i].type);
    EXPECT_EQ(got[i].request_id, expect[i].request_id);
    EXPECT_EQ(got[i].deadline_us, expect[i].deadline_us);
    EXPECT_EQ(got[i].payload, expect[i].payload);
  }
}

// ------------------------------------------------------------------ crc32 ---

TEST(Crc32, MatchesTheIeeeCheckVector) {
  const char* s = "123456789";
  EXPECT_EQ(crc32(std::span<const std::uint8_t>(
                reinterpret_cast<const std::uint8_t*>(s), 9)),
            0xCBF43926u);
  EXPECT_EQ(crc32(std::span<const std::uint8_t>()), 0u);
}

// ------------------------------------------------------------ round trips ---

TEST(FrameCodec, RoundTripsAcrossChunkSizes) {
  std::vector<Frame> frames;
  frames.push_back(make_frame(FrameType::Ping, 1, {}));
  frames.push_back(make_frame(FrameType::Consult, 2, {1, 2, 3, 4, 5}, 125'000));
  frames.push_back(make_frame(FrameType::ConsultReply, 3,
                              std::vector<std::uint8_t>(1024, 0xAB)));
  std::vector<std::uint8_t> stream;
  for (const Frame& f : frames) {
    const auto one = encode(f);
    stream.insert(stream.end(), one.begin(), one.end());
  }
  // Whole buffer, byte-at-a-time, and awkward primes must all decode the
  // same three frames.
  for (const std::size_t chunk : {stream.size(), std::size_t{1}, std::size_t{7},
                                  std::size_t{31}, std::size_t{kHeaderSize}})
    expect_decodes(stream, chunk, frames);
}

TEST(FrameCodec, EmptyPayloadAndMaxPayloadRoundTrip) {
  FrameDecoder dec(/*max_payload=*/256);
  const Frame big = make_frame(FrameType::Info, 9, std::vector<std::uint8_t>(256, 7));
  const auto bytes = encode(big);
  dec.feed(std::span<const std::uint8_t>(bytes.data(), bytes.size()));
  Frame out;
  ASSERT_EQ(dec.next(out), FrameDecoder::Result::Frame);
  EXPECT_EQ(out.payload.size(), 256u);
}

// ---------------------------------------------------------------- rejects ---

TEST(FrameDecoder, RejectsBadMagic) {
  auto bytes = encode(make_frame(FrameType::Ping, 1, {}));
  bytes[0] ^= 0xFF;
  FrameDecoder dec(kDefaultMaxPayload);
  dec.feed(std::span<const std::uint8_t>(bytes.data(), bytes.size()));
  Frame out;
  ASSERT_EQ(dec.next(out), FrameDecoder::Result::Error);
  EXPECT_EQ(dec.error(), DecodeError::BadMagic);
  // Sticky: the decoder stays dead after an error.
  dec.feed(std::span<const std::uint8_t>(bytes.data(), bytes.size()));
  EXPECT_EQ(dec.next(out), FrameDecoder::Result::Error);
}

TEST(FrameDecoder, RejectsVersionSkew) {
  auto bytes = encode(make_frame(FrameType::Ping, 1, {}));
  bytes[4] = kWireVersion + 1;  // version byte; checked before the checksum
  FrameDecoder dec(kDefaultMaxPayload);
  dec.feed(std::span<const std::uint8_t>(bytes.data(), bytes.size()));
  Frame out;
  ASSERT_EQ(dec.next(out), FrameDecoder::Result::Error);
  EXPECT_EQ(dec.error(), DecodeError::BadVersion);
}

TEST(FrameDecoder, RejectsOversizedPayloadFromHeaderAlone) {
  // A header advertising a huge payload must die at the header, before any
  // payload allocation or read.
  auto bytes = encode(make_frame(FrameType::Consult, 1, std::vector<std::uint8_t>(64, 1)));
  FrameDecoder dec(/*max_payload=*/32);
  dec.feed(std::span<const std::uint8_t>(bytes.data(), kHeaderSize));
  Frame out;
  ASSERT_EQ(dec.next(out), FrameDecoder::Result::Error);
  EXPECT_EQ(dec.error(), DecodeError::Oversized);
}

TEST(FrameDecoder, RejectsCorruptPayloadByChecksum) {
  auto bytes = encode(make_frame(FrameType::Consult, 5, {10, 20, 30, 40}));
  bytes[bytes.size() - 2] ^= 0x01;  // flip a payload bit
  FrameDecoder dec(kDefaultMaxPayload);
  dec.feed(std::span<const std::uint8_t>(bytes.data(), bytes.size()));
  Frame out;
  ASSERT_EQ(dec.next(out), FrameDecoder::Result::Error);
  EXPECT_EQ(dec.error(), DecodeError::BadChecksum);
}

TEST(FrameDecoder, TruncatedFrameIsNeedMoreNotError) {
  const auto bytes = encode(make_frame(FrameType::Consult, 6, {1, 2, 3}));
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    FrameDecoder dec(kDefaultMaxPayload);
    dec.feed(std::span<const std::uint8_t>(bytes.data(), cut));
    Frame out;
    EXPECT_EQ(dec.next(out), FrameDecoder::Result::NeedMore) << "cut at " << cut;
  }
}

// ------------------------------------------------------------- fuzz corpus ---

/// Seeded adversarial corpus: for each round, build a valid two-frame
/// stream, then mutate it (truncate / flip bits / skew version / inflate
/// the length field / replace with garbage) and require the decoder to
/// answer with frames, NeedMore, or a sticky error -- never a crash, hang,
/// or out-of-bounds access (ASan/UBSan enforce the latter).
TEST(FrameDecoderFuzz, SurvivesMutatedStreams) {
  Pcg32 rng(0xF4A5E5EEDULL);
  for (int round = 0; round < 4000; ++round) {
    std::vector<std::uint8_t> payload(rng.uniform_u32(128));
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.uniform_u32(256));
    std::vector<std::uint8_t> stream =
        encode(make_frame(static_cast<FrameType>(1 + rng.uniform_u32(8)),
                          rng.uniform_u32(1000), payload, rng.uniform_u32(1 << 20)));
    const auto second = encode(make_frame(FrameType::Ping, 7, {}));
    stream.insert(stream.end(), second.begin(), second.end());

    switch (rng.uniform_u32(5)) {
      case 0:  // truncate
        stream.resize(rng.uniform_u32(static_cast<std::uint32_t>(stream.size()) + 1));
        break;
      case 1: {  // flip 1-4 random bits
        const int flips = 1 + static_cast<int>(rng.uniform_u32(4));
        for (int i = 0; i < flips && !stream.empty(); ++i)
          stream[rng.uniform_u32(static_cast<std::uint32_t>(stream.size()))] ^=
              static_cast<std::uint8_t>(1u << rng.uniform_u32(8));
        break;
      }
      case 2:  // version skew
        if (stream.size() > 4) stream[4] = static_cast<std::uint8_t>(rng.uniform_u32(256));
        break;
      case 3:  // inflate the payload_len field
        if (stream.size() >= kHeaderSize)
          for (int i = 0; i < 4; ++i)
            stream[24 + i] = static_cast<std::uint8_t>(rng.uniform_u32(256));
        break;
      case 4:  // pure garbage
        for (auto& b : stream) b = static_cast<std::uint8_t>(rng.uniform_u32(256));
        break;
    }

    FrameDecoder dec(/*max_payload=*/4096);
    std::size_t off = 0;
    while (off < stream.size()) {
      const std::size_t n =
          std::min<std::size_t>(1 + rng.uniform_u32(64), stream.size() - off);
      dec.feed(std::span<const std::uint8_t>(stream.data() + off, n));
      off += n;
      Frame f;
      FrameDecoder::Result r;
      int frames_in_round = 0;
      while ((r = dec.next(f)) == FrameDecoder::Result::Frame) {
        // A decoded frame must be internally consistent.
        EXPECT_LE(f.payload.size(), 4096u);
        ASSERT_LT(++frames_in_round, 64) << "decoder livelock";
      }
      if (r == FrameDecoder::Result::Error) break;  // sticky; stop feeding
    }
  }
}

/// The message-codec layer under the same discipline: mutated ConsultReply
/// payloads either decode to a bounded struct or return false -- never
/// crash/over-read.
TEST(WireCodecFuzz, SurvivesMutatedPayloads) {
  Pcg32 rng(0xC0DEC5EEDULL);
  for (int round = 0; round < 4000; ++round) {
    ConsultReply m;
    m.code = StatusCode::Ok;
    m.message = "ok";
    m.retry_after_ms = rng.uniform_u32(1000);
    m.has_plan = true;
    m.theta = rng.uniform(0.0, 4.0);
    m.certified = true;
    m.decision_epoch = rng.uniform_u32(100);
    m.total_drawn = rng.uniform(0.0, 8.0);
    const std::uint32_t ndraws = rng.uniform_u32(8);
    for (std::uint32_t i = 0; i < ndraws; ++i)
      m.draws.push_back({rng.uniform_u32(64), rng.uniform(0.0, 2.0)});
    std::vector<std::uint8_t> buf;
    encode(m, buf);

    switch (rng.uniform_u32(3)) {
      case 0:
        buf.resize(rng.uniform_u32(static_cast<std::uint32_t>(buf.size()) + 1));
        break;
      case 1:
        if (!buf.empty())
          buf[rng.uniform_u32(static_cast<std::uint32_t>(buf.size()))] ^=
              static_cast<std::uint8_t>(1u << rng.uniform_u32(8));
        break;
      case 2:
        for (auto& b : buf) b = static_cast<std::uint8_t>(rng.uniform_u32(256));
        break;
    }
    ConsultReply out;
    if (decode(std::span<const std::uint8_t>(buf.data(), buf.size()), out)) {
      EXPECT_LE(out.draws.size(), kMaxDraws);
      EXPECT_TRUE(valid_status_code(static_cast<std::uint8_t>(out.code)));
    }
    ConsultRequest req;
    (void)decode(std::span<const std::uint8_t>(buf.data(), buf.size()), req);
    InfoReply info;
    (void)decode(std::span<const std::uint8_t>(buf.data(), buf.size()), info);
    WireError werr;
    (void)decode(std::span<const std::uint8_t>(buf.data(), buf.size()), werr);
  }
}

}  // namespace
}  // namespace agora::net
