// Unit and invariant tests for the proxy case-study simulator: conservation,
// determinism, the no-sharing baseline, LP vs endpoint redirection, redirect
// costs and capacity scaling.
#include <gtest/gtest.h>

#include <cmath>

#include "agree/topology.h"
#include "proxysim/simulator.h"
#include "trace/generator.h"
#include "util/error.h"

namespace agora::proxysim {
namespace {

using trace::DiurnalProfile;
using trace::TraceRequest;

/// Hand-built request with a fixed demand (response length chosen so that
/// a + b*x equals `demand` under the default cost model).
TraceRequest req_at(double t, double demand) {
  TraceRequest r;
  r.arrival = t;
  r.response_bytes = static_cast<std::uint64_t>((demand - 0.1) / 1e-6);
  return r;
}

SimConfig small_config(std::size_t proxies, double horizon = 1000.0) {
  SimConfig cfg;
  cfg.num_proxies = proxies;
  cfg.horizon = horizon;
  cfg.slot_width = horizon / 10.0;
  return cfg;
}

// ------------------------------------------------------------ basic queue ---

TEST(Simulator, SingleRequestZeroWait) {
  Simulator sim(small_config(1));
  const auto m = sim.run({{req_at(10.0, 1.0)}});
  EXPECT_EQ(m.total_requests, 1u);
  EXPECT_EQ(m.wait_overall.count(), 1u);
  EXPECT_NEAR(m.mean_wait(), 0.0, 1e-12);
}

TEST(Simulator, FifoQueueingWaits) {
  // Two back-to-back 2s jobs arriving together: the second waits 2s.
  Simulator sim(small_config(1));
  const auto m = sim.run({{req_at(10.0, 2.0), req_at(10.0, 2.0)}});
  EXPECT_EQ(m.wait_overall.count(), 2u);
  EXPECT_NEAR(m.wait_overall.max(), 2.0, 1e-9);
  EXPECT_NEAR(m.mean_wait(), 1.0, 1e-9);
}

TEST(Simulator, PowerScalesServiceTime) {
  SimConfig cfg = small_config(1);
  cfg.power = {2.0};  // double-speed proxy
  Simulator sim(cfg);
  const auto m = sim.run({{req_at(10.0, 2.0), req_at(10.0, 2.0)}});
  EXPECT_NEAR(m.wait_overall.max(), 1.0, 1e-9);  // 2s demand / power 2
}

TEST(Simulator, CostModelCapsDemand) {
  CostModel cost;
  EXPECT_NEAR(cost.demand(0), 0.1, 1e-12);
  EXPECT_NEAR(cost.demand(1000000), 1.1, 1e-12);
  EXPECT_NEAR(cost.demand(1000000000), 30.0, 1e-12);  // capped at c
}

TEST(Simulator, ConservationEveryRequestServedOnce) {
  trace::GeneratorConfig gc;
  gc.peak_rate = 5.0;
  trace::Generator gen(gc, DiurnalProfile::flat(1.0, 2000.0, 10));
  SimConfig cfg = small_config(3, 2000.0);
  cfg.scheduler = SchedulerKind::Lp;
  cfg.agreements = agree::complete_graph(3, 0.3);
  Simulator sim(cfg);
  const auto m = sim.run({gen.generate(1), gen.generate(2), gen.generate(3)});
  EXPECT_EQ(m.wait_overall.count(), m.total_requests);
  std::uint64_t per_proxy = 0;
  for (const auto& s : m.per_proxy_wait) per_proxy += s.count();
  EXPECT_EQ(per_proxy, m.total_requests);
}

TEST(Simulator, DeterministicAcrossRuns) {
  trace::GeneratorConfig gc;
  gc.peak_rate = 4.0;
  trace::Generator gen(gc, DiurnalProfile::flat(1.0, 2000.0, 10));
  SimConfig cfg = small_config(2, 2000.0);
  cfg.scheduler = SchedulerKind::Lp;
  cfg.agreements = agree::complete_graph(2, 0.5);
  const auto traces = {gen.generate(1), gen.generate(2)};
  std::vector<std::vector<TraceRequest>> ts(traces);
  const auto a = Simulator(cfg).run(ts);
  const auto b = Simulator(cfg).run(ts);
  EXPECT_DOUBLE_EQ(a.mean_wait(), b.mean_wait());
  EXPECT_EQ(a.redirected_requests, b.redirected_requests);
  EXPECT_EQ(a.scheduler_consults, b.scheduler_consults);
}

TEST(Simulator, RequestCountsPerSlot) {
  Simulator sim(small_config(1, 1000.0));  // 10 slots of 100s
  const auto m = sim.run({{req_at(50.0, 0.5), req_at(150.0, 0.5), req_at(155.0, 0.5)}});
  EXPECT_EQ(m.requests_by_slot[0], 1u);
  EXPECT_EQ(m.requests_by_slot[1], 2u);
  EXPECT_EQ(m.requests_by_slot[2], 0u);
}

TEST(Simulator, RejectsUnsortedTraces) {
  Simulator sim(small_config(1));
  EXPECT_THROW(sim.run({{req_at(10.0, 1.0), req_at(5.0, 1.0)}}), PreconditionError);
}

TEST(Simulator, RejectsWrongTraceCount) {
  Simulator sim(small_config(2));
  EXPECT_THROW(sim.run({{req_at(1.0, 1.0)}}), PreconditionError);
}

// -------------------------------------------------------------- redirection ---

/// One overloaded proxy (burst of work) next to an idle one.
std::vector<std::vector<TraceRequest>> burst_and_idle() {
  std::vector<TraceRequest> burst;
  for (int i = 0; i < 40; ++i) burst.push_back(req_at(10.0 + 0.01 * i, 1.0));
  return {burst, {}};
}

TEST(Simulator, NoSchedulerMeansNoRedirection) {
  SimConfig cfg = small_config(2);
  cfg.scheduler = SchedulerKind::None;
  const auto m = Simulator(cfg).run(burst_and_idle());
  EXPECT_EQ(m.redirected_requests, 0u);
  // 40 jobs of 1s each arriving at once: the last waits ~39s.
  EXPECT_NEAR(m.wait_overall.max(), 39.0, 0.5);
}

TEST(Simulator, LpSchedulerRedirectsUnderOverload) {
  SimConfig cfg = small_config(2);
  cfg.scheduler = SchedulerKind::Lp;
  cfg.agreements = agree::complete_graph(2, 0.5);
  cfg.queue_threshold = 4.0;
  cfg.consult_cooldown = 1.0;
  cfg.planning_window = 60.0;
  const auto m = Simulator(cfg).run(burst_and_idle());
  EXPECT_GT(m.redirected_requests, 0u);
  EXPECT_GT(m.scheduler_consults, 0u);
  // Offloading halves the backlog; worst wait clearly below no-sharing's 39.
  EXPECT_LT(m.wait_overall.max(), 30.0);
}

TEST(Simulator, ZeroAgreementsBehaveLikeNoSharing) {
  SimConfig none = small_config(2);
  none.scheduler = SchedulerKind::None;
  SimConfig lp = small_config(2);
  lp.scheduler = SchedulerKind::Lp;
  lp.agreements = Matrix(2, 2);  // all-zero shares
  const auto a = Simulator(none).run(burst_and_idle());
  const auto b = Simulator(lp).run(burst_and_idle());
  EXPECT_EQ(b.redirected_requests, 0u);
  EXPECT_DOUBLE_EQ(a.mean_wait(), b.mean_wait());
}

TEST(Simulator, RedirectCostAddsDemand) {
  SimConfig cheap = small_config(2);
  cheap.scheduler = SchedulerKind::Lp;
  cheap.agreements = agree::complete_graph(2, 0.5);
  cheap.queue_threshold = 4.0;
  cheap.consult_cooldown = 1.0;
  SimConfig costly = cheap;
  costly.redirect_cost = 0.5;  // half the job size: clearly visible
  const auto a = Simulator(cheap).run(burst_and_idle());
  const auto b = Simulator(costly).run(burst_and_idle());
  ASSERT_GT(a.redirected_requests, 0u);
  ASSERT_GT(b.redirected_requests, 0u);
  // The redirected work carries extra demand, so total busy time grows and
  // mean wait cannot improve.
  EXPECT_GE(b.mean_wait(), a.mean_wait() - 1e-9);
}

TEST(Simulator, EndpointSchedulerAlsoRedirects) {
  SimConfig cfg = small_config(2);
  cfg.scheduler = SchedulerKind::Endpoint;
  cfg.agreements = agree::complete_graph(2, 0.5);
  cfg.queue_threshold = 4.0;
  cfg.consult_cooldown = 1.0;
  const auto m = Simulator(cfg).run(burst_and_idle());
  EXPECT_GT(m.redirected_requests, 0u);
  EXPECT_LT(m.wait_overall.max(), 39.0);
}

TEST(Simulator, LpBeatsEndpointWhenNeighborsAreBusy) {
  // Three proxies: 0 overloaded, 1 also busy, 2 idle. Agreements are
  // distance-decayed (0 shares more with 1 than with 2), so the endpoint
  // scheme pushes work to the *busy* neighbor 1 while the LP scheme sees
  // availability and prefers 2.
  std::vector<TraceRequest> burst0, busy1;
  for (int i = 0; i < 40; ++i) burst0.push_back(req_at(10.0 + 0.01 * i, 1.0));
  for (int i = 0; i < 200; ++i) busy1.push_back(req_at(5.0 + 0.5 * i, 0.5));
  const std::vector<std::vector<TraceRequest>> traces{burst0, busy1, {}};

  SimConfig base = small_config(3);
  base.agreements = Matrix{{0.0, 0.3, 0.1}, {0.3, 0.0, 0.1}, {0.1, 0.1, 0.0}};
  base.queue_threshold = 4.0;
  base.consult_cooldown = 1.0;

  SimConfig lp = base;
  lp.scheduler = SchedulerKind::Lp;
  SimConfig ep = base;
  ep.scheduler = SchedulerKind::Endpoint;

  const auto ml = Simulator(lp).run(traces);
  const auto me = Simulator(ep).run(traces);
  // Origin-0 clients should fare better under the LP scheme.
  EXPECT_LT(ml.per_proxy_wait[0].mean(), me.per_proxy_wait[0].mean());
}

TEST(Simulator, RedirectedFractionSmallUnderMildLoad) {
  trace::GeneratorConfig gc;
  gc.peak_rate = 6.0;  // moderate utilization
  trace::Generator gen(gc, DiurnalProfile::flat(1.0, 3000.0, 10));
  SimConfig cfg = small_config(3, 3000.0);
  cfg.scheduler = SchedulerKind::Lp;
  cfg.agreements = agree::complete_graph(3, 0.2);
  Simulator sim(cfg);
  const auto m = sim.run({gen.generate(1), gen.generate(2), gen.generate(3)});
  EXPECT_LT(m.redirected_fraction(), 0.2);
}

TEST(Simulator, WaitQuantilesTrackDistribution) {
  Simulator sim(small_config(1));
  // Ten simultaneous 1 s jobs: waits are exactly 0,1,...,9 seconds.
  std::vector<TraceRequest> jobs;
  for (int i = 0; i < 10; ++i) jobs.push_back(req_at(10.0, 1.0));
  const auto m = sim.run({jobs});
  EXPECT_NEAR(m.wait_quantile(0.5), 4.5, 0.6);
  EXPECT_NEAR(m.wait_quantile(1.0), 9.0, 0.2);
  EXPECT_LE(m.wait_quantile(0.1), m.wait_quantile(0.9));
}

TEST(Simulator, PerProxySeriesSumToGlobal) {
  trace::GeneratorConfig gc;
  gc.peak_rate = 3.0;
  trace::Generator gen(gc, DiurnalProfile::flat(1.0, 2000.0, 10));
  SimConfig cfg = small_config(2, 2000.0);
  Simulator sim(cfg);
  const auto m = sim.run({gen.generate(5), gen.generate(6)});
  std::uint64_t total = 0;
  for (const auto& s : m.wait_by_slot_per_proxy) total += s.total_count();
  EXPECT_EQ(total, m.wait_by_slot.total_count());
}

// ------------------------------------------------------------ observability ---

TEST(Simulator, IdenticallySeededRunsProduceIdenticalMetricsAndEvents) {
  trace::GeneratorConfig gc;
  gc.peak_rate = 6.0;
  trace::Generator gen(gc, DiurnalProfile::flat(1.0, 3000.0, 10));
  SimConfig cfg = small_config(3, 3000.0);
  cfg.scheduler = SchedulerKind::Lp;
  cfg.agreements = agree::complete_graph(3, 0.3);
  const std::vector<std::vector<TraceRequest>> ts{gen.generate(1), gen.generate(2),
                                                  gen.generate(3)};
  const auto a = Simulator(cfg).run(ts);
  const auto b = Simulator(cfg).run(ts);

  EXPECT_EQ(a.total_requests, b.total_requests);
  EXPECT_EQ(a.redirected_requests, b.redirected_requests);
  EXPECT_EQ(a.scheduler_consults, b.scheduler_consults);
  EXPECT_EQ(a.certified_consults, b.certified_consults);
  EXPECT_EQ(a.degraded_consults, b.degraded_consults);
  EXPECT_EQ(a.lp_iterations, b.lp_iterations);
  EXPECT_DOUBLE_EQ(a.mean_wait(), b.mean_wait());
  EXPECT_DOUBLE_EQ(a.redirected_demand, b.redirected_demand);
  EXPECT_EQ(a.requests_by_slot, b.requests_by_slot);
  EXPECT_EQ(a.redirected_by_slot, b.redirected_by_slot);
  EXPECT_EQ(a.consults_by_slot, b.consults_by_slot);
  EXPECT_EQ(a.degraded_by_slot, b.degraded_by_slot);

  // The event stream is deterministic element by element: every event
  // carries domain time only (virtual seconds / solve ordinals), never
  // wall-clock, so the two runs must match exactly.
  EXPECT_EQ(a.events_overwritten, b.events_overwritten);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i)
    EXPECT_TRUE(a.events[i] == b.events[i]) << "event " << i << " differs";
}

TEST(Simulator, EventStreamAccountsForEveryAdmission) {
  trace::GeneratorConfig gc;
  gc.peak_rate = 4.0;
  trace::Generator gen(gc, DiurnalProfile::flat(1.0, 2000.0, 10));
  SimConfig cfg = small_config(2, 2000.0);
  cfg.scheduler = SchedulerKind::Lp;
  cfg.agreements = agree::complete_graph(2, 0.5);
  cfg.event_ring_capacity = 1 << 16;  // room for every event of the run
  Simulator sim(cfg);
  const auto m = sim.run({gen.generate(1), gen.generate(2)});
  if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
  ASSERT_EQ(m.events_overwritten, 0u) << "test run must fit in the ring";

  std::uint64_t admitted = 0, redirected = 0, consults = 0;
  for (const auto& ev : m.events) {
    switch (ev.kind) {
      case obs::EventKind::RequestAdmitted:
        ++admitted;
        EXPECT_LT(ev.actor, cfg.num_proxies);
        EXPECT_GE(ev.a, 0.0);  // wait
        EXPECT_GT(ev.b, 0.0);  // demand
        break;
      case obs::EventKind::RequestRedirected: ++redirected; break;
      case obs::EventKind::ConsultStarted: ++consults; break;
      default: break;
    }
  }
  EXPECT_EQ(admitted, m.total_requests);
  EXPECT_EQ(redirected, m.redirected_requests);
  EXPECT_EQ(consults, m.scheduler_consults);
}

TEST(Simulator, SmallEventRingOverwritesOldestButKeepsTotals) {
  trace::GeneratorConfig gc;
  gc.peak_rate = 5.0;
  trace::Generator gen(gc, DiurnalProfile::flat(1.0, 2000.0, 10));
  SimConfig cfg = small_config(2, 2000.0);
  cfg.event_ring_capacity = 64;
  Simulator sim(cfg);
  const auto m = sim.run({gen.generate(3), gen.generate(4)});
  if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
  EXPECT_LE(m.events.size(), 64u);
  EXPECT_EQ(m.events_overwritten + m.events.size(), m.total_requests)
      << "no-scheduler run emits exactly one admission event per request";
}

TEST(Simulator, PrivateSinkIsolatesRegistryTotals) {
  obs::MetricsRegistry reg;
  SimConfig cfg = small_config(1);
  cfg.sink = obs::Sink{&reg, nullptr};
  Simulator sim(cfg);
  const auto m = sim.run({{req_at(10.0, 1.0), req_at(10.0, 1.0)}});
  if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
  EXPECT_EQ(m.total_requests, 2u);
  EXPECT_EQ(reg.counter("sim.requests.total").value(), 2u);
  EXPECT_DOUBLE_EQ(reg.gauge("sim.wait.mean_seconds").value(), m.mean_wait());
}

}  // namespace
}  // namespace agora::proxysim
