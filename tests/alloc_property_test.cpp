// Property-based tests for the allocation engine on randomized agreement
// systems: plan feasibility invariants, optimality of theta against the
// endpoint baseline, monotonicity in capacity and transitivity level, and
// exact-mode consistency.
#include <gtest/gtest.h>

#include <cmath>

#include "agree/capacity.h"
#include "alloc/allocator.h"
#include "alloc/endpoint.h"
#include "util/rng.h"

namespace agora::alloc {
namespace {

using agree::AgreementSystem;

struct SystemSpec {
  std::uint64_t seed;
  std::size_t n;
  double density;  ///< probability of an agreement edge
};

AgreementSystem make_system(const SystemSpec& spec) {
  Pcg32 rng(spec.seed);
  AgreementSystem sys(spec.n);
  for (std::size_t i = 0; i < spec.n; ++i) {
    sys.capacity[i] = rng.uniform(0.0, 25.0);
    double budget = 1.0;
    for (std::size_t j = 0; j < spec.n; ++j) {
      if (i == j || rng.next_double() > spec.density) continue;
      const double s = rng.uniform(0.0, budget * 0.6);
      sys.relative(i, j) = s;
      budget -= s;
    }
    // Sprinkle some absolute agreements too.
    if (rng.next_double() < 0.3) {
      const std::size_t j = rng.uniform_u32(static_cast<std::uint32_t>(spec.n));
      if (j != i) sys.absolute(i, j) = rng.uniform(0.0, 3.0);
    }
  }
  return sys;
}

class RandomSystems : public ::testing::TestWithParam<SystemSpec> {};

TEST_P(RandomSystems, PlanInvariantsHold) {
  const AgreementSystem sys = make_system(GetParam());
  Allocator allocator(sys);
  Pcg32 rng(GetParam().seed ^ 0xabcdef);
  const std::size_t a = rng.uniform_u32(static_cast<std::uint32_t>(sys.size()));
  const double avail = allocator.available_to(a);

  for (double frac : {0.1, 0.5, 0.95}) {
    const double x = avail * frac;
    const AllocationPlan plan = allocator.allocate(a, x);
    ASSERT_TRUE(plan.satisfied()) << "x=" << x << " avail=" << avail;
    // (5): total drawn equals the request.
    EXPECT_NEAR(plan.total_drawn(), x, 1e-6);
    // (4): every draw within the entitlement; own node within capacity.
    for (std::size_t k = 0; k < sys.size(); ++k) {
      const double cap = k == a ? sys.capacity[a] : allocator.capacities().entitlement(k, a);
      EXPECT_LE(plan.draw[k], cap + 1e-6);
      EXPECT_GE(plan.draw[k], -1e-9);
    }
    // (6): capacities only go down, by at most theta.
    for (std::size_t i = 0; i < sys.size(); ++i) {
      EXPECT_LE(plan.capacity_after[i], plan.capacity_before[i] + 1e-6);
      EXPECT_GE(plan.capacity_after[i], plan.capacity_before[i] - plan.theta - 1e-6);
    }
    // theta is exactly the largest drop.
    double max_drop = 0.0;
    for (std::size_t i = 0; i < sys.size(); ++i)
      max_drop = std::max(max_drop, plan.capacity_before[i] - plan.capacity_after[i]);
    EXPECT_NEAR(plan.theta, max_drop, 1e-6);
  }
}

TEST_P(RandomSystems, RequestsBeyondAvailabilityRejected) {
  const AgreementSystem sys = make_system(GetParam());
  Allocator allocator(sys);
  for (std::size_t a = 0; a < sys.size(); ++a) {
    const double avail = allocator.available_to(a);
    EXPECT_EQ(allocator.allocate(a, avail * 1.01 + 0.1).status, PlanStatus::Insufficient);
  }
}

TEST_P(RandomSystems, ThetaNoWorseThanEndpointBaseline) {
  // The LP minimizes the max availability drop; the proportional endpoint
  // split is one feasible-ish alternative, so whenever the endpoint plan
  // happens to be feasible under the LP's constraints its induced drop
  // cannot beat theta*.
  const AgreementSystem sys = make_system(GetParam());
  Allocator allocator(sys);
  const agree::CapacityReport& rep = allocator.capacities();
  Pcg32 rng(GetParam().seed ^ 0x777);
  const std::size_t a = rng.uniform_u32(static_cast<std::uint32_t>(sys.size()));

  const double x = allocator.available_to(a) * 0.4;
  const AllocationPlan lp = allocator.allocate(a, x);
  ASSERT_TRUE(lp.satisfied());

  const AllocationPlan ep = endpoint_allocate(sys, a, x);
  // Check endpoint feasibility wrt LP constraints (draw[a] may exceed V_a
  // when overflow stays local; skip those cases).
  bool feasible = ep.draw[a] <= sys.capacity[a] + 1e-9;
  for (std::size_t k = 0; k < sys.size() && feasible; ++k)
    if (k != a && ep.draw[k] > rep.entitlement(k, a) + 1e-9) feasible = false;
  if (!feasible) return;

  double ep_drop = 0.0;
  for (std::size_t i = 0; i < sys.size(); ++i) {
    double drop = 0.0;
    for (std::size_t k = 0; k < sys.size(); ++k)
      drop += ep.draw[k] * (k == i ? sys.retained[i] : rep.shares(k, i));
    ep_drop = std::max(ep_drop, drop);
  }
  EXPECT_LE(lp.theta, ep_drop + 1e-6);
}

TEST_P(RandomSystems, MoreCapacityNeverHurts) {
  const AgreementSystem sys = make_system(GetParam());
  AgreementSystem bigger = sys;
  for (double& v : bigger.capacity) v *= 1.5;
  Allocator small(sys), large(bigger);
  for (std::size_t a = 0; a < sys.size(); ++a)
    EXPECT_GE(large.available_to(a) + 1e-9, small.available_to(a));
}

TEST_P(RandomSystems, AvailabilityMonotoneInLevel) {
  const AgreementSystem sys = make_system(GetParam());
  std::vector<double> prev(sys.size(), -1.0);
  for (std::size_t level : {1u, 2u, 3u, 6u}) {
    AllocatorOptions opts;
    opts.transitive.max_level = level;
    Allocator allocator(sys, opts);
    for (std::size_t a = 0; a < sys.size(); ++a) {
      EXPECT_GE(allocator.available_to(a) + 1e-9, prev[a]) << "level " << level;
      prev[a] = allocator.available_to(a);
    }
  }
}

TEST_P(RandomSystems, ExactModeFallbackIsFlagged) {
  const AgreementSystem sys = make_system(GetParam());
  AllocatorOptions opts;
  opts.equality = EqualityMode::Exact;
  Allocator allocator(sys, opts);
  Pcg32 rng(GetParam().seed ^ 0x31415);
  const std::size_t a = rng.uniform_u32(static_cast<std::uint32_t>(sys.size()));
  const double x = allocator.available_to(a) * 0.5;
  const AllocationPlan plan = allocator.allocate(a, x);
  if (x <= 0.0) return;
  // Either the paper-exact program was feasible, or the fallback kicked in;
  // in both cases the request must be satisfied.
  ASSERT_TRUE(plan.satisfied());
  EXPECT_NEAR(plan.total_drawn(), x, 1e-6);
}

std::vector<SystemSpec> specs() {
  std::vector<SystemSpec> out;
  std::uint64_t seed = 9000;
  for (std::size_t n : {2u, 4u, 7u, 10u})
    for (double density : {0.3, 0.8})
      for (int rep = 0; rep < 3; ++rep) out.push_back({seed++, n, density});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomSystems, ::testing::ValuesIn(specs()),
                         [](const ::testing::TestParamInfo<SystemSpec>& info) {
                           return "seed" + std::to_string(info.param.seed) + "_n" +
                                  std::to_string(info.param.n) + "_d" +
                                  std::to_string(static_cast<int>(info.param.density * 10));
                         });

}  // namespace
}  // namespace agora::alloc
