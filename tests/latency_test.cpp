// Tests for delayed scheduler decisions (SimConfig::decision_latency).
#include <gtest/gtest.h>

#include "agree/topology.h"
#include "proxysim/simulator.h"
#include "trace/generator.h"

namespace agora::proxysim {
namespace {

trace::TraceRequest req_at(double t, double demand) {
  trace::TraceRequest r;
  r.arrival = t;
  r.response_bytes = static_cast<std::uint64_t>((demand - 0.1) / 1e-6);
  return r;
}

SimConfig sharing_config(double latency) {
  SimConfig cfg;
  cfg.num_proxies = 2;
  cfg.horizon = 1000.0;
  cfg.slot_width = 100.0;
  cfg.scheduler = SchedulerKind::Lp;
  cfg.agreements = agree::complete_graph(2, 0.5);
  cfg.queue_threshold = 4.0;
  cfg.consult_cooldown = 1.0;
  cfg.decision_latency = latency;
  return cfg;
}

std::vector<std::vector<trace::TraceRequest>> burst_and_idle() {
  std::vector<trace::TraceRequest> burst;
  for (int i = 0; i < 40; ++i) burst.push_back(req_at(10.0 + 0.01 * i, 1.0));
  return {burst, {}};
}

TEST(DecisionLatency, ZeroLatencyMatchesInlinePath) {
  // latency 0 uses the inline application path; a tiny latency must produce
  // nearly identical aggregate results (same decisions, epsilon later).
  const auto a = Simulator(sharing_config(0.0)).run(burst_and_idle());
  const auto b = Simulator(sharing_config(1e-6)).run(burst_and_idle());
  EXPECT_NEAR(a.mean_wait(), b.mean_wait(), 0.05);
  EXPECT_EQ(a.total_requests, b.total_requests);
}

TEST(DecisionLatency, DelayedDecisionsStillRedirect) {
  const auto m = Simulator(sharing_config(2.0)).run(burst_and_idle());
  EXPECT_GT(m.redirected_requests, 0u);
  // Still clearly better than the ~39 s no-sharing worst case.
  EXPECT_LT(m.wait_overall.max(), 35.0);
}

TEST(DecisionLatency, LatencyMonotonicallyHurtsOrTies) {
  const auto fast = Simulator(sharing_config(0.0)).run(burst_and_idle());
  const auto slow = Simulator(sharing_config(20.0)).run(burst_and_idle());
  // A 20 s round trip on a 40 s burst must not *help*.
  EXPECT_GE(slow.mean_wait() + 1e-9, fast.mean_wait());
}

TEST(DecisionLatency, WorkConserved) {
  const auto m = Simulator(sharing_config(3.0)).run(burst_and_idle());
  EXPECT_EQ(m.wait_overall.count(), m.total_requests);
}

TEST(DecisionLatency, DecisionAfterQueueDrainedIsHarmless) {
  // One tiny burst, decision arrives long after the queue emptied: the
  // budgets find nothing to move and the simulation still terminates
  // cleanly with every request served once.
  SimConfig cfg = sharing_config(200.0);
  std::vector<trace::TraceRequest> burst;
  for (int i = 0; i < 6; ++i) burst.push_back(req_at(10.0, 1.0));
  const auto m = Simulator(cfg).run({burst, {}});
  EXPECT_EQ(m.wait_overall.count(), 6u);
}

}  // namespace
}  // namespace agora::proxysim
