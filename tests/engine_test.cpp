// Tests for the sharded enforcement engine (DESIGN.md §11): partitioning,
// threads=1 decision identity against the direct Allocator path (including
// byte-identical trace-event streams and same-seed simulator runs),
// component-exact sharded decisions, the unified Status surface of
// submit(), snapshot epochs, and certification inheritance.
#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <vector>

#include "agree/topology.h"
#include "engine/engine.h"
#include "engine/partition.h"
#include "obs/event_ring.h"
#include "proxysim/simulator.h"
#include "trace/generator.h"
#include "util/error.h"

namespace agora::engine {
namespace {

/// `islands` complete-graph economies of `per` participants each, glued
/// into one AgreementSystem with zero cross-island agreements.
agree::AgreementSystem island_economy(std::size_t islands, std::size_t per, double share,
                                      double cap = 10.0) {
  const std::size_t n = islands * per;
  agree::AgreementSystem sys(n);
  for (std::size_t i = 0; i < n; ++i) sys.capacity[i] = cap + static_cast<double>(i % per);
  for (std::size_t g = 0; g < islands; ++g)
    for (std::size_t i = 0; i < per; ++i)
      for (std::size_t j = 0; j < per; ++j)
        if (i != j) sys.relative(g * per + i, g * per + j) = share;
  return sys;
}

agree::AgreementSystem connected_economy(std::size_t n, double share) {
  agree::AgreementSystem sys(n);
  for (std::size_t i = 0; i < n; ++i) sys.capacity[i] = 5.0 + static_cast<double>(i);
  sys.relative = agree::complete_graph(n, share);
  return sys;
}

bool bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

/// Field-by-field, bit-exact plan comparison (the threads=1 guarantee).
void expect_identical(const alloc::AllocationPlan& e, const alloc::AllocationPlan& d) {
  EXPECT_EQ(e.status, d.status);
  EXPECT_TRUE(bitwise_equal(e.draw, d.draw));
  EXPECT_EQ(e.theta, d.theta);
  EXPECT_TRUE(bitwise_equal(e.capacity_before, d.capacity_before));
  EXPECT_TRUE(bitwise_equal(e.capacity_after, d.capacity_after));
  EXPECT_EQ(e.lp_iterations, d.lp_iterations);
  EXPECT_EQ(e.exact_mode_fell_back, d.exact_mode_fell_back);
  EXPECT_EQ(e.certified, d.certified);
  EXPECT_EQ(e.solver_fallbacks, d.solver_fallbacks);
}

// -------------------------------------------------------------- partition ---

TEST(Partition, IslandsBecomeComponents) {
  const auto sys = island_economy(4, 3, 0.2);
  const Partition p = partition_participants(sys, 4);
  EXPECT_EQ(p.components, 4u);
  EXPECT_EQ(p.shards, 4u);
  EXPECT_FALSE(p.replicated);
  // Every island lands on exactly one shard, members ascending.
  for (std::size_t i = 0; i < sys.size(); ++i)
    EXPECT_EQ(p.shard_of[i], p.shard_of[(i / 3) * 3]);
  std::size_t total = 0;
  for (const auto& m : p.members) {
    EXPECT_TRUE(std::is_sorted(m.begin(), m.end()));
    total += m.size();
  }
  EXPECT_EQ(total, sys.size());
}

TEST(Partition, ShardCountClampsToComponents) {
  const auto sys = island_economy(2, 4, 0.2);
  const Partition p = partition_participants(sys, 8);
  EXPECT_EQ(p.components, 2u);
  EXPECT_EQ(p.shards, 2u);  // cannot split a component
  EXPECT_FALSE(p.replicated);
}

TEST(Partition, ConnectedEconomyFallsBackToReplicas) {
  const auto sys = connected_economy(6, 0.1);
  const Partition p = partition_participants(sys, 3);
  EXPECT_EQ(p.components, 1u);
  EXPECT_EQ(p.shards, 3u);
  EXPECT_TRUE(p.replicated);
  for (std::size_t i = 0; i < sys.size(); ++i) EXPECT_EQ(p.shard_of[i], i % 3);
  for (const auto& m : p.members) EXPECT_EQ(m.size(), sys.size());
}

TEST(Partition, SingleShardOwnsEverything) {
  const auto sys = island_economy(3, 2, 0.5);
  const Partition p = partition_participants(sys, 1);
  EXPECT_EQ(p.shards, 1u);
  EXPECT_FALSE(p.replicated);
  EXPECT_EQ(p.members[0].size(), sys.size());
}

TEST(Partition, LptBalancesUnevenComponents) {
  // Islands of sizes 4, 2, 2 onto 2 shards: LPT puts the 4 alone.
  agree::AgreementSystem sys(8);
  for (std::size_t i = 0; i < 8; ++i) sys.capacity[i] = 1.0;
  auto connect = [&](std::size_t a, std::size_t b) { sys.relative(a, b) = 0.1; };
  connect(0, 1); connect(1, 2); connect(2, 3);
  connect(4, 5);
  connect(6, 7);
  const Partition p = partition_participants(sys, 2);
  EXPECT_EQ(p.components, 3u);
  EXPECT_EQ(p.shards, 2u);
  EXPECT_EQ(p.members[0].size(), 4u);
  EXPECT_EQ(p.members[1].size(), 4u);  // 2 + 2
}

// --------------------------------------------- threads=1 decision identity ---

TEST(EngineSerial, PlansAreBitIdenticalToDirectAllocator) {
  const auto sys = connected_economy(6, 0.15);
  // Isolated sinks so the two paths' event streams can be compared 1:1.
  obs::EventRing direct_ring(1 << 12), engine_ring(1 << 12);
  obs::MetricsRegistry direct_reg, engine_reg;

  alloc::AllocatorOptions aopts;
  aopts.sink = obs::Sink{&direct_reg, &direct_ring};
  alloc::Allocator direct(sys, aopts);

  EngineOptions eopts;
  eopts.threads = 1;
  eopts.alloc.sink = obs::Sink{&engine_reg, &engine_ring};
  eopts.sink = eopts.alloc.sink;
  EnforcementEngine eng(sys, eopts);
  EXPECT_EQ(eng.num_shards(), 1u);

  // The scheduler-bridge call sequence: epoch refresh, availability query,
  // consult, commit, release -- repeated.
  std::vector<double> caps = sys.capacity;
  for (int round = 0; round < 6; ++round) {
    const std::size_t a = static_cast<std::size_t>(round) % sys.size();
    caps[a] = 4.0 + static_cast<double>(round);
    direct.set_capacities(std::span<const double>(caps));
    eng.set_capacities(std::span<const double>(caps));
    EXPECT_EQ(direct.available_to(a), eng.available_to(a));
    const double want = 0.5 * direct.available_to(a) + static_cast<double>(round);
    const alloc::AllocationPlan dp = direct.allocate(a, want);
    const alloc::AllocationPlan ep = eng.consult(a, want);
    expect_identical(ep, dp);
    if (dp.satisfied()) {
      direct.apply(dp);
      eng.apply(ep);
      for (std::size_t i = 0; i < sys.size(); ++i)
        EXPECT_EQ(direct.available_to(i), eng.available_to(i));
      std::vector<double> back(sys.size(), 0.25);
      direct.release(back);
      eng.release(back);
    }
  }
  eng.drain();

  // Byte-identical event streams: the engine's worker emits exactly the LP
  // pipeline events the direct allocator emits, and nothing else (engine
  // batch events require coalescing, which serial use cannot produce).
  const auto de = direct_ring.snapshot();
  const auto ee = engine_ring.snapshot();
  ASSERT_EQ(de.size(), ee.size());
  for (std::size_t i = 0; i < de.size(); ++i) EXPECT_EQ(de[i], ee[i]);
  for (const auto& ev : ee) EXPECT_NE(ev.kind, obs::EventKind::EngineBatch);

  // And the aggregated solve-chain telemetry matches the direct pipeline.
  const lp::PipelineStats* es = eng.solver_stats();
  ASSERT_NE(es, nullptr);
  EXPECT_EQ(es->solves, direct.solver_stats()->solves);
  EXPECT_EQ(es->certified, direct.solver_stats()->certified);
}

TEST(EngineSerial, SimulatorTracesAreByteIdenticalSameSeed) {
  trace::GeneratorConfig gc;
  gc.peak_rate = 6.0;
  const trace::Generator gen(gc, trace::DiurnalProfile::flat(1.0, 3000.0, 10));
  const std::vector<std::vector<trace::TraceRequest>> traces{
      gen.generate(1), gen.generate(2), gen.generate(3)};

  auto run = [&](std::size_t threads) {
    proxysim::SimConfig cfg;
    cfg.num_proxies = 3;
    cfg.horizon = 3000.0;
    cfg.slot_width = 300.0;
    cfg.scheduler = proxysim::SchedulerKind::Lp;
    cfg.agreements = agree::complete_graph(3, 0.3);
    cfg.scheduler_threads = threads;
    cfg.event_ring_capacity = 1 << 16;
    cfg.sink = obs::Sink::none();
    cfg.alloc_opts.sink = obs::Sink::none();
    proxysim::Simulator sim(cfg);
    return sim.run(traces);
  };

  const proxysim::SimMetrics direct = run(0);
  const proxysim::SimMetrics engine = run(1);
  EXPECT_EQ(direct.total_requests, engine.total_requests);
  EXPECT_EQ(direct.redirected_requests, engine.redirected_requests);
  EXPECT_EQ(direct.scheduler_consults, engine.scheduler_consults);
  EXPECT_EQ(direct.certified_consults, engine.certified_consults);
  EXPECT_EQ(direct.lp_iterations, engine.lp_iterations);
  EXPECT_DOUBLE_EQ(direct.mean_wait(), engine.mean_wait());
  EXPECT_EQ(direct.requests_by_slot, engine.requests_by_slot);
  EXPECT_EQ(direct.redirected_by_slot, engine.redirected_by_slot);
  ASSERT_EQ(direct.events.size(), engine.events.size());
  for (std::size_t i = 0; i < direct.events.size(); ++i)
    EXPECT_TRUE(direct.events[i] == engine.events[i]) << "event " << i << " differs";
}

// ----------------------------------------------------- sharded exactness ---

TEST(EngineSharded, ComponentLocalDecisionsMatchGlobalAllocator) {
  const auto sys = island_economy(4, 4, 0.25);
  alloc::Allocator direct(sys);
  EngineOptions eopts;
  eopts.sink = obs::Sink::none();
  eopts.alloc.sink = obs::Sink::none();
  eopts.threads = 4;
  EnforcementEngine eng(sys, eopts);
  EXPECT_EQ(eng.num_shards(), 4u);
  EXPECT_FALSE(eng.replicated());

  for (std::size_t a = 0; a < sys.size(); ++a) {
    const double want = 0.7 * direct.available_to(a);
    const alloc::AllocationPlan dp = direct.allocate(a, want);
    const alloc::AllocationPlan ep = eng.consult(a, want);
    ASSERT_EQ(ep.status, dp.status) << "principal " << a;
    EXPECT_NEAR(ep.theta, dp.theta, 1e-9);
    EXPECT_NEAR(ep.total_drawn(), dp.total_drawn(), 1e-9);
    ASSERT_EQ(ep.draw.size(), sys.size());
    // Draws never cross a component boundary.
    for (std::size_t i = 0; i < sys.size(); ++i) {
      if (i / 4 != a / 4) {
        EXPECT_EQ(ep.draw[i], 0.0) << "cross-island draw at " << i;
      }
    }
    EXPECT_TRUE(ep.certified);
  }
}

TEST(EngineSharded, ReplicatedModeStaysExactUnderMutation) {
  const auto sys = connected_economy(5, 0.2);
  alloc::Allocator direct(sys);
  EngineOptions eopts;
  eopts.sink = obs::Sink::none();
  eopts.alloc.sink = obs::Sink::none();
  eopts.threads = 3;
  EnforcementEngine eng(sys, eopts);
  EXPECT_TRUE(eng.replicated());

  for (std::size_t a = 0; a < sys.size(); ++a) {
    const double want = 0.4 * direct.available_to(a);
    const alloc::AllocationPlan dp = direct.allocate(a, want);
    const alloc::AllocationPlan ep = eng.consult(a, want);
    ASSERT_TRUE(dp.satisfied());
    expect_identical(ep, dp);  // every replica solves the same global model
    direct.apply(dp);
    eng.apply(ep);  // broadcast: replicas stay identical
    for (std::size_t i = 0; i < sys.size(); ++i)
      EXPECT_EQ(direct.available_to(i), eng.available_to(i));
  }
}

// ------------------------------------------------------- status & submit ---

TEST(EngineStatus, SubmitResolvesWithStatusInsteadOfThrowing) {
  EngineOptions eopts;
  eopts.sink = obs::Sink::none();
  eopts.alloc.sink = obs::Sink::none();
  EnforcementEngine eng(island_economy(2, 2, 0.3), eopts);

  EngineResult bad = eng.submit(99, 1.0).get();
  EXPECT_EQ(bad.status.code(), StatusCode::InvalidArgument);
  EXPECT_TRUE(bad.plan.draw.empty());

  EngineResult neg = eng.submit(0, -1.0).get();
  EXPECT_EQ(neg.status.code(), StatusCode::InvalidArgument);

  EngineResult ok = eng.submit(0, 1.0).get();
  EXPECT_EQ(ok.status.code(), StatusCode::Ok);
  EXPECT_TRUE(ok.status.ok());
  EXPECT_TRUE(ok.plan.satisfied());

  EngineResult big = eng.submit(0, 1e9).get();
  EXPECT_EQ(big.status.code(), StatusCode::Insufficient);
  EXPECT_EQ(big.plan.status, alloc::PlanStatus::Insufficient);
}

TEST(EngineStatus, ConsultThrowsLikeDirectAllocator) {
  EngineOptions eopts;
  eopts.sink = obs::Sink::none();
  eopts.alloc.sink = obs::Sink::none();
  EnforcementEngine eng(island_economy(2, 2, 0.3), eopts);
  EXPECT_THROW(eng.consult(99, 1.0), PreconditionError);
  EXPECT_THROW(eng.consult(0, -2.0), PreconditionError);
  EXPECT_THROW((void)eng.allocate(99, 1.0), PreconditionError);  // AllocatorBase view
}

TEST(EngineStatus, PlanStatusMapsToUnifiedStatus) {
  EXPECT_EQ(alloc::to_status(alloc::PlanStatus::Satisfied).code(), StatusCode::Ok);
  EXPECT_EQ(alloc::to_status(alloc::PlanStatus::Insufficient).code(),
            StatusCode::Insufficient);
  EXPECT_EQ(alloc::to_status(alloc::PlanStatus::Denied).code(), StatusCode::Denied);
  EXPECT_EQ(alloc::to_status(alloc::PlanStatus::SolverFailed).code(),
            StatusCode::SolverFailed);
  const Status s = to_status(PreconditionError("nope"));
  EXPECT_EQ(s.code(), StatusCode::InvalidArgument);
  EXPECT_EQ(to_status(InternalError("bug")).code(), StatusCode::Internal);
  EXPECT_EQ(to_status(IoError("disk")).code(), StatusCode::Io);
  EXPECT_EQ(Status::unavailable().to_string(), "unavailable");
}

// --------------------------------------------------------------- snapshot ---

TEST(EngineSnapshot, EpochAdvancesOnEveryMutation) {
  EngineOptions eopts;
  eopts.sink = obs::Sink::none();
  eopts.alloc.sink = obs::Sink::none();
  EnforcementEngine eng(island_economy(2, 3, 0.2), eopts);
  EXPECT_EQ(eng.epoch(), 0u);

  const auto before = eng.snapshot();
  std::vector<double> caps(eng.size(), 7.0);
  eng.set_capacities(std::span<const double>(caps));
  EXPECT_EQ(eng.epoch(), 1u);
  // Snapshots are immutable: the pre-mutation view is unchanged.
  EXPECT_EQ(before->epoch, 0u);
  const auto after = eng.snapshot();
  for (double c : after->capacity) EXPECT_EQ(c, 7.0);

  const alloc::AllocationPlan plan = eng.consult(0, 2.0);
  ASSERT_TRUE(plan.satisfied());
  eng.apply(plan);
  EXPECT_EQ(eng.epoch(), 2u);
  eng.release(std::vector<double>(eng.size(), 0.5));
  EXPECT_EQ(eng.epoch(), 3u);
}

TEST(EngineSnapshot, StatsReportShardLayout) {
  EngineOptions eopts;
  eopts.sink = obs::Sink::none();
  eopts.alloc.sink = obs::Sink::none();
  eopts.threads = 2;
  EnforcementEngine eng(island_economy(2, 3, 0.2), eopts);
  (void)eng.consult(0, 1.0);
  (void)eng.consult(3, 1.0);
  eng.drain();
  const EngineStats st = eng.stats();
  EXPECT_EQ(st.shards, 2u);
  EXPECT_EQ(st.components, 2u);
  EXPECT_FALSE(st.replicated);
  std::uint64_t consults = 0;
  std::size_t participants = 0;
  for (const auto& s : st.shard) {
    consults += s.consults;
    participants += s.participants;
  }
  EXPECT_EQ(consults, 2u);
  EXPECT_EQ(participants, 6u);
  EXPECT_EQ(eng.shard_of(0), eng.shard_of(2));
}

// ------------------------------------------------------------ certification ---

TEST(EngineCertify, CertificationStaysOnByDefault) {
  EngineOptions eopts;
  eopts.sink = obs::Sink::none();
  eopts.alloc.sink = obs::Sink::none();
  EXPECT_TRUE(eopts.alloc.certify);  // engine inherits the allocator default
  eopts.threads = 2;
  EnforcementEngine eng(island_economy(2, 4, 0.25), eopts);
  const alloc::AllocationPlan plan = eng.consult(1, 3.0);
  ASSERT_TRUE(plan.satisfied());
  EXPECT_TRUE(plan.certified);  // no uncertified grant through the engine
  const lp::PipelineStats* st = eng.solver_stats();
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->certified, st->solves);
  EXPECT_EQ(st->exhausted, 0u);
}

// ---------------------------------------------------------------- shutdown ---

TEST(EngineShutdown, EveryPendingFutureResolvesWithAStatus) {
  EngineOptions eopts;
  eopts.threads = 2;
  eopts.sink = obs::Sink::none();
  eopts.alloc.sink = obs::Sink::none();
  EnforcementEngine eng(island_economy(2, 4, 0.3), eopts);

  // Flood the shard queues well past what the workers can process before
  // shutdown lands, then shut down immediately: queued consults must
  // resolve fast with Unavailable, never hang or break their promise.
  std::vector<std::future<EngineResult>> futs;
  futs.reserve(400);
  for (int i = 0; i < 400; ++i)
    futs.push_back(eng.submit(static_cast<std::size_t>(i % 8), 0.5));
  eng.shutdown();

  std::size_t decided = 0, unavailable = 0;
  for (auto& f : futs) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready)
        << "a future was left pending after shutdown()";
    const EngineResult res = f.get();  // never throws broken_promise
    switch (res.status.code()) {
      case StatusCode::Ok:
      case StatusCode::Insufficient:
      case StatusCode::Denied:
      case StatusCode::SolverFailed:
        ++decided;
        break;
      case StatusCode::Unavailable:
        ++unavailable;
        EXPECT_TRUE(res.plan.draw.empty());  // fail-fast: nothing was solved
        break;
      default:
        FAIL() << "unexpected status " << res.status.to_string();
    }
  }
  EXPECT_EQ(decided + unavailable, 400u);
}

TEST(EngineShutdown, IsIdempotentAndRejectsLateTraffic) {
  EngineOptions eopts;
  eopts.sink = obs::Sink::none();
  eopts.alloc.sink = obs::Sink::none();
  EnforcementEngine eng(island_economy(2, 2, 0.3), eopts);
  EXPECT_TRUE(eng.submit(0, 1.0).get().status.ok());
  eng.shutdown();
  eng.shutdown();  // second call is a no-op

  // Post-shutdown submissions resolve immediately with Unavailable; the
  // blocking façade maps that to the same exception a bad argument gets.
  EngineResult late = eng.submit(0, 1.0).get();
  EXPECT_EQ(late.status.code(), StatusCode::Unavailable);
  EXPECT_THROW(eng.consult(0, 1.0), PreconditionError);
  EXPECT_EQ(eng.solver_stats(), nullptr);
  // Snapshot reads still work: the published state outlives the workers.
  EXPECT_EQ(eng.snapshot()->capacity.size(), 4u);
}

}  // namespace
}  // namespace agora::engine
