// Tests for the observability substrate (src/obs): metric semantics,
// EventRing wraparound/overflow accounting, exporter round-trips through the
// JSONL parser, and a multithreaded hammer (the same test tier1.sh runs
// under ThreadSanitizer).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/event_ring.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "obs/timer.h"
#include "util/error.h"

namespace agora::obs {
namespace {

// ---------------------------------------------------------------- counters

TEST(Counter, IncrementAndReset) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAddReset) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(2.5);
  EXPECT_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_EQ(g.value(), 1.5);
  g.reset();
  EXPECT_EQ(g.value(), 0.0);
}

// -------------------------------------------------------------- histograms

TEST(LogHistogram, BasicStatistics) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);

  for (double v : {1.0, 2.0, 4.0, 8.0}) h.observe(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 15.0);
  EXPECT_DOUBLE_EQ(h.mean(), 3.75);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 8.0);

  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
}

TEST(LogHistogram, QuantilesAreMonotonicAndBounded) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  LogHistogram h;
  // Geometric spread across many buckets plus under/overflow extremes.
  for (int i = 0; i < 1000; ++i) h.observe(1e-3 * (1 + i % 50));
  h.observe(1e-12);  // underflow bucket
  h.observe(1e12);   // overflow bucket

  double prev = 0.0;
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double x = h.quantile(q);
    EXPECT_GE(x, prev) << "quantile not monotone at q=" << q;
    EXPECT_GE(x, h.min());
    EXPECT_LE(x, h.max());
    prev = x;
  }
}

TEST(LogHistogram, BucketEdgesAreIncreasing) {
  double prev = 0.0;
  for (std::size_t i = 0; i + 1 < LogHistogram::kBuckets; ++i) {
    const double e = LogHistogram::bucket_edge(i);
    EXPECT_GT(e, prev);
    prev = e;
  }
  EXPECT_TRUE(std::isinf(LogHistogram::bucket_edge(LogHistogram::kBuckets - 1)));
}

TEST(LogHistogram, BucketCountsSumToCount) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  LogHistogram h;
  for (int i = 1; i <= 100; ++i) h.observe(0.01 * i);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < LogHistogram::kBuckets; ++i) total += h.bucket_count(i);
  EXPECT_EQ(total, h.count());
}

// ---------------------------------------------------------------- registry

TEST(MetricsRegistry, FindOrCreateReturnsStableReferences) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x.count");
  Counter& b = reg.counter("x.count");
  EXPECT_EQ(&a, &b);
  Gauge& g1 = reg.gauge("x.level");
  Gauge& g2 = reg.gauge("x.level");
  EXPECT_EQ(&g1, &g2);
  LogHistogram& h1 = reg.histogram("x.seconds");
  LogHistogram& h2 = reg.histogram("x.seconds");
  EXPECT_EQ(&h1, &h2);
  // Same name in a different namespace is a different metric.
  EXPECT_NE(static_cast<void*>(&reg.counter("x.level")), static_cast<void*>(&g1));
}

TEST(MetricsRegistry, VisitInNameOrderAndReset) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  MetricsRegistry reg;
  reg.counter("b").inc(2);
  reg.counter("a").inc(1);
  reg.counter("c").inc(3);
  std::vector<std::string> names;
  reg.visit_counters([&](const std::string& n, const Counter& c) {
    names.push_back(n);
    EXPECT_GT(c.value(), 0u);
  });
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
  EXPECT_EQ(names[2], "c");

  reg.reset();
  std::size_t seen = 0;
  reg.visit_counters([&](const std::string&, const Counter& c) {
    ++seen;
    EXPECT_EQ(c.value(), 0u);  // zeroed, but registration survives
  });
  EXPECT_EQ(seen, 3u);
}

// --------------------------------------------------------------- event ring

TEST(EventRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(EventRing(1).capacity(), 8u);
  EXPECT_EQ(EventRing(8).capacity(), 8u);
  EXPECT_EQ(EventRing(9).capacity(), 16u);
  EXPECT_EQ(EventRing(1000).capacity(), 1024u);
}

TEST(EventRing, RetainsEventsInOrder) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  EventRing ring(16);
  for (int i = 0; i < 10; ++i)
    ring.emit(static_cast<double>(i), EventKind::RequestAdmitted,
              static_cast<std::uint32_t>(i));
  EXPECT_EQ(ring.pushed(), 10u);
  EXPECT_EQ(ring.overwritten(), 0u);
  EXPECT_EQ(ring.size(), 10u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].time, static_cast<double>(i));
    EXPECT_EQ(events[static_cast<std::size_t>(i)].actor, static_cast<std::uint32_t>(i));
  }
}

TEST(EventRing, WraparoundKeepsNewestAndCountsOverwrites) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  EventRing ring(8);
  ASSERT_EQ(ring.capacity(), 8u);
  for (int i = 0; i < 20; ++i) ring.emit(static_cast<double>(i), EventKind::ConsultStarted);
  EXPECT_EQ(ring.pushed(), 20u);
  EXPECT_EQ(ring.overwritten(), 12u);
  EXPECT_EQ(ring.size(), 8u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first window over the newest 8 events: 12, 13, ..., 19.
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(events[static_cast<std::size_t>(i)].time, static_cast<double>(12 + i));
}

TEST(EventRing, ClearEmptiesTheRing) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  EventRing ring(8);
  for (int i = 0; i < 5; ++i) ring.emit(1.0, EventKind::GrmRetry);
  ring.clear();
  EXPECT_EQ(ring.pushed(), 0u);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
  ring.emit(2.0, EventKind::GrmResync);
  ASSERT_EQ(ring.snapshot().size(), 1u);
  EXPECT_EQ(ring.snapshot()[0].kind, EventKind::GrmResync);
}

TEST(EventRing, EveryKindHasADistinctName) {
  std::vector<std::string> names;
  for (std::uint32_t k = 0; k <= static_cast<std::uint32_t>(EventKind::ClientDeadline); ++k) {
    const std::string name = to_string(static_cast<EventKind>(k));
    EXPECT_NE(name, "unknown");
    for (const auto& prev : names) EXPECT_NE(name, prev);
    names.push_back(name);
  }
}

// -------------------------------------------------------------------- sink

TEST(Sink, NullRegistryResolvesToScratchMetrics) {
  Sink none = Sink::none();
  // Must not crash and must hand back usable metrics.
  Counter& c = none.counter("scratch.count");
  c.inc();
  none.gauge("scratch.level").set(1.0);
  none.histogram("scratch.seconds").observe(0.5);
  none.event(1.0, EventKind::RequestAdmitted);  // dropped: no ring
}

TEST(Sink, RoutesToProvidedRegistryAndRing) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  MetricsRegistry reg;
  EventRing ring(8);
  Sink sink{&reg, &ring};
  sink.counter("s.count").inc(3);
  sink.event(7.0, EventKind::BusFaultDrop, 1, 2, 0.5, 0.25);
  EXPECT_EQ(reg.counter("s.count").value(), 3u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].time, 7.0);
  EXPECT_EQ(events[0].kind, EventKind::BusFaultDrop);
  EXPECT_EQ(events[0].actor, 1u);
  EXPECT_EQ(events[0].peer, 2u);
  EXPECT_EQ(events[0].a, 0.5);
  EXPECT_EQ(events[0].b, 0.25);
}

TEST(Sink, GlobalIsCoherent) {
  Sink g1 = Sink::global();
  Sink g2 = Sink::global();
  EXPECT_EQ(g1.registry, g2.registry);
  EXPECT_EQ(g1.events, g2.events);
  EXPECT_EQ(g1.registry, &MetricsRegistry::global());
}

// ------------------------------------------------------------------- timer

TEST(ScopedTimer, RecordsNonNegativeDurations) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  LogHistogram h;
  {
    ScopedTimer t(&h);
    EXPECT_GE(t.elapsed(), 0.0);
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.min(), 0.0);
  { ScopedTimer t(nullptr); }  // null histogram: disabled, must not crash
  EXPECT_EQ(h.count(), 1u);
}

// --------------------------------------------------------------- exporters

TEST(Export, JsonlRoundTripsThroughParser) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  MetricsRegistry reg;
  reg.counter("rt.count").inc(42);
  reg.gauge("rt.level").set(-1.5);
  LogHistogram& h = reg.histogram("rt.seconds");
  for (double v : {0.5, 1.0, 2.0}) h.observe(v);
  std::vector<TraceEvent> events{
      TraceEvent{3.25, EventKind::RequestRedirected, 4, 7, 0, 0.125, 2.0},
      TraceEvent{9.0, EventKind::LpSolveCertified, 11, 1, 0, 0.0, 33.0},
  };

  std::stringstream ss;
  write_snapshot_jsonl(ss, reg, events);
  const auto records = parse_jsonl(ss);
  ASSERT_EQ(records.size(), 5u);

  EXPECT_EQ(records[0].at("type"), "counter");
  EXPECT_EQ(records[0].at("name"), "rt.count");
  EXPECT_EQ(records[0].at("value"), "42");

  EXPECT_EQ(records[1].at("type"), "gauge");
  EXPECT_EQ(records[1].at("name"), "rt.level");
  EXPECT_DOUBLE_EQ(std::stod(records[1].at("value")), -1.5);

  EXPECT_EQ(records[2].at("type"), "histogram");
  EXPECT_EQ(records[2].at("name"), "rt.seconds");
  EXPECT_EQ(records[2].at("count"), "3");
  EXPECT_DOUBLE_EQ(std::stod(records[2].at("sum")), 3.5);
  EXPECT_DOUBLE_EQ(std::stod(records[2].at("min")), 0.5);
  EXPECT_DOUBLE_EQ(std::stod(records[2].at("max")), 2.0);
  EXPECT_TRUE(records[2].count("p50"));
  EXPECT_TRUE(records[2].count("bucket_le"));

  EXPECT_EQ(records[3].at("type"), "event");
  EXPECT_DOUBLE_EQ(std::stod(records[3].at("t")), 3.25);
  EXPECT_EQ(records[3].at("kind"), "request_redirected");
  EXPECT_EQ(records[3].at("actor"), "4");
  EXPECT_EQ(records[3].at("peer"), "7");
  EXPECT_DOUBLE_EQ(std::stod(records[3].at("a")), 0.125);
  EXPECT_DOUBLE_EQ(std::stod(records[3].at("b")), 2.0);

  EXPECT_EQ(records[4].at("kind"), "lp_solve_certified");
}

TEST(Export, JsonValuesRoundTripExactly) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  // Doubles with no short decimal form must still round-trip bit-exactly.
  MetricsRegistry reg;
  const double awkward = 0.1 + 0.2;  // 0.30000000000000004
  reg.gauge("exact").set(awkward);
  std::stringstream ss;
  write_metrics_jsonl(ss, reg);
  const auto records = parse_jsonl(ss);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(std::stod(records[0].at("value")), awkward);
}

TEST(Export, CsvSnapshotHasHeaderAndOneRowPerRecord) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  MetricsRegistry reg;
  reg.counter("c1").inc();
  reg.gauge("g1").set(2.0);
  reg.histogram("h1").observe(1.0);
  std::vector<TraceEvent> events{TraceEvent{1.0, EventKind::GrmResync, 2, 3, 0, 0.0, 0.0}};

  std::stringstream ss;
  write_snapshot_csv(ss, reg, events);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(ss, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 5u);  // header + counter + gauge + histogram + event
  EXPECT_EQ(lines[0],
            "record,name,value,count,sum,min,max,p50,p95,p99,t,kind,actor,peer,a,b");
  EXPECT_EQ(lines[1].rfind("counter,c1,1", 0), 0u);
  EXPECT_EQ(lines[2].rfind("gauge,g1,2", 0), 0u);
  EXPECT_EQ(lines[3].rfind("histogram,h1,", 0), 0u);
  EXPECT_EQ(lines[4].rfind("event,", 0), 0u);
  EXPECT_NE(lines[4].find("grm_resync"), std::string::npos);
}

TEST(Export, WriteSnapshotPicksFormatByExtension) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  MetricsRegistry reg;
  reg.counter("f.count").inc(5);
  EventRing ring(8);
  ring.emit(1.0, EventKind::ClientDeadline, 9);
  Sink sink{&reg, &ring};

  const auto dir = std::filesystem::temp_directory_path();
  const std::string jsonl = (dir / "obs_test_snapshot.jsonl").string();
  const std::string csv = (dir / "obs_test_snapshot.csv").string();

  write_snapshot(jsonl, sink);
  std::ifstream jf(jsonl);
  const auto records = parse_jsonl(jf);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].at("type"), "counter");
  EXPECT_EQ(records[1].at("type"), "event");

  write_snapshot(csv, sink);
  std::ifstream cf(csv);
  std::string header;
  ASSERT_TRUE(std::getline(cf, header));
  EXPECT_EQ(header.rfind("record,", 0), 0u);

  std::filesystem::remove(jsonl);
  std::filesystem::remove(csv);
  EXPECT_THROW(write_snapshot("/nonexistent-dir/x.jsonl", sink), IoError);
}

TEST(Export, ParserRejectsMalformedInput) {
  std::stringstream bad1("{\"unterminated\":\"...\n");
  EXPECT_THROW(parse_jsonl(bad1), IoError);
  std::stringstream bad2("{\"k\":1} trailing\n");
  EXPECT_THROW(parse_jsonl(bad2), IoError);
  std::stringstream empty("\n\n");
  EXPECT_TRUE(parse_jsonl(empty).empty());
}

// ------------------------------------------------------------------ hammer

// Concurrency soak: many threads pounding one registry's metrics and one
// ring. Counts must be exact (no lost updates); the ring must stay
// internally consistent. tier1.sh runs this test under ThreadSanitizer.
TEST(ObsHammer, ConcurrentWritersLoseNothing) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  constexpr int kThreads = 8;
  constexpr int kOps = 20000;

  MetricsRegistry reg;
  EventRing ring(1024);
  Sink sink{&reg, &ring};
  // Resolve handles up front, as instrumented code does.
  Counter& count = sink.counter("hammer.count");
  Gauge& level = sink.gauge("hammer.level");
  LogHistogram& hist = sink.histogram("hammer.seconds");

  std::atomic<int> start{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      start.fetch_add(1);
      while (start.load() < kThreads) {
      }
      for (int i = 0; i < kOps; ++i) {
        count.inc();
        level.add(1.0);
        hist.observe(1e-6 * (1 + (i & 1023)));
        sink.event(static_cast<double>(i), EventKind::RequestAdmitted,
                   static_cast<std::uint32_t>(t), static_cast<std::uint32_t>(i));
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto total = static_cast<std::uint64_t>(kThreads) * kOps;
  EXPECT_EQ(count.value(), total);
  EXPECT_DOUBLE_EQ(level.value(), static_cast<double>(total));
  EXPECT_EQ(hist.count(), total);
  std::uint64_t bucket_total = 0;
  for (std::size_t i = 0; i < LogHistogram::kBuckets; ++i)
    bucket_total += hist.bucket_count(i);
  EXPECT_EQ(bucket_total, total);

  EXPECT_EQ(ring.pushed(), total);
  EXPECT_EQ(ring.overwritten(), total - ring.capacity());
  const auto events = ring.snapshot();
  // Wraparound collisions may drop a bounded number of slots, never invent.
  EXPECT_LE(events.size(), ring.capacity());
  for (const auto& ev : events) {
    EXPECT_EQ(ev.kind, EventKind::RequestAdmitted);
    EXPECT_LT(ev.actor, static_cast<std::uint32_t>(kThreads));
    EXPECT_LT(ev.peer, static_cast<std::uint32_t>(kOps));
  }
}

}  // namespace
}  // namespace agora::obs
