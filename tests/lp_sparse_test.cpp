// lp_sparse_test.cpp -- the sparse LU basis path of the revised simplex.
//
// Three contracts under test:
//   1. SparseLu itself: after a solve, the factored basis (LU + eta file)
//      must actually solve B x = b and B' y = c_B against the basis columns
//      it claims to represent.
//   2. Sparse-vs-dense differential fuzz: over random corpora (well- and
//      ill-conditioned), the sparse-basis and dense-inverse backends must
//      agree on status, both certify under lp::Verifier, and match
//      objectives -- the basis representation is an implementation detail.
//   3. Presolve round trip: solving with presolve on must produce answers
//      (including reconstructed duals) that certify against the ORIGINAL
//      problem and match the presolve-off solve.
// Plus the update-vs-refactorization property: long pivot sequences through
// the eta file must land on the same answers as a residual-forced
// refactorize-every-step run.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "lp/brute_force.h"
#include "lp/certify.h"
#include "lp/presolve.h"
#include "lp/problem.h"
#include "lp/solve.h"
#include "lp/sparse_lu.h"
#include "lp/standard_form.h"
#include "lp/workspace.h"
#include "util/rng.h"

namespace agora::lp {
namespace {

SolveOptions sparse_opts() {
  SolveOptions o;
  o.backend = Backend::Revised;
  o.basis = BasisRep::SparseLu;
  o.presolve = false;
  return o;
}

SolveOptions dense_opts() {
  SolveOptions o = sparse_opts();
  o.basis = BasisRep::DenseInverse;
  return o;
}

/// Random box-bounded LP; bounded by construction so brute force can act as
/// an oracle on small instances. Mixed relations, moderate conditioning.
Problem random_lp(Pcg32& rng, std::size_t n, std::size_t m, double mag_span = 1.0) {
  Problem p(rng.next_double() < 0.5 ? Sense::Minimize : Sense::Maximize);
  for (std::size_t j = 0; j < n; ++j) {
    const double lo = rng.uniform(-2.0, 1.0);
    p.add_variable("x" + std::to_string(j), lo, lo + rng.uniform(0.5, 4.0),
                   rng.uniform(-1.0, 1.0) * std::pow(10.0, rng.uniform(-mag_span, mag_span)));
  }
  for (std::size_t i = 0; i < m; ++i) {
    std::vector<double> coeffs(n);
    for (auto& c : coeffs) {
      c = rng.next_double() < 0.4
              ? 0.0  // keep the matrix sparse so the LU path is exercised
              : rng.uniform(-1.0, 1.0) * std::pow(10.0, rng.uniform(-mag_span, mag_span));
    }
    const double pick = rng.next_double();
    const Relation rel = pick < 0.1    ? Relation::Equal
                         : pick < 0.45 ? Relation::GreaterEqual
                                       : Relation::LessEqual;
    p.add_constraint(std::move(coeffs), rel, rng.uniform(-3.0, 3.0));
  }
  return p;
}

/// Multiply the basis matrix (columns `basis[k]` of sf's CSC mirror) by a
/// position-indexed vector: out[row] = sum_k B[:,k] x[k].
std::vector<double> basis_times(const StandardForm& sf, const std::vector<std::size_t>& basis,
                                const std::vector<double>& x) {
  std::vector<double> out(sf.rows(), 0.0);
  for (std::size_t k = 0; k < basis.size(); ++k) {
    const std::size_t j = basis[k];
    for (std::size_t t = sf.col_start[j]; t < sf.col_start[j + 1]; ++t)
      out[sf.col_row[t]] += sf.col_val[t] * x[k];
  }
  return out;
}

// --------------------------------------------------------------- SparseLu ---

TEST(SparseLu, FtranBtranSolveAgainstTheFinalBasis) {
  Pcg32 rng(2024);
  const Problem p = random_lp(rng, 20, 14);
  SolveWorkspace ws;
  const SolveResult r = lp::solve(p, sparse_opts(), &ws);
  ASSERT_EQ(r.status, Status::Optimal);
  ASSERT_TRUE(ws.slu.factorized());
  const std::size_t m = ws.sf.rows();
  ASSERT_EQ(ws.slu.dim(), m);

  // FTRAN: x = B^-1 b, checked by multiplying back through the CSC columns.
  std::vector<double> x(ws.sf.b);
  ws.slu.ftran(x);
  const std::vector<double> bx = basis_times(ws.sf, ws.basis, x);
  double bnorm = 0.0;
  for (double v : ws.sf.b) bnorm = std::max(bnorm, std::fabs(v));
  for (std::size_t i = 0; i < m; ++i)
    EXPECT_NEAR(bx[i], ws.sf.b[i], 1e-8 * (1.0 + bnorm)) << "row " << i;

  // BTRAN: y = B^-T c_B, checked via y' B[:,k] == c_B[k].
  std::vector<double> cb(m);
  double cnorm = 0.0;
  for (std::size_t k = 0; k < m; ++k) {
    cb[k] = ws.sf.c[ws.basis[k]];
    cnorm = std::max(cnorm, std::fabs(cb[k]));
  }
  std::vector<double> y(cb);
  ws.slu.btran(y);
  for (std::size_t k = 0; k < m; ++k) {
    double dot = 0.0;
    const std::size_t j = ws.basis[k];
    for (std::size_t t = ws.sf.col_start[j]; t < ws.sf.col_start[j + 1]; ++t)
      dot += ws.sf.col_val[t] * y[ws.sf.col_row[t]];
    EXPECT_NEAR(dot, cb[k], 1e-8 * (1.0 + cnorm)) << "basis position " << k;
  }
}

TEST(SparseLu, ReportsFillInAndConditionTelemetry) {
  Pcg32 rng(7);
  const Problem p = random_lp(rng, 30, 22);
  SolveWorkspace ws;
  const SolveResult r = lp::solve(p, sparse_opts(), &ws);
  ASSERT_EQ(r.status, Status::Optimal);
  EXPECT_GT(r.stats.basis_nnz, 0u);
  EXPECT_GE(r.stats.lu_nnz, r.stats.basis_nnz == 0 ? 0u : 1u);
  EXPECT_GT(r.stats.condition_estimate, 0.0);
  EXPECT_GT(r.stats.refactorizations, 0u);
}

// --------------------------------------------- sparse vs dense, well-cond ---

TEST(SparseDense, DifferentialFuzzAgreesAndCertifies) {
  Pcg32 rng(555);
  std::size_t optimal_seen = 0;
  for (int trial = 0; trial < 120; ++trial) {
    const std::size_t n = 2 + rng.uniform_u32(8);
    const std::size_t m = 1 + rng.uniform_u32(8);
    const Problem p = random_lp(rng, n, m);
    const SolveResult sp = lp::solve(p, sparse_opts());
    const SolveResult de = lp::solve(p, dense_opts());
    ASSERT_EQ(sp.status, de.status) << "trial " << trial;
    if (sp.status != Status::Optimal) continue;
    ++optimal_seen;
    EXPECT_NEAR(sp.objective, de.objective, 1e-7 * (1.0 + std::fabs(de.objective)))
        << "trial " << trial;
    Verifier v;
    const Certificate cs = v.certify(p, sp);
    const Certificate cd = v.certify(p, de);
    EXPECT_TRUE(cs.certified) << "trial " << trial << " sparse: "
                              << (cs.reject ? cs.reject : "");
    EXPECT_TRUE(cd.certified) << "trial " << trial << " dense: "
                              << (cd.reject ? cd.reject : "");
  }
  EXPECT_GE(optimal_seen, 20u);  // the corpus must not be degenerate
}

// ---------------------------------------------- ill-conditioned corpora -----

TEST(SparseDense, IllConditionedCorpusNeverSilentlyWrong) {
  // Coefficients spanning ~6 orders of magnitude. Sparse and dense may
  // legitimately disagree near singularity; the contract is weaker but
  // checkable: any answer that certifies must match exact enumeration.
  Pcg32 rng(31001);
  std::size_t certified = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 2 + rng.uniform_u32(3);
    const std::size_t m = 1 + rng.uniform_u32(3);
    const Problem p = random_lp(rng, n, m, 3.0);
    const SolveResult exact = brute_force_solve(p);
    for (const bool sparse : {true, false}) {
      const SolveResult r = lp::solve(p, sparse ? sparse_opts() : dense_opts());
      Verifier v;
      const Certificate cert = v.certify(p, r);
      if (!cert.certified) continue;
      ++certified;
      if (cert.claim == Certificate::Claim::Optimal) {
        ASSERT_EQ(exact.status, Status::Optimal) << "trial " << trial;
        EXPECT_NEAR(r.objective, exact.objective,
                    1e-5 * (1.0 + std::fabs(exact.objective)))
            << "trial " << trial << (sparse ? " sparse" : " dense");
      } else if (cert.claim == Certificate::Claim::Infeasible) {
        EXPECT_EQ(exact.status, Status::Infeasible) << "trial " << trial;
      }
    }
  }
  EXPECT_GE(certified, 40u);  // out of 60 attempts
}

// ------------------------------------- eta updates vs fresh factorization ---

TEST(SparseLu, EtaFileMatchesRefactorizeEveryStep) {
  // A dense random LP large enough for hundreds of pivots. The default run
  // carries pivots through the product-form eta file between periodic
  // refactorizations; the forced run (refactor_residual = 0) rebuilds the
  // LU whenever the xb residual is nonzero, i.e. essentially every
  // refinement checkpoint. Both must land on the same optimum.
  Pcg32 rng(90210);
  const std::size_t n = 70, m = 50;
  Problem p;
  std::vector<double> interior(n);
  for (std::size_t j = 0; j < n; ++j) {
    interior[j] = rng.uniform(0.0, 1.0);
    p.add_variable("x" + std::to_string(j), 0.0, 3.0, rng.uniform(-2.0, 2.0));
  }
  for (std::size_t i = 0; i < m; ++i) {
    std::vector<double> coeffs(n);
    double at = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      coeffs[j] = rng.uniform(-1.0, 1.0);
      at += coeffs[j] * interior[j];
    }
    p.add_constraint(std::move(coeffs), Relation::LessEqual, at + 0.25);
  }

  const SolveResult lazy = lp::solve(p, sparse_opts());
  SolveOptions eager_opts = sparse_opts();
  eager_opts.tols.refactor_residual = 0.0;
  const SolveResult eager = lp::solve(p, eager_opts);
  const SolveResult dense = lp::solve(p, dense_opts());

  ASSERT_EQ(lazy.status, Status::Optimal);
  ASSERT_EQ(eager.status, Status::Optimal);
  ASSERT_EQ(dense.status, Status::Optimal);
  EXPECT_GT(lazy.iterations, kRefactorInterval);  // eta file really exercised
  EXPECT_GT(lazy.stats.max_eta_count, 0u);
  EXPECT_LE(lazy.stats.max_eta_count, kRefactorInterval);
  EXPECT_GT(eager.stats.residual_refactorizations, lazy.stats.residual_refactorizations);
  const double scale = 1.0 + std::fabs(dense.objective);
  EXPECT_NEAR(lazy.objective, dense.objective, 1e-6 * scale);
  EXPECT_NEAR(eager.objective, dense.objective, 1e-6 * scale);
  Verifier v;
  EXPECT_TRUE(v.certify(p, lazy).certified);
  EXPECT_TRUE(v.certify(p, eager).certified);
}

TEST(SparseLu, WarmSequencesReuseTheFactorizationAndStayCorrect) {
  // Long warm-started perturbation runs push etas into the factorization
  // across solves; every warm answer must match its cold counterpart.
  Pcg32 rng(777);
  Problem p;
  const std::size_t n = 10;
  for (std::size_t j = 0; j < n; ++j)
    p.add_variable("d" + std::to_string(j), 0.0, 1.0, 0.0);
  p.add_variable("theta", 0.0, kInfinity, 1.0);
  {
    std::vector<double> demand(n + 1, 1.0);
    demand[n] = 0.0;
    p.add_constraint(std::move(demand), Relation::Equal, 1.0);
  }
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> row(n + 1, 0.0);
    for (std::size_t k = 0; k < n; ++k)
      row[k] = k == i ? rng.uniform(0.5, 1.0)
                      : (rng.next_double() < 0.3 ? rng.uniform(0.05, 0.4) : 0.0);
    row[n] = -1.0;
    p.add_constraint(std::move(row), Relation::LessEqual, 0.0);
  }

  SolveWorkspace ws;
  for (int step = 0; step < 150; ++step) {
    p.set_rhs(0, 0.2 + 0.01 * (step % 53));
    const SolveResult cold = lp::solve(p, sparse_opts());
    const SolveResult warm = lp::solve(p, sparse_opts(), &ws);
    ASSERT_EQ(cold.status, warm.status) << "step " << step;
    if (cold.status != Status::Optimal) continue;
    EXPECT_NEAR(cold.objective, warm.objective, 1e-7) << "step " << step;
    ASSERT_EQ(cold.duals.size(), warm.duals.size());
    for (std::size_t i = 0; i < cold.duals.size(); ++i)
      EXPECT_NEAR(cold.duals[i], warm.duals[i], 1e-7) << "step " << step << " dual " << i;
  }
}

// ------------------------------------------------ presolve round tripping ---

TEST(Presolve, RoundTripCertifiesAgainstOriginalProblem) {
  // Random corpora seeded with presolve bait -- fixed variables, singleton
  // rows, empty rows, zero columns -- solved with presolve on vs off. The
  // presolved answer (solution AND reconstructed duals) must certify
  // against the original, unreduced problem.
  Pcg32 rng(424242);
  std::size_t reduced_instances = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 3 + rng.uniform_u32(5);
    Problem p(rng.next_double() < 0.5 ? Sense::Minimize : Sense::Maximize);
    for (std::size_t j = 0; j < n; ++j) {
      if (rng.next_double() < 0.2) {
        const double v = rng.uniform(-1.0, 1.0);
        p.add_variable("f" + std::to_string(j), v, v, rng.uniform(-2.0, 2.0));
      } else {
        const double lo = rng.uniform(-2.0, 0.5);
        p.add_variable("x" + std::to_string(j), lo, lo + rng.uniform(0.5, 3.0),
                       rng.uniform(-2.0, 2.0));
      }
    }
    const std::size_t m = 2 + rng.uniform_u32(4);
    for (std::size_t i = 0; i < m; ++i) {
      std::vector<double> coeffs(n, 0.0);
      const double shape = rng.next_double();
      if (shape < 0.25) {
        // Singleton row.
        coeffs[rng.uniform_u32(static_cast<std::uint32_t>(n))] = rng.uniform(0.5, 2.0);
      } else if (shape < 0.32) {
        // Empty row (feasible or not -- presolve must decide it).
      } else {
        for (auto& c : coeffs)
          if (rng.next_double() < 0.6) c = rng.uniform(-1.5, 1.5);
      }
      const double pick = rng.next_double();
      const Relation rel = pick < 0.25   ? Relation::Equal
                           : pick < 0.6  ? Relation::GreaterEqual
                                         : Relation::LessEqual;
      p.add_constraint(std::move(coeffs), rel, rng.uniform(-2.0, 2.0));
    }

    SolveOptions off = sparse_opts();
    SolveOptions on = sparse_opts();
    on.presolve = true;
    const SolveResult plain = lp::solve(p, off);
    const SolveResult pre = lp::solve(p, on);
    ASSERT_EQ(plain.status, pre.status) << "trial " << trial;
    const PresolveOutcome outcome = presolve(p);
    if (outcome.decided.has_value() ||
        outcome.reduced.num_variables() < p.num_variables() ||
        outcome.reduced.num_constraints() < p.num_constraints())
      ++reduced_instances;
    if (plain.status != Status::Optimal) continue;
    EXPECT_NEAR(plain.objective, pre.objective, 1e-6 * (1.0 + std::fabs(plain.objective)))
        << "trial " << trial;
    ASSERT_EQ(pre.x.size(), p.num_variables()) << "trial " << trial;
    Verifier v;
    const Certificate cert = v.certify(p, pre);
    EXPECT_TRUE(cert.certified) << "trial " << trial << ": "
                                << (cert.reject ? cert.reject : "");
    if (!pre.duals.empty()) {
      EXPECT_FALSE(cert.primal_only) << "trial " << trial;
    }
  }
  // The corpus is built to actually trigger reductions, not vacuously pass.
  EXPECT_GE(reduced_instances, 30u);
}

TEST(Presolve, OffPathMatchesDirectSolveExactly) {
  // presolve = false must be bit-identical to the raw backend call -- the
  // unified entry point may not perturb the historical path.
  Pcg32 rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    const Problem p = random_lp(rng, 6, 5);
    const SolveResult a = lp::solve(p, sparse_opts());
    const SolveResult b = lp::solve(p, sparse_opts());
    ASSERT_EQ(a.status, b.status);
    EXPECT_EQ(a.objective, b.objective);
    EXPECT_EQ(a.x, b.x);
    EXPECT_EQ(a.duals, b.duals);
    EXPECT_EQ(a.iterations, b.iterations);
  }
}

}  // namespace
}  // namespace agora::lp
