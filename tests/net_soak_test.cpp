// Long-running wire-boundary soak (tier2-soak label; tier1.sh runs it
// under ASan): a service under continuous client churn, including a
// crash/restart window on the same port, must keep its resource gauges
// bounded (fds, admission queue, in-flight window, connections) and lose
// no in-flight call -- every consult ever issued resolves with a definite
// status, server-decided or client-side.
#include <gtest/gtest.h>

#include <dirent.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "agree/matrices.h"
#include "engine/engine.h"
#include "net/client.h"
#include "net/service.h"
#include "util/rng.h"

namespace agora::net {
namespace {

using Clock = std::chrono::steady_clock;

std::size_t open_fd_count() {
  std::size_t n = 0;
  DIR* d = ::opendir("/proc/self/fd");
  if (d == nullptr) return 0;
  while (::readdir(d) != nullptr) ++n;
  ::closedir(d);
  return n;
}

agree::AgreementSystem soak_economy() {
  constexpr std::size_t n = 8;
  agree::AgreementSystem sys(n);
  for (std::size_t i = 0; i < n; ++i) sys.capacity[i] = 12.0 + static_cast<double>(i % 3);
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t b = 0; b < n; ++b)
      if (a != b) sys.relative(a, b) = 0.1;
  return sys;
}

TEST(NetSoak, ChurnAndRestartKeepResourcesBoundedAndLoseNothing) {
  const auto t0 = Clock::now();
  const agree::AgreementSystem sys = soak_economy();

  ServiceOptions sopts;
  sopts.max_queue = 64;
  sopts.max_inflight = 16;
  sopts.max_connections = 64;
  sopts.drain_grace_ms = 2000;

  auto engine = std::make_unique<engine::EnforcementEngine>(sys, [] {
    engine::EngineOptions e;
    e.threads = 2;
    return e;
  }());
  auto service = std::make_unique<AgoraService>(*engine, sopts);
  ASSERT_TRUE(service->start().ok());
  const std::uint16_t port = service->port();

  const std::size_t fd_baseline = open_fd_count();

  // Churning clients: each worker repeatedly builds a short-lived Client,
  // issues a handful of consults, and tears it down -- connection churn,
  // not just request load. Every call must return a definite status.
  constexpr int kWorkers = 6;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> issued{0}, resolved{0}, server_decided{0}, uncertified{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      Pcg32 rng(0x50AC0000u + static_cast<std::uint64_t>(w));
      while (!stop.load(std::memory_order_relaxed)) {
        ClientOptions copt;
        copt.endpoints = {Endpoint{"", port}};
        copt.max_attempts = 3;
        copt.connect_timeout_ms = 200;
        copt.seed = (static_cast<std::uint64_t>(rng.next_u32()) << 32) | rng.next_u32();
        Client client(copt);
        const int burst = 1 + static_cast<int>(rng.uniform_u32(8));
        for (int i = 0; i < burst && !stop.load(std::memory_order_relaxed); ++i) {
          issued++;
          const ConsultOutcome out = client.consult(
              rng.uniform_u32(8), 0.2 + rng.next_double() * 3.0, 500);
          resolved++;  // consult() returned: the call did not hang or vanish
          switch (out.status.code()) {
            case StatusCode::Ok:
              if (!out.reply.certified) uncertified++;
              server_decided++;
              break;
            case StatusCode::Insufficient:
            case StatusCode::Denied:
            case StatusCode::SolverFailed:
              server_decided++;
              break;
            default:
              break;  // shed or client-side verdict: definite, not decided
          }
        }
      }
    });
  }

  // Phase 1: steady churn.
  std::this_thread::sleep_for(std::chrono::milliseconds(1200));
  const std::size_t fd_mid = open_fd_count();

  // Phase 2: crash/restart window -- drain and destroy the service, leave
  // the port dark while clients keep hammering it, then restart on the
  // SAME port. Clients must ride it out with definite failures + retries.
  ServiceStats first_stats;
  {
    service->request_drain();
    const auto deadline = Clock::now() + std::chrono::seconds(10);
    while (service->running() && Clock::now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_FALSE(service->running()) << "drain did not finish";
    service->stop();
    first_stats = service->stats();
    service.reset();
    engine.reset();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));  // dark window

  auto engine2 = std::make_unique<engine::EnforcementEngine>(sys, [] {
    engine::EngineOptions e;
    e.threads = 2;
    return e;
  }());
  ServiceOptions sopts2 = sopts;
  sopts2.port = port;
  auto service2 = std::make_unique<AgoraService>(*engine2, sopts2);
  Status restarted = service2->start();
  for (int attempt = 0; !restarted.ok() && attempt < 50; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    restarted = service2->start();
  }
  ASSERT_TRUE(restarted.ok()) << "could not rebind " << port << ": "
                              << restarted.to_string();

  // Phase 3: churn against the restarted service.
  const std::uint64_t decided_before_phase3 = server_decided.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(1200));
  stop.store(true);
  for (auto& t : workers) t.join();

  service2->stop();
  const ServiceStats s2 = service2->stats();
  const std::size_t fd_end = open_fd_count();

  // Nothing lost: every issued consult resolved (the counters are bumped
  // around a blocking call, so equality at join is the no-hang proof), and
  // the service answered everything it admitted, across both lifetimes.
  EXPECT_EQ(issued.load(), resolved.load());
  EXPECT_EQ(first_stats.consults, first_stats.answered);
  EXPECT_EQ(s2.consults, s2.answered);
  EXPECT_GT(server_decided.load(), 0u);
  EXPECT_GT(server_decided.load() - decided_before_phase3, 0u)
      << "no request was served after the restart";
  EXPECT_EQ(uncertified.load(), 0u) << "an uncertified grant crossed the wire";

  // Bounded gauges across both service lifetimes.
  for (const ServiceStats* s : {static_cast<const ServiceStats*>(&first_stats), &s2}) {
    EXPECT_LE(s->peak_queue, sopts.max_queue);
    EXPECT_LE(s->peak_inflight, sopts.max_inflight);
    EXPECT_LE(s->peak_connections, sopts.max_connections);
    EXPECT_EQ(s->accepted, s->closed) << "connection leak";
  }

  // Fd bound: steady-state churn must not accumulate descriptors. The
  // slack covers transient client sockets open at sample time.
  EXPECT_LE(fd_mid, fd_baseline + 2 * kWorkers + 8);
  EXPECT_LE(fd_end, fd_baseline + 8);

  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - t0);
  RecordProperty("soak_ms", static_cast<int>(elapsed.count()));
  RecordProperty("consults", static_cast<int>(issued.load()));
}

}  // namespace
}  // namespace agora::net
