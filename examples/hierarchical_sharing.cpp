// hierarchical_sharing -- the paper's two structured-sharing ideas together:
//
//   * virtual currencies (Example 2 / Figure 2) to decouple one subset of a
//     principal's agreements from fluctuations in another, and
//   * hierarchical agreement structures with multi-grid LP refinement
//     (Section 3.2): groups resolve requests internally when they can and
//     escalate to a coarse inter-group LP when they cannot.
//
// Build & run:  ./build/examples/hierarchical_sharing
#include <cstdio>

#include "agora/agora.h"

using namespace agora;

int main() {
  // --- Part 1: virtual currencies decouple agreement subsets. -------------
  std::printf("--- virtual currencies (Example 2) ---\n");
  core::Economy e;
  const auto disk = e.add_resource_type("disk", "TB");
  const auto a = e.add_principal("A", 1000.0);
  const auto b = e.add_principal("B", 100.0);
  const auto c = e.add_principal("C", 100.0);
  const auto d = e.add_principal("D", 100.0);
  e.fund_with_resource(e.default_currency(a), disk, 10.0);
  e.fund_with_resource(e.default_currency(b), disk, 15.0);

  const auto a1 = e.create_virtual_currency(a, "A1", 100.0);
  const auto a2 = e.create_virtual_currency(a, "A2", 100.0);
  e.issue_relative(e.default_currency(a), a1, 300.0, disk);  // 30% of A -> A1
  e.issue_relative(e.default_currency(a), a2, 500.0, disk);  // 50% of A -> A2
  e.issue_relative(a1, e.default_currency(c), 100.0, disk);  // all of A1 -> C
  e.issue_relative(a2, e.default_currency(d), 40.0, disk);
  e.issue_relative(a2, e.default_currency(b), 60.0, disk);

  const auto show = [&](const char* when) {
    const core::Valuation v = core::value_economy(e);
    std::printf("%s: C=%.2f  D=%.2f  B=%.2f (TB)\n", when,
                v.currency_value(e.default_currency(c), disk),
                v.currency_value(e.default_currency(d), disk),
                v.currency_value(e.default_currency(b), disk));
  };
  show("before");
  // A reshapes the C-subset (inflates A1) -- B and D must not move.
  e.set_face_value(a1, 200.0);
  show("after inflating A1 (only C's side changes)");

  // --- Part 2: hierarchical multi-grid allocation. -------------------------
  std::printf("\n--- hierarchical multi-grid allocation ---\n");
  constexpr std::size_t kSites = 12;
  constexpr std::size_t kGroups = 3;
  agree::AgreementSystem sys(kSites);
  sys.relative = agree::hierarchical(kSites, kGroups, /*intra=*/0.15, /*inter=*/0.20);
  for (std::size_t i = 0; i < kSites; ++i)
    sys.capacity[i] = (i % 4 == 0) ? 2.0 : 12.0;  // gateways are small sites

  const auto groups = agree::hierarchical_groups(kSites, kGroups);
  alloc::HierarchicalAllocator hier(sys, groups);
  alloc::Allocator flat(sys);

  for (double request : {6.0, 18.0}) {
    std::printf("\nsite 1 requests %.0f units:\n", request);
    const alloc::AllocationPlan hp = hier.allocate(1, request);
    const alloc::AllocationPlan fp = flat.allocate(1, request);
    if (!hp.satisfied() || !fp.satisfied()) {
      std::printf("  not satisfiable under the agreements\n");
      continue;
    }
    double intra = 0.0, inter = 0.0;
    for (std::size_t i = 0; i < kSites; ++i)
      (groups[i] == groups[1] ? intra : inter) += hp.draw[i];
    std::printf("  multi-grid: %.1f from own group, %.1f from other groups "
                "(theta %.2f, %llu LP iterations)\n",
                intra, inter, hp.theta, static_cast<unsigned long long>(hp.lp_iterations));
    std::printf("  flat LP   : theta %.2f (%llu LP iterations) -- the multi-grid\n"
                "              answer may trade a slightly larger theta for much\n"
                "              smaller LPs at scale\n",
                fp.theta, static_cast<unsigned long long>(fp.lp_iterations));
  }
  return 0;
}
