// grid_scheduler -- the GRM/LRM resource management system the paper
// describes building (Section 3.2, last paragraph): three sites with CPU
// and disk, LRMs reporting availability over a latency-ful message bus,
// and a centralized GRM enforcing sharing agreements for multi-resource
// job requests.
//
// Build & run:  ./build/examples/grid_scheduler
#include <cstdio>

#include "agree/matrices.h"
#include "rms/bus.h"
#include "rms/grm.h"
#include "rms/lrm.h"

using namespace agora;
using namespace agora::rms;

namespace {

const char* kSites[] = {"nyu.cs", "lab.alpha", "lab.beta"};

void print_reply(const AllocationReply& r) {
  if (!r.granted) {
    std::printf("  request %llu DENIED: %s\n", static_cast<unsigned long long>(r.request_id),
                r.reason.c_str());
    return;
  }
  std::printf("  request %llu granted:\n", static_cast<unsigned long long>(r.request_id));
  const char* res[] = {"cpu", "disk"};
  for (std::size_t rr = 0; rr < r.draws.size(); ++rr)
    for (std::size_t s = 0; s < r.draws[rr].size(); ++s)
      if (r.draws[rr][s] > 1e-9)
        std::printf("    %5.1f %s from %s\n", r.draws[rr][s], res[rr], kSites[s]);
}

}  // namespace

int main() {
  MessageBus bus;

  // Agreements: lab.alpha shares 40% of CPU with nyu.cs; lab.beta shares
  // 25% of its disk with nyu.cs and 50% of CPU with lab.alpha (so nyu.cs
  // reaches beta's CPU only transitively).
  agree::AgreementSystem cpu(3), disk(3);
  cpu.capacity = {8.0, 32.0, 64.0};
  cpu.relative(1, 0) = 0.40;
  cpu.relative(2, 1) = 0.50;
  disk.capacity = {100.0, 500.0, 1000.0};
  disk.relative(2, 0) = 0.25;

  Grm grm(bus, {cpu, disk}, {}, /*decision_latency=*/0.01);
  Lrm nyu(bus, {8.0, 100.0}, /*report_latency=*/0.02);
  Lrm alpha(bus, {32.0, 500.0}, 0.02);
  Lrm beta(bus, {64.0, 1000.0}, 0.02);
  grm.register_lrm(0, nyu.endpoint());
  grm.register_lrm(1, alpha.endpoint());
  grm.register_lrm(2, beta.endpoint());
  nyu.attach(grm.endpoint(), 0);
  alpha.attach(grm.endpoint(), 1);
  beta.attach(grm.endpoint(), 2);

  std::vector<AllocationReply> replies;
  const EndpointId client = bus.add_endpoint([&](const Envelope& env) {
    if (const auto* r = std::get_if<AllocationReply>(&env.payload)) replies.push_back(*r);
  });
  bus.run_until_idle();

  const auto submit = [&](std::uint64_t id, std::size_t principal, double cpus, double disks,
                          double duration) {
    AllocationRequest req;
    req.request_id = id;
    req.principal = principal;
    req.amounts = {cpus, disks};
    req.duration = duration;
    bus.post(client, grm.endpoint(), req);
    bus.run_until(bus.now() + 1.0);  // let the decision settle, not releases
    print_reply(replies.back());
  };

  std::printf("job 1: nyu.cs wants 20 cpus + 150 disk (needs borrowed capacity):\n");
  submit(1, 0, 20.0, 150.0, /*duration=*/3600.0);

  std::printf("\njob 2: nyu.cs wants another 20 cpus (transitive reach is now thinner):\n");
  submit(2, 0, 20.0, 0.0, 3600.0);

  std::printf("\nraising alpha->nyu CPU share from 40%% to 80%% at runtime...\n");
  AgreementUpdate upd;
  upd.resource = 0;
  upd.from = 1;
  upd.to = 0;
  upd.share = 0.80;
  bus.post(client, grm.endpoint(), upd);
  bus.run_until(bus.now() + 1.0);

  std::printf("job 3: the same 20-cpu request after the agreement change:\n");
  submit(3, 0, 20.0, 0.0, 3600.0);

  std::printf("\nletting jobs finish (releases flow back)...\n");
  bus.run_until_idle();
  std::printf("final availability: %s cpu %.1f, %s cpu %.1f, %s cpu %.1f\n", kSites[0],
              nyu.available()[0], kSites[1], alpha.available()[0], kSites[2],
              beta.available()[0]);
  std::printf("GRM statistics: %llu decisions, %llu grants\n",
              static_cast<unsigned long long>(grm.decisions()),
              static_cast<unsigned long long>(grm.grants()));
  return 0;
}
