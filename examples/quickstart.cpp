// quickstart -- the paper's Example 1 (Figure 1), end to end:
//
//   1. express resources and sharing agreements with tickets & currencies,
//   2. price the economy (dynamic currency/ticket values),
//   3. lower to the enforcement layer's V/S/A matrices,
//   4. compute everyone's transitive availability, and
//   5. allocate a request with the min-perturbation LP.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "agora/agora.h"

using namespace agora;

int main() {
  // --- 1. Expression: four principals, two disks, three agreements. -------
  core::Economy economy;
  const auto disk = economy.add_resource_type("disk", "TB");
  const auto a = economy.add_principal("A", /*currency face value=*/1000.0);
  const auto b = economy.add_principal("B", 100.0);
  const auto c = economy.add_principal("C", 100.0);
  const auto d = economy.add_principal("D", 100.0);

  economy.fund_with_resource(economy.default_currency(a), disk, 10.0, "A-Ticket1");
  economy.fund_with_resource(economy.default_currency(b), disk, 15.0, "A-Ticket2");

  // A shares 3 TB with C (absolute) and 50% of itself with B (relative);
  // B shares 60% of itself with D. D thus benefits from A *transitively*.
  economy.issue_absolute(economy.default_currency(a), economy.default_currency(c), disk, 3.0,
                         core::SharingMode::Sharing, "R-Ticket3");
  economy.issue_relative(economy.default_currency(a), economy.default_currency(b), 500.0, disk,
                         core::SharingMode::Sharing, "R-Ticket4");
  economy.issue_relative(economy.default_currency(b), economy.default_currency(d), 60.0, disk,
                         core::SharingMode::Sharing, "R-Ticket5");

  // --- 2. Pricing. ----------------------------------------------------------
  const core::Valuation val = core::value_economy(economy);
  std::printf("currency values (TB of disk):\n");
  for (const char* name : {"A", "B", "C", "D"}) {
    const auto p = economy.find_principal(name);
    std::printf("  %s = %5.2f\n", name,
                val.currency_value(economy.default_currency(p), disk));
  }

  // --- 3 & 4. Enforcement view: matrices and transitive availability. ------
  const agree::AgreementSystem sys = agree::from_economy(economy, disk);
  const agree::CapacityReport rep = agree::compute_capacities(sys);
  std::printf("\ntransitive availability C_i:\n");
  for (std::size_t i = 0; i < sys.size(); ++i)
    std::printf("  %c: owns %5.2f TB, can reach %5.2f TB\n", static_cast<char>('A' + i),
                sys.capacity[i], rep.capacity[i]);

  // --- 5. Allocation: D requests 8 TB (it owns none!). ----------------------
  alloc::Allocator allocator(sys);
  const alloc::AllocationPlan plan = allocator.allocate(/*principal D=*/3, 8.0);
  if (!plan.satisfied()) {
    std::printf("\nallocation failed -- not enough capacity under agreements\n");
    return 1;
  }
  std::printf("\nD requests 8 TB; the LP draws (minimizing global perturbation theta=%.2f):\n",
              plan.theta);
  for (std::size_t i = 0; i < plan.draw.size(); ++i)
    if (plan.draw[i] > 1e-9)
      std::printf("  %5.2f TB from %c  (its availability: %5.2f -> %5.2f)\n", plan.draw[i],
                  static_cast<char>('A' + i), plan.capacity_before[i], plan.capacity_after[i]);
  return 0;
}
