// proxy_federation -- a compact version of the paper's case study: four
// ISP-level web proxies in different time zones, run once without sharing
// and once with a complete sharing-agreement graph enforced by the LP
// scheduler, printing the side-by-side waiting-time profile.
//
// Build & run:  ./build/examples/proxy_federation
#include <cstdio>

#include "agree/topology.h"
#include "proxysim/simulator.h"
#include "trace/generator.h"

using namespace agora;

int main() {
  constexpr std::size_t kProxies = 4;
  constexpr double kGap = 6.0 * 3600.0;  // six time zones apart

  // Synthetic Berkeley-like diurnal workload, moderately overloaded at peak.
  trace::GeneratorConfig gc;
  gc.peak_rate = 9.5;
  const trace::Generator gen(gc, trace::DiurnalProfile::berkeley_like());
  std::vector<std::vector<trace::TraceRequest>> traces;
  for (std::size_t p = 0; p < kProxies; ++p)
    traces.push_back(gen.generate(1 + p, kGap * static_cast<double>(p)));

  const auto simulate = [&](proxysim::SchedulerKind kind) {
    proxysim::SimConfig cfg;
    cfg.num_proxies = kProxies;
    cfg.scheduler = kind;
    if (kind != proxysim::SchedulerKind::None)
      cfg.agreements = agree::complete_graph(kProxies, 0.20);
    cfg.redirect_cost = 0.1;  // realistic redirection overhead
    proxysim::Simulator sim(cfg);
    return sim.run(traces);
  };

  std::printf("simulating %zu proxies, 24h each, %0.0fh apart...\n\n", kProxies, kGap / 3600.0);
  const proxysim::SimMetrics isolated = simulate(proxysim::SchedulerKind::None);
  const proxysim::SimMetrics shared = simulate(proxysim::SchedulerKind::Lp);

  std::printf("%-6s  %18s  %18s\n", "hour", "isolated wait (s)", "shared wait (s)");
  for (std::size_t h = 0; h < 24; ++h) {
    StreamingStats iso, shr;
    for (std::size_t s = h * 6; s < (h + 1) * 6; ++s) {
      iso.merge(isolated.wait_by_slot.slot(s));
      shr.merge(shared.wait_by_slot.slot(s));
    }
    std::printf("%-6zu  %18.2f  %18.2f\n", h, iso.mean(), shr.mean());
  }

  std::printf(
      "\nmean wait: %.2f s isolated vs %.3f s shared (%.0fx better)\n"
      "peak-slot wait: %.1f s vs %.2f s; %.2f%% of requests were redirected\n"
      "(paying 0.1 s each), via %llu scheduler consults.\n",
      isolated.mean_wait(), shared.mean_wait(), isolated.mean_wait() / shared.mean_wait(),
      isolated.peak_slot_wait(), shared.peak_slot_wait(), 100.0 * shared.redirected_fraction(),
      static_cast<unsigned long long>(shared.scheduler_consults));
  return 0;
}
