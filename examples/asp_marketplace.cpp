// asp_marketplace -- the paper's introduction motivates sharing across
// administrative domains with application service providers (ASPs) and
// companies trading database access, hardware, and bandwidth. This example
// models that marketplace end to end:
//
//   * an ASP owns CPU and database-IO capacity and *grants* (not shares --
//     the taxonomy of Section 2.1) fixed fractions to two client companies;
//   * the clients own network bandwidth and share slices back with the ASP;
//   * a client job needs CPU and db-io *together on the ASP's site*, so the
//     two resources are bound into a bundle (Section 3.2's coupled
//     resources);
//   * allocations run through the multi-resource LP allocator.
//
// Build & run:  ./build/examples/asp_marketplace
#include <cstdio>

#include "agree/from_economy.h"
#include "alloc/multi_resource.h"
#include "core/economy.h"
#include "core/valuation.h"

using namespace agora;

namespace {
const char* kNames[] = {"asp", "acme", "globex"};
}

int main() {
  // --- Express the marketplace with tickets & currencies. -----------------
  core::Economy e;
  const auto cpu = e.add_resource_type("cpu", "cores");
  const auto dbio = e.add_resource_type("db-io", "kIOPS");
  const auto net = e.add_resource_type("net", "Gbps");

  const auto asp = e.add_principal("asp", 1000.0);
  const auto acme = e.add_principal("acme", 100.0);
  const auto globex = e.add_principal("globex", 100.0);

  e.fund_with_resource(e.default_currency(asp), cpu, 64.0);
  e.fund_with_resource(e.default_currency(asp), dbio, 200.0);
  e.fund_with_resource(e.default_currency(acme), net, 10.0);
  e.fund_with_resource(e.default_currency(globex), net, 20.0);

  // The ASP *grants* service capacity: the granted fraction is not usable
  // for the ASP's own jobs while the contract stands.
  e.issue_relative(e.default_currency(asp), e.default_currency(acme), 250.0, cpu,
                   core::SharingMode::Granting, "asp-cpu-acme");      // 25%
  e.issue_relative(e.default_currency(asp), e.default_currency(acme), 300.0, dbio,
                   core::SharingMode::Granting, "asp-dbio-acme");     // 30%
  e.issue_relative(e.default_currency(asp), e.default_currency(globex), 150.0, cpu,
                   core::SharingMode::Granting, "asp-cpu-globex");    // 15%
  e.issue_relative(e.default_currency(asp), e.default_currency(globex), 200.0, dbio,
                   core::SharingMode::Granting, "asp-dbio-globex");   // 20%
  // In return the clients *share* bandwidth with the ASP (both may use it).
  e.issue_relative(e.default_currency(acme), e.default_currency(asp), 30.0, net,
                   core::SharingMode::Sharing, "acme-net-asp");       // 30%
  e.issue_relative(e.default_currency(globex), e.default_currency(asp), 25.0, net,
                   core::SharingMode::Sharing, "globex-net-asp");     // 25%

  const core::Valuation val = core::value_economy(e);
  std::printf("contracted capacity by currency:\n");
  std::printf("%-8s %8s %8s %8s\n", "", "cpu", "db-io", "net");
  for (std::size_t p = 0; p < 3; ++p) {
    const auto cur = e.default_currency(core::PrincipalId(p));
    std::printf("%-8s %8.1f %8.1f %8.1f\n", kNames[p], val.currency_value(cur, cpu),
                val.currency_value(cur, dbio), val.currency_value(cur, net));
  }

  // --- Lower to per-resource matrices; note the granting retained_i. -------
  std::vector<agree::AgreementSystem> systems{
      agree::from_economy(e, cpu), agree::from_economy(e, dbio), agree::from_economy(e, net)};
  std::printf("\nASP's own usable fraction after granting: cpu %.0f%%, db-io %.0f%%\n",
              100.0 * systems[0].retained[0], 100.0 * systems[1].retained[0]);

  // --- A client job: 12 cores + 50 kIOPS, coupled, plus 2 Gbps of network. --
  // Couple cpu+db-io into an "app server" bundle (1 unit = 1 core + 4 kIOPS).
  const agree::AgreementSystem bundle = alloc::make_bundle({systems[0], systems[1]}, {1.0, 4.0});
  alloc::MultiResourceAllocator mra({bundle, systems[2]}, {"app-bundle", "net"});

  alloc::MultiRequest job;
  job.principal = 1;             // acme
  job.amounts = {12.0, 2.0};     // 12 bundle units (=12 cores + 48 kIOPS), 2 Gbps
  const alloc::MultiPlan plan = mra.allocate(job);
  std::printf("\nacme requests 12 app-bundle units + 2 Gbps: %s\n",
              plan.satisfied() ? "GRANTED" : "DENIED");
  if (plan.satisfied()) {
    for (std::size_t r = 0; r < plan.per_resource.size(); ++r)
      for (std::size_t k = 0; k < 3; ++k)
        if (plan.per_resource[r].draw[k] > 1e-9)
          std::printf("  %6.2f %s from %s\n", plan.per_resource[r].draw[k],
                      mra.resource_name(r).c_str(), kNames[k]);
    mra.apply(plan);
  }

  // A second, oversized job must be rejected atomically (all-or-nothing).
  alloc::MultiRequest big;
  big.principal = 2;             // globex
  big.amounts = {40.0, 1.0};     // more bundles than its grant covers
  const alloc::MultiPlan plan2 = mra.allocate(big);
  std::printf("\nglobex requests 40 app-bundle units + 1 Gbps: %s\n",
              plan2.satisfied() ? "GRANTED" : "DENIED (atomic multi-resource check)");
  std::printf("  (bundle availability for globex right now: %.2f units)\n",
              mra.allocator(0).available_to(2));
  return 0;
}
