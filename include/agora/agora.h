// agora.h -- the single public facade of libagora.
//
// This header re-exports the SUPPORTED surface of the library; everything
// under src/ not reachable from here is an internal implementation detail
// and may change without notice between versions. Link against the `agora`
// interface target (or the per-subsystem static libraries it aggregates)
// and include only this header:
//
//   #include <agora/agora.h>
//
//   agora::agree::AgreementSystem sys(8);
//   sys.capacity.assign(8, 10.0);
//   sys.relative = agora::agree::complete_graph(8, 0.1);
//
//   // Either decision backend behind one interface:
//   std::unique_ptr<agora::alloc::AllocatorBase> direct =
//       std::make_unique<agora::alloc::Allocator>(sys);
//   std::unique_ptr<agora::alloc::AllocatorBase> sharded =
//       std::make_unique<agora::engine::EnforcementEngine>(
//           sys, agora::engine::EngineOptions{.threads = 4});
//
//   auto plan = sharded->allocate(/*principal=*/2, /*amount=*/5.0);
//   if (plan.satisfied()) sharded->apply(plan);
//
// The supported surface, by subsystem:
//
//   * Errors & status  -- agora::Status / StatusCode (the one error
//     currency, DESIGN.md §11.5) and the util/error.h exception types every
//     public entry point may throw.
//   * Economy building -- agree::AgreementSystem plus the topology
//     constructors (complete_graph, ring, distance_decay, sparse_random,
//     hierarchical) and capacity/entitlement reports.
//   * Allocation       -- alloc::AllocatorBase (the interface), the flat
//     LP Allocator, the two-level HierarchicalAllocator, and
//     AllocationPlan/PlanStatus.
//   * Enforcement at scale -- engine::EnforcementEngine: sharded,
//     thread-safe admission (blocking consult(), future-based submit(),
//     epoch-versioned capacity snapshots).
//   * Trace IO         -- the proxy-workload generator and trace
//     reader/writer used by the case-study reproductions.
//   * Observability    -- metrics registry, trace-event ring, and the
//     snapshot exporter (CSV / JSON lines).
#pragma once

// Errors & status.
#include "util/error.h"
#include "util/status.h"

// Economy building: ticket/currency expression (core), the enforcement
// layer's matrix view (agree), and the lowering between them.
#include "agree/capacity.h"
#include "agree/from_economy.h"
#include "agree/matrices.h"
#include "agree/topology.h"
#include "agree/transitive.h"
#include "core/economy.h"
#include "core/valuation.h"

// Allocation.
#include "alloc/allocator.h"
#include "alloc/allocator_base.h"
#include "alloc/hierarchical.h"
#include "alloc/plan.h"

// Enforcement at scale.
#include "engine/engine.h"

// The wire boundary: framed loopback RPC service over the engine, and the
// failover-aware client (DESIGN.md §14).
#include "net/client.h"
#include "net/service.h"

// Trace IO.
#include "trace/generator.h"
#include "trace/trace_io.h"

// Observability.
#include "obs/export.h"
#include "obs/sink.h"
