file(REMOVE_RECURSE
  "libagora_core.a"
)
