
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/economy.cpp" "src/core/CMakeFiles/agora_core.dir/economy.cpp.o" "gcc" "src/core/CMakeFiles/agora_core.dir/economy.cpp.o.d"
  "/root/repo/src/core/economy_io.cpp" "src/core/CMakeFiles/agora_core.dir/economy_io.cpp.o" "gcc" "src/core/CMakeFiles/agora_core.dir/economy_io.cpp.o.d"
  "/root/repo/src/core/valuation.cpp" "src/core/CMakeFiles/agora_core.dir/valuation.cpp.o" "gcc" "src/core/CMakeFiles/agora_core.dir/valuation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/agora_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
