file(REMOVE_RECURSE
  "CMakeFiles/agora_core.dir/economy.cpp.o"
  "CMakeFiles/agora_core.dir/economy.cpp.o.d"
  "CMakeFiles/agora_core.dir/economy_io.cpp.o"
  "CMakeFiles/agora_core.dir/economy_io.cpp.o.d"
  "CMakeFiles/agora_core.dir/valuation.cpp.o"
  "CMakeFiles/agora_core.dir/valuation.cpp.o.d"
  "libagora_core.a"
  "libagora_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agora_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
