# Empty dependencies file for agora_core.
# This may be replaced when dependencies are built.
