# CMake generated Testfile for 
# Source directory: /root/repo/src/proxysim
# Build directory: /root/repo/build/src/proxysim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
