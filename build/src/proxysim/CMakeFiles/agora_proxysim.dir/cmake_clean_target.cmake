file(REMOVE_RECURSE
  "libagora_proxysim.a"
)
