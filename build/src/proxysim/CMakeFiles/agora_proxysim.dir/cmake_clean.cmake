file(REMOVE_RECURSE
  "CMakeFiles/agora_proxysim.dir/scheduler_bridge.cpp.o"
  "CMakeFiles/agora_proxysim.dir/scheduler_bridge.cpp.o.d"
  "CMakeFiles/agora_proxysim.dir/simulator.cpp.o"
  "CMakeFiles/agora_proxysim.dir/simulator.cpp.o.d"
  "libagora_proxysim.a"
  "libagora_proxysim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agora_proxysim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
