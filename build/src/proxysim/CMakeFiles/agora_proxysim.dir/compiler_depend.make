# Empty compiler generated dependencies file for agora_proxysim.
# This may be replaced when dependencies are built.
