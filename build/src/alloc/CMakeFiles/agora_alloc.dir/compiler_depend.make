# Empty compiler generated dependencies file for agora_alloc.
# This may be replaced when dependencies are built.
