file(REMOVE_RECURSE
  "CMakeFiles/agora_alloc.dir/allocator.cpp.o"
  "CMakeFiles/agora_alloc.dir/allocator.cpp.o.d"
  "CMakeFiles/agora_alloc.dir/endpoint.cpp.o"
  "CMakeFiles/agora_alloc.dir/endpoint.cpp.o.d"
  "CMakeFiles/agora_alloc.dir/hierarchical.cpp.o"
  "CMakeFiles/agora_alloc.dir/hierarchical.cpp.o.d"
  "CMakeFiles/agora_alloc.dir/multi_resource.cpp.o"
  "CMakeFiles/agora_alloc.dir/multi_resource.cpp.o.d"
  "libagora_alloc.a"
  "libagora_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agora_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
