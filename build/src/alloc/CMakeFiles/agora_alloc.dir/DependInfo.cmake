
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alloc/allocator.cpp" "src/alloc/CMakeFiles/agora_alloc.dir/allocator.cpp.o" "gcc" "src/alloc/CMakeFiles/agora_alloc.dir/allocator.cpp.o.d"
  "/root/repo/src/alloc/endpoint.cpp" "src/alloc/CMakeFiles/agora_alloc.dir/endpoint.cpp.o" "gcc" "src/alloc/CMakeFiles/agora_alloc.dir/endpoint.cpp.o.d"
  "/root/repo/src/alloc/hierarchical.cpp" "src/alloc/CMakeFiles/agora_alloc.dir/hierarchical.cpp.o" "gcc" "src/alloc/CMakeFiles/agora_alloc.dir/hierarchical.cpp.o.d"
  "/root/repo/src/alloc/multi_resource.cpp" "src/alloc/CMakeFiles/agora_alloc.dir/multi_resource.cpp.o" "gcc" "src/alloc/CMakeFiles/agora_alloc.dir/multi_resource.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/agora_util.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/agora_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/agree/CMakeFiles/agora_agree.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/agora_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
