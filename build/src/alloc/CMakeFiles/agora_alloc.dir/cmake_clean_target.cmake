file(REMOVE_RECURSE
  "libagora_alloc.a"
)
