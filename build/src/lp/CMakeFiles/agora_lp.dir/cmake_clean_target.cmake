file(REMOVE_RECURSE
  "libagora_lp.a"
)
