
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lp/brute_force.cpp" "src/lp/CMakeFiles/agora_lp.dir/brute_force.cpp.o" "gcc" "src/lp/CMakeFiles/agora_lp.dir/brute_force.cpp.o.d"
  "/root/repo/src/lp/model_builder.cpp" "src/lp/CMakeFiles/agora_lp.dir/model_builder.cpp.o" "gcc" "src/lp/CMakeFiles/agora_lp.dir/model_builder.cpp.o.d"
  "/root/repo/src/lp/presolve.cpp" "src/lp/CMakeFiles/agora_lp.dir/presolve.cpp.o" "gcc" "src/lp/CMakeFiles/agora_lp.dir/presolve.cpp.o.d"
  "/root/repo/src/lp/problem.cpp" "src/lp/CMakeFiles/agora_lp.dir/problem.cpp.o" "gcc" "src/lp/CMakeFiles/agora_lp.dir/problem.cpp.o.d"
  "/root/repo/src/lp/revised.cpp" "src/lp/CMakeFiles/agora_lp.dir/revised.cpp.o" "gcc" "src/lp/CMakeFiles/agora_lp.dir/revised.cpp.o.d"
  "/root/repo/src/lp/simplex.cpp" "src/lp/CMakeFiles/agora_lp.dir/simplex.cpp.o" "gcc" "src/lp/CMakeFiles/agora_lp.dir/simplex.cpp.o.d"
  "/root/repo/src/lp/standard_form.cpp" "src/lp/CMakeFiles/agora_lp.dir/standard_form.cpp.o" "gcc" "src/lp/CMakeFiles/agora_lp.dir/standard_form.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/agora_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
