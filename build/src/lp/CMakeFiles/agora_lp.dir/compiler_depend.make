# Empty compiler generated dependencies file for agora_lp.
# This may be replaced when dependencies are built.
