file(REMOVE_RECURSE
  "CMakeFiles/agora_lp.dir/brute_force.cpp.o"
  "CMakeFiles/agora_lp.dir/brute_force.cpp.o.d"
  "CMakeFiles/agora_lp.dir/model_builder.cpp.o"
  "CMakeFiles/agora_lp.dir/model_builder.cpp.o.d"
  "CMakeFiles/agora_lp.dir/presolve.cpp.o"
  "CMakeFiles/agora_lp.dir/presolve.cpp.o.d"
  "CMakeFiles/agora_lp.dir/problem.cpp.o"
  "CMakeFiles/agora_lp.dir/problem.cpp.o.d"
  "CMakeFiles/agora_lp.dir/revised.cpp.o"
  "CMakeFiles/agora_lp.dir/revised.cpp.o.d"
  "CMakeFiles/agora_lp.dir/simplex.cpp.o"
  "CMakeFiles/agora_lp.dir/simplex.cpp.o.d"
  "CMakeFiles/agora_lp.dir/standard_form.cpp.o"
  "CMakeFiles/agora_lp.dir/standard_form.cpp.o.d"
  "libagora_lp.a"
  "libagora_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agora_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
