file(REMOVE_RECURSE
  "CMakeFiles/agora_trace.dir/generator.cpp.o"
  "CMakeFiles/agora_trace.dir/generator.cpp.o.d"
  "CMakeFiles/agora_trace.dir/profile.cpp.o"
  "CMakeFiles/agora_trace.dir/profile.cpp.o.d"
  "CMakeFiles/agora_trace.dir/trace_io.cpp.o"
  "CMakeFiles/agora_trace.dir/trace_io.cpp.o.d"
  "libagora_trace.a"
  "libagora_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agora_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
