file(REMOVE_RECURSE
  "libagora_trace.a"
)
