# Empty compiler generated dependencies file for agora_trace.
# This may be replaced when dependencies are built.
