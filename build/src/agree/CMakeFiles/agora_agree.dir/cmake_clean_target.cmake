file(REMOVE_RECURSE
  "libagora_agree.a"
)
