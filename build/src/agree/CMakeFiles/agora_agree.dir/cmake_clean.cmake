file(REMOVE_RECURSE
  "CMakeFiles/agora_agree.dir/capacity.cpp.o"
  "CMakeFiles/agora_agree.dir/capacity.cpp.o.d"
  "CMakeFiles/agora_agree.dir/from_economy.cpp.o"
  "CMakeFiles/agora_agree.dir/from_economy.cpp.o.d"
  "CMakeFiles/agora_agree.dir/matrices.cpp.o"
  "CMakeFiles/agora_agree.dir/matrices.cpp.o.d"
  "CMakeFiles/agora_agree.dir/topology.cpp.o"
  "CMakeFiles/agora_agree.dir/topology.cpp.o.d"
  "CMakeFiles/agora_agree.dir/transitive.cpp.o"
  "CMakeFiles/agora_agree.dir/transitive.cpp.o.d"
  "libagora_agree.a"
  "libagora_agree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agora_agree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
