
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/agree/capacity.cpp" "src/agree/CMakeFiles/agora_agree.dir/capacity.cpp.o" "gcc" "src/agree/CMakeFiles/agora_agree.dir/capacity.cpp.o.d"
  "/root/repo/src/agree/from_economy.cpp" "src/agree/CMakeFiles/agora_agree.dir/from_economy.cpp.o" "gcc" "src/agree/CMakeFiles/agora_agree.dir/from_economy.cpp.o.d"
  "/root/repo/src/agree/matrices.cpp" "src/agree/CMakeFiles/agora_agree.dir/matrices.cpp.o" "gcc" "src/agree/CMakeFiles/agora_agree.dir/matrices.cpp.o.d"
  "/root/repo/src/agree/topology.cpp" "src/agree/CMakeFiles/agora_agree.dir/topology.cpp.o" "gcc" "src/agree/CMakeFiles/agora_agree.dir/topology.cpp.o.d"
  "/root/repo/src/agree/transitive.cpp" "src/agree/CMakeFiles/agora_agree.dir/transitive.cpp.o" "gcc" "src/agree/CMakeFiles/agora_agree.dir/transitive.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/agora_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/agora_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
