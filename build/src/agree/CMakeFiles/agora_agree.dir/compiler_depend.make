# Empty compiler generated dependencies file for agora_agree.
# This may be replaced when dependencies are built.
