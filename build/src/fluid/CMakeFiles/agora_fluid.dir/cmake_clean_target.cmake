file(REMOVE_RECURSE
  "libagora_fluid.a"
)
