# Empty compiler generated dependencies file for agora_fluid.
# This may be replaced when dependencies are built.
