file(REMOVE_RECURSE
  "CMakeFiles/agora_fluid.dir/planner.cpp.o"
  "CMakeFiles/agora_fluid.dir/planner.cpp.o.d"
  "libagora_fluid.a"
  "libagora_fluid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agora_fluid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
