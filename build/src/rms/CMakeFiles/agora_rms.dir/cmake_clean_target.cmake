file(REMOVE_RECURSE
  "libagora_rms.a"
)
