file(REMOVE_RECURSE
  "CMakeFiles/agora_rms.dir/bus.cpp.o"
  "CMakeFiles/agora_rms.dir/bus.cpp.o.d"
  "CMakeFiles/agora_rms.dir/grm.cpp.o"
  "CMakeFiles/agora_rms.dir/grm.cpp.o.d"
  "CMakeFiles/agora_rms.dir/lrm.cpp.o"
  "CMakeFiles/agora_rms.dir/lrm.cpp.o.d"
  "libagora_rms.a"
  "libagora_rms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agora_rms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
