# Empty compiler generated dependencies file for agora_rms.
# This may be replaced when dependencies are built.
