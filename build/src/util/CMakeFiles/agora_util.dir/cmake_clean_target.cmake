file(REMOVE_RECURSE
  "libagora_util.a"
)
