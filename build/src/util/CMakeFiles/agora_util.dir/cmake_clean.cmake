file(REMOVE_RECURSE
  "CMakeFiles/agora_util.dir/csv.cpp.o"
  "CMakeFiles/agora_util.dir/csv.cpp.o.d"
  "CMakeFiles/agora_util.dir/flags.cpp.o"
  "CMakeFiles/agora_util.dir/flags.cpp.o.d"
  "CMakeFiles/agora_util.dir/matrix.cpp.o"
  "CMakeFiles/agora_util.dir/matrix.cpp.o.d"
  "CMakeFiles/agora_util.dir/stats.cpp.o"
  "CMakeFiles/agora_util.dir/stats.cpp.o.d"
  "CMakeFiles/agora_util.dir/threadpool.cpp.o"
  "CMakeFiles/agora_util.dir/threadpool.cpp.o.d"
  "libagora_util.a"
  "libagora_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agora_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
