# Empty compiler generated dependencies file for agora_util.
# This may be replaced when dependencies are built.
