
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/csv.cpp" "src/util/CMakeFiles/agora_util.dir/csv.cpp.o" "gcc" "src/util/CMakeFiles/agora_util.dir/csv.cpp.o.d"
  "/root/repo/src/util/flags.cpp" "src/util/CMakeFiles/agora_util.dir/flags.cpp.o" "gcc" "src/util/CMakeFiles/agora_util.dir/flags.cpp.o.d"
  "/root/repo/src/util/matrix.cpp" "src/util/CMakeFiles/agora_util.dir/matrix.cpp.o" "gcc" "src/util/CMakeFiles/agora_util.dir/matrix.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/util/CMakeFiles/agora_util.dir/stats.cpp.o" "gcc" "src/util/CMakeFiles/agora_util.dir/stats.cpp.o.d"
  "/root/repo/src/util/threadpool.cpp" "src/util/CMakeFiles/agora_util.dir/threadpool.cpp.o" "gcc" "src/util/CMakeFiles/agora_util.dir/threadpool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
