# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/lp_test[1]_include.cmake")
include("/root/repo/build/tests/lp_property_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/agree_test[1]_include.cmake")
include("/root/repo/build/tests/alloc_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/proxysim_test[1]_include.cmake")
include("/root/repo/build/tests/rms_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/alloc_property_test[1]_include.cmake")
include("/root/repo/build/tests/proxysim_bridge_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/lp_duals_test[1]_include.cmake")
include("/root/repo/build/tests/latency_test[1]_include.cmake")
include("/root/repo/build/tests/fluid_test[1]_include.cmake")
include("/root/repo/build/tests/fluid_figures_test[1]_include.cmake")
