# Empty dependencies file for proxysim_test.
# This may be replaced when dependencies are built.
