file(REMOVE_RECURSE
  "CMakeFiles/proxysim_test.dir/proxysim_test.cpp.o"
  "CMakeFiles/proxysim_test.dir/proxysim_test.cpp.o.d"
  "proxysim_test"
  "proxysim_test.pdb"
  "proxysim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxysim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
