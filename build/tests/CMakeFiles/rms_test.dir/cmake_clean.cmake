file(REMOVE_RECURSE
  "CMakeFiles/rms_test.dir/rms_test.cpp.o"
  "CMakeFiles/rms_test.dir/rms_test.cpp.o.d"
  "rms_test"
  "rms_test.pdb"
  "rms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
