# Empty dependencies file for rms_test.
# This may be replaced when dependencies are built.
