# Empty compiler generated dependencies file for rms_test.
# This may be replaced when dependencies are built.
