file(REMOVE_RECURSE
  "CMakeFiles/proxysim_bridge_test.dir/proxysim_bridge_test.cpp.o"
  "CMakeFiles/proxysim_bridge_test.dir/proxysim_bridge_test.cpp.o.d"
  "proxysim_bridge_test"
  "proxysim_bridge_test.pdb"
  "proxysim_bridge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxysim_bridge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
