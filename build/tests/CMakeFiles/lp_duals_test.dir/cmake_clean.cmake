file(REMOVE_RECURSE
  "CMakeFiles/lp_duals_test.dir/lp_duals_test.cpp.o"
  "CMakeFiles/lp_duals_test.dir/lp_duals_test.cpp.o.d"
  "lp_duals_test"
  "lp_duals_test.pdb"
  "lp_duals_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_duals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
