# Empty dependencies file for lp_duals_test.
# This may be replaced when dependencies are built.
