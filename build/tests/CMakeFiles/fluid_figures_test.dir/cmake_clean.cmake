file(REMOVE_RECURSE
  "CMakeFiles/fluid_figures_test.dir/fluid_figures_test.cpp.o"
  "CMakeFiles/fluid_figures_test.dir/fluid_figures_test.cpp.o.d"
  "fluid_figures_test"
  "fluid_figures_test.pdb"
  "fluid_figures_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluid_figures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
