# Empty dependencies file for agree_test.
# This may be replaced when dependencies are built.
