file(REMOVE_RECURSE
  "CMakeFiles/agree_test.dir/agree_test.cpp.o"
  "CMakeFiles/agree_test.dir/agree_test.cpp.o.d"
  "agree_test"
  "agree_test.pdb"
  "agree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
