# Empty dependencies file for alloc_property_test.
# This may be replaced when dependencies are built.
