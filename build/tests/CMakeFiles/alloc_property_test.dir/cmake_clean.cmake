file(REMOVE_RECURSE
  "CMakeFiles/alloc_property_test.dir/alloc_property_test.cpp.o"
  "CMakeFiles/alloc_property_test.dir/alloc_property_test.cpp.o.d"
  "alloc_property_test"
  "alloc_property_test.pdb"
  "alloc_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alloc_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
