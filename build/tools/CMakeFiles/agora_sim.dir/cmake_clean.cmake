file(REMOVE_RECURSE
  "CMakeFiles/agora_sim.dir/agora_sim.cpp.o"
  "CMakeFiles/agora_sim.dir/agora_sim.cpp.o.d"
  "agora_sim"
  "agora_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agora_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
