# Empty dependencies file for agora_sim.
# This may be replaced when dependencies are built.
