file(REMOVE_RECURSE
  "CMakeFiles/agora_plan.dir/agora_plan.cpp.o"
  "CMakeFiles/agora_plan.dir/agora_plan.cpp.o.d"
  "agora_plan"
  "agora_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agora_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
