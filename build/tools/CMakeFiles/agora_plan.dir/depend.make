# Empty dependencies file for agora_plan.
# This may be replaced when dependencies are built.
