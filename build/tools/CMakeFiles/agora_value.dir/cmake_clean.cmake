file(REMOVE_RECURSE
  "CMakeFiles/agora_value.dir/agora_value.cpp.o"
  "CMakeFiles/agora_value.dir/agora_value.cpp.o.d"
  "agora_value"
  "agora_value.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agora_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
