# Empty compiler generated dependencies file for agora_value.
# This may be replaced when dependencies are built.
