file(REMOVE_RECURSE
  "CMakeFiles/hierarchical_sharing.dir/hierarchical_sharing.cpp.o"
  "CMakeFiles/hierarchical_sharing.dir/hierarchical_sharing.cpp.o.d"
  "hierarchical_sharing"
  "hierarchical_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchical_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
