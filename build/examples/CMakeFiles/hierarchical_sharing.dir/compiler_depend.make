# Empty compiler generated dependencies file for hierarchical_sharing.
# This may be replaced when dependencies are built.
