# Empty dependencies file for proxy_federation.
# This may be replaced when dependencies are built.
