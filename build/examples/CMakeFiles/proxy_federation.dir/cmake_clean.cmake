file(REMOVE_RECURSE
  "CMakeFiles/proxy_federation.dir/proxy_federation.cpp.o"
  "CMakeFiles/proxy_federation.dir/proxy_federation.cpp.o.d"
  "proxy_federation"
  "proxy_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxy_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
