# Empty compiler generated dependencies file for proxy_federation.
# This may be replaced when dependencies are built.
