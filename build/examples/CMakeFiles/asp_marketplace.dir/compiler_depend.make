# Empty compiler generated dependencies file for asp_marketplace.
# This may be replaced when dependencies are built.
