file(REMOVE_RECURSE
  "CMakeFiles/asp_marketplace.dir/asp_marketplace.cpp.o"
  "CMakeFiles/asp_marketplace.dir/asp_marketplace.cpp.o.d"
  "asp_marketplace"
  "asp_marketplace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asp_marketplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
