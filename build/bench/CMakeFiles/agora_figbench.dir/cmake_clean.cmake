file(REMOVE_RECURSE
  "../lib/libagora_figbench.a"
  "../lib/libagora_figbench.pdb"
  "CMakeFiles/agora_figbench.dir/fig_common.cpp.o"
  "CMakeFiles/agora_figbench.dir/fig_common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agora_figbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
