# Empty compiler generated dependencies file for agora_figbench.
# This may be replaced when dependencies are built.
