file(REMOVE_RECURSE
  "../lib/libagora_figbench.a"
)
