file(REMOVE_RECURSE
  "CMakeFiles/fig13_lp_vs_endpoint.dir/fig13_lp_vs_endpoint.cpp.o"
  "CMakeFiles/fig13_lp_vs_endpoint.dir/fig13_lp_vs_endpoint.cpp.o.d"
  "fig13_lp_vs_endpoint"
  "fig13_lp_vs_endpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_lp_vs_endpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
