# Empty compiler generated dependencies file for fig13_lp_vs_endpoint.
# This may be replaced when dependencies are built.
