# Empty compiler generated dependencies file for fig05_no_sharing.
# This may be replaced when dependencies are built.
