# Empty dependencies file for micro_transitive.
# This may be replaced when dependencies are built.
