file(REMOVE_RECURSE
  "CMakeFiles/micro_transitive.dir/micro_transitive.cpp.o"
  "CMakeFiles/micro_transitive.dir/micro_transitive.cpp.o.d"
  "micro_transitive"
  "micro_transitive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_transitive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
