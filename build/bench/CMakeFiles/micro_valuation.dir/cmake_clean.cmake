file(REMOVE_RECURSE
  "CMakeFiles/micro_valuation.dir/micro_valuation.cpp.o"
  "CMakeFiles/micro_valuation.dir/micro_valuation.cpp.o.d"
  "micro_valuation"
  "micro_valuation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_valuation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
