# Empty compiler generated dependencies file for micro_valuation.
# This may be replaced when dependencies are built.
