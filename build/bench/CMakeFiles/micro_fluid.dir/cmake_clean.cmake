file(REMOVE_RECURSE
  "CMakeFiles/micro_fluid.dir/micro_fluid.cpp.o"
  "CMakeFiles/micro_fluid.dir/micro_fluid.cpp.o.d"
  "micro_fluid"
  "micro_fluid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_fluid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
