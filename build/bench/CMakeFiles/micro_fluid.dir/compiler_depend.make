# Empty compiler generated dependencies file for micro_fluid.
# This may be replaced when dependencies are built.
