# Empty dependencies file for fig09_loop_skip1.
# This may be replaced when dependencies are built.
