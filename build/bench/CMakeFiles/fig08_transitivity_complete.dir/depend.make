# Empty dependencies file for fig08_transitivity_complete.
# This may be replaced when dependencies are built.
