file(REMOVE_RECURSE
  "CMakeFiles/fig08_transitivity_complete.dir/fig08_transitivity_complete.cpp.o"
  "CMakeFiles/fig08_transitivity_complete.dir/fig08_transitivity_complete.cpp.o.d"
  "fig08_transitivity_complete"
  "fig08_transitivity_complete.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_transitivity_complete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
