
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig08_transitivity_complete.cpp" "bench/CMakeFiles/fig08_transitivity_complete.dir/fig08_transitivity_complete.cpp.o" "gcc" "bench/CMakeFiles/fig08_transitivity_complete.dir/fig08_transitivity_complete.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/agora_figbench.dir/DependInfo.cmake"
  "/root/repo/build/src/proxysim/CMakeFiles/agora_proxysim.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/agora_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/agora_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/agree/CMakeFiles/agora_agree.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/agora_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/agora_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/agora_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
