file(REMOVE_RECURSE
  "CMakeFiles/fig10_loop_skip3.dir/fig10_loop_skip3.cpp.o"
  "CMakeFiles/fig10_loop_skip3.dir/fig10_loop_skip3.cpp.o.d"
  "fig10_loop_skip3"
  "fig10_loop_skip3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_loop_skip3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
