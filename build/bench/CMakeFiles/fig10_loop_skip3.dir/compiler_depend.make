# Empty compiler generated dependencies file for fig10_loop_skip3.
# This may be replaced when dependencies are built.
