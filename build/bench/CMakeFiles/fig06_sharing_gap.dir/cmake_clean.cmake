file(REMOVE_RECURSE
  "CMakeFiles/fig06_sharing_gap.dir/fig06_sharing_gap.cpp.o"
  "CMakeFiles/fig06_sharing_gap.dir/fig06_sharing_gap.cpp.o.d"
  "fig06_sharing_gap"
  "fig06_sharing_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_sharing_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
