# Empty dependencies file for fig06_sharing_gap.
# This may be replaced when dependencies are built.
