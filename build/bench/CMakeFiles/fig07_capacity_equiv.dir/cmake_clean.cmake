file(REMOVE_RECURSE
  "CMakeFiles/fig07_capacity_equiv.dir/fig07_capacity_equiv.cpp.o"
  "CMakeFiles/fig07_capacity_equiv.dir/fig07_capacity_equiv.cpp.o.d"
  "fig07_capacity_equiv"
  "fig07_capacity_equiv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_capacity_equiv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
