# Empty dependencies file for fig07_capacity_equiv.
# This may be replaced when dependencies are built.
