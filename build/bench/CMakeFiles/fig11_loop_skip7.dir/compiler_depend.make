# Empty compiler generated dependencies file for fig11_loop_skip7.
# This may be replaced when dependencies are built.
