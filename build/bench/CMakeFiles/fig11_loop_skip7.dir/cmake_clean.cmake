file(REMOVE_RECURSE
  "CMakeFiles/fig11_loop_skip7.dir/fig11_loop_skip7.cpp.o"
  "CMakeFiles/fig11_loop_skip7.dir/fig11_loop_skip7.cpp.o.d"
  "fig11_loop_skip7"
  "fig11_loop_skip7.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_loop_skip7.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
