# Empty dependencies file for micro_formulation.
# This may be replaced when dependencies are built.
