file(REMOVE_RECURSE
  "CMakeFiles/micro_formulation.dir/micro_formulation.cpp.o"
  "CMakeFiles/micro_formulation.dir/micro_formulation.cpp.o.d"
  "micro_formulation"
  "micro_formulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_formulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
