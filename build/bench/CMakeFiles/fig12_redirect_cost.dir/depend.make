# Empty dependencies file for fig12_redirect_cost.
# This may be replaced when dependencies are built.
