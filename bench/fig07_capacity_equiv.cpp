// Figure 7: average waiting times WITHOUT sharing but with increased
// processing capacity, against the sharing configuration at capacity 1.0.
// Paper: 25-35% more resources are required to match the performance that
// sharing provides for free.
#include <cstdio>
#include <optional>

#include "agree/topology.h"
#include "fig_common.h"

using namespace agora;
using namespace agora::figbench;

int main(int argc, char** argv) {
  const FigOptions opts = parse_fig_options(argc, argv, "Figure 7");
  banner("Figure 7",
         "No-sharing waiting time vs proxy processing capacity, compared to\n"
         "sharing at capacity 1.0 (complete graph 10%, gap 3600 s). Paper\n"
         "expectation: ~1.25-1.35x capacity needed to match sharing.");

  const auto traces = make_traces(kHour, kProxies, opts.seed);

  // Reference: sharing at capacity 1.0.
  proxysim::SimConfig share_cfg = base_config();
  share_cfg.scheduler = proxysim::SchedulerKind::Lp;
  share_cfg.agreements = agree::complete_graph(kProxies, 0.10);
  const proxysim::SimMetrics shared = run_sim(share_cfg, traces);
  const double target_mean = shared.per_proxy_wait[0].mean();
  const double target_peak = shared.wait_by_slot_per_proxy[0].peak_slot_mean();
  std::printf("sharing @1.0x: proxy-0 mean %.3f s, peak %.2f s\n\n", target_mean, target_peak);

  Table t({"capacity", "mean_wait_s", "peak_wait_s", "matches_peak", "matches_mean"});
  double peak_crossover = 0.0, mean_crossover = 0.0;
  std::optional<proxysim::SimMetrics> last;
  for (double cap : {1.0, 1.1, 1.2, 1.25, 1.3, 1.35, 1.4}) {
    proxysim::SimConfig cfg = base_config();
    cfg.power.assign(kProxies, cap);
    last = run_sim(cfg, traces);
    const proxysim::SimMetrics& m = *last;
    const double mean = m.per_proxy_wait[0].mean();
    const double peak = m.wait_by_slot_per_proxy[0].peak_slot_mean();
    // The paper's concern is peak-time performance: "match" means doing at
    // least as well as sharing where it matters most.
    const bool matches_peak = peak <= target_peak;
    const bool matches_mean = mean <= target_mean;
    if (matches_peak && peak_crossover == 0.0) peak_crossover = cap;
    if (matches_mean && mean_crossover == 0.0) mean_crossover = cap;
    t.add_row({cap, mean, peak, matches_peak ? 1.0 : 0.0, matches_mean ? 1.0 : 0.0});
    std::printf("capacity %.2fx: mean %.3f s, peak %.2f s\n", cap, mean, peak);
  }
  emit("fig07_capacity_equiv", t);

  std::printf(
      "\nSummary: no-sharing needs ~%.2fx capacity to match sharing's peak-time\n"
      "waits (~%.2fx for the daily mean); paper: 1.25-1.35x.\n",
      peak_crossover == 0.0 ? 1.4 : peak_crossover,
      mean_crossover == 0.0 ? 1.4 : mean_crossover);
  if (last) write_fig_metrics(opts, *last);
  return 0;
}
