// Figure 9: loop agreement structure, sharing neighbor one time zone away.
// Paper: worst-case wait ~35 s at level 1, dropping to ~2 s at level >= 3.
#include "fig_ring.h"

int main(int argc, char** argv) {
  const auto opts = agora::figbench::parse_fig_options(argc, argv, "Figure 9");
  agora::figbench::run_ring_figure("Figure 9", 1, "~35 s", opts);
  return 0;
}
