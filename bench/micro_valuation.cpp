// Ablation: currency valuation cost -- direct LU solve vs fix-point
// iteration -- as the economy grows.
#include <benchmark/benchmark.h>

#include "core/economy.h"
#include "core/valuation.h"
#include "util/rng.h"

namespace {

using namespace agora;
using namespace agora::core;

/// Economy with n principals, each funding its currency and issuing 3
/// relative agreements; one virtual currency per 4 principals.
Economy make_economy(std::size_t n) {
  Economy e;
  Pcg32 rng(n + 3);
  const ResourceTypeId cpu = e.add_resource_type("cpu");
  std::vector<PrincipalId> ps;
  for (std::size_t i = 0; i < n; ++i)
    ps.push_back(e.add_principal("p" + std::to_string(i), 100.0));
  for (std::size_t i = 0; i < n; ++i)
    e.fund_with_resource(e.default_currency(ps[i]), cpu, rng.uniform(5.0, 50.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (int k = 0; k < 3; ++k) {
      const std::size_t j = rng.uniform_u32(static_cast<std::uint32_t>(n));
      if (j == i) continue;
      e.issue_relative(e.default_currency(ps[i]), e.default_currency(ps[j]),
                       rng.uniform(5.0, 25.0), cpu);
    }
  }
  for (std::size_t i = 0; i + 3 < n; i += 4) {
    const CurrencyId vc = e.create_virtual_currency(ps[i], "v" + std::to_string(i), 100.0);
    e.issue_relative(e.default_currency(ps[i]), vc, 10.0, cpu);
    e.issue_relative(vc, e.default_currency(ps[i + 1]), 50.0, cpu);
  }
  return e;
}

void BM_ValuationDirect(benchmark::State& state) {
  const Economy e = make_economy(static_cast<std::size_t>(state.range(0)));
  ValuationOptions opts;
  opts.method = ValuationMethod::Direct;
  for (auto _ : state) {
    const Valuation v = value_economy(e, opts);
    benchmark::DoNotOptimize(v.num_currencies());
  }
}
BENCHMARK(BM_ValuationDirect)->Arg(10)->Arg(50)->Arg(100)->Arg(200);

void BM_ValuationFixPoint(benchmark::State& state) {
  const Economy e = make_economy(static_cast<std::size_t>(state.range(0)));
  ValuationOptions opts;
  opts.method = ValuationMethod::FixPoint;
  opts.tolerance = 1e-10;
  for (auto _ : state) {
    const Valuation v = value_economy(e, opts);
    benchmark::DoNotOptimize(v.num_currencies());
  }
}
BENCHMARK(BM_ValuationFixPoint)->Arg(10)->Arg(50)->Arg(100)->Arg(200);

}  // namespace

BENCHMARK_MAIN();
