// Figure 11: loop agreement structure, sharing neighbor seven time zones
// away. Paper: worst-case wait ~3 s at level 1, ~2 s at level >= 3.
#include "fig_ring.h"

int main(int argc, char** argv) {
  const auto opts = agora::figbench::parse_fig_options(argc, argv, "Figure 11");
  agora::figbench::run_ring_figure("Figure 11", 7, "~3 s", opts);
  return 0;
}
