// Ablation: fluid planner vs discrete-event simulator -- how much faster is
// the per-slot LP recursion, at what approximation error.
#include <benchmark/benchmark.h>

#include "agree/topology.h"
#include "fluid/planner.h"
#include "proxysim/simulator.h"
#include "trace/generator.h"

namespace {

using namespace agora;

constexpr std::size_t kProxies = 10;

std::vector<std::vector<double>> make_demand() {
  const trace::DiurnalProfile profile = trace::DiurnalProfile::berkeley_like();
  trace::GeneratorConfig gc;
  gc.peak_rate = 9.5;
  const double mean_demand = 0.1 + 1e-6 * trace::expected_response_bytes(gc);
  std::vector<double> weights(profile.slots());
  for (std::size_t s = 0; s < profile.slots(); ++s) weights[s] = profile.slot_weight(s);
  std::vector<std::vector<double>> demand;
  for (std::size_t p = 0; p < kProxies; ++p)
    demand.push_back(fluid::expected_demand_per_slot(gc.peak_rate, mean_demand, weights,
                                                     600.0, p * 6));  // 1h skew
  return demand;
}

void BM_FluidPlanner(benchmark::State& state) {
  const auto demand = make_demand();
  fluid::FluidConfig cfg;
  cfg.agreements = agree::complete_graph(kProxies, 0.10);
  for (auto _ : state) {
    const fluid::FluidResult r = fluid::plan(cfg, demand);
    benchmark::DoNotOptimize(r.peak_wait());
  }
}
BENCHMARK(BM_FluidPlanner)->Unit(benchmark::kMillisecond);

void BM_DiscreteSimulator(benchmark::State& state) {
  trace::GeneratorConfig gc;
  gc.peak_rate = 9.5;
  const trace::Generator gen(gc, trace::DiurnalProfile::berkeley_like());
  std::vector<std::vector<trace::TraceRequest>> traces;
  for (std::size_t p = 0; p < kProxies; ++p)
    traces.push_back(gen.generate(100 + p, 3600.0 * static_cast<double>(p)));
  proxysim::SimConfig cfg;
  cfg.num_proxies = kProxies;
  cfg.scheduler = proxysim::SchedulerKind::Lp;
  cfg.agreements = agree::complete_graph(kProxies, 0.10);
  for (auto _ : state) {
    proxysim::Simulator sim(cfg);
    const proxysim::SimMetrics m = sim.run(traces);
    benchmark::DoNotOptimize(m.mean_wait());
  }
}
BENCHMARK(BM_DiscreteSimulator)->Unit(benchmark::kMillisecond)->Iterations(2);

}  // namespace

BENCHMARK_MAIN();
