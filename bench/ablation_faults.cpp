// Ablation: how the hardened GRM/LRM protocol degrades as the network gets
// lossier. A 10-site ring (each site sharing 80% with its neighbor, the
// Figure 9 topology) serves a fixed random request stream while the bus
// drops an i.i.d. fraction of every message; clients retry with backoff
// under a deadline and the GRM retries un-acked reserve commands. The
// interesting outputs are the grant rate (how much work still lands) and
// the p99 decision latency (what the retries cost the tail).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "agree/topology.h"
#include "fig_common.h"
#include "rms/bus.h"
#include "rms/client.h"
#include "rms/grm.h"
#include "rms/lrm.h"
#include "util/rng.h"

using namespace agora;
using namespace agora::figbench;

namespace {

struct FaultRunResult {
  std::size_t requests = 0;
  std::size_t granted = 0;
  std::size_t denied_capacity = 0;
  std::size_t denied_deadline = 0;
  double p50_latency = 0.0;
  double p99_latency = 0.0;
  std::uint64_t client_retries = 0;
  std::uint64_t bus_dropped = 0;
};

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

FaultRunResult run_with_drop(double drop_prob) {
  const std::size_t n = 10;
  rms::MessageBus bus;

  agree::AgreementSystem cpu(n);
  cpu.relative = agree::ring(n, 0.80, 1);
  cpu.capacity.assign(n, 10.0);

  rms::GrmOptions gopts;
  gopts.reserve_attempts = 6;
  gopts.reserve_backoff = 0.1;
  gopts.reserve_backoff_cap = 1.0;
  rms::Grm grm(bus, {cpu}, {}, /*decision_latency=*/0.01, gopts);

  std::vector<std::unique_ptr<rms::Lrm>> lrms;
  for (std::size_t s = 0; s < n; ++s) {
    lrms.push_back(std::make_unique<rms::Lrm>(bus, std::vector<double>{10.0}, 0.01));
    grm.register_lrm(s, lrms.back()->endpoint());
  }
  for (std::size_t s = 0; s < n; ++s) lrms[s]->attach(grm.endpoint(), s);
  bus.run_until_idle();

  rms::FaultPlan plan;
  plan.seed = 42;
  plan.default_link.drop = drop_prob;
  bus.set_fault_plan(plan);

  rms::ClientOptions copts;
  copts.max_attempts = 8;
  copts.retry_backoff = 0.1;
  copts.backoff_cap = 1.0;
  copts.deadline = 30.0;
  copts.send_latency = 0.01;
  rms::RequestClient client(bus, grm.endpoint(), copts);

  // The same workload at every drop probability: the request stream's RNG
  // is independent of the fault plan's.
  Pcg32 rng(7);
  const std::size_t kRequests = 400;
  for (std::uint64_t id = 1; id <= kRequests; ++id) {
    rms::AllocationRequest req;
    req.request_id = id;
    req.principal = rng.uniform_u32(static_cast<std::uint32_t>(n));
    req.amounts = {rng.uniform(1.0, 8.0)};
    req.duration = rng.uniform(0.5, 2.0);
    client.submit(req);
    bus.run_until(bus.now() + rng.exponential(2.0));
  }
  bus.run_until_idle();

  FaultRunResult res;
  res.requests = client.outcomes().size();
  std::vector<double> latencies;
  for (const rms::RequestClient::Outcome& out : client.outcomes()) {
    latencies.push_back(out.latency());
    if (out.reply.granted)
      ++res.granted;
    else if (out.reply.reason.rfind("deadline", 0) == 0)
      ++res.denied_deadline;
    else
      ++res.denied_capacity;
  }
  res.p50_latency = percentile(latencies, 0.50);
  res.p99_latency = percentile(latencies, 0.99);
  res.client_retries = client.retries();
  res.bus_dropped = bus.dropped();
  return res;
}

}  // namespace

int main() {
  banner("Ablation: message loss vs. allocation service quality",
         "10-site ring (80% neighbor shares), 400 random requests, clients\n"
         "retrying under a 30 s deadline, GRM retrying un-acked reserves.\n"
         "Sweep the i.i.d. per-message drop probability.");

  Table t({"drop_prob", "requests", "granted", "grant_rate", "denied_capacity",
           "denied_deadline", "p50_latency_s", "p99_latency_s", "retries", "bus_dropped"});
  for (double drop : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    const FaultRunResult r = run_with_drop(drop);
    t.add_row({drop, static_cast<double>(r.requests), static_cast<double>(r.granted),
               r.requests ? static_cast<double>(r.granted) / static_cast<double>(r.requests)
                          : 0.0,
               static_cast<double>(r.denied_capacity), static_cast<double>(r.denied_deadline),
               r.p50_latency, r.p99_latency, static_cast<double>(r.client_retries),
               static_cast<double>(r.bus_dropped)});
    std::printf("  drop=%.2f: %zu/%zu granted, p50 %.3f s, p99 %.3f s, %llu retries\n", drop,
                r.granted, r.requests, r.p50_latency, r.p99_latency,
                static_cast<unsigned long long>(r.client_retries));
  }
  emit("ablation_faults", t);
  std::printf("  -> every request resolves at every drop rate (no hangs); loss shows\n"
              "     up as tail latency and deadline denials, not as lost requests.\n");
  return 0;
}
