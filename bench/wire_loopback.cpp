// wire_loopback -- overload benchmark for the framed RPC boundary
// (DESIGN.md §14): an in-process AgoraService + net::Client pairs over
// 127.0.0.1, in three phases.
//
//   * calibrate -- closed-loop workers drive the service as fast as it
//     answers; the measured throughput is the sustainable rate (by
//     definition: every request was accepted and answered).
//   * overload  -- paced senders offer 2x the sustainable rate against the
//     same bounded admission queue. The acceptance contract of the wire
//     boundary is measured here: the excess is shed EXPLICITLY
//     (unavailable + retry-after, counted at the service), no request is
//     lost, and the p99 latency of the consults that WERE accepted stays
//     within the recorded bound -- backpressure protects the served
//     requests instead of melting every caller equally.
//   * drain     -- SIGTERM semantics under load: request_drain() while
//     senders are live; every in-flight call resolves with a definite
//     status and the loop exits within the grace window.
//
// Writes the schema-versioned BENCH_net.json (default; [out.json] to
// override) and exits non-zero if an acceptance bound is violated: no
// explicit shed at 2x, overload p99 above bound, an uncertified grant, or
// a lost call.
//
// Usage: wire_loopback [out.json]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "agree/matrices.h"
#include "engine/engine.h"
#include "net/client.h"
#include "net/service.h"
#include "util/rng.h"

namespace {

using Clock = std::chrono::steady_clock;
using agora::net::AgoraService;
using agora::net::Client;
using agora::net::ClientOptions;
using agora::net::ConsultOutcome;
using agora::net::Endpoint;
using agora::net::ServiceOptions;
using agora::net::ServiceStats;
using agora::StatusCode;

constexpr std::size_t kParticipants = 8;
constexpr double kShare = 0.1;
/// Calibration concurrency: stays under the service's outstanding-request
/// capacity (max_inflight + max_queue), so the sustainable rate is measured
/// shed-free. Overload multiplies the concurrency instead of pacing open
/// loop: synchronous clients cannot offer more than they are answered, so
/// extra load has to come from extra callers (which is also how real
/// overload arrives).
constexpr int kCalWorkers = 4;
constexpr int kOverWorkers = 4 * kCalWorkers;
/// Regression bound on the overload-phase p99 of ACCEPTED consults. The
/// bound is deliberately loose against run-to-run noise on a shared host;
/// historic runs sit far under it (see BENCH_net.json).
constexpr double kOverloadP99BoundUs = 50'000.0;

agora::agree::AgreementSystem economy() {
  agora::agree::AgreementSystem sys(kParticipants);
  for (std::size_t i = 0; i < kParticipants; ++i)
    sys.capacity[i] = 12.0 + static_cast<double>(i % 3);
  for (std::size_t a = 0; a < kParticipants; ++a)
    for (std::size_t b = 0; b < kParticipants; ++b)
      if (a != b) sys.relative(a, b) = kShare;
  return sys;
}

ClientOptions one_shot(std::uint16_t port, std::uint64_t seed) {
  ClientOptions c;
  c.endpoints = {Endpoint{"", port}};
  c.max_attempts = 1;  // measure the service's verdicts, not retry masking
  c.seed = seed;
  return c;
}

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto i = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
  return v[i];
}

struct PhaseResult {
  std::uint64_t issued = 0;
  std::uint64_t accepted = 0;  ///< server decided it (Ok/Insufficient/...)
  std::uint64_t shed = 0;      ///< unavailable / deadline verdicts
  std::uint64_t uncertified = 0;
  double seconds = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

/// Drive `workers` closed-loop threads for `duration`.
PhaseResult drive(std::uint16_t port, int workers, std::chrono::milliseconds duration) {
  PhaseResult r;
  std::atomic<std::uint64_t> issued{0}, accepted{0}, shed{0}, uncertified{0};
  std::vector<std::vector<double>> lat(static_cast<std::size_t>(workers));
  std::vector<std::thread> threads;
  const auto t0 = Clock::now();
  const auto t_end = t0 + duration;
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      agora::Pcg32 rng(0xB0A7ull + static_cast<std::uint64_t>(w) * 977);
      Client client(one_shot(port, 11 + static_cast<std::uint64_t>(w)));
      while (Clock::now() < t_end) {
        const auto s = Clock::now();
        issued.fetch_add(1, std::memory_order_relaxed);
        const ConsultOutcome out = client.consult(
            rng.uniform_u32(kParticipants), 0.2 + rng.next_double() * 2.0, 500);
        const double us =
            std::chrono::duration<double, std::micro>(Clock::now() - s).count();
        switch (out.status.code()) {
          case StatusCode::Ok:
            if (!out.reply.certified) uncertified.fetch_add(1, std::memory_order_relaxed);
            [[fallthrough]];
          case StatusCode::Insufficient:
          case StatusCode::Denied:
          case StatusCode::SolverFailed:
            accepted.fetch_add(1, std::memory_order_relaxed);
            lat[static_cast<std::size_t>(w)].push_back(us);
            break;
          default:
            shed.fetch_add(1, std::memory_order_relaxed);
            break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  r.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  r.issued = issued.load();
  r.accepted = accepted.load();
  r.shed = shed.load();
  r.uncertified = uncertified.load();
  std::vector<double> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  r.p50_us = percentile(all, 0.50);
  r.p99_us = percentile(all, 0.99);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_net.json";

  agora::engine::EngineOptions eopts;
  eopts.threads = 2;
  // No plan cache: each consult pays its LP, so the service has a real
  // capacity for the overload phase to exceed (a cache-hot hot path answers
  // on the caller thread and never lets the queue build).
  eopts.plan_cache = false;
  agora::engine::EnforcementEngine engine(economy(), eopts);

  ServiceOptions sopts;
  // Outstanding-request capacity of 6: above kCalWorkers (calibration is
  // shed-free) and far below kOverWorkers (overload must shed).
  sopts.max_queue = 4;
  sopts.max_inflight = 2;
  sopts.drain_grace_ms = 3000;
  AgoraService service(engine, sopts);
  if (!service.start().ok()) {
    std::fprintf(stderr, "wire_loopback: service failed to start\n");
    return 1;
  }
  const std::uint16_t port = service.port();

  // Phase 1: calibrate the sustainable rate (closed loop, after a warmup
  // that settles the allocators' warm-start bases).
  (void)drive(port, kCalWorkers, std::chrono::milliseconds(300));
  const PhaseResult cal = drive(port, kCalWorkers, std::chrono::milliseconds(1000));
  const double sustainable_rps = static_cast<double>(cal.accepted) / cal.seconds;
  std::printf("wire_loopback: sustainable %.0f req/s (p50 %.0f us, p99 %.0f us)\n",
              sustainable_rps, cal.p50_us, cal.p99_us);

  // Phase 2: overload -- 4x the caller concurrency. Shed answers return in
  // microseconds, so the realized offered rate lands well past 2x the
  // sustainable rate (recorded and enforced below).
  const PhaseResult over = drive(port, kOverWorkers, std::chrono::milliseconds(2000));
  const double offered_rps = static_cast<double>(over.issued) / over.seconds;
  std::printf(
      "wire_loopback: overload offered %.0f req/s -> accepted %llu shed %llu "
      "(p50 %.0f us, p99 %.0f us)\n",
      offered_rps, static_cast<unsigned long long>(over.accepted),
      static_cast<unsigned long long>(over.shed), over.p50_us, over.p99_us);

  // Phase 3: drain under live senders; every call must resolve.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> drain_issued{0}, drain_resolved{0};
  std::vector<std::thread> senders;
  for (int w = 0; w < 2; ++w) {
    senders.emplace_back([&, w] {
      agora::Pcg32 rng(0xD7A1ull + static_cast<std::uint64_t>(w));
      ClientOptions copt = one_shot(port, 99 + static_cast<std::uint64_t>(w));
      copt.connect_timeout_ms = 100;
      Client client(copt);
      while (!stop.load(std::memory_order_relaxed)) {
        drain_issued.fetch_add(1, std::memory_order_relaxed);
        (void)client.consult(rng.uniform_u32(kParticipants), 0.5, 300);
        drain_resolved.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  const auto drain_t0 = Clock::now();
  service.request_drain();
  while (service.running() &&
         Clock::now() - drain_t0 < std::chrono::seconds(10))
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double drain_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - drain_t0).count();
  const bool drained = !service.running();
  stop.store(true);
  for (auto& t : senders) t.join();
  service.stop();
  const bool drain_lossless = drain_issued.load() == drain_resolved.load();
  std::printf("wire_loopback: drain %s in %.0f ms, %llu/%llu sender calls resolved\n",
              drained ? "completed" : "TIMED OUT", drain_ms,
              static_cast<unsigned long long>(drain_resolved.load()),
              static_cast<unsigned long long>(drain_issued.load()));

  const ServiceStats s = service.stats();
  const std::uint64_t uncert = cal.uncertified + over.uncertified;
  // Demand multiplier is by construction: the overload phase runs 4x the
  // calibration concurrency at zero think time, i.e. 4x the demand that
  // already saturated the service shed-free. (Realized completions cannot
  // exceed capacity with synchronous callers -- the robustness claim is
  // that goodput HOLDS at capacity while the excess is shed explicitly,
  // instead of every caller degrading together.)
  const double demand_mult =
      static_cast<double>(kOverWorkers) / static_cast<double>(kCalWorkers);
  const double goodput_rps = static_cast<double>(over.accepted) / over.seconds;
  const bool no_collapse = goodput_rps >= 0.8 * sustainable_rps;
  const bool shed_explicit = over.shed > 0 && s.shed_queue + s.shed_deadline > 0;
  const bool p99_ok = over.p99_us <= kOverloadP99BoundUs;
  const bool conserved = s.consults == s.answered;

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "wire_loopback: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"agora-bench-net/1\",\n");
  std::fprintf(f, "  \"benchmark\": \"wire_loopback\",\n");
  std::fprintf(f,
               "  \"setup\": {\"participants\": %zu, \"share\": %.3f, "
               "\"engine_threads\": 2, \"plan_cache\": false, "
               "\"cal_workers\": %d, \"overload_workers\": %d, "
               "\"max_queue\": %zu, \"max_inflight\": %zu},\n",
               kParticipants, kShare, kCalWorkers, kOverWorkers, sopts.max_queue,
               sopts.max_inflight);
  std::fprintf(f,
               "  \"calibration\": {\"sustainable_rps\": %.1f, \"accepted\": %llu, "
               "\"p50_us\": %.1f, \"p99_us\": %.1f},\n",
               sustainable_rps, static_cast<unsigned long long>(cal.accepted),
               cal.p50_us, cal.p99_us);
  std::fprintf(f,
               "  \"overload\": {\"demand_over_sustainable\": %.1f, "
               "\"goodput_rps\": %.1f, \"goodput_held\": %s, "
               "\"issued\": %llu, \"accepted\": %llu, \"shed\": %llu, "
               "\"shed_fraction\": %.4f, \"p50_us\": %.1f, \"p99_us\": %.1f, "
               "\"p99_bound_us\": %.1f, \"p99_within_bound\": %s, "
               "\"shed_explicit\": %s},\n",
               demand_mult, goodput_rps, no_collapse ? "true" : "false",
               static_cast<unsigned long long>(over.issued),
               static_cast<unsigned long long>(over.accepted),
               static_cast<unsigned long long>(over.shed),
               over.issued == 0 ? 0.0
                                : static_cast<double>(over.shed) /
                                      static_cast<double>(over.issued),
               over.p50_us, over.p99_us, kOverloadP99BoundUs,
               p99_ok ? "true" : "false", shed_explicit ? "true" : "false");
  std::fprintf(f,
               "  \"drain\": {\"completed\": %s, \"drain_ms\": %.1f, "
               "\"sender_calls_issued\": %llu, \"sender_calls_resolved\": %llu, "
               "\"lossless\": %s},\n",
               drained ? "true" : "false", drain_ms,
               static_cast<unsigned long long>(drain_issued.load()),
               static_cast<unsigned long long>(drain_resolved.load()),
               drain_lossless ? "true" : "false");
  std::fprintf(f,
               "  \"service\": {\"consults\": %llu, \"answered\": %llu, "
               "\"shed_queue\": %llu, \"shed_drain\": %llu, \"shed_deadline\": %llu, "
               "\"late_drops\": %llu, \"malformed\": %llu, \"peak_queue\": %llu, "
               "\"peak_inflight\": %llu, \"conserved\": %s},\n",
               static_cast<unsigned long long>(s.consults),
               static_cast<unsigned long long>(s.answered),
               static_cast<unsigned long long>(s.shed_queue),
               static_cast<unsigned long long>(s.shed_drain),
               static_cast<unsigned long long>(s.shed_deadline),
               static_cast<unsigned long long>(s.late_drop),
               static_cast<unsigned long long>(s.malformed),
               static_cast<unsigned long long>(s.peak_queue),
               static_cast<unsigned long long>(s.peak_inflight),
               conserved ? "true" : "false");
  std::fprintf(f, "  \"uncertified_grants\": %llu\n",
               static_cast<unsigned long long>(uncert));
  std::fprintf(f, "}\n");
  std::fclose(f);

  bool ok = true;
  if (!no_collapse) {
    std::fprintf(stderr,
                 "wire_loopback: FAIL -- goodput collapsed under overload "
                 "(%.0f of %.0f req/s)\n",
                 goodput_rps, sustainable_rps);
    ok = false;
  }
  if (!shed_explicit) {
    std::fprintf(stderr,
                 "wire_loopback: FAIL -- %.0fx overload did not shed explicitly\n",
                 demand_mult);
    ok = false;
  }
  if (!p99_ok) {
    std::fprintf(stderr, "wire_loopback: FAIL -- overload p99 %.0f us above bound %.0f us\n",
                 over.p99_us, kOverloadP99BoundUs);
    ok = false;
  }
  if (uncert > 0) {
    std::fprintf(stderr, "wire_loopback: FAIL -- %llu uncertified grants crossed the wire\n",
                 static_cast<unsigned long long>(uncert));
    ok = false;
  }
  if (!drained || !drain_lossless) {
    std::fprintf(stderr, "wire_loopback: FAIL -- drain incomplete or lossy\n");
    ok = false;
  }
  if (!conserved) {
    std::fprintf(stderr, "wire_loopback: FAIL -- consults != answered at the service\n");
    ok = false;
  }
  std::printf("wire_loopback: %s -> %s\n", ok ? "PASS" : "FAIL", out_path.c_str());
  return ok ? 0 : 1;
}
