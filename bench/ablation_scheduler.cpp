// Ablation: the two scheduler-semantics decisions DESIGN.md documents as
// load-bearing for the paper reproduction.
//
//  (a) Spare-capacity forecasting: with queue-only spare reporting, a busy
//      intermediary looks idle (it sheds its own queue), so under direct-
//      only agreements load cascades hop by hop and the Figure 9 contrast
//      (level 1 vs level >= 3 on a skip-1 loop) disappears.
//  (b) Wait-benefit cap: without it, any positive redirection overhead sets
//      off a churn feedback (saturated proxies trade work endlessly, paying
//      the overhead each time) and Figure 12's "negligible impact" result
//      inverts into a meltdown.
#include <cstdio>

#include "agree/topology.h"
#include "fig_common.h"

using namespace agora;
using namespace agora::figbench;

int main() {
  banner("Ablation: scheduler semantics",
         "What breaks when (a) spare capacity ignores each proxy's own\n"
         "forecast arrivals, or (b) the wait-benefit redirection cap is off.");

  const auto traces = make_traces(kHour);

  // --- (a) forecast-aware spare on the Figure 9 scenario. ------------------
  std::printf("(a) ring skip=1, level=1 (Figure 9's direct-only case):\n");
  Table ta({"forecast_spare", "peak_wait_s", "mean_wait_s", "redirected_pct"});
  for (bool forecast : {true, false}) {
    proxysim::SimConfig cfg = base_config();
    cfg.scheduler = proxysim::SchedulerKind::Lp;
    cfg.agreements = agree::ring(kProxies, 0.80, 1);
    cfg.alloc_opts.transitive.max_level = 1;
    cfg.spare_includes_forecast = forecast;
    const proxysim::SimMetrics m = run_sim(cfg, traces);
    ta.add_row({forecast ? 1.0 : 0.0, m.peak_slot_wait(), m.mean_wait(),
                100.0 * m.redirected_fraction()});
    std::printf("  forecast=%s: peak %.2f s, mean %.3f s\n", forecast ? "on " : "off",
                m.peak_slot_wait(), m.mean_wait());
  }
  emit("ablation_forecast_spare", ta);
  std::printf("  -> with forecasting off, direct-only enforcement looks nearly as good\n"
              "     as full transitivity (the cascade hides the difference).\n\n");

  // --- (b) wait-benefit cap on the Figure 12 scenario. ---------------------
  std::printf("(b) complete graph 10%%, redirect cost 0.2 s (Figure 12's worst case):\n");
  Table tb({"benefit_cap", "peak_wait_s", "mean_wait_s", "redirected_pct"});
  for (bool cap : {true, false}) {
    proxysim::SimConfig cfg = base_config();
    cfg.scheduler = proxysim::SchedulerKind::Lp;
    cfg.agreements = agree::complete_graph(kProxies, 0.10);
    cfg.redirect_cost = 0.2;
    cfg.wait_benefit_cap = cap;
    const proxysim::SimMetrics m = run_sim(cfg, traces);
    tb.add_row({cap ? 1.0 : 0.0, m.peak_slot_wait(), m.mean_wait(),
                100.0 * m.redirected_fraction()});
    std::printf("  cap=%s: peak %.2f s, mean %.3f s, redirected %.2f%%\n",
                cap ? "on " : "off", m.peak_slot_wait(), m.mean_wait(),
                100.0 * m.redirected_fraction());
  }
  emit("ablation_wait_benefit_cap", tb);
  std::printf("  -> with the cap off, the overhead feedback loop inflates total work\n"
              "     and the system saturates.\n");
  return 0;
}
