// Ablation: end-to-end simulator throughput (requests simulated per second
// of wall clock) vs proxy count and scheduler kind.
#include <benchmark/benchmark.h>

#include "agree/topology.h"
#include "proxysim/simulator.h"
#include "trace/generator.h"

namespace {

using namespace agora;

std::vector<std::vector<trace::TraceRequest>> make_traces(std::size_t proxies) {
  trace::GeneratorConfig gc;
  gc.peak_rate = 8.0;
  trace::Generator gen(gc, trace::DiurnalProfile::flat(1.0, 1800.0, 3));
  std::vector<std::vector<trace::TraceRequest>> traces;
  for (std::size_t p = 0; p < proxies; ++p) traces.push_back(gen.generate(p + 1));
  return traces;
}

void run_case(benchmark::State& state, proxysim::SchedulerKind kind) {
  const std::size_t proxies = static_cast<std::size_t>(state.range(0));
  const auto traces = make_traces(proxies);
  std::uint64_t requests = 0;
  for (const auto& t : traces) requests += t.size();

  proxysim::SimConfig cfg;
  cfg.num_proxies = proxies;
  cfg.horizon = 1800.0;
  cfg.slot_width = 600.0;
  cfg.scheduler = kind;
  if (kind != proxysim::SchedulerKind::None)
    cfg.agreements = agree::complete_graph(proxies, 0.8 / static_cast<double>(proxies));
  // Exact simple-path closure is factorial on complete graphs; prune
  // negligible products so the 20-proxy case stays tractable.
  cfg.alloc_opts.transitive.prune_below = 1e-8;

  for (auto _ : state) {
    proxysim::Simulator sim(cfg);
    const proxysim::SimMetrics m = sim.run(traces);
    benchmark::DoNotOptimize(m.mean_wait());
  }
  state.counters["requests/s"] = benchmark::Counter(
      static_cast<double>(requests) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

void BM_SimNoSharing(benchmark::State& state) {
  run_case(state, proxysim::SchedulerKind::None);
}
void BM_SimLp(benchmark::State& state) { run_case(state, proxysim::SchedulerKind::Lp); }
void BM_SimEndpoint(benchmark::State& state) {
  run_case(state, proxysim::SchedulerKind::Endpoint);
}
BENCHMARK(BM_SimNoSharing)->Arg(2)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimLp)->Arg(2)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimEndpoint)->Arg(2)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
