// Ablation: tableau simplex vs revised simplex (vs brute force on tiny
// instances) on allocation-shaped LPs of growing size.
#include <benchmark/benchmark.h>

#include "agree/topology.h"
#include "alloc/allocator.h"
#include "lp/brute_force.h"
#include "lp/model_builder.h"
#include "lp/revised.h"
#include "lp/simplex.h"
#include "util/rng.h"

namespace {

using namespace agora;

/// Build the compact allocation LP for a complete-graph system of size n.
lp::Problem allocation_lp(std::size_t n) {
  Pcg32 rng(n * 7 + 1);
  agree::AgreementSystem sys(n);
  for (std::size_t i = 0; i < n; ++i) sys.capacity[i] = rng.uniform(5.0, 20.0);
  sys.relative = agree::complete_graph(n, 0.8 / static_cast<double>(n));
  // Exact simple-path enumeration is factorial on complete graphs; prune
  // negligible path products so fixture setup stays tractable at n = 40.
  agree::TransitiveOptions topts;
  topts.prune_below = 1e-8;
  const agree::CapacityReport rep = agree::compute_capacities(sys, topts);

  lp::ModelBuilder mb(lp::Sense::Minimize);
  std::vector<lp::Var> d(n);
  for (std::size_t k = 0; k < n; ++k) d[k] = mb.add_var("d", 0.0, rep.entitlement(k, 0));
  const lp::Var theta = mb.add_var("theta", 0.0);
  mb.add(lp::sum(d) == rep.capacity[0] * 0.5);
  for (std::size_t i = 0; i < n; ++i) {
    lp::LinExpr drop;
    for (std::size_t k = 0; k < n; ++k) {
      const double c = k == i ? 1.0 : rep.shares(k, i);
      if (c > 0.0) drop += c * d[k];
    }
    mb.add(drop - 1.0 * theta <= 0.0);
  }
  mb.minimize(lp::LinExpr(theta));
  return mb.problem();
}

void BM_TableauSimplex(benchmark::State& state) {
  const lp::Problem p = allocation_lp(static_cast<std::size_t>(state.range(0)));
  lp::SimplexSolver solver;
  for (auto _ : state) {
    const lp::SolveResult r = solver.solve(p);
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_TableauSimplex)->Arg(5)->Arg(10)->Arg(20)->Arg(40);

void BM_RevisedSimplex(benchmark::State& state) {
  const lp::Problem p = allocation_lp(static_cast<std::size_t>(state.range(0)));
  lp::RevisedSimplexSolver solver;
  for (auto _ : state) {
    const lp::SolveResult r = solver.solve(p);
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_RevisedSimplex)->Arg(5)->Arg(10)->Arg(20)->Arg(40);

void BM_BruteForce(benchmark::State& state) {
  const lp::Problem p = allocation_lp(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const lp::SolveResult r = lp::brute_force_solve(p);
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_BruteForce)->Arg(3)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
