// Ablation: sparse-LU revised simplex vs dense-inverse revised simplex vs
// tableau simplex (vs brute force on tiny instances) on allocation-shaped
// LPs of growing size, all through the unified lp::solve entry point.
//
// Two fixtures:
//   * figbench::compact_allocation_lp -- the dense complete-graph model the
//     Allocator's compact path solves (shared with micro_warmstart);
//   * figbench::banded_sharing_system -- a banded ring-of-time-zones system
//     whose rows keep O(1) nonzeros as n grows, consulted through
//     alloc::AllocationModelCache exactly like the production allocator --
//     the regime the sparse basis exists for.
//
// Before the google-benchmark registrations run, main() executes the
// LPSCALE sweep: n in {100, 500, 1000} on the banded fixture (dense inverse
// only through n = 500 -- m^2 storage makes it the foil, not the subject),
// printing one machine-readable line per configuration:
//
//   LPSCALE n=<n> backend=<sparse-lu|dense-inverse> certified=<0|1>
//     consults_per_s=<r> iterations=<it> basis_nnz=<z> lu_nnz=<z>
//     fill_ratio=<f> refactorizations=<c> max_eta=<e>
//
// tools/bench.sh tees these into bench_results/lpscale_summary.txt and
// tools/bench_lp_json.py folds them into BENCH_lp.json ("scaling" block).
// The sweep doubles as the release gate: main() exits 1 unless every
// configuration solves Optimal AND certifies against the original problem,
// the n = 1000 sparse solve certifies end-to-end, and the sparse basis
// beats the dense inverse by >= 5x consults/s at n = 100.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "agree/capacity.h"
#include "alloc/model_cache.h"
#include "fig_common.h"
#include "lp/certify.h"
#include "lp/solve.h"

namespace {

using namespace agora;
using figbench::compact_allocation_lp;

lp::SolveOptions backend_opts(lp::Backend backend, lp::BasisRep basis) {
  lp::SolveOptions opts;
  opts.backend = backend;
  opts.basis = basis;
  return opts;
}

// --- LPSCALE sweep ---------------------------------------------------------

struct ScalePoint {
  std::size_t n = 0;
  lp::BasisRep basis = lp::BasisRep::SparseLu;
  bool certified = false;
  bool optimal = false;
  double consults_per_s = 0.0;
  lp::SolveResult result;
};

/// Solve + certify the banded fixture once for telemetry, then time warm
/// consults (the loop the paper's GRM runs) for throughput.
ScalePoint run_scale_point(std::size_t n, lp::BasisRep basis) {
  ScalePoint pt;
  pt.n = n;
  pt.basis = basis;
  const agree::AgreementSystem sys = figbench::banded_sharing_system(n);
  const agree::CapacityReport rep = agree::compute_capacities(
      sys, figbench::sparse_bench_alloc_options().transitive);
  alloc::AllocationModelCache cache;
  cache.build(sys, rep);
  cache.patch(rep, /*a=*/0, rep.capacity[0] * 0.5);
  const lp::SolveOptions opts = backend_opts(lp::Backend::Revised, basis);

  lp::SolveWorkspace& ws = cache.workspace();
  pt.result = lp::solve(cache.problem(), opts, &ws);
  pt.optimal = pt.result.optimal();
  lp::Verifier verifier(opts.tols);
  const lp::Certificate cert = verifier.certify(cache.problem(), pt.result);
  pt.certified = cert.certified;

  // Throughput: warm consults against the cached model. Each consult is the
  // GRM's per-request pattern verbatim -- AllocationModelCache::patch points
  // the model at requester a's entitlements and amount (bounds + rhs motion
  // that repatch_standard_form_rhs absorbs without a rebuild), and the solve
  // warm-starts from the previous optimal basis. Rotating the requester
  // makes every consult re-optimize against a genuinely different binding
  // set (~10 pivots at n = 100), the workload the sparse basis exists for.
  // Reps are sized so the n = 1000 configuration finishes in a few seconds.
  const int reps = n >= 1000 ? 20 : (n >= 500 ? 50 : 200);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) {
    const std::size_t a = static_cast<std::size_t>(i) * 17 % n;
    cache.patch(rep, a,
                rep.capacity[a] * (0.05 + 0.95 * static_cast<double>(i % 8) / 8.0));
    const lp::SolveResult r = lp::solve(cache.problem(), opts, &ws);
    benchmark::DoNotOptimize(r.objective);
    if (!r.optimal()) pt.optimal = false;
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  pt.consults_per_s = elapsed.count() > 0.0 ? reps / elapsed.count() : 0.0;
  return pt;
}

void print_scale_point(const ScalePoint& pt) {
  const lp::SolveStats& s = pt.result.stats;
  const double fill = s.basis_nnz > 0
                          ? static_cast<double>(s.lu_nnz) /
                                static_cast<double>(s.basis_nnz)
                          : 0.0;
  std::printf(
      "LPSCALE n=%zu backend=%s certified=%d consults_per_s=%.2f "
      "iterations=%llu basis_nnz=%llu lu_nnz=%llu fill_ratio=%.3f "
      "refactorizations=%llu max_eta=%llu\n",
      pt.n, lp::to_string(pt.basis), pt.certified && pt.optimal ? 1 : 0,
      pt.consults_per_s, static_cast<unsigned long long>(pt.result.iterations),
      static_cast<unsigned long long>(s.basis_nnz),
      static_cast<unsigned long long>(s.lu_nnz), fill,
      static_cast<unsigned long long>(s.refactorizations),
      static_cast<unsigned long long>(s.max_eta_count));
}

/// Returns false (gate failure) unless every configuration certifies, the
/// n = 1000 sparse solve certifies, and sparse >= 5x dense at n = 100.
bool run_scaling_sweep() {
  bool ok = true;
  double sparse_100 = 0.0;
  double dense_100 = 0.0;
  for (const std::size_t n : {std::size_t{100}, std::size_t{500}, std::size_t{1000}}) {
    const ScalePoint sparse = run_scale_point(n, lp::BasisRep::SparseLu);
    print_scale_point(sparse);
    if (!sparse.certified || !sparse.optimal) {
      std::fprintf(stderr, "GATE: sparse n=%zu failed to solve+certify\n", n);
      ok = false;
    }
    if (n == 100) sparse_100 = sparse.consults_per_s;
    if (n <= 500) {  // dense m^2 storage is the foil; skip it at n = 1000
      const ScalePoint dense = run_scale_point(n, lp::BasisRep::DenseInverse);
      print_scale_point(dense);
      if (!dense.certified || !dense.optimal) {
        std::fprintf(stderr, "GATE: dense n=%zu failed to solve+certify\n", n);
        ok = false;
      }
      if (n == 100) dense_100 = dense.consults_per_s;
    }
  }
  const double speedup = dense_100 > 0.0 ? sparse_100 / dense_100 : 0.0;
  std::printf("LPSCALE speedup_n100=%.2f\n", speedup);
  if (speedup < 5.0) {
    std::fprintf(stderr,
                 "GATE: sparse/dense consults_per_s at n=100 is %.2fx (< 5x)\n",
                 speedup);
    ok = false;
  }
  return ok;
}

// --- google-benchmark registrations (small-n ablation) ---------------------

void BM_TableauSimplex(benchmark::State& state) {
  const lp::Problem p = compact_allocation_lp(static_cast<std::size_t>(state.range(0)));
  const lp::SolveOptions opts =
      backend_opts(lp::Backend::Tableau, lp::BasisRep::DenseInverse);
  for (auto _ : state) {
    const lp::SolveResult r = lp::solve(p, opts);
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_TableauSimplex)->Arg(5)->Arg(10)->Arg(20)->Arg(40);

void BM_RevisedSimplexDense(benchmark::State& state) {
  const lp::Problem p = compact_allocation_lp(static_cast<std::size_t>(state.range(0)));
  const lp::SolveOptions opts =
      backend_opts(lp::Backend::Revised, lp::BasisRep::DenseInverse);
  for (auto _ : state) {
    const lp::SolveResult r = lp::solve(p, opts);
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_RevisedSimplexDense)->Arg(5)->Arg(10)->Arg(20)->Arg(40);

void BM_RevisedSimplexSparse(benchmark::State& state) {
  const lp::Problem p = compact_allocation_lp(static_cast<std::size_t>(state.range(0)));
  const lp::SolveOptions opts =
      backend_opts(lp::Backend::Revised, lp::BasisRep::SparseLu);
  for (auto _ : state) {
    const lp::SolveResult r = lp::solve(p, opts);
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_RevisedSimplexSparse)->Arg(5)->Arg(10)->Arg(20)->Arg(40);

/// Same solver, but with a persistent workspace: rhs/bounds are unchanged
/// between iterations, so every solve after the first warm-starts from the
/// optimal basis and should price once and pivot zero times.
void BM_RevisedSimplexWarm(benchmark::State& state) {
  const lp::Problem p = compact_allocation_lp(static_cast<std::size_t>(state.range(0)));
  const lp::SolveOptions opts =
      backend_opts(lp::Backend::Revised, lp::BasisRep::SparseLu);
  lp::SolveWorkspace ws;
  for (auto _ : state) {
    const lp::SolveResult r = lp::solve(p, opts, &ws);
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_RevisedSimplexWarm)->Arg(5)->Arg(10)->Arg(20)->Arg(40);

void BM_BruteForce(benchmark::State& state) {
  const lp::Problem p = compact_allocation_lp(static_cast<std::size_t>(state.range(0)));
  lp::SolveOptions opts;
  opts.backend = lp::Backend::BruteForce;
  for (auto _ : state) {
    const lp::SolveResult r = lp::solve(p, opts);
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_BruteForce)->Arg(3)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  const bool gates_ok = run_scaling_sweep();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return gates_ok ? 0 : 1;
}
