// Ablation: tableau simplex vs revised simplex (vs brute force on tiny
// instances) on allocation-shaped LPs of growing size.
//
// The fixture is figbench::compact_allocation_lp -- the exact model the
// Allocator's compact path solves (shared with micro_warmstart).
#include <benchmark/benchmark.h>

#include "fig_common.h"
#include "lp/brute_force.h"
#include "lp/revised.h"
#include "lp/simplex.h"

namespace {

using namespace agora;
using figbench::compact_allocation_lp;

void BM_TableauSimplex(benchmark::State& state) {
  const lp::Problem p = compact_allocation_lp(static_cast<std::size_t>(state.range(0)));
  lp::SimplexSolver solver;
  for (auto _ : state) {
    const lp::SolveResult r = solver.solve(p);
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_TableauSimplex)->Arg(5)->Arg(10)->Arg(20)->Arg(40);

void BM_RevisedSimplex(benchmark::State& state) {
  const lp::Problem p = compact_allocation_lp(static_cast<std::size_t>(state.range(0)));
  lp::RevisedSimplexSolver solver;
  for (auto _ : state) {
    const lp::SolveResult r = solver.solve(p);
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_RevisedSimplex)->Arg(5)->Arg(10)->Arg(20)->Arg(40);

/// Same solver, but with a persistent workspace: rhs/bounds are unchanged
/// between iterations, so every solve after the first warm-starts from the
/// optimal basis and should price once and pivot zero times.
void BM_RevisedSimplexWarm(benchmark::State& state) {
  const lp::Problem p = compact_allocation_lp(static_cast<std::size_t>(state.range(0)));
  lp::RevisedSimplexSolver solver;
  lp::SolveWorkspace ws;
  for (auto _ : state) {
    const lp::SolveResult r = solver.solve(p, &ws);
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_RevisedSimplexWarm)->Arg(5)->Arg(10)->Arg(20)->Arg(40);

void BM_BruteForce(benchmark::State& state) {
  const lp::Problem p = compact_allocation_lp(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const lp::SolveResult r = lp::brute_force_solve(p);
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_BruteForce)->Arg(3)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
