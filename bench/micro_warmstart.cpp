// micro_warmstart -- the tentpole measurement for the amortized solve path:
// a Figure-13-like trace-driven consult sequence (spare capacities refresh,
// then the LP scheme allocates an overflow) run through the Revised engine
// cold (reuse_context = false: model rebuilt and solver state reallocated
// per request, the historical behavior) vs warm (reuse_context = true: the
// model structure is patched in place and each solve warm-starts from the
// previous optimal basis).
//
// Reported per benchmark:
//   lp_iters_per_solve  -- simplex pivots per allocate()
//   allocs_per_solve    -- heap allocations per consult (operator new count)
//
// main() first runs a lockstep verification pass and prints one summary line
//
//   WARMSTART theta_max_diff=... cold_iters=... warm_iters=... iter_ratio=...
//
// consumed by tools/bench.sh into BENCH_lp.json; theta must agree within
// 1e-6 and the iteration ratio is the PR's acceptance metric.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <span>
#include <vector>

#include "agree/topology.h"
#include "alloc/allocator.h"
#include "fig_common.h"
#include "util/rng.h"

// --- Global allocation counter (new/delete overrides) ----------------------

static std::atomic<std::uint64_t> g_allocs{0};

static void* counted_alloc(std::size_t sz) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz ? sz : 1)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t sz) { return counted_alloc(sz); }
void* operator new[](std::size_t sz) { return counted_alloc(sz); }
void* operator new(std::size_t sz, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(sz ? sz : 1);
}
void* operator new[](std::size_t sz, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(sz ? sz : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace {

using namespace agora;

constexpr std::size_t kProxies = 10;
constexpr std::size_t kConsults = 256;

struct Consult {
  std::vector<double> spare;
  std::size_t origin = 0;
  double overflow = 0.0;
};

struct Scenario {
  agree::AgreementSystem sys;
  std::vector<Consult> consults;
};

/// Fig-13-like setup: 10 proxies on a ring with distance-decaying shares,
/// spare capacities fluctuating per scheduling epoch, overflow requests from
/// rotating origins. Fully deterministic.
Scenario make_scenario() {
  Scenario sc;
  sc.sys = agree::AgreementSystem(kProxies);
  sc.sys.relative = agree::distance_decay(kProxies, {0.20, 0.10, 0.05, 0.03});
  Pcg32 rng(20260806);
  std::vector<double> base(kProxies);
  for (double& b : base) b = rng.uniform(8.0, 16.0);
  sc.sys.capacity = base;
  sc.consults.resize(kConsults);
  for (Consult& c : sc.consults) {
    c.spare.resize(kProxies);
    for (std::size_t i = 0; i < kProxies; ++i) c.spare[i] = base[i] * rng.uniform(0.2, 1.0);
    c.origin = rng.uniform_u32(kProxies);
    c.overflow = rng.uniform(0.5, 6.0);
  }
  return sc;
}

alloc::AllocatorOptions engine_opts(bool reuse) {
  alloc::AllocatorOptions opts;
  opts.solve.backend = lp::Backend::Revised;
  opts.reuse_context = reuse;
  return opts;
}

/// One consult against a live allocator; returns the plan. Mirrors
/// SchedulerBridge::plan's LP branch (partial redirection clamp included).
alloc::AllocationPlan consult(const alloc::Allocator& al, const Consult& c) {
  const double reachable = al.available_to(c.origin);
  const double x = std::min(c.overflow, reachable * (1.0 - 1e-9));
  return al.allocate(c.origin, std::max(0.0, x));
}

void run_sequence(benchmark::State& state, bool reuse) {
  const Scenario sc = make_scenario();
  alloc::Allocator al(sc.sys, engine_opts(reuse));
  std::uint64_t lp_iters = 0;
  std::uint64_t solves = 0;
  std::size_t step = 0;
  const std::uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    const Consult& c = sc.consults[step++ % sc.consults.size()];
    al.set_capacities(std::span<const double>(c.spare));
    const alloc::AllocationPlan plan = consult(al, c);
    benchmark::DoNotOptimize(plan.theta);
    lp_iters += plan.lp_iterations;
    ++solves;
  }
  const std::uint64_t allocs_after = g_allocs.load(std::memory_order_relaxed);
  const double per = solves ? 1.0 / static_cast<double>(solves) : 0.0;
  state.counters["lp_iters_per_solve"] = static_cast<double>(lp_iters) * per;
  state.counters["allocs_per_solve"] = static_cast<double>(allocs_after - allocs_before) * per;
}

void BM_ColdAllocate(benchmark::State& state) { run_sequence(state, /*reuse=*/false); }
BENCHMARK(BM_ColdAllocate);

void BM_WarmAllocate(benchmark::State& state) { run_sequence(state, /*reuse=*/true); }
BENCHMARK(BM_WarmAllocate);

/// Lockstep cold-vs-warm pass over the whole consult sequence; prints the
/// WARMSTART summary line and returns false on a theta mismatch.
bool verify_and_summarize() {
  const Scenario sc = make_scenario();
  alloc::Allocator cold(sc.sys, engine_opts(false));
  alloc::Allocator warm(sc.sys, engine_opts(true));
  std::uint64_t cold_iters = 0, warm_iters = 0;
  double theta_max_diff = 0.0;
  bool status_match = true;
  for (const Consult& c : sc.consults) {
    cold.set_capacities(std::span<const double>(c.spare));
    warm.set_capacities(std::span<const double>(c.spare));
    const alloc::AllocationPlan pc = consult(cold, c);
    const alloc::AllocationPlan pw = consult(warm, c);
    cold_iters += pc.lp_iterations;
    warm_iters += pw.lp_iterations;
    if (pc.status != pw.status) status_match = false;
    if (pc.satisfied() && pw.satisfied())
      theta_max_diff = std::max(theta_max_diff, std::fabs(pc.theta - pw.theta));
  }
  const double ratio = warm_iters ? static_cast<double>(cold_iters) / static_cast<double>(warm_iters)
                                  : static_cast<double>(cold_iters);
  std::printf("WARMSTART theta_max_diff=%.3e cold_iters=%llu warm_iters=%llu iter_ratio=%.2f\n",
              theta_max_diff, static_cast<unsigned long long>(cold_iters),
              static_cast<unsigned long long>(warm_iters), ratio);
  return status_match && theta_max_diff <= 1e-6;
}

}  // namespace

int main(int argc, char** argv) {
  if (!verify_and_summarize()) {
    std::fprintf(stderr, "FATAL: warm-started plans diverge from cold plans\n");
    return 1;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
