// Figure 10: loop agreement structure, sharing neighbor three time zones
// away. Paper: worst-case wait ~7 s at level 1, ~2 s at level >= 3.
#include "fig_ring.h"

int main(int argc, char** argv) {
  const auto opts = agora::figbench::parse_fig_options(argc, argv, "Figure 10");
  agora::figbench::run_ring_figure("Figure 10", 3, "~7 s", opts);
  return 0;
}
