// chaos_failover -- failover/replication benchmark for the replicated GRM
// (DESIGN.md §12): everything is measured in bus VIRTUAL time, so the
// numbers are deterministic protocol properties, not host noise.
//
// Two measurements, written to BENCH_rms.json:
//   * failover unavailability -- steady allocation traffic against a
//     3-replica group; the leader crashes mid-run; we record how long the
//     grant stream stalls (first grant after the crash minus crash time),
//     swept over raft seeds so the number covers different election races.
//     The acceptance bound is a few election timeouts.
//   * replication overhead -- the same fault-free workload against 1 and 3
//     replicas: bus messages per decided request (the quorum log's
//     amplification) and mean client-observed decision latency.
//
// Usage: chaos_failover [out.json]   (default BENCH_rms.json)
#include <algorithm>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "agree/matrices.h"
#include "rms/bus.h"
#include "rms/client.h"
#include "rms/grm.h"
#include "rms/lrm.h"
#include "rms/replica/group.h"
#include "util/rng.h"

namespace {

using namespace agora;
using rms::replica::ReplicatedGrm;

constexpr double kElectionMax = 1.0;

std::vector<agree::AgreementSystem> two_site_systems() {
  agree::AgreementSystem cpu(2);
  cpu.capacity = {5.0, 10.0};
  cpu.relative(1, 0) = 0.5;
  return {cpu};
}

rms::GrmOptions grm_options(std::size_t replicas, std::uint64_t raft_seed) {
  rms::GrmOptions g;
  g.reserve_attempts = 4;
  g.reserve_backoff = 0.1;
  g.replication.replicas = replicas;
  g.replication.election_timeout_min = 0.5;
  g.replication.election_timeout_max = kElectionMax;
  g.replication.heartbeat_interval = 0.1;
  g.replication.latency = 0.01;
  g.replication.seed = raft_seed;
  return g;
}

rms::ClientOptions client_options() {
  rms::ClientOptions c;
  c.max_attempts = 10;
  c.retry_backoff = 0.2;
  c.backoff_cap = 1.0;
  c.retry_jitter = 0.25;
  c.deadline = 30.0;
  c.send_latency = 0.01;
  return c;
}

struct RunResult {
  std::uint64_t requests = 0;
  std::uint64_t granted = 0;
  std::uint64_t delivered = 0;   ///< bus messages handed to handlers
  double mean_latency = 0.0;     ///< client-observed, virtual seconds
  double grant_gap = 0.0;        ///< unavailability after the crash (vt s)
  bool converged = false;
};

/// One scenario run: `crash_leader` crashes the elected leader at t=10 for
/// 10 virtual seconds; otherwise the network is perfect.
RunResult run_scenario(std::size_t replicas, std::uint64_t raft_seed, bool crash_leader,
                       std::uint64_t requests) {
  rms::MessageBus bus;
  ReplicatedGrm grp(bus, two_site_systems(), {}, 0.01, grm_options(replicas, raft_seed));
  rms::Lrm lrm0(bus, {5.0}, 0.01), lrm1(bus, {10.0}, 0.01);
  grp.register_lrm(0, lrm0.endpoint());
  grp.register_lrm(1, lrm1.endpoint());
  lrm0.attach(grp.ingress(0), 0);
  lrm1.attach(grp.ingress(1), 1);
  grp.start();
  rms::RequestClient client(bus, grp.endpoints(), client_options());
  bus.run_until(5.0);

  const double crash_at = 10.0;
  if (crash_leader) {
    const auto leader = grp.leader();
    if (leader) {
      rms::FaultPlan plan;
      plan.crashes.push_back(
          rms::CrashWindow{grp.node(*leader).endpoint(), crash_at, crash_at + 10.0});
      bus.set_fault_plan(plan);
    }
  }

  Pcg32 workload(42);
  for (std::uint64_t id = 1; id <= requests; ++id) {
    rms::AllocationRequest req;
    req.request_id = id;
    req.principal = workload.uniform_u32(2);
    req.amounts = {workload.uniform(0.3, 1.5)};
    req.duration = workload.uniform(0.5, 2.0);
    client.submit(req);
    bus.run_until(bus.now() + 0.25);
  }
  bus.run_until(bus.now() + 8.0);
  bus.set_fault_plan(rms::FaultPlan{});
  bus.run_until(bus.now() + 5.0);
  grp.stop();
  bus.run_until_idle();

  RunResult res;
  res.requests = requests;
  res.delivered = bus.delivered();
  res.converged = grp.converged();
  double lat_sum = 0.0;
  double first_grant_after = std::numeric_limits<double>::infinity();
  for (const auto& out : client.outcomes()) {
    if (!out.reply.granted) continue;
    ++res.granted;
    lat_sum += out.latency();
    if (out.resolved_at >= crash_at) first_grant_after = std::min(first_grant_after, out.resolved_at);
  }
  res.mean_latency = res.granted ? lat_sum / static_cast<double>(res.granted) : 0.0;
  res.grant_gap = crash_leader ? first_grant_after - crash_at : 0.0;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_rms.json";

  // --- failover unavailability, swept over raft seeds --------------------
  const std::vector<std::uint64_t> seeds = {1, 2, 3, 5, 8};
  std::vector<double> gaps;
  bool all_converged = true;
  for (const std::uint64_t s : seeds) {
    const RunResult r = run_scenario(3, s, /*crash_leader=*/true, 80);
    gaps.push_back(r.grant_gap);
    all_converged = all_converged && r.converged;
    std::printf("seed %llu: unavailability %.3f vt-s, %llu/%llu granted, converged=%d\n",
                static_cast<unsigned long long>(s), r.grant_gap,
                static_cast<unsigned long long>(r.granted),
                static_cast<unsigned long long>(r.requests), r.converged ? 1 : 0);
  }
  double gap_min = gaps[0], gap_max = gaps[0], gap_sum = 0.0;
  for (const double g : gaps) {
    gap_min = std::min(gap_min, g);
    gap_max = std::max(gap_max, g);
    gap_sum += g;
  }
  const double gap_mean = gap_sum / static_cast<double>(gaps.size());
  const double bound = 4.0 * kElectionMax;
  std::printf("unavailability min/mean/max %.3f/%.3f/%.3f vt-s (bound %.1f)\n", gap_min,
              gap_mean, gap_max, bound);

  // --- replication overhead: fault-free, 1 vs 3 replicas -----------------
  const RunResult single = run_scenario(1, 1, /*crash_leader=*/false, 200);
  const RunResult triple = run_scenario(3, 1, /*crash_leader=*/false, 200);
  const double msgs_single = static_cast<double>(single.delivered) / 200.0;
  const double msgs_triple = static_cast<double>(triple.delivered) / 200.0;
  std::printf("overhead: %.1f -> %.1f msgs/request (%.2fx), latency %.4f -> %.4f vt-s\n",
              msgs_single, msgs_triple, msgs_triple / msgs_single, single.mean_latency,
              triple.mean_latency);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "chaos_failover: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"rms_chaos_failover\",\n");
  std::fprintf(f,
               "  \"scenario\": {\"replicas\": 3, \"election_timeout_max_s\": %.2f, "
               "\"heartbeat_s\": 0.10, \"crash_window_s\": 10.0, \"requests\": 80},\n",
               kElectionMax);
  std::fprintf(f, "  \"failover_unavailability_vt_seconds\": {\n");
  std::fprintf(f, "    \"seeds\": [");
  for (std::size_t i = 0; i < seeds.size(); ++i)
    std::fprintf(f, "%llu%s", static_cast<unsigned long long>(seeds[i]),
                 i + 1 < seeds.size() ? ", " : "");
  std::fprintf(f, "],\n    \"per_seed\": [");
  for (std::size_t i = 0; i < gaps.size(); ++i)
    std::fprintf(f, "%.3f%s", gaps[i], i + 1 < gaps.size() ? ", " : "");
  std::fprintf(f, "],\n");
  std::fprintf(f, "    \"min\": %.3f, \"mean\": %.3f, \"max\": %.3f,\n", gap_min, gap_mean,
               gap_max);
  std::fprintf(f, "    \"bound\": %.1f, \"within_bound\": %s, \"all_converged\": %s\n",
               bound, gap_max <= bound ? "true" : "false", all_converged ? "true" : "false");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"replication_overhead\": {\n");
  std::fprintf(f,
               "    \"msgs_per_request_1_replica\": %.2f,\n"
               "    \"msgs_per_request_3_replicas\": %.2f,\n"
               "    \"message_amplification\": %.2f,\n",
               msgs_single, msgs_triple, msgs_triple / msgs_single);
  std::fprintf(f,
               "    \"mean_grant_latency_vt_s_1_replica\": %.4f,\n"
               "    \"mean_grant_latency_vt_s_3_replicas\": %.4f\n  }\n}\n",
               single.mean_latency, triple.mean_latency);
  std::fclose(f);
  std::printf("chaos_failover: wrote %s\n", out_path.c_str());
  return gap_max <= bound && all_converged ? 0 : 1;
}
