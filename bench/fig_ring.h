// fig_ring.h -- shared driver for Figures 9, 10 and 11: loop agreement
// structures (each ISP shares 80% of its resources with the next one in the
// ring, ring skip = how many time zones away that neighbor is), swept over
// the transitivity level enforced by the scheduler.
#pragma once

#include <cstdio>
#include <optional>
#include <string>

#include "agree/topology.h"
#include "fig_common.h"

namespace agora::figbench {

inline void run_ring_figure(const std::string& figure, std::size_t skip,
                            const std::string& paper_level1_expectation,
                            const FigOptions& opts = {}) {
  banner(figure,
         "Loop agreement structure: ISP i shares 80% with ISP (i+" +
             std::to_string(skip) + ") mod 10; proxies one hour apart (gap 3600 s).\n"
             "Paper expectation: level-1 worst-case wait " +
             paper_level1_expectation + "; ~2 s once level >= 3.");

  const auto traces = make_traces(kHour, kProxies, opts.seed);
  const std::vector<std::size_t> levels{1, 2, 3, 5, 9};

  Table summary({"level", "mean_wait_s", "peak_wait_s", "worst_proxy_peak_s",
                 "redirected_pct"});
  std::vector<std::vector<double>> hourly;
  std::optional<proxysim::SimMetrics> last;
  for (std::size_t level : levels) {
    proxysim::SimConfig cfg = base_config();
    cfg.scheduler = proxysim::SchedulerKind::Lp;
    cfg.agreements = agree::ring(kProxies, 0.80, skip);
    cfg.alloc_opts.transitive.max_level = level;
    last = run_sim(cfg, traces);
    const proxysim::SimMetrics& m = *last;

    double worst_proxy_peak = 0.0;
    for (const auto& s : m.wait_by_slot_per_proxy)
      worst_proxy_peak = std::max(worst_proxy_peak, s.peak_slot_mean());
    hourly.push_back(hourly_means(m.wait_by_slot_per_proxy[0]));
    summary.add_row({static_cast<double>(level), m.mean_wait(), m.peak_slot_wait(),
                     worst_proxy_peak, 100.0 * m.redirected_fraction()});
    std::printf("level %zu: fleet mean %.3f s, worst proxy peak %.2f s\n", level,
                m.mean_wait(), worst_proxy_peak);
  }
  emit("fig_ring_skip" + std::to_string(skip), summary);

  Table t({"hour", "level1", "level2", "level3", "level5", "level9"});
  for (std::size_t h = 0; h < 24; ++h)
    t.add_row({static_cast<double>(h), hourly[0][h], hourly[1][h], hourly[2][h], hourly[3][h],
               hourly[4][h]});
  emit("fig_ring_skip" + std::to_string(skip) + "_hourly", t);
  if (last) write_fig_metrics(opts, *last);
}

}  // namespace agora::figbench
