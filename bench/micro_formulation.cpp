// Ablation: compact (n+1 variables) vs full-paper (n^2 + n + 1 variables)
// allocation formulations -- identical optima (tested), very different cost.
#include <benchmark/benchmark.h>

#include "agree/topology.h"
#include "alloc/allocator.h"
#include "alloc/hierarchical.h"
#include "util/rng.h"

namespace {

using namespace agora;

agree::AgreementSystem make_system(std::size_t n) {
  Pcg32 rng(n * 13 + 5);
  agree::AgreementSystem sys(n);
  for (std::size_t i = 0; i < n; ++i) sys.capacity[i] = rng.uniform(5.0, 20.0);
  sys.relative = agree::complete_graph(n, 0.8 / static_cast<double>(n));
  return sys;
}

template <alloc::Formulation F>
void BM_Allocate(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  alloc::AllocatorOptions opts;
  opts.formulation = F;
  // Prune negligible transitive paths: the exact DFS is factorial on the
  // complete fixture graph and would dominate (and at n = 20, hang) setup.
  opts.transitive.prune_below = 1e-8;
  const alloc::Allocator allocator(make_system(n), opts);
  const double x = allocator.available_to(0) * 0.5;
  for (auto _ : state) {
    const alloc::AllocationPlan plan = allocator.allocate(0, x);
    benchmark::DoNotOptimize(plan.theta);
  }
}

void BM_Compact(benchmark::State& state) { BM_Allocate<alloc::Formulation::Compact>(state); }
void BM_FullPaper(benchmark::State& state) {
  BM_Allocate<alloc::Formulation::FullPaper>(state);
}
BENCHMARK(BM_Compact)->Arg(5)->Arg(10)->Arg(20);
BENCHMARK(BM_FullPaper)->Arg(5)->Arg(10)->Arg(20);

void BM_Hierarchical(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<std::size_t> groups(n);
  for (std::size_t i = 0; i < n; ++i) groups[i] = i / 5;  // groups of 5
  alloc::AllocatorOptions opts;
  opts.transitive.prune_below = 1e-8;
  alloc::HierarchicalAllocator h(make_system(n), groups, opts);
  const double x = 4.0;
  for (auto _ : state) {
    const alloc::AllocationPlan plan = h.allocate(0, x);
    benchmark::DoNotOptimize(plan.theta);
  }
}
BENCHMARK(BM_Hierarchical)->Arg(10)->Arg(20);

}  // namespace

BENCHMARK_MAIN();
