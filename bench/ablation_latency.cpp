// Ablation: how much the centralized scheduler's round-trip latency costs.
//
// The paper's architecture is a centralized GRM consulted by proxy
// front-ends; in a real deployment every decision pays a network + compute
// round trip and is computed against availability that is stale by the
// time it lands. This sweep quantifies the tolerance of the Figure 6
// scenario (complete graph 10%, gap 3600 s) to that latency.
#include <cstdio>

#include "agree/topology.h"
#include "fig_common.h"

using namespace agora;
using namespace agora::figbench;

int main() {
  banner("Ablation: GRM decision latency",
         "Waiting time vs scheduler round-trip latency on the Figure 6\n"
         "scenario. A robust architecture should degrade gracefully.");

  const auto traces = make_traces(kHour);
  Table t({"latency_s", "mean_wait_s", "peak_wait_s", "redirected_pct"});
  for (double latency : {0.0, 1.0, 5.0, 30.0, 120.0, 600.0}) {
    proxysim::SimConfig cfg = base_config();
    cfg.scheduler = proxysim::SchedulerKind::Lp;
    cfg.agreements = agree::complete_graph(kProxies, 0.10);
    cfg.decision_latency = latency;
    const proxysim::SimMetrics m = run_sim(cfg, traces);
    t.add_row({latency, m.mean_wait(), m.peak_slot_wait(), 100.0 * m.redirected_fraction()});
    std::printf("latency %5.0f s: mean %.3f s, peak %.2f s\n", latency, m.mean_wait(),
                m.peak_slot_wait());
  }
  emit("ablation_latency", t);
  std::printf("\n-> decisions a few seconds stale cost almost nothing; even\n"
              "   minutes-stale decisions beat no sharing by two orders of magnitude.\n");
  return 0;
}
