// Figure 5: requests per 10-minute slot and average waiting time per request
// WITHOUT resource sharing. Paper: load peaks around midnight, is lightest
// in the early morning, and peak waits reach ~250 seconds.
#include <cstdio>

#include "fig_common.h"

using namespace agora;
using namespace agora::figbench;

int main(int argc, char** argv) {
  const FigOptions opts = parse_fig_options(argc, argv, "Figure 5");
  banner("Figure 5",
         "Requests per 10-minute slot and average waiting time, no sharing.\n"
         "Paper expectation: peak wait ~250 s around midnight, near-zero waits\n"
         "in the early morning trough.");

  proxysim::SimConfig cfg = base_config();
  const auto traces = make_traces(0.0, kProxies, opts.seed);
  const proxysim::SimMetrics m = run_sim(cfg, traces);

  // Per-proxy view (the paper plots one proxy); with gap 0 all proxies are
  // statistically identical, so report proxy 0 alongside the fleet average.
  Table t({"hour", "requests_per_10min", "avg_wait_s_fleet", "avg_wait_s_proxy0"});
  const auto fleet = hourly_means(m.wait_by_slot);
  const auto p0 = hourly_means(m.wait_by_slot_per_proxy[0]);
  const std::size_t slots_per_hour = 6;
  for (std::size_t h = 0; h < 24; ++h) {
    double reqs = 0.0;
    for (std::size_t s = 0; s < slots_per_hour; ++s)
      reqs += static_cast<double>(m.requests_by_slot[h * slots_per_hour + s]);
    reqs /= static_cast<double>(slots_per_hour * kProxies);
    t.add_row({static_cast<double>(h), reqs, fleet[h], p0[h]});
  }
  emit("fig05_no_sharing", t);

  std::printf(
      "\nSummary: peak slot wait %.1f s (paper: ~250 s), overall mean %.2f s,\n"
      "total requests %llu across %zu proxies.\n",
      m.peak_slot_wait(), m.mean_wait(),
      static_cast<unsigned long long>(m.total_requests), kProxies);
  write_fig_metrics(opts, m);
  return 0;
}
