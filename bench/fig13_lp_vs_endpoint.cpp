// Figure 13: centralized LP scheduling vs end-point (proportional)
// enforcement. Agreement structure: each ISP shares 20% with neighbors one
// time zone away, 10% at two, 5% at three, 3% further. Paper: the LP scheme
// cuts the average waiting time by more than 50% at traffic peaks, because
// the proportional scheme redirects to nearby ISPs regardless of how busy
// they are.
#include <cstdio>
#include <optional>

#include "agree/topology.h"
#include "fig_common.h"

using namespace agora;
using namespace agora::figbench;

int main(int argc, char** argv) {
  const FigOptions opts = parse_fig_options(argc, argv, "Figure 13");
  banner("Figure 13",
         "LP scheduler vs proportional endpoint enforcement under the\n"
         "distance-decay agreement structure (20/10/5/3% by time-zone\n"
         "distance). Paper expectation: LP halves the peak-time wait.");

  const auto traces = make_traces(kHour, kProxies, opts.seed);
  const Matrix agreements = agree::distance_decay(kProxies, {0.20, 0.10, 0.05, 0.03});

  std::vector<std::vector<double>> hourly;
  std::vector<double> peaks, means;
  std::optional<proxysim::SimMetrics> last;
  for (proxysim::SchedulerKind kind :
       {proxysim::SchedulerKind::Lp, proxysim::SchedulerKind::Endpoint}) {
    proxysim::SimConfig cfg = base_config();
    cfg.scheduler = kind;
    cfg.agreements = agreements;
    last = run_sim(cfg, traces);
    const proxysim::SimMetrics& m = *last;
    hourly.push_back(hourly_means(m.wait_by_slot));
    peaks.push_back(m.peak_slot_wait());
    means.push_back(m.mean_wait());
    std::printf("%s: mean %.3f s, peak-slot %.2f s, redirected %.2f%%\n",
                kind == proxysim::SchedulerKind::Lp ? "LP       " : "endpoint ",
                m.mean_wait(), m.peak_slot_wait(), 100.0 * m.redirected_fraction());
  }

  Table t({"hour", "lp_wait_s", "endpoint_wait_s"});
  for (std::size_t h = 0; h < 24; ++h)
    t.add_row({static_cast<double>(h), hourly[0][h], hourly[1][h]});
  emit("fig13_lp_vs_endpoint", t);

  std::printf(
      "\nSummary: peak-slot wait LP %.2f s vs endpoint %.2f s (%.0f%% reduction;\n"
      "paper: >50%% at peak).\n",
      peaks[0], peaks[1], 100.0 * (1.0 - peaks[0] / peaks[1]));
  if (last) write_fig_metrics(opts, *last);
  return 0;
}
