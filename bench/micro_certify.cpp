// micro_certify -- the acceptance measurement for certified enforcement:
// the same Figure-13-like warm consult sequence as micro_warmstart, run with
// solution certification off (the historical trust-the-solver behavior) vs
// on (every LP answer re-verified against the original problem, staged
// fallback chain armed). The PR's acceptance bound is that certification
// plus residual-triggered refactorization costs <= 10% on this sequence.
//
// main() runs an A/B timing pass (best-of-R over the full sequence, so
// allocator construction and cache warmup are excluded) and prints one line
//
//   CERTIFY overhead_pct=... certified_solves=... fallbacks=... uncertified_grants=...
//
// consumed by tools/bench.sh into BENCH_lp.json. uncertified_grants must be
// zero by construction: a satisfied plan without a certificate is the
// failure mode this PR exists to eliminate.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <span>
#include <vector>

#include "agree/topology.h"
#include "alloc/allocator.h"
#include "fig_common.h"
#include "util/rng.h"

namespace {

using namespace agora;

constexpr std::size_t kProxies = 10;
constexpr std::size_t kConsults = 256;
constexpr int kReps = 30;

struct Consult {
  std::vector<double> spare;
  std::size_t origin = 0;
  double overflow = 0.0;
};

struct Scenario {
  agree::AgreementSystem sys;
  std::vector<Consult> consults;
};

/// Identical scenario generator to micro_warmstart (same seed, same shape)
/// so the two benchmarks measure the same consult stream.
Scenario make_scenario() {
  Scenario sc;
  sc.sys = agree::AgreementSystem(kProxies);
  sc.sys.relative = agree::distance_decay(kProxies, {0.20, 0.10, 0.05, 0.03});
  Pcg32 rng(20260806);
  std::vector<double> base(kProxies);
  for (double& b : base) b = rng.uniform(8.0, 16.0);
  sc.sys.capacity = base;
  sc.consults.resize(kConsults);
  for (Consult& c : sc.consults) {
    c.spare.resize(kProxies);
    for (std::size_t i = 0; i < kProxies; ++i) c.spare[i] = base[i] * rng.uniform(0.2, 1.0);
    c.origin = rng.uniform_u32(kProxies);
    c.overflow = rng.uniform(0.5, 6.0);
  }
  return sc;
}

alloc::AllocatorOptions engine_opts(bool certify) {
  alloc::AllocatorOptions opts;
  opts.solve.backend = lp::Backend::Revised;
  opts.reuse_context = true;  // the warm path is where overhead would hide
  opts.certify = certify;
  return opts;
}

alloc::AllocationPlan consult(const alloc::Allocator& al, const Consult& c) {
  const double reachable = al.available_to(c.origin);
  const double x = std::min(c.overflow, reachable * (1.0 - 1e-9));
  return al.allocate(c.origin, std::max(0.0, x));
}

struct SequenceOutcome {
  double best_seconds = 0.0;
  std::uint64_t certified = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t uncertified_grants = 0;
  std::uint64_t satisfied = 0;
};

/// One untimed pass over the full consult sequence against a persistent
/// allocator. `check`, when given, records the certification outcome of
/// every plan.
void outcome_pass(alloc::Allocator& al, const Scenario& sc, bool certify,
                  SequenceOutcome* check) {
  for (const Consult& c : sc.consults) {
    al.set_capacities(std::span<const double>(c.spare));
    const alloc::AllocationPlan plan = consult(al, c);
    benchmark::DoNotOptimize(plan.theta);
    if (check) {
      if (plan.certified) ++check->certified;
      check->fallbacks += plan.solver_fallbacks;
      if (plan.satisfied()) {
        ++check->satisfied;
        if (certify && !plan.certified) ++check->uncertified_grants;
      }
    }
  }
}

/// Time `kChunk` consecutive consults starting at `begin`.
double timed_chunk(alloc::Allocator& al, const Scenario& sc, std::size_t begin,
                   std::size_t count) {
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = begin; i < begin + count; ++i) {
    const Consult& c = sc.consults[i];
    al.set_capacities(std::span<const double>(c.spare));
    const alloc::AllocationPlan plan = consult(al, c);
    benchmark::DoNotOptimize(plan.theta);
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// A/B-time the sequence with certification off vs on. This host's clock
/// frequency wanders by up to ~20% on a sub-second scale, so any layout
/// that runs one arm's work long before the other's (all off-passes then
/// all on-passes, or even whole-sequence passes back to back) measures the
/// drift, not the certification -- to the point of sometimes reporting
/// negative overhead. Instead each rep walks the consult sequence in small
/// chunks, timing the off arm and the on arm on the *same* chunk back to
/// back, so both arms see the same frequency environment to within ~100 us.
/// Best-of-kReps per arm; the first (untimed) passes pay model build and
/// warmup for both.
void run_ab(const Scenario& sc, SequenceOutcome& off, SequenceOutcome& on) {
  constexpr std::size_t kChunk = 32;
  constexpr std::size_t kChunks = kConsults / kChunk;
  static_assert(kConsults % kChunk == 0);
  alloc::Allocator al_off(sc.sys, engine_opts(false));
  alloc::Allocator al_on(sc.sys, engine_opts(true));
  outcome_pass(al_off, sc, false, nullptr);
  outcome_pass(al_on, sc, true, &on);
  // Per-chunk minima across reps: drift is slow relative to one off/on
  // chunk pair, so the pair is an apples-to-apples sample, and taking the
  // minimum per chunk *position* (rather than per whole rep) discards
  // transient slowdowns independently for every position. Arm order within
  // a pair alternates per rep to cancel any warmer-second-arm bias.
  double best_off[kChunks], best_on[kChunks];
  std::fill(best_off, best_off + kChunks, std::numeric_limits<double>::infinity());
  std::fill(best_on, best_on + kChunks, std::numeric_limits<double>::infinity());
  for (int rep = 0; rep < kReps; ++rep) {
    for (std::size_t ci = 0; ci < kChunks; ++ci) {
      const std::size_t begin = ci * kChunk;
      double t_off, t_on;
      if (rep % 2 == 0) {
        t_off = timed_chunk(al_off, sc, begin, kChunk);
        t_on = timed_chunk(al_on, sc, begin, kChunk);
      } else {
        t_on = timed_chunk(al_on, sc, begin, kChunk);
        t_off = timed_chunk(al_off, sc, begin, kChunk);
      }
      best_off[ci] = std::min(best_off[ci], t_off);
      best_on[ci] = std::min(best_on[ci], t_on);
    }
  }
  off.best_seconds = 0.0;
  on.best_seconds = 0.0;
  for (std::size_t ci = 0; ci < kChunks; ++ci) {
    off.best_seconds += best_off[ci];
    on.best_seconds += best_on[ci];
  }
}

void bench_sequence(benchmark::State& state, bool certify) {
  const Scenario sc = make_scenario();
  alloc::Allocator al(sc.sys, engine_opts(certify));
  std::size_t step = 0;
  for (auto _ : state) {
    const Consult& c = sc.consults[step++ % sc.consults.size()];
    al.set_capacities(std::span<const double>(c.spare));
    const alloc::AllocationPlan plan = consult(al, c);
    benchmark::DoNotOptimize(plan.theta);
  }
}

void BM_UncertifiedConsult(benchmark::State& state) { bench_sequence(state, false); }
BENCHMARK(BM_UncertifiedConsult);

void BM_CertifiedConsult(benchmark::State& state) { bench_sequence(state, true); }
BENCHMARK(BM_CertifiedConsult);

bool verify_and_summarize() {
  const Scenario sc = make_scenario();
  SequenceOutcome off, on;
  run_ab(sc, off, on);
  const double overhead_pct =
      off.best_seconds > 0.0 ? (on.best_seconds / off.best_seconds - 1.0) * 100.0 : 0.0;
  std::printf(
      "CERTIFY overhead_pct=%.2f certified_solves=%llu fallbacks=%llu uncertified_grants=%llu\n",
      overhead_pct, static_cast<unsigned long long>(on.certified),
      static_cast<unsigned long long>(on.fallbacks),
      static_cast<unsigned long long>(on.uncertified_grants));
  if (on.uncertified_grants != 0) {
    std::fprintf(stderr, "FATAL: %llu satisfied plans carried no certificate\n",
                 static_cast<unsigned long long>(on.uncertified_grants));
    return false;
  }
  if (on.satisfied > 0 && on.certified == 0) {
    std::fprintf(stderr, "FATAL: certification produced zero certificates\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (!verify_and_summarize()) return 1;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
