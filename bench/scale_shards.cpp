// scale_shards -- shard-count sweep for the EnforcementEngine (DESIGN.md
// §11.6): a 64-participant economy built as 8 complete-graph sharing islands
// of 8, measured at 1/2/4/8 worker shards.
//
// Connectivity partitioning turns each island into its own shard, so an
// admission consult solves a 9-variable LP instead of the 65-variable
// full-system LP the direct path (threads=1: one shard over everything)
// solves. Simplex cost grows superlinearly in the variable count, which is
// where the speedup comes from -- the sweep's throughput ratio is real even
// on a single-core host, because the win is smaller LPs, not parallelism.
//
// Two phases per shard count:
//   * throughput -- pipelined waves of submit() (one per participant),
//     futures drained per wave: consults/sec over >= 0.5 s of waves,
//   * latency    -- serial blocking consult() round trips: p50/p99 micros,
//     with a recorded p99 regression bound (kP99BoundUs) and a single retry
//     when an environmental outlier trips it.
//
// A second sweep (DESIGN.md §15) runs the same islands joined into ONE
// component by weak ring bridges, federated off/on x 1/2/4/8 threads.
// Without federation a single component at threads>1 falls back to full
// replicas (every shard solves the 65-variable LP); with federation the
// bridges are cut, each shard solves its 9-variable local+bank LP, and the
// sweep records the measured optimality gap the engine reports per epoch.
//
// Usage: scale_shards [out.json]   (default BENCH_engine.json)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "util/rng.h"

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kIslands = 8;
constexpr std::size_t kPerIsland = 8;
constexpr double kShare = 0.2;

agora::agree::AgreementSystem island_economy() {
  const std::size_t n = kIslands * kPerIsland;
  agora::agree::AgreementSystem sys(n);
  for (std::size_t i = 0; i < n; ++i)
    sys.capacity[i] = 10.0 + static_cast<double>(i % kPerIsland);
  for (std::size_t g = 0; g < kIslands; ++g)
    for (std::size_t i = g * kPerIsland; i < (g + 1) * kPerIsland; ++i)
      for (std::size_t j = g * kPerIsland; j < (g + 1) * kPerIsland; ++j)
        if (i != j) sys.relative(i, j) = kShare;
  return sys;
}

/// Ring-bridge share joining the islands into one component: weak enough
/// that the federated cut severs exactly the bridges, strong enough that
/// border credits are worth granting.
constexpr double kBridgeShare = 0.05;

agora::agree::AgreementSystem bridged_economy() {
  agora::agree::AgreementSystem sys = island_economy();
  for (std::size_t g = 0; g < kIslands; ++g) {
    const std::size_t a = g * kPerIsland + (kPerIsland - 1);
    const std::size_t b = ((g + 1) % kIslands) * kPerIsland;
    sys.relative(a, b) = kBridgeShare;
    sys.relative(b, a) = kBridgeShare;
  }
  return sys;
}

struct SweepPoint {
  std::size_t threads = 0;
  std::size_t shards = 0;
  std::uint64_t consults = 0;
  double consults_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  bool latency_retried = false;  ///< first latency pass tripped the p99 bound
};

/// Regression bound on the serial consult p99. Historic runs sit well under
/// it at every shard count (p99 < 750 us even at threads=1, where the whole
/// 65-variable LP runs per consult); a single scheduler hiccup on a busy
/// host can blow one probe past it, which is noise, not a regression. The
/// latency phase therefore retries ONCE when the bound trips, and only a
/// second failure is reported (p99_within_bound=false in the JSON).
constexpr double kP99BoundUs = 1500.0;

struct LatencyPhase {
  double p50_us = 0.0;
  double p99_us = 0.0;
};

LatencyPhase measure_latency(agora::engine::EnforcementEngine& eng,
                             const std::vector<double>& amounts) {
  const std::size_t n = amounts.size();
  constexpr std::size_t kProbes = 512;
  std::vector<double> lat_us(kProbes);
  for (std::size_t k = 0; k < kProbes; ++k) {
    const std::size_t i = k % n;
    const auto a = Clock::now();
    (void)eng.consult(i, amounts[i]);
    lat_us[k] = std::chrono::duration<double, std::micro>(Clock::now() - a).count();
  }
  std::sort(lat_us.begin(), lat_us.end());
  LatencyPhase out;
  out.p50_us = lat_us[kProbes / 2];
  out.p99_us = lat_us[(kProbes * 99) / 100];
  return out;
}

SweepPoint measure(const agora::agree::AgreementSystem& sys, std::size_t threads) {
  agora::engine::EngineOptions opts;
  opts.threads = threads;
  opts.sink = agora::obs::Sink::none();
  opts.alloc.sink = agora::obs::Sink::none();
  agora::engine::EnforcementEngine eng(sys, opts);

  const std::size_t n = sys.size();
  agora::Pcg32 rng(7);
  std::vector<double> amounts(n);
  for (std::size_t i = 0; i < n; ++i) amounts[i] = rng.uniform(0.5, 4.0);

  // Warm-up: one consult per participant primes every shard's warm-start
  // workspace and model cache.
  for (std::size_t i = 0; i < n; ++i) (void)eng.consult(i, amounts[i]);

  SweepPoint pt;
  pt.threads = threads;
  pt.shards = eng.num_shards();

  // Throughput: pipelined waves, one submit per participant, drained per
  // wave, until at least half a second has been measured.
  std::vector<std::future<agora::engine::EngineResult>> wave;
  wave.reserve(n);
  const auto t0 = Clock::now();
  double elapsed = 0.0;
  while (elapsed < 0.5) {
    wave.clear();
    for (std::size_t i = 0; i < n; ++i) wave.push_back(eng.submit(i, amounts[i]));
    for (auto& f : wave) (void)f.get();
    pt.consults += n;
    elapsed = std::chrono::duration<double>(Clock::now() - t0).count();
  }
  pt.consults_per_sec = static_cast<double>(pt.consults) / elapsed;

  // Latency: serial blocking consults, round-robin over participants. A
  // p99 past the regression bound gets one retry -- see kP99BoundUs.
  LatencyPhase lat = measure_latency(eng, amounts);
  if (lat.p99_us > kP99BoundUs) {
    pt.latency_retried = true;
    lat = measure_latency(eng, amounts);
  }
  pt.p50_us = lat.p50_us;
  pt.p99_us = lat.p99_us;
  return pt;
}

// ------------------------------------------------- single-component sweep ---

struct FedPoint {
  bool fed_requested = false;
  bool federated = false;
  bool replicated = false;
  std::size_t threads = 0;
  std::size_t shards = 0;
  std::uint64_t consults = 0;
  double consults_per_sec = 0.0;
  double certified_pct = 0.0;
  double gap_last_rel = 0.0;
  double gap_max_rel = 0.0;
  std::uint64_t gap_probes = 0;
  std::uint64_t credits = 0;
  std::uint64_t settlements = 0;
};

FedPoint measure_single_component(const agora::agree::AgreementSystem& sys,
                                  std::size_t threads, bool fed_on) {
  agora::engine::EngineOptions opts;
  opts.threads = threads;
  opts.sink = agora::obs::Sink::none();
  opts.alloc.sink = agora::obs::Sink::none();
  // One connected 64-node component: bound the transitive DFS the same way
  // the federation test suites do.
  opts.alloc.transitive.max_level = 3;
  opts.federation.enabled = fed_on;
  opts.federation.gap_probes = 4;
  agora::engine::EnforcementEngine eng(sys, opts);

  const std::size_t n = sys.size();
  agora::Pcg32 rng(7);
  std::vector<double> amounts(n);
  for (std::size_t i = 0; i < n; ++i) amounts[i] = rng.uniform(0.5, 4.0);
  for (std::size_t i = 0; i < n; ++i) (void)eng.consult(i, amounts[i]);

  FedPoint pt;
  pt.fed_requested = fed_on;
  pt.federated = eng.federated();
  pt.replicated = eng.replicated();
  pt.threads = threads;
  pt.shards = eng.num_shards();

  std::uint64_t granted = 0, certified = 0;
  std::vector<std::future<agora::engine::EngineResult>> wave;
  wave.reserve(n);
  const auto t0 = Clock::now();
  double elapsed = 0.0;
  while (elapsed < 0.5) {
    wave.clear();
    for (std::size_t i = 0; i < n; ++i) wave.push_back(eng.submit(i, amounts[i]));
    for (auto& f : wave) {
      const agora::engine::EngineResult res = f.get();
      if (res.plan.satisfied()) {
        ++granted;
        if (res.plan.certified) ++certified;
      }
    }
    pt.consults += n;
    elapsed = std::chrono::duration<double>(Clock::now() - t0).count();
  }
  pt.consults_per_sec = static_cast<double>(pt.consults) / elapsed;
  pt.certified_pct =
      granted == 0 ? 0.0
                   : 100.0 * static_cast<double>(certified) / static_cast<double>(granted);

  // An epoch boundary at unchanged capacities: drains the shard gap rings
  // and (federated) probes the exact global LP for the optimality gap.
  eng.settle();
  const agora::engine::EngineStats st = eng.stats();
  pt.gap_last_rel = st.federation.last_gap_rel;
  pt.gap_max_rel = st.federation.max_gap_rel;
  pt.gap_probes = st.federation.gap_probes;
  pt.credits = st.federation.credits;
  pt.settlements = st.federation.settlements;
  return pt;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_engine.json";
  const agora::agree::AgreementSystem sys = island_economy();

  std::vector<SweepPoint> sweep;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    sweep.push_back(measure(sys, threads));
    const SweepPoint& pt = sweep.back();
    std::printf(
        "threads=%zu shards=%zu  %10.0f consults/s  p50 %7.1f us  p99 %7.1f us%s%s\n",
        pt.threads, pt.shards, pt.consults_per_sec, pt.p50_us, pt.p99_us,
        pt.latency_retried ? "  [retried]" : "",
        pt.p99_us > kP99BoundUs ? "  ** p99 OVER BOUND **" : "");
  }
  const double speedup = sweep.back().consults_per_sec / sweep.front().consults_per_sec;
  std::printf("speedup 8 vs 1 threads: %.2fx\n", speedup);

  // Single-component sweep: federated off (full-replica fallback) vs on
  // (edge-scored cut + border credits), threads 1/2/4/8.
  const agora::agree::AgreementSystem one = bridged_economy();
  std::vector<FedPoint> fed_sweep;
  for (const bool fed_on : {false, true}) {
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      fed_sweep.push_back(measure_single_component(one, threads, fed_on));
      const FedPoint& pt = fed_sweep.back();
      std::printf(
          "one-component fed=%s threads=%zu shards=%zu%s  %10.0f consults/s  "
          "certified %.1f%%  gap last/max %.4f/%.4f\n",
          pt.fed_requested ? "on " : "off", pt.threads, pt.shards,
          pt.replicated ? " (replicated)" : pt.federated ? " (federated)" : "",
          pt.consults_per_sec, pt.certified_pct, pt.gap_last_rel, pt.gap_max_rel);
    }
  }
  // fed_sweep rows: [0..3] = off x threads{1,2,4,8}, [4..7] = on x same.
  const double speedup_fed = fed_sweep[7].consults_per_sec / fed_sweep[4].consults_per_sec;
  const double speedup_rep = fed_sweep[3].consults_per_sec / fed_sweep[0].consults_per_sec;
  std::printf("one-component speedup 8 vs 1 shards: federated %.2fx, replicated %.2fx\n",
              speedup_fed, speedup_rep);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "scale_shards: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"engine_scale_shards\",\n");
  std::fprintf(f,
               "  \"economy\": {\"participants\": %zu, \"islands\": %zu, "
               "\"per_island\": %zu, \"share\": %.2f},\n",
               kIslands * kPerIsland, kIslands, kPerIsland, kShare);
  std::fprintf(f, "  \"p99_bound_us\": %.1f,\n", kP99BoundUs);
  std::fprintf(f, "  \"sweep\": [\n");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& pt = sweep[i];
    std::fprintf(f,
                 "    {\"threads\": %zu, \"shards\": %zu, \"consults\": %llu, "
                 "\"consults_per_sec\": %.1f, \"p50_us\": %.2f, \"p99_us\": %.2f, "
                 "\"p99_within_bound\": %s, \"latency_retried\": %s}%s\n",
                 pt.threads, pt.shards, static_cast<unsigned long long>(pt.consults),
                 pt.consults_per_sec, pt.p50_us, pt.p99_us,
                 pt.p99_us <= kP99BoundUs ? "true" : "false",
                 pt.latency_retried ? "true" : "false",
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"single_component\": {\n");
  std::fprintf(f, "    \"bridge_share\": %.2f,\n", kBridgeShare);
  std::fprintf(f, "    \"sweep\": [\n");
  for (std::size_t i = 0; i < fed_sweep.size(); ++i) {
    const FedPoint& pt = fed_sweep[i];
    std::fprintf(f,
                 "      {\"federated_requested\": %s, \"federated\": %s, "
                 "\"replicated\": %s, \"threads\": %zu, \"shards\": %zu, "
                 "\"consults\": %llu, \"consults_per_sec\": %.1f, "
                 "\"certified_grant_pct\": %.1f, \"gap_last_rel\": %.6f, "
                 "\"gap_max_rel\": %.6f, \"gap_probes\": %llu, \"credits\": %llu, "
                 "\"settlements\": %llu}%s\n",
                 pt.fed_requested ? "true" : "false", pt.federated ? "true" : "false",
                 pt.replicated ? "true" : "false", pt.threads, pt.shards,
                 static_cast<unsigned long long>(pt.consults), pt.consults_per_sec,
                 pt.certified_pct, pt.gap_last_rel, pt.gap_max_rel,
                 static_cast<unsigned long long>(pt.gap_probes),
                 static_cast<unsigned long long>(pt.credits),
                 static_cast<unsigned long long>(pt.settlements),
                 i + 1 < fed_sweep.size() ? "," : "");
  }
  std::fprintf(f, "    ],\n");
  std::fprintf(f, "    \"speedup_fed_8_vs_1\": %.3f,\n", speedup_fed);
  std::fprintf(f, "    \"speedup_replicated_8_vs_1\": %.3f\n", speedup_rep);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"speedup_8_vs_1\": %.3f\n}\n", speedup);
  std::fclose(f);
  std::printf("scale_shards: wrote %s\n", out_path.c_str());
  return 0;
}
