#include "fig_common.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "agree/capacity.h"
#include "agree/topology.h"
#include "alloc/model_cache.h"
#include "obs/export.h"
#include "util/flags.h"
#include "util/rng.h"

namespace agora::figbench {

FigOptions parse_fig_options(int argc, char** argv, const std::string& figure) {
  Flags flags;
  flags.define("seed", std::to_string(kSeedBase),
               "base RNG seed for the workload traces (proxy p uses seed+p)");
  flags.define("metrics-out", "",
               "write an observability snapshot (registry metrics + trace events of the "
               "final run) to this file; .csv extension selects CSV, anything else JSON "
               "lines");
  try {
    flags.parse(argc, argv);
  } catch (const PreconditionError& err) {
    std::fprintf(stderr, "%s\n", err.what());
    std::exit(2);
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.help_text(figure + " reproduction harness").c_str());
    std::exit(0);
  }
  FigOptions opts;
  opts.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  opts.metrics_out = flags.get("metrics-out");
  return opts;
}

void write_fig_metrics(const FigOptions& opts, const proxysim::SimMetrics& last) {
  if (opts.metrics_out.empty()) return;
  obs::Sink snap = obs::Sink::global();
  snap.events = nullptr;  // only the run's own stream, not the global ring
  try {
    obs::write_snapshot(opts.metrics_out, snap, last.events);
    std::printf("\n[metrics snapshot: %s, %zu events, %llu overwritten]\n",
                opts.metrics_out.c_str(), last.events.size(),
                static_cast<unsigned long long>(last.events_overwritten));
  } catch (const IoError& err) {
    std::fprintf(stderr, "metrics snapshot failed: %s\n", err.what());
  }
}

agree::AgreementSystem complete_sharing_system(std::size_t n) {
  Pcg32 rng(n * 7 + 1);
  agree::AgreementSystem sys(n);
  for (std::size_t i = 0; i < n; ++i) sys.capacity[i] = rng.uniform(5.0, 20.0);
  sys.relative = agree::complete_graph(n, 0.8 / static_cast<double>(n));
  return sys;
}

alloc::AllocatorOptions bench_alloc_options() {
  alloc::AllocatorOptions opts;
  // Exact simple-path enumeration is factorial on complete graphs; prune
  // negligible path products so fixture setup stays tractable at n = 40.
  opts.transitive.prune_below = 1e-8;
  return opts;
}

lp::Problem compact_allocation_lp(std::size_t n) {
  const agree::AgreementSystem sys = complete_sharing_system(n);
  const agree::CapacityReport rep =
      agree::compute_capacities(sys, bench_alloc_options().transitive);
  alloc::AllocationModelCache cache;
  cache.build(sys, rep);
  cache.patch(rep, /*a=*/0, rep.capacity[0] * 0.5);
  return std::move(cache.problem());
}

agree::AgreementSystem banded_sharing_system(std::size_t n) {
  Pcg32 rng(n * 13 + 5);
  agree::AgreementSystem sys(n);
  for (std::size_t i = 0; i < n; ++i) sys.capacity[i] = rng.uniform(5.0, 20.0);
  // Neighbors at ring distance 1..3 get a decaying share; the trailing 0.0
  // applies to every farther distance, so the direct matrix is a band.
  sys.relative = agree::distance_decay(n, {0.25, 0.12, 0.06, 0.0});
  return sys;
}

alloc::AllocatorOptions sparse_bench_alloc_options() {
  alloc::AllocatorOptions opts;
  // Two transitive hops widen the band to ~12 neighbors but keep row
  // density independent of n; without the cap the closure over a ring
  // eventually densifies the entitlement matrix.
  opts.transitive.max_level = 2;
  opts.transitive.prune_below = 1e-8;
  return opts;
}

lp::Problem sparse_allocation_lp(std::size_t n) {
  const agree::AgreementSystem sys = banded_sharing_system(n);
  const agree::CapacityReport rep =
      agree::compute_capacities(sys, sparse_bench_alloc_options().transitive);
  alloc::AllocationModelCache cache;
  cache.build(sys, rep);
  cache.patch(rep, /*a=*/0, rep.capacity[0] * 0.5);
  return std::move(cache.problem());
}

trace::Generator make_generator() {
  trace::GeneratorConfig cfg;
  cfg.peak_rate = kPeakRate;
  return trace::Generator(cfg, trace::DiurnalProfile::berkeley_like());
}

std::vector<std::vector<trace::TraceRequest>> make_traces(double gap_seconds,
                                                          std::size_t proxies,
                                                          std::uint64_t seed_base) {
  const trace::Generator gen = make_generator();
  std::vector<std::vector<trace::TraceRequest>> traces;
  traces.reserve(proxies);
  for (std::size_t p = 0; p < proxies; ++p)
    traces.push_back(gen.generate(seed_base + p, gap_seconds * static_cast<double>(p)));
  return traces;
}

proxysim::SimConfig base_config(std::size_t proxies) {
  proxysim::SimConfig cfg;
  cfg.num_proxies = proxies;
  cfg.scheduler = proxysim::SchedulerKind::None;
  return cfg;
}

proxysim::SimMetrics run_sim(const proxysim::SimConfig& cfg,
                             const std::vector<std::vector<trace::TraceRequest>>& traces) {
  proxysim::Simulator sim(cfg);
  return sim.run(traces);
}

std::vector<double> hourly_means(const SlottedSeries& s) {
  std::vector<double> hours(24, 0.0);
  std::vector<StreamingStats> acc(24);
  const double slots_per_hour = 3600.0 / s.slot_width();
  for (std::size_t i = 0; i < s.slots(); ++i) {
    auto h = static_cast<std::size_t>(static_cast<double>(i) / slots_per_hour);
    if (h >= 24) h = 23;
    acc[h].merge(s.slot(i));
  }
  for (std::size_t h = 0; h < 24; ++h) hours[h] = acc[h].mean();
  return hours;
}

void banner(const std::string& figure, const std::string& description) {
  std::printf("\n=== %s ===\n%s\n\n", figure.c_str(), description.c_str());
}

void emit(const std::string& name, const Table& table) {
  table.write_pretty(std::cout, 3);
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  if (!ec) {
    const std::string path = "bench_results/" + name + ".csv";
    try {
      table.save_csv(path);
      std::printf("\n[saved %s]\n", path.c_str());
    } catch (const IoError&) {
      // Read-only working directory: console output stands on its own.
    }
  }
}

}  // namespace agora::figbench
