// fig_common.h -- shared scenario definitions for the figure-reproduction
// harnesses (one binary per figure of the paper's evaluation, Section 4).
//
// The canonical scenario, used by every figure unless it says otherwise:
// 10 ISP-level proxies, one 24h synthetic Berkeley-like trace per proxy
// (peak_rate 9.5 req/s at the midnight peak -- calibrated so the no-sharing
// baseline reproduces Figure 5's few-hundred-second peak waits), per-request
// cost a + b*x capped at c with the paper's constants, and proxies shifted
// in time by a configurable gap to model different time zones.
#pragma once

#include <string>
#include <vector>

#include "agree/matrices.h"
#include "alloc/allocator.h"
#include "lp/problem.h"
#include "proxysim/simulator.h"
#include "trace/generator.h"
#include "util/csv.h"

namespace agora::figbench {

inline constexpr double kPeakRate = 9.5;
inline constexpr std::size_t kProxies = 10;
inline constexpr double kHour = 3600.0;
inline constexpr std::uint64_t kSeedBase = 100;

/// Command-line options every figure harness accepts.
struct FigOptions {
  /// Base RNG seed for the workload traces (proxy p draws from seed + p).
  std::uint64_t seed = kSeedBase;
  /// When non-empty, write an observability snapshot (registry metrics plus
  /// the final run's trace events) here; ".csv" selects CSV, else JSONL.
  std::string metrics_out;
};

/// Parse --seed / --metrics-out. Prints help and exits 0 on -h/--help,
/// exits 2 on unknown flags.
FigOptions parse_fig_options(int argc, char** argv, const std::string& figure);

/// Honor --metrics-out for the run that produced `last` (no-op when the
/// option is empty). Registry totals come from the global sink; the event
/// stream is the run's own (SimMetrics::events).
void write_fig_metrics(const FigOptions& opts, const proxysim::SimMetrics& last);

/// The calibrated workload generator.
trace::Generator make_generator();

/// One stream per proxy, proxy p shifted by p * gap_seconds and seeded with
/// seed_base + p.
std::vector<std::vector<trace::TraceRequest>> make_traces(double gap_seconds,
                                                          std::size_t proxies = kProxies,
                                                          std::uint64_t seed_base = kSeedBase);

/// Baseline config: 10 proxies, no sharing, paper cost model, 10-minute
/// slots, scheduling-epoch spare reporting.
proxysim::SimConfig base_config(std::size_t proxies = kProxies);

/// Convenience: build, run, return metrics.
proxysim::SimMetrics run_sim(const proxysim::SimConfig& cfg,
                             const std::vector<std::vector<trace::TraceRequest>>& traces);

/// Mean wait per hour of day (24 entries) for a slotted series.
std::vector<double> hourly_means(const SlottedSeries& s);

// --- Shared LP / allocator fixtures (micro_lp, micro_warmstart) -----------

/// Deterministic complete-graph sharing system: capacities uniform(5, 20)
/// seeded by n, every pair sharing 0.8/n.
agree::AgreementSystem complete_sharing_system(std::size_t n);

/// Allocator options used by the LP micro-benchmarks: transitive closure
/// with tiny path products pruned so fixture setup stays tractable on
/// complete graphs at n = 40.
alloc::AllocatorOptions bench_alloc_options();

/// The compact allocation LP for complete_sharing_system(n), requester 0,
/// amount = half of its available capacity. Built through the allocator's
/// own AllocationModelCache, so the benchmark solves exactly the model
/// Allocator::solve_compact solves (in particular the diagonal of the
/// perturbation rows is retained_i, not 1.0).
lp::Problem compact_allocation_lp(std::size_t n);

/// Banded sharing system: principals on a ring of time zones share with
/// neighbors up to ring distance 3 (Figure 13's distance-decayed shape, cut
/// off so the matrix is genuinely sparse). Row density stays O(1) as n
/// grows, which is what makes the n = 1000 LP tractable for the sparse
/// basis and a stress case for the dense inverse.
agree::AgreementSystem banded_sharing_system(std::size_t n);

/// Transitive options for the banded system: chains capped at 2 hops keep
/// the entitlement matrix banded (width ~12) at any n.
alloc::AllocatorOptions sparse_bench_alloc_options();

/// Compact allocation LP over banded_sharing_system(n) -- requester 0,
/// amount = half its availability. ~2n+1 standard-form rows with O(1)
/// nonzeros each; the lp scaling sweep (micro_lp, BENCH_lp.json) runs this
/// at n in {100, 500, 1000}.
lp::Problem sparse_allocation_lp(std::size_t n);

/// Print the figure banner.
void banner(const std::string& figure, const std::string& description);

/// Pretty-print to stdout and save bench_results/<name>.csv.
void emit(const std::string& name, const Table& table);

}  // namespace agora::figbench
