// Ablation: exact simple-path transitive shares (DFS) vs the matrix-power
// walk approximation, and the effect of the DFS product-pruning knob.
#include <benchmark/benchmark.h>

#include "agree/topology.h"
#include "agree/transitive.h"

namespace {

using namespace agora;

void BM_ExactSimplePaths(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Matrix s = agree::complete_graph(n, 0.8 / static_cast<double>(n));
  for (auto _ : state) {
    const Matrix t = agree::transitive_shares(s);
    benchmark::DoNotOptimize(t.max_abs());
  }
}
BENCHMARK(BM_ExactSimplePaths)->Arg(6)->Arg(8)->Arg(10)->Arg(11);

void BM_ExactWithPruning(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Matrix s = agree::complete_graph(n, 0.8 / static_cast<double>(n));
  agree::TransitiveOptions opts;
  opts.prune_below = 1e-6;
  for (auto _ : state) {
    const Matrix t = agree::transitive_shares(s, opts);
    benchmark::DoNotOptimize(t.max_abs());
  }
}
BENCHMARK(BM_ExactWithPruning)->Arg(6)->Arg(8)->Arg(10)->Arg(11)->Arg(14);

void BM_LevelLimited(benchmark::State& state) {
  const Matrix s = agree::complete_graph(10, 0.08);
  agree::TransitiveOptions opts;
  opts.max_level = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const Matrix t = agree::transitive_shares(s, opts);
    benchmark::DoNotOptimize(t.max_abs());
  }
}
BENCHMARK(BM_LevelLimited)->Arg(1)->Arg(2)->Arg(3)->Arg(5);

void BM_WalkApproximation(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Matrix s = agree::complete_graph(n, 0.8 / static_cast<double>(n));
  for (auto _ : state) {
    const Matrix t = agree::transitive_shares_walks(s, n - 1);
    benchmark::DoNotOptimize(t.max_abs());
  }
}
BENCHMARK(BM_WalkApproximation)->Arg(10)->Arg(20)->Arg(50)->Arg(100);

void BM_SparseExact(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Matrix s = agree::sparse_random(n, 3, 0.25, 42);
  // Even degree-3 graphs have exponentially many deep simple paths; prune
  // the negligible ones (products fall below 1e-6 within ~10 hops at share
  // 0.25) so n = 40 stays tractable.
  agree::TransitiveOptions opts;
  opts.prune_below = 1e-6;
  for (auto _ : state) {
    const Matrix t = agree::transitive_shares(s, opts);
    benchmark::DoNotOptimize(t.max_abs());
  }
}
BENCHMARK(BM_SparseExact)->Arg(10)->Arg(20)->Arg(40);

}  // namespace

BENCHMARK_MAIN();
