// Figure 8: transitivity-level sweep on the complete agreement graph
// (10 ISPs, 10% each, 1h gap). Paper: sharing helps, but the *incremental*
// improvement from considering indirect agreements is small, because every
// server is already reachable via direct agreements.
#include <cstdio>
#include <optional>

#include "agree/topology.h"
#include "fig_common.h"

using namespace agora;
using namespace agora::figbench;

int main(int argc, char** argv) {
  const FigOptions opts = parse_fig_options(argc, argv, "Figure 8");
  banner("Figure 8",
         "Waiting time vs transitivity level, complete graph 10%, gap 3600 s.\n"
         "Paper expectation: small incremental gain beyond level 1.");

  const auto traces = make_traces(kHour, kProxies, opts.seed);
  const std::vector<std::size_t> levels{1, 2, 3, 4, 9};

  std::vector<std::vector<double>> hourly;
  Table summary({"level", "mean_wait_s", "peak_wait_s", "redirected_pct"});

  // No-sharing reference row (level "0").
  {
    const proxysim::SimMetrics m = run_sim(base_config(), traces);
    summary.add_row({0.0, m.per_proxy_wait[0].mean(),
                     m.wait_by_slot_per_proxy[0].peak_slot_mean(), 0.0});
  }
  std::optional<proxysim::SimMetrics> last;
  for (std::size_t level : levels) {
    proxysim::SimConfig cfg = base_config();
    cfg.scheduler = proxysim::SchedulerKind::Lp;
    cfg.agreements = agree::complete_graph(kProxies, 0.10);
    cfg.alloc_opts.transitive.max_level = level;
    last = run_sim(cfg, traces);
    const proxysim::SimMetrics& m = *last;
    hourly.push_back(hourly_means(m.wait_by_slot_per_proxy[0]));
    summary.add_row({static_cast<double>(level), m.per_proxy_wait[0].mean(),
                     m.wait_by_slot_per_proxy[0].peak_slot_mean(),
                     100.0 * m.redirected_fraction()});
    std::printf("level %zu: mean %.3f s, peak %.2f s\n", level,
                m.per_proxy_wait[0].mean(), m.wait_by_slot_per_proxy[0].peak_slot_mean());
  }
  emit("fig08_transitivity_complete", summary);

  Table t({"hour", "level1", "level2", "level3", "level4", "level9"});
  for (std::size_t h = 0; h < 24; ++h)
    t.add_row({static_cast<double>(h), hourly[0][h], hourly[1][h], hourly[2][h], hourly[3][h],
               hourly[4][h]});
  emit("fig08_transitivity_complete_hourly", t);
  if (last) write_fig_metrics(opts, *last);
  return 0;
}
