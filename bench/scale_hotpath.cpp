// scale_hotpath -- admission hot-path sweep for the EnforcementEngine
// (DESIGN.md §13): the same 64-participant, 8-island economy as
// scale_shards, held at 8 worker shards, driven by a Zipf(s=1.1) request
// mix over a 512-shape catalog, measured in three configurations:
//
//   * baseline       -- PR5 engine: every consult queues to a shard worker
//                       and solves (warm-started) in the LP,
//   * fastpath       -- the theta<=1 allocator fast path alone: consults
//                       still queue to a worker, but trivially-feasible
//                       requests skip the simplex (certified residual
//                       check instead),
//   * cache          -- epoch-keyed plan cache in front of the queues; hits
//                       are re-certified against the live snapshot and
//                       answered in the caller's thread,
//   * cache_fastpath -- both: hot shapes hit the cache, cold shapes skip
//                       the simplex when trivially feasible.
//
// The driver is SERIAL blocking consult() on purpose: the hot path's win is
// that a hit never touches a queue, a worker, or the LP, and a serial
// driver measures exactly that per-consult cost. Pipelined submit() waves
// would let queue parallelism mask it.
//
// The sweep asserts the PR7 safety acceptance inline: every grant, cached
// or not, must carry a certificate (the binary exits non-zero otherwise).
//
// Usage: scale_hotpath [out.json]   (default BENCH_hotpath.json)
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "trace/zipf.h"

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kIslands = 8;
constexpr std::size_t kPerIsland = 8;
constexpr double kShare = 0.2;
constexpr std::size_t kThreads = 8;
constexpr double kZipfS = 1.1;
constexpr std::size_t kShapes = 512;

agora::agree::AgreementSystem island_economy() {
  const std::size_t n = kIslands * kPerIsland;
  agora::agree::AgreementSystem sys(n);
  for (std::size_t i = 0; i < n; ++i)
    sys.capacity[i] = 10.0 + static_cast<double>(i % kPerIsland);
  for (std::size_t g = 0; g < kIslands; ++g)
    for (std::size_t i = g * kPerIsland; i < (g + 1) * kPerIsland; ++i)
      for (std::size_t j = g * kPerIsland; j < (g + 1) * kPerIsland; ++j)
        if (i != j) sys.relative(i, j) = kShare;
  return sys;
}

struct PhaseResult {
  std::string name;
  std::uint64_t consults = 0;
  std::uint64_t uncertified = 0;  ///< satisfied grants without a certificate
  double consults_per_sec = 0.0;
  double cache_hit_rate = 0.0;   ///< hits / consults
  double fastpath_share = 0.0;   ///< fast-path grants / consults
  std::uint64_t cache_stale = 0;
  std::uint64_t cache_rejects = 0;
};

PhaseResult measure(const agora::agree::AgreementSystem& sys, const std::string& name,
                    bool plan_cache, bool fast_path) {
  agora::engine::EngineOptions opts;
  opts.threads = kThreads;
  opts.plan_cache = plan_cache;
  opts.alloc.fast_path = fast_path;
  opts.sink = agora::obs::Sink::none();
  opts.alloc.sink = agora::obs::Sink::none();
  agora::engine::EnforcementEngine eng(sys, opts);

  agora::trace::ZipfShapeGenerator::Config cfg;
  cfg.participants = sys.size();
  cfg.shapes = kShapes;
  cfg.s = kZipfS;
  cfg.seed = 7;
  agora::trace::ZipfShapeGenerator gen(cfg);

  // Warm-up: one pass over the full shape catalog primes the warm-start
  // workspaces and, when enabled, populates the cache -- the steady state a
  // long-lived enforcement daemon runs in. Its counter contributions are
  // snapshotted so rates below cover the measured loop only.
  for (const agora::trace::RequestShape& s : gen.catalog())
    (void)eng.consult(s.participant, s.amount);
  const agora::engine::EngineStats warm = eng.stats();

  PhaseResult r;
  r.name = name;
  const auto t0 = Clock::now();
  double elapsed = 0.0;
  while (elapsed < 0.5) {
    for (int k = 0; k < 256; ++k) {
      const agora::trace::RequestShape s = gen.next();
      const agora::alloc::AllocationPlan plan = eng.consult(s.participant, s.amount);
      if (plan.satisfied() && !plan.certified) ++r.uncertified;
    }
    r.consults += 256;
    elapsed = std::chrono::duration<double>(Clock::now() - t0).count();
  }
  r.consults_per_sec = static_cast<double>(r.consults) / elapsed;

  const agora::engine::EngineStats st = eng.stats();
  const double total = static_cast<double>(r.consults);
  const std::uint64_t served_hits = (st.plan_cache.hits - st.plan_cache.certify_rejects) -
                                    (warm.plan_cache.hits - warm.plan_cache.certify_rejects);
  r.cache_hit_rate = static_cast<double>(served_hits) / total;
  r.fastpath_share =
      static_cast<double>(st.fastpath_granted - warm.fastpath_granted) / total;
  r.cache_stale = st.plan_cache.stale;
  r.cache_rejects = st.plan_cache.certify_rejects;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_hotpath.json";
  const agora::agree::AgreementSystem sys = island_economy();

  std::vector<PhaseResult> phases;
  phases.push_back(measure(sys, "baseline", /*plan_cache=*/false, /*fast_path=*/false));
  phases.push_back(measure(sys, "fastpath", /*plan_cache=*/false, /*fast_path=*/true));
  phases.push_back(measure(sys, "cache", /*plan_cache=*/true, /*fast_path=*/false));
  phases.push_back(measure(sys, "cache_fastpath", /*plan_cache=*/true, /*fast_path=*/true));

  std::uint64_t uncertified = 0;
  for (const PhaseResult& r : phases) {
    std::printf("%-15s %12.0f consults/s  hit-rate %5.1f%%  fast-path %5.1f%%\n",
                r.name.c_str(), r.consults_per_sec, 100.0 * r.cache_hit_rate,
                100.0 * r.fastpath_share);
    uncertified += r.uncertified;
  }
  const double base = phases.front().consults_per_sec;
  const double speedup_fast = phases[1].consults_per_sec / base;
  const double speedup_cache = phases[2].consults_per_sec / base;
  const double speedup_full = phases[3].consults_per_sec / base;
  std::printf("speedup vs baseline: fastpath %.1fx, cache %.1fx, cache+fastpath %.1fx\n",
              speedup_fast, speedup_cache, speedup_full);
  if (uncertified != 0) {
    std::fprintf(stderr, "scale_hotpath: %llu UNCERTIFIED GRANTS -- invariant broken\n",
                 static_cast<unsigned long long>(uncertified));
    return 1;
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "scale_hotpath: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"engine_scale_hotpath\",\n");
  std::fprintf(f,
               "  \"economy\": {\"participants\": %zu, \"islands\": %zu, "
               "\"per_island\": %zu, \"share\": %.2f},\n",
               kIslands * kPerIsland, kIslands, kPerIsland, kShare);
  std::fprintf(f,
               "  \"workload\": {\"zipf_s\": %.2f, \"shapes\": %zu, \"threads\": %zu, "
               "\"driver\": \"serial_blocking_consult\"},\n",
               kZipfS, kShapes, kThreads);
  std::fprintf(f, "  \"phases\": [\n");
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseResult& r = phases[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"consults\": %llu, \"consults_per_sec\": %.1f, "
                 "\"cache_hit_rate\": %.4f, \"fastpath_share\": %.4f, "
                 "\"cache_stale\": %llu, \"cache_certify_rejects\": %llu, "
                 "\"uncertified_grants\": %llu}%s\n",
                 r.name.c_str(), static_cast<unsigned long long>(r.consults),
                 r.consults_per_sec, r.cache_hit_rate, r.fastpath_share,
                 static_cast<unsigned long long>(r.cache_stale),
                 static_cast<unsigned long long>(r.cache_rejects),
                 static_cast<unsigned long long>(r.uncertified),
                 i + 1 < phases.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"speedup_fastpath_vs_baseline\": %.3f,\n", speedup_fast);
  std::fprintf(f, "  \"speedup_cache_vs_baseline\": %.3f,\n", speedup_cache);
  std::fprintf(f, "  \"speedup_cache_fastpath_vs_baseline\": %.3f,\n", speedup_full);
  std::fprintf(f, "  \"certified_grant_pct\": 100.0\n}\n");
  std::fclose(f);
  std::printf("scale_hotpath: wrote %s\n", out_path.c_str());
  return 0;
}
