// Figure 6: average waiting time WITH resource sharing (complete graph of
// 10 ISPs, each sharing 10% with every other) for different time skews
// ("gap") between the proxies' request streams. Paper: at gap 3600 s the
// waiting time drops from ~250 s to below 2 s.
#include <cstdio>
#include <optional>

#include "agree/topology.h"
#include "fig_common.h"

using namespace agora;
using namespace agora::figbench;

int main(int argc, char** argv) {
  const FigOptions opts = parse_fig_options(argc, argv, "Figure 6");
  banner("Figure 6",
         "Average waiting time with sharing (complete graph, 10% each) for\n"
         "gap in {0, 1200, 2400, 3600} s. Paper expectation: waits collapse\n"
         "from hundreds of seconds to <2 s once streams are skewed by 1 h.");

  const std::vector<double> gaps{0.0, 1200.0, 2400.0, 3600.0};
  std::vector<std::vector<double>> hourly;
  std::vector<double> peaks, means;

  std::optional<proxysim::SimMetrics> last;
  for (double gap : gaps) {
    proxysim::SimConfig cfg = base_config();
    cfg.scheduler = proxysim::SchedulerKind::Lp;
    cfg.agreements = agree::complete_graph(kProxies, 0.10);
    last = run_sim(cfg, make_traces(gap, kProxies, opts.seed));
    const proxysim::SimMetrics& m = *last;
    // Proxy 0 keeps shift 0, so its local clock equals global time for
    // every gap value -- that is the ISP the paper plots.
    hourly.push_back(hourly_means(m.wait_by_slot_per_proxy[0]));
    peaks.push_back(m.wait_by_slot_per_proxy[0].peak_slot_mean());
    means.push_back(m.per_proxy_wait[0].mean());
    std::printf("gap %4.0f s: proxy-0 peak %.2f s, mean %.3f s, redirected %.2f%%\n", gap,
                peaks.back(), means.back(), 100.0 * m.redirected_fraction());
  }

  Table t({"hour", "gap0", "gap1200", "gap2400", "gap3600"});
  for (std::size_t h = 0; h < 24; ++h)
    t.add_row({static_cast<double>(h), hourly[0][h], hourly[1][h], hourly[2][h], hourly[3][h]});
  emit("fig06_sharing_gap", t);

  std::printf("\nSummary (proxy-0 peak wait): gap0 %.1f s -> gap3600 %.2f s (paper: ~250 s -> <2 s)\n",
              peaks[0], peaks[3]);
  if (last) write_fig_metrics(opts, *last);
  return 0;
}
