// Figure 12: effect of a fixed per-redirection overhead (0 / 0.1 / 0.2 s,
// i.e. ~1x and ~2x the average processing time) on the average waiting time.
// Paper: negligible impact, because fewer than 1.5% of requests are
// redirected overall (under 6% at peak).
#include <cstdio>
#include <optional>

#include "agree/topology.h"
#include "fig_common.h"

using namespace agora;
using namespace agora::figbench;

int main(int argc, char** argv) {
  const FigOptions opts = parse_fig_options(argc, argv, "Figure 12");
  banner("Figure 12",
         "Waiting time vs redirection cost (complete graph 10%, gap 3600 s).\n"
         "Paper expectation: costs up to 2x the mean service time have\n"
         "negligible impact; <1.5% of requests are redirected.");

  const auto traces = make_traces(kHour, kProxies, opts.seed);
  std::vector<std::vector<double>> hourly;
  Table summary({"redirect_cost_s", "mean_wait_s", "peak_wait_s", "redirected_pct",
                 "peak_slot_redirected_pct"});
  std::optional<proxysim::SimMetrics> last;
  for (double cost : {0.0, 0.1, 0.2}) {
    proxysim::SimConfig cfg = base_config();
    cfg.scheduler = proxysim::SchedulerKind::Lp;
    cfg.agreements = agree::complete_graph(kProxies, 0.10);
    cfg.redirect_cost = cost;
    last = run_sim(cfg, traces);
    const proxysim::SimMetrics& m = *last;
    hourly.push_back(hourly_means(m.wait_by_slot_per_proxy[0]));

    // Peak-slot redirection rate (paper: < 6% even at peak).
    double peak_pct = 0.0;
    for (std::size_t s = 0; s < m.requests_by_slot.size(); ++s) {
      if (m.requests_by_slot[s] == 0) continue;
      peak_pct = std::max(peak_pct, 100.0 * static_cast<double>(m.redirected_by_slot[s]) /
                                        static_cast<double>(m.requests_by_slot[s]));
    }
    summary.add_row({cost, m.mean_wait(), m.peak_slot_wait(),
                     100.0 * m.redirected_fraction(), peak_pct});
    std::printf("cost %.1f s: mean %.3f s, peak %.2f s, redirected %.2f%% (peak slot %.2f%%)\n",
                cost, m.mean_wait(), m.peak_slot_wait(), 100.0 * m.redirected_fraction(),
                peak_pct);
  }
  emit("fig12_redirect_cost", summary);

  Table t({"hour", "cost0", "cost0.1", "cost0.2"});
  for (std::size_t h = 0; h < 24; ++h)
    t.add_row({static_cast<double>(h), hourly[0][h], hourly[1][h], hourly[2][h]});
  emit("fig12_redirect_cost_hourly", t);
  if (last) write_fig_metrics(opts, *last);
  return 0;
}
