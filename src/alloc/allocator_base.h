// allocator_base.h -- the one interface every admission decider implements.
//
// Three classes decide allocations today: the flat LP Allocator, the
// two-level HierarchicalAllocator, and the sharded engine::EnforcementEngine
// that fronts either at scale. Call sites (SchedulerBridge, the GRM, the fig
// binaries, user code reaching in through agora/agora.h) used to hard-code
// one concrete class each; AllocatorBase lets them take any of the three
// polymorphically.
//
// Contract (all of it inherited from Allocator's documented semantics):
//   * allocate() is logically const: it decides but does not commit. Commit
//     with apply(); return capacity with release().
//   * set_capacities() replaces every V_i without touching the agreement
//     structure (the per-epoch refresh path of trace-driven enforcement).
//   * Thread safety is implementation-defined: the two direct allocators are
//     single-threaded, the engine is safe for any number of callers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "agree/matrices.h"
#include "alloc/plan.h"
#include "lp/solve_pipeline.h"

namespace agora::alloc {

class AllocatorBase {
 public:
  virtual ~AllocatorBase() = default;

  /// Number of principals covered.
  virtual std::size_t size() const = 0;

  /// The agreement system (capacities reflect the latest set_capacities /
  /// apply / release).
  virtual const agree::AgreementSystem& system() const = 0;

  /// Decide an allocation for principal `a` requesting `amount`. Does not
  /// mutate observable state; call apply() to commit the plan.
  virtual AllocationPlan allocate(std::size_t a, double amount) const = 0;

  /// Largest request principal `a` could have satisfied right now (C_a).
  virtual double available_to(std::size_t a) const = 0;

  /// Commit a satisfied plan: subtract draws from capacities.
  virtual void apply(const AllocationPlan& plan) = 0;

  /// Return capacity to principals (e.g. when borrowed work completes).
  virtual void release(const std::vector<double>& give_back) = 0;

  /// Replace all capacities without touching the agreement matrices.
  virtual void set_capacities(std::span<const double> v) = 0;

  /// Degradation telemetry of the certified solve chain; nullptr when the
  /// implementation has none to report (or aggregation is not meaningful).
  virtual const lp::PipelineStats* solver_stats() const { return nullptr; }
};

}  // namespace agora::alloc
