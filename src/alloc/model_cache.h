// model_cache.h -- amortized model structure for the compact allocation LP.
//
// The compact formulation's constraint matrix depends only on the transitive
// share matrix K and the retained fractions -- both fixed for an Allocator's
// lifetime. Requests and capacity updates move only the draw-variable upper
// bounds (U_kA entitlements) and the demand right-hand side. So the model is
// built ONCE (unnamed variables, no string churn) and thereafter patched in
// place before each solve: no ModelBuilder, no vector reallocation, no
// per-request Problem construction.
//
// The cache also owns the lp::SolveWorkspace threaded into
// RevisedSimplexSolver::solve, so successive solves of the patched model
// warm-start from the previous optimal basis.
//
// The cached Problem is coefficient-identical to what the historical
// per-request ModelBuilder path produced (variables in the same order: d_0..
// d_{n-1} then theta; rows: demand then perturb_0..perturb_{n-1}), so any
// engine run on it yields bit-identical results to the legacy path.
//
// Not thread-safe: a cache belongs to one Allocator and must not be used by
// concurrent solves (see AllocatorOptions::reuse_context to opt out).
#pragma once

#include <cstddef>

#include "agree/capacity.h"
#include "agree/matrices.h"
#include "lp/problem.h"
#include "lp/workspace.h"

namespace agora::alloc {

class AllocationModelCache {
 public:
  bool built() const { return built_; }

  /// Build the compact relaxed model structure (bounds and rhs are
  /// placeholders; patch() must run before any solve).
  void build(const agree::AgreementSystem& sys, const agree::CapacityReport& report);

  /// Point the model at request (a, amount) under the current entitlements:
  /// d_k in [0, U_kA] and demand rhs = amount.
  void patch(const agree::CapacityReport& report, std::size_t a, double amount);

  lp::Problem& problem() { return problem_; }
  lp::SolveWorkspace& workspace() { return ws_; }

  /// Drop the cached structure (and warm-start state). The next solve
  /// rebuilds. Call if the agreement matrices ever change.
  void invalidate() {
    built_ = false;
    ws_.invalidate();
  }

 private:
  bool built_ = false;
  std::size_t n_ = 0;
  lp::Problem problem_;
  lp::SolveWorkspace ws_;
};

}  // namespace agora::alloc
