// multi_resource.h -- requests spanning several resource types
// (Section 3.2): "a request for k types of resources is in the form of a
// vector <r_1, ..., r_k> ... we need to solve k linear systems, one for each
// resource requested". The k solves are independent, so they run on the
// shared thread pool.
//
// Coupled resources ("CPU and memory need to be on the same machine") are
// handled the way the paper suggests: *bind* them into a new synthetic
// resource type allocated as a unit; make_bundle() constructs the bound
// system from the component systems and the per-unit composition.
#pragma once

#include <string>
#include <vector>

#include "alloc/allocator.h"

namespace agora::alloc {

struct MultiRequest {
  std::size_t principal = 0;
  /// amount requested per resource index (into the allocator's resources).
  std::vector<double> amounts;
};

struct MultiPlan {
  /// One plan per resource, in resource order.
  std::vector<AllocationPlan> per_resource;
  /// Satisfied only if every component is.
  bool satisfied() const;
};

class MultiResourceAllocator {
 public:
  /// One AgreementSystem per resource type, with human-readable names.
  MultiResourceAllocator(std::vector<agree::AgreementSystem> systems,
                         std::vector<std::string> resource_names, AllocatorOptions opts = {});

  std::size_t num_resources() const { return allocators_.size(); }
  const std::string& resource_name(std::size_t r) const { return names_.at(r); }
  const Allocator& allocator(std::size_t r) const { return allocators_.at(r); }

  /// Solve the k independent LPs (in parallel when `parallel` is true).
  /// All-or-nothing: when any resource cannot be satisfied, no plan is
  /// applied and the failing component's status is reported.
  MultiPlan allocate(const MultiRequest& req, bool parallel = true) const;

  /// Commit a satisfied multi-plan.
  void apply(const MultiPlan& plan);

 private:
  std::vector<Allocator> allocators_;
  std::vector<std::string> names_;
};

/// Bind component resources into one synthetic "bundle" resource: one bundle
/// unit consumes weights[r] units of component r. Capacities become
/// min_r V_i(r) / w_r; relative shares the component-wise minimum (a bundle
/// moves only as much as the *scarcest* covered component); absolute
/// agreements min_r A_ij(r) / w_r. Components with weight 0 are ignored.
agree::AgreementSystem make_bundle(const std::vector<agree::AgreementSystem>& systems,
                                   const std::vector<double>& weights);

}  // namespace agora::alloc
