// hierarchical.h -- multi-grid allocation for hierarchical agreement
// structures (Section 3.2):
//
// "once a request comes to a group, and that group cannot satisfy the
//  request, we use LP to find the distribution of resources among groups;
//  based on the distribution result, we run LP inside each group to further
//  refine the resource allocation, iterating this process as required."
//
// The coarse level aggregates each group into one super-principal (capacity
// = sum of members; inter-group share = capacity-weighted sum of member
// shares crossing the boundary). The fine level distributes each group's
// assigned contribution among its members, bounding each member's draw by
// its entitlement toward the requester in the *full* system.
//
// This trades a single (n+1)-variable LP for one (g+1)-variable LP plus a
// handful of (|group|+1)-variable LPs -- the micro_formulation bench
// measures the crossover.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "alloc/allocator.h"

namespace agora::alloc {

class HierarchicalAllocator : public AllocatorBase {
 public:
  /// `group_of[i]` assigns principal i to a group (0-based, contiguous).
  HierarchicalAllocator(agree::AgreementSystem sys, std::vector<std::size_t> group_of,
                        AllocatorOptions opts = {});

  std::size_t num_groups() const { return groups_.size(); }
  const agree::AgreementSystem& system() const override { return sys_; }
  std::size_t size() const override { return sys_.size(); }

  /// Allocate `amount` for principal `a` using the two-level scheme.
  /// Fast path: when a's own group can cover the request, only that group's
  /// LP runs.
  AllocationPlan allocate(std::size_t a, double amount) const override;

  /// Largest request principal `a` could have satisfied right now, in the
  /// *full* system (the two-level scheme may place less; see allocate()).
  double available_to(std::size_t a) const override { return full_report_.capacity.at(a); }

  /// Commit a plan (subtract draws, refresh caches).
  void apply(const AllocationPlan& plan) override;

  /// Return capacity to principals (inverse of apply for completed work).
  void release(const std::vector<double>& give_back) override;

  /// Replace all capacities without touching the agreement structure; live
  /// per-group caches are refreshed in place, the capacity-weighted coarse
  /// cache is dropped and lazily rebuilt.
  void set_capacities(std::span<const double> v) override;

  /// Telemetry of the fine-level (within-group) certified solve chain; the
  /// per-level Allocators carry their own pipelines.
  const lp::PipelineStats* solver_stats() const override { return &fine_pipeline_.stats(); }

 private:
  /// Shared tail of apply/release/set_capacities: sys_.capacity changed;
  /// refresh the full report and push new capacities into live caches.
  void propagate_capacities();

  struct Group {
    std::vector<std::size_t> members;
  };

  /// Sub-system induced by one group (agreements internal to the group).
  agree::AgreementSystem group_system(std::size_t g) const;
  /// Coarse system over groups.
  agree::AgreementSystem coarse_system() const;
  void rebuild();

  // Lazily built, persistent per-level Allocators. Building an Allocator
  // runs the transitive-closure share computation, so reconstructing one per
  // allocate() (the historical behavior) dominated trace-driven runs. The
  // share matrices depend only on the agreement structure, which is fixed,
  // so apply() just pushes new capacities into live caches -- except the
  // coarse level, whose inter-group shares are capacity-weighted and must be
  // rebuilt (it is reset and re-created on next use).
  Allocator& group_allocator(std::size_t g) const;
  Allocator& coarse_allocator() const;
  Allocator& flat_allocator() const;

  agree::AgreementSystem sys_;
  std::vector<std::size_t> group_of_;
  std::vector<Group> groups_;
  AllocatorOptions opts_;
  agree::CapacityReport full_report_;  ///< entitlements in the full system
  mutable std::vector<std::unique_ptr<Allocator>> group_cache_;
  mutable std::unique_ptr<Allocator> coarse_cache_;
  mutable std::unique_ptr<Allocator> flat_cache_;
  /// Certified solve chain for the fine-level (within-group) LPs; the
  /// per-level Allocators carry their own pipelines.
  mutable lp::SolvePipeline fine_pipeline_;
  /// Cached registry handles (see obs/metrics.h).
  obs::LogHistogram* obs_plan_seconds_ = nullptr;
  obs::Counter* obs_fast_path_ = nullptr;
  obs::Counter* obs_coarse_solves_ = nullptr;
  obs::Counter* obs_fine_solves_ = nullptr;
  obs::Counter* obs_flat_fallbacks_ = nullptr;
};

}  // namespace agora::alloc
