// endpoint.h -- the paper's baseline: end-point (non-LP) enforcement.
//
// "The basic scheme we used redistributes requests queued up at a proxy's
// front-end to all other ISPs. The number of requests redistributed is
// proportional to the quantity of sharing agreements with other ISPs."
// (Section 4.2, Figure 13.)
//
// Each endpoint knows only its *direct* agreements; it splits overflow
// proportionally to the direct shares S_Ak, capping each lane at the direct
// entitlement V_k * S_Ak + A_Ak... from k's perspective: what k agreed to
// provide to A, i.e. V_k * S_kA + A_kA. Capacity that does not fit under the
// caps (after proportional refilling) stays local. No global availability
// information and no transitive agreements are used -- that is the point of
// the comparison.
#pragma once

#include <cstddef>

#include "agree/matrices.h"
#include "alloc/plan.h"

namespace agora::alloc {

/// Decide a proportional endpoint allocation for principal `a` requesting
/// `amount`. `draw[a]` holds whatever could not be pushed to neighbors.
AllocationPlan endpoint_allocate(const agree::AgreementSystem& sys, std::size_t a,
                                 double amount);

}  // namespace agora::alloc
