// plan.h -- the outcome of one allocation decision.
#pragma once

#include <cstdint>
#include <vector>

namespace agora::alloc {

enum class PlanStatus {
  Satisfied,     ///< the full requested amount was allocated
  Insufficient,  ///< the requester's capacity C_A is below the request
  SolverFailed,  ///< the LP solver gave up (iteration limit); should not
                 ///< happen on well-formed systems
};

struct AllocationPlan {
  PlanStatus status = PlanStatus::Insufficient;

  /// Physical amount drawn from each principal's capacity (d_k in DESIGN.md;
  /// V_k - V'_k in the paper). Sums to the request when Satisfied.
  std::vector<double> draw;

  /// Optimal global perturbation theta = max_i (C_i - C'_i).
  double theta = 0.0;

  /// Availability before and after the allocation.
  std::vector<double> capacity_before;
  std::vector<double> capacity_after;

  /// Simplex iterations spent.
  std::uint64_t lp_iterations = 0;

  /// True when the paper-exact equality C'_A = C_A - x was requested but
  /// infeasible, and the allocator fell back to the relaxed model.
  bool exact_mode_fell_back = false;

  bool satisfied() const { return status == PlanStatus::Satisfied; }
  double total_drawn() const {
    double s = 0.0;
    for (double d : draw) s += d;
    return s;
  }
};

}  // namespace agora::alloc
