// plan.h -- the outcome of one allocation decision.
#pragma once

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace agora::alloc {

enum class PlanStatus {
  Satisfied,     ///< the full requested amount was allocated
  Insufficient,  ///< the requester's capacity C_A is below the request
  SolverFailed,  ///< the LP solver gave up (iteration limit); should not
                 ///< happen on well-formed systems
  Denied,        ///< conservative denial: the certified solve chain was
                 ///< exhausted without a verifiable answer, so no grant is
                 ///< issued (never an uncertified grant)
};

/// The agora::Status a plan outcome maps to (DESIGN.md §11.5): the unified
/// error currency carried by engine submit results and rms replies.
inline Status to_status(PlanStatus s) {
  switch (s) {
    case PlanStatus::Satisfied: return Status();
    case PlanStatus::Insufficient: return Status::insufficient();
    case PlanStatus::SolverFailed: return Status::solver_failed();
    case PlanStatus::Denied: return Status::denied();
  }
  return Status::internal("unknown PlanStatus");
}

/// One border-credit spend inside a federated plan: `amount` of the plan's
/// bank draw is attributed to the loan `credit` (engine::Credit id), i.e. to
/// that credit's lender's physical capacity. Only federated engine plans
/// carry these; a bare Allocator never does.
struct BorrowedDraw {
  std::uint64_t credit = 0;
  double amount = 0.0;
};

struct AllocationPlan {
  PlanStatus status = PlanStatus::Insufficient;

  /// Physical amount drawn from each principal's capacity (d_k in DESIGN.md;
  /// V_k - V'_k in the paper). Sums to the request when Satisfied.
  std::vector<double> draw;

  /// Optimal global perturbation theta = max_i (C_i - C'_i).
  double theta = 0.0;

  /// Availability before and after the allocation.
  std::vector<double> capacity_before;
  std::vector<double> capacity_after;

  /// Simplex iterations spent.
  std::uint64_t lp_iterations = 0;

  /// True when the paper-exact equality C'_A = C_A - x was requested but
  /// infeasible, and the allocator fell back to the relaxed model.
  bool exact_mode_fell_back = false;

  /// True when the LP answer behind this plan (grant OR denial) carries an
  /// lp::Certificate that survived independent verification. Always false
  /// when the allocator runs with certification disabled.
  bool certified = false;

  /// Solve-chain stages tried beyond the first before an answer certified
  /// (0 on the happy path; see lp::SolvePipeline).
  std::uint64_t solver_fallbacks = 0;

  /// Capacity-snapshot epoch this decision was made against, stamped by the
  /// engine (see engine::CapacitySnapshot::epoch). 0 for plans produced by a
  /// bare Allocator outside the engine.
  std::uint64_t decision_epoch = 0;

  /// Border-credit spends backing the draws attributed to remote lenders
  /// (federated engine plans only; empty otherwise). Applying the plan
  /// consumes exactly these amounts from the named credits.
  std::vector<BorrowedDraw> borrowed;

  bool satisfied() const { return status == PlanStatus::Satisfied; }
  /// Unified-status view of `status` (see to_status(PlanStatus)).
  Status to_status() const { return alloc::to_status(status); }
  double total_drawn() const {
    double s = 0.0;
    for (double d : draw) s += d;
    return s;
  }
};

}  // namespace agora::alloc
