#include "alloc/hierarchical.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "lp/model_builder.h"
#include "lp/solve.h"
#include "obs/timer.h"

namespace agora::alloc {

namespace {
lp::PipelineOptions fine_pipeline_options(const AllocatorOptions& opts) {
  lp::PipelineOptions po;
  po.solve = opts.solve;
  po.sink = opts.sink;
  return po;
}
}  // namespace

HierarchicalAllocator::HierarchicalAllocator(agree::AgreementSystem sys,
                                             std::vector<std::size_t> group_of,
                                             AllocatorOptions opts)
    : sys_(std::move(sys)),
      group_of_(std::move(group_of)),
      opts_(opts),
      fine_pipeline_(fine_pipeline_options(opts)) {
  sys_.validate(/*allow_overdraft=*/true);
  AGORA_REQUIRE(group_of_.size() == sys_.size(), "group assignment size mismatch");
  std::size_t ng = 0;
  for (std::size_t g : group_of_) ng = std::max(ng, g + 1);
  groups_.resize(ng);
  for (std::size_t i = 0; i < group_of_.size(); ++i) {
    AGORA_REQUIRE(group_of_[i] < ng, "bad group index");
    groups_[group_of_[i]].members.push_back(i);
  }
  for (std::size_t g = 0; g < ng; ++g)
    AGORA_REQUIRE(!groups_[g].members.empty(), "empty group " + std::to_string(g));
  group_cache_.resize(ng);
  obs_plan_seconds_ = &opts_.sink.histogram("alloc.hier.plan.seconds");
  obs_fast_path_ = &opts_.sink.counter("alloc.hier.fast_path");
  obs_coarse_solves_ = &opts_.sink.counter("alloc.hier.coarse_solves");
  obs_fine_solves_ = &opts_.sink.counter("alloc.hier.fine_solves");
  obs_flat_fallbacks_ = &opts_.sink.counter("alloc.hier.flat_fallbacks");
  rebuild();
}

Allocator& HierarchicalAllocator::group_allocator(std::size_t g) const {
  if (!group_cache_[g]) group_cache_[g] = std::make_unique<Allocator>(group_system(g), opts_);
  return *group_cache_[g];
}

Allocator& HierarchicalAllocator::coarse_allocator() const {
  if (!coarse_cache_) coarse_cache_ = std::make_unique<Allocator>(coarse_system(), opts_);
  return *coarse_cache_;
}

Allocator& HierarchicalAllocator::flat_allocator() const {
  if (!flat_cache_) flat_cache_ = std::make_unique<Allocator>(sys_, opts_);
  return *flat_cache_;
}

void HierarchicalAllocator::rebuild() {
  full_report_ = agree::compute_capacities(sys_, opts_.transitive);
}

agree::AgreementSystem HierarchicalAllocator::group_system(std::size_t g) const {
  const auto& members = groups_[g].members;
  agree::AgreementSystem sub(members.size());
  for (std::size_t a = 0; a < members.size(); ++a) {
    sub.capacity[a] = sys_.capacity[members[a]];
    sub.retained[a] = sys_.retained[members[a]];
    for (std::size_t b = 0; b < members.size(); ++b) {
      if (a == b) continue;
      sub.relative(a, b) = sys_.relative(members[a], members[b]);
      sub.absolute(a, b) = sys_.absolute(members[a], members[b]);
    }
  }
  return sub;
}

agree::AgreementSystem HierarchicalAllocator::coarse_system() const {
  const std::size_t ng = groups_.size();
  agree::AgreementSystem coarse(ng);
  for (std::size_t g = 0; g < ng; ++g) {
    double cap = 0.0;
    for (std::size_t m : groups_[g].members) cap += sys_.capacity[m];
    coarse.capacity[g] = cap;
  }
  // Inter-group share: capacity-weighted member shares crossing the
  // boundary; with zero group capacity fall back to a plain average.
  for (std::size_t g = 0; g < ng; ++g) {
    for (std::size_t h = 0; h < ng; ++h) {
      if (g == h) continue;
      double share = 0.0, abs_amount = 0.0;
      for (std::size_t i : groups_[g].members) {
        double out = 0.0;
        for (std::size_t j : groups_[h].members) {
          out += sys_.relative(i, j);
          abs_amount += sys_.absolute(i, j);
        }
        // Each member can give at most `out` of its own capacity to group h.
        const double weight = coarse.capacity[g] > 0.0
                                  ? sys_.capacity[i] / coarse.capacity[g]
                                  : 1.0 / static_cast<double>(groups_[g].members.size());
        share += std::min(out, 1.0) * weight;
      }
      coarse.relative(g, h) = std::min(share, 1.0);
      coarse.absolute(g, h) = abs_amount;
    }
    // Keep the coarse system valid even if member rows sum close to 1.
    double row = 0.0;
    for (std::size_t h = 0; h < ng; ++h) row += coarse.relative(g, h);
    if (row > 1.0) {
      for (std::size_t h = 0; h < ng; ++h) coarse.relative(g, h) /= row;
    }
  }
  return coarse;
}

AllocationPlan HierarchicalAllocator::allocate(std::size_t a, double amount) const {
  AGORA_REQUIRE(a < sys_.size(), "unknown principal");
  AGORA_REQUIRE(amount >= 0.0 && std::isfinite(amount), "request must be non-negative");
  const std::size_t n = sys_.size();
  const std::size_t ga = group_of_[a];

  obs::ScopedTimer plan_timer(obs_plan_seconds_);
  AllocationPlan plan;
  plan.capacity_before = full_report_.capacity;
  plan.draw.assign(n, 0.0);

  // --- Fast path: the requester's own group can satisfy the request. ------
  {
    std::size_t local_a = 0;
    for (std::size_t m = 0; m < groups_[ga].members.size(); ++m)
      if (groups_[ga].members[m] == a) local_a = m;
    Allocator& group_alloc = group_allocator(ga);
    if (group_alloc.available_to(local_a) >= amount - 1e-9) {
      const AllocationPlan sub_plan = group_alloc.allocate(local_a, amount);
      if (sub_plan.satisfied()) {
        obs_fast_path_->inc();
        for (std::size_t m = 0; m < groups_[ga].members.size(); ++m)
          plan.draw[groups_[ga].members[m]] = sub_plan.draw[m];
        plan.status = PlanStatus::Satisfied;
        plan.certified = sub_plan.certified;
        plan.solver_fallbacks = sub_plan.solver_fallbacks;
        plan.lp_iterations = sub_plan.lp_iterations;
        plan.capacity_after = plan.capacity_before;
        // Report theta with the same meaning as the flat allocator: the
        // largest *global* availability drop (the group LP's theta only
        // covers the subgroup).
        plan.theta = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          double drop = 0.0;
          for (std::size_t k = 0; k < n; ++k)
            drop += plan.draw[k] * (k == i ? sys_.retained[i] : full_report_.shares(k, i));
          plan.capacity_after[i] = plan.capacity_before[i] - drop;
          plan.theta = std::max(plan.theta, drop);
        }
        return plan;
      }
    }
  }

  // --- Coarse level: distribute the request across groups. -----------------
  obs_coarse_solves_->inc();
  const AllocationPlan coarse_plan = coarse_allocator().allocate(ga, amount);
  plan.lp_iterations += coarse_plan.lp_iterations;
  plan.solver_fallbacks += coarse_plan.solver_fallbacks;
  bool all_certified = coarse_plan.certified;
  if (!coarse_plan.satisfied()) {
    obs_flat_fallbacks_->inc();
    // The coarse model under-approximates reachable capacity (it collapses
    // member-level detail); fall back to the flat LP before giving up.
    AllocationPlan flat_plan = flat_allocator().allocate(a, amount);
    flat_plan.lp_iterations += plan.lp_iterations;
    return flat_plan;
  }

  // --- Fine level: split each group's contribution among its members. -----
  double total_theta = 0.0;
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    const double x_g = coarse_plan.draw[g];
    if (x_g <= 1e-12) continue;
    const auto& members = groups_[g].members;

    // Distribute x_g among members: minimize the max member draw subject to
    // each member's entitlement toward the requester in the full system.
    lp::ModelBuilder mb(lp::Sense::Minimize);
    std::vector<lp::Var> d(members.size());
    for (std::size_t m = 0; m < members.size(); ++m) {
      const std::size_t i = members[m];
      const double cap = i == a ? sys_.capacity[a] : full_report_.entitlement(i, a);
      d[m] = mb.add_var(0.0, cap);
    }
    const lp::Var t = mb.add_var(0.0);
    mb.add(lp::sum(d) == x_g);
    for (std::size_t m = 0; m < members.size(); ++m) mb.add(1.0 * d[m] - 1.0 * t <= 0.0);
    mb.minimize(lp::LinExpr(t));
    obs_fine_solves_->inc();
    lp::SolveResult r;
    if (opts_.certify) {
      lp::PipelineResult pr = fine_pipeline_.solve(mb.problem());
      plan.solver_fallbacks += pr.fallbacks;
      all_certified = all_certified && pr.certified();
      r = std::move(pr.result);
      if (!pr.certified()) r.status = lp::Status::IterationLimit;  // force fallback below
    } else {
      lp::SolveOptions fine = opts_.solve;
      fine.backend = lp::Backend::Tableau;
      r = lp::solve(mb.problem(), fine);
    }
    plan.lp_iterations += r.iterations;
    if (r.status != lp::Status::Optimal) {
      // Member entitlements cannot cover the coarse assignment (or its
      // answer did not certify); flat solve.
      obs_flat_fallbacks_->inc();
      AllocationPlan flat_plan = flat_allocator().allocate(a, amount);
      flat_plan.lp_iterations += plan.lp_iterations;
      return flat_plan;
    }
    for (std::size_t m = 0; m < members.size(); ++m) plan.draw[members[m]] = r.x[d[m].index];
    total_theta = std::max(total_theta, r.x[t.index]);
  }

  plan.status = PlanStatus::Satisfied;
  plan.certified = all_certified;
  (void)total_theta;  // fine-level balance metric; global theta reported below
  plan.capacity_after = plan.capacity_before;
  plan.theta = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double drop = 0.0;
    for (std::size_t k = 0; k < n; ++k)
      drop += plan.draw[k] * (k == i ? sys_.retained[i] : full_report_.shares(k, i));
    plan.capacity_after[i] = plan.capacity_before[i] - drop;
    plan.theta = std::max(plan.theta, drop);
  }
  return plan;
}

void HierarchicalAllocator::propagate_capacities() {
  rebuild();
  // Capacity motion does not change share matrices, so live caches are
  // refreshed in place; the coarse system's shares *are* capacity-weighted,
  // so that cache is dropped and lazily rebuilt.
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    if (!group_cache_[g]) continue;
    std::vector<double> caps(groups_[g].members.size());
    for (std::size_t m = 0; m < caps.size(); ++m) caps[m] = sys_.capacity[groups_[g].members[m]];
    group_cache_[g]->set_capacities(std::move(caps));
  }
  if (flat_cache_) flat_cache_->set_capacities(sys_.capacity);
  coarse_cache_.reset();
}

void HierarchicalAllocator::apply(const AllocationPlan& plan) {
  AGORA_REQUIRE(plan.satisfied(), "cannot apply an unsatisfied plan");
  AGORA_REQUIRE(plan.draw.size() == sys_.size(), "plan size mismatch");
  for (std::size_t i = 0; i < sys_.size(); ++i)
    sys_.capacity[i] = std::max(0.0, sys_.capacity[i] - plan.draw[i]);
  propagate_capacities();
}

void HierarchicalAllocator::release(const std::vector<double>& give_back) {
  AGORA_REQUIRE(give_back.size() == sys_.size(), "release size mismatch");
  for (std::size_t i = 0; i < sys_.size(); ++i) {
    AGORA_REQUIRE(give_back[i] >= 0.0, "release must be non-negative");
    sys_.capacity[i] += give_back[i];
  }
  propagate_capacities();
}

void HierarchicalAllocator::set_capacities(std::span<const double> v) {
  AGORA_REQUIRE(v.size() == sys_.size(), "capacity vector size mismatch");
  for (double x : v) AGORA_REQUIRE(x >= 0.0 && std::isfinite(x), "capacities must be >= 0");
  if (std::equal(v.begin(), v.end(), sys_.capacity.begin())) return;
  sys_.capacity.assign(v.begin(), v.end());
  propagate_capacities();
}

}  // namespace agora::alloc
