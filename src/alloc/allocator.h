// allocator.h -- LP-based enforcement of sharing agreements (Section 3).
//
// Given an AgreementSystem and a request (principal A wants amount x of the
// resource), the allocator decides which principals' physical capacity to
// draw on, such that
//
//   * every draw is covered by a (possibly transitive) agreement:
//       0 <= d_k <= U_kA (entitlement of A at k; own node bounded by V_A),
//   * the request is met:  sum_k d_k = x,
//   * the *global perturbation* theta = max_i (C_i - C'_i) is minimized,
//     leaving the system maximally able to serve future requests from any
//     principal (the paper's optimization criterion).
//
// Two formulations are provided and cross-checked in tests:
//
//   * Compact: n draw variables + theta. The capacity drop at i is the
//     linear map  drop_i = sum_k d_k * That_ki  with That_ii = retained_i
//     and That_ki = K_ki, so the whole model is (n+1) variables and (n+1)
//     rows. This is what the simulator uses.
//   * FullPaper: the paper's verbatim variable set -- I'_ij, C'_i, V'_i and
//     theta, i.e. n^2 + n + 1 variables with constraints (1)-(6). Useful
//     for fidelity and as a stress test for the LP substrate.
//
// Constraint (3) of the paper, C'_A = C_A - x, conflicts with constraint
// (5) whenever capacity is drawn over an agreement with share < 1 (see
// DESIGN.md). EqualityMode::Relaxed (default) drops (3); Exact keeps it and
// falls back to Relaxed when it renders the program infeasible.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>

#include "agree/capacity.h"
#include "agree/matrices.h"
#include "alloc/allocator_base.h"
#include "alloc/model_cache.h"
#include "alloc/plan.h"
#include "lp/certify.h"
#include "lp/problem.h"
#include "lp/result.h"
#include "lp/solve_pipeline.h"

namespace agora::alloc {

/// Relaxed-order counter that stays copyable/movable (Allocator instances are
/// moved into engine shards); a copy carries the value, not the identity.
struct RelaxedCounter {
  RelaxedCounter() = default;
  RelaxedCounter(const RelaxedCounter& o) : v(o.load()) {}
  RelaxedCounter& operator=(const RelaxedCounter& o) {
    v.store(o.load(), std::memory_order_relaxed);
    return *this;
  }
  void inc() { v.fetch_add(1, std::memory_order_relaxed); }
  std::uint64_t load() const { return v.load(std::memory_order_relaxed); }
  std::atomic<std::uint64_t> v{0};
};

enum class Formulation { Compact, FullPaper };
enum class EqualityMode { Relaxed, Exact };

struct AllocatorOptions {
  agree::TransitiveOptions transitive;  ///< level limit etc. (Figs 8-11)
  Formulation formulation = Formulation::Compact;
  EqualityMode equality = EqualityMode::Relaxed;
  /// Every LP knob in one struct (see lp/solve.h): backend choice, presolve
  /// switch, basis representation, iteration caps, tolerances. The defaults
  /// here deliberately diverge from lp::SolveOptions' own to preserve the
  /// allocator's historical behavior: tableau backend, and presolve off --
  /// the allocator's hot paths patch a cached model whose structure presolve
  /// would rebuild per request (and the warm-started workspace path skips
  /// presolve regardless). Presolve pays off for the FullPaper formulation,
  /// whose flow equalities it can collapse.
  lp::SolveOptions solve = [] {
    lp::SolveOptions o;
    o.backend = lp::Backend::Tableau;
    o.presolve = false;
    return o;
  }();
  /// Reuse the compact model structure (and, for the Revised engine, the
  /// previous optimal basis as a warm start) across allocate() calls. The
  /// returned plans are identical either way; this only removes per-request
  /// model rebuilding and solver allocations. The reuse state is per
  /// Allocator and not synchronized: turn this off if one Allocator instance
  /// must serve concurrent allocate() calls. Compact relaxed solves only
  /// (exact mode and presolve always take the rebuild path).
  bool reuse_context = true;
  /// Verify every LP answer against the original problem (lp::Verifier) and
  /// escalate through the staged solve chain (lp::SolvePipeline) until one
  /// certifies. A consult whose chain is exhausted yields an explicit
  /// PlanStatus::Denied -- never an uncertified grant. Certification always
  /// checks against the problem actually posed: when presolve is on, the
  /// pipeline maps the reduced answer back (postsolve) before verifying.
  bool certify = true;
  /// Admission fast path: a request that fits inside the requester's own
  /// retained entitlement (U_aa) is granted as the self-draw plan
  /// d = amount * e_a with theta = amount * max_i That_ai, skipping the LP
  /// entirely. The plan is still certified -- lp::Verifier::certify_admission
  /// proves it feasible against the current compact model -- so the "no
  /// uncertified grant" invariant holds, but theta is the self-draw
  /// perturbation, not the LP minimum (the LP may spread the draw thinner).
  /// Off by default; turn on where throughput beats perturbation optimality
  /// (see DESIGN.md section 13). Requires the Compact/Relaxed reuse_context
  /// configuration; other configurations ignore the flag.
  bool fast_path = false;
  /// Telemetry destination, propagated into the solve pipeline. Metric
  /// handles are resolved once at Allocator construction.
  obs::Sink sink = obs::Sink::global();
};

class Allocator : public AllocatorBase {
 public:
  Allocator(agree::AgreementSystem sys, AllocatorOptions opts = {});

  /// Availability report (T/K shares, entitlements U, capacities C).
  const agree::CapacityReport& capacities() const { return report_; }
  const agree::AgreementSystem& system() const override { return sys_; }
  std::size_t size() const override { return sys_.size(); }

  /// Decide an allocation for principal `a` requesting `amount`. Does not
  /// mutate the system; call apply() to commit the plan.
  AllocationPlan allocate(std::size_t a, double amount) const override;

  /// Largest request principal `a` could have satisfied right now (C_a).
  double available_to(std::size_t a) const override { return report_.capacity.at(a); }

  /// Commit a plan: subtract draws from capacities and recompute the
  /// availability report.
  void apply(const AllocationPlan& plan) override;

  /// Return capacity to principals (e.g. when borrowed work completes).
  void release(const std::vector<double>& give_back) override;

  /// Replace all capacities (the simulator refreshes V_i each epoch from
  /// LRM reports) without touching the agreement matrices. A no-op (skipping
  /// the O(n^2) availability refresh) when the vector is unchanged. The span
  /// overload copies into existing storage and is allocation-free.
  void set_capacities(std::vector<double> v);
  void set_capacities(std::span<const double> v) override;

  /// Degradation telemetry of the certified solve chain (attempts,
  /// certification failures, fallback depth, solver health counters).
  /// All-zero when `certify` is off.
  const lp::PipelineStats* solver_stats() const override { return &pipeline_.stats(); }

  /// Fast-path telemetry (zero unless AllocatorOptions::fast_path). Readable
  /// from other threads (the engine aggregates these into EngineStats).
  std::uint64_t fastpath_granted() const { return fastpath_granted_.load(); }
  std::uint64_t fastpath_fallthrough() const { return fastpath_fallthrough_.load(); }

 private:
  /// Attempt the theta<=1 self-draw grant; true when `plan` was filled with a
  /// certified Satisfied plan, false to fall through to the LP.
  bool try_fast_path(std::size_t a, double amount, AllocationPlan& plan) const;
  AllocationPlan solve_compact(std::size_t a, double amount, bool exact) const;
  AllocationPlan solve_full(std::size_t a, double amount, bool exact) const;
  lp::SolveResult run_solver(const lp::Problem& p) const;
  /// Certified path: run the staged pipeline and record certification
  /// outcome + fallback depth on the plan.
  lp::SolveResult run_certified(const lp::Problem& p, lp::SolveWorkspace* ws,
                                AllocationPlan& plan) const;
  /// Refresh entitlements/capacities from the cached share matrix. The
  /// transitive closure depends only on S, so capacity updates (which the
  /// simulator performs every scheduling epoch) stay O(n^2).
  void refresh_availability();

  agree::AgreementSystem sys_;
  AllocatorOptions opts_;
  agree::CapacityReport report_;
  /// Cached registry handles (see obs/metrics.h); plan counters mutate
  /// behind const allocate().
  obs::LogHistogram* obs_plan_seconds_ = nullptr;
  obs::Counter* obs_cache_hits_ = nullptr;
  obs::Counter* obs_cache_misses_ = nullptr;
  obs::Counter* obs_clamp_k_ = nullptr;
  obs::Counter* obs_clamp_u_ = nullptr;
  obs::Counter* obs_plans_satisfied_ = nullptr;
  obs::Counter* obs_plans_insufficient_ = nullptr;
  obs::Counter* obs_plans_denied_ = nullptr;
  obs::Counter* obs_plans_failed_ = nullptr;
  obs::Counter* obs_fastpath_granted_ = nullptr;
  obs::Counter* obs_fastpath_fallthrough_ = nullptr;
  /// Lazily built compact-model structure + solver workspace; logically a
  /// memo of (sys_, report_), hence mutable behind const allocate().
  mutable AllocationModelCache cache_;
  /// Certified solve chain (statistics mutate behind const allocate()).
  mutable lp::SolvePipeline pipeline_;
  /// Admission-certification scratch for the fast path.
  mutable lp::Verifier verifier_;
  mutable std::vector<double> fast_x_;
  mutable RelaxedCounter fastpath_granted_;
  mutable RelaxedCounter fastpath_fallthrough_;
};

}  // namespace agora::alloc
