#include "alloc/endpoint.h"

#include <algorithm>
#include <cmath>

namespace agora::alloc {

AllocationPlan endpoint_allocate(const agree::AgreementSystem& sys, std::size_t a,
                                 double amount) {
  sys.validate(/*allow_overdraft=*/true);
  AGORA_REQUIRE(a < sys.size(), "unknown principal");
  AGORA_REQUIRE(amount >= 0.0 && std::isfinite(amount), "request must be non-negative");
  const std::size_t n = sys.size();

  AllocationPlan plan;
  plan.draw.assign(n, 0.0);
  plan.capacity_before = sys.capacity;

  // What each neighbor k agreed to provide to a directly.
  std::vector<double> cap(n, 0.0);
  std::vector<double> weight(n, 0.0);
  double weight_total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    if (k == a) continue;
    cap[k] = std::min(sys.capacity[k] * sys.relative(k, a) + sys.absolute(k, a),
                      sys.capacity[k]);
    weight[k] = sys.relative(k, a) + (sys.capacity[k] > 0.0
                                          ? sys.absolute(k, a) / sys.capacity[k]
                                          : 0.0);
    weight_total += weight[k];
  }

  // Local capacity first is NOT what the paper's baseline does -- it pushes
  // the queued overflow outward proportionally. We mirror that: split
  // `amount` across neighbors by weight, water-fill the caps, and keep the
  // remainder local.
  double remaining = amount;
  if (weight_total > 0.0) {
    std::vector<bool> open(n, false);
    double open_weight = weight_total;
    for (std::size_t k = 0; k < n; ++k) open[k] = k != a && weight[k] > 0.0;
    // Proportional refill: at most n rounds (each round closes >= 1 lane).
    for (std::size_t round = 0; round < n && remaining > 1e-12 && open_weight > 1e-15;
         ++round) {
      const double unit = remaining / open_weight;
      bool closed_any = false;
      double distributed = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        if (!open[k]) continue;
        const double want = unit * weight[k];
        const double room = cap[k] - plan.draw[k];
        const double take = std::min(want, room);
        plan.draw[k] += take;
        distributed += take;
        if (take >= room - 1e-15) {
          open[k] = false;
          open_weight -= weight[k];
          closed_any = true;
        }
      }
      remaining -= distributed;
      if (!closed_any) break;  // everything fit
    }
  }
  // Remainder is served from the local queue.
  plan.draw[a] += std::max(0.0, remaining);

  plan.status = PlanStatus::Satisfied;
  plan.capacity_after.assign(n, 0.0);
  double max_drop = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    plan.capacity_after[i] = plan.capacity_before[i] - plan.draw[i];
    max_drop = std::max(max_drop, plan.draw[i]);
  }
  plan.theta = max_drop;  // local view of perturbation, for reporting only
  return plan;
}

}  // namespace agora::alloc
