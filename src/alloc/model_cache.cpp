#include "alloc/model_cache.h"

#include "lp/model_builder.h"

namespace agora::alloc {

void AllocationModelCache::build(const agree::AgreementSystem& sys,
                                 const agree::CapacityReport& report) {
  const std::size_t n = sys.size();
  lp::ModelBuilder mb(lp::Sense::Minimize);
  // Same variable and row order as the historical per-request build in
  // Allocator::solve_compact, but unnamed. Bounds/rhs are placeholders.
  std::vector<lp::Var> d = mb.add_vars(n, 0.0, 0.0);
  const lp::Var theta = mb.add_var(0.0);

  mb.add(lp::sum(d) == 0.0, "demand");

  for (std::size_t i = 0; i < n; ++i) {
    lp::LinExpr drop;
    for (std::size_t k = 0; k < n; ++k) {
      const double coeff = k == i ? sys.retained[i] : report.shares(k, i);
      if (coeff > 0.0) drop += coeff * d[k];
    }
    mb.add(drop - 1.0 * theta <= 0.0, "perturb");
  }

  mb.minimize(lp::LinExpr(theta));
  problem_ = std::move(mb.problem());
  n_ = n;
  built_ = true;
  ws_.invalidate();
}

void AllocationModelCache::patch(const agree::CapacityReport& report, std::size_t a,
                                 double amount) {
  AGORA_REQUIRE(built_, "patch() before build()");
  for (std::size_t k = 0; k < n_; ++k)
    problem_.set_bounds(k, 0.0, report.entitlement(k, a));
  problem_.set_rhs(0, amount);
}

}  // namespace agora::alloc
