#include "alloc/multi_resource.h"

#include <algorithm>
#include <limits>

#include "util/threadpool.h"

namespace agora::alloc {

bool MultiPlan::satisfied() const {
  if (per_resource.empty()) return false;
  return std::all_of(per_resource.begin(), per_resource.end(),
                     [](const AllocationPlan& p) { return p.satisfied(); });
}

MultiResourceAllocator::MultiResourceAllocator(std::vector<agree::AgreementSystem> systems,
                                               std::vector<std::string> resource_names,
                                               AllocatorOptions opts)
    : names_(std::move(resource_names)) {
  AGORA_REQUIRE(!systems.empty(), "need at least one resource system");
  AGORA_REQUIRE(systems.size() == names_.size(), "system/name count mismatch");
  const std::size_t n = systems[0].size();
  for (const auto& s : systems)
    AGORA_REQUIRE(s.size() == n, "all resource systems must cover the same principals");
  allocators_.reserve(systems.size());
  for (auto& s : systems) allocators_.emplace_back(std::move(s), opts);
}

MultiPlan MultiResourceAllocator::allocate(const MultiRequest& req, bool parallel) const {
  AGORA_REQUIRE(req.amounts.size() == allocators_.size(),
                "request must name an amount per resource");
  MultiPlan plan;
  plan.per_resource.resize(allocators_.size());
  if (parallel && allocators_.size() > 1) {
    ThreadPool::shared().parallel_for(allocators_.size(), [&](std::size_t r) {
      plan.per_resource[r] = allocators_[r].allocate(req.principal, req.amounts[r]);
    });
  } else {
    for (std::size_t r = 0; r < allocators_.size(); ++r)
      plan.per_resource[r] = allocators_[r].allocate(req.principal, req.amounts[r]);
  }
  return plan;
}

void MultiResourceAllocator::apply(const MultiPlan& plan) {
  AGORA_REQUIRE(plan.satisfied(), "cannot apply a partially satisfied multi-plan");
  AGORA_REQUIRE(plan.per_resource.size() == allocators_.size(), "plan size mismatch");
  for (std::size_t r = 0; r < allocators_.size(); ++r)
    allocators_[r].apply(plan.per_resource[r]);
}

agree::AgreementSystem make_bundle(const std::vector<agree::AgreementSystem>& systems,
                                   const std::vector<double>& weights) {
  AGORA_REQUIRE(!systems.empty(), "need at least one component system");
  AGORA_REQUIRE(systems.size() == weights.size(), "system/weight count mismatch");
  const std::size_t n = systems[0].size();
  bool any = false;
  for (std::size_t r = 0; r < systems.size(); ++r) {
    AGORA_REQUIRE(systems[r].size() == n, "component systems must cover the same principals");
    AGORA_REQUIRE(weights[r] >= 0.0, "bundle weights must be non-negative");
    if (weights[r] > 0.0) any = true;
  }
  AGORA_REQUIRE(any, "bundle needs at least one positive weight");

  agree::AgreementSystem b(n);
  const double inf = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    double cap = inf, ret = 1.0;
    for (std::size_t r = 0; r < systems.size(); ++r) {
      if (weights[r] == 0.0) continue;
      cap = std::min(cap, systems[r].capacity[i] / weights[r]);
      ret = std::min(ret, systems[r].retained[i]);
    }
    b.capacity[i] = cap;
    b.retained[i] = ret;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      double s = inf, a = inf;
      for (std::size_t r = 0; r < systems.size(); ++r) {
        if (weights[r] == 0.0) continue;
        s = std::min(s, systems[r].relative(i, j));
        a = std::min(a, systems[r].absolute(i, j) / weights[r]);
      }
      b.relative(i, j) = s;
      b.absolute(i, j) = a;
    }
  }
  return b;
}

}  // namespace agora::alloc
