#include "alloc/allocator.h"

#include <algorithm>
#include <cmath>

#include "lp/model_builder.h"
#include "lp/solve.h"
#include "obs/timer.h"

namespace agora::alloc {

namespace {
constexpr double kFeasTol = 1e-9;

lp::PipelineOptions pipeline_options(const AllocatorOptions& opts) {
  lp::PipelineOptions po;
  po.solve = opts.solve;
  po.sink = opts.sink;
  return po;
}
}  // namespace

Allocator::Allocator(agree::AgreementSystem sys, AllocatorOptions opts)
    : sys_(std::move(sys)),
      opts_(opts),
      pipeline_(pipeline_options(opts)),
      verifier_(opts.solve.tols) {
  sys_.validate(/*allow_overdraft=*/true);
  obs_plan_seconds_ = &opts_.sink.histogram("alloc.plan.seconds");
  obs_cache_hits_ = &opts_.sink.counter("alloc.model_cache.hits");
  obs_cache_misses_ = &opts_.sink.counter("alloc.model_cache.misses");
  obs_clamp_k_ = &opts_.sink.counter("alloc.clamp.overdraft_k");
  obs_clamp_u_ = &opts_.sink.counter("alloc.clamp.entitlement_u");
  obs_plans_satisfied_ = &opts_.sink.counter("alloc.plans.satisfied");
  obs_plans_insufficient_ = &opts_.sink.counter("alloc.plans.insufficient");
  obs_plans_denied_ = &opts_.sink.counter("alloc.plans.denied");
  obs_plans_failed_ = &opts_.sink.counter("alloc.plans.solver_failed");
  obs_fastpath_granted_ = &opts_.sink.counter("alloc.fastpath.granted");
  obs_fastpath_fallthrough_ = &opts_.sink.counter("alloc.fastpath.fallthrough");
  // The expensive part (simple-path enumeration) depends only on S; do it
  // once and keep the K matrix cached across capacity updates.
  Matrix t = agree::transitive_shares(sys_.relative, opts_.transitive);
  if constexpr (obs::kEnabled) {
    std::uint64_t clamped = 0;
    for (double v : t.flat())
      if (v > 1.0) ++clamped;
    obs_clamp_k_->inc(clamped);
  }
  report_.shares = agree::overdraft_clamp(std::move(t));
  refresh_availability();
}

void Allocator::refresh_availability() {
  const std::size_t n = sys_.size();
  std::uint64_t u_clamps = 0;
  report_.entitlement.assign(n, n);  // reuses storage on repeated refreshes
  report_.capacity.assign(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    const double vk = sys_.capacity[k];
    report_.entitlement(k, k) = sys_.retained[k] * vk;
    for (std::size_t i = 0; i < n; ++i) {
      if (i == k) continue;
      const double raw = vk * report_.shares(k, i) + sys_.absolute(k, i);
      if (raw > vk) ++u_clamps;
      report_.entitlement(k, i) = std::min(raw, vk);
    }
  }
  obs_clamp_u_->inc(u_clamps);
  for (std::size_t i = 0; i < n; ++i) {
    double c = report_.entitlement(i, i);
    for (std::size_t k = 0; k < n; ++k)
      if (k != i) c += report_.entitlement(k, i);
    report_.capacity[i] = c;
  }
}

lp::SolveResult Allocator::run_solver(const lp::Problem& p) const {
  return lp::solve(p, opts_.solve);
}

lp::SolveResult Allocator::run_certified(const lp::Problem& p, lp::SolveWorkspace* ws,
                                         AllocationPlan& plan) const {
  lp::PipelineResult pr = ws ? pipeline_.solve(p, ws) : pipeline_.solve(p);
  plan.certified = pr.certified();
  plan.solver_fallbacks = pr.fallbacks;
  return std::move(pr.result);
}

AllocationPlan Allocator::allocate(std::size_t a, double amount) const {
  AGORA_REQUIRE(a < sys_.size(), "unknown principal");
  AGORA_REQUIRE(amount >= 0.0 && std::isfinite(amount), "request must be non-negative");

  obs::ScopedTimer plan_timer(obs_plan_seconds_);
  const bool exact = opts_.equality == EqualityMode::Exact;
  if (opts_.fast_path && !exact && opts_.formulation == Formulation::Compact &&
      opts_.reuse_context && !opts_.solve.presolve) {
    AllocationPlan fast;
    if (try_fast_path(a, amount, fast)) {
      if constexpr (obs::kEnabled) obs_plans_satisfied_->inc();
      return fast;
    }
  }
  AllocationPlan plan = opts_.formulation == Formulation::Compact
                            ? solve_compact(a, amount, exact)
                            : solve_full(a, amount, exact);
  if (exact && plan.status == PlanStatus::Insufficient &&
      report_.capacity[a] >= amount - kFeasTol) {
    // Constraint (3) made the paper-exact program infeasible even though
    // capacity suffices; fall back to the relaxed model (see DESIGN.md).
    plan = opts_.formulation == Formulation::Compact ? solve_compact(a, amount, false)
                                                     : solve_full(a, amount, false);
    plan.exact_mode_fell_back = true;
  }
  if constexpr (obs::kEnabled) {
    switch (plan.status) {
      case PlanStatus::Satisfied: obs_plans_satisfied_->inc(); break;
      case PlanStatus::Insufficient: obs_plans_insufficient_->inc(); break;
      case PlanStatus::Denied: obs_plans_denied_->inc(); break;
      case PlanStatus::SolverFailed: obs_plans_failed_->inc(); break;
    }
  }
  return plan;
}

bool Allocator::try_fast_path(std::size_t a, double amount, AllocationPlan& plan) const {
  const std::size_t n = sys_.size();
  // Self-draw feasibility test: d = amount * e_a respects its bound exactly
  // when the amount fits inside the requester's retained entitlement U_aa.
  if (amount > report_.entitlement(a, a)) {
    fastpath_fallthrough_.inc();
    if constexpr (obs::kEnabled) obs_fastpath_fallthrough_->inc();
    return false;
  }

  // theta for the self-draw plan: the drop at i is amount * That_ai with
  // That_aa = retained_a and That_ai = K_ai, every coefficient <= 1 (clamped
  // transitive shares, retained in [0,1]), hence "theta <= 1 per unit" --
  // the perturbation never exceeds the request itself.
  double maxcoeff = sys_.retained[a];
  const double* row = report_.shares.row(a).data();
  for (std::size_t i = 0; i < n; ++i)
    if (i != a && row[i] > maxcoeff) maxcoeff = row[i];
  const double theta = amount * maxcoeff;

  // Certify admission against the CURRENT compact model -- the same problem
  // object the LP would have solved -- so a grant from this path carries the
  // same "independently verified against the problem data" guarantee as a
  // pipeline answer (minus optimality, which this path deliberately trades).
  if (!cache_.built()) {
    obs_cache_misses_->inc();
    cache_.build(sys_, report_);
  }
  cache_.patch(report_, a, amount);
  fast_x_.assign(n + 1, 0.0);
  fast_x_[a] = amount;
  fast_x_[n] = theta;
  const lp::Certificate cert = verifier_.certify_admission(cache_.problem(), fast_x_, theta);
  if (!cert.certified) {
    fastpath_fallthrough_.inc();
    if constexpr (obs::kEnabled) obs_fastpath_fallthrough_->inc();
    return false;
  }

  plan.status = PlanStatus::Satisfied;
  plan.certified = true;
  plan.theta = theta;
  plan.lp_iterations = 0;
  plan.draw.assign(n, 0.0);
  plan.draw[a] = amount;
  plan.capacity_before = report_.capacity;
  plan.capacity_after.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double coeff = i == a ? sys_.retained[a] : row[i];
    plan.capacity_after[i] = report_.capacity[i] - amount * coeff;
  }
  fastpath_granted_.inc();
  if constexpr (obs::kEnabled) obs_fastpath_granted_->inc();
  return true;
}

AllocationPlan Allocator::solve_compact(std::size_t a, double amount, bool exact) const {
  const std::size_t n = sys_.size();
  AllocationPlan plan;
  plan.capacity_before = report_.capacity;

  // In both branches below, variables are d_0..d_{n-1} then theta, so the
  // extraction after the solve is shared.
  lp::SolveResult r;
  if (!exact && opts_.reuse_context && !opts_.solve.presolve) {
    // Amortized path: the model structure is built once per Allocator;
    // each request only patches the d_k bounds (U_kA) and the demand rhs.
    if (!cache_.built()) {
      obs_cache_misses_->inc();
      cache_.build(sys_, report_);
    } else {
      obs_cache_hits_->inc();
    }
    cache_.patch(report_, a, amount);
    const bool revised = opts_.solve.backend == lp::Backend::Revised;
    if (opts_.certify) {
      r = run_certified(cache_.problem(), revised ? &cache_.workspace() : nullptr, plan);
    } else {
      r = lp::solve(cache_.problem(), opts_.solve, revised ? &cache_.workspace() : nullptr);
    }
  } else {
    lp::ModelBuilder mb(lp::Sense::Minimize);
    // Draw variables bounded by A's entitlement at each node (U_kA; the own
    // node's bound is retained_a * V_a, i.e. entitlement(a, a)).
    std::vector<lp::Var> d(n);
    for (std::size_t k = 0; k < n; ++k)
      d[k] = mb.add_var("d[" + std::to_string(k) + "]", 0.0, report_.entitlement(k, a));
    const lp::Var theta = mb.add_var("theta", 0.0);

    mb.add(lp::sum(d) == amount, "demand");

    // Capacity drop at each principal i:  sum_k d_k * That_ki <= theta.
    for (std::size_t i = 0; i < n; ++i) {
      lp::LinExpr drop;
      for (std::size_t k = 0; k < n; ++k) {
        const double coeff = k == i ? sys_.retained[i] : report_.shares(k, i);
        if (coeff > 0.0) drop += coeff * d[k];
      }
      mb.add(drop - 1.0 * theta <= 0.0, "perturb[" + std::to_string(i) + "]");
    }

    if (exact) {
      // Paper constraint (3): the requester's capacity drops by exactly x.
      lp::LinExpr drop_a;
      for (std::size_t k = 0; k < n; ++k) {
        const double coeff = k == a ? sys_.retained[a] : report_.shares(k, a);
        if (coeff > 0.0) drop_a += coeff * d[k];
      }
      mb.add(drop_a == amount, "exact_drop_at_requester");
    }

    mb.minimize(lp::LinExpr(theta));
    r = opts_.certify ? run_certified(mb.problem(), nullptr, plan) : run_solver(mb.problem());
  }

  plan.lp_iterations = r.iterations;
  if (opts_.certify && !plan.certified) {
    // The staged chain could not produce a verifiable answer: deny rather
    // than grant on an unchecked solution.
    plan.status = PlanStatus::Denied;
    return plan;
  }
  if (r.status == lp::Status::IterationLimit) {
    plan.status = PlanStatus::SolverFailed;
    return plan;
  }
  if (r.status != lp::Status::Optimal) {
    plan.status = PlanStatus::Insufficient;
    return plan;
  }

  plan.status = PlanStatus::Satisfied;
  plan.draw.assign(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) plan.draw[k] = std::max(0.0, r.x[k]);
  plan.theta = r.x[n];
  plan.capacity_after.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double drop = 0.0;
    for (std::size_t k = 0; k < n; ++k)
      drop += plan.draw[k] * (k == i ? sys_.retained[i] : report_.shares(k, i));
    plan.capacity_after[i] = report_.capacity[i] - drop;
  }
  return plan;
}

AllocationPlan Allocator::solve_full(std::size_t a, double amount, bool exact) const {
  const std::size_t n = sys_.size();
  AllocationPlan plan;
  plan.capacity_before = report_.capacity;

  // The paper's variable set: V'_i, C'_i, I'_ij (i != j), theta
  // -- n^2 + n + 1 variables total (C' counts into the paper's n^2 + n + 1
  // as the I' matrix has n(n-1) entries).
  lp::ModelBuilder mb(lp::Sense::Minimize);
  std::vector<lp::Var> vprime(n), cprime(n);
  Matrix that = report_.shares;  // K_ki with zero diagonal

  for (std::size_t i = 0; i < n; ++i) {
    // Constraint (4): 0 <= V_i - V'_i <= I_iA (own node: <= V_A).
    const double max_draw = i == a ? sys_.capacity[a] : report_.entitlement(i, a);
    vprime[i] = mb.add_var("V'[" + std::to_string(i) + "]",
                           std::max(0.0, sys_.capacity[i] - max_draw), sys_.capacity[i]);
  }
  for (std::size_t i = 0; i < n; ++i)
    cprime[i] = mb.add_var("C'[" + std::to_string(i) + "]", 0.0, lp::kInfinity);
  const lp::Var theta = mb.add_var("theta", 0.0);

  // I'_ij variables plus constraint (1): I'_ij = V'_i * T_ij.
  std::vector<std::vector<lp::Var>> iprime(n, std::vector<lp::Var>(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      iprime[i][j] =
          mb.add_var("I'[" + std::to_string(i) + "][" + std::to_string(j) + "]", 0.0,
                     lp::kInfinity);
      mb.add(1.0 * iprime[i][j] - that(i, j) * vprime[i] == 0.0, "flow");
    }
  }

  // Constraint (2): C'_i = retained_i * V'_i + sum_{k != i} I'_ki.
  for (std::size_t i = 0; i < n; ++i) {
    lp::LinExpr rhs = sys_.retained[i] * vprime[i];
    for (std::size_t k = 0; k < n; ++k)
      if (k != i) rhs += lp::LinExpr(iprime[k][i]);
    mb.add(1.0 * cprime[i] - rhs == 0.0, "capacity");
  }

  // Constraint (3), exact mode only.
  if (exact) mb.add(1.0 * cprime[a] == report_.capacity[a] - amount, "exact");

  // Constraint (5): sum_i (V_i - V'_i) = x.
  lp::LinExpr drawn;
  for (std::size_t i = 0; i < n; ++i) drawn += -1.0 * vprime[i];
  mb.add(drawn == amount - sum(sys_.capacity), "demand");

  // Constraint (6): C_i - theta <= C'_i <= C_i.
  for (std::size_t i = 0; i < n; ++i) {
    mb.add(1.0 * cprime[i] + 1.0 * theta >= report_.capacity[i], "lower");
    mb.add(1.0 * cprime[i] <= report_.capacity[i], "upper");
  }

  mb.minimize(lp::LinExpr(theta));

  const lp::SolveResult r =
      opts_.certify ? run_certified(mb.problem(), nullptr, plan) : run_solver(mb.problem());
  plan.lp_iterations = r.iterations;
  if (opts_.certify && !plan.certified) {
    plan.status = PlanStatus::Denied;
    return plan;
  }
  if (r.status == lp::Status::IterationLimit) {
    plan.status = PlanStatus::SolverFailed;
    return plan;
  }
  if (r.status != lp::Status::Optimal) {
    plan.status = PlanStatus::Insufficient;
    return plan;
  }

  plan.status = PlanStatus::Satisfied;
  plan.draw.assign(n, 0.0);
  plan.capacity_after.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    plan.draw[i] = std::max(0.0, sys_.capacity[i] - r.x[vprime[i].index]);
    plan.capacity_after[i] = r.x[cprime[i].index];
  }
  plan.theta = r.x[theta.index];
  return plan;
}

void Allocator::apply(const AllocationPlan& plan) {
  AGORA_REQUIRE(plan.satisfied(), "cannot apply an unsatisfied plan");
  AGORA_REQUIRE(plan.draw.size() == sys_.size(), "plan size mismatch");
  bool changed = false;
  for (std::size_t i = 0; i < sys_.size(); ++i) {
    AGORA_REQUIRE(plan.draw[i] <= sys_.capacity[i] + 1e-7,
                  "plan draws more than a principal owns");
    const double next = std::max(0.0, sys_.capacity[i] - plan.draw[i]);
    if (next != sys_.capacity[i]) {
      sys_.capacity[i] = next;
      changed = true;
    }
  }
  // Entitlements depend only on capacities here, so a zero-delta plan (e.g.
  // an amount of 0, common in traces) skips the O(n^2) refresh.
  if (changed) refresh_availability();
}

void Allocator::release(const std::vector<double>& give_back) {
  AGORA_REQUIRE(give_back.size() == sys_.size(), "release size mismatch");
  bool changed = false;
  for (std::size_t i = 0; i < sys_.size(); ++i) {
    AGORA_REQUIRE(give_back[i] >= 0.0, "release must be non-negative");
    if (give_back[i] > 0.0) {
      sys_.capacity[i] += give_back[i];
      changed = true;
    }
  }
  if (changed) refresh_availability();
}

void Allocator::set_capacities(std::vector<double> v) {
  AGORA_REQUIRE(v.size() == sys_.size(), "capacity vector size mismatch");
  for (double x : v) AGORA_REQUIRE(x >= 0.0 && std::isfinite(x), "capacities must be >= 0");
  if (v == sys_.capacity) return;  // epoch refresh with unchanged loads
  sys_.capacity = std::move(v);
  refresh_availability();
}

void Allocator::set_capacities(std::span<const double> v) {
  AGORA_REQUIRE(v.size() == sys_.size(), "capacity vector size mismatch");
  for (double x : v) AGORA_REQUIRE(x >= 0.0 && std::isfinite(x), "capacities must be >= 0");
  if (std::equal(v.begin(), v.end(), sys_.capacity.begin())) return;
  sys_.capacity.assign(v.begin(), v.end());
  refresh_availability();
}

}  // namespace agora::alloc
