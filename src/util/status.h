// status.h -- the one error-reporting currency of agora's public surface.
//
// Before this existed, every layer spoke its own dialect: the allocator a
// PlanStatus enum, the LP layer lp::Status, util/error.h exceptions, rms
// replies a bool + reason string. agora::Status unifies them: every public
// entry point either returns a value (success), returns/carries a Status, or
// throws an exception from util/error.h that *maps to* a Status via
// to_status(). The full mapping is documented in DESIGN.md §11.5.
//
// Status is a small value type (code + optional message); Ok carries no
// message and never allocates.
#pragma once

#include <exception>
#include <string>
#include <utility>

namespace agora {

enum class StatusCode : int {
  Ok = 0,
  /// The request is well-formed but cannot be satisfied under the current
  /// agreements/capacities (maps from PlanStatus::Insufficient and
  /// lp::Status::Infeasible -- an expected outcome, not an error).
  Insufficient,
  /// Conservative denial: the certified solve chain was exhausted without a
  /// verifiable answer (PlanStatus::Denied). Never an uncertified grant.
  Denied,
  /// The solver gave up (iteration limit; PlanStatus::SolverFailed).
  SolverFailed,
  /// Caller violated an API precondition (PreconditionError).
  InvalidArgument,
  /// An internal invariant was violated -- a bug in agora (InternalError).
  Internal,
  /// I/O failure: trace files, CSV/JSONL export (IoError).
  Io,
  /// The target is shutting down or its queue rejected the work (e.g. an
  /// EnforcementEngine submit after stop(), or an AgoraService shedding
  /// load; wire replies may carry a retry-after hint alongside).
  Unavailable,
  /// The caller's deadline budget ran out before an answer was computed:
  /// the request was dropped, not solved (net deadline propagation,
  /// DESIGN.md §14.3). Distinct from Unavailable -- retrying immediately
  /// will not help a caller that has no time left.
  DeadlineExceeded,
};

inline const char* to_string(StatusCode c) {
  switch (c) {
    case StatusCode::Ok: return "ok";
    case StatusCode::Insufficient: return "insufficient";
    case StatusCode::Denied: return "denied";
    case StatusCode::SolverFailed: return "solver_failed";
    case StatusCode::InvalidArgument: return "invalid_argument";
    case StatusCode::Internal: return "internal";
    case StatusCode::Io: return "io";
    case StatusCode::Unavailable: return "unavailable";
    case StatusCode::DeadlineExceeded: return "deadline_exceeded";
  }
  return "unknown";
}

class [[nodiscard]] Status {
 public:
  Status() = default;  ///< Ok
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status insufficient(std::string m = {}) {
    return Status(StatusCode::Insufficient, std::move(m));
  }
  static Status denied(std::string m = {}) { return Status(StatusCode::Denied, std::move(m)); }
  static Status solver_failed(std::string m = {}) {
    return Status(StatusCode::SolverFailed, std::move(m));
  }
  static Status invalid_argument(std::string m = {}) {
    return Status(StatusCode::InvalidArgument, std::move(m));
  }
  static Status internal(std::string m = {}) {
    return Status(StatusCode::Internal, std::move(m));
  }
  static Status io(std::string m = {}) { return Status(StatusCode::Io, std::move(m)); }
  static Status unavailable(std::string m = {}) {
    return Status(StatusCode::Unavailable, std::move(m));
  }
  static Status deadline_exceeded(std::string m = {}) {
    return Status(StatusCode::DeadlineExceeded, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::Ok; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string to_string() const {
    std::string s = agora::to_string(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  friend bool operator==(const Status& a, const Status& b) { return a.code_ == b.code_; }

 private:
  StatusCode code_ = StatusCode::Ok;
  std::string message_;
};

}  // namespace agora
