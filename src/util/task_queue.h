// task_queue.h -- the blocking MPMC/MPSC queue underneath every worker
// thread in agora.
//
// Historically this machinery lived inline in ThreadPool (whose only client
// was multi_resource); the sharded enforcement engine needs the same
// primitive with two extra capabilities, so it is generalized here and
// ThreadPool is now one of its users:
//
//   * wait_pop    -- classic one-item blocking pop (ThreadPool workers),
//   * wait_drain  -- blocking *batch* pop: take EVERYTHING queued in one
//                    lock acquisition. This is what batch coalescing in the
//                    engine is built on: requests that landed on a shard
//                    while its worker was busy are drained together and
//                    solved back-to-back against the still-hot LP basis.
//
// close() wakes all waiters; pops drain remaining items first and only then
// report closure, so no submitted work is ever silently lost.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace agora {

template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Enqueue one item. Returns false (dropping the item) iff the queue is
  /// closed -- callers that must not lose work check the result.
  ///
  /// Wake-up hygiene: notify_one() is only issued when a consumer is
  /// actually parked in a wait (waiters_ > 0). When the worker is busy
  /// solving -- the common case under batch coalescing -- the push is one
  /// lock acquisition with no condvar syscall; the worker's own wait_drain
  /// re-check picks the item up. This removes the spurious-notify storm that
  /// showed up as tail-latency outliers in the scale_shards latency phase.
  bool push(T item) {
    bool wake;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
      count_.store(items_.size(), std::memory_order_relaxed);
      wake = waiters_ > 0;
    }
    if (wake) cv_.notify_one();
    return true;
  }

  /// Blocking single-item pop. Returns false when the queue is closed AND
  /// drained.
  bool wait_pop(T& out) {
    std::unique_lock<std::mutex> lock(mu_);
    wait_for_work(lock);
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    count_.store(items_.size(), std::memory_order_relaxed);
    return true;
  }

  /// Blocking batch pop: move every queued item into `out` (cleared first).
  /// Returns the batch size; 0 means closed-and-drained.
  std::size_t wait_drain(std::vector<T>& out) {
    out.clear();
    std::unique_lock<std::mutex> lock(mu_);
    wait_for_work(lock);
    while (!items_.empty()) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    count_.store(0, std::memory_order_relaxed);
    return out.size();
  }

  /// Non-blocking batch pop (for tests / shutdown sweeps).
  std::size_t try_drain(std::vector<T>& out) {
    out.clear();
    std::lock_guard<std::mutex> lock(mu_);
    while (!items_.empty()) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    count_.store(0, std::memory_order_relaxed);
    return out.size();
  }

  /// Stop accepting items and wake every waiter. Already-queued items are
  /// still handed out by subsequent pops.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  /// Lock-free depth estimate for telemetry gauges on hot submit paths --
  /// may lag concurrent pushes/pops by a step, never takes the queue lock.
  std::size_t size_approx() const { return count_.load(std::memory_order_relaxed); }

 private:
  /// Park until there is work or the queue closes, tracking the waiter so
  /// push() knows whether a notify is needed. waiters_ is only accessed
  /// under mu_, so no wake-up can be lost: a waiter either registered before
  /// the pusher's critical section (push sees waiters_ > 0 and notifies) or
  /// registers after it (the wait predicate sees the item and never sleeps).
  void wait_for_work(std::unique_lock<std::mutex>& lock) {
    ++waiters_;
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    --waiters_;
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  std::atomic<std::size_t> count_{0};
  std::size_t waiters_ = 0;
  bool closed_ = false;
};

}  // namespace agora
