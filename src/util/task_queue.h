// task_queue.h -- the blocking MPMC/MPSC queue underneath every worker
// thread in agora.
//
// Historically this machinery lived inline in ThreadPool (whose only client
// was multi_resource); the sharded enforcement engine needs the same
// primitive with two extra capabilities, so it is generalized here and
// ThreadPool is now one of its users:
//
//   * wait_pop    -- classic one-item blocking pop (ThreadPool workers),
//   * wait_drain  -- blocking *batch* pop: take EVERYTHING queued in one
//                    lock acquisition. This is what batch coalescing in the
//                    engine is built on: requests that landed on a shard
//                    while its worker was busy are drained together and
//                    solved back-to-back against the still-hot LP basis.
//
// close() wakes all waiters; pops drain remaining items first and only then
// report closure, so no submitted work is ever silently lost.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace agora {

template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Enqueue one item. Returns false (dropping the item) iff the queue is
  /// closed -- callers that must not lose work check the result.
  bool push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocking single-item pop. Returns false when the queue is closed AND
  /// drained.
  bool wait_pop(T& out) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Blocking batch pop: move every queued item into `out` (cleared first).
  /// Returns the batch size; 0 means closed-and-drained.
  std::size_t wait_drain(std::vector<T>& out) {
    out.clear();
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    while (!items_.empty()) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    return out.size();
  }

  /// Non-blocking batch pop (for tests / shutdown sweeps).
  std::size_t try_drain(std::vector<T>& out) {
    out.clear();
    std::lock_guard<std::mutex> lock(mu_);
    while (!items_.empty()) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    return out.size();
  }

  /// Stop accepting items and wake every waiter. Already-queued items are
  /// still handed out by subsequent pops.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace agora
