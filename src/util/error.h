// error.h -- error handling primitives shared by every agora module.
//
// We deliberately use exceptions for *programming errors and unsatisfiable
// preconditions* (bad model construction, dimension mismatches) and
// agora::Status for *expected outcomes* (an infeasible LP is not an error).
// Every exception type here carries the StatusCode it maps to, so layers
// that must not throw across a boundary (the enforcement engine's worker
// threads, future-based submit results) convert with to_status() instead of
// string-matching what() -- see DESIGN.md §11.5 for the full mapping.
#pragma once

#include <cstdio>
#include <stdexcept>
#include <string>

#include "util/status.h"

namespace agora {

/// Thrown when a caller violates an API precondition (bad dimensions,
/// out-of-range principal ids, malformed agreement matrices, ...).
class PreconditionError : public std::logic_error {
 public:
  explicit PreconditionError(const std::string& what) : std::logic_error(what) {}
  StatusCode code() const { return StatusCode::InvalidArgument; }
};

/// Thrown when an internal invariant is violated; indicates a bug in agora.
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
  StatusCode code() const { return StatusCode::Internal; }
};

/// Thrown for I/O failures (trace files, CSV output).
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what) : std::runtime_error(what) {}
  StatusCode code() const { return StatusCode::Io; }
};

/// The Status a caught agora exception denotes; unknown exception types map
/// to Internal (they indicate a bug escaping through an agora API).
inline Status to_status(const std::exception& e) {
  if (const auto* p = dynamic_cast<const PreconditionError*>(&e))
    return Status(p->code(), p->what());
  if (const auto* i = dynamic_cast<const InternalError*>(&e))
    return Status(i->code(), i->what());
  if (const auto* io = dynamic_cast<const IoError*>(&e)) return Status(io->code(), io->what());
  return Status::internal(e.what());
}

namespace detail {
[[noreturn]] inline void require_failed(const char* cond, const char* file, int line,
                                        const std::string& msg) {
  std::string full = std::string("precondition failed: ") + cond + " at " + file + ":" +
                     std::to_string(line);
  if (!msg.empty()) full += " -- " + msg;
  throw PreconditionError(full);
}

[[noreturn]] inline void invariant_failed(const char* cond, const char* file, int line,
                                          const std::string& msg) {
  std::string full = std::string("invariant violated: ") + cond + " at " + file + ":" +
                     std::to_string(line);
  if (!msg.empty()) full += " -- " + msg;
  throw InternalError(full);
}
}  // namespace detail

/// Precondition check: always on (cheap relative to the work the APIs do).
#define AGORA_REQUIRE(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) ::agora::detail::require_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

/// Internal invariant check.
#define AGORA_INVARIANT(cond, msg)                                          \
  do {                                                                      \
    if (!(cond)) ::agora::detail::invariant_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

}  // namespace agora
