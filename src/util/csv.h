// csv.h -- tabular output for the benchmark harnesses: CSV files for plotting
// and aligned text tables for the console.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace agora {

/// Column-oriented table. Add named columns, then rows of values; render as
/// CSV (machine-readable) or as an aligned console table (human-readable).
class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  std::size_t columns() const { return header_.size(); }
  std::size_t rows() const { return rows_.size(); }

  /// Append a row. Must match the column count.
  void add_row(std::vector<double> values);

  /// Value accessors (used by tests that pin down harness output).
  double at(std::size_t row, std::size_t col) const;
  const std::string& column_name(std::size_t col) const { return header_.at(col); }

  /// Write as CSV with the header row.
  void write_csv(std::ostream& os) const;
  /// Write to a file; throws IoError on failure.
  void save_csv(const std::string& path) const;
  /// Write as an aligned, human-readable table.
  void write_pretty(std::ostream& os, int precision = 4) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<double>> rows_;
};

/// Escape a string for CSV (quotes and commas).
std::string csv_escape(const std::string& s);

}  // namespace agora
