// stats.h -- streaming statistics, histograms, and time-sliced series used by
// the proxy simulator's metrics pipeline and the benchmark harnesses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/error.h"

namespace agora {

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm).
class StreamingStats {
 public:
  void add(double x);
  void merge(const StreamingStats& o);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }
  double total() const { return n_ == 0 ? 0.0 : mean_ * static_cast<double>(n_); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bucket histogram over [lo, hi) with overflow/underflow buckets;
/// supports quantile queries (linear interpolation within a bucket).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::uint64_t count() const { return total_; }

  /// q in [0,1]; returns an interpolated quantile estimate.
  double quantile(double q) const;

  double underflow() const { return static_cast<double>(under_); }
  double overflow() const { return static_cast<double>(over_); }
  std::size_t buckets() const { return counts_.size(); }
  std::uint64_t bucket_count(std::size_t i) const { return counts_.at(i); }
  double bucket_low(std::size_t i) const { return lo_ + static_cast<double>(i) * width_; }

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t under_ = 0;
  std::uint64_t over_ = 0;
  std::uint64_t total_ = 0;
};

/// Per-slot accumulator: partitions a [0, horizon) timeline into fixed-width
/// slots and keeps a StreamingStats per slot. This is exactly the "average
/// waiting time per 10-minute slot" series the paper's figures plot.
class SlottedSeries {
 public:
  SlottedSeries(double horizon, double slot_width);

  /// Record value `x` observed at time `t` (t is clamped into the horizon;
  /// the paper's traces wrap a 24h day so callers wrap before recording).
  void add(double t, double x);

  std::size_t slots() const { return slots_.size(); }
  double slot_width() const { return slot_width_; }
  double slot_mid(std::size_t i) const {
    return (static_cast<double>(i) + 0.5) * slot_width_;
  }
  const StreamingStats& slot(std::size_t i) const { return slots_.at(i); }

  /// Mean over all samples in all slots.
  double overall_mean() const;
  /// Largest per-slot mean (the "worst-case waiting time" the paper quotes).
  double peak_slot_mean() const;
  /// Index of the slot with the largest mean.
  std::size_t peak_slot() const;
  /// Total number of samples.
  std::uint64_t total_count() const;

 private:
  double slot_width_;
  std::vector<StreamingStats> slots_;
};

/// Exact percentiles over a fully retained sample (used in tests and for the
/// small per-run report; the simulator's hot path uses Histogram instead).
class Percentiles {
 public:
  void add(double x) {
    xs_.push_back(x);
    sorted_ = false;
  }
  std::size_t count() const { return xs_.size(); }
  /// q in [0,1]; nearest-rank with interpolation. Requires non-empty data.
  double quantile(double q) const;

 private:
  mutable std::vector<double> xs_;
  mutable bool sorted_ = false;
};

}  // namespace agora
