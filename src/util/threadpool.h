// threadpool.h -- a small fixed-size worker pool with a parallel_for helper.
//
// agora uses the pool for embarrassingly parallel work: solving the k
// independent LPs of a multi-resource request, and sweeping simulator
// configurations in the benchmark harnesses. Tasks must not block on each
// other (no nested submission from within a task waiting on the pool).
//
// The queueing machinery is the shared util::BlockingQueue primitive (see
// task_queue.h); the enforcement engine's per-shard workers build on the
// same queue with batch draining instead of a shared pool.
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "util/task_queue.h"

namespace agora {

class ThreadPool {
 public:
  /// Spawn `threads` workers (default: hardware concurrency, at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Submit a task; returns a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    queue_.push([task] { (*task)(); });
    return fut;
  }

  /// Run f(i) for i in [0, n), partitioned into contiguous chunks across the
  /// pool. Blocks until all iterations complete. Exceptions from f propagate
  /// (the first one encountered is rethrown).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& f);

  /// Process-wide shared pool (lazily constructed).
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  BlockingQueue<std::function<void()>> queue_;
};

}  // namespace agora
