// matrix.h -- small dense linear-algebra kernels used by the agreement algebra
// and the LP solvers.
//
// The matrices in agora are modest (n = number of principals, or LP tableaux
// of a few hundred rows), so a simple contiguous row-major dense
// representation is the right tool: cache-friendly, trivially copyable,
// easy to reason about.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <span>
#include <vector>

#include "util/error.h"

namespace agora {

/// Dense row-major matrix of doubles with value semantics.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// rows x cols matrix with every entry set to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Construct from nested initializer lists: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  /// n x n identity.
  static Matrix identity(std::size_t n);

  /// Reshape to rows x cols with every entry set to `fill`, reusing the
  /// existing heap allocation when capacity allows. Hot-path friendly:
  /// repeated assign() to the same shape performs no allocation.
  void assign(std::size_t rows, std::size_t cols, double fill = 0.0) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, fill);
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    AGORA_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    AGORA_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }

  /// Unchecked access for hot loops.
  double& at_unchecked(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at_unchecked(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// View of row r as a contiguous span.
  std::span<double> row(std::size_t r) {
    AGORA_REQUIRE(r < rows_, "row index out of range");
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    AGORA_REQUIRE(r < rows_, "row index out of range");
    return {data_.data() + r * cols_, cols_};
  }

  std::span<double> flat() { return data_; }
  std::span<const double> flat() const { return data_; }

  Matrix& operator+=(const Matrix& o);
  Matrix& operator-=(const Matrix& o);
  Matrix& operator*=(double s);

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) { return a *= s; }
  friend Matrix operator*(double s, Matrix a) { return a *= s; }

  /// Matrix product (this * o).
  Matrix operator*(const Matrix& o) const;

  /// Matrix-vector product.
  std::vector<double> operator*(std::span<const double> v) const;

  Matrix transposed() const;

  /// Maximum absolute entry (infinity norm of the flattened matrix).
  double max_abs() const;

  /// True when every entry differs from `o` by at most `tol`.
  bool approx_equal(const Matrix& o, double tol = 1e-9) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

std::ostream& operator<<(std::ostream& os, const Matrix& m);

/// Result of an LU factorization with partial pivoting.
class LuFactorization {
 public:
  /// Factor a square matrix. Throws PreconditionError on non-square input.
  explicit LuFactorization(const Matrix& a);

  /// True when the matrix was (numerically) singular; solve() then throws.
  bool singular() const { return singular_; }

  /// Solve A x = b for x.
  std::vector<double> solve(std::span<const double> b) const;

  /// Determinant (product of pivots, sign-adjusted).
  double determinant() const;

 private:
  Matrix lu_;
  std::vector<std::size_t> perm_;
  bool singular_ = false;
  int perm_sign_ = 1;
};

/// Convenience: solve A x = b; throws on singular A.
std::vector<double> solve_linear_system(const Matrix& a, std::span<const double> b);

// --- Small vector helpers (used throughout the allocator & simulator) -----

/// Dot product. Spans must be the same length.
double dot(std::span<const double> a, std::span<const double> b);

/// Sum of all elements.
double sum(std::span<const double> v);

/// Max element; requires non-empty input.
double max_element(std::span<const double> v);

/// axpy: y += alpha * x.
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// L-infinity distance between two equally sized vectors.
double linf_distance(std::span<const double> a, std::span<const double> b);

// --- Vectorized kernels (hot-path math; see AGORA_SIMD in CMakeLists) -----
//
// The admission fast path and the revised-simplex inner loops spend nearly
// all their time in dot/axpy-shaped passes over contiguous doubles. These
// kernels are written as four independent accumulator lanes with a scalar
// tail, which is exactly the shape an AVX2 register holds -- the intrinsic
// path (compiled when AGORA_SIMD is on and the compiler targets AVX2) and
// the portable fallback therefore produce bit-identical results: same lane
// assignment, same combine order, no FMA contraction. `vaxpy` is elementwise
// and bit-identical to `axpy` as well, so callers may switch freely.
//
// They deliberately skip the length AGORA_REQUIREs of their scalar
// counterparts: every call site is an inner loop that has already validated
// its shapes once per solve, not once per element.

/// Dot product, 4-lane accumulation. NOT bit-identical to `dot` (different
/// summation order); identical across the SIMD and fallback builds.
double vdot(const double* a, const double* b, std::size_t n);
inline double vdot(std::span<const double> a, std::span<const double> b) {
  return vdot(a.data(), b.data(), a.size());
}

/// Fused pass computing both sum(a[i]*x[i]) and sum(|a[i]*x[i]|) -- the
/// activity and the magnitude scale a relative residual test needs, in one
/// sweep (lp::Verifier admission checks).
struct DotAbs {
  double value = 0.0;
  double magnitude = 0.0;
};
DotAbs vdot_abs(const double* a, const double* x, std::size_t n);
inline DotAbs vdot_abs(std::span<const double> a, std::span<const double> x) {
  return vdot_abs(a.data(), x.data(), a.size());
}

/// y += alpha * x, vector-width strides. Elementwise, hence bit-identical
/// to `axpy` and across builds.
void vaxpy(double alpha, const double* x, double* y, std::size_t n);
inline void vaxpy(double alpha, std::span<const double> x, std::span<double> y) {
  vaxpy(alpha, x.data(), y.data(), x.size());
}

/// Dense row-major matrix-vector product y = A x using vdot per row
/// (y must already have A.rows() elements).
void gemv(const Matrix& a, std::span<const double> x, std::span<double> y);

/// Sparse gather dot: sum_t row[idx[t]] * val[t]. The revised simplex ftran
/// iterates basis-inverse rows against a CSC column with this.
double gather_dot(const double* row, const std::size_t* idx, const double* val,
                  std::size_t nnz);

}  // namespace agora
