#include "util/flags.h"

#include <cstdlib>
#include <sstream>

namespace agora {

void Flags::define(const std::string& name, const std::string& default_value,
                   const std::string& doc) {
  AGORA_REQUIRE(!name.empty() && name[0] != '-', "flag names are given without dashes");
  AGORA_REQUIRE(defs_.find(name) == defs_.end(), "duplicate flag: " + name);
  defs_[name] = Def{default_value, doc, default_value};
}

std::vector<std::string> Flags::parse(int argc, const char* const* argv) {
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      positional.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    } else {
      const auto it = defs_.find(arg);
      AGORA_REQUIRE(it != defs_.end(), "unknown flag: --" + arg);
      AGORA_REQUIRE(i + 1 < argc, "flag --" + arg + " expects a value");
      value = argv[++i];
    }
    const auto it = defs_.find(arg);
    AGORA_REQUIRE(it != defs_.end(), "unknown flag: --" + arg);
    it->second.value = value;
  }
  return positional;
}

std::string Flags::help_text(const std::string& program_description) const {
  std::ostringstream ss;
  ss << program_description << "\n\nflags:\n";
  for (const auto& [name, def] : defs_)
    ss << "  --" << name << " (default: " << def.default_value << ")\n      " << def.doc
       << "\n";
  return ss.str();
}

std::string Flags::get(const std::string& name) const {
  const auto it = defs_.find(name);
  AGORA_REQUIRE(it != defs_.end(), "undeclared flag: " + name);
  return it->second.value;
}

double Flags::get_double(const std::string& name) const {
  const std::string v = get(name);
  char* end = nullptr;
  const double d = std::strtod(v.c_str(), &end);
  AGORA_REQUIRE(end != v.c_str() && *end == '\0', "flag --" + name + " is not a number: " + v);
  return d;
}

std::int64_t Flags::get_int(const std::string& name) const {
  const std::string v = get(name);
  char* end = nullptr;
  const long long i = std::strtoll(v.c_str(), &end, 10);
  AGORA_REQUIRE(end != v.c_str() && *end == '\0', "flag --" + name + " is not an integer: " + v);
  return i;
}

bool Flags::get_bool(const std::string& name) const {
  const std::string v = get(name);
  if (v == "true" || v == "1" || v == "yes" || v.empty()) return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw PreconditionError("flag --" + name + " is not a boolean: " + v);
}

}  // namespace agora
