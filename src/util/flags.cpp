#include "util/flags.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace agora {

namespace {

bool parse_int_value(const std::string& v, std::int64_t& out) {
  char* end = nullptr;
  errno = 0;
  const long long i = std::strtoll(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0' || errno == ERANGE) return false;
  out = i;
  return true;
}

bool parse_double_value(const std::string& v, double& out) {
  char* end = nullptr;
  const double d = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0') return false;
  out = d;
  return true;
}

bool parse_bool_value(const std::string& v, bool& out) {
  if (v == "true" || v == "1" || v == "yes" || v.empty()) {
    out = true;
    return true;
  }
  if (v == "false" || v == "0" || v == "no") {
    out = false;
    return true;
  }
  return false;
}

}  // namespace

void Flags::define_typed(const std::string& name, const std::string& default_value,
                         const std::string& doc, Kind kind) {
  AGORA_REQUIRE(!name.empty() && name[0] != '-', "flag names are given without dashes");
  AGORA_REQUIRE(defs_.find(name) == defs_.end(), "duplicate flag: " + name);
  validate(name, default_value, kind);  // a bad default is a programmer error
  defs_[name] = Def{default_value, doc, default_value, kind};
}

void Flags::define(const std::string& name, const std::string& default_value,
                   const std::string& doc) {
  define_typed(name, default_value, doc, Kind::String);
}

void Flags::define_int(const std::string& name, const std::string& default_value,
                       const std::string& doc) {
  define_typed(name, default_value, doc, Kind::Int);
}

void Flags::define_double(const std::string& name, const std::string& default_value,
                          const std::string& doc) {
  define_typed(name, default_value, doc, Kind::Double);
}

void Flags::define_bool(const std::string& name, const std::string& default_value,
                        const std::string& doc) {
  define_typed(name, default_value, doc, Kind::Bool);
}

void Flags::validate(const std::string& name, const std::string& value, Kind kind) {
  switch (kind) {
    case Kind::String:
      return;
    case Kind::Int: {
      std::int64_t i;
      if (!parse_int_value(value, i))
        throw PreconditionError("flag --" + name + " is not an integer: " + value);
      return;
    }
    case Kind::Double: {
      double d;
      if (!parse_double_value(value, d))
        throw PreconditionError("flag --" + name + " is not a number: " + value);
      return;
    }
    case Kind::Bool: {
      bool b;
      if (!parse_bool_value(value, b))
        throw PreconditionError("flag --" + name + " is not a boolean: " + value);
      return;
    }
  }
}

std::vector<std::string> Flags::parse(int argc, const char* const* argv) {
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      positional.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    } else {
      const auto it = defs_.find(arg);
      if (it == defs_.end()) throw PreconditionError("unknown flag: --" + arg);
      if (i + 1 >= argc) throw PreconditionError("flag --" + arg + " expects a value");
      value = argv[++i];
    }
    const auto it = defs_.find(arg);
    if (it == defs_.end()) throw PreconditionError("unknown flag: --" + arg);
    validate(arg, value, it->second.kind);
    it->second.value = value;
  }
  return positional;
}

std::vector<std::string> Flags::parse_or_exit(int argc, const char* const* argv,
                                              const std::string& program_description,
                                              bool allow_positional) {
  description_ = program_description;
  std::vector<std::string> positional;
  try {
    positional = parse(argc, argv);
  } catch (const PreconditionError& err) {
    usage_error(err.what());
  }
  if (help_) {
    std::printf("%s", help_text(description_).c_str());
    std::exit(0);
  }
  if (!allow_positional && !positional.empty())
    usage_error("unexpected argument: " + positional.front());
  return positional;
}

void Flags::usage_error(const std::string& message) const {
  std::fprintf(stderr, "error: %s\n\n%s", message.c_str(),
               help_text(description_).c_str());
  std::exit(2);
}

std::string Flags::help_text(const std::string& program_description) const {
  std::ostringstream ss;
  ss << program_description << "\n\nflags:\n";
  for (const auto& [name, def] : defs_)
    ss << "  --" << name << " (default: " << def.default_value << ")\n      " << def.doc
       << "\n";
  return ss.str();
}

std::string Flags::get(const std::string& name) const {
  const auto it = defs_.find(name);
  AGORA_REQUIRE(it != defs_.end(), "undeclared flag: " + name);
  return it->second.value;
}

double Flags::get_double(const std::string& name) const {
  const std::string v = get(name);
  double d;
  if (!parse_double_value(v, d))
    throw PreconditionError("flag --" + name + " is not a number: " + v);
  return d;
}

std::int64_t Flags::get_int(const std::string& name) const {
  const std::string v = get(name);
  std::int64_t i;
  if (!parse_int_value(v, i))
    throw PreconditionError("flag --" + name + " is not an integer: " + v);
  return i;
}

bool Flags::get_bool(const std::string& name) const {
  const std::string v = get(name);
  bool b;
  if (!parse_bool_value(v, b))
    throw PreconditionError("flag --" + name + " is not a boolean: " + v);
  return b;
}

}  // namespace agora
