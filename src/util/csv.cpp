#include "util/csv.h"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.h"

namespace agora {

Table::Table(std::vector<std::string> columns) : header_(std::move(columns)) {
  AGORA_REQUIRE(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<double> values) {
  AGORA_REQUIRE(values.size() == header_.size(), "row width mismatch");
  rows_.push_back(std::move(values));
}

double Table::at(std::size_t row, std::size_t col) const {
  AGORA_REQUIRE(row < rows_.size() && col < header_.size(), "table index out of range");
  return rows_[row][col];
}

void Table::write_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << (c ? "," : "") << csv_escape(header_[c]);
  os << "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) os << (c ? "," : "") << row[c];
    os << "\n";
  }
}

void Table::save_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw IoError("cannot open for writing: " + path);
  write_csv(f);
  if (!f) throw IoError("write failed: " + path);
}

void Table::write_pretty(std::ostream& os, int precision) const {
  // Render all cells first so the column widths are known.
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> line;
    line.reserve(row.size());
    for (double v : row) {
      std::ostringstream ss;
      ss << std::fixed << std::setprecision(precision) << v;
      line.push_back(ss.str());
    }
    cells.push_back(std::move(line));
  }
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
    for (const auto& line : cells) width[c] = std::max(width[c], line[c].size());
  }
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << (c ? "  " : "") << std::setw(static_cast<int>(width[c])) << header_[c];
  os << "\n";
  for (const auto& line : cells) {
    for (std::size_t c = 0; c < line.size(); ++c)
      os << (c ? "  " : "") << std::setw(static_cast<int>(width[c])) << line[c];
    os << "\n";
  }
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += "\"";
  return out;
}

}  // namespace agora
