#include "util/matrix.h"

#include <algorithm>
#include <cmath>
#include <ostream>

#if defined(AGORA_SIMD_AVX2) && defined(__AVX2__)
#include <immintrin.h>
#endif

namespace agora {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ == 0 ? 0 : init.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    AGORA_REQUIRE(row.size() == cols_, "ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at_unchecked(i, i) = 1.0;
  return m;
}

Matrix& Matrix::operator+=(const Matrix& o) {
  AGORA_REQUIRE(rows_ == o.rows_ && cols_ == o.cols_, "shape mismatch in +=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
  AGORA_REQUIRE(rows_ == o.rows_ && cols_ == o.cols_, "shape mismatch in -=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix Matrix::operator*(const Matrix& o) const {
  AGORA_REQUIRE(cols_ == o.rows_, "shape mismatch in matrix product");
  Matrix out(rows_, o.cols_);
  // ikj loop order keeps the inner loop streaming over contiguous rows.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = at_unchecked(i, k);
      if (aik == 0.0) continue;
      const double* orow = o.data_.data() + k * o.cols_;
      double* outrow = out.data_.data() + i * o.cols_;
      for (std::size_t j = 0; j < o.cols_; ++j) outrow[j] += aik * orow[j];
    }
  }
  return out;
}

std::vector<double> Matrix::operator*(std::span<const double> v) const {
  AGORA_REQUIRE(cols_ == v.size(), "shape mismatch in matrix-vector product");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) out[i] = dot(row(i), v);
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out.at_unchecked(j, i) = at_unchecked(i, j);
  return out;
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

bool Matrix::approx_equal(const Matrix& o, double tol) const {
  if (rows_ != o.rows_ || cols_ != o.cols_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i)
    if (std::fabs(data_[i] - o.data_[i]) > tol) return false;
  return true;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    os << (i == 0 ? "[" : " ");
    for (std::size_t j = 0; j < m.cols(); ++j) os << (j ? " " : "") << m(i, j);
    os << (i + 1 == m.rows() ? "]" : "\n");
  }
  return os;
}

LuFactorization::LuFactorization(const Matrix& a) : lu_(a), perm_(a.rows()) {
  AGORA_REQUIRE(a.rows() == a.cols(), "LU factorization needs a square matrix");
  const std::size_t n = lu_.rows();
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting: pick the largest |entry| at or below the diagonal.
    std::size_t pivot = col;
    double best = std::fabs(lu_.at_unchecked(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(lu_.at_unchecked(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-13) {
      singular_ = true;
      return;
    }
    if (pivot != col) {
      std::swap(perm_[pivot], perm_[col]);
      perm_sign_ = -perm_sign_;
      for (std::size_t j = 0; j < n; ++j)
        std::swap(lu_.at_unchecked(pivot, j), lu_.at_unchecked(col, j));
    }
    const double d = lu_.at_unchecked(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = lu_.at_unchecked(r, col) / d;
      lu_.at_unchecked(r, col) = f;
      if (f == 0.0) continue;
      for (std::size_t j = col + 1; j < n; ++j)
        lu_.at_unchecked(r, j) -= f * lu_.at_unchecked(col, j);
    }
  }
}

std::vector<double> LuFactorization::solve(std::span<const double> b) const {
  AGORA_REQUIRE(!singular_, "cannot solve with a singular factorization");
  AGORA_REQUIRE(b.size() == lu_.rows(), "rhs length mismatch");
  const std::size_t n = lu_.rows();
  std::vector<double> x(n);
  // Forward substitution with the permuted rhs (L has implicit unit diagonal).
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) v -= lu_.at_unchecked(i, j) * x[j];
    x[i] = v;
  }
  // Back substitution through U.
  for (std::size_t ii = n; ii-- > 0;) {
    double v = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) v -= lu_.at_unchecked(ii, j) * x[j];
    x[ii] = v / lu_.at_unchecked(ii, ii);
  }
  return x;
}

double LuFactorization::determinant() const {
  if (singular_) return 0.0;
  double d = perm_sign_;
  for (std::size_t i = 0; i < lu_.rows(); ++i) d *= lu_.at_unchecked(i, i);
  return d;
}

std::vector<double> solve_linear_system(const Matrix& a, std::span<const double> b) {
  LuFactorization lu(a);
  AGORA_REQUIRE(!lu.singular(), "singular linear system");
  return lu.solve(b);
}

double dot(std::span<const double> a, std::span<const double> b) {
  AGORA_REQUIRE(a.size() == b.size(), "dot: length mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double sum(std::span<const double> v) {
  double s = 0.0;
  for (double x : v) s += x;
  return s;
}

double max_element(std::span<const double> v) {
  AGORA_REQUIRE(!v.empty(), "max_element of empty span");
  return *std::max_element(v.begin(), v.end());
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  AGORA_REQUIRE(x.size() == y.size(), "axpy: length mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double linf_distance(std::span<const double> a, std::span<const double> b) {
  AGORA_REQUIRE(a.size() == b.size(), "linf_distance: length mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

// --- Vectorized kernels ----------------------------------------------------
//
// The AVX2 path uses explicit mul+add (never fmadd), so -ffp-contract
// settings cannot make the sanitizer builds drift from the tier-1 build,
// and the fallback's four scalar accumulators replay the exact lane
// arithmetic of the 4-wide register. Tail elements are folded into lane
// (i % 4) in both paths.

#if defined(AGORA_SIMD_AVX2) && defined(__AVX2__)

double vdot(const double* a, const double* b, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  for (; i < n; ++i) lane[i & 3] += a[i] * b[i];
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

DotAbs vdot_abs(const double* a, const double* x, std::size_t n) {
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  __m256d acc = _mm256_setzero_pd();
  __m256d mag = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d p = _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(x + i));
    acc = _mm256_add_pd(acc, p);
    mag = _mm256_add_pd(mag, _mm256_andnot_pd(sign_mask, p));
  }
  alignas(32) double vlane[4], mlane[4];
  _mm256_store_pd(vlane, acc);
  _mm256_store_pd(mlane, mag);
  for (; i < n; ++i) {
    const double p = a[i] * x[i];
    vlane[i & 3] += p;
    mlane[i & 3] += std::fabs(p);
  }
  return {(vlane[0] + vlane[1]) + (vlane[2] + vlane[3]),
          (mlane[0] + mlane[1]) + (mlane[2] + mlane[3])};
}

void vaxpy(double alpha, const double* x, double* y, std::size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i),
                                          _mm256_mul_pd(va, _mm256_loadu_pd(x + i))));
  for (; i < n; ++i) y[i] += alpha * x[i];
}

#else  // scalar fallback, lane-for-lane identical to the AVX2 path

double vdot(const double* a, const double* b, std::size_t n) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    l0 += a[i] * b[i];
    l1 += a[i + 1] * b[i + 1];
    l2 += a[i + 2] * b[i + 2];
    l3 += a[i + 3] * b[i + 3];
  }
  double lane[4] = {l0, l1, l2, l3};
  for (; i < n; ++i) lane[i & 3] += a[i] * b[i];
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

DotAbs vdot_abs(const double* a, const double* x, std::size_t n) {
  double vlane[4] = {0.0, 0.0, 0.0, 0.0};
  double mlane[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (std::size_t l = 0; l < 4; ++l) {
      const double p = a[i + l] * x[i + l];
      vlane[l] += p;
      mlane[l] += std::fabs(p);
    }
  }
  for (; i < n; ++i) {
    const double p = a[i] * x[i];
    vlane[i & 3] += p;
    mlane[i & 3] += std::fabs(p);
  }
  return {(vlane[0] + vlane[1]) + (vlane[2] + vlane[3]),
          (mlane[0] + mlane[1]) + (mlane[2] + mlane[3])};
}

void vaxpy(double alpha, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

#endif  // AGORA_SIMD_AVX2

void gemv(const Matrix& a, std::span<const double> x, std::span<double> y) {
  AGORA_REQUIRE(a.cols() == x.size() && a.rows() == y.size(), "gemv: shape mismatch");
  for (std::size_t i = 0; i < a.rows(); ++i) y[i] = vdot(a.row(i), x);
}

double gather_dot(const double* row, const std::size_t* idx, const double* val,
                  std::size_t nnz) {
  double s = 0.0;
  for (std::size_t t = 0; t < nnz; ++t) s += row[idx[t]] * val[t];
  return s;
}

}  // namespace agora
