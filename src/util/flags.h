// flags.h -- a minimal command-line flag parser for agora's tools.
//
// Supports --name=value and --name value forms, typed accessors with
// defaults, --help generation, and unknown-flag detection. Deliberately
// tiny: the tools need a dozen scalar options, not a framework.
//
// Hardened entry point for tools: declare typed flags (define_int /
// define_double / define_bool) so malformed values fail AT PARSE TIME with
// the flag's name, then call parse_or_exit() -- unknown flags, bad values,
// and stray positional arguments all print the offending argument plus the
// full usage text to stderr and exit(2); --help prints usage to stdout and
// exit(0). Value-RANGE errors discovered after parsing go through
// usage_error() for the same contract.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/error.h"

namespace agora {

class Flags {
 public:
  /// Declare a free-form string flag before parsing. `doc` appears in help.
  void define(const std::string& name, const std::string& default_value,
              const std::string& doc);
  /// Typed declarations: parse() rejects a value the matching get_* would
  /// throw on, so a typo dies with usage instead of deep in the tool.
  void define_int(const std::string& name, const std::string& default_value,
                  const std::string& doc);
  void define_double(const std::string& name, const std::string& default_value,
                     const std::string& doc);
  void define_bool(const std::string& name, const std::string& default_value,
                   const std::string& doc);

  /// Parse argv. Throws PreconditionError on unknown flags, missing values,
  /// or values that fail their flag's typed validation. Returns leftover
  /// positional arguments.
  std::vector<std::string> parse(int argc, const char* const* argv);

  /// Tool-main() entry point: parse() with the exit contract described in
  /// the header comment. `allow_positional` = false (the default) makes any
  /// positional argument a usage error. Stores `program_description` so
  /// later usage_error() calls print the same usage text.
  std::vector<std::string> parse_or_exit(int argc, const char* const* argv,
                                         const std::string& program_description,
                                         bool allow_positional = false);

  /// Print `message` plus usage to stderr and exit(2). For post-parse
  /// validation (range checks, flag interactions) in tools that used
  /// parse_or_exit.
  [[noreturn]] void usage_error(const std::string& message) const;

  bool help_requested() const { return help_; }
  std::string help_text(const std::string& program_description) const;

  std::string get(const std::string& name) const;
  double get_double(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  bool get_bool(const std::string& name) const;

 private:
  enum class Kind { String, Int, Double, Bool };

  struct Def {
    std::string value;
    std::string doc;
    std::string default_value;
    Kind kind = Kind::String;
  };

  void define_typed(const std::string& name, const std::string& default_value,
                    const std::string& doc, Kind kind);
  static void validate(const std::string& name, const std::string& value, Kind kind);

  std::map<std::string, Def> defs_;
  std::string description_;
  bool help_ = false;
};

}  // namespace agora
