// flags.h -- a minimal command-line flag parser for agora's tools.
//
// Supports --name=value and --name value forms, typed accessors with
// defaults, --help generation, and unknown-flag detection. Deliberately
// tiny: the tools need a dozen scalar options, not a framework.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/error.h"

namespace agora {

class Flags {
 public:
  /// Declare a flag before parsing. `doc` appears in help output.
  void define(const std::string& name, const std::string& default_value,
              const std::string& doc);

  /// Parse argv. Throws PreconditionError on unknown or malformed flags.
  /// Returns leftover positional arguments.
  std::vector<std::string> parse(int argc, const char* const* argv);

  bool help_requested() const { return help_; }
  std::string help_text(const std::string& program_description) const;

  std::string get(const std::string& name) const;
  double get_double(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  bool get_bool(const std::string& name) const;

 private:
  struct Def {
    std::string value;
    std::string doc;
    std::string default_value;
  };
  std::map<std::string, Def> defs_;
  bool help_ = false;
};

}  // namespace agora
