#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace agora {

void StreamingStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void StreamingStats::merge(const StreamingStats& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(o.n_);
  const double delta = o.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += o.m2_ + delta * delta * na * nb / nt;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
  n_ += o.n_;
}

double StreamingStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)), counts_(buckets, 0) {
  AGORA_REQUIRE(hi > lo, "histogram range must be non-empty");
  AGORA_REQUIRE(buckets > 0, "histogram needs at least one bucket");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++under_;
    return;
  }
  if (x >= hi_) {
    ++over_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // FP edge at hi_.
  ++counts_[idx];
}

double Histogram::quantile(double q) const {
  AGORA_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q out of [0,1]");
  AGORA_REQUIRE(total_ > 0, "quantile of empty histogram");
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(under_);
  if (target <= cum) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (target <= next && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return bucket_low(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

SlottedSeries::SlottedSeries(double horizon, double slot_width) : slot_width_(slot_width) {
  AGORA_REQUIRE(horizon > 0.0 && slot_width > 0.0, "horizon and slot width must be positive");
  const auto n = static_cast<std::size_t>(std::ceil(horizon / slot_width - 1e-9));
  slots_.resize(n);
}

void SlottedSeries::add(double t, double x) {
  if (t < 0.0) t = 0.0;
  auto idx = static_cast<std::size_t>(t / slot_width_);
  if (idx >= slots_.size()) idx = slots_.size() - 1;
  slots_[idx].add(x);
}

double SlottedSeries::overall_mean() const {
  StreamingStats all;
  for (const auto& s : slots_) all.merge(s);
  return all.mean();
}

double SlottedSeries::peak_slot_mean() const {
  double m = 0.0;
  for (const auto& s : slots_)
    if (s.count() > 0) m = std::max(m, s.mean());
  return m;
}

std::size_t SlottedSeries::peak_slot() const {
  std::size_t best = 0;
  double m = -1.0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].count() > 0 && slots_[i].mean() > m) {
      m = slots_[i].mean();
      best = i;
    }
  }
  return best;
}

std::uint64_t SlottedSeries::total_count() const {
  std::uint64_t n = 0;
  for (const auto& s : slots_) n += s.count();
  return n;
}

double Percentiles::quantile(double q) const {
  AGORA_REQUIRE(!xs_.empty(), "quantile of empty sample");
  AGORA_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q out of [0,1]");
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
  const double pos = q * static_cast<double>(xs_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= xs_.size()) return xs_.back();
  return xs_[lo] * (1.0 - frac) + xs_[lo + 1] * frac;
}

}  // namespace agora
