#include "util/threadpool.h"

#include <algorithm>

namespace agora {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  queue_.close();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  std::function<void()> task;
  while (queue_.wait_pop(task)) task();
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& f) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, size() * 4);
  const std::size_t per = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = c * per;
    const std::size_t hi = std::min(n, lo + per);
    if (lo >= hi) break;
    futs.push_back(submit([lo, hi, &f] {
      for (std::size_t i = lo; i < hi; ++i) f(i);
    }));
  }
  for (auto& fut : futs) fut.get();  // get() rethrows the first exception.
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace agora
