// rng.h -- deterministic, seedable random number generation and the
// distributions the trace generator needs.
//
// We carry our own small PCG32 generator rather than std::mt19937 so that
// trace generation is bit-reproducible across standard libraries -- the
// simulator's regression tests depend on that.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "util/error.h"

namespace agora {

/// PCG32 (O'Neill): 64-bit state, 32-bit output, excellent statistical
/// quality for simulation workloads and tiny state for cheap copies.
class Pcg32 {
 public:
  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL) {
    state_ = 0u;
    inc_ = (stream << 1u) | 1u;
    next_u32();
    state_ += seed;
    next_u32();
  }

  using result_type = std::uint32_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }
  result_type operator()() { return next_u32(); }

  std::uint32_t next_u32() {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform double in [0, 1).
  double next_double() { return next_u32() * (1.0 / 4294967296.0); }

  /// Uniform double in [0, 1) that is never exactly 0 (safe for log()).
  double next_double_open() {
    double u;
    do {
      u = next_double();
    } while (u == 0.0);
    return u;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Uniform integer in [0, n).
  std::uint32_t uniform_u32(std::uint32_t n) {
    AGORA_REQUIRE(n > 0, "uniform_u32 needs n > 0");
    // Lemire-style rejection to remove modulo bias.
    const std::uint64_t m = static_cast<std::uint64_t>(next_u32()) * n;
    auto lo = static_cast<std::uint32_t>(m);
    if (lo < n) {
      const std::uint32_t threshold = (0u - n) % n;
      std::uint64_t mm = m;
      while (lo < threshold) {
        mm = static_cast<std::uint64_t>(next_u32()) * n;
        lo = static_cast<std::uint32_t>(mm);
      }
      return static_cast<std::uint32_t>(mm >> 32);
    }
    return static_cast<std::uint32_t>(m >> 32);
  }

  /// Exponential with the given rate (mean = 1/rate).
  double exponential(double rate) {
    AGORA_REQUIRE(rate > 0.0, "exponential rate must be positive");
    return -std::log(next_double_open()) / rate;
  }

  /// Standard normal via Box-Muller (one value per call; simple and exact
  /// enough for trace synthesis).
  double normal() {
    const double u1 = next_double_open();
    const double u2 = next_double();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Lognormal with the given log-space mean and sigma.
  double lognormal(double mu, double sigma) { return std::exp(mu + sigma * normal()); }

  /// Pareto with scale x_m > 0 and shape alpha > 0.
  double pareto(double x_m, double alpha) {
    AGORA_REQUIRE(x_m > 0.0 && alpha > 0.0, "pareto parameters must be positive");
    return x_m / std::pow(next_double_open(), 1.0 / alpha);
  }

  /// Poisson with the given mean. Uses inversion for small means and
  /// normal approximation with rounding for large ones.
  std::uint64_t poisson(double mean) {
    AGORA_REQUIRE(mean >= 0.0, "poisson mean must be non-negative");
    if (mean == 0.0) return 0;
    if (mean < 60.0) {
      const double l = std::exp(-mean);
      std::uint64_t k = 0;
      double p = 1.0;
      do {
        ++k;
        p *= next_double_open();
      } while (p > l);
      return k - 1;
    }
    const double v = mean + std::sqrt(mean) * normal();
    return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
  }

  /// Derive an independent child generator (for per-proxy streams).
  Pcg32 split(std::uint64_t salt) {
    const std::uint64_t s = (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
    return Pcg32(s ^ (salt * 0x9e3779b97f4a7c15ULL), salt * 2 + 1);
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace agora
