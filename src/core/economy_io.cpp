#include "core/economy_io.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "util/error.h"

namespace agora::core {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& msg) {
  throw IoError("economy spec line " + std::to_string(line) + ": " + msg);
}

CurrencyId need_currency(const Economy& e, const std::string& name, std::size_t line) {
  const CurrencyId id = e.find_currency(name);
  if (!id.valid()) fail(line, "unknown currency: " + name);
  return id;
}

ResourceTypeId need_resource(const Economy& e, const std::string& name, std::size_t line) {
  const ResourceTypeId id = e.find_resource_type(name);
  if (!id.valid()) fail(line, "unknown resource: " + name);
  return id;
}

}  // namespace

Economy read_economy(std::istream& is) {
  Economy e;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream ss(line);
    std::string directive;
    if (!(ss >> directive)) continue;  // blank line

    std::vector<std::string> args;
    std::string tok;
    while (ss >> tok) args.push_back(tok);

    try {
      if (directive == "resource") {
        if (args.empty()) fail(lineno, "resource needs a name");
        e.add_resource_type(args[0], args.size() > 1 ? args[1] : "");
      } else if (directive == "principal") {
        if (args.empty()) fail(lineno, "principal needs a name");
        e.add_principal(args[0], args.size() > 1 ? std::stod(args[1]) : 100.0);
      } else if (directive == "virtual") {
        if (args.size() < 2) fail(lineno, "virtual needs: owner name [face]");
        const PrincipalId owner = e.find_principal(args[0]);
        if (!owner.valid()) fail(lineno, "unknown principal: " + args[0]);
        e.create_virtual_currency(owner, args[1], args.size() > 2 ? std::stod(args[2]) : 100.0);
      } else if (directive == "fund") {
        if (args.size() < 3) fail(lineno, "fund needs: currency resource amount");
        e.fund_with_resource(need_currency(e, args[0], lineno),
                             need_resource(e, args[1], lineno), std::stod(args[2]));
      } else if (directive == "abs") {
        if (args.size() < 4) fail(lineno, "abs needs: from to resource amount [grant]");
        const SharingMode mode = args.size() > 4 && args[4] == "grant"
                                     ? SharingMode::Granting
                                     : SharingMode::Sharing;
        e.issue_absolute(need_currency(e, args[0], lineno), need_currency(e, args[1], lineno),
                         need_resource(e, args[2], lineno), std::stod(args[3]), mode);
      } else if (directive == "rel") {
        if (args.size() < 3) fail(lineno, "rel needs: from to face [resource|*] [grant]");
        ResourceTypeId resource;  // invalid => all resources
        SharingMode mode = SharingMode::Sharing;
        for (std::size_t i = 3; i < args.size(); ++i) {
          if (args[i] == "grant") mode = SharingMode::Granting;
          else if (args[i] != "*") resource = need_resource(e, args[i], lineno);
        }
        e.issue_relative(need_currency(e, args[0], lineno), need_currency(e, args[1], lineno),
                         std::stod(args[2]), resource, mode);
      } else {
        fail(lineno, "unknown directive: " + directive);
      }
    } catch (const PreconditionError& err) {
      fail(lineno, err.what());
    } catch (const std::invalid_argument&) {
      fail(lineno, "malformed number");
    }
  }
  return e;
}

Economy load_economy(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw IoError("cannot open economy spec: " + path);
  return read_economy(f);
}

void write_economy(std::ostream& os, const Economy& e) {
  os << "# agora economy spec v1\n";
  for (std::size_t r = 0; r < e.num_resource_types(); ++r) {
    const ResourceType& rt = e.resource_type(ResourceTypeId(r));
    os << "resource " << rt.name;
    if (!rt.unit.empty()) os << " " << rt.unit;
    os << "\n";
  }
  for (std::size_t p = 0; p < e.num_principals(); ++p) {
    const Principal& pr = e.principal(PrincipalId(p));
    os << "principal " << pr.name << " " << e.currency(pr.default_currency).face_value << "\n";
  }
  for (std::size_t c = 0; c < e.num_currencies(); ++c) {
    const Currency& cur = e.currency(CurrencyId(c));
    if (cur.kind != CurrencyKind::Virtual) continue;
    os << "virtual " << e.principal(cur.owner).name << " " << cur.name << " "
       << cur.face_value << "\n";
  }
  for (std::size_t t = 0; t < e.num_tickets(); ++t) {
    const Ticket& tk = e.ticket(TicketId(t));
    if (tk.revoked) continue;
    const std::string target = e.currency(tk.target).name;
    switch (tk.kind) {
      case TicketKind::BaseResource:
        os << "fund " << target << " " << e.resource_type(tk.resource).name << " " << tk.face
           << "\n";
        break;
      case TicketKind::Absolute:
        os << "abs " << e.currency(tk.issuer).name << " " << target << " "
           << e.resource_type(tk.resource).name << " " << tk.face
           << (tk.mode == SharingMode::Granting ? " grant" : "") << "\n";
        break;
      case TicketKind::Relative:
        os << "rel " << e.currency(tk.issuer).name << " " << target << " " << tk.face << " "
           << (tk.resource.valid() ? e.resource_type(tk.resource).name : std::string("*"))
           << (tk.mode == SharingMode::Granting ? " grant" : "") << "\n";
        break;
    }
  }
}

void save_economy(const std::string& path, const Economy& e) {
  std::ofstream f(path);
  if (!f) throw IoError("cannot open for writing: " + path);
  write_economy(f, e);
  if (!f) throw IoError("write failed: " + path);
}

}  // namespace agora::core
