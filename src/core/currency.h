// currency.h -- currencies denominate tickets (Section 2.2).
//
// Every principal gets a *default* currency representing its resources;
// additional *virtual* currencies (Example 2, Fig. 2) let a principal
// decouple one subset of its agreements from fluctuations in another.
#pragma once

#include <string>
#include <vector>

#include "core/ids.h"

namespace agora::core {

enum class CurrencyKind {
  Default,  ///< the per-principal currency created with the principal
  Virtual,  ///< created explicitly to partition agreements
};

struct Currency {
  CurrencyId id;
  CurrencyKind kind = CurrencyKind::Default;
  std::string name;
  /// Owning principal (for virtual currencies: the creator).
  PrincipalId owner;

  /// Face value: the number of units this currency is divided into. A
  /// relative ticket of face f issued here conveys f / face_value of the
  /// currency's (dynamic) value. Inflation/deflation changes this number.
  double face_value = 0.0;

  /// Tickets backing (funding) this currency.
  std::vector<TicketId> backing;
  /// Tickets issued by this currency.
  std::vector<TicketId> issued;
};

struct Principal {
  PrincipalId id;
  std::string name;
  CurrencyId default_currency;
};

struct ResourceType {
  ResourceTypeId id;
  std::string name;
  std::string unit;
};

}  // namespace agora::core
