// ticket.h -- tickets: the paper's uniform representation of both resource
// capacity and sharing agreements.
//
// Three ticket roles exist in an economy (Section 2.2 of the paper):
//
//   * BaseResource -- an absolute ticket representing actual capacity, e.g.
//     "10 TB of disk", funding the owner's currency (A-Ticket1/2 in Fig. 1).
//   * Absolute agreement -- a fixed-quantity ticket issued by one currency
//     and backing another (R-Ticket3: A shares 3 TB with C).
//   * Relative agreement -- a ticket whose real value floats with the value
//     of the issuing currency (R-Ticket4: A shares 50% with B).
//
// Agreements additionally carry the paper's taxonomy dimension of
// *sharing* vs *granting*: under sharing both grantor and grantee may use
// the capacity; under granting the grantor relinquishes it until revocation.
#pragma once

#include <string>

#include "core/ids.h"

namespace agora::core {

enum class TicketKind {
  BaseResource,  ///< absolute capacity owned outright, no issuer
  Absolute,      ///< agreement for a fixed quantity
  Relative,      ///< agreement for a share of the issuing currency's value
};

enum class SharingMode {
  Sharing,   ///< grantor retains the right to use the resource too
  Granting,  ///< grantor gives the resource up while the agreement stands
};

struct Ticket {
  TicketId id;
  TicketKind kind = TicketKind::BaseResource;
  SharingMode mode = SharingMode::Sharing;
  std::string name;

  /// Resource this ticket is denominated in. For Relative tickets this may
  /// be invalid(), meaning the ticket conveys a share of *every* resource
  /// backing the issuing currency.
  ResourceTypeId resource;

  /// Issuing currency; invalid() for BaseResource tickets.
  CurrencyId issuer;
  /// Currency this ticket funds (backs).
  CurrencyId target;

  /// Face value: actual quantity for BaseResource/Absolute tickets, the
  /// issued denomination (out of the issuer's face value) for Relative.
  double face = 0.0;

  bool revoked = false;

  bool is_agreement() const { return kind != TicketKind::BaseResource; }
};

}  // namespace agora::core
