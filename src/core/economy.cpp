#include "core/economy.h"

#include <cmath>

namespace agora::core {

ResourceTypeId Economy::add_resource_type(const std::string& name, const std::string& unit) {
  AGORA_REQUIRE(!name.empty(), "resource type needs a name");
  AGORA_REQUIRE(!find_resource_type(name).valid(), "duplicate resource type: " + name);
  ResourceType r;
  r.id = ResourceTypeId(resources_.size());
  r.name = name;
  r.unit = unit;
  resources_.push_back(std::move(r));
  return resources_.back().id;
}

PrincipalId Economy::add_principal(const std::string& name, double currency_face_value) {
  AGORA_REQUIRE(!name.empty(), "principal needs a name");
  AGORA_REQUIRE(!find_principal(name).valid(), "duplicate principal: " + name);
  AGORA_REQUIRE(currency_face_value > 0.0, "currency face value must be positive");

  Currency c;
  c.id = CurrencyId(currencies_.size());
  c.kind = CurrencyKind::Default;
  c.name = name;
  c.face_value = currency_face_value;

  Principal p;
  p.id = PrincipalId(principals_.size());
  p.name = name;
  p.default_currency = c.id;
  c.owner = p.id;

  currencies_.push_back(std::move(c));
  principals_.push_back(std::move(p));
  return principals_.back().id;
}

CurrencyId Economy::create_virtual_currency(PrincipalId owner, const std::string& name,
                                            double face_value) {
  AGORA_REQUIRE(owner.value < principals_.size(), "unknown principal");
  AGORA_REQUIRE(!name.empty(), "currency needs a name");
  AGORA_REQUIRE(!find_currency(name).valid(), "duplicate currency: " + name);
  AGORA_REQUIRE(face_value > 0.0, "currency face value must be positive");
  Currency c;
  c.id = CurrencyId(currencies_.size());
  c.kind = CurrencyKind::Virtual;
  c.name = name;
  c.owner = owner;
  c.face_value = face_value;
  currencies_.push_back(std::move(c));
  return currencies_.back().id;
}

TicketId Economy::fund_with_resource(CurrencyId target, ResourceTypeId resource, double amount,
                                     const std::string& name) {
  AGORA_REQUIRE(target.value < currencies_.size(), "unknown target currency");
  AGORA_REQUIRE(resource.value < resources_.size(), "unknown resource type");
  AGORA_REQUIRE(amount >= 0.0 && std::isfinite(amount), "capacity must be non-negative");
  Ticket t;
  t.kind = TicketKind::BaseResource;
  t.resource = resource;
  t.target = target;
  t.face = amount;
  t.name = name;
  return new_ticket(std::move(t));
}

TicketId Economy::issue_absolute(CurrencyId issuer, CurrencyId target, ResourceTypeId resource,
                                 double amount, SharingMode mode, const std::string& name) {
  AGORA_REQUIRE(issuer.value < currencies_.size(), "unknown issuing currency");
  AGORA_REQUIRE(target.value < currencies_.size(), "unknown target currency");
  AGORA_REQUIRE(issuer != target, "a currency cannot back itself");
  AGORA_REQUIRE(resource.value < resources_.size(), "unknown resource type");
  AGORA_REQUIRE(amount >= 0.0 && std::isfinite(amount), "agreement amount must be non-negative");
  Ticket t;
  t.kind = TicketKind::Absolute;
  t.mode = mode;
  t.resource = resource;
  t.issuer = issuer;
  t.target = target;
  t.face = amount;
  t.name = name;
  return new_ticket(std::move(t));
}

TicketId Economy::issue_relative(CurrencyId issuer, CurrencyId target, double face,
                                 ResourceTypeId resource, SharingMode mode,
                                 const std::string& name) {
  AGORA_REQUIRE(issuer.value < currencies_.size(), "unknown issuing currency");
  AGORA_REQUIRE(target.value < currencies_.size(), "unknown target currency");
  AGORA_REQUIRE(issuer != target, "a currency cannot back itself");
  AGORA_REQUIRE(face >= 0.0 && std::isfinite(face), "ticket face must be non-negative");
  if (resource.valid())
    AGORA_REQUIRE(resource.value < resources_.size(), "unknown resource type");
  Ticket t;
  t.kind = TicketKind::Relative;
  t.mode = mode;
  t.resource = resource;
  t.issuer = issuer;
  t.target = target;
  t.face = face;
  t.name = name;
  return new_ticket(std::move(t));
}

void Economy::revoke(TicketId id) {
  AGORA_REQUIRE(id.value < tickets_.size(), "unknown ticket");
  AGORA_REQUIRE(!tickets_[id.value].revoked, "ticket already revoked");
  tickets_[id.value].revoked = true;
}

void Economy::set_ticket_face(TicketId id, double face) {
  AGORA_REQUIRE(id.value < tickets_.size(), "unknown ticket");
  AGORA_REQUIRE(!tickets_[id.value].revoked, "cannot modify a revoked ticket");
  AGORA_REQUIRE(face >= 0.0 && std::isfinite(face), "ticket face must be non-negative");
  tickets_[id.value].face = face;
}

void Economy::set_face_value(CurrencyId id, double face_value) {
  AGORA_REQUIRE(id.value < currencies_.size(), "unknown currency");
  AGORA_REQUIRE(face_value > 0.0 && std::isfinite(face_value),
                "currency face value must be positive");
  currencies_[id.value].face_value = face_value;
}

const Principal& Economy::principal(PrincipalId id) const {
  AGORA_REQUIRE(id.value < principals_.size(), "unknown principal");
  return principals_[id.value];
}

const Currency& Economy::currency(CurrencyId id) const {
  AGORA_REQUIRE(id.value < currencies_.size(), "unknown currency");
  return currencies_[id.value];
}

const Ticket& Economy::ticket(TicketId id) const {
  AGORA_REQUIRE(id.value < tickets_.size(), "unknown ticket");
  return tickets_[id.value];
}

const ResourceType& Economy::resource_type(ResourceTypeId id) const {
  AGORA_REQUIRE(id.value < resources_.size(), "unknown resource type");
  return resources_[id.value];
}

PrincipalId Economy::find_principal(const std::string& name) const {
  for (const auto& p : principals_)
    if (p.name == name) return p.id;
  return {};
}

CurrencyId Economy::find_currency(const std::string& name) const {
  for (const auto& c : currencies_)
    if (c.name == name) return c.id;
  return {};
}

ResourceTypeId Economy::find_resource_type(const std::string& name) const {
  for (const auto& r : resources_)
    if (r.name == name) return r.id;
  return {};
}

double Economy::issued_relative_face(CurrencyId id) const {
  const Currency& c = currency(id);
  double total = 0.0;
  for (TicketId tid : c.issued) {
    const Ticket& t = tickets_[tid.value];
    if (!t.revoked && t.kind == TicketKind::Relative) total += t.face;
  }
  return total;
}

bool Economy::overdrafted(CurrencyId id) const {
  return issued_relative_face(id) > currency(id).face_value + 1e-12;
}

TicketId Economy::new_ticket(Ticket t) {
  t.id = TicketId(tickets_.size());
  currencies_[t.target.value].backing.push_back(t.id);
  if (t.issuer.valid()) currencies_[t.issuer.value].issued.push_back(t.id);
  tickets_.push_back(std::move(t));
  return tickets_.back().id;
}

void Economy::check_consistency() const {
  for (const auto& c : currencies_) {
    AGORA_INVARIANT(c.owner.value < principals_.size(), "currency with dangling owner");
    AGORA_INVARIANT(c.face_value > 0.0, "currency with non-positive face value");
    for (TicketId tid : c.backing) {
      AGORA_INVARIANT(tid.value < tickets_.size(), "dangling backing ticket");
      AGORA_INVARIANT(tickets_[tid.value].target == c.id, "backing list mismatch");
    }
    for (TicketId tid : c.issued) {
      AGORA_INVARIANT(tid.value < tickets_.size(), "dangling issued ticket");
      AGORA_INVARIANT(tickets_[tid.value].issuer == c.id, "issued list mismatch");
    }
  }
  for (const auto& t : tickets_) {
    AGORA_INVARIANT(t.face >= 0.0, "ticket with negative face");
    AGORA_INVARIANT(t.target.value < currencies_.size(), "ticket with dangling target");
    if (t.kind == TicketKind::BaseResource) {
      AGORA_INVARIANT(!t.issuer.valid(), "base resource ticket with an issuer");
      AGORA_INVARIANT(t.resource.value < resources_.size(), "base ticket without resource");
    } else {
      AGORA_INVARIANT(t.issuer.valid() && t.issuer.value < currencies_.size(),
                      "agreement ticket without issuer");
      AGORA_INVARIANT(t.issuer != t.target, "self-backing ticket");
    }
  }
}

}  // namespace agora::core
