// economy_io.h -- a human-writable text format for economies, so agreements
// can be inspected, versioned and fed to the tools without writing C++.
//
// Format: one directive per line, '#' comments. Names are unqualified
// identifiers (no spaces). All directives:
//
//   resource  <name> [unit]
//   principal <name> [currency_face_value=100]
//   virtual   <owner> <currency_name> [face_value=100]
//   fund      <currency> <resource> <amount>
//   abs       <from_currency> <to_currency> <resource> <amount> [grant]
//   rel       <from_currency> <to_currency> <face> [resource|*] [grant]
//
// `rel ... *` (or omitting the resource) conveys every resource. Appending
// `grant` makes the agreement Granting rather than Sharing. Example 1 of
// the paper:
//
//   resource disk TB
//   principal A 1000
//   principal B 100
//   principal C
//   principal D
//   fund A disk 10
//   fund B disk 15
//   abs A C disk 3
//   rel A B 500 disk
//   rel B D 60 disk
#pragma once

#include <iosfwd>
#include <string>

#include "core/economy.h"

namespace agora::core {

/// Parse an economy from the text format. Throws IoError with a line number
/// on malformed input.
Economy read_economy(std::istream& is);
Economy load_economy(const std::string& path);

/// Serialize (round-trips through read_economy; revoked tickets are
/// omitted).
void write_economy(std::ostream& os, const Economy& e);
void save_economy(const std::string& path, const Economy& e);

}  // namespace agora::core
