// valuation.h -- pricing the economy: compute the dynamic value of every
// currency and the real value of every ticket (Section 2.2).
//
// Per resource type r, currency values satisfy the linear fix-point
//
//     v_r(c) = base_r(c) + abs_r(c) + sum over live relative tickets t
//              backing c of  v_r(issuer(t)) * face(t) / face_value(issuer(t))
//
// i.e. v_r = a_r + M v_r with M the share matrix. We solve (I - M) v = a
// directly by LU factorization (Direct), or by damped fix-point iteration
// (FixPoint) -- the latter exists both as a scalability escape hatch and as
// an independent implementation the tests cross-check against.
//
// Currency values are *claims*: with sharing semantics (both parties may use
// the resource) the sum of currency values legitimately exceeds the physical
// capacity. Enforcement against physical capacity is the allocator's job
// (src/agree, src/alloc).
#pragma once

#include <cstdint>

#include "core/economy.h"
#include "util/matrix.h"

namespace agora::core {

enum class ValuationMethod {
  Direct,    ///< LU solve of (I - M) v = a; exact
  FixPoint,  ///< Jacobi iteration v <- a + M v until convergence
};

struct ValuationOptions {
  ValuationMethod method = ValuationMethod::Direct;
  /// FixPoint: stop when successive iterates differ by less than this.
  double tolerance = 1e-12;
  /// FixPoint: iteration cap (exceeded => InternalError; indicates shares
  /// summing to >= 1 around a cycle).
  std::uint32_t max_iterations = 100000;
};

/// A snapshot of currency and ticket values at one instant. Invalidated by
/// any Economy mutation; recompute via value_economy().
class Valuation {
 public:
  /// Value of `currency` in terms of `resource`.
  double currency_value(CurrencyId c, ResourceTypeId r) const {
    return values_(c.value, r.value);
  }

  /// Real value of a ticket in terms of `resource` (0 for revoked tickets
  /// and for resources the ticket does not convey).
  double ticket_value(TicketId t, ResourceTypeId r) const {
    return ticket_values_(t.value, r.value);
  }

  /// Sum of a currency's value across all resources (meaningful when the
  /// economy collapses everything into one "general" resource, as the
  /// paper's case study does).
  double currency_total(CurrencyId c) const;

  std::size_t num_currencies() const { return values_.rows(); }
  std::size_t num_resources() const { return values_.cols(); }

 private:
  friend Valuation value_economy(const Economy&, const ValuationOptions&);
  Matrix values_;         // currencies x resources
  Matrix ticket_values_;  // tickets x resources
};

/// Price the economy. Throws InternalError when the relative-share structure
/// has no finite fix point (shares around a cycle summing to >= 1).
Valuation value_economy(const Economy& e, const ValuationOptions& opts = {});

}  // namespace agora::core
