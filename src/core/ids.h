// ids.h -- strongly typed identifiers for the economy's entities.
//
// Distinct wrapper types keep a PrincipalId from being passed where a
// CurrencyId is expected; all are cheap value types indexing into the
// Economy's internal tables.
#pragma once

#include <cstddef>
#include <functional>

namespace agora::core {

namespace detail {
template <typename Tag>
struct Id {
  std::size_t value = static_cast<std::size_t>(-1);

  constexpr Id() = default;
  constexpr explicit Id(std::size_t v) : value(v) {}
  constexpr bool valid() const { return value != static_cast<std::size_t>(-1); }

  friend constexpr bool operator==(Id a, Id b) { return a.value == b.value; }
  friend constexpr bool operator!=(Id a, Id b) { return a.value != b.value; }
  friend constexpr bool operator<(Id a, Id b) { return a.value < b.value; }
};
}  // namespace detail

struct PrincipalTag {};
struct CurrencyTag {};
struct TicketTag {};
struct ResourceTag {};

/// A participant in the sharing federation (an ISP, an organization, ...).
using PrincipalId = detail::Id<PrincipalTag>;
/// A currency: the default per-principal one or a virtual currency.
using CurrencyId = detail::Id<CurrencyTag>;
/// A ticket: base resource capacity or an agreement.
using TicketId = detail::Id<TicketTag>;
/// A resource type (CPU seconds, disk TB, network bandwidth, ...).
using ResourceTypeId = detail::Id<ResourceTag>;

}  // namespace agora::core

namespace std {
template <typename Tag>
struct hash<agora::core::detail::Id<Tag>> {
  size_t operator()(agora::core::detail::Id<Tag> id) const noexcept {
    return std::hash<size_t>{}(id.value);
  }
};
}  // namespace std
