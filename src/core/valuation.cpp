#include "core/valuation.h"

#include <cmath>

namespace agora::core {

namespace {

/// Share of the issuer's value conveyed by a live relative ticket.
double ticket_share(const Economy& e, const Ticket& t) {
  const double f = e.currency(t.issuer).face_value;
  AGORA_INVARIANT(f > 0.0, "currency face value must be positive");
  return t.face / f;
}

/// True when ticket t conveys resource r.
bool conveys(const Ticket& t, ResourceTypeId r) {
  return !t.resource.valid() || t.resource == r;
}

}  // namespace

double Valuation::currency_total(CurrencyId c) const {
  double s = 0.0;
  for (std::size_t r = 0; r < values_.cols(); ++r) s += values_(c.value, r);
  return s;
}

Valuation value_economy(const Economy& e, const ValuationOptions& opts) {
  const std::size_t nc = e.num_currencies();
  const std::size_t nr = e.num_resource_types();
  const std::size_t nt = e.num_tickets();

  Valuation val;
  val.values_ = Matrix(nc, nr);
  val.ticket_values_ = Matrix(nt, nr);
  if (nc == 0 || nr == 0) return val;

  // Constant part a (base + absolute backing) and share matrix M, built
  // once; M is resource-independent except for resource-typed relative
  // tickets, so build a per-resource mask lazily only if any exist.
  Matrix a(nc, nr);
  for (std::size_t ti = 0; ti < nt; ++ti) {
    const Ticket& t = e.ticket(TicketId(ti));
    if (t.revoked) continue;
    switch (t.kind) {
      case TicketKind::BaseResource:
      case TicketKind::Absolute:
        a(t.target.value, t.resource.value) += t.face;
        break;
      case TicketKind::Relative:
        break;  // handled per-resource below
    }
  }

  for (std::size_t r = 0; r < nr; ++r) {
    const ResourceTypeId rid{r};
    // M for this resource: M[target][issuer] += share.
    Matrix m(nc, nc);
    for (std::size_t ti = 0; ti < nt; ++ti) {
      const Ticket& t = e.ticket(TicketId(ti));
      if (t.revoked || t.kind != TicketKind::Relative) continue;
      if (!conveys(t, rid)) continue;
      m(t.target.value, t.issuer.value) += ticket_share(e, t);
    }

    std::vector<double> ar(nc);
    for (std::size_t c = 0; c < nc; ++c) ar[c] = a(c, r);

    std::vector<double> v;
    if (opts.method == ValuationMethod::Direct) {
      Matrix system = Matrix::identity(nc) - m;
      LuFactorization lu(system);
      if (lu.singular())
        throw InternalError(
            "currency valuation has no unique fix point (relative shares sum to "
            ">= 1 around a cycle)");
      v = lu.solve(ar);
    } else {
      v.assign(nc, 0.0);
      std::vector<double> next(nc);
      std::uint32_t it = 0;
      for (;; ++it) {
        if (it >= opts.max_iterations)
          throw InternalError("currency valuation fix-point iteration did not converge");
        for (std::size_t c = 0; c < nc; ++c) {
          double s = ar[c];
          for (std::size_t i = 0; i < nc; ++i) {
            const double mc = m.at_unchecked(c, i);
            if (mc != 0.0) s += mc * v[i];
          }
          next[c] = s;
        }
        const double diff = linf_distance(v, next);
        v = next;
        if (diff < opts.tolerance) break;
      }
    }

    for (std::size_t c = 0; c < nc; ++c) {
      // Negative values can only arise from numerical noise; clamp.
      val.values_(c, r) = v[c] < 0.0 && v[c] > -1e-9 ? 0.0 : v[c];
      AGORA_INVARIANT(val.values_(c, r) >= 0.0, "negative currency value");
    }

    // Ticket real values for this resource.
    for (std::size_t ti = 0; ti < nt; ++ti) {
      const Ticket& t = e.ticket(TicketId(ti));
      if (t.revoked) continue;
      switch (t.kind) {
        case TicketKind::BaseResource:
        case TicketKind::Absolute:
          if (t.resource == rid) val.ticket_values_(ti, r) = t.face;
          break;
        case TicketKind::Relative:
          if (conveys(t, rid))
            val.ticket_values_(ti, r) = ticket_share(e, t) * v[t.issuer.value];
          break;
      }
    }
  }
  return val;
}

}  // namespace agora::core
