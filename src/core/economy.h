// economy.h -- the registry of principals, currencies, resource types and
// tickets, with the mutation operations the paper describes: funding
// currencies with capacity, issuing/revoking agreement tickets, creating
// virtual currencies, and inflating/deflating currency face values.
//
// The Economy is a passive data structure; pricing lives in valuation.h and
// enforcement in src/agree + src/alloc.
#pragma once

#include <string>
#include <vector>

#include "core/currency.h"
#include "core/ids.h"
#include "core/ticket.h"
#include "util/error.h"

namespace agora::core {

class Economy {
 public:
  // --- registration -------------------------------------------------------

  /// Register a resource type ("disk", "TB"). Names must be unique.
  ResourceTypeId add_resource_type(const std::string& name, const std::string& unit = "");

  /// Register a principal; its default currency is created automatically
  /// with face value `currency_face_value`.
  PrincipalId add_principal(const std::string& name, double currency_face_value = 100.0);

  /// Create a virtual currency owned by `owner` (Example 2).
  CurrencyId create_virtual_currency(PrincipalId owner, const std::string& name,
                                     double face_value);

  // --- funding and agreements ---------------------------------------------

  /// Fund a currency with actual capacity: an absolute BaseResource ticket
  /// with no issuer (A-Ticket1/A-Ticket2 in Fig. 1).
  TicketId fund_with_resource(CurrencyId target, ResourceTypeId resource, double amount,
                              const std::string& name = "");

  /// Issue an absolute agreement ticket: `issuer` shares a fixed `amount`
  /// of `resource` with `target` (R-Ticket3 in Fig. 1).
  TicketId issue_absolute(CurrencyId issuer, CurrencyId target, ResourceTypeId resource,
                          double amount, SharingMode mode = SharingMode::Sharing,
                          const std::string& name = "");

  /// Issue a relative agreement ticket of the given `face` denomination:
  /// `target` receives face / face_value(issuer) of the issuer's value
  /// (R-Ticket4/5 in Fig. 1). When `resource` is invalid the share applies
  /// to every resource backing the issuer.
  TicketId issue_relative(CurrencyId issuer, CurrencyId target, double face,
                          ResourceTypeId resource = {}, SharingMode mode = SharingMode::Sharing,
                          const std::string& name = "");

  /// Revoke a ticket: the agreement ends (granted resources return to the
  /// grantor). BaseResource tickets may also be revoked, modeling capacity
  /// leaving the system.
  void revoke(TicketId id);

  /// Change a live ticket's face value in place: renegotiating an agreement
  /// (or resizing contributed capacity) without tearing it down. The paper
  /// singles out that Condor's classads cannot even be changed once posted;
  /// tickets can.
  void set_ticket_face(TicketId id, double face);

  // --- inflation / deflation ----------------------------------------------

  /// Change a currency's face value (the paper's "printing more money").
  /// Outstanding relative tickets keep their face, so their conveyed share
  /// shrinks (inflation) or grows (deflation).
  void set_face_value(CurrencyId id, double face_value);

  // --- accessors -----------------------------------------------------------

  std::size_t num_principals() const { return principals_.size(); }
  std::size_t num_currencies() const { return currencies_.size(); }
  std::size_t num_resource_types() const { return resources_.size(); }
  std::size_t num_tickets() const { return tickets_.size(); }

  const Principal& principal(PrincipalId id) const;
  const Currency& currency(CurrencyId id) const;
  const Ticket& ticket(TicketId id) const;
  const ResourceType& resource_type(ResourceTypeId id) const;

  CurrencyId default_currency(PrincipalId id) const { return principal(id).default_currency; }

  /// Find by name; returns an invalid id when absent.
  PrincipalId find_principal(const std::string& name) const;
  CurrencyId find_currency(const std::string& name) const;
  ResourceTypeId find_resource_type(const std::string& name) const;

  /// Sum of relative faces issued by a currency (live tickets only).
  double issued_relative_face(CurrencyId id) const;

  /// True when the currency issues more relative face than its face value
  /// (the paper's "overdraft" situation, Section 3.2).
  bool overdrafted(CurrencyId id) const;

  /// Structural validation: dangling ids, negative faces, self-backing
  /// tickets. Throws InternalError on corruption.
  void check_consistency() const;

 private:
  TicketId new_ticket(Ticket t);

  std::vector<Principal> principals_;
  std::vector<Currency> currencies_;
  std::vector<Ticket> tickets_;
  std::vector<ResourceType> resources_;
};

}  // namespace agora::core
