#include "trace/zipf.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace agora::trace {

ZipfSampler::ZipfSampler(std::size_t n, double s, std::uint64_t seed)
    : s_(s), rng_(seed, /*stream=*/0x5a1fULL) {
  AGORA_REQUIRE(n >= 1, "ZipfSampler needs at least one rank");
  AGORA_REQUIRE(s >= 0.0 && std::isfinite(s), "Zipf exponent must be finite and >= 0");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += std::pow(static_cast<double>(k + 1), -s);
    cdf_[k] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding leaving the last bin short
}

std::size_t ZipfSampler::next() {
  const double u = rng_.next_double();
  // First k with cdf_[k] > u; cdf_.back() == 1 > u always terminates.
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::probability(std::size_t k) const {
  AGORA_REQUIRE(k < cdf_.size(), "rank out of range");
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

double ZipfSampler::mass_of_top(std::size_t k) const {
  if (k == 0) return 0.0;
  return cdf_[std::min(k, cdf_.size()) - 1];
}

ZipfShapeGenerator::ZipfShapeGenerator(Config cfg)
    : cfg_(cfg), zipf_(std::max<std::size_t>(cfg.shapes, 1), cfg.s, cfg.seed) {
  AGORA_REQUIRE(cfg_.participants >= 1, "need at least one participant");
  AGORA_REQUIRE(cfg_.shapes >= 1, "need at least one shape");
  AGORA_REQUIRE(cfg_.amount_levels >= 1, "need at least one amount level");
  AGORA_REQUIRE(cfg_.amount_min >= 0.0 && cfg_.amount_step >= 0.0,
                "amounts must be non-negative");
  // The catalog stream is separate from the sampling stream so that two
  // generators with the same config draw the same shapes no matter how many
  // samples either has produced.
  Pcg32 rng(cfg_.seed, /*stream=*/0xca7a10ULL);
  catalog_.reserve(cfg_.shapes);
  for (std::size_t i = 0; i < cfg_.shapes; ++i) {
    RequestShape shape;
    shape.participant = rng.uniform_u32(static_cast<std::uint32_t>(cfg_.participants));
    shape.amount = cfg_.amount_min +
                   cfg_.amount_step *
                       static_cast<double>(
                           rng.uniform_u32(static_cast<std::uint32_t>(cfg_.amount_levels)));
    catalog_.push_back(shape);
  }
}

}  // namespace agora::trace
