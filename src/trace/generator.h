// generator.h -- synthetic trace generation.
//
// Arrivals: per 10-minute slot, a Poisson count with mean
// peak_rate * weight(slot) * slot_width, placed uniformly inside the slot
// (equivalent to a piecewise-constant non-homogeneous Poisson process).
//
// Response lengths: a lognormal body with a Pareto tail -- the standard
// web-workload shape (most responses are a few KB; rare ones are huge). The
// paper caps per-request cost at c seconds anyway, so the exact tail index
// only mildly affects results.
//
// Time skew: the paper evaluates geographically distributed ISPs by shifting
// otherwise-identical client populations in time ("gap"/time-zone skip).
// `time_shift` cyclically shifts arrivals within the horizon.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/profile.h"
#include "trace/request.h"
#include "util/rng.h"

namespace agora::trace {

struct GeneratorConfig {
  /// Requests per second at profile weight 1.0.
  double peak_rate = 10.0;
  /// Lognormal body: median exp(mu) bytes, shape sigma.
  double body_log_median_bytes = 8.0;  ///< log(~3 KB)
  double body_sigma = 1.2;
  /// Pareto tail: probability, scale (bytes), shape.
  double tail_probability = 0.05;
  double tail_scale_bytes = 30000.0;
  double tail_alpha = 1.3;
  /// Synthetic client population size.
  std::uint32_t num_clients = 5000;
  /// Optional Zipf popularity mode (agora_sim --zipf): when zipf_s > 0,
  /// response lengths are drawn from a fixed catalog of `zipf_catalog`
  /// distinct objects whose rank popularity follows Zipf(zipf_s) (zipf.h),
  /// instead of the fresh lognormal/Pareto draw per request above. The
  /// catalog depends on the config alone, so every proxy sees the same
  /// object population; rank sampling stays deterministic in the per-proxy
  /// seed. A few hot object sizes dominating the stream is what makes the
  /// engine's request-shape plan cache effective end to end.
  double zipf_s = 0.0;
  std::size_t zipf_catalog = 512;
};

/// Mean response length implied by the config (bytes).
double expected_response_bytes(const GeneratorConfig& cfg);

class Generator {
 public:
  Generator(GeneratorConfig cfg, DiurnalProfile profile)
      : cfg_(cfg), profile_(std::move(profile)) {}

  const GeneratorConfig& config() const { return cfg_; }
  const DiurnalProfile& profile() const { return profile_; }

  /// Generate one proxy's stream, deterministically in `seed`, cyclically
  /// shifted by `time_shift` seconds. Arrivals are sorted.
  std::vector<TraceRequest> generate(std::uint64_t seed, double time_shift = 0.0) const;

 private:
  GeneratorConfig cfg_;
  DiurnalProfile profile_;
};

}  // namespace agora::trace
