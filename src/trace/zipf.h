// zipf.h -- seeded Zipf(s) sampling and the request-shape generator built on
// it.
//
// Admission traffic is not uniform: a few participants issue most of the
// consults, and each participant's requests cluster on a few amounts (batch
// sizes, page quanta, connection slots). The decision cache (engine/
// plan_cache.h) exists for exactly this shape of workload, so the benchmark
// and proxysim drive it with the same popularity model trace studies report:
// shape popularity ~ Zipf with exponent s near 1.
//
// ZipfSampler draws ranks in [0, n) with P(rank k) proportional to
// 1 / (k+1)^s via an inverse-CDF table + binary search: O(n) setup, O(log n)
// per sample, bit-reproducible for a fixed (n, s, seed) across platforms
// (Pcg32 underneath, like every other generator in src/trace).
//
// ZipfShapeGenerator materializes a catalog of `shapes` distinct
// (participant, amount) pairs -- participants drawn uniformly, amounts from
// a seeded uniform grid -- and samples the catalog by Zipf rank, so shape
// popularity is Zipf while the shape population itself stays spread across
// participants. `hottest_share(k)` reports the probability mass of the k
// most popular shapes, which is the cache-hit-rate upper bound a benchmark
// should compare against.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace agora::trace {

/// Zipf(s) rank sampler over {0, ..., n-1}: P(k) ~ 1 / (k+1)^s.
class ZipfSampler {
 public:
  /// Requires n >= 1 and s >= 0 (s = 0 degenerates to uniform).
  ZipfSampler(std::size_t n, double s, std::uint64_t seed);

  std::size_t size() const { return cdf_.size(); }
  double exponent() const { return s_; }

  /// Next rank, most popular = 0.
  std::size_t next();

  /// Probability of rank k.
  double probability(std::size_t k) const;

  /// Total probability mass of ranks [0, k) -- the best hit rate any cache
  /// holding the k hottest shapes can reach.
  double mass_of_top(std::size_t k) const;

 private:
  double s_ = 1.0;
  std::vector<double> cdf_;  ///< cdf_[k] = P(rank <= k), cdf_.back() == 1
  Pcg32 rng_;
};

/// One admission request shape: participant `a` asking for `amount`.
struct RequestShape {
  std::size_t participant = 0;
  double amount = 0.0;
};

/// Zipf-popular catalog of request shapes (see file comment).
class ZipfShapeGenerator {
 public:
  struct Config {
    std::size_t participants = 64;  ///< participant ids in [0, participants)
    std::size_t shapes = 512;       ///< catalog size (distinct shapes)
    double s = 1.1;                 ///< Zipf exponent of shape popularity
    /// Amounts are drawn uniformly from {amount_min + j * amount_step} with
    /// j in [0, amount_levels): a discrete grid, because real request sizes
    /// are quantized and cache keys compare exact bits.
    double amount_min = 0.5;
    double amount_step = 0.25;
    std::size_t amount_levels = 16;
    std::uint64_t seed = 1;
  };

  explicit ZipfShapeGenerator(Config cfg);

  const Config& config() const { return cfg_; }
  const std::vector<RequestShape>& catalog() const { return catalog_; }

  /// Next request, sampled by Zipf shape popularity.
  RequestShape next() { return catalog_[zipf_.next()]; }

  /// Popularity mass of the k hottest shapes.
  double hottest_share(std::size_t k) const { return zipf_.mass_of_top(k); }

 private:
  Config cfg_;
  std::vector<RequestShape> catalog_;
  ZipfSampler zipf_;
};

}  // namespace agora::trace
