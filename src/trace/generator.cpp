#include "trace/generator.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "trace/zipf.h"

namespace agora::trace {

double expected_response_bytes(const GeneratorConfig& cfg) {
  const double body_mean =
      std::exp(cfg.body_log_median_bytes + cfg.body_sigma * cfg.body_sigma / 2.0);
  // Pareto mean is finite only for alpha > 1.
  const double tail_mean = cfg.tail_alpha > 1.0
                               ? cfg.tail_scale_bytes * cfg.tail_alpha / (cfg.tail_alpha - 1.0)
                               : cfg.tail_scale_bytes * 10.0;
  return (1.0 - cfg.tail_probability) * body_mean + cfg.tail_probability * tail_mean;
}

std::vector<TraceRequest> Generator::generate(std::uint64_t seed, double time_shift) const {
  Pcg32 rng(seed);
  const double horizon = profile_.horizon();
  const double width = profile_.slot_width();

  // Zipf popularity mode: a config-deterministic object catalog (same size
  // mixture as the per-request draw below, fixed seed so all proxies share
  // it) plus a per-proxy-seeded rank sampler.
  const bool zipf_mode = cfg_.zipf_s > 0.0 && cfg_.zipf_catalog > 0;
  std::vector<std::uint64_t> object_bytes;
  std::optional<ZipfSampler> zipf;
  if (zipf_mode) {
    Pcg32 crng(0x0b1ec7ULL, /*stream=*/0xca7a10ULL);
    object_bytes.reserve(cfg_.zipf_catalog);
    for (std::size_t k = 0; k < cfg_.zipf_catalog; ++k) {
      const double b = crng.next_double() < cfg_.tail_probability
                           ? crng.pareto(cfg_.tail_scale_bytes, cfg_.tail_alpha)
                           : crng.lognormal(cfg_.body_log_median_bytes, cfg_.body_sigma);
      object_bytes.push_back(static_cast<std::uint64_t>(b));
    }
    zipf.emplace(cfg_.zipf_catalog, cfg_.zipf_s, seed);
  }

  std::vector<TraceRequest> out;
  out.reserve(static_cast<std::size_t>(cfg_.peak_rate * profile_.mean_weight() * horizon * 1.1) +
              16);

  for (std::size_t s = 0; s < profile_.slots(); ++s) {
    const double mean = cfg_.peak_rate * profile_.slot_weight(s) * width;
    const std::uint64_t count = rng.poisson(mean);
    const double slot_start = static_cast<double>(s) * width;
    for (std::uint64_t k = 0; k < count; ++k) {
      TraceRequest r;
      double t = slot_start + rng.next_double() * width + time_shift;
      t = std::fmod(t, horizon);
      if (t < 0.0) t += horizon;
      r.arrival = t;
      if (zipf_mode) {
        r.response_bytes = object_bytes[zipf->next()];
      } else if (rng.next_double() < cfg_.tail_probability) {
        r.response_bytes = static_cast<std::uint64_t>(
            rng.pareto(cfg_.tail_scale_bytes, cfg_.tail_alpha));
      } else {
        r.response_bytes = static_cast<std::uint64_t>(
            rng.lognormal(cfg_.body_log_median_bytes, cfg_.body_sigma));
      }
      r.client = rng.uniform_u32(cfg_.num_clients);
      out.push_back(r);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceRequest& a, const TraceRequest& b) { return a.arrival < b.arrival; });
  return out;
}

}  // namespace agora::trace
