// request.h -- one HTTP request in a proxy workload trace.
#pragma once

#include <cstdint>

namespace agora::trace {

struct TraceRequest {
  /// Arrival time in seconds from trace start (within [0, horizon)).
  double arrival = 0.0;
  /// Response length in bytes; drives the paper's a + b*x cost model.
  std::uint64_t response_bytes = 0;
  /// Synthetic client id (stable per generated client population).
  std::uint32_t client = 0;
};

}  // namespace agora::trace
