#include "trace/profile.h"

#include <algorithm>
#include <cmath>

namespace agora::trace {

DiurnalProfile::DiurnalProfile(std::vector<double> slot_weights, double horizon)
    : weights_(std::move(slot_weights)), horizon_(horizon) {
  AGORA_REQUIRE(!weights_.empty(), "profile needs at least one slot");
  AGORA_REQUIRE(horizon_ > 0.0, "profile horizon must be positive");
  for (double w : weights_)
    AGORA_REQUIRE(w >= 0.0 && std::isfinite(w), "slot weights must be non-negative");
}

DiurnalProfile DiurnalProfile::berkeley_like(double horizon, std::size_t slots) {
  // Hourly control points (hour 0 = midnight). Shape follows the paper's
  // Figure 5: peak at midnight, trough around 5am, gradual recovery through
  // the working day, climb through the evening back to the peak.
  static constexpr double kHourly[24] = {
      1.00, 0.93, 0.78, 0.55, 0.36, 0.25, 0.27, 0.32,  // 00..07
      0.40, 0.48, 0.54, 0.58, 0.61, 0.60, 0.62, 0.65,  // 08..15
      0.69, 0.72, 0.75, 0.79, 0.84, 0.89, 0.94, 0.98,  // 16..23
  };
  std::vector<double> w(slots);
  for (std::size_t s = 0; s < slots; ++s) {
    // Hour position of the slot midpoint, wrapped.
    const double hour =
        (static_cast<double>(s) + 0.5) * 24.0 / static_cast<double>(slots);
    const std::size_t h0 = static_cast<std::size_t>(hour) % 24;
    const std::size_t h1 = (h0 + 1) % 24;
    const double frac = hour - std::floor(hour);
    w[s] = kHourly[h0] * (1.0 - frac) + kHourly[h1] * frac;
  }
  return DiurnalProfile(std::move(w), horizon);
}

DiurnalProfile DiurnalProfile::flat(double weight, double horizon, std::size_t slots) {
  return DiurnalProfile(std::vector<double>(slots, weight), horizon);
}

double DiurnalProfile::weight_at(double t) const {
  // Wrap into [0, horizon).
  t = std::fmod(t, horizon_);
  if (t < 0.0) t += horizon_;
  const double width = slot_width();
  // Interpolate between slot midpoints (wrapping).
  const double pos = t / width - 0.5;
  const double base = std::floor(pos);
  const double frac = pos - base;
  const std::size_t n = weights_.size();
  const std::size_t s0 = static_cast<std::size_t>((static_cast<long long>(base) % static_cast<long long>(n) + static_cast<long long>(n))) % n;
  const std::size_t s1 = (s0 + 1) % n;
  return weights_[s0] * (1.0 - frac) + weights_[s1] * frac;
}

double DiurnalProfile::mean_weight() const {
  double s = 0.0;
  for (double w : weights_) s += w;
  return s / static_cast<double>(weights_.size());
}

double DiurnalProfile::peak_weight() const {
  return *std::max_element(weights_.begin(), weights_.end());
}

}  // namespace agora::trace
