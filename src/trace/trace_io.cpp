#include "trace/trace_io.h"

#include <fstream>
#include <sstream>

#include "util/error.h"

namespace agora::trace {

void write_trace(std::ostream& os, const std::vector<TraceRequest>& reqs) {
  os << "# agora trace v1: arrival_seconds response_bytes client_id\n";
  for (const auto& r : reqs) os << r.arrival << " " << r.response_bytes << " " << r.client << "\n";
}

void save_trace(const std::string& path, const std::vector<TraceRequest>& reqs) {
  std::ofstream f(path);
  if (!f) throw IoError("cannot open for writing: " + path);
  write_trace(f, reqs);
  if (!f) throw IoError("write failed: " + path);
}

std::vector<TraceRequest> read_trace(std::istream& is) {
  std::vector<TraceRequest> out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    TraceRequest r;
    if (!(ss >> r.arrival >> r.response_bytes >> r.client))
      throw IoError("malformed trace line " + std::to_string(lineno) + ": " + line);
    if (r.arrival < 0.0)
      throw IoError("negative arrival at line " + std::to_string(lineno));
    out.push_back(r);
  }
  return out;
}

std::vector<TraceRequest> load_trace(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw IoError("cannot open trace: " + path);
  return read_trace(f);
}

}  // namespace agora::trace
