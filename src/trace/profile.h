// profile.h -- diurnal request-rate profiles.
//
// The paper drives its simulator from the UC Berkeley Home-IP traces
// (Nov 1996), averaged into a single 24-hour period with 10-minute slots;
// its Figure 5 shows the load heaviest around midnight and lightest in the
// early morning hours. That trace is not redistributable, so agora ships a
// synthetic profile with the same shape (see DESIGN.md, substitutions): a
// per-hour weight curve peaking at midnight and bottoming out around 5am,
// interpolated smoothly across 144 10-minute slots.
#pragma once

#include <cstddef>
#include <vector>

#include "util/error.h"

namespace agora::trace {

/// Piecewise-linear rate profile over a wrapping 24-hour day.
class DiurnalProfile {
 public:
  /// Build from explicit per-slot weights covering [0, horizon).
  DiurnalProfile(std::vector<double> slot_weights, double horizon);

  /// The Berkeley-Home-IP-like shape: weight 1.0 at midnight falling to
  /// ~0.25 at 5am and recovering through the day and evening.
  /// `horizon` defaults to 24 hours with 10-minute slots.
  static DiurnalProfile berkeley_like(double horizon = 86400.0, std::size_t slots = 144);

  /// Constant load (useful in tests).
  static DiurnalProfile flat(double weight = 1.0, double horizon = 86400.0,
                             std::size_t slots = 144);

  double horizon() const { return horizon_; }
  std::size_t slots() const { return weights_.size(); }
  double slot_width() const { return horizon_ / static_cast<double>(weights_.size()); }

  /// Weight at time t (wrapped into the horizon), linearly interpolated
  /// between slot midpoints.
  double weight_at(double t) const;

  /// Raw weight of slot s.
  double slot_weight(std::size_t s) const { return weights_.at(s); }

  /// Slot midpoint expressed as an hour-of-day in [0, 24) (the horizon is
  /// mapped onto one day regardless of its length).
  double slot_mid_hour(std::size_t s) const {
    AGORA_REQUIRE(s < weights_.size(), "slot index out of range");
    return (static_cast<double>(s) + 0.5) * 24.0 / static_cast<double>(weights_.size());
  }

  /// Mean weight across the day.
  double mean_weight() const;
  /// Largest slot weight.
  double peak_weight() const;

 private:
  std::vector<double> weights_;
  double horizon_;
};

}  // namespace agora::trace
