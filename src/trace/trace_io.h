// trace_io.h -- trace (de)serialization.
//
// Text format, one request per line: "<arrival> <response_bytes> <client>".
// Lines beginning with '#' are comments. The format is deliberately simple
// so real trace data (e.g. a preprocessed Berkeley Home-IP dump) can be
// dropped in without code changes.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/request.h"

namespace agora::trace {

void write_trace(std::ostream& os, const std::vector<TraceRequest>& reqs);
void save_trace(const std::string& path, const std::vector<TraceRequest>& reqs);

/// Parse a trace. Throws IoError on malformed lines or unreadable files.
std::vector<TraceRequest> read_trace(std::istream& is);
std::vector<TraceRequest> load_trace(const std::string& path);

}  // namespace agora::trace
