#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace agora::net {

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void set_nodelay(int fd) {
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

namespace {

sockaddr_in loopback_addr(const std::string& host, std::uint16_t port, bool& ok) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const char* h = host.empty() ? "127.0.0.1" : host.c_str();
  ok = ::inet_pton(AF_INET, h, &addr.sin_addr) == 1;
  return addr;
}

}  // namespace

Fd listen_tcp(std::uint16_t port, std::uint16_t& actual_port, std::string& err) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    err = std::strerror(errno);
    return {};
  }
  int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  bool ok = false;
  sockaddr_in addr = loopback_addr({}, port, ok);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd.get(), 128) != 0 || !set_nonblocking(fd.get())) {
    err = std::strerror(errno);
    return {};
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    err = std::strerror(errno);
    return {};
  }
  actual_port = ntohs(addr.sin_port);
  return fd;
}

Fd connect_tcp(const std::string& host, std::uint16_t port, int timeout_ms, std::string& err) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    err = std::strerror(errno);
    return {};
  }
  bool ok = false;
  sockaddr_in addr = loopback_addr(host, port, ok);
  if (!ok) {
    err = "bad host (dotted-quad IPv4 only): " + host;
    return {};
  }
  if (!set_nonblocking(fd.get())) {
    err = std::strerror(errno);
    return {};
  }
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      err = std::strerror(errno);
      return {};
    }
    pollfd p{fd.get(), POLLOUT, 0};
    const int r = ::poll(&p, 1, timeout_ms);
    if (r <= 0) {
      err = r == 0 ? "connect timeout" : std::strerror(errno);
      return {};
    }
    int so_err = 0;
    socklen_t len = sizeof(so_err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &so_err, &len) != 0 || so_err != 0) {
      err = std::strerror(so_err != 0 ? so_err : errno);
      return {};
    }
  }
  set_nodelay(fd.get());
  return fd;
}

std::ptrdiff_t write_some(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return static_cast<std::ptrdiff_t>(off);
    if (n < 0 && errno == EINTR) continue;
    return -1;
  }
  return static_cast<std::ptrdiff_t>(off);
}

std::ptrdiff_t read_some(int fd, std::uint8_t* buf, std::size_t cap, bool& eof) {
  eof = false;
  while (true) {
    const ssize_t n = ::read(fd, buf, cap);
    if (n > 0) return n;
    if (n == 0) {
      eof = true;
      return 0;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    if (errno == EINTR) continue;
    return -1;
  }
}

}  // namespace agora::net
