#include "net/wire.h"

#include <bit>
#include <cmath>

namespace agora::net {

bool valid_status_code(std::uint8_t c) {
  return c <= static_cast<std::uint8_t>(StatusCode::DeadlineExceeded);
}

void Writer::u16(std::uint16_t v) {
  for (int i = 0; i < 2; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
void Writer::str(const std::string& s) {
  const std::size_t n = std::min<std::size_t>(s.size(), 0xffff);
  u16(static_cast<std::uint16_t>(n));
  out_.insert(out_.end(), s.begin(), s.begin() + static_cast<std::ptrdiff_t>(n));
}

bool Reader::u8(std::uint8_t& v) {
  if (n_ - i_ < 1) return false;
  v = p_[i_++];
  return true;
}
bool Reader::u16(std::uint16_t& v) {
  if (n_ - i_ < 2) return false;
  v = static_cast<std::uint16_t>(p_[i_] | (std::uint16_t{p_[i_ + 1]} << 8));
  i_ += 2;
  return true;
}
bool Reader::u32(std::uint32_t& v) {
  if (n_ - i_ < 4) return false;
  v = 0;
  for (int k = 3; k >= 0; --k) v = (v << 8) | p_[i_ + static_cast<std::size_t>(k)];
  i_ += 4;
  return true;
}
bool Reader::u64(std::uint64_t& v) {
  if (n_ - i_ < 8) return false;
  v = 0;
  for (int k = 7; k >= 0; --k) v = (v << 8) | p_[i_ + static_cast<std::size_t>(k)];
  i_ += 8;
  return true;
}
bool Reader::f64(double& v) {
  std::uint64_t bits = 0;
  if (!u64(bits)) return false;
  v = std::bit_cast<double>(bits);
  return true;
}
bool Reader::str(std::string& s) {
  std::uint16_t n = 0;
  if (!u16(n)) return false;
  if (n_ - i_ < n) return false;
  s.assign(reinterpret_cast<const char*>(p_ + i_), n);
  i_ += n;
  return true;
}

void encode(const ConsultRequest& m, std::vector<std::uint8_t>& out) {
  Writer w(out);
  w.u32(m.participant);
  w.f64(m.amount);
}

bool decode(std::span<const std::uint8_t> in, ConsultRequest& m) {
  Reader r(in);
  return r.u32(m.participant) && r.f64(m.amount) && r.done();
}

void encode(const ConsultReply& m, std::vector<std::uint8_t>& out) {
  Writer w(out);
  w.u8(static_cast<std::uint8_t>(m.code));
  w.str(m.message);
  w.u32(m.retry_after_ms);
  w.u8(m.has_plan ? 1 : 0);
  if (!m.has_plan) return;
  w.f64(m.theta);
  w.u8(m.certified ? 1 : 0);
  w.u64(m.decision_epoch);
  w.f64(m.total_drawn);
  w.u32(static_cast<std::uint32_t>(m.draws.size()));
  for (const WireDraw& d : m.draws) {
    w.u32(d.participant);
    w.f64(d.amount);
  }
}

bool decode(std::span<const std::uint8_t> in, ConsultReply& m) {
  Reader r(in);
  std::uint8_t code = 0, has_plan = 0;
  if (!r.u8(code) || !valid_status_code(code)) return false;
  m.code = static_cast<StatusCode>(code);
  if (!r.str(m.message) || !r.u32(m.retry_after_ms) || !r.u8(has_plan)) return false;
  if (has_plan > 1) return false;
  m.has_plan = has_plan == 1;
  if (!m.has_plan) {
    m.draws.clear();
    return r.done();
  }
  std::uint8_t certified = 0;
  std::uint32_t count = 0;
  if (!r.f64(m.theta) || !r.u8(certified) || certified > 1 || !r.u64(m.decision_epoch) ||
      !r.f64(m.total_drawn) || !r.u32(count) || count > kMaxDraws)
    return false;
  m.certified = certified == 1;
  m.draws.resize(count);
  for (WireDraw& d : m.draws)
    if (!r.u32(d.participant) || !r.f64(d.amount)) return false;
  return r.done();
}

void encode(const InfoReply& m, std::vector<std::uint8_t>& out) {
  Writer w(out);
  w.u32(m.participants);
  w.u64(m.epoch);
  w.u8(m.draining);
  w.u64(m.in_flight);
}

bool decode(std::span<const std::uint8_t> in, InfoReply& m) {
  Reader r(in);
  return r.u32(m.participants) && r.u64(m.epoch) && r.u8(m.draining) && m.draining <= 1 &&
         r.u64(m.in_flight) && r.done();
}

void encode(const WireError& m, std::vector<std::uint8_t>& out) {
  Writer w(out);
  w.u8(m.code);
  w.str(m.message);
}

bool decode(std::span<const std::uint8_t> in, WireError& m) {
  Reader r(in);
  return r.u8(m.code) && r.str(m.message) && r.done();
}

}  // namespace agora::net
