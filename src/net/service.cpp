#include "net/service.h"

#include <poll.h>
#include <sys/socket.h>

#include <chrono>
#include <cstring>
#include <deque>
#include <future>
#include <unordered_map>
#include <vector>

#include "engine/engine.h"
#include "net/socket.h"
#include "net/wire.h"
#include "util/error.h"
#include "util/task_queue.h"

namespace agora::net {

namespace {

using Clock = std::chrono::steady_clock;

/// Cap on the deadline budget a client may request: beyond an hour the
/// arithmetic risks overflow and the number is surely a bug, not a budget.
constexpr std::uint64_t kMaxDeadlineUs = 3'600'000'000ULL;

/// Bytes read per connection per loop round: enough to swallow a burst,
/// small enough that one firehose connection cannot starve its neighbors.
constexpr std::size_t kReadRound = 64 * 1024;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// One ServiceStats field, written by the loop thread, snapshot by anyone:
/// relaxed atomics so stats() is race-free while the service runs.
struct StatCell {
  std::atomic<std::uint64_t> v{0};
  void inc(std::uint64_t n = 1) { v.fetch_add(n, std::memory_order_relaxed); }
  void maxed(std::uint64_t x) {
    std::uint64_t cur = v.load(std::memory_order_relaxed);
    while (x > cur && !v.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
    }
  }
  std::uint64_t get() const { return v.load(std::memory_order_relaxed); }
};

struct StatCells {
  StatCell accepted, rejected, closed, frames_rx, frames_tx, bytes_rx, bytes_tx;
  StatCell malformed, consults, answered, shed_queue, shed_drain, shed_deadline;
  StatCell late_drop, idle_closed, stall_closed, goaway_sent;
  StatCell peak_queue, peak_inflight, peak_connections;

  ServiceStats snapshot() const {
    ServiceStats s;
    s.accepted = accepted.get();
    s.rejected = rejected.get();
    s.closed = closed.get();
    s.frames_rx = frames_rx.get();
    s.frames_tx = frames_tx.get();
    s.bytes_rx = bytes_rx.get();
    s.bytes_tx = bytes_tx.get();
    s.malformed = malformed.get();
    s.consults = consults.get();
    s.answered = answered.get();
    s.shed_queue = shed_queue.get();
    s.shed_drain = shed_drain.get();
    s.shed_deadline = shed_deadline.get();
    s.late_drop = late_drop.get();
    s.idle_closed = idle_closed.get();
    s.stall_closed = stall_closed.get();
    s.goaway_sent = goaway_sent.get();
    s.peak_queue = peak_queue.get();
    s.peak_inflight = peak_inflight.get();
    s.peak_connections = peak_connections.get();
    return s;
  }
};

}  // namespace

struct AgoraService::Impl {
  struct Conn {
    Fd fd;
    FrameDecoder dec;
    std::vector<std::uint8_t> out;
    std::size_t out_off = 0;
    Clock::time_point last_frame;   ///< last complete frame (or accept time)
    Clock::time_point stall_since;  ///< when `out` last had pending bytes w/o progress
    std::size_t outstanding = 0;    ///< consults queued or in flight for this conn
    bool closing = false;           ///< flush `out`, then close
    bool error_sent = false;
  };

  struct Pending {
    std::uint64_t conn = 0;
    std::uint64_t rid = 0;
    std::uint32_t participant = 0;
    double amount = 0.0;
    bool has_deadline = false;
    Clock::time_point deadline{};
    Clock::time_point admitted{};
  };

  struct InFlight {
    std::uint64_t conn = 0;
    std::uint64_t rid = 0;
    bool has_deadline = false;
    Clock::time_point deadline{};
    Clock::time_point admitted{};
    std::future<engine::EngineResult> fut;
  };

  /// One op for the serial pump fronting a non-engine (thread-hostile)
  /// backend: the pump thread is then the only caller of allocate().
  struct PumpOp {
    std::size_t participant = 0;
    double amount = 0.0;
    std::promise<engine::EngineResult> result;
  };

  explicit Impl(AgoraService& svc)
      : svc(svc),
        backend(svc.backend_),
        opts(svc.opts_),
        engine(dynamic_cast<engine::EnforcementEngine*>(&svc.backend_)) {
    const obs::Sink& sink = opts.sink;
    c_accepted = &sink.counter("net.server.conns.accepted");
    c_rejected = &sink.counter("net.server.conns.rejected");
    c_closed = &sink.counter("net.server.conns.closed");
    c_frames_rx = &sink.counter("net.server.frames.rx");
    c_frames_tx = &sink.counter("net.server.frames.tx");
    c_bytes_rx = &sink.counter("net.server.bytes.rx");
    c_bytes_tx = &sink.counter("net.server.bytes.tx");
    c_malformed = &sink.counter("net.server.malformed");
    c_consults = &sink.counter("net.server.consults");
    c_answered = &sink.counter("net.server.answered");
    c_shed_queue = &sink.counter("net.server.shed.queue");
    c_shed_drain = &sink.counter("net.server.shed.drain");
    c_shed_deadline = &sink.counter("net.server.shed.deadline");
    c_late_drop = &sink.counter("net.server.late_drop");
    c_idle_closed = &sink.counter("net.server.idle_closed");
    c_stall_closed = &sink.counter("net.server.stall_closed");
    c_goaway = &sink.counter("net.server.goaway");
    g_conns = &sink.gauge("net.server.connections");
    g_queue = &sink.gauge("net.server.queue_depth");
    g_inflight = &sink.gauge("net.server.inflight");
    h_consult = &sink.histogram("net.server.consult.seconds");
    if (engine == nullptr) {
      pump_thread = std::thread([this] {
        PumpOp op;
        while (pump.wait_pop(op)) {
          engine::EngineResult res;
          try {
            res.plan = backend.allocate(op.participant, op.amount);
            res.status = res.plan.to_status();
          } catch (const std::exception& e) {
            res.status = to_status(e);
          }
          op.result.set_value(std::move(res));
        }
      });
    }
  }

  ~Impl() {
    if (pump_thread.joinable()) {
      pump.close();
      pump_thread.join();
    }
  }

  // --- outbound frames ------------------------------------------------------

  void send_frame(std::uint64_t id, Conn& c, FrameType type, std::uint64_t rid,
                  const std::vector<std::uint8_t>& payload) {
    if (c.closing && type != FrameType::Error && type != FrameType::GoAway) return;
    Frame f;
    f.type = type;
    f.request_id = rid;
    f.payload = payload;
    const std::size_t before = c.out.size();
    if (before == c.out_off) c.stall_since = Clock::now();  // buffer was flushed
    encode_frame(f, c.out);
    stats.frames_tx.inc();
    c_frames_tx->inc();
    const std::size_t added = c.out.size() - before;
    stats.bytes_tx.inc(added);
    c_bytes_tx->inc(added);
    if (c.out.size() - c.out_off > opts.max_write_buffer) {
      // The peer is not reading: keeping an unbounded buffer for it would
      // let one slow client absorb the service's memory.
      stats.stall_closed.inc();
      c_stall_closed->inc();
      close_conn(id, c);
    }
  }

  void send_consult_reply(std::uint64_t id, Conn& c, std::uint64_t rid, const ConsultReply& m) {
    std::vector<std::uint8_t> payload;
    encode(m, payload);
    send_frame(id, c, FrameType::ConsultReply, rid, payload);
    stats.answered.inc();
    c_answered->inc();
  }

  void send_shed(std::uint64_t id, Conn& c, std::uint64_t rid, Status s,
                 std::uint32_t retry_after_ms) {
    ConsultReply m;
    m.code = s.code();
    m.message = s.message();
    m.retry_after_ms = retry_after_ms;
    send_consult_reply(id, c, rid, m);
  }

  void send_goaway(std::uint64_t id, Conn& c) {
    send_frame(id, c, FrameType::GoAway, 0, {});
    stats.goaway_sent.inc();
    c_goaway->inc();
  }

  void protocol_error(std::uint64_t id, Conn& c, std::uint8_t code, const std::string& msg) {
    stats.malformed.inc();
    c_malformed->inc();
    if (!c.error_sent) {
      WireError e;
      e.code = code;
      e.message = msg;
      std::vector<std::uint8_t> payload;
      encode(e, payload);
      send_frame(id, c, FrameType::Error, 0, payload);
      c.error_sent = true;
    }
    c.closing = true;
  }

  /// Retry-after hint scaled by queue pressure: an idle queue suggests the
  /// base delay, a saturated one up to 4x, so shed clients decorrelate
  /// instead of stampeding back on the same tick.
  std::uint32_t retry_hint() const {
    const double fill =
        opts.max_queue == 0
            ? 1.0
            : static_cast<double>(queue.size()) / static_cast<double>(opts.max_queue);
    return opts.retry_after_ms +
           static_cast<std::uint32_t>(3.0 * fill * static_cast<double>(opts.retry_after_ms));
  }

  // --- frame handling -------------------------------------------------------

  void handle_frame(std::uint64_t id, Conn& c, const Frame& f, Clock::time_point now) {
    c.last_frame = now;
    stats.frames_rx.inc();
    c_frames_rx->inc();
    switch (f.type) {
      case FrameType::Ping:
        send_frame(id, c, FrameType::Pong, f.request_id, {});
        return;
      case FrameType::Info: {
        InfoReply m;
        m.participants = static_cast<std::uint32_t>(backend.size());
        m.epoch = engine != nullptr ? engine->epoch() : 0;
        m.draining = svc.draining() ? 1 : 0;
        m.in_flight = queue.size() + inflight.size();
        std::vector<std::uint8_t> payload;
        encode(m, payload);
        send_frame(id, c, FrameType::InfoReply, f.request_id, payload);
        return;
      }
      case FrameType::Consult:
        handle_consult(id, c, f, now);
        return;
      case FrameType::GoAway:
        // Client is leaving; flush what it is owed, then close.
        c.closing = true;
        return;
      case FrameType::Error:
        // Peer reported a violation on our stream; nothing sane to send back.
        stats.malformed.inc();
        c_malformed->inc();
        c.closing = true;
        c.error_sent = true;
        return;
      case FrameType::ConsultReply:
      case FrameType::InfoReply:
      case FrameType::Pong:
        protocol_error(id, c, 0, "unexpected server-to-client frame type from client");
        return;
    }
    protocol_error(id, c, 0, "unhandled frame type");
  }

  void handle_consult(std::uint64_t id, Conn& c, const Frame& f, Clock::time_point now) {
    ConsultRequest req;
    if (!decode(std::span<const std::uint8_t>(f.payload.data(), f.payload.size()), req)) {
      protocol_error(id, c, 0, "malformed consult payload");
      return;
    }
    if (c.closing) return;  // peer half-closed: no channel to answer on
    stats.consults.inc();
    c_consults->inc();
    if (svc.draining()) {
      stats.shed_drain.inc();
      c_shed_drain->inc();
      send_shed(id, c, f.request_id, Status::unavailable("service is draining"),
                opts.retry_after_ms);
      return;
    }
    if (queue.size() >= opts.max_queue) {
      stats.shed_queue.inc();
      c_shed_queue->inc();
      send_shed(id, c, f.request_id, Status::unavailable("admission queue full"),
                retry_hint());
      return;
    }
    if (f.deadline_us > 0 && f.deadline_us < opts.min_deadline_us) {
      stats.shed_deadline.inc();
      c_shed_deadline->inc();
      send_shed(id, c, f.request_id,
                Status::deadline_exceeded("deadline budget below service minimum"), 0);
      return;
    }
    Pending p;
    p.conn = id;
    p.rid = f.request_id;
    p.participant = req.participant;
    p.amount = req.amount;
    p.admitted = now;
    if (f.deadline_us > 0) {
      p.has_deadline = true;
      p.deadline =
          now + std::chrono::microseconds(std::min<std::uint64_t>(f.deadline_us, kMaxDeadlineUs));
    }
    queue.push_back(p);
    c.outstanding++;
    stats.peak_queue.maxed(queue.size());
  }

  // --- dispatch + completion ------------------------------------------------

  std::future<engine::EngineResult> submit(std::uint32_t participant, double amount) {
    if (engine != nullptr) return engine->submit(participant, amount);
    PumpOp op;
    op.participant = participant;
    op.amount = amount;
    std::future<engine::EngineResult> fut = op.result.get_future();
    if (!pump.push(std::move(op))) {
      std::promise<engine::EngineResult> p;
      p.set_value({Status::unavailable("backend pump is shut down"), {}});
      return p.get_future();
    }
    return fut;
  }

  void dispatch(Clock::time_point now) {
    while (!queue.empty() && inflight.size() < opts.max_inflight) {
      Pending p = std::move(queue.front());
      queue.pop_front();
      auto it = conns.find(p.conn);
      if (it == conns.end()) continue;  // client left while queued
      if (p.has_deadline && now >= p.deadline) {
        // The budget ran out while parked: drop, do not compute -- the LP
        // seconds would buy an answer nobody is waiting for.
        stats.shed_deadline.inc();
        c_shed_deadline->inc();
        it->second.outstanding--;
        send_shed(p.conn, it->second, p.rid,
                  Status::deadline_exceeded("deadline expired in admission queue"), 0);
        continue;
      }
      InFlight f;
      f.conn = p.conn;
      f.rid = p.rid;
      f.has_deadline = p.has_deadline;
      f.deadline = p.deadline;
      f.admitted = p.admitted;
      f.fut = submit(p.participant, p.amount);
      inflight.push_back(std::move(f));
      stats.peak_inflight.maxed(inflight.size());
    }
  }

  void complete(InFlight& f, Clock::time_point now) {
    engine::EngineResult res = f.fut.get();
    auto it = conns.find(f.conn);
    if (it != conns.end()) it->second.outstanding--;
    if (it == conns.end() || it->second.closing) return;  // resolved, unreceivable
    Conn& c = it->second;
    if (f.has_deadline && now > f.deadline) {
      // Late answer: the client's budget is spent, it has (or should have)
      // moved on. A definite deadline_exceeded beats a grant that desyncs
      // the two sides' idea of what was admitted.
      stats.late_drop.inc();
      c_late_drop->inc();
      send_shed(f.conn, c, f.rid, Status::deadline_exceeded("answer completed too late"), 0);
      return;
    }
    ConsultReply m;
    m.code = res.status.code();
    m.message = res.status.message();
    const alloc::AllocationPlan& plan = res.plan;
    if (plan.satisfied() && !plan.certified) {
      // Never let an uncertified grant cross the wire, whatever the backend
      // was configured to do. Deny explicitly instead.
      m.code = StatusCode::Denied;
      m.message = "uncertified grant suppressed at the wire boundary";
    } else if (plan.satisfied()) {
      m.has_plan = true;
      m.theta = plan.theta;
      m.certified = plan.certified;
      m.decision_epoch = plan.decision_epoch;
      m.total_drawn = plan.total_drawn();
      for (std::size_t k = 0; k < plan.draw.size(); ++k)
        if (plan.draw[k] != 0.0)
          m.draws.push_back({static_cast<std::uint32_t>(k), plan.draw[k]});
    }
    h_consult->observe(seconds_between(f.admitted, now));
    send_consult_reply(f.conn, c, f.rid, m);
  }

  void sweep(Clock::time_point now) {
    for (std::size_t i = 0; i < inflight.size();) {
      if (inflight[i].fut.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
        complete(inflight[i], now);
        inflight[i] = std::move(inflight.back());
        inflight.pop_back();
      } else {
        ++i;
      }
    }
  }

  // --- connection lifecycle -------------------------------------------------

  void accept_ready(Clock::time_point now) {
    while (true) {
      const int raw = ::accept(listener.get(), nullptr, nullptr);
      if (raw < 0) return;
      Fd fd(raw);
      if (!set_nonblocking(fd.get())) continue;
      set_nodelay(fd.get());
      if (conns.size() >= opts.max_connections) {
        // Turn the peer away explicitly: one best-effort GoAway beats a
        // silent close the client would misread as a crash.
        std::vector<std::uint8_t> buf;
        Frame f;
        f.type = FrameType::GoAway;
        encode_frame(f, buf);
        (void)write_some(fd.get(), buf.data(), buf.size());
        stats.rejected.inc();
        c_rejected->inc();
        continue;
      }
      const std::uint64_t id = next_conn_id++;
      Conn c;
      c.fd = std::move(fd);
      c.dec = FrameDecoder(opts.max_payload);
      c.last_frame = now;
      conns.emplace(id, std::move(c));
      stats.accepted.inc();
      c_accepted->inc();
      stats.peak_connections.maxed(conns.size());
      if (svc.draining()) send_goaway(id, conns.at(id));
    }
  }

  void read_ready(std::uint64_t id, Conn& c, Clock::time_point now) {
    std::uint8_t buf[4096];
    std::size_t total = 0;
    while (total < kReadRound) {
      bool eof = false;
      const std::ptrdiff_t n = read_some(c.fd.get(), buf, sizeof(buf), eof);
      if (n < 0) {
        close_conn(id, c);
        return;
      }
      if (n > 0) {
        total += static_cast<std::size_t>(n);
        stats.bytes_rx.inc(static_cast<std::uint64_t>(n));
        c_bytes_rx->inc(static_cast<std::uint64_t>(n));
        c.dec.feed(std::span<const std::uint8_t>(buf, static_cast<std::size_t>(n)));
      }
      if (eof) {
        c.closing = true;
        break;
      }
      if (n < static_cast<std::ptrdiff_t>(sizeof(buf))) break;
    }
    Frame f;
    while (true) {
      const FrameDecoder::Result r = c.dec.next(f);
      if (r == FrameDecoder::Result::Frame) {
        handle_frame(id, c, f, now);
        continue;
      }
      if (r == FrameDecoder::Result::Error)
        protocol_error(id, c, static_cast<std::uint8_t>(c.dec.error()),
                       to_string(c.dec.error()));
      break;
    }
  }

  void write_ready(std::uint64_t id, Conn& c, Clock::time_point now) {
    if (c.out_off >= c.out.size()) return;
    const std::ptrdiff_t n =
        write_some(c.fd.get(), c.out.data() + c.out_off, c.out.size() - c.out_off);
    if (n < 0) {
      close_conn(id, c);
      return;
    }
    if (n > 0) {
      c.out_off += static_cast<std::size_t>(n);
      c.stall_since = now;
    }
    if (c.out_off >= c.out.size()) {
      c.out.clear();
      c.out_off = 0;
    } else if (c.out_off > (std::size_t{1} << 16)) {
      c.out.erase(c.out.begin(), c.out.begin() + static_cast<std::ptrdiff_t>(c.out_off));
      c.out_off = 0;
    }
  }

  void close_conn(std::uint64_t id, Conn& c) {
    c.closing = true;
    c.out.clear();
    c.out_off = 0;
    c.fd.reset();
    (void)id;
  }

  /// Reap connections that are closed, flushed-and-closing, stalled, or
  /// idle past the timeout.
  void reap(Clock::time_point now) {
    for (auto it = conns.begin(); it != conns.end();) {
      Conn& c = it->second;
      const bool flushed = c.out_off >= c.out.size();
      bool dead = !c.fd.valid() || (c.closing && flushed);
      if (!dead && !flushed &&
          seconds_between(c.stall_since, now) * 1000.0 >
              static_cast<double>(opts.write_stall_timeout_ms)) {
        stats.stall_closed.inc();
        c_stall_closed->inc();
        dead = true;
      }
      if (!dead && flushed && c.outstanding == 0 && !c.closing &&
          seconds_between(c.last_frame, now) * 1000.0 >
              static_cast<double>(opts.idle_timeout_ms)) {
        stats.idle_closed.inc();
        c_idle_closed->inc();
        dead = true;
      }
      if (dead) {
        stats.closed.inc();
        c_closed->inc();
        it = conns.erase(it);
      } else {
        ++it;
      }
    }
  }

  // --- drain ----------------------------------------------------------------

  void begin_drain(Clock::time_point now) {
    drain_started = true;
    drain_deadline = now + std::chrono::milliseconds(opts.drain_grace_ms);
    listener.reset();  // stop accepting; clients fail over on connect refusal
    for (auto& [id, c] : conns)
      if (c.fd.valid() && !c.closing) send_goaway(id, c);
    // Shed everything still parked in the admission queue with a definite
    // unavailable -- EnforcementEngine::shutdown semantics: never burn LP
    // time on a caller that must fail over anyway.
    for (Pending& p : queue) {
      auto it = conns.find(p.conn);
      if (it == conns.end()) continue;
      it->second.outstanding--;
      stats.shed_drain.inc();
      c_shed_drain->inc();
      send_shed(p.conn, it->second, p.rid, Status::unavailable("service is draining"),
                opts.retry_after_ms);
    }
    queue.clear();
  }

  /// True when drain has fully settled: no in-flight work and every
  /// surviving connection flushed (or the grace period expired).
  bool drain_complete(Clock::time_point now) {
    if (!inflight.empty()) {
      if (now < drain_deadline) return false;
      // Grace expired with answers still pending: resolve them definitely
      // (the abandoned futures are harmless -- the backend's result lands
      // in a promise nobody reads), then allow one short flush window so
      // the unavailable replies actually reach the peers.
      for (InFlight& f : inflight) {
        auto it = conns.find(f.conn);
        if (it == conns.end()) continue;
        it->second.outstanding--;
        send_shed(f.conn, it->second, f.rid,
                  Status::unavailable("drain grace period expired"), opts.retry_after_ms);
      }
      inflight.clear();
      drain_deadline = now + std::chrono::milliseconds(100);
      return false;
    }
    for (auto& [id, c] : conns)
      if (c.fd.valid() && c.out_off < c.out.size() && now < drain_deadline) return false;
    return true;
  }

  // --- the loop -------------------------------------------------------------

  void run() {
    std::vector<pollfd> pfds;
    std::vector<std::uint64_t> ids;
    while (true) {
      const bool busy = !inflight.empty() || !queue.empty();
      pfds.clear();
      ids.clear();
      if (listener.valid()) {
        pfds.push_back({listener.get(), POLLIN, 0});
        ids.push_back(0);
      }
      for (auto& [id, c] : conns) {
        if (!c.fd.valid()) continue;
        short ev = 0;
        if (!c.closing) ev |= POLLIN;
        if (c.out_off < c.out.size()) ev |= POLLOUT;
        if (ev == 0) continue;
        pfds.push_back({c.fd.get(), ev, 0});
        ids.push_back(id);
      }
      // With work in flight the loop busy-polls: backend answers land in
      // microseconds and a millisecond poll tick would dominate the p99.
      // Idle, it parks for a full tick.
      const int timeout_ms = busy ? 0 : 20;
      (void)::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), timeout_ms);
      const Clock::time_point now = Clock::now();

      if (svc.draining() && !drain_started) begin_drain(now);

      for (std::size_t i = 0; i < pfds.size(); ++i) {
        if (pfds[i].revents == 0) continue;
        if (ids[i] == 0 && listener.valid() && pfds[i].fd == listener.get()) {
          accept_ready(now);
          continue;
        }
        auto it = conns.find(ids[i]);
        if (it == conns.end() || !it->second.fd.valid()) continue;
        if (pfds[i].revents & (POLLERR | POLLNVAL)) {
          close_conn(ids[i], it->second);
          continue;
        }
        if (pfds[i].revents & (POLLIN | POLLHUP)) read_ready(ids[i], it->second, now);
        if (it->second.fd.valid() && (pfds[i].revents & POLLOUT))
          write_ready(ids[i], it->second, now);
      }

      if (!drain_started) dispatch(now);
      sweep(now);
      // Opportunistic flush: replies generated this round go out now, not a
      // poll tick later.
      for (auto& [id, c] : conns)
        if (c.fd.valid() && c.out_off < c.out.size()) write_ready(id, c, now);
      reap(now);

      g_conns->set(static_cast<double>(conns.size()));
      g_queue->set(static_cast<double>(queue.size()));
      g_inflight->set(static_cast<double>(inflight.size()));

      if (drain_started && queue.empty() && drain_complete(Clock::now())) break;
    }
    // Final accounting: every connection closes, every gauge lands on zero.
    for (auto& [id, c] : conns) {
      (void)id;
      (void)c;
      stats.closed.inc();
      c_closed->inc();
    }
    conns.clear();
    g_conns->set(0.0);
    g_queue->set(0.0);
    g_inflight->set(0.0);
  }

  AgoraService& svc;
  alloc::AllocatorBase& backend;
  ServiceOptions opts;
  engine::EnforcementEngine* engine = nullptr;

  Fd listener;
  std::unordered_map<std::uint64_t, Conn> conns;
  std::uint64_t next_conn_id = 1;
  std::deque<Pending> queue;
  std::vector<InFlight> inflight;
  bool drain_started = false;
  Clock::time_point drain_deadline{};

  BlockingQueue<PumpOp> pump;
  std::thread pump_thread;

  StatCells stats;  ///< loop-thread writes, relaxed-atomic snapshot reads

  obs::Counter *c_accepted = nullptr, *c_rejected = nullptr, *c_closed = nullptr;
  obs::Counter *c_frames_rx = nullptr, *c_frames_tx = nullptr;
  obs::Counter *c_bytes_rx = nullptr, *c_bytes_tx = nullptr;
  obs::Counter *c_malformed = nullptr, *c_consults = nullptr, *c_answered = nullptr;
  obs::Counter *c_shed_queue = nullptr, *c_shed_drain = nullptr, *c_shed_deadline = nullptr;
  obs::Counter *c_late_drop = nullptr, *c_idle_closed = nullptr, *c_stall_closed = nullptr;
  obs::Counter* c_goaway = nullptr;
  obs::Gauge *g_conns = nullptr, *g_queue = nullptr, *g_inflight = nullptr;
  obs::LogHistogram* h_consult = nullptr;
};

AgoraService::AgoraService(alloc::AllocatorBase& backend, ServiceOptions opts)
    : backend_(backend), opts_(std::move(opts)) {}

AgoraService::~AgoraService() {
  stop();
  delete impl_;
}

Status AgoraService::start() {
  AGORA_REQUIRE(impl_ == nullptr && !loop_.joinable(), "AgoraService::start called twice");
  impl_ = new Impl(*this);
  std::string err;
  impl_->listener = listen_tcp(opts_.port, port_, err);
  if (!impl_->listener.valid()) {
    delete impl_;
    impl_ = nullptr;
    return Status::io("bind 127.0.0.1:" + std::to_string(opts_.port) + ": " + err);
  }
  running_.store(true, std::memory_order_release);
  loop_ = std::thread([this] {
    impl_->run();
    running_.store(false, std::memory_order_release);
  });
  return Status();
}

void AgoraService::stop() {
  request_drain();
  if (loop_.joinable()) loop_.join();
}

ServiceStats AgoraService::stats() const {
  // Relaxed-atomic snapshot: race-free while the service runs, exact once
  // stop() has joined the loop thread.
  if (impl_ == nullptr) return {};
  return impl_->stats.snapshot();
}

}  // namespace agora::net
