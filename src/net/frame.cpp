#include "net/frame.h"

#include <array>
#include <cstring>

namespace agora::net {

namespace {

/// Little-endian scalar writes into a byte vector.
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (std::uint16_t{p[1]} << 8));
}
std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}
std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

/// Header byte layout (32 bytes, little-endian; DESIGN.md §14.1):
///   [0,4)   magic          [4]     version        [5]     type
///   [6,8)   flags (0)      [8,16)  request_id     [16,24) deadline_us
///   [24,28) payload_len    [28,32) crc32 (header with this field zeroed,
///                                  then payload)
constexpr std::size_t kOffMagic = 0;
constexpr std::size_t kOffVersion = 4;
constexpr std::size_t kOffType = 5;
constexpr std::size_t kOffFlags = 6;
constexpr std::size_t kOffRequestId = 8;
constexpr std::size_t kOffDeadline = 16;
constexpr std::size_t kOffPayloadLen = 24;
constexpr std::size_t kOffCrc = 28;

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t seed) {
  const auto& t = crc_table();
  std::uint32_t c = seed ^ 0xffffffffu;
  for (std::uint8_t b : data) c = t[(c ^ b) & 0xffu] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

bool valid_frame_type(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(FrameType::Consult) &&
         t <= static_cast<std::uint8_t>(FrameType::Error);
}

void encode_frame(const Frame& f, std::vector<std::uint8_t>& out) {
  const std::size_t start = out.size();
  out.reserve(start + kHeaderSize + f.payload.size());
  put_u32(out, kMagic);
  out.push_back(f.version);
  out.push_back(static_cast<std::uint8_t>(f.type));
  put_u16(out, 0);  // flags: reserved, zero in v1
  put_u64(out, f.request_id);
  put_u64(out, f.deadline_us);
  put_u32(out, static_cast<std::uint32_t>(f.payload.size()));
  put_u32(out, 0);  // crc placeholder
  out.insert(out.end(), f.payload.begin(), f.payload.end());

  // CRC over the header with the crc field zeroed, continued over the
  // payload, written back into the placeholder.
  std::uint32_t c = crc32(std::span<const std::uint8_t>(out.data() + start, kHeaderSize));
  c = crc32(std::span<const std::uint8_t>(f.payload.data(), f.payload.size()), c);
  std::uint8_t* p = out.data() + start + kOffCrc;
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(c >> (8 * i));
}

const char* to_string(DecodeError e) {
  switch (e) {
    case DecodeError::None: return "none";
    case DecodeError::BadMagic: return "bad magic";
    case DecodeError::BadVersion: return "unsupported protocol version";
    case DecodeError::BadFlags: return "nonzero reserved flags";
    case DecodeError::BadType: return "unknown frame type";
    case DecodeError::Oversized: return "payload exceeds the frame limit";
    case DecodeError::BadChecksum: return "checksum mismatch";
  }
  return "unknown";
}

FrameDecoder::FrameDecoder(std::size_t max_payload) : max_payload_(max_payload) {}

void FrameDecoder::feed(std::span<const std::uint8_t> data) {
  if (error_ != DecodeError::None) return;
  // Compact the consumed prefix before growing: the buffer stays bounded by
  // one frame (header + max_payload) plus whatever one feed() delivered.
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > (std::size_t{1} << 16))) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data.begin(), data.end());
}

FrameDecoder::Result FrameDecoder::next(Frame& out) {
  if (error_ != DecodeError::None) return Result::Error;
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kHeaderSize) return Result::NeedMore;
  const std::uint8_t* h = buf_.data() + pos_;

  // Validate every header field BEFORE trusting payload_len: a bit-flipped
  // length must never make us wait for (or allocate) gigabytes.
  if (get_u32(h + kOffMagic) != kMagic) return fail(DecodeError::BadMagic);
  if (h[kOffVersion] != kWireVersion) return fail(DecodeError::BadVersion);
  if (get_u16(h + kOffFlags) != 0) return fail(DecodeError::BadFlags);
  if (!valid_frame_type(h[kOffType])) return fail(DecodeError::BadType);
  const std::uint32_t len = get_u32(h + kOffPayloadLen);
  if (len > max_payload_) return fail(DecodeError::Oversized);
  if (avail < kHeaderSize + len) return Result::NeedMore;

  // Checksum: header with the crc field zeroed, then payload.
  std::uint8_t hdr[kHeaderSize];
  std::memcpy(hdr, h, kHeaderSize);
  std::memset(hdr + kOffCrc, 0, 4);
  std::uint32_t c = crc32(std::span<const std::uint8_t>(hdr, kHeaderSize));
  c = crc32(std::span<const std::uint8_t>(h + kHeaderSize, len), c);
  if (c != get_u32(h + kOffCrc)) return fail(DecodeError::BadChecksum);

  out.version = h[kOffVersion];
  out.type = static_cast<FrameType>(h[kOffType]);
  out.request_id = get_u64(h + kOffRequestId);
  out.deadline_us = get_u64(h + kOffDeadline);
  out.payload.assign(h + kHeaderSize, h + kHeaderSize + len);
  pos_ += kHeaderSize + len;
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
  return Result::Frame;
}

}  // namespace agora::net
