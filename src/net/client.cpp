#include "net/client.h"

#include <poll.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "net/socket.h"
#include "util/error.h"
#include "util/rng.h"

namespace agora::net {

namespace {

using Clock = std::chrono::steady_clock;

int ms_remaining(Clock::time_point deadline) {
  const auto left =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now()).count();
  return left <= 0 ? 0 : static_cast<int>(std::min<long long>(left, 3'600'000));
}

std::uint64_t us_remaining(Clock::time_point deadline) {
  const auto left =
      std::chrono::duration_cast<std::chrono::microseconds>(deadline - Clock::now()).count();
  return left <= 0 ? 0 : static_cast<std::uint64_t>(left);
}

}  // namespace

struct Client::Impl {
  explicit Impl(ClientOptions o) : opts(std::move(o)), rng(opts.seed) {
    AGORA_REQUIRE(!opts.endpoints.empty(), "net::Client needs at least one endpoint");
    AGORA_REQUIRE(opts.max_attempts >= 1, "net::Client needs max_attempts >= 1");
    c_requests = &opts.sink.counter("net.client.requests");
    c_retries = &opts.sink.counter("net.client.retries");
    c_failovers = &opts.sink.counter("net.client.failovers");
    c_timeouts = &opts.sink.counter("net.client.timeouts");
    h_call = &opts.sink.histogram("net.client.call.seconds");
  }

  // --- transport ------------------------------------------------------------

  void disconnect() {
    fd.reset();
    dec = FrameDecoder(opts.max_payload);
  }

  void failover() {
    disconnect();
    cur = (cur + 1) % opts.endpoints.size();
    stats.failovers++;
    c_failovers->inc();
  }

  bool ensure_connected(Clock::time_point deadline) {
    if (fd.valid()) return true;
    const Endpoint& ep = opts.endpoints[cur];
    std::string err;
    const int budget = std::min(opts.connect_timeout_ms, std::max(1, ms_remaining(deadline)));
    fd = connect_tcp(ep.host, ep.port, budget, err);
    if (!fd.valid()) return false;
    dec = FrameDecoder(opts.max_payload);
    stats.reconnects++;
    return true;
  }

  /// Write the whole frame, blocking on POLLOUT up to the deadline.
  bool send_all(const std::vector<std::uint8_t>& buf, Clock::time_point deadline) {
    std::size_t off = 0;
    while (off < buf.size()) {
      const std::ptrdiff_t n = write_some(fd.get(), buf.data() + off, buf.size() - off);
      if (n < 0) return false;
      off += static_cast<std::size_t>(n);
      if (off == buf.size()) break;
      pollfd p{fd.get(), POLLOUT, 0};
      const int left = ms_remaining(deadline);
      if (left == 0 || ::poll(&p, 1, left) <= 0) return false;
    }
    return true;
  }

  /// Read until a frame with `rid` arrives (skipping unrelated frames,
  /// noting GoAway) or the deadline passes. Returns ok / deadline_exceeded /
  /// io / internal(wire).
  Status recv_match(std::uint64_t rid, Frame& out, Clock::time_point deadline) {
    std::uint8_t buf[4096];
    while (true) {
      while (true) {
        const FrameDecoder::Result r = dec.next(out);
        if (r == FrameDecoder::Result::Error) {
          stats.wire_errors++;
          return Status::internal(std::string("wire decode: ") + to_string(dec.error()));
        }
        if (r == FrameDecoder::Result::NeedMore) break;
        if (out.type == FrameType::GoAway) {
          stats.goaways++;
          goaway_seen = true;
          continue;  // server still answers in-flight requests during drain
        }
        if (out.type == FrameType::Error) {
          stats.wire_errors++;
          WireError e;
          (void)decode(std::span<const std::uint8_t>(out.payload.data(), out.payload.size()),
                       e);
          return Status::internal("server error frame: " + e.message);
        }
        if (out.request_id == rid) return Status();
        // A reply to a request this Client no longer waits on (an earlier
        // attempt that timed out client-side): drop it.
      }
      const int left = ms_remaining(deadline);
      if (left == 0) return Status::deadline_exceeded("no reply within budget");
      pollfd p{fd.get(), POLLIN, 0};
      const int r = ::poll(&p, 1, left);
      if (r == 0) return Status::deadline_exceeded("no reply within budget");
      if (r < 0) return Status::io("poll failed");
      bool eof = false;
      const std::ptrdiff_t n = read_some(fd.get(), buf, sizeof(buf), eof);
      if (n < 0 || (eof && n == 0 && dec.buffered() == 0))
        return Status::io("connection closed by server");
      if (n > 0) dec.feed(std::span<const std::uint8_t>(buf, static_cast<std::size_t>(n)));
      if (eof && dec.buffered() == 0) return Status::io("connection closed by server");
    }
  }

  /// One request/reply exchange on the current connection.
  Status roundtrip(FrameType type, const std::vector<std::uint8_t>& payload,
                   FrameType expect, Frame& reply, Clock::time_point deadline) {
    Frame f;
    f.type = type;
    f.request_id = ++next_rid;
    f.deadline_us = us_remaining(deadline);
    if (f.deadline_us == 0) return Status::deadline_exceeded("budget spent before send");
    f.payload = payload;
    std::vector<std::uint8_t> buf;
    encode_frame(f, buf);
    if (!send_all(buf, deadline)) return Status::io("send failed");
    const Status s = recv_match(f.request_id, reply, deadline);
    if (!s.ok()) return s;
    if (reply.type != expect) {
      stats.wire_errors++;
      return Status::internal("unexpected reply frame type");
    }
    return Status();
  }

  /// Sleep before the next attempt: exponential backoff with decorrelation
  /// jitter, capped by the server hint (when given) and the budget.
  void backoff_sleep(std::size_t attempt, std::uint32_t hint_ms, Clock::time_point deadline) {
    double ms = static_cast<double>(opts.backoff_ms);
    for (std::size_t i = 0; i < attempt; ++i) ms *= opts.backoff_mult;
    ms = std::min(ms, static_cast<double>(opts.backoff_cap_ms));
    if (hint_ms > 0) ms = std::min(ms, static_cast<double>(hint_ms));
    ms *= 1.0 - opts.jitter * rng.next_double();
    ms = std::min(ms, static_cast<double>(ms_remaining(deadline)));
    if (ms > 0.0) std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
  }

  ConsultOutcome consult(std::uint32_t participant, double amount, int deadline_ms) {
    const Clock::time_point t0 = Clock::now();
    const Clock::time_point deadline =
        t0 + std::chrono::milliseconds(deadline_ms > 0 ? deadline_ms
                                                       : opts.default_deadline_ms);
    stats.requests++;
    c_requests->inc();
    ConsultOutcome out;
    out.status = Status::unavailable("no attempt completed");
    std::vector<std::uint8_t> payload;
    encode(ConsultRequest{participant, amount}, payload);
    for (std::size_t attempt = 0; attempt < opts.max_attempts; ++attempt) {
      if (attempt > 0) {
        stats.retries++;
        c_retries->inc();
      }
      if (ms_remaining(deadline) == 0) {
        out.status = Status::deadline_exceeded("client budget exhausted");
        break;
      }
      goaway_seen = false;
      if (!ensure_connected(deadline)) {
        out.status = Status::unavailable("connect failed");
        failover();
        backoff_sleep(attempt, 0, deadline);
        continue;
      }
      Frame reply;
      const Status s = roundtrip(FrameType::Consult, payload, FrameType::ConsultReply,
                                 reply, deadline);
      if (!s.ok()) {
        if (s.code() == StatusCode::DeadlineExceeded) {
          stats.timeouts++;
          c_timeouts->inc();
          // The server may still answer this id later; this connection's
          // stream is now ambiguous, so drop it.
          disconnect();
          out.status = s;
          break;
        }
        failover();
        out.status = s;
        backoff_sleep(attempt, 0, deadline);
        continue;
      }
      ConsultReply m;
      if (!decode(std::span<const std::uint8_t>(reply.payload.data(), reply.payload.size()),
                  m)) {
        stats.wire_errors++;
        failover();
        out.status = Status::internal("malformed consult reply");
        backoff_sleep(attempt, 0, deadline);
        continue;
      }
      out.reply = m;
      out.status = Status(m.code, m.message);
      if (m.code == StatusCode::Unavailable) {
        // Shed or draining: rotate away from a draining server, honor the
        // retry-after hint, try again within budget.
        if (goaway_seen) failover();
        backoff_sleep(attempt, m.retry_after_ms, deadline);
        continue;
      }
      break;  // definite decision (grant, denial, deadline, error)
    }
    h_call->observe(std::chrono::duration<double>(Clock::now() - t0).count());
    return out;
  }

  Status simple_call(FrameType type, FrameType expect, Frame& reply, int deadline_ms) {
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(deadline_ms > 0 ? deadline_ms
                                                                 : opts.default_deadline_ms);
    if (!ensure_connected(deadline)) {
      failover();
      return Status::unavailable("connect failed");
    }
    const Status s = roundtrip(type, {}, expect, reply, deadline);
    if (!s.ok() && s.code() != StatusCode::DeadlineExceeded) failover();
    return s;
  }

  ClientOptions opts;
  Pcg32 rng;
  Fd fd;
  FrameDecoder dec{kDefaultMaxPayload};
  std::size_t cur = 0;  ///< current endpoint index
  std::uint64_t next_rid = 0;
  bool goaway_seen = false;
  ClientStats stats;
  obs::Counter *c_requests = nullptr, *c_retries = nullptr, *c_failovers = nullptr;
  obs::Counter* c_timeouts = nullptr;
  obs::LogHistogram* h_call = nullptr;
};

Client::Client(ClientOptions opts) : impl_(new Impl(std::move(opts))) {}
Client::~Client() { delete impl_; }

ConsultOutcome Client::consult(std::uint32_t participant, double amount, int deadline_ms) {
  return impl_->consult(participant, amount, deadline_ms);
}

Status Client::ping(int deadline_ms) {
  Frame reply;
  return impl_->simple_call(FrameType::Ping, FrameType::Pong, reply, deadline_ms);
}

Status Client::info(InfoReply& out, int deadline_ms) {
  Frame reply;
  const Status s =
      impl_->simple_call(FrameType::Info, FrameType::InfoReply, reply, deadline_ms);
  if (!s.ok()) return s;
  if (!decode(std::span<const std::uint8_t>(reply.payload.data(), reply.payload.size()), out))
    return Status::internal("malformed info reply");
  return Status();
}

void Client::disconnect() { impl_->disconnect(); }

std::size_t Client::endpoint_index() const { return impl_->cur; }

const ClientStats& Client::stats() const { return impl_->stats; }

}  // namespace agora::net
