// frame.h -- the length-prefixed, versioned, checksummed binary framing
// layer under agora's wire boundary (DESIGN.md §14).
//
// Everything that crosses a socket is a Frame: a fixed 32-byte header
// followed by a bounded payload. The header carries the four things the
// transport itself must know -- how many bytes to read (payload_len), how to
// interpret them (version + type), which conversation they belong to
// (request_id), and how much time the caller is still willing to wait
// (deadline_us, a RELATIVE budget so client and server need no clock
// agreement). A CRC-32 over header+payload rejects corruption and truncated
// writes explicitly instead of letting them surface as garbage decodes.
//
// FrameDecoder is the receive-side state machine: feed it raw bytes as they
// arrive (partial reads, coalesced frames, one byte at a time -- anything),
// poll next() for complete frames. It never reads past the bytes it was
// given, never allocates more than header + max_payload per frame, and
// every malformed input -- bad magic, version skew, oversized length,
// checksum mismatch, nonzero reserved flags -- lands in a sticky,
// explicit error state the connection owner acts on (reply + close).
// That contract is fuzzed in tests/net_frame_test.cpp under ASan/UBSan.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace agora::net {

/// "AGRA" little-endian: the first four bytes of every agora frame.
inline constexpr std::uint32_t kMagic = 0x41524741u;
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kHeaderSize = 32;
/// Default ceiling on payload bytes; ServiceOptions/ClientOptions may lower
/// it. A 64-participant consult reply is ~600 bytes, so 1 MiB is generous.
inline constexpr std::size_t kDefaultMaxPayload = std::size_t{1} << 20;

enum class FrameType : std::uint8_t {
  Consult = 1,       ///< client -> server: one admission request
  ConsultReply = 2,  ///< server -> client: the definite decision
  Info = 3,          ///< client -> server: service introspection probe
  InfoReply = 4,
  Ping = 5,          ///< liveness probe; server echoes Pong with the same id
  Pong = 6,
  GoAway = 7,        ///< server -> client: draining, fail over now
  Error = 8,         ///< either side: protocol violation notice, then close
};

/// True for the type values a v1 peer may legally send.
bool valid_frame_type(std::uint8_t t);

struct Frame {
  std::uint8_t version = kWireVersion;
  FrameType type = FrameType::Ping;
  std::uint64_t request_id = 0;
  /// Remaining time budget in microseconds at send time; 0 = no deadline.
  std::uint64_t deadline_us = 0;
  std::vector<std::uint8_t> payload;
};

/// CRC-32 (IEEE 802.3, reflected) -- the frame checksum. Exposed for tests.
std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t seed = 0);

/// Serialize a frame (header + payload) into `out` (appended).
void encode_frame(const Frame& f, std::vector<std::uint8_t>& out);

enum class DecodeError : std::uint8_t {
  None = 0,
  BadMagic,     ///< stream desync or a non-agora peer
  BadVersion,   ///< version skew: peer speaks a protocol we do not
  BadFlags,     ///< reserved header flags nonzero (v1 forbids extensions)
  BadType,      ///< unknown frame type
  Oversized,    ///< payload_len above the configured ceiling
  BadChecksum,  ///< CRC mismatch: corruption or truncation
};

const char* to_string(DecodeError e);

class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload = kDefaultMaxPayload);

  /// Append raw bytes from the socket. No-op once in the error state.
  void feed(std::span<const std::uint8_t> data);

  enum class Result {
    Frame,     ///< `out` holds the next complete frame
    NeedMore,  ///< no complete frame buffered yet
    Error,     ///< stream poisoned; see error(). Sticky.
  };

  /// Extract the next complete frame. Call until NeedMore/Error.
  Result next(Frame& out);

  DecodeError error() const { return error_; }
  /// Bytes currently buffered (bounded by kHeaderSize + max_payload).
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  Result fail(DecodeError e) {
    error_ = e;
    return Result::Error;
  }

  std::size_t max_payload_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  ///< consumed prefix of buf_
  DecodeError error_ = DecodeError::None;
};

}  // namespace agora::net
