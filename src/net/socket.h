// socket.h -- the thin POSIX layer under the wire boundary: an RAII fd,
// nonblocking loopback TCP listen/accept/connect, and partial-I/O helpers.
//
// Deliberately minimal: the service binds 127.0.0.1 only (agora's wire
// boundary is a co-located RPC surface, not an internet listener -- put a
// real proxy in front for anything else), uses poll(2) rather than epoll
// so the loop stays portable, and leaves TCP tuning at TCP_NODELAY (frames
// are small and latency-bound; Nagle would serialize the request/reply
// exchange).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace agora::net {

/// Move-only owning file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& o) noexcept : fd_(std::exchange(o.fd_, -1)) {}
  Fd& operator=(Fd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = std::exchange(o.fd_, -1);
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void reset();

 private:
  int fd_ = -1;
};

/// Make `fd` nonblocking (O_NONBLOCK); returns false on fcntl failure.
bool set_nonblocking(int fd);
/// Disable Nagle; best-effort (loopback works without it, just slower).
void set_nodelay(int fd);

/// Bind + listen on 127.0.0.1:`port` (0 = ephemeral), nonblocking.
/// On success stores the bound port in `actual_port`; on failure returns an
/// invalid Fd and stores strerror text in `err`.
Fd listen_tcp(std::uint16_t port, std::uint16_t& actual_port, std::string& err);

/// Connect to 127.0.0.1:`port` (or `host` if nonempty, dotted-quad only),
/// blocking with `timeout_ms`, then switched to nonblocking. Invalid Fd +
/// `err` on failure.
Fd connect_tcp(const std::string& host, std::uint16_t port, int timeout_ms, std::string& err);

/// write(2) as much of [data, data+len) as the socket accepts.
/// Returns bytes written (possibly 0 on EAGAIN), or -1 on a fatal error.
std::ptrdiff_t write_some(int fd, const std::uint8_t* data, std::size_t len);

/// read(2) into [buf, buf+cap). Returns bytes read, 0 for EOF **only when
/// the peer closed** (eof set), -1 on fatal error; EAGAIN reports 0 bytes
/// with eof=false.
std::ptrdiff_t read_some(int fd, std::uint8_t* buf, std::size_t cap, bool& eof);

}  // namespace agora::net
