// service.h -- AgoraService: the overload-safe RPC boundary fronting an
// admission backend (DESIGN.md §14).
//
// One poll(2) loop thread owns every socket and every piece of connection
// state; the compute itself happens on the backend's own threads (an
// EnforcementEngine's shard workers) reached through the never-throwing
// future API of AllocatorBase-compatible backends. The loop:
//
//   * accepts loopback connections (bounded by max_connections; excess
//     peers get a GoAway and a close, never a silent hang),
//   * feeds bytes through a per-connection FrameDecoder, answering Ping/
//     Info inline and pushing Consults onto a BOUNDED admission queue --
//     when the queue is full the request is shed immediately with
//     Status::unavailable plus a retry-after hint scaled by queue pressure,
//   * dispatches queued consults to the backend while the in-flight window
//     has room, dropping (not computing) any whose client-supplied deadline
//     budget already ran out (Status::deadline_exceeded),
//   * sweeps completed futures into ConsultReply frames; an answer that
//     completed after its deadline is replaced by deadline_exceeded -- the
//     client stopped waiting, and a grant nobody applies would leak
//     capacity accounting,
//   * enforces idle and write-stall timeouts so a dead or deliberately
//     slow peer cannot pin a connection slot or unbounded output buffer.
//
// Graceful drain (request_drain(), async-signal-safe; SIGTERM in
// agora_serve): stop accepting, send GoAway on every connection, shed the
// not-yet-dispatched queue with unavailable (EnforcementEngine::shutdown
// semantics -- fail fast, never solve for a caller that must fail over),
// wait up to drain_grace_ms for in-flight answers, resolve stragglers with
// unavailable, flush, close. Every request that ever reached the service
// gets a definite status frame or a definite close -- no future is lost.
//
// Invariant carried across the wire: a reply only claims a grant when the
// backend's plan was Satisfied AND certified; the service never upgrades,
// caches, or invents a decision.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "alloc/allocator_base.h"
#include "net/frame.h"
#include "obs/sink.h"
#include "util/status.h"

namespace agora::engine {
class EnforcementEngine;
}

namespace agora::net {

struct ServiceOptions {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (see port()).
  std::uint16_t port = 0;
  /// Connection ceiling; excess accepts are turned away with GoAway.
  std::size_t max_connections = 256;
  /// Per-frame payload ceiling fed to each connection's FrameDecoder.
  std::size_t max_payload = kDefaultMaxPayload;
  /// Admission-queue bound: consults parked here awaiting an in-flight
  /// slot. Beyond it the service sheds with unavailable + retry-after.
  std::size_t max_queue = 1024;
  /// Cap on consults dispatched to the backend but not yet answered.
  std::size_t max_inflight = 128;
  /// Close a connection this long without a single complete frame.
  int idle_timeout_ms = 30'000;
  /// Close a connection whose pending output made no progress this long
  /// (slow-read attack / dead peer with a full socket buffer).
  int write_stall_timeout_ms = 5'000;
  /// Per-connection pending-output ceiling; beyond it the peer is too slow
  /// to keep and the connection is closed.
  std::size_t max_write_buffer = std::size_t{4} << 20;
  /// Base retry-after hint (ms) on a shed reply; scaled up with queue
  /// pressure so a stampede spreads out instead of retrying in lockstep.
  std::uint32_t retry_after_ms = 20;
  /// Requests carrying a deadline budget below this are shed on arrival:
  /// the answer could not be computed and written back in time anyway.
  std::uint64_t min_deadline_us = 0;
  /// Drain: how long to wait for in-flight backend answers before
  /// resolving the stragglers with unavailable.
  int drain_grace_ms = 5'000;
  obs::Sink sink = obs::Sink::global();
};

/// Service telemetry (relaxed atomics mirrored into net.* obs metrics;
/// exact once the loop thread is joined).
struct ServiceStats {
  std::uint64_t accepted = 0;         ///< connections accepted
  std::uint64_t rejected = 0;         ///< accepts turned away (conn limit)
  std::uint64_t closed = 0;           ///< connections closed (any reason)
  std::uint64_t frames_rx = 0;
  std::uint64_t frames_tx = 0;
  std::uint64_t bytes_rx = 0;
  std::uint64_t bytes_tx = 0;
  std::uint64_t malformed = 0;        ///< decoder/payload errors (then closed)
  std::uint64_t consults = 0;         ///< consult frames that reached admission
  std::uint64_t answered = 0;         ///< definite consult replies written
  std::uint64_t shed_queue = 0;       ///< unavailable: admission queue full
  std::uint64_t shed_drain = 0;       ///< unavailable: draining
  std::uint64_t shed_deadline = 0;    ///< deadline_exceeded before dispatch
  std::uint64_t late_drop = 0;        ///< computed, but after the deadline
  std::uint64_t idle_closed = 0;
  std::uint64_t stall_closed = 0;
  std::uint64_t goaway_sent = 0;
  std::uint64_t peak_queue = 0;       ///< high-water admission-queue depth
  std::uint64_t peak_inflight = 0;
  std::uint64_t peak_connections = 0;
};

class AgoraService {
 public:
  /// The backend outlives the service; the service never owns it.
  explicit AgoraService(alloc::AllocatorBase& backend, ServiceOptions opts = {});
  ~AgoraService();
  AgoraService(const AgoraService&) = delete;
  AgoraService& operator=(const AgoraService&) = delete;

  /// Bind, listen, spawn the loop thread. Io status on bind failure.
  Status start();

  /// The bound port (valid after a successful start()).
  std::uint16_t port() const { return port_; }

  /// Begin graceful drain. Async-signal-safe (one atomic store); the loop
  /// notices within one poll tick. Idempotent.
  void request_drain() { drain_requested_.store(true, std::memory_order_release); }

  /// Drain (if not already) and join the loop thread. Idempotent; the
  /// destructor calls it. After stop() returns every consult ever read
  /// from a socket has been resolved with a definite status.
  void stop();

  bool draining() const { return drain_requested_.load(std::memory_order_acquire); }
  bool running() const { return running_.load(std::memory_order_acquire); }

  ServiceStats stats() const;

 private:
  struct Impl;
  Impl* impl_ = nullptr;  ///< loop-thread state; defined in service.cpp

  alloc::AllocatorBase& backend_;
  ServiceOptions opts_;
  std::uint16_t port_ = 0;
  std::thread loop_;
  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> running_{false};
};

}  // namespace agora::net
