// wire.h -- payload encodings for the v1 frame types (DESIGN.md §14.2).
//
// Frames carry opaque payloads; this header defines what is inside them:
// bounds-checked little-endian scalar codecs (Reader/Writer) and the
// request/reply message structs. Every decode_* returns false on ANY
// malformed input -- truncated buffer, trailing garbage, out-of-range
// enum, absurd counts -- and never reads out of bounds; the fuzz suite
// drives these through the same corpus as the frame decoder.
//
// The consult reply is the protocol's load-bearing message: it always
// carries a definite agora::Status, optionally a retry-after hint
// (set iff the service shed the request and a retry has a chance), and
// optionally a plan summary -- theta, the certification bit, the decision
// epoch, and the nonzero draws in sparse (index, amount) form. The full
// dense plan never crosses the wire: a consult answer is an admission
// decision, not a capacity dump.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace agora::net {

/// Ceiling on the sparse draw count a reply may carry; decode rejects more.
inline constexpr std::uint32_t kMaxDraws = 1u << 16;

/// True for byte values that map to a StatusCode a v1 peer may send.
bool valid_status_code(std::uint8_t c);

// --- bounds-checked byte codecs ---------------------------------------------

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(out) {}
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  /// Length-prefixed (u16) byte string, truncated to 64 KiB - 1.
  void str(const std::string& s);

 private:
  std::vector<std::uint8_t>& out_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : p_(data.data()), n_(data.size()) {}
  bool u8(std::uint8_t& v);
  bool u16(std::uint16_t& v);
  bool u32(std::uint32_t& v);
  bool u64(std::uint64_t& v);
  bool f64(double& v);
  bool str(std::string& s);
  bool done() const { return i_ == n_; }

 private:
  const std::uint8_t* p_;
  std::size_t n_;
  std::size_t i_ = 0;
};

// --- messages ----------------------------------------------------------------

struct ConsultRequest {
  std::uint32_t participant = 0;
  double amount = 0.0;
};

/// Sparse nonzero draw of a granted plan.
struct WireDraw {
  std::uint32_t participant = 0;
  double amount = 0.0;
};

struct ConsultReply {
  StatusCode code = StatusCode::Ok;
  std::string message;
  /// Milliseconds after which a retry is worth attempting; 0 = no hint.
  /// Set iff the service shed the request (queue or deadline pressure,
  /// drain) rather than deciding it.
  std::uint32_t retry_after_ms = 0;
  bool has_plan = false;
  double theta = 0.0;
  bool certified = false;
  std::uint64_t decision_epoch = 0;
  double total_drawn = 0.0;
  std::vector<WireDraw> draws;  ///< nonzero draws only
};

struct InfoReply {
  std::uint32_t participants = 0;
  std::uint64_t epoch = 0;
  std::uint8_t draining = 0;
  std::uint64_t in_flight = 0;
};

/// Error-frame payload (protocol violations; the sender closes after it).
struct WireError {
  std::uint8_t code = 0;  ///< a DecodeError value, or 0 for app-level text
  std::string message;
};

void encode(const ConsultRequest& m, std::vector<std::uint8_t>& out);
void encode(const ConsultReply& m, std::vector<std::uint8_t>& out);
void encode(const InfoReply& m, std::vector<std::uint8_t>& out);
void encode(const WireError& m, std::vector<std::uint8_t>& out);

bool decode(std::span<const std::uint8_t> in, ConsultRequest& m);
bool decode(std::span<const std::uint8_t> in, ConsultReply& m);
bool decode(std::span<const std::uint8_t> in, InfoReply& m);
bool decode(std::span<const std::uint8_t> in, WireError& m);

}  // namespace agora::net
