// client.h -- net::Client, the failover-aware caller side of the wire
// boundary (DESIGN.md §14.4).
//
// A Client owns one socket to one of a list of replica endpoints and speaks
// the framed request/reply protocol synchronously: consult() blocks until a
// definite answer or the caller's deadline budget runs out. The retry
// discipline mirrors rms::RequestClient: bounded attempts, exponential
// backoff with seeded decorrelation jitter, and failover rotation across
// endpoints on connect refusal, timeout, GoAway, or a poisoned stream. A
// server-supplied retry-after hint (attached to shed replies) caps the
// backoff for that attempt -- the server knows its own queue better than
// our exponential guess does.
//
// Every attempt re-stamps the frame header's deadline_us with the REMAINING
// budget, so the server can drop the request the moment the budget is spent
// instead of computing an answer nobody is waiting for.
//
// Thread model: one Client per thread. Clients are cheap (a socket, a
// decoder, a few counters); share endpoints, not Client objects.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/frame.h"
#include "net/wire.h"
#include "obs/sink.h"
#include "util/status.h"

namespace agora::net {

struct Endpoint {
  std::string host;  ///< dotted-quad IPv4; empty = 127.0.0.1
  std::uint16_t port = 0;
};

struct ClientOptions {
  /// Replica endpoints tried in rotation; at least one is required.
  std::vector<Endpoint> endpoints;
  int connect_timeout_ms = 1'000;
  /// Attempts per call (first try + retries/failovers).
  std::size_t max_attempts = 4;
  /// Exponential backoff between attempts: base, multiplier, cap.
  int backoff_ms = 10;
  double backoff_mult = 2.0;
  int backoff_cap_ms = 500;
  /// Decorrelation jitter fraction in [0, 1): each sleep is scaled by a
  /// seeded uniform draw from [1-jitter, 1].
  double jitter = 0.25;
  std::uint64_t seed = 1;
  /// Budget for calls that pass deadline_ms = 0.
  int default_deadline_ms = 1'000;
  std::size_t max_payload = kDefaultMaxPayload;
  obs::Sink sink = obs::Sink::global();
};

/// Telemetry for one Client (single-threaded; read whenever).
struct ClientStats {
  std::uint64_t requests = 0;
  std::uint64_t retries = 0;      ///< extra attempts after the first
  std::uint64_t failovers = 0;    ///< endpoint rotations
  std::uint64_t reconnects = 0;   ///< sockets (re)established
  std::uint64_t timeouts = 0;     ///< attempts abandoned on the wire
  std::uint64_t goaways = 0;      ///< GoAway frames received
  std::uint64_t wire_errors = 0;  ///< decode failures / Error frames
};

struct ConsultOutcome {
  /// Always definite: the server's decision, or the client-side verdict
  /// (deadline_exceeded / unavailable) when no server answered in budget.
  Status status;
  /// Valid when a server answered (status carries its code); holds the
  /// retry-after hint and, for grants, the certified plan summary.
  ConsultReply reply;
};

class Client {
 public:
  explicit Client(ClientOptions opts);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// One admission consult. deadline_ms = 0 uses the default budget.
  ConsultOutcome consult(std::uint32_t participant, double amount, int deadline_ms = 0);

  /// Liveness probe against the current endpoint.
  Status ping(int deadline_ms = 0);

  /// Service introspection (participants, epoch, draining, in-flight).
  Status info(InfoReply& out, int deadline_ms = 0);

  /// Drop the connection (the next call reconnects).
  void disconnect();

  /// Endpoint index the next attempt will use (for failover tests).
  std::size_t endpoint_index() const;

  const ClientStats& stats() const;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace agora::net
