// credit.h -- border credits: capacity loaned across the cut edges of a
// federated partition (DESIGN.md §15).
//
// When a single-component agreement graph is split across shards, the cut
// edges carry entitlements that no shard-local LP can see. Following the
// resource-credit discipline of distributed resource managers (credits are
// *owned* by a lender, *loaned* to a borrower, and *revoked* back -- never
// created or destroyed in flight), every cut edge (lender -> borrower) gets
// one Credit: the lender's shard gives up `remaining` units of the lender's
// physical capacity, and the borrower's shard may grant requests against
// exactly that much via its border bank (see federation.h).
//
// The ledger is the single source of truth for loan state. Three invariants
// are enforced here and property-tested in tests/credit_conservation_test:
//
//   * conservation -- sum(shard-local capacity) + nothing == sum(global
//     capacity): every unit loaned out of a lender is debited from its
//     shard-local capacity and credited to exactly one borrower bank, so
//     no settlement order can mint or lose capacity;
//   * no double-spend -- consume() clamps to the credit's remaining balance
//     and throws on overdraw, so a stale federated plan can never spend the
//     same loaned unit twice;
//   * reconciliation -- a settlement round is planned as a pure function of
//     (ledger, targets) and committed atomically and idempotently (keyed by
//     a monotone settle id), so replaying a committed round -- a crashed
//     coordinator retrying, a duplicated message -- is a no-op.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace agora::engine {

/// One border credit: the full lifecycle accounting for a single cut edge.
/// Amounts are cumulative so the lifecycle is auditable after the fact:
/// remaining() is what the borrower's bank may still spend, and
/// granted == consumed + revoked + remaining() at all times.
struct Credit {
  std::uint64_t id = 0;
  std::uint32_t lender = 0;          ///< global participant owning the capacity
  std::uint32_t borrower = 0;        ///< global participant the loan is earmarked for
  std::uint32_t lender_shard = 0;
  std::uint32_t borrower_shard = 0;
  double granted = 0.0;              ///< cumulative amount ever loaned
  double consumed = 0.0;             ///< cumulative amount spent by applied plans
  double revoked = 0.0;              ///< cumulative amount returned to the lender

  double remaining() const { return granted - consumed - revoked; }
};

/// The worker-visible slice of a credit: what a borrower shard needs to
/// attribute bank draws back to lenders. Plain data, safe to ship in a
/// settlement message (see rms::CreditGrant).
struct CreditSlice {
  std::uint64_t id = 0;
  std::uint32_t lender = 0;
  std::uint32_t borrower = 0;
  double remaining = 0.0;
};

class CreditLedger {
 public:
  /// Register the credit for one cut edge (no capacity moves yet). Returns
  /// the credit id. The credit set is fixed once settlement begins: cut
  /// edges are a property of the partition, only balances vary.
  std::uint64_t add_credit(std::size_t lender, std::size_t borrower,
                           std::size_t lender_shard, std::size_t borrower_shard);

  const std::vector<Credit>& credits() const { return credits_; }
  std::size_t size() const { return credits_.size(); }

  /// Spend `amount` of a credit (an applied federated plan drew this much of
  /// the loan). Throws PreconditionError when the credit is unknown or the
  /// amount overdraws remaining() beyond `tol` -- that is a stale plan, and
  /// honoring it would double-spend loaned capacity. Amounts within tol of
  /// the balance are clamped to it.
  void consume(std::uint64_t id, double amount, double tol = 1e-9);

  // --- settlement (two-phase, idempotent) --------------------------------

  struct Adjustment {
    std::uint64_t credit = 0;
    double delta = 0.0;  ///< > 0: additional grant, < 0: revocation
  };

  struct SettlementPlan {
    std::uint64_t settle_id = 0;
    std::vector<Adjustment> adjust;
  };

  /// Plan the round that moves every credit's balance to `targets[id]`
  /// (clamped: a revocation never exceeds remaining). Pure -- no state
  /// changes; the same ledger + targets always plan the same round, which
  /// is what makes a crashed-and-replanned settlement deterministic.
  SettlementPlan plan_settlement(std::span<const double> targets) const;

  /// Apply a planned round. Idempotent by settle id: a plan at or below the
  /// last committed id is ignored (returns false), so duplicate delivery or
  /// a coordinator replaying after a crash cannot double-apply. Deltas are
  /// re-clamped against the live balance defensively.
  bool commit(const SettlementPlan& plan);

  std::uint64_t last_settle_id() const { return last_settle_id_; }
  std::uint64_t next_settle_id() const { return last_settle_id_ + 1; }

  // --- audits ------------------------------------------------------------

  /// Total un-spent, un-revoked loan volume currently debited from `lender`.
  double outstanding_from(std::size_t lender) const;
  /// Total remaining loan volume earmarked for `borrower`'s bank.
  double inbound_to(std::size_t borrower) const;

  struct Totals {
    double granted = 0.0;
    double consumed = 0.0;
    double revoked = 0.0;
    double outstanding = 0.0;  ///< granted - consumed - revoked
  };
  Totals totals() const;

  /// Exact textual fingerprint of the ledger state (ids, balances as hex
  /// bit patterns, settle id). Two ledgers that ran the same op sequence
  /// digest identically -- the replay/idempotency tests compare these.
  std::string digest() const;

 private:
  std::vector<Credit> credits_;  ///< id == index
  std::uint64_t last_settle_id_ = 0;
};

}  // namespace agora::engine
