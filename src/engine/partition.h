// partition.h -- how the enforcement engine splits participants into shards.
//
// The agreement graph gives a natural sharding axis: capacity can only flow
// along (possibly transitive) agreement edges, so participants in different
// connected components of the agreement graph can never draw on each other.
// A shard that owns a whole set of components can therefore decide requests
// for its participants with a *local* LP over only those participants, and
// the decision is exactly what the global allocator would have produced for
// them (entitlements crossing a component boundary are identically zero).
// This is GMA's locality argument applied to our agreement economies, and
// it is also the perf win: the simplex is superlinear in participant count,
// so eight shards solving 9-variable LPs beat one solver on a 65-variable
// model even on a single core.
//
// When the economy is a single connected component there is no independent
// split. Two fallbacks exist:
//
//   * hash sharding (legacy): participants are hashed to shards for queue
//     routing and every shard owns a full-system replica allocator
//     (mutations are broadcast so replicas stay identical). Decisions stay
//     exact but every shard pays the full-size LP -- the speedup evaporates.
//   * federated sharding (PartitionOptions::federated): the component is cut
//     by min-cut-ish edge scoring -- heavy-edge agglomeration under a size
//     cap, so the heaviest agreement edges stay inside a shard and only the
//     lightest are cut. Cut entitlements are carried by border credits (see
//     federation.h); decisions are certified-feasible but approximate, with
//     the optimality gap measured per epoch.
#pragma once

#include <cstddef>
#include <vector>

#include "agree/matrices.h"

namespace agora::engine {

struct Partition {
  /// Effective shard count (<= requested: never more shards than
  /// components in connectivity mode, never more than participants).
  std::size_t shards = 1;
  /// True when the hash fallback is in use: every shard owns the full
  /// participant set and mutations must be broadcast to all shards.
  bool replicated = false;
  /// True when the edge-scored federated split was used: shard boundaries
  /// may cut agreement edges, so border credits are required for exactness
  /// of routing-local admission (mutually exclusive with `replicated`).
  bool federated = false;
  /// Number of connected components in the agreement graph.
  std::size_t components = 0;
  /// Owning shard per participant (routing key).
  std::vector<std::size_t> shard_of;
  /// Participants owned by each shard, ascending. In replicated mode every
  /// shard lists all participants.
  std::vector<std::vector<std::size_t>> members;
};

struct PartitionOptions {
  std::size_t shards = 1;
  /// Split components by edge-scored agglomeration (with border credits)
  /// instead of hash-replicating when there are fewer components than
  /// requested shards.
  bool federated = false;
  /// Federated size balance: no shard exceeds ceil(n / shards) * (1 +
  /// balance_slack) participants. Larger slack lets heavier edges stay
  /// uncut at the cost of load skew.
  double balance_slack = 0.25;
};

/// Partition the participants of `sys` into at most `opts.shards` shards.
/// Connectivity first: connected components (union of the relative and
/// absolute agreement supports, symmetrized) are bin-packed onto shards,
/// largest first. When there are fewer components than requested shards:
/// federated mode cuts components by heavy-edge agglomeration (lightest
/// total agreement weight crosses shards), otherwise falls back to hash
/// routing over full replicas (single component) or shrinks the shard
/// count.
Partition partition_participants(const agree::AgreementSystem& sys,
                                 const PartitionOptions& opts);

/// Legacy entry point: connectivity-only partitioning (never federated).
Partition partition_participants(const agree::AgreementSystem& sys, std::size_t shards);

}  // namespace agora::engine
