#include "engine/plan_cache.h"

#include <algorithm>
#include <bit>

namespace agora::engine {

namespace {

/// -0.0 and +0.0 are the same request; all other finite doubles key by their
/// exact bit pattern (the engine rejects NaN/inf amounts before the cache).
std::uint64_t amount_bits(double amount) {
  return std::bit_cast<std::uint64_t>(amount == 0.0 ? 0.0 : amount);
}

/// splitmix64 finalizer: cheap, well-distributed, and deterministic across
/// platforms (the cache index must not depend on std::hash quality).
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr std::uint8_t kHotRef = 3;
/// Negative entries start colder than grants: when a grant and a denial
/// compete for the same probe window, the denial is evicted first -- a
/// replayed denial only saves a solve, a replayed grant saves a solve AND
/// keeps the certified fast path hot.
constexpr std::uint8_t kNegRef = 1;

}  // namespace

PlanCache::PlanCache(PlanCacheOptions opts) {
  std::size_t n = std::bit_ceil(std::max<std::size_t>(opts.slots, 64));
  probe_ = std::max<std::size_t>(1, std::min(opts.probe_window, n));
  mask_ = n - 1;
  slots_ = std::vector<Slot>(n);
}

std::size_t PlanCache::base_index(std::size_t participant, double amount) const {
  const std::uint64_t h =
      mix(static_cast<std::uint64_t>(participant) ^ mix(amount_bits(amount)));
  return static_cast<std::size_t>(h) & mask_;
}

PlanCache::LookupResult PlanCache::lookup(std::uint64_t epoch, std::size_t participant,
                                          double amount) {
  const std::size_t base = base_index(participant, amount);
  const std::uint64_t bits = amount_bits(amount);
  for (std::size_t i = 0; i < probe_; ++i) {
    Slot& slot = slots_[(base + i) & mask_];
    std::shared_ptr<const Entry> e = slot.entry.load(std::memory_order_acquire);
    if (!e) continue;
    if (e->participant != participant || amount_bits(e->amount) != bits) continue;
    // insert() overwrites a matching shape in place, so the first shape
    // match in the window is THE entry for this key: no need to probe on.
    if (e->epoch != epoch) {
      stale_.fetch_add(1, std::memory_order_relaxed);
      return {nullptr, Outcome::Stale};
    }
    slot.ref.store(e->negative() ? kNegRef : kHotRef, std::memory_order_relaxed);
    (e->negative() ? neg_hits_ : hits_).fetch_add(1, std::memory_order_relaxed);
    return {std::move(e), Outcome::Hit};
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return {nullptr, Outcome::Miss};
}

void PlanCache::insert(std::uint64_t epoch, std::size_t participant, double amount,
                       const alloc::AllocationPlan& plan) {
  auto entry = std::make_shared<Entry>();
  entry->epoch = epoch;
  entry->participant = participant;
  entry->amount = amount;
  entry->plan = plan;
  entry->nz.reserve(4);
  for (std::size_t k = 0; k < plan.draw.size(); ++k)
    if (plan.draw[k] != 0.0) entry->nz.push_back(static_cast<std::uint32_t>(k));
  const bool negative = entry->negative();
  const std::uint8_t fresh_ref = negative ? kNegRef : kHotRef;

  const std::size_t base = base_index(participant, amount);
  const std::uint64_t bits = amount_bits(amount);
  std::size_t victim = base & mask_;
  std::uint8_t victim_ref = 0xff;
  bool victim_empty = false;
  for (std::size_t i = 0; i < probe_; ++i) {
    const std::size_t idx = (base + i) & mask_;
    Slot& slot = slots_[idx];
    std::shared_ptr<const Entry> e = slot.entry.load(std::memory_order_acquire);
    if (e && e->participant == participant && amount_bits(e->amount) == bits) {
      // Same shape (fresh or stale): refresh in place.
      slot.entry.store(std::move(entry), std::memory_order_release);
      slot.ref.store(fresh_ref, std::memory_order_relaxed);
      (negative ? neg_inserts_ : inserts_).fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (!e) {
      if (!victim_empty) {
        victim = idx;
        victim_empty = true;
      }
      continue;
    }
    // LRU clock: every insert scan passing over a live slot decays its
    // recency; lookups re-arm it. The coldest slot in the window loses.
    std::uint8_t r = slot.ref.load(std::memory_order_relaxed);
    if (r > 0) slot.ref.store(r - 1, std::memory_order_relaxed);
    if (!victim_empty && r < victim_ref) {
      victim = idx;
      victim_ref = r;
    }
  }
  Slot& slot = slots_[victim];
  if (!victim_empty) {
    // Attribute the eviction to the polarity of the DISPLACED entry, so the
    // counters answer "are denials crowding out grants?" directly.
    std::shared_ptr<const Entry> old = slot.entry.load(std::memory_order_acquire);
    (old && old->negative() ? neg_evictions_ : evictions_)
        .fetch_add(1, std::memory_order_relaxed);
  }
  slot.entry.store(std::move(entry), std::memory_order_release);
  slot.ref.store(fresh_ref, std::memory_order_relaxed);
  (negative ? neg_inserts_ : inserts_).fetch_add(1, std::memory_order_relaxed);
}

PlanCacheStats PlanCache::stats() const {
  PlanCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.stale = stale_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.certify_rejects = certify_rejects_.load(std::memory_order_relaxed);
  s.neg_hits = neg_hits_.load(std::memory_order_relaxed);
  s.neg_inserts = neg_inserts_.load(std::memory_order_relaxed);
  s.neg_evictions = neg_evictions_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace agora::engine
