// plan_cache.h -- the epoch-keyed admission decision cache fronting the
// enforcement engine (DESIGN.md §13).
//
// Production admission traffic is heavily repetitive: the same participants
// ask for the same handful of request shapes over and over (trace studies
// behind the paper's proxy experiments show Zipf-like shape popularity).
// Between two capacity mutations the engine's decision function is PURE --
// the answer to (participant, amount) depends only on the published
// CapacitySnapshot -- so a decision computed once per epoch can be replayed
// without touching a shard queue, a worker thread, or the LP.
//
// The cache is a fixed-size open-addressing table keyed by
// (participant, canonicalized amount); the snapshot EPOCH is not part of the
// hash but stored in the entry and compared on lookup. That choice is what
// makes invalidation free: a mutation publishes epoch+1, every cached entry
// silently becomes stale (lookup mismatches), and the next solve of a shape
// overwrites its slot in place -- no flush pass, no generation sweeps.
//
// Concurrency: slots hold std::atomic<std::shared_ptr<const Entry>>, so
// readers (engine front-end, any caller thread) and writers (shard workers
// inserting fresh decisions) never block each other; a reader that loses a
// race simply sees the old or the new immutable entry. Eviction is a probe-
// window LRU clock: each slot carries a reference byte, bumped on hit and
// decayed as insert scans pass over it; the coldest slot in the window is
// replaced.
//
// A cache hit is NEVER granted on the cache's word alone -- the engine
// re-certifies the stored plan against the current snapshot with a sparse
// residual check (see EnforcementEngine::recertify) before returning it,
// preserving the "no uncertified grant" invariant end to end.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "alloc/plan.h"

namespace agora::engine {

struct PlanCacheOptions {
  /// Slot count; rounded up to a power of two, minimum 64.
  std::size_t slots = std::size_t{1} << 13;
  /// Linear-probe window per key. Bounded probing keeps the worst-case
  /// lookup cost flat; a full window falls back to LRU-clock eviction.
  std::size_t probe_window = 8;
};

/// Counter snapshot (relaxed reads; exact once the engine is quiescent).
/// The neg_* family tracks NEGATIVE entries -- cached certified denials
/// (PlanStatus::Insufficient) replayed so a hammering requester cannot buy
/// an LP solve per refusal. misses/stale are shared: at lookup time the
/// polarity of an absent answer is unknown.
struct PlanCacheStats {
  std::uint64_t hits = 0;  ///< grant (positive-entry) hits
  std::uint64_t misses = 0;
  std::uint64_t stale = 0;  ///< shape found but from an older epoch
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;        ///< inserts that displaced a live grant
  std::uint64_t certify_rejects = 0;  ///< hits the residual re-check refused
  std::uint64_t neg_hits = 0;
  std::uint64_t neg_inserts = 0;
  std::uint64_t neg_evictions = 0;  ///< inserts that displaced a live denial
};

class PlanCache {
 public:
  /// An immutable cached decision. `plan` is the full globalized plan as the
  /// engine returned it (decision_epoch == epoch); `nz` lists the indices of
  /// its nonzero draws so the engine's residual re-check touches only the
  /// rows that matter.
  struct Entry {
    std::uint64_t epoch = 0;
    std::size_t participant = 0;
    double amount = 0.0;
    alloc::AllocationPlan plan;
    std::vector<std::uint32_t> nz;

    /// A cached certified denial (no draws to replay, only the refusal).
    bool negative() const { return plan.status != alloc::PlanStatus::Satisfied; }
  };

  enum class Outcome { Hit, Miss, Stale };

  struct LookupResult {
    std::shared_ptr<const Entry> entry;  ///< non-null iff outcome == Hit
    Outcome outcome = Outcome::Miss;
  };

  explicit PlanCache(PlanCacheOptions opts = {});
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Find the decision for (participant, amount) made at exactly `epoch`.
  LookupResult lookup(std::uint64_t epoch, std::size_t participant, double amount);

  /// Publish a decision. `plan` must be a certified, globalized plan
  /// computed against snapshot `epoch` -- Satisfied (a replayable grant) or
  /// Insufficient (a replayable denial; inserted COLD, so under probe-window
  /// pressure denials are evicted before grants). A same-shape entry
  /// anywhere in the probe window is overwritten in place (this is how
  /// stale entries die, and how a denial flips to a grant after a capacity
  /// mutation).
  void insert(std::uint64_t epoch, std::size_t participant, double amount,
              const alloc::AllocationPlan& plan);

  /// Record a hit the engine's residual re-certification rejected (counted
  /// here so PlanCacheStats tells the whole admission story in one struct).
  void note_certify_reject() { certify_rejects_.fetch_add(1, std::memory_order_relaxed); }

  std::size_t slots() const { return slots_.size(); }
  PlanCacheStats stats() const;

 private:
  struct Slot {
    std::atomic<std::shared_ptr<const Entry>> entry;
    std::atomic<std::uint8_t> ref{0};  ///< LRU-clock recency, saturating
  };

  std::size_t base_index(std::size_t participant, double amount) const;

  std::size_t mask_ = 0;
  std::size_t probe_ = 8;
  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> stale_{0};
  std::atomic<std::uint64_t> inserts_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> certify_rejects_{0};
  std::atomic<std::uint64_t> neg_hits_{0};
  std::atomic<std::uint64_t> neg_inserts_{0};
  std::atomic<std::uint64_t> neg_evictions_{0};
};

}  // namespace agora::engine
