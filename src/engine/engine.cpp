#include "engine/engine.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "util/error.h"

namespace agora::engine {

namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

/// The sub-economy a shard enforces: the agreement system restricted to its
/// members. Exact in connectivity mode -- every agreement edge touching a
/// member stays inside the member set (that is what a connected component
/// is), so no entitlement is lost in the restriction.
agree::AgreementSystem induce(const agree::AgreementSystem& sys,
                              const std::vector<std::size_t>& members) {
  const std::size_t m = members.size();
  agree::AgreementSystem sub(m);
  for (std::size_t l = 0; l < m; ++l) {
    sub.capacity[l] = sys.capacity[members[l]];
    sub.retained[l] = sys.retained[members[l]];
    for (std::size_t k = 0; k < m; ++k) {
      sub.relative(l, k) = sys.relative(members[l], members[k]);
      sub.absolute(l, k) = sys.absolute(members[l], members[k]);
    }
  }
  return sub;
}

}  // namespace

EnforcementEngine::EnforcementEngine(agree::AgreementSystem sys, EngineOptions opts)
    : sys_(std::move(sys)), n_(sys_.size()), opts_(std::move(opts)) {
  PartitionOptions popts;
  popts.shards = opts_.threads;
  popts.federated = opts_.federation.enabled;
  popts.balance_slack = opts_.federation.balance_slack;
  part_ = partition_participants(sys_, popts);

  obs_consults_ = &opts_.sink.counter("engine.consults");
  obs_batches_ = &opts_.sink.counter("engine.batches");
  obs_coalesced_batches_ = &opts_.sink.counter("engine.batches.coalesced");
  obs_coalesced_ops_ = &opts_.sink.counter("engine.requests.coalesced");
  obs_epochs_ = &opts_.sink.counter("engine.epochs");
  obs_batch_size_ = &opts_.sink.histogram("engine.batch.size");
  obs_pc_hits_ = &opts_.sink.counter("engine.plan_cache.hits");
  obs_pc_misses_ = &opts_.sink.counter("engine.plan_cache.misses");
  obs_pc_stale_ = &opts_.sink.counter("engine.plan_cache.stale");
  obs_pc_rejects_ = &opts_.sink.counter("engine.plan_cache.certify_rejects");
  obs_pc_neg_hits_ = &opts_.sink.counter("engine.plan_cache.neg_hits");
  obs_pc_neg_rejects_ = &opts_.sink.counter("engine.plan_cache.neg_rejects");
  obs_fed_settlements_ = &opts_.sink.counter("engine.federation.settlements");
  obs_fed_gap_probes_ = &opts_.sink.counter("engine.federation.gap_probes");
  obs_fed_outstanding_ = &opts_.sink.gauge("engine.federation.outstanding");
  obs_fed_gap_rel_ = &opts_.sink.gauge("engine.federation.gap_rel");

  if (opts_.plan_cache) {
    pcache_ = std::make_unique<PlanCache>(
        PlanCacheOptions{opts_.plan_cache_slots, /*probe_window=*/8});
  }
  if (opts_.plan_cache || part_.federated) {
    // The global perturbation coefficients: one row per drawn-on participant
    // k, that_(k, i) = capacity drop at i per unit drawn at k. Identical to
    // the compact LP's perturbation rows (clamped transitive shares off the
    // diagonal, retained share on it), and global in every sharding mode --
    // which is what makes it usable both for plan-cache re-certification and
    // for the federation's loan targets / gap probes.
    that_ = agree::overdraft_clamp(
        agree::transitive_shares(sys_.relative, opts_.alloc.transitive));
    for (std::size_t i = 0; i < n_; ++i) that_(i, i) = sys_.retained[i];
  }

  std::vector<Federation::ShardUpdate> fed_init;
  if (part_.federated) {
    fed_ = std::make_unique<Federation>(sys_, part_, that_, opts_.federation);
    if (!fed_->active()) {
      // The packing happened to cut no entitlement-carrying edges: this is
      // plain connectivity sharding, no credits or settlement needed.
      fed_.reset();
    } else {
      fed_init = fed_->settle(sys_.capacity);  // grant the initial loans
      if (opts_.federation.gap_probes > 0) {
        alloc::AllocatorOptions xopts = opts_.alloc;
        xopts.certify = false;  // reference measurements, never admissions
        xopts.fast_path = false;
        exact_ = std::make_unique<alloc::Allocator>(sys_, xopts);
      }
    }
  }

  const std::size_t n = n_;
  shards_.reserve(part_.shards);
  for (std::size_t s = 0; s < part_.shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->id = s;
    shard->members = part_.members[s];
    shard->local_of.assign(n, kNpos);
    for (std::size_t l = 0; l < shard->members.size(); ++l)
      shard->local_of[shard->members[l]] = l;
    if (fed_) {
      shard->alloc = std::make_shared<alloc::Allocator>(
          fed_->local_system(s, sys_.capacity), opts_.alloc);
      shard->bank = fed_->bank_index(s);
      shard->credits = std::move(fed_init[s].credits);
    } else {
      shard->alloc = std::make_shared<alloc::Allocator>(
          part_.replicated ? sys_ : induce(sys_, shard->members), opts_.alloc);
    }
    shard->obs_queue_depth =
        &opts_.sink.gauge("engine.shard." + std::to_string(s) + ".queue_depth");
    shards_.push_back(std::move(shard));
  }

  // Construction-time snapshot (epoch 0), computed before the workers start
  // so the allocators can be read directly.
  std::vector<double> available(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const Shard& owner = *shards_[part_.shard_of[i]];
    available[i] = owner.alloc->available_to(owner.local_of[i]);
  }
  cell_.store(std::make_shared<const CapacitySnapshot>(
      CapacitySnapshot{0, sys_.capacity, std::move(available)}));

  for (auto& shard : shards_)
    shard->worker = std::thread([this, s = shard.get()] { worker_loop(*s); });
}

EnforcementEngine::~EnforcementEngine() { shutdown(); }

void EnforcementEngine::shutdown() {
  // Order matters: the flag goes up first, then the queues close. A worker
  // that drains after this sees stopping_ and fails its consults fast; a
  // submit() racing the close either enqueues (and is failed fast by the
  // worker) or loses to the closed queue (and gets a ready Unavailable
  // future from submit_unchecked). Either way the future resolves.
  stopping_.store(true, std::memory_order_release);
  for (auto& shard : shards_) shard->queue.close();
  for (auto& shard : shards_)
    if (shard->worker.joinable()) shard->worker.join();
}

void EnforcementEngine::worker_loop(Shard& shard) {
  std::vector<Op> batch;
  while (shard.queue.wait_drain(batch) > 0) {
    shard.batches.fetch_add(1, std::memory_order_relaxed);
    obs_batches_->inc();
    obs_batch_size_->observe(static_cast<double>(batch.size()));
    std::uint64_t prev = shard.max_batch.load(std::memory_order_relaxed);
    while (batch.size() > prev &&
           !shard.max_batch.compare_exchange_weak(prev, batch.size(),
                                                  std::memory_order_relaxed)) {
    }
    if (batch.size() > 1) {
      // Coalesced work. Serial blocking callers can never trigger this (the
      // worker drains their single op before they submit the next), which
      // keeps the threads=1 event stream byte-identical to the direct path.
      shard.coalesced_batches.fetch_add(1, std::memory_order_relaxed);
      shard.coalesced_ops.fetch_add(batch.size() - 1, std::memory_order_relaxed);
      obs_coalesced_batches_->inc();
      obs_coalesced_ops_->inc(batch.size() - 1);
      opts_.sink.event(static_cast<double>(shard.ordinal), obs::EventKind::EngineBatch,
                       static_cast<std::uint32_t>(shard.id), 0,
                       static_cast<double>(batch.size()));
    }
    for (Op& op : batch) {
      process(shard, op);
      ++shard.ordinal;
    }
  }
}

void EnforcementEngine::process(Shard& shard, Op& op) {
  switch (op.kind) {
    case Op::Kind::Consult: {
      if (stopping_.load(std::memory_order_acquire)) {
        // Fail-fast on shutdown: the blocked caller gets a Status instead
        // of waiting for an LP solve nobody can act on anymore. Mutations
        // and queries below still complete -- their callers hold acks that
        // must carry real state.
        op.result.set_value(EngineResult{Status::unavailable("engine is shut down"), {}});
        return;
      }
      shard.consults.fetch_add(1, std::memory_order_relaxed);
      obs_consults_->inc();
      EngineResult res;
      try {
        alloc::AllocationPlan local = shard.alloc->allocate(op.principal, op.amount);
        res.plan = fed_ ? federate(shard, std::move(local), op.global)
                        : globalize(shard, std::move(local));
        // The decision was made against this shard's post-mutation state,
        // which is exactly the epoch-muts_applied snapshot (see the field's
        // comment); stamp it so callers can assert freshness.
        res.plan.decision_epoch = shard.muts_applied;
        res.status = res.plan.to_status();
        if (fed_ && res.plan.satisfied() && opts_.federation.gap_probes > 0)
          sample_gap(shard, res.plan, op.global, op.amount);
        // Cache certified outcomes of BOTH polarities: grants for replay,
        // and Insufficient denials (certified infeasible via the Farkas
        // witness when the pipeline runs certify-on) so a requester
        // hammering an impossible amount stops costing an LP solve per
        // refusal. Denied / SolverFailed are give-ups, never cached.
        if (pcache_ && res.plan.certified &&
            (res.plan.status == alloc::PlanStatus::Satisfied ||
             res.plan.status == alloc::PlanStatus::Insufficient))
          pcache_->insert(shard.muts_applied, op.global, op.amount, res.plan);
      } catch (const std::exception& e) {
        res.plan = {};
        res.status = to_status(e);
      }
      op.result.set_value(std::move(res));
      return;
    }
    case Op::Kind::Apply:
    case Op::Kind::Release:
    case Op::Kind::SetCapacities: {
      // All mutations arrive pre-reduced to "replace this shard's capacity
      // slice" (mutate() folds draws / give-backs into the global vector
      // before fan-out), so the shard-level operation is always
      // set_capacities and replicas in hash mode stay identical. Federated
      // settlements that move the bank's earmarks additionally carry a
      // rebuilt local system (agreement matrices are immutable on a live
      // allocator) and the shard's new credit table.
      try {
        if (op.rebuild) {
          lp::accumulate(shard.carried, *shard.alloc->solver_stats());
          // atomic_store: stats() may be snapshotting the old allocator's
          // counters from another thread while we swap it out.
          std::atomic_store(&shard.alloc,
                            std::make_shared<alloc::Allocator>(*op.rebuild, opts_.alloc));
        } else {
          shard.alloc->set_capacities(std::span<const double>(op.vec));
        }
        if (fed_) shard.credits = std::move(op.credits);
        ++shard.muts_applied;
        ShardView view;
        view.capacity.assign(op.vec.begin(), op.vec.end());
        view.available.resize(shard.members.size());
        for (std::size_t l = 0; l < shard.members.size(); ++l)
          view.available[l] = shard.alloc->available_to(l);
        view.gaps = std::move(shard.gap_samples);
        shard.gap_samples.clear();
        shard.gap_next = 0;
        op.view.set_value(std::move(view));
      } catch (...) {
        op.view.set_exception(std::current_exception());
      }
      return;
    }
    case Op::Kind::Query: {
      ShardView view;
      view.pipeline = shard.carried;
      lp::accumulate(view.pipeline, *shard.alloc->solver_stats());
      op.view.set_value(std::move(view));
      return;
    }
  }
}

alloc::AllocationPlan EnforcementEngine::globalize(const Shard& shard,
                                                   alloc::AllocationPlan local) const {
  if (part_.replicated || shard.members.size() == n_) return local;
  const auto snap = cell_.load();
  alloc::AllocationPlan plan;
  plan.status = local.status;
  plan.theta = local.theta;
  plan.lp_iterations = local.lp_iterations;
  plan.exact_mode_fell_back = local.exact_mode_fell_back;
  plan.certified = local.certified;
  plan.solver_fallbacks = local.solver_fallbacks;
  const auto overlay = [&](const std::vector<double>& loc, const std::vector<double>& base,
                           double fill) {
    std::vector<double> out;
    if (loc.empty()) return out;
    out = base.empty() ? std::vector<double>(n_, fill) : base;
    for (std::size_t l = 0; l < shard.members.size(); ++l) out[shard.members[l]] = loc[l];
    return out;
  };
  plan.draw = overlay(local.draw, {}, 0.0);
  // Non-member availabilities come from the published snapshot: this plan
  // cannot change them (zero cross-component entitlements).
  plan.capacity_before = overlay(local.capacity_before, snap->available, 0.0);
  plan.capacity_after = overlay(local.capacity_after, snap->available, 0.0);
  return plan;
}

alloc::AllocationPlan EnforcementEngine::federate(Shard& shard, alloc::AllocationPlan local,
                                                  std::size_t a) const {
  const std::size_t m = shard.members.size();
  double bank_draw = 0.0;
  if (shard.bank != kNpos && local.draw.size() > shard.bank)
    bank_draw = local.draw[shard.bank];
  const auto trim = [m](std::vector<double>& v) {
    if (v.size() > m) v.resize(m);
  };
  trim(local.draw);
  trim(local.capacity_before);
  trim(local.capacity_after);
  alloc::AllocationPlan plan = globalize(shard, std::move(local));
  if (bank_draw <= 0.0 || plan.draw.empty()) return plan;
  // Attribute the bank draw to individual credits greedily in id order:
  // deterministic, and exhaustive because the local LP bounds the draw by
  // the requester's earmark (the sum of its credit balances).
  double left = bank_draw;
  for (const CreditSlice& c : shard.credits) {
    if (c.borrower != a || left <= 0.0) continue;
    const double take = std::min(left, c.remaining);
    if (take <= 0.0) continue;
    plan.draw[c.lender] += take;
    plan.borrowed.push_back(alloc::BorrowedDraw{c.id, take});
    left -= take;
  }
  if (left > 0.0 && !plan.borrowed.empty()) {
    // Feasibility-tolerance residue past the earmark: fold it into the last
    // credit touched (CreditLedger::consume clamps within tolerance) so the
    // global draws still sum to the granted amount.
    alloc::BorrowedDraw& b = plan.borrowed.back();
    b.amount += left;
    for (const CreditSlice& c : shard.credits) {
      if (c.id != b.credit) continue;
      plan.draw[c.lender] += left;
      break;
    }
  }
  return plan;
}

void EnforcementEngine::sample_gap(Shard& shard, const alloc::AllocationPlan& plan,
                                   std::size_t a, double amount) const {
  // The plan's measured global perturbation: the worst capacity drop its
  // draw vector induces anywhere under the global coefficients -- what the
  // exact LP's theta is compared against at the next settlement.
  thread_local std::vector<double> drop;
  drop.assign(n_, 0.0);
  for (std::size_t k = 0; k < n_; ++k)
    if (plan.draw[k] != 0.0) vaxpy(plan.draw[k], that_.row(k), std::span<double>(drop));
  GapSample s;
  s.participant = a;
  s.amount = amount;
  s.theta_global = *std::max_element(drop.begin(), drop.end());
  const std::size_t cap = opts_.federation.gap_probes;
  if (shard.gap_samples.size() < cap)
    shard.gap_samples.push_back(s);
  else
    shard.gap_samples[shard.gap_next % cap] = s;
  ++shard.gap_next;
}

alloc::AllocationPlan EnforcementEngine::consult(std::size_t a, double amount) const {
  AGORA_REQUIRE(a < n_, "unknown principal");
  AGORA_REQUIRE(amount >= 0.0 && std::isfinite(amount), "request must be non-negative");
  if (pcache_ && !stopping_.load(std::memory_order_acquire)) {
    if (std::optional<alloc::AllocationPlan> hit = cached_decision(a, amount))
      return std::move(*hit);
  }
  EngineResult res = submit_unchecked(a, amount).get();
  switch (res.status.code()) {
    case StatusCode::Ok:
    case StatusCode::Insufficient:
    case StatusCode::Denied:
    case StatusCode::SolverFailed:
      return std::move(res.plan);
    case StatusCode::InvalidArgument:
    case StatusCode::Unavailable:
    case StatusCode::DeadlineExceeded:
      throw PreconditionError(res.status.to_string());
    case StatusCode::Internal:
    case StatusCode::Io:
      break;
  }
  throw InternalError(res.status.to_string());
}

std::future<EngineResult> EnforcementEngine::submit(std::size_t a, double amount) const {
  if (a >= n_ || amount < 0.0 || !std::isfinite(amount)) {
    std::promise<EngineResult> p;
    p.set_value(EngineResult{
        Status::invalid_argument(a >= n_ ? "unknown principal"
                                                  : "request must be non-negative"),
        {}});
    return p.get_future();
  }
  if (pcache_ && !stopping_.load(std::memory_order_acquire)) {
    if (std::optional<alloc::AllocationPlan> hit = cached_decision(a, amount)) {
      std::promise<EngineResult> p;
      EngineResult res;
      res.status = hit->to_status();
      res.plan = std::move(*hit);
      p.set_value(std::move(res));
      return p.get_future();
    }
  }
  return submit_unchecked(a, amount);
}

std::optional<alloc::AllocationPlan> EnforcementEngine::cached_decision(
    std::size_t a, double amount) const {
  const std::shared_ptr<const CapacitySnapshot> snap = cell_.load();
  PlanCache::LookupResult found = pcache_->lookup(snap->epoch, a, amount);
  switch (found.outcome) {
    case PlanCache::Outcome::Miss:
      obs_pc_misses_->inc();
      return std::nullopt;
    case PlanCache::Outcome::Stale:
      obs_pc_stale_->inc();
      return std::nullopt;
    case PlanCache::Outcome::Hit:
      break;
  }
  if (found.entry->negative()) {
    // Cached denial. The cheap re-check mirrors recertify()'s role for
    // grants: confirm infeasibility against the PUBLISHED snapshot (the
    // epoch compare may have raced a concurrent publish). Insufficient
    // means demand exceeds availability C_a, so the denial still holds iff
    // the amount is strictly beyond what the snapshot makes available.
    const double tol = opts_.alloc.solve.tols.feasibility;
    if (amount > snap->available[a] + tol * (1.0 + std::fabs(amount))) {
      obs_pc_neg_hits_->inc();
      obs_consults_->inc();
      return found.entry->plan;
    }
    // Availability caught up with the request: the denial is no longer
    // provable. Fall through to a fresh solve (which will overwrite the
    // entry with a grant if one exists).
    pcache_->note_certify_reject();
    obs_pc_neg_rejects_->inc();
    return std::nullopt;
  }
  if (!recertify(*found.entry, *snap)) {
    // The stored plan no longer proves admissible against the published
    // state (e.g. the snapshot moved between the epoch compare and here).
    // Never serve it -- fall through to a fresh certified solve.
    pcache_->note_certify_reject();
    obs_pc_rejects_->inc();
    return std::nullopt;
  }
  obs_pc_hits_->inc();
  obs_consults_->inc();
  return found.entry->plan;
}

bool EnforcementEngine::recertify(const PlanCache::Entry& e,
                                  const CapacitySnapshot& snap) const {
  // Residual admission check, the engine-level mirror of
  // lp::Verifier::certify_admission run against SNAPSHOT data instead of a
  // Problem object: every nonzero draw within the drawer's current
  // entitlement to `a`, demand met exactly, theta covering the capacity
  // drop it induces anywhere. O(nnz) bound checks + O(nnz * n) drop
  // accumulation on the vectorized kernels.
  const double tol = opts_.alloc.solve.tols.feasibility;
  const std::size_t a = e.participant;
  thread_local std::vector<double> drop;
  drop.assign(n_, 0.0);
  double total = 0.0;
  for (const std::uint32_t k : e.nz) {
    const double d = e.plan.draw[k];
    const double vk = snap.capacity[k];
    const double bound = k == a ? sys_.retained[a] * vk
                                : std::min(vk * that_(k, a) + sys_.absolute(k, a), vk);
    if (d > bound + tol * (1.0 + bound)) return false;
    vaxpy(d, that_.row(k), std::span<double>(drop));
    total += d;
  }
  if (std::fabs(total - e.amount) > tol * (1.0 + std::fabs(e.amount))) return false;
  const double theta_cap = e.plan.theta + tol * (1.0 + e.plan.theta);
  for (std::size_t i = 0; i < n_; ++i)
    if (drop[i] > theta_cap) return false;
  return true;
}

std::future<EngineResult> EnforcementEngine::submit_unchecked(std::size_t a,
                                                              double amount) const {
  Shard& shard = *shards_[part_.shard_of[a]];
  Op op;
  op.kind = Op::Kind::Consult;
  op.principal = shard.local_of[a];
  op.global = a;
  op.amount = amount;
  std::future<EngineResult> fut = op.result.get_future();
  if (!shard.queue.push(std::move(op))) {
    // The op (and the promise backing `fut`) was dropped by the closed
    // queue; hand back a ready future instead of a broken one.
    std::promise<EngineResult> p;
    p.set_value(EngineResult{Status::unavailable("engine is shut down"), {}});
    return p.get_future();
  }
  shard.obs_queue_depth->set(static_cast<double>(shard.queue.size_approx()));
  return fut;
}

double EnforcementEngine::available_to(std::size_t a) const {
  AGORA_REQUIRE(a < n_, "unknown principal");
  return cell_.load()->available[a];
}

void EnforcementEngine::apply(const alloc::AllocationPlan& plan) {
  AGORA_REQUIRE(plan.satisfied(), "cannot apply an unsatisfied plan");
  AGORA_REQUIRE(plan.draw.size() == n_, "plan size mismatch");
  std::lock_guard<std::mutex> lock(mutate_mu_);
  // Spend the plan's border credits first: this is the double-spend guard --
  // a stale federated plan whose loans were already consumed (or revoked by
  // a later settlement) throws here instead of drawing lender capacity the
  // ledger no longer backs.
  if (fed_ && !plan.borrowed.empty())
    fed_->consume(plan.borrowed, opts_.alloc.solve.tols.feasibility);
  std::vector<double> next = sys_.capacity;
  for (std::size_t i = 0; i < next.size(); ++i) {
    AGORA_REQUIRE(plan.draw[i] <= next[i] + 1e-7, "plan draws more than a principal owns");
    next[i] = std::max(0.0, next[i] - plan.draw[i]);
  }
  mutate(next, Op::Kind::Apply);
}

void EnforcementEngine::release(const std::vector<double>& give_back) {
  AGORA_REQUIRE(give_back.size() == n_, "release size mismatch");
  std::lock_guard<std::mutex> lock(mutate_mu_);
  std::vector<double> next = sys_.capacity;
  for (std::size_t i = 0; i < next.size(); ++i) {
    AGORA_REQUIRE(give_back[i] >= 0.0, "release must be non-negative");
    next[i] += give_back[i];
  }
  mutate(next, Op::Kind::Release);
}

void EnforcementEngine::set_capacities(std::span<const double> v) {
  AGORA_REQUIRE(v.size() == n_, "capacity vector size mismatch");
  for (double x : v) AGORA_REQUIRE(x >= 0.0 && std::isfinite(x), "capacities must be >= 0");
  std::lock_guard<std::mutex> lock(mutate_mu_);
  mutate(std::vector<double>(v.begin(), v.end()), Op::Kind::SetCapacities);
}

void EnforcementEngine::mutate(const std::vector<double>& global, Op::Kind kind) {
  // Caller holds mutate_mu_. Fan the new capacity vector out to every shard
  // (each applies its slice in queue order, behind any consults already
  // submitted), then merge the acknowledged availability slices and publish
  // the next snapshot epoch. Blocking here is what makes a returned
  // apply()/release()/set_capacities() visible to every later consult.
  //
  // Federated engines run a settlement round first: the ledger re-plans
  // every loan toward its policy target at the new capacities, and each
  // shard's op carries its settled local slice (capacity including the bank
  // slot, a rebuilt system when earmarks moved, the new credit table)
  // instead of a bare member slice.
  std::vector<Federation::ShardUpdate> settled;
  if (fed_) settled = fed_->settle(global);
  std::vector<std::future<ShardView>> acks;
  acks.reserve(shards_.size());
  for (auto& shard : shards_) {
    Op op;
    op.kind = kind;
    if (fed_) {
      Federation::ShardUpdate& u = settled[shard->id];
      op.vec = std::move(u.capacity);
      op.rebuild = std::move(u.rebuild);
      op.credits = std::move(u.credits);
    } else {
      op.vec.resize(shard->members.size());
      for (std::size_t l = 0; l < shard->members.size(); ++l)
        op.vec[l] = global[shard->members[l]];
    }
    acks.push_back(op.view.get_future());
    const bool pushed = shard->queue.push(std::move(op));
    AGORA_INVARIANT(pushed, "mutation submitted to a shut-down engine");
  }
  std::vector<double> available(n_, 0.0);
  std::vector<GapSample> gaps;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    ShardView view = acks[s].get();  // rethrows shard-side failures
    for (std::size_t l = 0; l < shards_[s]->members.size(); ++l) {
      const std::size_t g = shards_[s]->members[l];
      if (part_.shard_of[g] == s) available[g] = view.available[l];
    }
    gaps.insert(gaps.end(), view.gaps.begin(), view.gaps.end());
  }
  if (exact_) {
    // Measure the optimality gap for the epoch's sampled decisions while
    // the reference allocator still holds the PRE-mutation capacities those
    // decisions were made against.
    for (const GapSample& g : gaps) {
      const alloc::AllocationPlan ref = exact_->allocate(g.participant, g.amount);
      if (!ref.satisfied()) continue;
      const double gap_abs = std::max(0.0, g.theta_global - ref.theta);
      const double gap_rel = gap_abs / std::max(ref.theta, 1.0);
      {
        std::lock_guard<std::mutex> glock(agg_mu_);
        ++fed_stats_.gap_probes;
        fed_stats_.last_gap_abs = gap_abs;
        fed_stats_.last_gap_rel = gap_rel;
        fed_stats_.max_gap_rel = std::max(fed_stats_.max_gap_rel, gap_rel);
      }
      obs_fed_gap_probes_->inc();
      obs_fed_gap_rel_->set(gap_rel);
    }
    exact_->set_capacities(std::span<const double>(global));
  }
  if (fed_) {
    obs_fed_settlements_->inc();
    obs_fed_outstanding_->set(fed_->ledger().totals().outstanding);
  }
  sys_.capacity = global;
  publish(global, std::move(available));
}

void EnforcementEngine::settle() {
  std::lock_guard<std::mutex> lock(mutate_mu_);
  mutate(sys_.capacity, Op::Kind::SetCapacities);
}

void EnforcementEngine::publish(std::vector<double> capacity, std::vector<double> available) {
  ++epoch_;
  cell_.store(std::make_shared<const CapacitySnapshot>(
      CapacitySnapshot{epoch_, std::move(capacity), std::move(available)}));
  obs_epochs_->inc();
}

const lp::PipelineStats* EnforcementEngine::solver_stats() const {
  std::vector<std::future<ShardView>> acks;
  acks.reserve(shards_.size());
  for (auto& shard : shards_) {
    Op op;
    op.kind = Op::Kind::Query;
    acks.push_back(op.view.get_future());
    if (!shard->queue.push(std::move(op))) return nullptr;  // shutting down
  }
  lp::PipelineStats agg;
  for (auto& f : acks) lp::accumulate(agg, f.get().pipeline);
  std::lock_guard<std::mutex> lock(agg_mu_);
  agg_stats_ = agg;
  return &agg_stats_;
}

std::size_t EnforcementEngine::shard_of(std::size_t participant) const {
  AGORA_REQUIRE(participant < n_, "unknown principal");
  return part_.shard_of[participant];
}

void EnforcementEngine::drain() const {
  std::vector<std::future<ShardView>> acks;
  acks.reserve(shards_.size());
  for (auto& shard : shards_) {
    Op op;
    op.kind = Op::Kind::Query;
    acks.push_back(op.view.get_future());
    if (!shard->queue.push(std::move(op))) acks.pop_back();  // already drained by close()
  }
  for (auto& f : acks) f.get();
}

EngineStats EnforcementEngine::stats() const {
  EngineStats out;
  out.shards = shards_.size();
  out.replicated = part_.replicated;
  out.federated = fed_ != nullptr;
  out.components = part_.components;
  out.epoch = cell_.load()->epoch;
  if (fed_) {
    {
      std::lock_guard<std::mutex> glock(agg_mu_);
      out.federation = fed_stats_;
    }
    // Ledger reads synchronize with settlements/consumption via mutate_mu_.
    std::lock_guard<std::mutex> mlock(mutate_mu_);
    out.federation.active = true;
    out.federation.credits = fed_->ledger().size();
    out.federation.settlements = fed_->settlements();
    const CreditLedger::Totals t = fed_->ledger().totals();
    out.federation.granted = t.granted;
    out.federation.consumed = t.consumed;
    out.federation.revoked = t.revoked;
    out.federation.outstanding = t.outstanding;
  }
  out.shard.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardStats s;
    s.participants = shard->members.size();
    s.consults = shard->consults.load(std::memory_order_relaxed);
    s.batches = shard->batches.load(std::memory_order_relaxed);
    s.coalesced_batches = shard->coalesced_batches.load(std::memory_order_relaxed);
    s.coalesced_ops = shard->coalesced_ops.load(std::memory_order_relaxed);
    s.max_batch = shard->max_batch.load(std::memory_order_relaxed);
    s.queue_depth = shard->queue.size();
    out.shard.push_back(s);
    // atomic_load pairs with the rebuild swap in the worker (federated
    // settlements replace the allocator when bank earmarks change).
    const std::shared_ptr<alloc::Allocator> a = std::atomic_load(&shard->alloc);
    out.fastpath_granted += a->fastpath_granted();
    out.fastpath_fallthrough += a->fastpath_fallthrough();
  }
  if (pcache_) out.plan_cache = pcache_->stats();
  return out;
}

}  // namespace agora::engine
