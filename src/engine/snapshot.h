// snapshot.h -- epoch-versioned immutable view of the engine's capacity
// state.
//
// Readers (availability queries, plan globalization, monitoring) must never
// contend with the shard workers: they read a CapacitySnapshot published by
// the last completed mutation batch. A snapshot is immutable after publish
// -- consumers hold a shared_ptr and may keep it as long as they like; the
// engine swaps in a fresh snapshot (epoch + 1) once every shard has
// acknowledged a mutation. The swap itself is a pointer exchange behind a
// dedicated mutex whose critical section is two shared_ptr operations,
// never the shard queues or allocator state.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace agora::engine {

struct CapacitySnapshot {
  /// Publication ordinal: 0 is the construction-time snapshot; every
  /// completed mutation (apply / release / set_capacities) increments it.
  std::uint64_t epoch = 0;
  /// Raw owned capacity V_i per participant.
  std::vector<double> capacity;
  /// Availability C_i per participant (own retained capacity plus every
  /// entitlement under the transitive closure) -- what available_to reports.
  std::vector<double> available;
};

/// Holder for the engine's current snapshot pointer.
class SnapshotCell {
 public:
  std::shared_ptr<const CapacitySnapshot> load() const {
    std::lock_guard<std::mutex> lock(mu_);
    return snap_;
  }

  void store(std::shared_ptr<const CapacitySnapshot> next) {
    std::lock_guard<std::mutex> lock(mu_);
    snap_ = std::move(next);
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const CapacitySnapshot> snap_;
};

}  // namespace agora::engine
