#include "engine/federation.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace agora::engine {

namespace {
constexpr std::size_t kNoBank = std::numeric_limits<std::size_t>::max();
}  // namespace

std::vector<BorderEdge> find_border_edges(const agree::AgreementSystem& sys,
                                          const Partition& part) {
  std::vector<BorderEdge> edges;
  if (part.replicated) return edges;
  const std::size_t n = sys.size();
  for (std::size_t l = 0; l < n; ++l) {
    for (std::size_t b = 0; b < n; ++b) {
      if (l == b || part.shard_of[l] == part.shard_of[b]) continue;
      if (sys.relative(l, b) > 0.0 || sys.absolute(l, b) > 0.0)
        edges.push_back(BorderEdge{l, b});
    }
  }
  return edges;
}

Federation::Federation(const agree::AgreementSystem& sys, const Partition& part,
                       const Matrix& shares, FederationOptions opts)
    : sys_(sys), part_(part), shares_(shares), opts_(opts) {
  AGORA_REQUIRE(!part.replicated, "federation cannot run over hash replicas");
  AGORA_REQUIRE(shares_.rows() == sys_.size() && shares_.cols() == sys_.size(),
                "federation share matrix shape mismatch");
  bank_index_.assign(part_.shards, kNoBank);
  in_.assign(part_.shards, {});
  out_by_member_.assign(sys_.size(), {});
  for (const BorderEdge& e : find_border_edges(sys_, part_)) {
    const std::size_t bs = part_.shard_of[e.borrower];
    const std::uint64_t id =
        ledger_.add_credit(e.lender, e.borrower, part_.shard_of[e.lender], bs);
    in_[bs].push_back(id);
    out_by_member_[e.lender].push_back(id);
  }
  last_earmarks_.resize(part_.shards);
  for (std::size_t s = 0; s < part_.shards; ++s) {
    if (!in_[s].empty()) bank_index_[s] = part_.members[s].size();
    last_earmarks_[s].assign(part_.members[s].size(), 0.0);
  }
}

std::size_t Federation::local_size(std::size_t shard) const {
  return part_.members[shard].size() + (bank_index_[shard] == kNoBank ? 0 : 1);
}

std::vector<double> Federation::targets(std::span<const double> capacity) const {
  AGORA_REQUIRE(capacity.size() == sys_.size(), "federation capacity size mismatch");
  // Price every cut edge at borrow_fraction of its global entitlement, using
  // the *current* capacity for V_l (entitlements scale with capacity).
  std::vector<double> t(ledger_.size(), 0.0);
  std::vector<double> per_lender(sys_.size(), 0.0);
  for (const Credit& c : ledger_.credits()) {
    const double v = capacity[c.lender];
    const double ent =
        std::min(v * shares_(c.lender, c.borrower) + sys_.absolute(c.lender, c.borrower), v);
    t[c.id] = std::max(0.0, opts_.borrow_fraction * ent);
    per_lender[c.lender] += t[c.id];
  }
  // Keep at least (1 - lend_cap) of every lender home: scale its loans
  // pro-rata when their sum would exceed lend_cap * V_l.
  for (const Credit& c : ledger_.credits()) {
    const double cap = opts_.lend_cap * capacity[c.lender];
    const double want = per_lender[c.lender];
    if (want > cap && want > 0.0) t[c.id] *= cap / want;
  }
  return t;
}

agree::AgreementSystem Federation::build_local(std::size_t shard,
                                               std::span<const double> capacity) const {
  const std::vector<std::size_t>& members = part_.members[shard];
  const std::size_t m = members.size();
  const std::size_t bank = bank_index_[shard];
  agree::AgreementSystem local(bank == kNoBank ? m : m + 1);
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t g = members[i];
    local.capacity[i] = std::max(0.0, capacity[g] - ledger_.outstanding_from(g));
    local.retained[i] = sys_.retained[g];
    for (std::size_t j = 0; j < m; ++j) {
      if (i == j) continue;
      const std::size_t h = members[j];
      local.relative(i, j) = sys_.relative(g, h);
      local.absolute(i, j) = sys_.absolute(g, h);
    }
  }
  if (bank != kNoBank) {
    // The bank holds the inbound loan balances, earmarked per borrower via
    // absolute agreements: U(bank -> b) = min(earmark_b, V_bank), and the
    // bank shares nothing else (no relative rows/cols), so a borrower can
    // spend its own earmark and nothing more.
    double pool = 0.0;
    for (std::uint64_t id : in_[shard]) {
      const Credit& c = ledger_.credits()[id];
      const double rem = c.remaining();
      pool += rem;
      std::size_t li = 0;
      while (members[li] != c.borrower) ++li;
      local.absolute(bank, li) += rem;
    }
    local.capacity[bank] = pool;
    local.retained[bank] = 1.0;
  }
  return local;
}

std::vector<Federation::ShardUpdate> Federation::settle(std::span<const double> capacity) {
  AGORA_REQUIRE(capacity.size() == sys_.size(), "federation capacity size mismatch");
  const std::vector<double> t = targets(capacity);
  const CreditLedger::SettlementPlan plan = ledger_.plan_settlement(t);
  if (ledger_.commit(plan)) ++settlements_;

  std::vector<ShardUpdate> updates(part_.shards);
  for (std::size_t s = 0; s < part_.shards; ++s) {
    const std::vector<std::size_t>& members = part_.members[s];
    ShardUpdate& u = updates[s];

    // Post-commit earmarks decide patch vs rebuild: bank agreements are
    // matrix data, so only an identical earmark vector can ride a
    // capacity-only patch.
    std::vector<double> earmarks(members.size(), 0.0);
    double pool = 0.0;
    for (std::uint64_t id : in_[s]) {
      const Credit& c = ledger_.credits()[id];
      const double rem = c.remaining();
      pool += rem;
      std::size_t li = 0;
      while (members[li] != c.borrower) ++li;
      earmarks[li] += rem;
      u.credits.push_back(CreditSlice{c.id, c.lender, c.borrower, rem});
    }

    if (earmarks != last_earmarks_[s]) {
      u.rebuild = std::make_shared<agree::AgreementSystem>(build_local(s, capacity));
      u.capacity = u.rebuild->capacity;
      last_earmarks_[s] = std::move(earmarks);
    } else {
      u.capacity.reserve(local_size(s));
      for (std::size_t g : members)
        u.capacity.push_back(std::max(0.0, capacity[g] - ledger_.outstanding_from(g)));
      if (bank_index_[s] != kNoBank) u.capacity.push_back(pool);
    }
  }
  return updates;
}

void Federation::consume(const std::vector<alloc::BorrowedDraw>& borrowed, double tol) {
  for (const alloc::BorrowedDraw& b : borrowed) ledger_.consume(b.credit, b.amount, tol);
}

}  // namespace agora::engine
