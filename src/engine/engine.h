// engine.h -- the sharded, thread-safe enforcement engine fronting all
// admission traffic (DESIGN.md §11).
//
// The paper evaluates enforcement with ten proxies consulting one allocator
// serially; production traffic needs admission decisions computed locally
// and in parallel. EnforcementEngine partitions participants into shards
// (by agreement-graph connectivity; a single component is either cut
// federated with border credits or hash-replicated -- see partition.h and
// federation.h); each
// shard owns a dedicated worker thread with its *own* warm-started
// allocator (lp::SolveWorkspace + alloc::AllocationModelCache), extending
// the single-threaded reuse of the warm-start work to per-shard reuse.
// Requests enter through per-shard MPSC queues with batch coalescing:
// everything queued on a shard while its worker was busy is drained in one
// lock acquisition and solved back-to-back against the still-hot LP basis.
// Capacity/valuation reads go through an epoch-versioned immutable snapshot
// (snapshot.h) and never touch a shard queue or allocator.
//
// Guarantees:
//   * threads=1 is decision-identical to calling the Allocator directly:
//     one shard owning the whole system, the same Allocator performing the
//     same call sequence (pinned byte-identical in tests/engine_test.cpp).
//   * Certification is inherited unchanged: the per-shard allocators run
//     the certified solve chain (AllocatorOptions::certify defaults on),
//     so no uncertified grant is possible through the engine.
//   * Per-shard FIFO: operations submitted to one shard take effect in
//     submission order; mutations ack only after every affected shard
//     applied them and the new snapshot epoch is published.
//
// EnforcementEngine implements alloc::AllocatorBase, so call sites written
// against the interface (SchedulerBridge, the GRM) run on the engine or a
// direct allocator interchangeably.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "alloc/allocator.h"
#include "alloc/allocator_base.h"
#include "engine/federation.h"
#include "engine/partition.h"
#include "engine/plan_cache.h"
#include "engine/snapshot.h"
#include "obs/sink.h"
#include "util/matrix.h"
#include "util/status.h"
#include "util/task_queue.h"

namespace agora::engine {

struct EngineOptions {
  /// Worker shard count. 1 (default) = a single shard over the full system,
  /// decision-identical to the direct allocator path. Clamped to the
  /// participant count; in connectivity mode also to the component count.
  std::size_t threads = 1;
  /// Per-shard allocator configuration. `certify` stays on by default;
  /// `reuse_context` gives each shard its own warm-start workspace.
  alloc::AllocatorOptions alloc;
  /// Epoch-keyed decision cache fronting the shard queues (plan_cache.h).
  /// A repeated (participant, amount) shape within one snapshot epoch is
  /// answered on the CALLER thread -- no queue, no worker hop, no LP -- after
  /// a sparse residual re-certification against the current snapshot. Off by
  /// default: with the cache on, repeated shapes are answered from the first
  /// decision of that epoch instead of being re-solved, which a test
  /// asserting per-call solver telemetry would notice. Decisions themselves
  /// are unchanged (same epoch => same LP answer, by warm-start
  /// path-independence).
  bool plan_cache = false;
  /// Slot count for the decision cache (rounded up to a power of two).
  std::size_t plan_cache_slots = std::size_t{1} << 13;
  /// Federated cross-shard enforcement (federation.h). When enabled and the
  /// agreement graph has fewer components than requested shards, the engine
  /// cuts components by edge scoring and carries cut entitlements as border
  /// credits instead of degrading to full replicas. Decisions stay certified
  /// against the shard-local problem; the optimality gap versus the exact
  /// global LP is measured per settlement round (see EngineStats).
  FederationOptions federation;
  /// Telemetry: per-shard queue-depth gauges, batch-size histograms,
  /// coalesce counters, EngineBatch trace events (emitted only for
  /// coalesced batches, so a serial caller's event stream is unchanged).
  obs::Sink sink = obs::Sink::global();
};

/// Outcome of a submitted consult: `status` is agora's unified error
/// currency (DESIGN.md §11.5). For a decided request it mirrors the plan
/// (Ok / Insufficient / Denied / SolverFailed); transport-level failures
/// (engine stopped: Unavailable, bad arguments: InvalidArgument, worker
/// exception: Internal) leave the plan default-constructed.
struct EngineResult {
  Status status;
  alloc::AllocationPlan plan;
};

struct ShardStats {
  std::size_t participants = 0;
  std::uint64_t consults = 0;
  std::uint64_t batches = 0;
  std::uint64_t coalesced_batches = 0;   ///< batches with more than one op
  std::uint64_t coalesced_ops = 0;       ///< ops beyond the first per batch
  std::uint64_t max_batch = 0;
  std::size_t queue_depth = 0;           ///< sampled at the last enqueue
};

/// Federation telemetry: ledger totals plus the measured optimality gap
/// (federated theta versus the exact global LP's, sampled per settlement).
struct FederationStats {
  bool active = false;          ///< border credits exist (federated split in use)
  std::size_t credits = 0;      ///< cut edges carrying loans
  std::uint64_t settlements = 0;
  double granted = 0.0;         ///< cumulative loan volume ever issued
  double consumed = 0.0;        ///< cumulative loan volume spent by applied plans
  double revoked = 0.0;         ///< cumulative loan volume returned to lenders
  double outstanding = 0.0;     ///< live loan volume (granted - consumed - revoked)
  std::uint64_t gap_probes = 0; ///< decisions re-solved against the exact LP
  double last_gap_abs = 0.0;    ///< theta_federated - theta_exact, last probe
  double last_gap_rel = 0.0;    ///< ... relative to max(theta_exact, 1)
  double max_gap_rel = 0.0;     ///< worst relative gap observed
};

struct EngineStats {
  std::size_t shards = 0;
  bool replicated = false;
  /// Federated split in use: shard boundaries cut agreement edges and the
  /// cut entitlements ride border credits (see `federation`).
  bool federated = false;
  std::size_t components = 0;
  std::uint64_t epoch = 0;
  std::vector<ShardStats> shard;
  FederationStats federation;
  /// Decision-cache counters (all zero when EngineOptions::plan_cache off).
  PlanCacheStats plan_cache;
  /// Theta<=1 fast-path grants/fallthroughs summed over the per-shard
  /// allocators (zero unless EngineOptions::alloc.fast_path).
  std::uint64_t fastpath_granted = 0;
  std::uint64_t fastpath_fallthrough = 0;
};

class EnforcementEngine : public alloc::AllocatorBase {
 public:
  EnforcementEngine(agree::AgreementSystem sys, EngineOptions opts = {});
  ~EnforcementEngine() override;

  /// Stop the engine: reject new submissions, resolve every queued-but-
  /// unprocessed consult with Status::unavailable (fail-fast -- no LP is
  /// solved for a caller that can no longer use the answer), finish queued
  /// mutations/queries (their callers block in mutate()/drain() and must
  /// see real acks), and join the workers. Idempotent; the destructor calls
  /// it. After shutdown() returns, every future ever handed out by submit()
  /// is ready -- none is ever abandoned to std::future_error.
  void shutdown();

  EnforcementEngine(const EnforcementEngine&) = delete;
  EnforcementEngine& operator=(const EnforcementEngine&) = delete;

  // --- Admission ----------------------------------------------------------
  /// Blocking decision: route to the owning shard, wait for the plan.
  /// Precondition violations throw exactly like Allocator::allocate.
  alloc::AllocationPlan consult(std::size_t a, double amount) const;

  /// Future-based submission. Never throws: argument violations and
  /// shutdown resolve the future with the corresponding Status instead.
  std::future<EngineResult> submit(std::size_t a, double amount) const;

  // --- AllocatorBase ------------------------------------------------------
  std::size_t size() const override { return n_; }
  /// The full agreement system. Capacities reflect the last *published*
  /// epoch; concurrent readers should prefer snapshot() -- the capacity
  /// vector behind this reference is rewritten by mutations.
  const agree::AgreementSystem& system() const override { return sys_; }
  alloc::AllocationPlan allocate(std::size_t a, double amount) const override {
    return consult(a, amount);
  }
  double available_to(std::size_t a) const override;
  void apply(const alloc::AllocationPlan& plan) override;
  void release(const std::vector<double>& give_back) override;
  void set_capacities(std::span<const double> v) override;
  /// Aggregated certified-solve-chain telemetry across all shards. Enqueues
  /// a query op per shard (a barrier), so it must not be called from a
  /// shard worker.
  const lp::PipelineStats* solver_stats() const override;

  // --- Snapshot reads (never touch shard state) ---------------------------
  std::shared_ptr<const CapacitySnapshot> snapshot() const { return cell_.load(); }
  std::uint64_t epoch() const { return cell_.load()->epoch; }

  // --- Federation ---------------------------------------------------------
  /// Run one explicit settlement round at the current capacities: consume
  /// nothing, re-grant every border credit toward its policy target, measure
  /// the epoch's optimality-gap probes, publish the next snapshot epoch.
  /// Mutations (apply/release/set_capacities) settle implicitly; this is for
  /// callers that want loan balances refreshed without a capacity change.
  /// No-op beyond an epoch bump when federation is inactive.
  void settle();

  // --- Introspection ------------------------------------------------------
  std::size_t num_shards() const { return shards_.size(); }
  bool replicated() const { return part_.replicated; }
  bool federated() const { return fed_ != nullptr; }
  std::size_t num_components() const { return part_.components; }
  std::size_t shard_of(std::size_t participant) const;
  /// Barrier: block until every operation submitted before this call has
  /// been processed by its shard.
  void drain() const;
  EngineStats stats() const;

 private:
  /// What a mutation op hands back: the shard's post-mutation capacity and
  /// availability, in shard-local index order (full-length when
  /// replicated). Query ops reuse the struct for pipeline stats.
  struct ShardView {
    std::vector<double> capacity;
    std::vector<double> available;
    lp::PipelineStats pipeline;
    std::vector<GapSample> gaps;  ///< federated: epoch's gap probes, drained
  };

  struct Op {
    enum class Kind { Consult, Apply, Release, SetCapacities, Query };
    Kind kind = Kind::Query;
    std::size_t principal = 0;  ///< shard-local index (Consult)
    std::size_t global = 0;     ///< global participant id (Consult; cache key)
    double amount = 0.0;
    std::vector<double> vec;    ///< shard-local slice (mutations)
    /// Federated settlement payload (mutations; see Federation::ShardUpdate):
    /// a rebuilt local system when the shard's bank earmarks moved, and the
    /// shard's post-settlement credit table. Shipping both through the op
    /// keeps the worker's credit view FIFO-consistent with its allocator.
    std::shared_ptr<agree::AgreementSystem> rebuild;
    std::vector<CreditSlice> credits;
    std::promise<EngineResult> result;  ///< Consult
    std::promise<ShardView> view;       ///< mutations + Query
  };

  struct Shard {
    std::size_t id = 0;
    std::vector<std::size_t> members;     ///< global ids, ascending
    std::vector<std::size_t> local_of;    ///< global id -> local index (or npos)
    /// Worker-owned allocator. shared_ptr (not unique_ptr) because federated
    /// settlement ops can REPLACE it mid-run (earmark changes force a
    /// rebuild) while stats() reads its counters from other threads: the
    /// swap goes through std::atomic_store and cross-thread readers take a
    /// std::atomic_load snapshot.
    std::shared_ptr<alloc::Allocator> alloc;
    BlockingQueue<Op> queue;
    std::thread worker;
    std::uint64_t ordinal = 0;  ///< ops processed (worker-only; event time)
    /// Mutations applied on this shard (worker-only). Every mutate() fans one
    /// op to every shard and publishes epoch+1, so after this worker applies
    /// its m-th mutation its allocator state equals the global epoch-m
    /// snapshot restricted to its members -- making this the correct epoch
    /// key for decisions it computes from here on.
    std::uint64_t muts_applied = 0;
    // --- Federated state (worker-only unless noted) ------------------------
    /// Local index of the border bank slot, or npos when the shard has none.
    /// Fixed at construction (read-only afterwards).
    std::size_t bank = static_cast<std::size_t>(-1);
    /// Inbound credit table, ascending by id: how the worker attributes bank
    /// draws back to lenders. Replaced only by settlement ops, so it is
    /// always consistent with the allocator's bank earmarks.
    std::vector<CreditSlice> credits;
    /// Ring of the epoch's satisfied federated decisions, drained by the
    /// next settlement for gap probing.
    std::vector<GapSample> gap_samples;
    std::size_t gap_next = 0;
    /// Telemetry carried across allocator rebuilds (a settlement that moves
    /// bank earmarks replaces the allocator; its pipeline counters land
    /// here so solver_stats() never loses history).
    lp::PipelineStats carried;
    // Telemetry (relaxed atomics; readable without quiescence).
    std::atomic<std::uint64_t> consults{0};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> coalesced_batches{0};
    std::atomic<std::uint64_t> coalesced_ops{0};
    std::atomic<std::uint64_t> max_batch{0};
    obs::Gauge* obs_queue_depth = nullptr;
  };

  void worker_loop(Shard& shard);
  void process(Shard& shard, Op& op);
  /// Caller-thread cache front end: lookup against the published epoch,
  /// re-certify the stored plan against the snapshot, return a copy on
  /// success. Nullopt (= go through the shard queue) on miss/stale/reject.
  std::optional<alloc::AllocationPlan> cached_decision(std::size_t a, double amount) const;
  /// Sparse residual re-certification of a cached plan against `snap`:
  /// draws within current entitlements, demand met, theta covers every
  /// capacity drop. O(nnz * n) with the vectorized kernels.
  bool recertify(const PlanCache::Entry& e, const CapacitySnapshot& snap) const;
  /// Map a shard-local plan back to full-system indices, overlaying the
  /// current snapshot for participants outside the shard.
  alloc::AllocationPlan globalize(const Shard& shard, alloc::AllocationPlan local) const;
  /// Federated globalize: strip the bank slot, attribute the bank draw to
  /// individual credits (greedy in id order -- deterministic, and exact
  /// because the local LP bounds the draw by the requester's earmark), fold
  /// the attributed amounts into the lenders' global draw entries, and
  /// record the per-credit spends in plan.borrowed.
  alloc::AllocationPlan federate(Shard& shard, alloc::AllocationPlan local,
                                 std::size_t a) const;
  /// Record a satisfied federated decision in the shard's gap-probe ring
  /// with its measured global perturbation (max capacity drop under that_).
  void sample_gap(Shard& shard, const alloc::AllocationPlan& plan, std::size_t a,
                  double amount) const;
  /// Run `make_op` for each selected shard, wait for every ShardView, merge
  /// the slices into a fresh snapshot and publish it (epoch + 1).
  void mutate(const std::vector<double>& global, Op::Kind kind);
  std::future<EngineResult> submit_unchecked(std::size_t a, double amount) const;
  void publish(std::vector<double> capacity, std::vector<double> available);

  agree::AgreementSystem sys_;
  /// Participant count, immutable after construction: the lock-free entry
  /// points (submit/consult argument checks, globalize) must not size
  /// sys_.capacity, whose buffer mutations rewrite under mutate_mu_.
  std::size_t n_ = 0;
  /// Set by shutdown() before the queues close: workers fail-fast any
  /// consult still queued instead of solving it.
  mutable std::atomic<bool> stopping_{false};
  EngineOptions opts_;
  Partition part_;
  std::vector<std::unique_ptr<Shard>> shards_;
  SnapshotCell cell_;
  /// Decision cache + the immutable matrices its re-certification needs:
  /// that_(k, i) is the capacity drop at i per unit drawn at k (retained_k on
  /// the diagonal, clamped transitive share K_ki off it) -- the same
  /// coefficients the compact LP's perturbation rows use.
  std::unique_ptr<PlanCache> pcache_;
  Matrix that_;
  /// Border-credit state machine; null unless the partition is federated
  /// AND produced at least one credit. Guarded by mutate_mu_ (settlement,
  /// consumption); construction happens before the workers start.
  std::unique_ptr<Federation> fed_;
  /// Exact full-system reference allocator for gap probes (certification
  /// off: it measures, it never admits). Guarded by mutate_mu_.
  mutable std::unique_ptr<alloc::Allocator> exact_;
  /// Gap telemetry published by settlement rounds (guarded by agg_mu_ so
  /// stats() never contends with a settlement in flight).
  FederationStats fed_stats_;
  std::uint64_t epoch_ = 0;          ///< guarded by mutate_mu_
  mutable std::mutex mutate_mu_;     ///< serializes mutations + publish
  mutable lp::PipelineStats agg_stats_;  ///< scratch for solver_stats()
  mutable std::mutex agg_mu_;
  // Cached registry handles (see obs/metrics.h).
  obs::Counter* obs_consults_ = nullptr;
  obs::Counter* obs_batches_ = nullptr;
  obs::Counter* obs_coalesced_batches_ = nullptr;
  obs::Counter* obs_coalesced_ops_ = nullptr;
  obs::Counter* obs_epochs_ = nullptr;
  obs::LogHistogram* obs_batch_size_ = nullptr;
  obs::Counter* obs_pc_hits_ = nullptr;
  obs::Counter* obs_pc_misses_ = nullptr;
  obs::Counter* obs_pc_stale_ = nullptr;
  obs::Counter* obs_pc_rejects_ = nullptr;
  obs::Counter* obs_pc_neg_hits_ = nullptr;
  obs::Counter* obs_pc_neg_rejects_ = nullptr;
  obs::Counter* obs_fed_settlements_ = nullptr;
  obs::Counter* obs_fed_gap_probes_ = nullptr;
  obs::Gauge* obs_fed_outstanding_ = nullptr;
  obs::Gauge* obs_fed_gap_rel_ = nullptr;
};

}  // namespace agora::engine
