#include "engine/credit.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "util/error.h"

namespace agora::engine {

std::uint64_t CreditLedger::add_credit(std::size_t lender, std::size_t borrower,
                                       std::size_t lender_shard, std::size_t borrower_shard) {
  AGORA_REQUIRE(lender != borrower, "a credit must cross participants");
  AGORA_REQUIRE(lender_shard != borrower_shard, "a credit must cross shards");
  Credit c;
  c.id = credits_.size();
  c.lender = static_cast<std::uint32_t>(lender);
  c.borrower = static_cast<std::uint32_t>(borrower);
  c.lender_shard = static_cast<std::uint32_t>(lender_shard);
  c.borrower_shard = static_cast<std::uint32_t>(borrower_shard);
  credits_.push_back(c);
  return c.id;
}

void CreditLedger::consume(std::uint64_t id, double amount, double tol) {
  AGORA_REQUIRE(id < credits_.size(), "unknown credit");
  AGORA_REQUIRE(amount >= 0.0, "credit consumption must be non-negative");
  Credit& c = credits_[id];
  const double rem = c.remaining();
  AGORA_REQUIRE(amount <= rem + tol * (1.0 + rem),
                "stale federated plan: credit overdraw would double-spend a loan");
  c.consumed += std::min(amount, rem);
}

CreditLedger::SettlementPlan CreditLedger::plan_settlement(
    std::span<const double> targets) const {
  AGORA_REQUIRE(targets.size() == credits_.size(), "settlement target size mismatch");
  SettlementPlan plan;
  plan.settle_id = last_settle_id_ + 1;
  plan.adjust.reserve(credits_.size());
  for (const Credit& c : credits_) {
    const double target = std::max(0.0, targets[c.id]);
    const double delta = target - c.remaining();
    // A revocation can never take back more than is still on loan (the
    // consumed part is spent, not returnable); plan_settlement clamps so a
    // committed round always lands exactly on the clamped target.
    const double clamped = std::max(delta, -c.remaining());
    if (clamped != 0.0) plan.adjust.push_back(Adjustment{c.id, clamped});
  }
  return plan;
}

bool CreditLedger::commit(const SettlementPlan& plan) {
  if (plan.settle_id <= last_settle_id_) return false;  // replayed round
  for (const Adjustment& a : plan.adjust) {
    AGORA_REQUIRE(a.credit < credits_.size(), "settlement names an unknown credit");
    Credit& c = credits_[a.credit];
    if (a.delta >= 0.0) {
      c.granted += a.delta;
    } else {
      // Defensive re-clamp: between plan and commit the balance can only
      // have shrunk (consumption), never grown, so a revocation past the
      // live balance revokes what is actually left.
      c.revoked += std::min(-a.delta, c.remaining());
    }
  }
  last_settle_id_ = plan.settle_id;
  return true;
}

double CreditLedger::outstanding_from(std::size_t lender) const {
  double out = 0.0;
  for (const Credit& c : credits_)
    if (c.lender == lender) out += c.remaining();
  return out;
}

double CreditLedger::inbound_to(std::size_t borrower) const {
  double in = 0.0;
  for (const Credit& c : credits_)
    if (c.borrower == borrower) in += c.remaining();
  return in;
}

CreditLedger::Totals CreditLedger::totals() const {
  Totals t;
  for (const Credit& c : credits_) {
    t.granted += c.granted;
    t.consumed += c.consumed;
    t.revoked += c.revoked;
    t.outstanding += c.remaining();
  }
  return t;
}

std::string CreditLedger::digest() const {
  std::string out;
  out.reserve(credits_.size() * 64 + 32);
  char buf[128];
  std::snprintf(buf, sizeof(buf), "settle=%" PRIu64 "\n", last_settle_id_);
  out += buf;
  const auto bits = [](double v) {
    std::uint64_t u;
    std::memcpy(&u, &v, sizeof(u));
    return u;
  };
  for (const Credit& c : credits_) {
    std::snprintf(buf, sizeof(buf),
                  "%" PRIu64 " %u->%u g=%016" PRIx64 " c=%016" PRIx64 " r=%016" PRIx64 "\n",
                  c.id, c.lender, c.borrower, bits(c.granted), bits(c.consumed),
                  bits(c.revoked));
    out += buf;
  }
  return out;
}

}  // namespace agora::engine
