#include "engine/partition.h"

#include <algorithm>
#include <numeric>

#include "util/error.h"

namespace agora::engine {

namespace {

std::size_t find_root(std::vector<std::size_t>& parent, std::size_t i) {
  while (parent[i] != i) {
    parent[i] = parent[parent[i]];  // path halving
    i = parent[i];
  }
  return i;
}

void unite(std::vector<std::size_t>& parent, std::size_t a, std::size_t b) {
  a = find_root(parent, a);
  b = find_root(parent, b);
  if (a != b) parent[std::max(a, b)] = std::min(a, b);
}

}  // namespace

Partition partition_participants(const agree::AgreementSystem& sys, std::size_t shards) {
  const std::size_t n = sys.size();
  AGORA_REQUIRE(n > 0, "cannot partition an empty system");
  if (shards == 0) shards = 1;
  shards = std::min(shards, n);

  // Connected components of the symmetrized agreement support S + A.
  std::vector<std::size_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (i != j && (sys.relative(i, j) > 0.0 || sys.absolute(i, j) > 0.0))
        unite(parent, i, j);

  std::vector<std::vector<std::size_t>> comps;
  {
    std::vector<std::size_t> comp_of(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t r = find_root(parent, i);
      if (comp_of[r] == n) {
        comp_of[r] = comps.size();
        comps.emplace_back();
      }
      comps[comp_of[r]].push_back(i);  // ascending: i is visited in order
    }
  }

  Partition part;
  part.components = comps.size();

  if (comps.size() == 1 && shards > 1) {
    // Hash fallback: one giant component, no independent split. Replicate
    // the full system on every shard and route requests by participant id.
    part.shards = shards;
    part.replicated = true;
    part.shard_of.resize(n);
    for (std::size_t i = 0; i < n; ++i) part.shard_of[i] = i % shards;
    part.members.assign(shards, comps[0]);
    return part;
  }

  part.shards = std::min(shards, comps.size());
  part.replicated = false;
  part.members.assign(part.shards, {});
  part.shard_of.assign(n, 0);

  // LPT bin-packing: largest component first onto the least-loaded shard,
  // ties broken toward the lower shard id for determinism.
  std::vector<std::size_t> order(comps.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return comps[a].size() > comps[b].size();
  });
  std::vector<std::size_t> load(part.shards, 0);
  for (const std::size_t c : order) {
    const std::size_t s = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    load[s] += comps[c].size();
    for (const std::size_t i : comps[c]) {
      part.members[s].push_back(i);
      part.shard_of[i] = s;
    }
  }
  // Local indices inside a shard follow the sorted global order so the
  // induced sub-system is independent of packing order.
  for (auto& m : part.members) std::sort(m.begin(), m.end());
  return part;
}

}  // namespace agora::engine
