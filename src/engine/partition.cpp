#include "engine/partition.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <tuple>

#include "util/error.h"

namespace agora::engine {

namespace {

std::size_t find_root(std::vector<std::size_t>& parent, std::size_t i) {
  while (parent[i] != i) {
    parent[i] = parent[parent[i]];  // path halving
    i = parent[i];
  }
  return i;
}

void unite(std::vector<std::size_t>& parent, std::size_t a, std::size_t b) {
  a = find_root(parent, a);
  b = find_root(parent, b);
  if (a != b) parent[std::max(a, b)] = std::min(a, b);
}

/// Groups of participants (components or agglomerated clusters), each
/// ascending, ordered by smallest member for determinism.
std::vector<std::vector<std::size_t>> collect_groups(std::vector<std::size_t>& parent) {
  const std::size_t n = parent.size();
  std::vector<std::vector<std::size_t>> groups;
  std::vector<std::size_t> group_of(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t r = find_root(parent, i);
    if (group_of[r] == n) {
      group_of[r] = groups.size();
      groups.emplace_back();
    }
    groups[group_of[r]].push_back(i);  // ascending: i is visited in order
  }
  return groups;
}

/// LPT bin-packing of groups onto `part.shards` shards: largest group first
/// onto the least-loaded shard, ties toward the lower shard id.
void pack_groups(const std::vector<std::vector<std::size_t>>& groups, Partition& part) {
  part.members.assign(part.shards, {});
  part.shard_of.assign(part.shard_of.size(), 0);
  std::vector<std::size_t> order(groups.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return groups[a].size() > groups[b].size();
  });
  std::vector<std::size_t> load(part.shards, 0);
  for (const std::size_t g : order) {
    const std::size_t s = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    load[s] += groups[g].size();
    for (const std::size_t i : groups[g]) {
      part.members[s].push_back(i);
      part.shard_of[i] = s;
    }
  }
  // Local indices inside a shard follow the sorted global order so the
  // induced sub-system is independent of packing order.
  for (auto& m : part.members) std::sort(m.begin(), m.end());
}

/// Min-cut-ish split for federated mode: heavy-edge agglomeration under a
/// size cap. Merging the heaviest agreement edges first keeps them inside a
/// shard, so the edges that end up cut -- and become border credits -- are
/// the lightest ones, which is what bounds the optimality gap in practice.
std::vector<std::vector<std::size_t>> agglomerate(const agree::AgreementSystem& sys,
                                                  std::size_t shards, double slack) {
  const std::size_t n = sys.size();
  const std::size_t cap = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(static_cast<double>(n) * (1.0 + slack) / static_cast<double>(shards))));

  // Absolute amounts live on the capacity scale; relative shares are
  // fractions. Normalize A by the mean capacity so both contribute
  // comparably to the edge weight.
  double mean_cap = 0.0;
  for (double v : sys.capacity) mean_cap += v;
  mean_cap = std::max(1.0, mean_cap / static_cast<double>(n));

  struct Edge {
    double weight;
    std::size_t i, j;
  };
  std::vector<Edge> edges;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double w = sys.relative(i, j) + sys.relative(j, i) +
                       (sys.absolute(i, j) + sys.absolute(j, i)) / mean_cap;
      if (w > 0.0) edges.push_back(Edge{w, i, j});
    }
  }
  std::stable_sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return std::tie(b.weight, a.i, a.j) < std::tie(a.weight, b.i, b.j);
  });

  std::vector<std::size_t> parent(n), size(n, 1);
  std::iota(parent.begin(), parent.end(), 0);
  for (const Edge& e : edges) {
    const std::size_t a = find_root(parent, e.i);
    const std::size_t b = find_root(parent, e.j);
    if (a == b || size[a] + size[b] > cap) continue;
    const std::size_t root = std::min(a, b);
    size[root] = size[a] + size[b];
    parent[std::max(a, b)] = root;
  }
  return collect_groups(parent);
}

}  // namespace

Partition partition_participants(const agree::AgreementSystem& sys,
                                 const PartitionOptions& opts) {
  const std::size_t n = sys.size();
  AGORA_REQUIRE(n > 0, "cannot partition an empty system");
  std::size_t shards = opts.shards == 0 ? 1 : std::min(opts.shards, n);

  // Connected components of the symmetrized agreement support S + A.
  std::vector<std::size_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (i != j && (sys.relative(i, j) > 0.0 || sys.absolute(i, j) > 0.0))
        unite(parent, i, j);
  const std::vector<std::vector<std::size_t>> comps = collect_groups(parent);

  Partition part;
  part.components = comps.size();
  part.shard_of.assign(n, 0);

  if (comps.size() < shards && shards > 1 && opts.federated) {
    // Federated split: cut the components themselves, lightest edges first
    // to the boundary. Cut entitlements become border credits.
    const auto groups = agglomerate(sys, shards, opts.balance_slack);
    part.shards = std::min(shards, groups.size());
    part.federated = part.shards > 1 && groups.size() > comps.size();
    pack_groups(groups, part);
    return part;
  }

  if (comps.size() == 1 && shards > 1) {
    // Hash fallback: one giant component, no independent split. Replicate
    // the full system on every shard and route requests by participant id.
    part.shards = shards;
    part.replicated = true;
    for (std::size_t i = 0; i < n; ++i) part.shard_of[i] = i % shards;
    part.members.assign(shards, comps[0]);
    return part;
  }

  part.shards = std::min(shards, comps.size());
  pack_groups(comps, part);
  return part;
}

Partition partition_participants(const agree::AgreementSystem& sys, std::size_t shards) {
  PartitionOptions opts;
  opts.shards = shards;
  return partition_participants(sys, opts);
}

}  // namespace agora::engine
