// federation.h -- federated cross-shard enforcement: loan policy, border
// banks, and epoch-boundary settlement (DESIGN.md §15).
//
// A single-component agreement graph used to force the engine into its
// full-replica fallback: every shard solved the whole 65-variable LP, and
// the sharding speedup evaporated exactly on the graph shape a production
// economy has. Federation kills that fallback. The partition cuts the
// *lightest* agreement edges (partition.h, federated mode); every cut edge
// (lender -> borrower) becomes a border Credit (credit.h); and each shard's
// local allocator runs over its members plus one extra slot -- the *border
// bank* -- whose capacity is the sum of inbound loan balances and whose
// absolute agreements earmark each borrower's share of them. A consult
// therefore touches only shard-local state: the LP, the lp::Verifier
// certification, and the bank bounds are all local, and no consult ever
// blocks on a remote shard.
//
// Soundness: a loan target never exceeds the cut edge's *global*
// entitlement min(V_l * K_la + A_la, V_l), and issuing it debits the
// lender's shard-local capacity, so
//
//   * any bank draw the local LP certifies is also feasible for the global
//     LP (draws attributed to lenders stay within global entitlements);
//   * two shards can never spend the same physical unit (the lender's
//     shard no longer sees loaned capacity; the borrower's bank is the only
//     holder of it).
//
// The price is optimality, not safety: the local theta the Verifier
// certifies ignores capacity drops at remote lenders, so federated plans
// can be worse than the exact global optimum. Federation measures that gap
// instead of assuming it: each settlement round re-solves a sample of the
// epoch's decisions against an exact full-system allocator and reports the
// theta gap through obs (engine.federation.gap_*).
//
// Settlement rides the engine's existing mutation machinery: consume the
// credits applied plans spent, re-plan every balance toward the policy
// target for the new capacities (CreditLedger::plan_settlement + commit,
// idempotent), and hand each shard its new local slice -- a capacity-only
// patch when earmarks are unchanged, a rebuilt local system when they
// moved. Consults queued behind the patch on one shard never wait on any
// other shard.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "agree/matrices.h"
#include "alloc/plan.h"
#include "engine/credit.h"
#include "engine/partition.h"
#include "util/matrix.h"

namespace agora::engine {

struct FederationOptions {
  /// Master switch: when true (and threads > 1), single-component graphs
  /// are split by edge-scored partitioning with border credits instead of
  /// falling back to full replicas.
  bool enabled = false;
  /// Fraction of a cut edge's global entitlement loaned to the borrower's
  /// bank at each settlement.
  double borrow_fraction = 1.0;
  /// Cap on the total fraction of a lender's capacity on loan at once; the
  /// rest stays home so the lender's own shard keeps admitting locally.
  double lend_cap = 0.5;
  /// Allowed shard-size imbalance for the edge-scored partition (see
  /// PartitionOptions::balance_slack).
  double balance_slack = 0.25;
  /// How many of the epoch's decisions each settlement re-solves against
  /// the exact global LP to measure the optimality gap. 0 disables the
  /// probe (and the gap telemetry).
  std::size_t gap_probes = 4;
};

/// A cut agreement edge: lender's shard != borrower's shard and the edge
/// carries entitlement (S or A nonzero in the lender -> borrower direction).
struct BorderEdge {
  std::size_t lender = 0;
  std::size_t borrower = 0;
};

/// Every directed cut edge of `part` with nonzero entitlement, ordered by
/// (lender, borrower) for determinism.
std::vector<BorderEdge> find_border_edges(const agree::AgreementSystem& sys,
                                          const Partition& part);

/// A federated consult sampled for the settlement round's gap probe.
struct GapSample {
  std::size_t participant = 0;
  double amount = 0.0;
  double theta_global = 0.0;  ///< measured global perturbation of the plan
};

class Federation {
 public:
  /// `shares` is the global clamped transitive share matrix with retained_i
  /// on the diagonal (the engine's recertification matrix): loan targets and
  /// gap measurements both price draws with it.
  Federation(const agree::AgreementSystem& sys, const Partition& part, const Matrix& shares,
             FederationOptions opts);

  /// True when the partition produced at least one border credit. Inactive
  /// federation (no cut entitlements) is exactly connectivity sharding.
  bool active() const { return ledger_.size() > 0; }

  const CreditLedger& ledger() const { return ledger_; }
  const FederationOptions& options() const { return opts_; }

  /// Local index of shard `s`'s border bank, or npos when the shard has no
  /// inbound credits (its local system then has no bank slot).
  std::size_t bank_index(std::size_t shard) const { return bank_index_[shard]; }
  /// Local system size for shard `s` (members + bank slot when present).
  std::size_t local_size(std::size_t shard) const;

  /// Policy: the per-credit loan balance the next settlement steers toward,
  /// given global capacities -- borrow_fraction of the cut edge's global
  /// entitlement, scaled down pro-rata where a lender's total would exceed
  /// lend_cap * V_lender.
  std::vector<double> targets(std::span<const double> capacity) const;

  /// What one settlement round hands each shard.
  struct ShardUpdate {
    /// New local capacity slice: members (own capacity minus loans out),
    /// then the bank slot (sum of inbound balances) when the shard has one.
    std::vector<double> capacity;
    /// Rebuilt local system when the shard's earmarks changed this round
    /// (bank agreements are matrix data, which a capacity patch cannot
    /// express); null when `capacity` alone carries the round.
    std::shared_ptr<agree::AgreementSystem> rebuild;
    /// The shard's inbound credit table after the round, ascending by id --
    /// what the worker uses to attribute bank draws back to lenders.
    std::vector<CreditSlice> credits;
  };

  /// Run one settlement round against `capacity` (the new global capacity
  /// vector): plan + commit the ledger adjustments, then emit every shard's
  /// updated local slice. Deterministic; call under the engine's mutation
  /// lock.
  std::vector<ShardUpdate> settle(std::span<const double> capacity);

  /// Materialize shard `s`'s local agreement system against the current
  /// ledger: members first (capacity debited by their outstanding loans),
  /// then the bank slot when the shard has inbound credits. The engine uses
  /// this to build the initial per-shard allocators after the first settle.
  agree::AgreementSystem local_system(std::size_t shard,
                                      std::span<const double> capacity) const {
    return build_local(shard, capacity);
  }

  /// Spend the credits an applied plan drew on (alloc::AllocationPlan::
  /// borrowed). Throws PreconditionError on overdraw -- the stale-plan
  /// double-spend guard.
  void consume(const std::vector<alloc::BorrowedDraw>& borrowed, double tol);

  std::uint64_t settlements() const { return settlements_; }

 private:
  agree::AgreementSystem build_local(std::size_t shard,
                                     std::span<const double> capacity) const;

  const agree::AgreementSystem& sys_;
  const Partition& part_;
  const Matrix& shares_;  ///< global clamped K with retained on the diagonal
  FederationOptions opts_;
  CreditLedger ledger_;
  std::vector<std::size_t> bank_index_;           ///< per shard; npos = no bank
  std::vector<std::vector<std::uint64_t>> in_;    ///< per shard: inbound credit ids
  std::vector<std::vector<std::uint64_t>> out_by_member_;  ///< flat per-participant outbound ids
  std::vector<std::vector<double>> last_earmarks_;  ///< per shard: earmark per member
  std::uint64_t settlements_ = 0;
};

}  // namespace agora::engine
