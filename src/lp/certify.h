// certify.h -- independent verification of LP answers.
//
// The enforcement guarantee (paper Section 3) is only as strong as the LP
// answer backing each consult, and the warm-started revised simplex reuses a
// cached basis inverse across hundreds of perturbed solves -- exactly the
// regime where accumulated floating-point drift or a degenerate basis can
// silently return a wrong allocation. The Verifier closes that gap: it
// checks any returned solution against the ORIGINAL problem, using only the
// problem data (never the solver's internal state), and returns a typed
// Certificate with the worst residual of every check.
//
// What is certified, per claimed status:
//   * Optimal    -- primal feasibility (constraints + bounds), dual sign
//                   feasibility, stationarity of the reduced costs,
//                   complementary slackness, and the primal-dual objective
//                   gap. Together these bound the suboptimality of the
//                   answer by weak duality. With no duals available
//                   (brute-force solves), only primal feasibility and
//                   objective consistency are checked and the certificate is
//                   marked `primal_only`.
//   * Infeasible -- a Farkas certificate: standard-form row multipliers y
//                   with y'A_j <= 0 for all non-artificial columns and
//                   y'b > 0, proving {A y = b, y >= 0} empty.
//   * Unbounded  -- a feasible point plus a standard-form ray d >= 0 with
//                   A d = 0 and c'd < 0.
//
// All residual tests are RELATIVE (scaled by the magnitudes involved; see
// tolerances.h) -- an absolute 1e-7 slack is meaningless when coefficients
// span 1e-8..1e8.
//
// A Verifier keeps reusable scratch so steady-state certification of the
// warm consult loop allocates nothing; like SolveWorkspace it is therefore
// single-threaded state.
#pragma once

#include <cstddef>
#include <vector>

#include "lp/problem.h"
#include "lp/result.h"
#include "lp/standard_form.h"
#include "lp/tolerances.h"

namespace agora::lp {

/// Outcome of one verification. `certified` is the only field callers need
/// for control flow; the residuals exist for telemetry and diagnosis.
struct Certificate {
  enum class Claim { None, Optimal, Infeasible, Unbounded };

  Claim claim = Claim::None;
  /// The claim survived every applicable check.
  bool certified = false;
  /// Optimal claim checked without duals: feasibility proven, optimality
  /// taken on the solver's word (brute-force enumeration is exact by
  /// construction). Counts as certified for admission purposes -- the grant
  /// is backed by a feasible allocation -- but flagged for telemetry.
  bool primal_only = false;

  /// Worst relative residuals seen (0 when the check did not apply).
  double primal_residual = 0.0;        ///< constraints + bounds
  double dual_residual = 0.0;          ///< dual signs + stationarity
  double complementarity_residual = 0.0;
  double objective_gap = 0.0;          ///< |primal - dual| / (1+|p|+|d|)
  double farkas_residual = 0.0;        ///< Farkas / ray certificate slack

  /// Human-readable reason when !certified; nullptr otherwise.
  const char* reject = nullptr;
};

inline const char* to_string(Certificate::Claim c) {
  switch (c) {
    case Certificate::Claim::None: return "none";
    case Certificate::Claim::Optimal: return "optimal";
    case Certificate::Claim::Infeasible: return "infeasible";
    case Certificate::Claim::Unbounded: return "unbounded";
  }
  return "unknown";
}

class Verifier {
 public:
  explicit Verifier(Tolerances tols = {}) : tols_(tols) {}

  const Tolerances& tolerances() const { return tols_; }

  /// Dispatch on the result's status. IterationLimit (and any claim whose
  /// certificate data is missing) yields an uncertified Certificate with a
  /// reject reason -- never a throw; a wrong answer is an expected outcome
  /// here, not a programming error.
  Certificate certify(const Problem& p, const SolveResult& r);

  /// Check a claimed-optimal (x, duals, objective) triple. `duals` may be
  /// empty (primal-only certification, see Certificate::primal_only).
  Certificate certify_optimal(const Problem& p, const std::vector<double>& x,
                              const std::vector<double>& duals, double objective);

  /// Admission fast path: certify that (x, objective) is a FEASIBLE answer to
  /// `p` -- bounds, every constraint row, and objective consistency -- without
  /// any of the dual/stationarity machinery. This is the check backing plan-
  /// cache hits and theta<=1 fast-path grants: the "no uncertified grant"
  /// invariant needs the allocation to be provably admissible against the
  /// CURRENT problem, while optimality of a reused plan is already pinned by
  /// the epoch key (same problem => same optimum). The certificate is marked
  /// `primal_only`, claim Optimal. Roughly 3x cheaper than certify_optimal
  /// with duals; the row pass runs on the vectorized vdot_abs kernel.
  Certificate certify_admission(const Problem& p, const std::vector<double>& x,
                                double objective);

  /// Check a Farkas certificate (standard-form row multipliers) for a
  /// claimed-infeasible problem.
  Certificate certify_infeasible(const Problem& p, const std::vector<double>& farkas);

  /// Check a feasible point + standard-form ray for a claimed-unbounded
  /// problem.
  Certificate certify_unbounded(const Problem& p, const std::vector<double>& x,
                                const std::vector<double>& ray);

 private:
  Tolerances tols_;
  /// Reused standard-form rebuild target for Farkas/ray checks (optimal
  /// claims are checked purely in the original problem space).
  StandardForm sf_;
  std::vector<double> z_;     ///< reduced-cost / row-sum scratch
  std::vector<double> zden_;  ///< matching magnitude sums for relative tests
};

}  // namespace agora::lp
