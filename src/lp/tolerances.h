// tolerances.h -- the single home for every numerical threshold the LP
// substrate uses.
//
// Before this file, feasibility and pivot epsilons were scattered as magic
// literals across simplex.cpp, revised.cpp, presolve.cpp and brute_force.cpp;
// tightening one without the others produced solvers that disagreed about
// what "feasible" means. Tolerances centralizes them, and -- where a check
// compares a residual against a problem-dependent quantity -- the checks are
// RELATIVE: a residual of 1e-7 means nothing by itself when the rhs is 1e6,
// so thresholds scale as tol * (1 + norm) via scaled().
//
// The defaults preserve the historical absolute values on unit-scale
// problems (norm ~ 1), so well-conditioned solves behave exactly as before.
#pragma once

namespace agora::lp {

struct Tolerances {
  // --- Solver-internal thresholds. ----------------------------------------
  /// Basic values with |x| below this are snapped to zero (denormal clamp).
  double drop = 1e-12;
  /// Phase-1 artificial residual above which the problem is declared
  /// infeasible; applied relative to (1 + ||b||_inf).
  double artificial = 1e-7;
  /// Minimum |a_ij| for pivoting a zero-level artificial out of the basis.
  double pivot_out = 1e-7;
  /// Relative ||b - B x_B||_inf above which the basis inverse is rebuilt
  /// (residual-triggered refactorization, on top of the pivot-count cadence).
  double refactor_residual = 1e-8;

  // --- Presolve. -----------------------------------------------------------
  /// Bound-width below which a variable counts as fixed.
  double presolve_fix = 1e-11;
  /// Feasibility slack for constant (empty) rows; relative to (1 + |rhs|).
  double presolve_row = 1e-9;

  // --- Certification (lp::Verifier). Deliberately looser than the solver
  // tolerances: a correct answer computed to 1e-9 must certify comfortably
  // at 1e-6, while a wrong one (off by >> 1e-6 relative) must not. ----------
  /// Relative primal residual (constraints and bounds).
  double feasibility = 1e-6;
  /// Relative dual sign / stationarity residual.
  double dual = 1e-6;
  /// Relative complementary-slackness residual.
  double complementarity = 1e-6;
  /// Relative primal-dual objective gap.
  double objective_gap = 1e-6;
  /// Slack for Farkas (infeasibility) and ray (unboundedness) certificates.
  double farkas = 1e-7;
};

/// A relative threshold: `tol` scaled by the magnitude of what is measured.
inline double scaled(double tol, double norm) { return tol * (1.0 + norm); }

}  // namespace agora::lp
