#include "lp/presolve.h"

#include <cmath>

namespace agora::lp {

namespace {

/// Working copy of the problem with erasable rows/vars.
struct Work {
  Sense sense;
  double fix_tol = Tolerances{}.presolve_fix;
  std::vector<double> cost, lo, hi;
  std::vector<std::string> names;
  std::vector<Constraint> rows;
  std::vector<bool> var_alive, row_alive;
  std::vector<double> fixed_at;  // valid where !var_alive
  bool infeasible = false;

  explicit Work(const Problem& p) : sense(p.sense()) {
    const std::size_t nv = p.num_variables();
    cost.resize(nv);
    lo.resize(nv);
    hi.resize(nv);
    names.resize(nv);
    for (std::size_t j = 0; j < nv; ++j) {
      cost[j] = p.objective_coeff(j);
      lo[j] = p.lower_bound(j);
      hi[j] = p.upper_bound(j);
      names[j] = p.variable_name(j);
    }
    rows.reserve(p.num_constraints());
    for (std::size_t i = 0; i < p.num_constraints(); ++i) rows.push_back(p.constraint(i));
    var_alive.assign(nv, true);
    row_alive.assign(rows.size(), true);
    fixed_at.assign(nv, 0.0);
  }

  void fix_variable(std::size_t j, double v) {
    var_alive[j] = false;
    fixed_at[j] = v;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (!row_alive[i]) continue;
      const double a = rows[i].coeffs[j];
      if (a == 0.0) continue;
      rows[i].rhs -= a * v;
      rows[i].coeffs[j] = 0.0;
    }
  }

  bool tighten(std::size_t j, Relation rel, double bound) {
    switch (rel) {
      case Relation::LessEqual: hi[j] = std::min(hi[j], bound); break;
      case Relation::GreaterEqual: lo[j] = std::max(lo[j], bound); break;
      case Relation::Equal:
        lo[j] = std::max(lo[j], bound);
        hi[j] = std::min(hi[j], bound);
        break;
    }
    return lo[j] <= hi[j] + fix_tol;
  }
};

}  // namespace

std::vector<double> PresolveOutcome::postsolve(const std::vector<double>& reduced_x) const {
  AGORA_REQUIRE(reduced_x.size() == var_origin.size(), "reduced solution has wrong dimension");
  std::vector<double> x(original_vars, 0.0);
  for (std::size_t j = 0; j < reduced_x.size(); ++j) x[var_origin[j]] = reduced_x[j];
  for (const auto& [idx, v] : fixed_values) x[idx] = v;
  return x;
}

void PresolveOutcome::postsolve(const Problem& original, SolveResult& r,
                                const Tolerances& tols) const {
  const bool with_duals = r.duals.size() == row_origin.size();
  r.x = postsolve(r.x);
  r.objective = original.objective_value(r.x);
  if (!with_duals) {
    r.duals.clear();  // primal-only certificate: never hand back reduced-space duals
    return;
  }

  // Surviving rows: undo the row scaling (a/s) x rel b/s -- the dual with
  // respect to the original rhs b is the reduced dual divided by s. Dropped
  // rows start at zero (exactly right for non-binding rows).
  std::vector<double> duals(original_rows, 0.0);
  for (std::size_t i = 0; i < row_origin.size(); ++i)
    duals[row_origin[i]] = r.duals[i] / row_scale[i];

  // Folded singleton rows, reverse elimination order: the row a x_j rel b
  // was replaced by a bound on x_j, so the variable's remaining reduced cost
  // z_j = c_j - y'A_j (in minimize normalization, over the ORIGINAL matrix
  // with the duals assigned so far) belongs to the row whenever the row is
  // binding at the restored point: y_row = z_j / a zeroes z_j and carries
  // the sign the row's relation demands. A non-binding row keeps y = 0 --
  // complementary slackness requires it, and x_j then rests on one of its
  // original bounds where z_j's sign already satisfies stationarity.
  const double s = original.sense() == Sense::Minimize ? 1.0 : -1.0;
  for (std::size_t k = folded_rows.size(); k-- > 0;) {
    const std::size_t row = folded_rows[k].row;
    const std::size_t j = folded_rows[k].var;
    const Constraint& c = original.constraint(row);
    const double a = c.coeffs[j];
    if (a == 0.0) continue;  // defensive: folded rows always have a != 0
    double z = s * original.objective_coeff(j);
    for (std::size_t i = 0; i < original_rows; ++i) {
      if (duals[i] == 0.0) continue;
      z -= s * duals[i] * original.constraint(i).coeffs[j];
    }
    double activity = 0.0;
    for (std::size_t t = 0; t < c.coeffs.size(); ++t) activity += c.coeffs[t] * r.x[t];
    const bool binding = std::fabs(activity - c.rhs) <= scaled(tols.complementarity, std::fabs(c.rhs));
    if (!binding) continue;
    const double cand = z / a;  // minimize-normalized row dual
    const bool sign_ok = c.rel == Relation::Equal ||
                         (c.rel == Relation::LessEqual && cand <= 0.0) ||
                         (c.rel == Relation::GreaterEqual && cand >= 0.0);
    if (sign_ok) duals[row] = s * cand;  // back to the problem's own sense
  }
  r.duals = std::move(duals);
}

PresolveOutcome presolve(const Problem& p, const Tolerances& tols) {
  p.validate();
  Work w(p);
  w.fix_tol = tols.presolve_fix;
  PresolveOutcome out;
  out.original_vars = p.num_variables();
  out.original_rows = p.num_constraints();

  // Minimize-normalized objective sign for the dual-fixing tests.
  const double s = p.sense() == Sense::Minimize ? 1.0 : -1.0;

  bool changed = true;
  while (changed && !w.infeasible) {
    changed = false;

    // 1. Fixed variables.
    for (std::size_t j = 0; j < w.var_alive.size(); ++j) {
      if (!w.var_alive[j]) continue;
      if (std::isfinite(w.lo[j]) && std::fabs(w.hi[j] - w.lo[j]) <= w.fix_tol) {
        w.fix_variable(j, w.lo[j]);
        changed = true;
      }
    }

    // 2 & 3. Empty and singleton rows.
    for (std::size_t i = 0; i < w.rows.size(); ++i) {
      if (!w.row_alive[i]) continue;
      std::size_t nnz = 0;
      std::size_t last = 0;
      for (std::size_t j = 0; j < w.rows[i].coeffs.size(); ++j) {
        if (w.var_alive[j] && std::fabs(w.rows[i].coeffs[j]) > w.fix_tol) {
          ++nnz;
          last = j;
        }
      }
      if (nnz == 0) {
        const double r = w.rows[i].rhs;
        const double row_tol = scaled(tols.presolve_row, std::fabs(r));
        const bool ok = (w.rows[i].rel == Relation::LessEqual && 0.0 <= r + row_tol) ||
                        (w.rows[i].rel == Relation::GreaterEqual && 0.0 >= r - row_tol) ||
                        (w.rows[i].rel == Relation::Equal && std::fabs(r) <= row_tol);
        if (!ok) w.infeasible = true;
        w.row_alive[i] = false;
        changed = true;
      } else if (nnz == 1) {
        const double a = w.rows[i].coeffs[last];
        const double bound = w.rows[i].rhs / a;
        Relation rel = w.rows[i].rel;
        if (a < 0.0) {
          if (rel == Relation::LessEqual) rel = Relation::GreaterEqual;
          else if (rel == Relation::GreaterEqual) rel = Relation::LessEqual;
        }
        if (!w.tighten(last, rel, bound)) w.infeasible = true;
        w.row_alive[i] = false;
        out.folded_rows.push_back({i, last});
        changed = true;
      }
    }
    if (w.infeasible) break;

    // 4 & 5. Empty columns and dual fixing. A column is down-safe when
    // shrinking the variable relaxes every row it touches (<= rows need
    // a >= 0, >= rows need a <= 0, equality rows disqualify); mirror for
    // up-safe. With a down-safe column whose minimize-normalized cost is
    // non-negative, some optimum has the variable at its lower bound, and
    // the assigned dual signs guarantee its reduced cost stays stationary
    // there after postsolve.
    for (std::size_t j = 0; j < w.var_alive.size(); ++j) {
      if (!w.var_alive[j]) continue;
      bool down_safe = true, up_safe = true;
      std::size_t nnz = 0;
      for (std::size_t i = 0; i < w.rows.size(); ++i) {
        if (!w.row_alive[i]) continue;
        const double a = w.rows[i].coeffs[j];
        if (std::fabs(a) <= w.fix_tol) continue;
        ++nnz;
        switch (w.rows[i].rel) {
          case Relation::LessEqual:
            if (a < 0.0) down_safe = false;
            if (a > 0.0) up_safe = false;
            break;
          case Relation::GreaterEqual:
            if (a > 0.0) down_safe = false;
            if (a < 0.0) up_safe = false;
            break;
          case Relation::Equal:
            down_safe = up_safe = false;
            break;
        }
      }
      const double cmin = s * w.cost[j];
      if (nnz == 0) {
        // Empty column: the objective alone places it. An empty column whose
        // preferred bound is infinite stays alive -- the simplex turns it
        // into a proper unboundedness certificate.
        double v;
        if (cmin > 0.0 && std::isfinite(w.lo[j])) v = w.lo[j];
        else if (cmin < 0.0 && std::isfinite(w.hi[j])) v = w.hi[j];
        else if (cmin == 0.0)
          v = std::isfinite(w.lo[j]) ? w.lo[j] : (std::isfinite(w.hi[j]) ? w.hi[j] : 0.0);
        else
          continue;
        w.fix_variable(j, v);
        changed = true;
      } else if (cmin >= 0.0 && down_safe && std::isfinite(w.lo[j])) {
        w.fix_variable(j, w.lo[j]);
        changed = true;
      } else if (cmin <= 0.0 && up_safe && std::isfinite(w.hi[j])) {
        w.fix_variable(j, w.hi[j]);
        changed = true;
      }
    }
  }

  if (w.infeasible) {
    SolveResult r;
    r.status = Status::Infeasible;
    out.decided = r;
    return out;
  }

  // Record eliminated variables.
  for (std::size_t j = 0; j < w.var_alive.size(); ++j)
    if (!w.var_alive[j]) out.fixed_values.emplace_back(j, w.fixed_at[j]);

  // Rebuild the reduced problem over surviving variables/rows.
  Problem reduced(w.sense);
  std::vector<std::size_t> new_index(w.var_alive.size(), static_cast<std::size_t>(-1));
  for (std::size_t j = 0; j < w.var_alive.size(); ++j) {
    if (!w.var_alive[j]) continue;
    new_index[j] = reduced.add_variable(w.names[j], w.lo[j], w.hi[j], w.cost[j]);
    out.var_origin.push_back(j);
  }

  if (reduced.num_variables() == 0) {
    // Every variable was eliminated and every surviving row verified
    // consistent: presolve decided the problem. Reconstruct the folded-row
    // duals so the decided result certifies with full KKT conditions, not
    // just primal feasibility.
    SolveResult r;
    r.status = Status::Optimal;
    out.postsolve(p, r, tols);
    out.decided = std::move(r);
    return out;
  }

  for (std::size_t i = 0; i < w.rows.size(); ++i) {
    if (!w.row_alive[i]) continue;
    // 6. Row scaling by the largest surviving coefficient.
    double scale = 0.0;
    for (std::size_t j = 0; j < w.rows[i].coeffs.size(); ++j)
      if (w.var_alive[j]) scale = std::max(scale, std::fabs(w.rows[i].coeffs[j]));
    AGORA_INVARIANT(scale > 0.0, "empty rows were removed above");
    std::vector<double> coeffs(reduced.num_variables(), 0.0);
    for (std::size_t j = 0; j < w.rows[i].coeffs.size(); ++j)
      if (w.var_alive[j]) coeffs[new_index[j]] = w.rows[i].coeffs[j] / scale;
    reduced.add_constraint(std::move(coeffs), w.rows[i].rel, w.rows[i].rhs / scale,
                           w.rows[i].name);
    out.row_origin.push_back(i);
    out.row_scale.push_back(scale);
  }

  out.reduced = std::move(reduced);
  return out;
}

}  // namespace agora::lp
