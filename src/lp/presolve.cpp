#include "lp/presolve.h"

#include <cmath>

namespace agora::lp {

namespace {

/// Working copy of the problem with erasable rows/vars.
struct Work {
  Sense sense;
  double fix_tol = Tolerances{}.presolve_fix;
  std::vector<double> cost, lo, hi;
  std::vector<std::string> names;
  std::vector<Constraint> rows;
  std::vector<bool> var_alive, row_alive;
  std::vector<double> fixed_at;  // valid where !var_alive
  bool infeasible = false;

  explicit Work(const Problem& p) : sense(p.sense()) {
    const std::size_t nv = p.num_variables();
    cost.resize(nv);
    lo.resize(nv);
    hi.resize(nv);
    names.resize(nv);
    for (std::size_t j = 0; j < nv; ++j) {
      cost[j] = p.objective_coeff(j);
      lo[j] = p.lower_bound(j);
      hi[j] = p.upper_bound(j);
      names[j] = p.variable_name(j);
    }
    rows.reserve(p.num_constraints());
    for (std::size_t i = 0; i < p.num_constraints(); ++i) rows.push_back(p.constraint(i));
    var_alive.assign(nv, true);
    row_alive.assign(rows.size(), true);
    fixed_at.assign(nv, 0.0);
  }

  void fix_variable(std::size_t j, double v) {
    var_alive[j] = false;
    fixed_at[j] = v;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (!row_alive[i]) continue;
      const double a = rows[i].coeffs[j];
      if (a == 0.0) continue;
      rows[i].rhs -= a * v;
      rows[i].coeffs[j] = 0.0;
    }
  }

  bool tighten(std::size_t j, Relation rel, double bound) {
    switch (rel) {
      case Relation::LessEqual: hi[j] = std::min(hi[j], bound); break;
      case Relation::GreaterEqual: lo[j] = std::max(lo[j], bound); break;
      case Relation::Equal:
        lo[j] = std::max(lo[j], bound);
        hi[j] = std::min(hi[j], bound);
        break;
    }
    return lo[j] <= hi[j] + fix_tol;
  }
};

}  // namespace

std::vector<double> PresolveOutcome::postsolve(const std::vector<double>& reduced_x) const {
  AGORA_REQUIRE(reduced_x.size() == var_origin.size(), "reduced solution has wrong dimension");
  std::vector<double> x(original_vars, 0.0);
  for (std::size_t j = 0; j < reduced_x.size(); ++j) x[var_origin[j]] = reduced_x[j];
  for (const auto& [idx, v] : fixed_values) x[idx] = v;
  return x;
}

PresolveOutcome presolve(const Problem& p, const Tolerances& tols) {
  p.validate();
  Work w(p);
  w.fix_tol = tols.presolve_fix;
  PresolveOutcome out;
  out.original_vars = p.num_variables();

  bool changed = true;
  while (changed && !w.infeasible) {
    changed = false;

    // 1. Fixed variables.
    for (std::size_t j = 0; j < w.var_alive.size(); ++j) {
      if (!w.var_alive[j]) continue;
      if (std::isfinite(w.lo[j]) && std::fabs(w.hi[j] - w.lo[j]) <= w.fix_tol) {
        w.fix_variable(j, w.lo[j]);
        changed = true;
      }
    }

    // 2 & 3. Empty and singleton rows.
    for (std::size_t i = 0; i < w.rows.size(); ++i) {
      if (!w.row_alive[i]) continue;
      std::size_t nnz = 0;
      std::size_t last = 0;
      for (std::size_t j = 0; j < w.rows[i].coeffs.size(); ++j) {
        if (w.var_alive[j] && std::fabs(w.rows[i].coeffs[j]) > w.fix_tol) {
          ++nnz;
          last = j;
        }
      }
      if (nnz == 0) {
        const double r = w.rows[i].rhs;
        const double row_tol = scaled(tols.presolve_row, std::fabs(r));
        const bool ok = (w.rows[i].rel == Relation::LessEqual && 0.0 <= r + row_tol) ||
                        (w.rows[i].rel == Relation::GreaterEqual && 0.0 >= r - row_tol) ||
                        (w.rows[i].rel == Relation::Equal && std::fabs(r) <= row_tol);
        if (!ok) w.infeasible = true;
        w.row_alive[i] = false;
        changed = true;
      } else if (nnz == 1) {
        const double a = w.rows[i].coeffs[last];
        const double bound = w.rows[i].rhs / a;
        Relation rel = w.rows[i].rel;
        if (a < 0.0) {
          if (rel == Relation::LessEqual) rel = Relation::GreaterEqual;
          else if (rel == Relation::GreaterEqual) rel = Relation::LessEqual;
        }
        if (!w.tighten(last, rel, bound)) w.infeasible = true;
        w.row_alive[i] = false;
        changed = true;
      }
    }
  }

  if (w.infeasible) {
    SolveResult r;
    r.status = Status::Infeasible;
    out.decided = r;
    return out;
  }

  // Record eliminated variables.
  for (std::size_t j = 0; j < w.var_alive.size(); ++j)
    if (!w.var_alive[j]) out.fixed_values.emplace_back(j, w.fixed_at[j]);

  // Rebuild the reduced problem over surviving variables/rows.
  Problem reduced(w.sense);
  std::vector<std::size_t> new_index(w.var_alive.size(), static_cast<std::size_t>(-1));
  for (std::size_t j = 0; j < w.var_alive.size(); ++j) {
    if (!w.var_alive[j]) continue;
    new_index[j] = reduced.add_variable(w.names[j], w.lo[j], w.hi[j], w.cost[j]);
    out.var_origin.push_back(j);
  }

  if (reduced.num_variables() == 0) {
    SolveResult r;
    r.status = Status::Optimal;
    r.x = out.postsolve({});
    r.objective = p.objective_value(r.x);
    // Residual rows were all verified consistent above.
    out.decided = r;
    return out;
  }

  for (std::size_t i = 0; i < w.rows.size(); ++i) {
    if (!w.row_alive[i]) continue;
    // 4. Row scaling by the largest surviving coefficient.
    double scale = 0.0;
    for (std::size_t j = 0; j < w.rows[i].coeffs.size(); ++j)
      if (w.var_alive[j]) scale = std::max(scale, std::fabs(w.rows[i].coeffs[j]));
    AGORA_INVARIANT(scale > 0.0, "empty rows were removed above");
    std::vector<double> coeffs(reduced.num_variables(), 0.0);
    for (std::size_t j = 0; j < w.rows[i].coeffs.size(); ++j)
      if (w.var_alive[j]) coeffs[new_index[j]] = w.rows[i].coeffs[j] / scale;
    reduced.add_constraint(std::move(coeffs), w.rows[i].rel, w.rows[i].rhs / scale,
                           w.rows[i].name);
  }

  out.reduced = std::move(reduced);
  return out;
}

}  // namespace agora::lp
