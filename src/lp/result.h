// result.h -- outcome of an LP solve. Infeasible/unbounded are *expected*
// outcomes, reported in-band rather than thrown.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace agora::lp {

enum class Status {
  Optimal,
  Infeasible,
  Unbounded,
  IterationLimit,
};

inline const char* to_string(Status s) {
  switch (s) {
    case Status::Optimal: return "optimal";
    case Status::Infeasible: return "infeasible";
    case Status::Unbounded: return "unbounded";
    case Status::IterationLimit: return "iteration-limit";
  }
  return "unknown";
}

struct SolveResult {
  Status status = Status::Infeasible;
  /// Objective value in the problem's own sense (only valid when Optimal).
  double objective = 0.0;
  /// Primal solution in the problem's original variables.
  std::vector<double> x;
  /// Shadow prices: duals[i] is the rate of change of the optimal objective
  /// (in the problem's own sense) per unit increase of constraint i's rhs.
  /// Valid only when Optimal; empty if the solver did not compute them.
  std::vector<double> duals;
  /// Simplex iterations across both phases.
  std::uint64_t iterations = 0;

  bool optimal() const { return status == Status::Optimal; }
};

/// Solver tuning knobs shared by both simplex implementations.
struct SolverOptions {
  /// Feasibility / reduced-cost tolerance.
  double tol = 1e-9;
  /// Hard cap on simplex iterations per phase.
  std::uint64_t max_iterations = 100000;
  /// After this many consecutive degenerate pivots, switch to Bland's rule
  /// (guarantees termination at the cost of speed).
  std::uint64_t stall_threshold = 64;
};

}  // namespace agora::lp
